// Command wierabench regenerates every table and figure of the paper's
// evaluation (Sec 5) against the simulated multi-cloud substrate and prints
// the same rows and series the paper reports, side by side with the
// paper's numbers.
//
// Usage:
//
//	wierabench [-exp all|fig7|sloswitch|fig8|table3|fig9|table4|sec53|fig10|fig11|fig12|convergence|scaleout|batchflush|eccost|elastic|tenancy] [-full] [-seed N] [-watchdog]
//
// By default experiments run in quick mode (seconds each); -full uses the
// paper-scale durations. -watchdog runs the runtime watchdog alongside the
// experiments and reports any goroutine/heap/scheduler-lag trips at the
// end — a leak in a harness shows up as a trip instead of an OOM.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/watch"
)

// experiment couples a name with its runner.
type experiment struct {
	name string
	run  func(experiments.Options) (renderable, error)
}

// renderable is what every harness result provides.
type renderable interface {
	Render() string
	ShapeHolds() error
}

func main() {
	expFlag := flag.String("exp", "all", "experiment to run: all, fig7, sloswitch, fig8, table3, fig9, table4, sec53, fig10, fig11, fig12, convergence, scaleout, batchflush, eccost, elastic, tenancy, ablation-consistency, ablation-queue, ablation-blocksize")
	full := flag.Bool("full", false, "run at paper-scale durations instead of quick mode")
	seed := flag.Int64("seed", 1, "random seed")
	watchdog := flag.Bool("watchdog", false, "run the runtime watchdog during experiments and report trips")
	flag.Parse()

	var journal *watch.Journal
	if *watchdog {
		journal = watch.NewJournal(nil, 0)
		dog := watch.NewWatchdog(watch.WatchdogConfig{
			Interval: time.Second,
			Journal:  journal,
			Scope:    "wierabench",
		})
		dog.Start()
		defer dog.Stop()
	}

	opts := experiments.Options{Quick: !*full, Seed: *seed}
	all := []experiment{
		{"fig7", func(o experiments.Options) (renderable, error) { return experiments.Fig7(o) }},
		{"sloswitch", func(o experiments.Options) (renderable, error) { return experiments.SLOSwitch(o) }},
		{"fig8", func(o experiments.Options) (renderable, error) { return experiments.Fig8Table3(o) }},
		{"fig9", func(o experiments.Options) (renderable, error) { return experiments.Fig9(o) }},
		{"table4", func(o experiments.Options) (renderable, error) { return experiments.Table4() }},
		{"sec53", func(o experiments.Options) (renderable, error) { return experiments.Sec53ColdData(o) }},
		{"fig10", func(o experiments.Options) (renderable, error) { return experiments.Fig10(o) }},
		{"fig11", func(o experiments.Options) (renderable, error) { return experiments.Fig11(o) }},
		{"fig12", func(o experiments.Options) (renderable, error) { return experiments.Fig12(o) }},
		{"convergence", func(o experiments.Options) (renderable, error) { return experiments.Convergence(o) }},
		{"scaleout", func(o experiments.Options) (renderable, error) { return experiments.Scaleout(o) }},
		{"batchflush", func(o experiments.Options) (renderable, error) { return experiments.BatchFlush(o) }},
		{"eccost", func(o experiments.Options) (renderable, error) { return experiments.ECCost(o) }},
		{"elastic", func(o experiments.Options) (renderable, error) { return experiments.Elastic(o) }},
		{"tenancy", func(o experiments.Options) (renderable, error) { return experiments.Tenancy(o) }},
		{"ablation-consistency", func(o experiments.Options) (renderable, error) { return experiments.AblationConsistency(o) }},
		{"ablation-queue", func(o experiments.Options) (renderable, error) { return experiments.AblationQueue(o) }},
		{"ablation-blocksize", func(o experiments.Options) (renderable, error) { return experiments.AblationBlockSize(o) }},
	}

	want := strings.ToLower(*expFlag)
	if want == "table3" {
		want = "fig8" // Table 3 comes from the Fig 8 harness
	}
	ran := 0
	failed := 0
	for _, e := range all {
		if want != "all" && want != e.name {
			continue
		}
		ran++
		fmt.Printf("=== %s ===\n", e.name)
		start := time.Now()
		res, err := e.run(opts)
		if err != nil {
			fmt.Printf("ERROR: %v\n\n", err)
			failed++
			continue
		}
		fmt.Println(res.Render())
		if err := res.ShapeHolds(); err != nil {
			fmt.Printf("SHAPE CHECK FAILED: %v\n", err)
			failed++
		} else {
			fmt.Printf("shape check: OK (%.1fs)\n", time.Since(start).Seconds())
		}
		fmt.Println()
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "wierabench: unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}
	if journal != nil {
		trips := journal.Events(0)
		if len(trips) == 0 {
			fmt.Println("watchdog: no runtime trips")
		}
		for _, e := range trips {
			fmt.Printf("watchdog: %s %s\n", e.Type, e.Msg)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// Command wiera runs a complete Wiera deployment as a daemon: the control
// plane (WUI/GPM/TSM), a coordination service, and one Tiera server per
// configured region, all over the simulated multi-cloud WAN, fronted by a
// real TCP endpoint so external clients (cmd/wieractl) can manage
// instances and store data.
//
// Usage:
//
//	wiera [-listen 127.0.0.1:7360] [-regions us-east,us-west,eu-west,asia-east] [-factor 50]
//
// The TCP front serves the Table 1 management API (startInstances /
// stopInstances / getInstances) and proxies the Table 2 data API (put /
// get / getVersion / getVersionList / remove / removeVersion) to the
// closest node of the named instance.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"repro/internal/clock"
	"repro/internal/coord"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/wiera"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7360", "TCP listen address")
	regionsFlag := flag.String("regions", "us-east,us-west,eu-west,asia-east", "comma-separated simulated regions")
	factor := flag.Float64("factor", 50, "clock compression factor for the simulated WAN")
	flag.Parse()

	clk := clock.NewScaled(*factor)
	net := simnet.New(clk)
	fabric := transport.NewFabric(net)

	cs := coord.NewServer(clk)
	zkEP, err := fabric.NewEndpoint("zk", simnet.USEast)
	if err != nil {
		log.Fatalf("wiera: %v", err)
	}
	zkEP.Serve(cs.Handler())

	server, err := wiera.NewServer(wiera.ServerConfig{Fabric: fabric, CoordDst: "zk"})
	if err != nil {
		log.Fatalf("wiera: %v", err)
	}
	var tieraServers []*wiera.TieraServer
	for _, r := range strings.Split(*regionsFlag, ",") {
		region := simnet.Region(strings.TrimSpace(r))
		if region == "" {
			continue
		}
		ts, err := wiera.NewTieraServer(fabric, region, server, "zk")
		if err != nil {
			log.Fatalf("wiera: tiera server %s: %v", region, err)
		}
		tieraServers = append(tieraServers, ts)
	}
	server.Start()

	front := &frontend{fabric: fabric, server: server}
	tcp, err := transport.ListenTCP(*listen, front.handle)
	if err != nil {
		log.Fatalf("wiera: %v", err)
	}
	log.Printf("wiera: control plane listening on %s (regions: %s, clock factor %.0fx)",
		tcp.Addr(), *regionsFlag, *factor)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("wiera: shutting down")
	tcp.Close()
	for _, ts := range tieraServers {
		ts.Close()
	}
	server.Close()
	fabric.Close()
}

// frontend bridges TCP requests onto the in-process fabric. Management
// methods go to the Wiera server; data methods are proxied to the closest
// node of the instance named in the request key prefix "<instance>/".
type frontend struct {
	fabric *transport.Fabric
	server *wiera.Server

	mu      sync.Mutex
	clients map[string]*wiera.Client // per instance id
	nextID  int
}

func (f *frontend) handle(method string, payload []byte) ([]byte, error) {
	switch method {
	case wiera.MethodStartInstances, wiera.MethodStopInstances, wiera.MethodGetInstances, wiera.MethodCollectStats:
		ep, cleanup, err := f.ephemeralEndpoint()
		if err != nil {
			return nil, err
		}
		defer cleanup()
		return ep.Call(f.server.Name(), method, payload)
	case wiera.MethodPut, wiera.MethodGet, wiera.MethodGetVersion,
		wiera.MethodVersionList, wiera.MethodRemove, wiera.MethodRemoveVer:
		// Data methods carry the instance id in a ProxyRequest envelope.
		var env wiera.ProxyRequest
		if err := transport.Decode(payload, &env); err != nil {
			return nil, err
		}
		cli, err := f.client(env.InstanceID)
		if err != nil {
			return nil, err
		}
		return cli.Call(method, env.Payload)
	default:
		return nil, fmt.Errorf("wiera: unknown method %q", method)
	}
}

func (f *frontend) ephemeralEndpoint() (*transport.Endpoint, func(), error) {
	f.mu.Lock()
	f.nextID++
	name := fmt.Sprintf("tcp-front/%d", f.nextID)
	f.mu.Unlock()
	ep, err := f.fabric.NewEndpoint(name, simnet.USEast)
	if err != nil {
		return nil, nil, err
	}
	return ep, func() { f.fabric.Remove(name) }, nil
}

func (f *frontend) client(instanceID string) (*wiera.Client, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.clients == nil {
		f.clients = make(map[string]*wiera.Client)
	}
	if cli, ok := f.clients[instanceID]; ok {
		return cli, nil
	}
	f.nextID++
	name := fmt.Sprintf("tcp-client/%d", f.nextID)
	cli, err := wiera.NewClient(f.fabric, name, simnet.USEast, f.server.Name(), instanceID)
	if err != nil {
		return nil, err
	}
	f.clients[instanceID] = cli
	return cli, nil
}

// Command wiera runs a complete Wiera deployment as a daemon: the control
// plane (WUI/GPM/TSM), a coordination service, and one Tiera server per
// configured region, all over the simulated multi-cloud WAN, fronted by a
// real TCP endpoint so external clients (cmd/wieractl) can manage
// instances and store data.
//
// Usage:
//
//	wiera [-listen 127.0.0.1:7360] [-metrics-addr 127.0.0.1:7361]
//	      [-regions us-east,us-west,eu-west,asia-east] [-factor 50]
//	      [-workers N]
//
// -workers sets the default per-region worker pool size for new instances:
// each region of an instance runs N Tiera workers that split the keyspace
// over a consistent-hash ring (a start request carrying its own workers
// param wins). Pools grow and shrink online via wieractl grow/shrink, and
// wieractl ring shows the resulting key ownership.
//
// The TCP front serves the Table 1 management API (startInstances /
// stopInstances / getInstances) and proxies the Table 2 data API (put /
// get / getVersion / getVersionList / remove / removeVersion) to the
// closest node of the named instance. With -metrics-addr set, an HTTP
// server exposes the fabric's telemetry: /metrics in Prometheus text
// format (histogram buckets carry trace-ID exemplars), /cluster/metrics
// with the fleet-merged view of this daemon plus every -peers daemon,
// /healthz with a JSON liveness summary, /events with the structured
// event journal, /traces as JSON (filter one trace with ?trace=<id>,
// ?analyze=1 for critical-path attribution), and /debug/requests with the
// flight recorder's per-request hop breakdowns (?slow=1 for the
// always-keep slow/expensive log, ?format=text for a table).
// -trace-sample N head-samples 1 in N root traces; slow requests force
// the next root to be sampled regardless. -pprof mounts net/http/pprof
// under /debug/pprof on the same HTTP server. A runtime watchdog always
// runs, exporting watch_* gauges and journaling watch.trip/watch.clear
// edges.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"repro/internal/clock"
	"repro/internal/coord"
	"repro/internal/flight"
	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/watch"
	"repro/internal/wiera"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7360", "TCP listen address")
	metricsAddr := flag.String("metrics-addr", "127.0.0.1:7361", "HTTP address for /metrics and /traces (empty = disabled)")
	regionsFlag := flag.String("regions", "us-east,us-west,eu-west,asia-east", "comma-separated simulated regions")
	workers := flag.Int("workers", 1, "default per-region worker pool size for new instances (overridable per start request)")
	factor := flag.Float64("factor", 50, "clock compression factor for the simulated WAN")
	traceSample := flag.Int("trace-sample", 0, "head-sample 1 in N root traces (0 = trace everything; slow requests are always sampled)")
	peersFlag := flag.String("peers", "", "comma-separated TCP addresses of peer daemons to scrape for /cluster/metrics")
	nodeName := flag.String("node", "", "this daemon's name in merged fleet views (default: the listen address)")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof on the metrics server")
	flag.Parse()

	source := *nodeName
	if source == "" {
		source = *listen
	}

	clk := clock.NewScaled(*factor)
	net := simnet.New(clk)
	fabric := transport.NewFabric(net)
	if *traceSample > 0 {
		fabric.Tracer().SetAutoSample(*traceSample)
	}

	cs := coord.NewServer(clk)
	cs.AttachJournal(fabric.Events())
	zkEP, err := fabric.NewEndpoint("zk", simnet.USEast)
	if err != nil {
		log.Fatalf("wiera: %v", err)
	}
	zkEP.Serve(cs.Handler())

	server, err := wiera.NewServer(wiera.ServerConfig{Fabric: fabric, CoordDst: "zk"})
	if err != nil {
		log.Fatalf("wiera: %v", err)
	}
	var tieraServers []*wiera.TieraServer
	for _, r := range strings.Split(*regionsFlag, ",") {
		region := simnet.Region(strings.TrimSpace(r))
		if region == "" {
			continue
		}
		ts, err := wiera.NewTieraServer(fabric, region, server, "zk")
		if err != nil {
			log.Fatalf("wiera: tiera server %s: %v", region, err)
		}
		tieraServers = append(tieraServers, ts)
	}
	server.Start()

	var peers []string
	for _, p := range strings.Split(*peersFlag, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	front := &frontend{fabric: fabric, server: server, defaultWorkers: *workers,
		source: source, peers: peers}
	tcp, err := transport.ListenTCP(*listen, front.handle,
		transport.WithServerTelemetry(fabric.Metrics(), fabric.Tracer()))
	if err != nil {
		log.Fatalf("wiera: %v", err)
	}
	log.Printf("wiera: control plane listening on %s (regions: %s, clock factor %.0fx)",
		tcp.Addr(), *regionsFlag, *factor)

	// The watchdog samples this process's own runtime health (goroutines,
	// heap, scheduler lag, replication-queue stalls) into watch_* gauges
	// and journals trip/clear edges alongside the cluster events.
	dog := watch.NewWatchdog(watch.WatchdogConfig{
		Registry: fabric.Metrics(),
		Journal:  fabric.Events(),
		Scope:    source,
		Probes: []watch.Probe{
			watch.GaugeSumProbe(fabric.Metrics(), "wiera_queue_depth", "queue-depth", 100000),
		},
	})
	dog.Start()

	var httpSrv *http.Server
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", telemetry.MetricsHandler(fabric.Metrics()))
		mux.Handle("/traces", telemetry.TracesHandler(fabric.Tracer()))
		mux.Handle("/debug/requests", flight.Handler(fabric.Flight()))
		mux.HandleFunc("/healthz", front.healthz)
		mux.HandleFunc("/cluster/metrics", front.clusterMetricsHTTP)
		mux.HandleFunc("/events", front.eventsHTTP)
		if *pprofFlag {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		httpSrv = &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("wiera: metrics server: %v", err)
			}
		}()
		log.Printf("wiera: telemetry on http://%s/metrics, /cluster/metrics, /healthz, /events, /traces, and /debug/requests", *metricsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("wiera: shutting down")
	dog.Stop()
	if httpSrv != nil {
		_ = httpSrv.Close()
	}
	tcp.Close()
	for _, ts := range tieraServers {
		ts.Close()
	}
	server.Close()
	fabric.Close()
}

// frontend bridges TCP requests onto the in-process fabric. Management
// methods go to the Wiera server; data methods are proxied to the closest
// node of the instance named in the request key prefix "<instance>/";
// telemetry dumps are answered directly from the fabric's registry and
// tracer.
type frontend struct {
	fabric         *transport.Fabric
	server         *wiera.Server
	defaultWorkers int      // injected into startInstances when the request has no workers param
	source         string   // this daemon's name in merged fleet views
	peers          []string // peer daemon TCP addresses scraped for cluster metrics

	mu          sync.Mutex
	clients     map[string]*wiera.Client        // per instance id
	peerClients map[string]*transport.TCPClient // per peer address
	nextID      int
}

func (f *frontend) handle(ctx context.Context, method string, payload []byte) ([]byte, error) {
	switch method {
	case wiera.MethodStartInstances, wiera.MethodStopInstances, wiera.MethodGetInstances,
		wiera.MethodCollectStats, wiera.MethodAddWorker, wiera.MethodRemoveWorker,
		wiera.MethodHeatTop:
		if method == wiera.MethodStartInstances && f.defaultWorkers > 1 {
			var err error
			if payload, err = f.injectWorkers(payload); err != nil {
				return nil, err
			}
		}
		ep, cleanup, err := f.ephemeralEndpoint()
		if err != nil {
			return nil, err
		}
		defer cleanup()
		return ep.Call(ctx, f.server.Name(), method, payload)
	case wiera.MethodPut, wiera.MethodGet, wiera.MethodGetVersion,
		wiera.MethodVersionList, wiera.MethodRemove, wiera.MethodRemoveVer,
		wiera.MethodPlacement:
		// Data methods carry the instance id in a ProxyRequest envelope.
		var env wiera.ProxyRequest
		if err := transport.Decode(payload, &env); err != nil {
			return nil, err
		}
		cli, err := f.client(env.InstanceID)
		if err != nil {
			return nil, err
		}
		// External clients (wieractl) don't carry trace context; root a
		// sampled span here so daemon-side requests show up in /traces.
		if telemetry.SpanFromContext(ctx) == nil {
			if sp := f.fabric.Tracer().SampleRoot("front." + strings.TrimPrefix(method, "wiera.")); sp != nil {
				sp.SetAttr("instance", env.InstanceID)
				defer sp.End()
				ctx = telemetry.ContextWithSpan(ctx, sp)
			}
		}
		// Route by the request's key so sharded instances are hit at the
		// owning worker instead of bouncing off wrong-shard NACKs.
		key, err := dataKey(method, env.Payload)
		if err != nil {
			return nil, err
		}
		return cli.CallKeyed(ctx, key, method, env.Payload)
	case wiera.MethodMetricsDump:
		return transport.Encode(wiera.MetricsDumpResponse{
			Prometheus: f.fabric.Metrics().RenderPrometheus(),
		})
	case wiera.MethodTraceDump:
		var req wiera.TraceDumpRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		tr := f.fabric.Tracer()
		var spans []telemetry.SpanRecord
		if req.TraceID != "" {
			spans = tr.TraceSpans(req.TraceID)
		} else {
			spans = tr.Spans()
		}
		return transport.Encode(wiera.TraceDumpResponse{Spans: spans})
	case wiera.MethodFlightDump:
		var req wiera.FlightDumpRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		dump := flight.Dump(f.fabric.Flight(), req.SlowOnly, req.Max)
		return transport.Encode(wiera.FlightDumpResponse{
			TotalSeen: dump.TotalSeen, SlowSeen: dump.SlowSeen, Records: dump.Records,
		})
	case wiera.MethodMetricsSnapshot:
		return transport.Encode(wiera.MetricsSnapshotResponse{
			Source:   f.source,
			Families: f.fabric.Metrics().Snapshot(),
		})
	case wiera.MethodClusterMetrics:
		sources, failed, merged := f.clusterMetrics(ctx)
		return transport.Encode(wiera.ClusterMetricsResponse{
			Sources: sources, Failed: failed, Families: merged,
		})
	case wiera.MethodEventsDump:
		var req wiera.EventsDumpRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		j := f.fabric.Events()
		return transport.Encode(wiera.EventsDumpResponse{
			Total: j.Total(), Events: j.Events(req.Max),
		})
	default:
		return nil, fmt.Errorf("wiera: unknown method %q", method)
	}
}

// dataKey extracts the object key from an encoded Table 2 data request.
func dataKey(method string, payload []byte) (string, error) {
	var req any
	switch method {
	case wiera.MethodPut:
		req = &wiera.PutRequest{}
	case wiera.MethodGet:
		req = &wiera.GetRequest{}
	case wiera.MethodGetVersion:
		req = &wiera.GetVersionRequest{}
	case wiera.MethodVersionList:
		req = &wiera.VersionListRequest{}
	case wiera.MethodRemove:
		req = &wiera.RemoveRequest{}
	case wiera.MethodRemoveVer:
		req = &wiera.RemoveVersionRequest{}
	case wiera.MethodPlacement:
		req = &wiera.PlacementRequest{}
	default:
		return "", nil
	}
	if err := transport.Decode(payload, req); err != nil {
		return "", err
	}
	switch r := req.(type) {
	case *wiera.PutRequest:
		return r.Key, nil
	case *wiera.GetRequest:
		return r.Key, nil
	case *wiera.GetVersionRequest:
		return r.Key, nil
	case *wiera.VersionListRequest:
		return r.Key, nil
	case *wiera.RemoveRequest:
		return r.Key, nil
	case *wiera.RemoveVersionRequest:
		return r.Key, nil
	case *wiera.PlacementRequest:
		return r.Key, nil
	}
	return "", nil
}

// injectWorkers applies the daemon's -workers default to a startInstances
// request that doesn't name a pool size itself.
func (f *frontend) injectWorkers(payload []byte) ([]byte, error) {
	var req wiera.StartInstancesRequest
	if err := transport.Decode(payload, &req); err != nil {
		return nil, err
	}
	if _, ok := req.Params["workers"]; ok {
		return payload, nil
	}
	if req.Params == nil {
		req.Params = map[string]string{}
	}
	req.Params["workers"] = fmt.Sprintf("%d", f.defaultWorkers)
	return transport.Encode(req)
}

func (f *frontend) ephemeralEndpoint() (*transport.Endpoint, func(), error) {
	f.mu.Lock()
	f.nextID++
	name := fmt.Sprintf("tcp-front/%d", f.nextID)
	f.mu.Unlock()
	ep, err := f.fabric.NewEndpoint(name, simnet.USEast)
	if err != nil {
		return nil, nil, err
	}
	return ep, func() { f.fabric.Remove(name) }, nil
}

// clusterMetrics merges this daemon's registry with a MethodMetricsSnapshot
// scrape of every -peers daemon. Unreachable peers are reported in failed
// and left out of the merge — a partial fleet view is still a view.
func (f *frontend) clusterMetrics(ctx context.Context) (sources, failed []string, merged []telemetry.FamilySnapshot) {
	snaps := []telemetry.SourceSnapshot{{Source: f.source, Families: f.fabric.Metrics().Snapshot()}}
	sources = []string{f.source}
	req, err := transport.Encode(wiera.MetricsSnapshotRequest{})
	if err != nil {
		return sources, nil, telemetry.MergeSnapshots(snaps...)
	}
	for _, addr := range f.peers {
		raw, err := f.peerClient(addr).Call(ctx, "", wiera.MethodMetricsSnapshot, req)
		if err != nil {
			failed = append(failed, addr)
			continue
		}
		var resp wiera.MetricsSnapshotResponse
		if err := transport.Decode(raw, &resp); err != nil {
			failed = append(failed, addr)
			continue
		}
		name := resp.Source
		if name == "" {
			name = addr
		}
		snaps = append(snaps, telemetry.SourceSnapshot{Source: name, Families: resp.Families})
		sources = append(sources, name)
	}
	return sources, failed, telemetry.MergeSnapshots(snaps...)
}

// peerClient returns the cached multiplexed TCP client for a peer daemon.
func (f *frontend) peerClient(addr string) *transport.TCPClient {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.peerClients == nil {
		f.peerClients = make(map[string]*transport.TCPClient)
	}
	cli, ok := f.peerClients[addr]
	if !ok {
		cli = transport.DialTCP(addr)
		f.peerClients[addr] = cli
	}
	return cli
}

// healthz answers the liveness probe: instance shapes (workers, ring
// epoch), whether any SLO alert is firing, and the event journal size.
func (f *frontend) healthz(w http.ResponseWriter, _ *http.Request) {
	firing := false
	for _, fam := range f.fabric.Metrics().Snapshot() {
		if fam.Name != "slo_violation" {
			continue
		}
		for _, m := range fam.Metrics {
			if m.Value > 0 {
				firing = true
			}
		}
	}
	instances := f.server.Health()
	workers, tenants := 0, 0
	for _, h := range instances {
		workers += h.Nodes
		tenants += h.Tenants
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":    "ok",
		"node":      f.source,
		"instances": instances,
		"workers":   workers,
		"tenants":   tenants,
		"sloFiring": firing,
		"events":    f.fabric.Events().Total(),
	})
}

// clusterMetricsHTTP serves the merged fleet registry in Prometheus text
// format (exemplars included), mirroring MethodClusterMetrics for scrapers.
func (f *frontend) clusterMetricsHTTP(w http.ResponseWriter, r *http.Request) {
	sources, failed, merged := f.clusterMetrics(r.Context())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# cluster sources: %s\n", strings.Join(sources, ", "))
	if len(failed) > 0 {
		fmt.Fprintf(w, "# unreachable peers: %s\n", strings.Join(failed, ", "))
	}
	_, _ = w.Write([]byte(telemetry.RenderSnapshot(merged)))
}

// eventsHTTP serves the structured event journal as JSON, newest-capped by
// a validated ?n= (default 200).
func (f *frontend) eventsHTTP(w http.ResponseWriter, r *http.Request) {
	n := telemetry.ClampQueryInt(r.URL.Query().Get("n"), 200, watch.DefaultJournalCapacity)
	j := f.fabric.Events()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"total":  j.Total(),
		"events": j.Events(n),
	})
}

func (f *frontend) client(instanceID string) (*wiera.Client, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.clients == nil {
		f.clients = make(map[string]*wiera.Client)
	}
	if cli, ok := f.clients[instanceID]; ok {
		return cli, nil
	}
	f.nextID++
	name := fmt.Sprintf("tcp-client/%d", f.nextID)
	cli, err := wiera.NewClient(f.fabric, name, simnet.USEast, f.server.Name(), instanceID)
	if err != nil {
		return nil, err
	}
	f.clients[instanceID] = cli
	return cli, nil
}

// Command wiera runs a complete Wiera deployment as a daemon: the control
// plane (WUI/GPM/TSM), a coordination service, and one Tiera server per
// configured region, all over the simulated multi-cloud WAN, fronted by a
// real TCP endpoint so external clients (cmd/wieractl) can manage
// instances and store data.
//
// Usage:
//
//	wiera [-listen 127.0.0.1:7360] [-metrics-addr 127.0.0.1:7361]
//	      [-regions us-east,us-west,eu-west,asia-east] [-factor 50]
//	      [-workers N]
//
// -workers sets the default per-region worker pool size for new instances:
// each region of an instance runs N Tiera workers that split the keyspace
// over a consistent-hash ring (a start request carrying its own workers
// param wins). Pools grow and shrink online via wieractl grow/shrink, and
// wieractl ring shows the resulting key ownership.
//
// The TCP front serves the Table 1 management API (startInstances /
// stopInstances / getInstances) and proxies the Table 2 data API (put /
// get / getVersion / getVersionList / remove / removeVersion) to the
// closest node of the named instance. With -metrics-addr set, an HTTP
// server exposes the fabric's telemetry: /metrics in Prometheus text
// format, /traces as JSON (filter one trace with ?trace=<id>), and
// /debug/requests with the flight recorder's per-request hop breakdowns
// (?slow=1 for the always-keep slow/expensive log, ?format=text for a
// table). -trace-sample N head-samples 1 in N root traces; slow requests
// force the next root to be sampled regardless.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"repro/internal/clock"
	"repro/internal/coord"
	"repro/internal/flight"
	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wiera"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7360", "TCP listen address")
	metricsAddr := flag.String("metrics-addr", "127.0.0.1:7361", "HTTP address for /metrics and /traces (empty = disabled)")
	regionsFlag := flag.String("regions", "us-east,us-west,eu-west,asia-east", "comma-separated simulated regions")
	workers := flag.Int("workers", 1, "default per-region worker pool size for new instances (overridable per start request)")
	factor := flag.Float64("factor", 50, "clock compression factor for the simulated WAN")
	traceSample := flag.Int("trace-sample", 0, "head-sample 1 in N root traces (0 = trace everything; slow requests are always sampled)")
	flag.Parse()

	clk := clock.NewScaled(*factor)
	net := simnet.New(clk)
	fabric := transport.NewFabric(net)
	if *traceSample > 0 {
		fabric.Tracer().SetAutoSample(*traceSample)
	}

	cs := coord.NewServer(clk)
	zkEP, err := fabric.NewEndpoint("zk", simnet.USEast)
	if err != nil {
		log.Fatalf("wiera: %v", err)
	}
	zkEP.Serve(cs.Handler())

	server, err := wiera.NewServer(wiera.ServerConfig{Fabric: fabric, CoordDst: "zk"})
	if err != nil {
		log.Fatalf("wiera: %v", err)
	}
	var tieraServers []*wiera.TieraServer
	for _, r := range strings.Split(*regionsFlag, ",") {
		region := simnet.Region(strings.TrimSpace(r))
		if region == "" {
			continue
		}
		ts, err := wiera.NewTieraServer(fabric, region, server, "zk")
		if err != nil {
			log.Fatalf("wiera: tiera server %s: %v", region, err)
		}
		tieraServers = append(tieraServers, ts)
	}
	server.Start()

	front := &frontend{fabric: fabric, server: server, defaultWorkers: *workers}
	tcp, err := transport.ListenTCP(*listen, front.handle,
		transport.WithServerTelemetry(fabric.Metrics(), fabric.Tracer()))
	if err != nil {
		log.Fatalf("wiera: %v", err)
	}
	log.Printf("wiera: control plane listening on %s (regions: %s, clock factor %.0fx)",
		tcp.Addr(), *regionsFlag, *factor)

	var httpSrv *http.Server
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", telemetry.MetricsHandler(fabric.Metrics()))
		mux.Handle("/traces", telemetry.TracesHandler(fabric.Tracer()))
		mux.Handle("/debug/requests", flight.Handler(fabric.Flight()))
		httpSrv = &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("wiera: metrics server: %v", err)
			}
		}()
		log.Printf("wiera: telemetry on http://%s/metrics, /traces, and /debug/requests", *metricsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("wiera: shutting down")
	if httpSrv != nil {
		_ = httpSrv.Close()
	}
	tcp.Close()
	for _, ts := range tieraServers {
		ts.Close()
	}
	server.Close()
	fabric.Close()
}

// frontend bridges TCP requests onto the in-process fabric. Management
// methods go to the Wiera server; data methods are proxied to the closest
// node of the instance named in the request key prefix "<instance>/";
// telemetry dumps are answered directly from the fabric's registry and
// tracer.
type frontend struct {
	fabric         *transport.Fabric
	server         *wiera.Server
	defaultWorkers int // injected into startInstances when the request has no workers param

	mu      sync.Mutex
	clients map[string]*wiera.Client // per instance id
	nextID  int
}

func (f *frontend) handle(ctx context.Context, method string, payload []byte) ([]byte, error) {
	switch method {
	case wiera.MethodStartInstances, wiera.MethodStopInstances, wiera.MethodGetInstances,
		wiera.MethodCollectStats, wiera.MethodAddWorker, wiera.MethodRemoveWorker,
		wiera.MethodHeatTop:
		if method == wiera.MethodStartInstances && f.defaultWorkers > 1 {
			var err error
			if payload, err = f.injectWorkers(payload); err != nil {
				return nil, err
			}
		}
		ep, cleanup, err := f.ephemeralEndpoint()
		if err != nil {
			return nil, err
		}
		defer cleanup()
		return ep.Call(ctx, f.server.Name(), method, payload)
	case wiera.MethodPut, wiera.MethodGet, wiera.MethodGetVersion,
		wiera.MethodVersionList, wiera.MethodRemove, wiera.MethodRemoveVer,
		wiera.MethodPlacement:
		// Data methods carry the instance id in a ProxyRequest envelope.
		var env wiera.ProxyRequest
		if err := transport.Decode(payload, &env); err != nil {
			return nil, err
		}
		cli, err := f.client(env.InstanceID)
		if err != nil {
			return nil, err
		}
		// External clients (wieractl) don't carry trace context; root a
		// sampled span here so daemon-side requests show up in /traces.
		if telemetry.SpanFromContext(ctx) == nil {
			if sp := f.fabric.Tracer().SampleRoot("front." + strings.TrimPrefix(method, "wiera.")); sp != nil {
				sp.SetAttr("instance", env.InstanceID)
				defer sp.End()
				ctx = telemetry.ContextWithSpan(ctx, sp)
			}
		}
		// Route by the request's key so sharded instances are hit at the
		// owning worker instead of bouncing off wrong-shard NACKs.
		key, err := dataKey(method, env.Payload)
		if err != nil {
			return nil, err
		}
		return cli.CallKeyed(ctx, key, method, env.Payload)
	case wiera.MethodMetricsDump:
		return transport.Encode(wiera.MetricsDumpResponse{
			Prometheus: f.fabric.Metrics().RenderPrometheus(),
		})
	case wiera.MethodTraceDump:
		var req wiera.TraceDumpRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		tr := f.fabric.Tracer()
		var spans []telemetry.SpanRecord
		if req.TraceID != "" {
			spans = tr.TraceSpans(req.TraceID)
		} else {
			spans = tr.Spans()
		}
		return transport.Encode(wiera.TraceDumpResponse{Spans: spans})
	case wiera.MethodFlightDump:
		var req wiera.FlightDumpRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		dump := flight.Dump(f.fabric.Flight(), req.SlowOnly, req.Max)
		return transport.Encode(wiera.FlightDumpResponse{
			TotalSeen: dump.TotalSeen, SlowSeen: dump.SlowSeen, Records: dump.Records,
		})
	default:
		return nil, fmt.Errorf("wiera: unknown method %q", method)
	}
}

// dataKey extracts the object key from an encoded Table 2 data request.
func dataKey(method string, payload []byte) (string, error) {
	var req any
	switch method {
	case wiera.MethodPut:
		req = &wiera.PutRequest{}
	case wiera.MethodGet:
		req = &wiera.GetRequest{}
	case wiera.MethodGetVersion:
		req = &wiera.GetVersionRequest{}
	case wiera.MethodVersionList:
		req = &wiera.VersionListRequest{}
	case wiera.MethodRemove:
		req = &wiera.RemoveRequest{}
	case wiera.MethodRemoveVer:
		req = &wiera.RemoveVersionRequest{}
	case wiera.MethodPlacement:
		req = &wiera.PlacementRequest{}
	default:
		return "", nil
	}
	if err := transport.Decode(payload, req); err != nil {
		return "", err
	}
	switch r := req.(type) {
	case *wiera.PutRequest:
		return r.Key, nil
	case *wiera.GetRequest:
		return r.Key, nil
	case *wiera.GetVersionRequest:
		return r.Key, nil
	case *wiera.VersionListRequest:
		return r.Key, nil
	case *wiera.RemoveRequest:
		return r.Key, nil
	case *wiera.RemoveVersionRequest:
		return r.Key, nil
	case *wiera.PlacementRequest:
		return r.Key, nil
	}
	return "", nil
}

// injectWorkers applies the daemon's -workers default to a startInstances
// request that doesn't name a pool size itself.
func (f *frontend) injectWorkers(payload []byte) ([]byte, error) {
	var req wiera.StartInstancesRequest
	if err := transport.Decode(payload, &req); err != nil {
		return nil, err
	}
	if _, ok := req.Params["workers"]; ok {
		return payload, nil
	}
	if req.Params == nil {
		req.Params = map[string]string{}
	}
	req.Params["workers"] = fmt.Sprintf("%d", f.defaultWorkers)
	return transport.Encode(req)
}

func (f *frontend) ephemeralEndpoint() (*transport.Endpoint, func(), error) {
	f.mu.Lock()
	f.nextID++
	name := fmt.Sprintf("tcp-front/%d", f.nextID)
	f.mu.Unlock()
	ep, err := f.fabric.NewEndpoint(name, simnet.USEast)
	if err != nil {
		return nil, nil, err
	}
	return ep, func() { f.fabric.Remove(name) }, nil
}

func (f *frontend) client(instanceID string) (*wiera.Client, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.clients == nil {
		f.clients = make(map[string]*wiera.Client)
	}
	if cli, ok := f.clients[instanceID]; ok {
		return cli, nil
	}
	f.nextID++
	name := fmt.Sprintf("tcp-client/%d", f.nextID)
	cli, err := wiera.NewClient(f.fabric, name, simnet.USEast, f.server.Name(), instanceID)
	if err != nil {
		return nil, err
	}
	f.clients[instanceID] = cli
	return cli, nil
}

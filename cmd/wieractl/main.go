// Command wieractl is the client CLI for a running cmd/wiera daemon: it
// manages Wiera instances (Table 1) and stores/retrieves objects (Table 2)
// over TCP.
//
// Usage:
//
//	wieractl [-addr 127.0.0.1:7360] start  -id myapp -policy policy.wiera [-param t=2s] [-dynamic dyn.wiera] [-workers N]
//	wieractl [-addr 127.0.0.1:7360] stop   -id myapp
//	wieractl [-addr 127.0.0.1:7360] list   -id myapp
//	wieractl [-addr 127.0.0.1:7360] stats  -id myapp
//	wieractl [-addr 127.0.0.1:7360] put    -id myapp -key k [-value v | -file f] [-tenant t]
//	wieractl [-addr 127.0.0.1:7360] get    -id myapp -key k [-version N] [-tenant t]
//	wieractl [-addr 127.0.0.1:7360] versions -id myapp -key k [-tenant t]
//	wieractl [-addr 127.0.0.1:7360] placement -id myapp -key k [-tenant t]
//	wieractl [-addr 127.0.0.1:7360] remove -id myapp -key k [-version N] [-tenant t]
//	wieractl [-addr 127.0.0.1:7360] tenants -id myapp
//	wieractl [-addr 127.0.0.1:7360] policies
//	wieractl [-addr 127.0.0.1:7360] metrics
//	wieractl [-addr 127.0.0.1:7360] cluster [-raw]
//	wieractl [-addr 127.0.0.1:7360] events [-n 50] [-raw]
//	wieractl [-addr 127.0.0.1:7360] repair
//	wieractl [-addr 127.0.0.1:7360] trace [-trace <id>] [-analyze] [-raw]
//	wieractl [-addr 127.0.0.1:7360] slow  [-n 20] [-all] [-summary] [-raw]
//	wieractl [-addr 127.0.0.1:7360] top   -id myapp [-watch] [-interval 2s]
//	wieractl [-addr 127.0.0.1:7360] ring  -id myapp
//	wieractl [-addr 127.0.0.1:7360] grow  -id myapp
//	wieractl [-addr 127.0.0.1:7360] shrink -id myapp
//	wieractl [-addr 127.0.0.1:7360] heat  -id myapp [-n 20]
//
// ring shows the instance's consistent-hash ring: map epoch and, per
// worker, the shard index, virtual nodes, key/byte ownership, cumulative
// migration counters, and any in-flight migrations. grow adds one worker
// per region (rebalancing the keyspace online); shrink removes one.
//
// tenants aggregates the instance's per-tenant accounting across its
// worker nodes: configured weight and quotas, admitted ops, payload bytes
// in/out, quota denials, and the weighted-fair queue wait / op latency
// p99s. -tenant on the data commands scopes the key into that tenant's
// namespace (the same qualification a tenant-scoped client applies).
//
// heat prints the instance's hottest keys (decayed access-rate estimates
// merged across every worker's sketch, hottest first) — the same ranking
// the heat tracker promotes into selective hot-key replication.
//
// placement shows where a key's latest version physically lives: the
// scheme it was stored under (full replicas vs an erasure-coded k+m
// stripe), and per node the fragment indexes held and physical bytes —
// the storage-cost view of the per-object replication/EC chooser.
//
// slow prints the flight recorder's always-keep slow/expensive request log
// (hop-by-hop tier/RPC/lock/repair breakdown with attributed cost) plus
// the current per-op p99 exemplar traces; -all switches to the
// recent-request ring. top is a one-shot (or -watch refreshed) health view
// combining per-node operation stats, anti-entropy repair counters, SLO
// error-budget burn gauges, the most recent journal events, and — when the
// instance runs the elastic controller or heat tracker — the autoscale_*
// decision gauges and heat_* promotion counters.
//
// cluster asks the daemon for the fleet-merged metric view (itself plus
// every daemon it was started with -peers for) and prints true fleet-wide
// per-op latency percentiles with their p99 exemplar trace IDs — each
// resolvable via trace -trace <id> -analyze, which attributes the trace's
// wall time across its critical path by hop kind (queue/lock/tier/rpc/
// repair/batch). events prints the daemon's structured event journal
// (ring epoch changes, autoscale decisions, SLO fire/clear edges, hot-key
// promotions, repair cycles, watchdog trips) oldest-first.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/flight"
	"repro/internal/object"
	"repro/internal/policy"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/internal/transport"
	"repro/internal/watch"
	"repro/internal/wiera"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "wieractl: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	global := flag.NewFlagSet("wieractl", flag.ExitOnError)
	addr := global.String("addr", "127.0.0.1:7360", "wiera daemon address")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: wieractl [-addr host:port] <start|stop|list|stats|put|get|versions|placement|remove|policies|metrics|cluster|events|repair|trace|slow|top|ring|grow|shrink|heat|tenants> ...")
	}
	cmdName, cmdArgs := rest[0], rest[1:]
	if cmdName == "policies" {
		names := policy.BuiltinNames()
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return nil
	}

	cli := transport.DialTCP(*addr)
	defer cli.Close()

	fs := flag.NewFlagSet(cmdName, flag.ExitOnError)
	id := fs.String("id", "", "wiera instance id")
	key := fs.String("key", "", "object key")
	value := fs.String("value", "", "object value (string)")
	file := fs.String("file", "", "read object value from file")
	version := fs.Int64("version", 0, "object version (0 = latest)")
	policyPath := fs.String("policy", "", "global policy source file, or a builtin policy name")
	dynamicPath := fs.String("dynamic", "", "dynamic (control) policy source file or builtin name")
	traceID := fs.String("trace", "", "trace id to dump (trace command; empty = all spans)")
	analyze := fs.Bool("analyze", false, "critical-path analysis of one trace (trace command; requires -trace)")
	rawSpans := fs.Bool("raw", false, "print output as JSON instead of a table/tree (trace, slow commands)")
	maxN := fs.Int("n", 20, "max records to show (slow, heat commands)")
	allRecs := fs.Bool("all", false, "show the recent-request ring instead of the slowlog (slow command)")
	summary := fs.Bool("summary", false, "append a per-hop-kind aggregate (slow command)")
	watch := fs.Bool("watch", false, "refresh continuously (top command)")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval for -watch (top command)")
	workers := fs.Int("workers", 0, "per-region worker pool size (start command; 0 = daemon default)")
	tenantID := fs.String("tenant", "", "tenant namespace for data commands (empty = default tenant)")
	var params paramFlags
	fs.Var(&params, "param", "policy parameter binding name=value (repeatable)")
	if err := fs.Parse(cmdArgs); err != nil {
		return err
	}
	// Telemetry commands read daemon-wide state; they take no instance id.
	switch cmdName {
	case "metrics":
		var resp wiera.MetricsDumpResponse
		if err := call(cli, wiera.MethodMetricsDump, wiera.MetricsDumpRequest{}, &resp); err != nil {
			return err
		}
		fmt.Print(resp.Prometheus)
		return nil
	case "repair":
		// Anti-entropy health: the repair_* metric families (pending hints,
		// replayed hints, keys repaired, digest rounds, ...) across every
		// node the daemon hosts.
		var resp wiera.MetricsDumpResponse
		if err := call(cli, wiera.MethodMetricsDump, wiera.MetricsDumpRequest{}, &resp); err != nil {
			return err
		}
		printed := false
		for _, line := range strings.Split(resp.Prometheus, "\n") {
			trimmed := strings.TrimPrefix(strings.TrimPrefix(line, "# HELP "), "# TYPE ")
			if strings.HasPrefix(trimmed, "repair_") {
				fmt.Println(line)
				printed = true
			}
		}
		if !printed {
			fmt.Println("no repair metrics (anti-entropy disabled or no instances running)")
		}
		return nil
	case "trace":
		var resp wiera.TraceDumpResponse
		if err := call(cli, wiera.MethodTraceDump, wiera.TraceDumpRequest{TraceID: *traceID}, &resp); err != nil {
			return err
		}
		if *analyze {
			if *traceID == "" {
				return fmt.Errorf("-analyze requires -trace <id>")
			}
			a, err := telemetry.AnalyzeTrace(resp.Spans)
			if err != nil {
				return fmt.Errorf("trace %s: %w", *traceID, err)
			}
			if *rawSpans {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				return enc.Encode(a)
			}
			fmt.Print(telemetry.RenderAnalysis(a))
			return nil
		}
		if *rawSpans {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(resp.Spans)
		}
		fmt.Print(telemetry.RenderSpanTree(resp.Spans))
		return nil
	case "cluster":
		var resp wiera.ClusterMetricsResponse
		if err := call(cli, wiera.MethodClusterMetrics, wiera.ClusterMetricsRequest{}, &resp); err != nil {
			return err
		}
		if *rawSpans {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(resp)
		}
		fmt.Print(renderCluster(resp))
		return nil
	case "events":
		var resp wiera.EventsDumpResponse
		if err := call(cli, wiera.MethodEventsDump, wiera.EventsDumpRequest{Max: *maxN}, &resp); err != nil {
			return err
		}
		if *rawSpans {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(resp)
		}
		if len(resp.Events) == 0 {
			fmt.Println("no events recorded yet")
			return nil
		}
		fmt.Printf("events (%d shown; %d recorded since start)\n", len(resp.Events), resp.Total)
		fmt.Print(renderEvents(resp.Events))
		return nil
	case "slow":
		var resp wiera.FlightDumpResponse
		if err := call(cli, wiera.MethodFlightDump,
			wiera.FlightDumpRequest{SlowOnly: !*allRecs, Max: *maxN}, &resp); err != nil {
			return err
		}
		if *rawSpans {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(resp)
		}
		which := "slow/expensive"
		if *allRecs {
			which = "recent"
		}
		fmt.Printf("%s requests (%d shown; %d seen, %d slow since start)\n",
			which, len(resp.Records), resp.TotalSeen, resp.SlowSeen)
		fmt.Print(flight.RenderRecords(resp.Records))
		if *summary {
			fmt.Print(flight.RenderHopSummary(resp.Records))
		}
		// Tail exemplars: the concrete traces currently sitting in each op's
		// p99 bucket — the fastest route from "the tail is slow" to a trace.
		var snap wiera.MetricsSnapshotResponse
		if err := call(cli, wiera.MethodMetricsSnapshot, wiera.MetricsSnapshotRequest{}, &snap); err == nil {
			if out := renderTailExemplars(snap.Families); out != "" {
				fmt.Print(out)
			}
		}
		return nil
	}
	if *id == "" {
		return fmt.Errorf("-id is required")
	}
	// -tenant scopes the data commands' key into the tenant's namespace —
	// the same qualification a tenant-scoped client applies on every op.
	if *tenantID != "" && *key != "" {
		if !tenant.ValidID(*tenantID) {
			return fmt.Errorf("invalid tenant id %q", *tenantID)
		}
		*key = tenant.Qualify(*tenantID, *key)
	}

	switch cmdName {
	case "start":
		src, err := loadPolicy(*policyPath)
		if err != nil {
			return err
		}
		p := map[string]string(params)
		if p == nil {
			p = map[string]string{}
		}
		if *workers > 0 {
			p["workers"] = fmt.Sprintf("%d", *workers)
		}
		if *dynamicPath != "" {
			dyn, err := loadPolicy(*dynamicPath)
			if err != nil {
				return err
			}
			p["dynamic"] = dyn
		}
		var resp wiera.StartInstancesResponse
		if err := call(cli, wiera.MethodStartInstances,
			wiera.StartInstancesRequest{InstanceID: *id, PolicySrc: src, Params: p}, &resp); err != nil {
			return err
		}
		for _, n := range resp.Nodes {
			fmt.Printf("%s\t%s\n", n.Name, n.Region)
		}
		return nil
	case "stop":
		var resp wiera.Empty
		return call(cli, wiera.MethodStopInstances, wiera.StopInstancesRequest{InstanceID: *id}, &resp)
	case "list":
		var resp wiera.StartInstancesResponse
		if err := call(cli, wiera.MethodGetInstances, wiera.GetInstancesRequest{InstanceID: *id}, &resp); err != nil {
			return err
		}
		for _, n := range resp.Nodes {
			fmt.Printf("%s\t%s\n", n.Name, n.Region)
		}
		return nil
	case "stats":
		var resp wiera.InstanceStats
		if err := call(cli, wiera.MethodCollectStats, wiera.GetInstancesRequest{InstanceID: *id}, &resp); err != nil {
			return err
		}
		fmt.Print(resp.Render())
		return nil
	case "ring":
		out, err := renderRing(cli, *id)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	case "grow":
		var resp wiera.RingDrainResponse
		if err := call(cli, wiera.MethodAddWorker, wiera.GetInstancesRequest{InstanceID: *id}, &resp); err != nil {
			return err
		}
		fmt.Printf("added one worker per region; %d keys rebalanced\n", resp.Moved)
		return nil
	case "shrink":
		var resp wiera.RingDrainResponse
		if err := call(cli, wiera.MethodRemoveWorker, wiera.GetInstancesRequest{InstanceID: *id}, &resp); err != nil {
			return err
		}
		fmt.Printf("removed one worker per region; %d keys rebalanced\n", resp.Moved)
		return nil
	case "tenants":
		var resp wiera.InstanceStats
		if err := call(cli, wiera.MethodCollectStats, wiera.GetInstancesRequest{InstanceID: *id}, &resp); err != nil {
			return err
		}
		fmt.Print(renderTenants(*id, resp))
		return nil
	case "heat":
		var resp wiera.HeatTopResponse
		if err := call(cli, wiera.MethodHeatTop,
			wiera.HeatTopRequest{InstanceID: *id, K: *maxN}, &resp); err != nil {
			return err
		}
		if len(resp.Entries) == 0 {
			fmt.Println("no heat data (heat tracking off, or no traffic yet)")
			return nil
		}
		fmt.Printf("%-40s %s\n", "key", "rate (accesses/half-life)")
		for _, e := range resp.Entries {
			fmt.Printf("%-40s %.1f\n", e.Key, e.Rate)
		}
		return nil
	case "top":
		for {
			out, err := renderTop(cli, *id)
			if err != nil {
				return err
			}
			if *watch {
				// Clear and repaint like top(1).
				fmt.Print("\033[H\033[2J")
			}
			fmt.Print(out)
			if !*watch {
				return nil
			}
			time.Sleep(*interval)
		}
	case "put":
		if *key == "" {
			return fmt.Errorf("-key is required")
		}
		data := []byte(*value)
		if *file != "" {
			b, err := os.ReadFile(*file)
			if err != nil {
				return err
			}
			data = b
		}
		var resp wiera.PutResponse
		if err := proxyCall(cli, *id, wiera.MethodPut, wiera.PutRequest{Key: *key, Data: data}, &resp); err != nil {
			return err
		}
		fmt.Printf("stored %s version %d (%d bytes)\n", *key, resp.Meta.Version, resp.Meta.Size)
		return nil
	case "get":
		if *key == "" {
			return fmt.Errorf("-key is required")
		}
		var resp wiera.GetResponse
		if *version > 0 {
			if err := proxyCall(cli, *id, wiera.MethodGetVersion,
				wiera.GetVersionRequest{Key: *key, Version: object.Version(*version)}, &resp); err != nil {
				return err
			}
		} else if err := proxyCall(cli, *id, wiera.MethodGet, wiera.GetRequest{Key: *key}, &resp); err != nil {
			return err
		}
		os.Stdout.Write(resp.Data)
		fmt.Fprintf(os.Stderr, "\n(version %d, %d bytes)\n", resp.Meta.Version, len(resp.Data))
		return nil
	case "versions":
		if *key == "" {
			return fmt.Errorf("-key is required")
		}
		var resp wiera.VersionListResponse
		if err := proxyCall(cli, *id, wiera.MethodVersionList, wiera.VersionListRequest{Key: *key}, &resp); err != nil {
			return err
		}
		for _, v := range resp.Versions {
			fmt.Println(v)
		}
		return nil
	case "placement":
		if *key == "" {
			return fmt.Errorf("-key is required")
		}
		var resp wiera.PlacementResponse
		if err := proxyCall(cli, *id, wiera.MethodPlacement, wiera.PlacementRequest{Key: *key}, &resp); err != nil {
			return err
		}
		fmt.Print(renderPlacement(resp))
		return nil
	case "remove":
		if *key == "" {
			return fmt.Errorf("-key is required")
		}
		var resp wiera.Empty
		if *version > 0 {
			return proxyCall(cli, *id, wiera.MethodRemoveVer,
				wiera.RemoveVersionRequest{Key: *key, Version: object.Version(*version)}, &resp)
		}
		return proxyCall(cli, *id, wiera.MethodRemove, wiera.RemoveRequest{Key: *key}, &resp)
	default:
		return fmt.Errorf("unknown command %q", cmdName)
	}
}

// renderPlacement formats an object's physical layout: replicated versus
// erasure-coded, and each member's share (fragment indexes and bytes),
// with a per-region byte rollup.
func renderPlacement(p wiera.PlacementResponse) string {
	var b strings.Builder
	scheme := "replicated"
	if p.ECK > 0 {
		scheme = fmt.Sprintf("erasure-coded %d+%d", p.ECK, p.ECM)
	}
	fmt.Fprintf(&b, "%s  version %d  size %d bytes  %s\n", p.Key, p.Version, p.Size, scheme)
	var total int64
	regionBytes := map[string]int64{}
	var regions []string
	for _, e := range p.Entries {
		r := string(e.Region)
		if _, ok := regionBytes[r]; !ok {
			regions = append(regions, r)
		}
		if !e.Has {
			fmt.Fprintf(&b, "  %-28s %-10s -\n", e.Node, e.Region)
			continue
		}
		share := "full copy"
		if len(e.Frags) > 0 {
			idx := make([]string, len(e.Frags))
			for i, f := range e.Frags {
				idx[i] = fmt.Sprintf("%d", f)
			}
			share = "fragments [" + strings.Join(idx, " ") + "]"
		}
		fmt.Fprintf(&b, "  %-28s %-10s v%-4d %-18s %d bytes\n", e.Node, e.Region, e.Version, share, e.Bytes)
		total += e.Bytes
		regionBytes[r] += e.Bytes
	}
	fmt.Fprintf(&b, "  per region:")
	for _, r := range regions {
		fmt.Fprintf(&b, "  %s=%dB", r, regionBytes[r])
	}
	if p.Size > 0 {
		fmt.Fprintf(&b, "\n  physical total %d bytes (%.2fx the object)\n", total, float64(total)/float64(p.Size))
	} else {
		fmt.Fprintf(&b, "\n  physical total %d bytes\n", total)
	}
	return b.String()
}

// renderTop builds one frame of the top view: per-node operation stats for
// the instance, then the daemon-wide anti-entropy repair counters and SLO
// error-budget gauges pulled from the metrics registry.
func renderTop(cli *transport.TCPClient, id string) (string, error) {
	var b strings.Builder
	var stats wiera.InstanceStats
	if err := call(cli, wiera.MethodCollectStats, wiera.GetInstancesRequest{InstanceID: id}, &stats); err != nil {
		return "", err
	}
	b.WriteString(stats.Render())

	var metrics wiera.MetricsDumpResponse
	if err := call(cli, wiera.MethodMetricsDump, wiera.MetricsDumpRequest{}, &metrics); err != nil {
		return "", err
	}
	section := func(title, prefix string) {
		var lines []string
		for _, line := range strings.Split(metrics.Prometheus, "\n") {
			if strings.HasPrefix(line, "#") {
				continue
			}
			if strings.HasPrefix(line, prefix) {
				lines = append(lines, line)
			}
		}
		if len(lines) == 0 {
			return
		}
		fmt.Fprintf(&b, "\n%s\n", title)
		for _, line := range lines {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	section("slo (error-budget burn; alert when both windows >= 2)", "slo_")
	section("repair (anti-entropy)", "repair_")
	section("autoscale (elastic controller)", "autoscale_")
	section("heat (hot-key replication)", "heat_")
	section("tenants (quota admission + weighted-fair queue)", "tenant_")
	section("watchdog (runtime self-checks)", "watch_")
	if s := renderRPCBytes(metrics.Prometheus); s != "" {
		fmt.Fprintf(&b, "\nwire (per-method rpc bytes, top %d)\n%s", rpcBytesTopN, s)
	}

	var events wiera.EventsDumpResponse
	if err := call(cli, wiera.MethodEventsDump, wiera.EventsDumpRequest{Max: 8}, &events); err == nil &&
		len(events.Events) > 0 {
		fmt.Fprintf(&b, "\nevents (newest %d of %d)\n", len(events.Events), events.Total)
		b.WriteString(renderEvents(events.Events))
	}
	return b.String(), nil
}

// rpcBytesTopN bounds the per-method RPC byte table in the top view.
const rpcBytesTopN = 8

// renderRPCBytes parses the rpc_bytes_in_total / rpc_bytes_out_total
// counters out of a Prometheus text dump and renders the top methods by
// total byte volume (in+out, summed across regions). Empty string when the
// daemon exposes no RPC byte counters.
func renderRPCBytes(prom string) string {
	type vol struct{ in, out float64 }
	byMethod := map[string]*vol{}
	var order []string
	for _, line := range strings.Split(prom, "\n") {
		var dir int // 0 = in, 1 = out
		switch {
		case strings.HasPrefix(line, "rpc_bytes_in_total{"):
			dir = 0
		case strings.HasPrefix(line, "rpc_bytes_out_total{"):
			dir = 1
		default:
			continue
		}
		_, rest, ok := strings.Cut(line, `method="`)
		if !ok {
			continue
		}
		method, rest, ok := strings.Cut(rest, `"`)
		if !ok {
			continue
		}
		_, val, ok := strings.Cut(rest, "} ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		m := byMethod[method]
		if m == nil {
			m = &vol{}
			byMethod[method] = m
			order = append(order, method)
		}
		if dir == 0 {
			m.in += v
		} else {
			m.out += v
		}
	}
	if len(order) == 0 {
		return ""
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := byMethod[order[i]], byMethod[order[j]]
		return a.in+a.out > b.in+b.out
	})
	if len(order) > rpcBytesTopN {
		order = order[:rpcBytesTopN]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  %-28s %12s %12s\n", "method", "bytes in", "bytes out")
	for _, m := range order {
		v := byMethod[m]
		fmt.Fprintf(&b, "  %-28s %12.0f %12.0f\n", m, v.in, v.out)
	}
	return b.String()
}

// renderTenants aggregates per-tenant accounting across the instance's
// worker nodes: counters sum, latency p99s take the worst node (a tenant's
// tail is its slowest shard), weight and quotas are configuration and come
// from any node.
func renderTenants(id string, stats wiera.InstanceStats) string {
	type agg struct {
		wiera.TenantStats
		seen bool
	}
	byID := map[string]*agg{}
	var order []string
	for _, n := range stats.Nodes {
		for _, t := range n.Tenants {
			a := byID[t.ID]
			if a == nil {
				a = &agg{}
				byID[t.ID] = a
				order = append(order, t.ID)
			}
			if !a.seen {
				a.TenantStats = t
				a.seen = true
				continue
			}
			a.Ops += t.Ops
			a.BytesIn += t.BytesIn
			a.BytesOut += t.BytesOut
			a.Throttled += t.Throttled
			for _, p := range []struct {
				dst *float64
				v   float64
			}{
				{&a.QueueP99Ms, t.QueueP99Ms}, {&a.PutP99Ms, t.PutP99Ms}, {&a.GetP99Ms, t.GetP99Ms},
			} {
				if p.v > *p.dst {
					*p.dst = p.v
				}
			}
		}
	}
	if len(order) == 0 {
		return fmt.Sprintf("instance %s has no tenants configured (start with -param tenants=a,b)\n", id)
	}
	sort.Strings(order)
	quota := func(v float64, unit string) string {
		if v <= 0 {
			return "-"
		}
		return fmt.Sprintf("%g%s", v, unit)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "instance %s  %d tenant(s), %d worker node(s)\n", id, len(order), len(stats.Nodes))
	fmt.Fprintf(&b, "%-12s %3s %9s %9s %8s %10s %10s %9s %9s %9s\n",
		"tenant", "w", "iops", "bytes/s", "ops", "in", "out", "throttled", "wfqP99", "putP99")
	for _, tid := range order {
		a := byID[tid]
		fmt.Fprintf(&b, "%-12s %3d %9s %9s %8d %9dB %9dB %9d %8.1fms %8.1fms\n",
			tid, a.Weight, quota(a.IOPSQuota, ""), quota(a.BytesQuota, "B"),
			a.Ops, a.BytesIn, a.BytesOut, a.Throttled, a.QueueP99Ms, a.PutP99Ms)
	}
	return b.String()
}

// renderEvents formats journal events oldest-first, one line each.
func renderEvents(events []watch.Event) string {
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, "  %6d  %s  %-16s %-24s %s\n",
			e.Seq, e.At.Format("15:04:05.000"), e.Type, e.Scope, e.Msg)
	}
	return b.String()
}

// renderCluster formats the fleet-merged metric view: the contributing
// daemons, then true fleet-wide per-op latency distributions (count, p50,
// p99) with the trace exemplar sitting in each op's p99 bucket.
func renderCluster(resp wiera.ClusterMetricsResponse) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet view: %d daemon(s): %s\n", len(resp.Sources), strings.Join(resp.Sources, ", "))
	if len(resp.Failed) > 0 {
		fmt.Fprintf(&b, "unreachable peers: %s\n", strings.Join(resp.Failed, ", "))
	}
	printed := false
	for _, spec := range []struct{ family, by string }{
		{"wiera_op_seconds", "op"},
		{"tiera_op_seconds", "op"},
		{"rpc_server_seconds", "method"},
	} {
		fam, ok := telemetry.FindFamily(resp.Families, spec.family)
		if !ok {
			continue
		}
		merged := telemetry.CollapseHistogram(fam, spec.by)
		if len(merged) == 0 {
			continue
		}
		printed = true
		fmt.Fprintf(&b, "\n%s (fleet-wide, by %s)\n", spec.family, spec.by)
		fmt.Fprintf(&b, "  %-28s %9s %10s %10s  %s\n", spec.by, "count", "p50", "p99", "p99 exemplar")
		for _, m := range merged {
			name := strings.Join(m.LabelValues, "/")
			ex := "-"
			if trace, v, ok := telemetry.BucketExemplarAt(m.Buckets, 99); ok {
				ex = fmt.Sprintf("%s (%v)", trace, v.Round(10*time.Microsecond))
			}
			fmt.Fprintf(&b, "  %-28s %9d %10v %10v  %s\n", name, m.Count,
				telemetry.BucketsPercentile(m.Buckets, 50).Round(10*time.Microsecond),
				telemetry.BucketsPercentile(m.Buckets, 99).Round(10*time.Microsecond), ex)
		}
	}
	type vol struct{ in, out float64 }
	rpcVol := map[string]*vol{}
	var rpcOrder []string
	for dir, family := range map[int]string{0: "rpc_bytes_in_total", 1: "rpc_bytes_out_total"} {
		fam, ok := telemetry.FindFamily(resp.Families, family)
		if !ok {
			continue
		}
		for _, m := range telemetry.CollapseCounter(fam, "method") {
			method := strings.Join(m.LabelValues, "/")
			v := rpcVol[method]
			if v == nil {
				v = &vol{}
				rpcVol[method] = v
				rpcOrder = append(rpcOrder, method)
			}
			if dir == 0 {
				v.in += m.Value
			} else {
				v.out += m.Value
			}
		}
	}
	if len(rpcOrder) > 0 {
		sort.Slice(rpcOrder, func(i, j int) bool {
			a, c := rpcVol[rpcOrder[i]], rpcVol[rpcOrder[j]]
			return a.in+a.out > c.in+c.out
		})
		if len(rpcOrder) > rpcBytesTopN {
			rpcOrder = rpcOrder[:rpcBytesTopN]
		}
		fmt.Fprintf(&b, "\nwire (fleet-wide per-method rpc bytes, top %d)\n", rpcBytesTopN)
		fmt.Fprintf(&b, "  %-28s %12s %12s\n", "method", "bytes in", "bytes out")
		for _, m := range rpcOrder {
			v := rpcVol[m]
			fmt.Fprintf(&b, "  %-28s %12.0f %12.0f\n", m, v.in, v.out)
		}
	}
	if !printed {
		b.WriteString("no op latency families recorded yet (no traffic?)\n")
	} else {
		b.WriteString("\nresolve an exemplar: wieractl trace -trace <id> -analyze\n")
	}
	return b.String()
}

// renderTailExemplars lists each op's current p99 exemplar trace from one
// daemon's own snapshot (the slow command's bridge from percentile to
// trace).
func renderTailExemplars(fams []telemetry.FamilySnapshot) string {
	fam, ok := telemetry.FindFamily(fams, "wiera_op_seconds")
	if !ok {
		return ""
	}
	var b strings.Builder
	for _, m := range telemetry.CollapseHistogram(fam, "op") {
		trace, v, ok := telemetry.BucketExemplarAt(m.Buckets, 99)
		if !ok {
			continue
		}
		if b.Len() == 0 {
			b.WriteString("p99 exemplars (wieractl trace -trace <id> -analyze):\n")
		}
		fmt.Fprintf(&b, "  %-12s %v  trace %s\n",
			strings.Join(m.LabelValues, "/"), v.Round(10*time.Microsecond), trace)
	}
	return b.String()
}

// renderRing builds the ring view: a CollectStats round trip first (which
// refreshes the daemon-side ring ownership gauges and yields the worker
// list with shard indexes), then a metrics dump parsed for the per-node
// ring_* families.
func renderRing(cli *transport.TCPClient, id string) (string, error) {
	var stats wiera.InstanceStats
	if err := call(cli, wiera.MethodCollectStats, wiera.GetInstancesRequest{InstanceID: id}, &stats); err != nil {
		return "", err
	}
	var metrics wiera.MetricsDumpResponse
	if err := call(cli, wiera.MethodMetricsDump, wiera.MetricsDumpRequest{}, &metrics); err != nil {
		return "", err
	}
	ring := parseRingMetrics(metrics.Prometheus)

	var b strings.Builder
	epoch := int64(0)
	for _, n := range stats.Nodes {
		if n.RingEpoch > epoch {
			epoch = n.RingEpoch
		}
	}
	if epoch == 0 {
		fmt.Fprintf(&b, "instance %s is unsharded (single worker per region; start with -workers N or grow to shard)\n", id)
		return b.String(), nil
	}
	fmt.Fprintf(&b, "instance %s  ring epoch %d  workers %d\n", id, epoch, len(stats.Nodes))
	fmt.Fprintf(&b, "%-28s %-10s %5s %6s %7s %10s %8s %8s %6s %8s\n",
		"worker", "region", "shard", "vnodes", "keys", "bytes", "moved", "movedB", "nacks", "inflight")
	nodes := append([]wiera.NodeStats(nil), stats.Nodes...)
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Region != nodes[j].Region {
			return nodes[i].Region < nodes[j].Region
		}
		return nodes[i].Shard < nodes[j].Shard
	})
	inflight := 0.0
	for _, n := range nodes {
		m := ring[n.Name]
		fmt.Fprintf(&b, "%-28s %-10s %5d %6.0f %7.0f %10.0f %8.0f %8.0f %6.0f %8.0f\n",
			n.Name, n.Region, n.Shard, m["ring_vnodes"], m["ring_keys"], m["ring_bytes"],
			m["ring_keys_moved_total"], m["ring_bytes_moved_total"],
			m["ring_wrong_shard_total"], m["ring_migrations_inflight"])
		inflight += m["ring_migrations_inflight"]
	}
	if inflight > 0 {
		fmt.Fprintf(&b, "rebalance in progress: %.0f migrations in flight\n", inflight)
	}
	return b.String(), nil
}

// parseRingMetrics pulls the ring_* gauge/counter samples out of a
// Prometheus text dump, keyed by node name then family.
func parseRingMetrics(prom string) map[string]map[string]float64 {
	out := map[string]map[string]float64{}
	for _, line := range strings.Split(prom, "\n") {
		if !strings.HasPrefix(line, "ring_") || strings.HasPrefix(line, "#") {
			continue
		}
		brace := strings.IndexByte(line, '{')
		end := strings.LastIndexByte(line, '}')
		if brace < 0 || end < brace {
			continue
		}
		family := line[:brace]
		node := ""
		for _, pair := range strings.Split(line[brace+1:end], ",") {
			if k, v, ok := strings.Cut(pair, "="); ok && k == "node" {
				node = strings.Trim(v, `"`)
			}
		}
		var val float64
		if _, err := fmt.Sscanf(strings.TrimSpace(line[end+1:]), "%g", &val); err != nil || node == "" {
			continue
		}
		if out[node] == nil {
			out[node] = map[string]float64{}
		}
		out[node][family] = val
	}
	return out
}

// loadPolicy reads a policy source file, or resolves a builtin name.
func loadPolicy(pathOrName string) (string, error) {
	if pathOrName == "" {
		return "", fmt.Errorf("-policy is required")
	}
	if src, err := policy.BuiltinSource(pathOrName); err == nil {
		return src, nil
	}
	b, err := os.ReadFile(pathOrName)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// call performs a management RPC.
func call(cli *transport.TCPClient, method string, req, resp any) error {
	payload, err := transport.Encode(req)
	if err != nil {
		return err
	}
	raw, err := cli.Call(context.Background(), "", method, payload)
	if err != nil {
		return err
	}
	return transport.Decode(raw, resp)
}

// proxyCall performs a data RPC wrapped in the instance envelope.
func proxyCall(cli *transport.TCPClient, instanceID, method string, req, resp any) error {
	inner, err := transport.Encode(req)
	if err != nil {
		return err
	}
	payload, err := transport.Encode(wiera.ProxyRequest{InstanceID: instanceID, Payload: inner})
	if err != nil {
		return err
	}
	raw, err := cli.Call(context.Background(), "", method, payload)
	if err != nil {
		return err
	}
	return transport.Decode(raw, resp)
}

// paramFlags collects repeated -param name=value bindings.
type paramFlags map[string]string

// String implements flag.Value.
func (p *paramFlags) String() string {
	if p == nil {
		return ""
	}
	parts := make([]string, 0, len(*p))
	for k, v := range *p {
		parts = append(parts, k+"="+v)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Set implements flag.Value.
func (p *paramFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("param %q is not name=value", s)
	}
	if *p == nil {
		*p = map[string]string{}
	}
	(*p)[k] = v
	return nil
}

// Quickstart: bring up a complete in-process Wiera deployment, launch a
// three-region instance under eventual consistency, and exercise the
// PUT/GET and versioning API through the closest-node client — the minimal
// end-to-end tour of the public surface.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/clock"
	"repro/internal/coord"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/wiera"
)

func main() {
	// A simulated multi-cloud WAN, compressed 100x so WAN latencies cost
	// microseconds of real time.
	clk := clock.NewScaled(100)
	net := simnet.New(clk)
	fabric := transport.NewFabric(net)

	// The coordination (lock) service and the Wiera control plane run in
	// US-East, as in the paper.
	locks := coord.NewServer(clk)
	zkEP, err := fabric.NewEndpoint("zk", simnet.USEast)
	must(err)
	zkEP.Serve(locks.Handler())
	server, err := wiera.NewServer(wiera.ServerConfig{Fabric: fabric, CoordDst: "zk"})
	must(err)

	// One Tiera server per region, registered with the TSM.
	for _, r := range []simnet.Region{simnet.USEast, simnet.USWest, simnet.EUWest} {
		_, err := wiera.NewTieraServer(fabric, r, server, "zk")
		must(err)
	}

	// Launch a Wiera instance: three LowLatencyInstance replicas under an
	// eventual-consistency global policy (local write + lazy propagation).
	policySrc := `
Wiera EventualConsistency {
	Region1 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 1G}, tier2 = {name: ebs-ssd, size: 1G}};
	Region2 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 1G}, tier2 = {name: ebs-ssd, size: 1G}};
	Region3 = {name: LowLatencyInstance, region: eu-west,
		tier1 = {name: memory, size: 1G}, tier2 = {name: ebs-ssd, size: 1G}};
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
		queue(what: insert.object, to: all_regions);
	}
}`
	nodes, err := server.StartInstances(wiera.StartInstancesRequest{
		InstanceID: "quickstart",
		PolicySrc:  policySrc,
		Params:     map[string]string{"t": "1s", "queueFlush": "200ms"},
	})
	must(err)
	fmt.Println("launched instance nodes:")
	for _, n := range nodes {
		fmt.Printf("  %-22s %s\n", n.Name, n.Region)
	}

	// An application in Europe connects to its closest node.
	cli, err := wiera.NewClient(fabric, "app-eu", simnet.EUWest, server.Name(), "quickstart")
	must(err)
	defer cli.Close()
	closest, _ := cli.Closest()
	fmt.Printf("closest node for an EU client: %s\n\n", closest)

	// PUT/GET round trip (Table 2 API).
	meta, err := cli.Put(context.Background(), "user:42", []byte(`{"name":"ada","plan":"pro"}`))
	must(err)
	fmt.Printf("put user:42 -> version %d (%d bytes)\n", meta.Version, meta.Size)

	data, meta, err := cli.Get(context.Background(), "user:42")
	must(err)
	fmt.Printf("get user:42 -> %s (version %d)\n", data, meta.Version)

	// Overwrites create new versions; old ones stay retrievable.
	_, err = cli.Put(context.Background(), "user:42", []byte(`{"name":"ada","plan":"enterprise"}`))
	must(err)
	versions, err := cli.VersionList(context.Background(), "user:42")
	must(err)
	fmt.Printf("versions of user:42: %v\n", versions)
	old, _, err := cli.GetVersion(context.Background(), "user:42", 1)
	must(err)
	fmt.Printf("version 1 payload: %s\n", old)

	// Background propagation: after the queue flush interval, the write is
	// on every replica.
	clk.Sleep(2 * time.Second)
	stale := 0
	for _, n := range nodes {
		remote, err := wiera.NewClient(fabric, "probe-"+string(n.Region), n.Region, server.Name(), "quickstart")
		must(err)
		_, m, err := remote.Get(context.Background(), "user:42")
		if err != nil || m.Version != 2 {
			stale++
		}
		remote.Close()
	}
	fmt.Printf("replicas serving the latest version after propagation: %d/%d\n", len(nodes)-stale, len(nodes))

	must(server.StopInstances("quickstart"))
	fmt.Println("instance stopped; quickstart complete")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Modular instances (paper Sec 3.2.2): one Tiera instance mounted as a
// storage tier of another. A RAW-BIG-DATA instance holds a durable input
// data set; an INTERMEDIATE-DATA instance mounts it read-only as tier2 and
// keeps derived results in its own fast memory tier — the paper's modular
// assembly of complex storage containers. This example also demonstrates
// the compress response shrinking the raw store.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/clock"
	"repro/internal/policy"
	"repro/internal/simnet"
	"repro/internal/tier"
	"repro/internal/tiera"
)

func main() {
	clk := clock.NewScaled(1000)

	// The backing store: durable, cheap, with a compression sweep for data
	// that has settled onto the S3 tier.
	rawSpec, err := policy.Parse(`
Tiera RawBigData(time t) {
	tier1: {name: ebs-ssd, size: 10G};
	tier2: {name: s3, size: 100G};
	event(insert.into == tier1) : response {
		copy(what: insert.object, to: tier2);
	}
	event(time = t) : response {
		compress(what: object.location == tier2);
	}
}`)
	must(err)
	raw, err := tiera.New(tiera.Config{
		Name: "raw-big-data", Region: simnet.USEast, Spec: rawSpec,
		Params: map[string]policy.Value{"t": policy.DurationVal(1e9)},
		Clock:  clk,
	})
	must(err)
	defer raw.Close()

	// Load the input data set.
	record := []byte(strings.Repeat("sensor-reading,2016-05-31,42.1;", 64))
	for i := 0; i < 20; i++ {
		_, err := raw.Put(context.Background(), fmt.Sprintf("input-%03d", i), record)
		must(err)
	}
	s3, _ := raw.Tier("tier2")
	before := s3.Used()
	must(raw.RunTimerEventsOnce()) // compression sweep
	fmt.Printf("raw store loaded: 20 records; S3 tier %d -> %d bytes after compression\n",
		before, s3.Used())

	// The processing instance: local memory for intermediate results, the
	// raw store mounted read-only as tier2.
	interSpec, err := policy.Parse(`
Tiera IntermediateData {
	tier1: {name: memory, size: 1G};
	tier2: {name: instance, ref: "raw-big-data", readonly: true};
}`)
	must(err)
	inter, err := tiera.New(tiera.Config{
		Name: "intermediate", Region: simnet.USEast, Spec: interSpec, Clock: clk,
		ExtraTiers: map[string]tier.Tier{
			"tier2": tiera.NewInstanceTier("tier2", raw, true),
		},
	})
	must(err)
	defer inter.Close()

	// A "job" reads raw inputs through the mounted tier (decompressed
	// transparently) and writes derived results to its own fast tier.
	for i := 0; i < 20; i++ {
		in, _, err := inter.Get(context.Background(), fmt.Sprintf("input-%03d", i))
		must(err)
		derived := fmt.Sprintf("count=%d", strings.Count(string(in), ";"))
		_, err = inter.Put(context.Background(), fmt.Sprintf("result-%03d", i), []byte(derived))
		must(err)
	}
	out, _, err := inter.Get(context.Background(), "result-007")
	must(err)
	fmt.Printf("derived result-007 = %s (stored on the fast local tier)\n", out)

	// The mounted store is untouched by result writes and write-protected.
	if _, _, err := raw.Get(context.Background(), "result-007"); err == nil {
		log.Fatal("results leaked into the raw store")
	}
	t2, _ := inter.Tier("tier2")
	if err := t2.Put(context.Background(), "x", []byte("y")); err != nil {
		fmt.Printf("write to the read-only mounted tier rejected: %v\n", err)
	}
	fmt.Println("modular assembly complete: raw store intact, results local")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

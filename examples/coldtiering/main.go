// Cold tiering (paper Fig 6(a) / Sec 5.3): a Tiera instance with a fast
// EBS tier and a cheap S3-IA tier, under a policy that demotes objects not
// accessed for 120 hours. The example loads data, keeps part of it hot,
// advances the virtual clock past the threshold, runs the cold-data
// monitor, and prints where everything ended up plus the monthly bill
// difference at the paper's 10 TB scale.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/clock"
	"repro/internal/cost"
	"repro/internal/policy"
	"repro/internal/simnet"
	"repro/internal/tiera"
)

func main() {
	clk := clock.NewSim(time.Time{})
	stopAdvance := clk.AutoAdvance(100 * time.Microsecond)
	defer stopAdvance()

	spec, err := policy.Parse(`
Tiera ReducedCostInstance {
	tier1: {name: ebs-ssd, size: 10G};
	tier2: {name: s3-ia, size: 10G};
	% Fig 6(a): data not accessed for 120 hours is cold
	event(object.lastAccessedTime > 120h) : response {
		move(what: object.location == tier1, to: tier2, bandwidth: 100KB/s);
	}
}`)
	must(err)
	inst, err := tiera.New(tiera.Config{
		Name: "cold-demo", Region: simnet.USEast, Spec: spec, Clock: clk,
	})
	must(err)
	defer inst.Close()

	const objects = 50
	for i := 0; i < objects; i++ {
		_, err := inst.Put(context.Background(), fmt.Sprintf("photo-%02d", i), make([]byte, 4096))
		must(err)
	}
	fmt.Printf("loaded %d objects onto the fast tier\n", objects)

	// Five days pass; the application touches only the first ten objects.
	clk.Advance(100 * time.Hour)
	for i := 0; i < 10; i++ {
		_, _, err := inst.Get(context.Background(), fmt.Sprintf("photo-%02d", i))
		must(err)
	}
	clk.Advance(21 * time.Hour) // untouched objects are now 121h idle

	must(inst.RunObjectMonitorsOnce())

	onFast, onCheap := 0, 0
	for i := 0; i < objects; i++ {
		key := fmt.Sprintf("photo-%02d", i)
		meta, err := inst.Objects().Latest(key)
		must(err)
		locs := inst.Locations(key, meta.Version)
		if len(locs) == 1 && locs[0] == "tier2" {
			onCheap++
		} else {
			onFast++
		}
	}
	fmt.Printf("after the 120h cold-data sweep: %d hot on EBS, %d demoted to S3-IA\n", onFast, onCheap)

	// Cold data remains readable (slower, but durable and cheap).
	data, _, err := inst.Get(context.Background(), "photo-49")
	must(err)
	fmt.Printf("cold object still readable: %d bytes\n", len(data))

	// The paper's bill: 10 TB with 80% cold.
	ssd, _ := cost.ColdDataSavings(cost.ClassEBSSSD, cost.ClassS3IA, 8000)
	hdd, _ := cost.ColdDataSavings(cost.ClassEBSHDD, cost.ClassS3IA, 8000)
	central, _ := cost.CentralizedSavings(cost.ClassS3IA, 8000, 4)
	fmt.Printf("\nat the paper's scale (10TB, 80%% cold):\n")
	fmt.Printf("  EBS SSD -> S3-IA: save $%.0f/month per instance\n", ssd)
	fmt.Printf("  EBS HDD -> S3-IA: save $%.0f/month per instance\n", hdd)
	fmt.Printf("  plus $%.0f/month by centralizing the cold replica across 4 regions\n", central)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

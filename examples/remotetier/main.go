// Remote tier (paper Sec 5.4): an unmodified application doing POSIX file
// I/O on an Azure VM, with its storage mounted through the wfs layer (the
// FUSE substitute) onto a Wiera instance whose reads come from AWS memory
// in the neighbouring data center — 2 ms away — instead of the local
// 500-IOPS-throttled disk. The example runs the same random-read benchmark
// against both configurations and prints the IOPS difference.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/clock"
	"repro/internal/cloudsim"
	"repro/internal/coord"
	"repro/internal/policy"
	"repro/internal/simnet"
	"repro/internal/sysbench"
	"repro/internal/tiera"
	"repro/internal/transport"
	"repro/internal/wfs"
	"repro/internal/wiera"
)

func main() {
	fmt.Println("Sec 5.4: exploiting a nearby faster DC's storage tier")
	vm, err := cloudsim.Lookup(cloudsim.AzureStdD3)
	must(err)
	fmt.Printf("VM: %s (%d vCPU, %.1f GB, disk capped at %d IOPS)\n\n",
		vm.Type, vm.VCPUs, vm.MemoryGB, vm.DiskIOPS)

	localIOPS := measureLocalDisk()
	fmt.Printf("local Azure disk:          %6.0f IOPS (the 500-IOPS throttle)\n", localIOPS)

	remoteIOPS := measureRemoteMemory(vm)
	fmt.Printf("AWS memory through Wiera:  %6.0f IOPS (2 ms inter-DC RTT)\n", remoteIOPS)
	fmt.Printf("\nimprovement from the non-local tier: %+.0f%% (paper: ~44%% on Standard D2/D3)\n",
		100*(remoteIOPS-localIOPS)/localIOPS)
}

// measureLocalDisk runs the benchmark against the throttled attached disk.
func measureLocalDisk() float64 {
	clk := clock.NewSim(time.Time{})
	stop := clk.AutoAdvance(100 * time.Microsecond)
	defer stop()
	spec, err := policy.Parse(`Tiera AzureDisk { tier1: {name: ebs-ssd, size: 2G, iops: 500}; }`)
	must(err)
	inst, err := tiera.New(tiera.Config{
		Name: "local-disk", Region: simnet.AzureUSEast, Spec: spec, Clock: clk,
	})
	must(err)
	defer inst.Close()
	return bench(wfs.New(wfs.TieraBackend{Inst: inst}), clk)
}

// measureRemoteMemory runs the same benchmark with reads forwarded to the
// AWS memory node over the VM-size-throttled link.
func measureRemoteMemory(vm cloudsim.Spec) float64 {
	clk := clock.NewSim(time.Time{})
	stop := clk.AutoAdvance(100 * time.Microsecond)
	defer stop()
	net := simnet.New(clk)
	net.SetBandwidth(simnet.AzureUSEast, simnet.USEast, vm.SmallMsgMBps*1e6)
	net.SetBandwidth(simnet.USEast, simnet.AzureUSEast, vm.SmallMsgMBps*1e6)
	fabric := transport.NewFabric(net)

	locks := coord.NewServer(clk)
	zkEP, err := fabric.NewEndpoint("zk", simnet.USEast)
	must(err)
	zkEP.Serve(locks.Handler())
	server, err := wiera.NewServer(wiera.ServerConfig{Fabric: fabric, CoordDst: "zk"})
	must(err)
	for _, r := range []simnet.Region{simnet.AzureUSEast, simnet.USEast} {
		_, err := wiera.NewTieraServer(fabric, r, server, "zk")
		must(err)
	}
	_, err = server.StartInstances(wiera.StartInstancesRequest{
		InstanceID: "remote",
		PolicySrc: `
Wiera RemoteMemory {
	Region1 = {name: ForwardingInstance, region: azure-us-east, primary: true,
		tier1 = {name: ebs-ssd, size: 2G}};
	Region2 = {name: ForwardingInstance, region: us-east,
		tier1 = {name: memory, size: 2G}};
	event(insert.into) : response {
		if (local_instance.isPrimary == true) {
			store(what: insert.object, to: local_instance);
			copy(what: insert.object, to: all_regions);
		} else {
			forward(what: insert.object, to: primary_instance);
		}
	}
	event(get.from) : response {
		forward(what: get.key, to: us-east);
	}
}`,
		Params: map[string]string{},
	})
	must(err)
	azure := lookupNode(server, fabric, "remote/azure-us-east")
	iops := bench(wfs.New(wfs.NodeBackend{Node: azure}), clk)
	server.StopInstances("remote")
	return iops
}

// lookupNode fetches a node handle through the client API.
func lookupNode(server *wiera.Server, fabric *transport.Fabric, name string) *wiera.Node {
	// Nodes live inside the Tiera servers; walk the instance list.
	nodes, err := server.GetInstances("remote")
	must(err)
	for _, n := range nodes {
		if n.Name == name {
			if node := wiera.LookupNode(name); node != nil {
				return node
			}
		}
	}
	log.Fatalf("node %s not found", name)
	return nil
}

func bench(fs *wfs.FS, clk clock.Clock) float64 {
	cfg := sysbench.Config{
		FS: fs, Clock: clk, Files: 2, FileSize: 256 * 1024,
		BlockSize: 16 * 1024, Threads: 16, Ops: 300, Mode: sysbench.RndRead, Seed: 7,
	}
	must(sysbench.Prepare(cfg))
	res, err := sysbench.Run(cfg)
	must(err)
	return res.IOPS
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Dynamic consistency (paper Fig 5(a) / Fig 7 in miniature): a
// multi-primary instance guarded by the DynamicConsistency control policy.
// The example injects a WAN delay, watches Wiera switch the running
// instance to eventual consistency once the 800 ms violation persists,
// then clears the delay and watches it switch back — all while an
// application keeps writing through an unchanged PUT/GET API.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/coord"
	"repro/internal/policy"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/wiera"
)

func main() {
	clk := clock.NewScaled(10)
	net := simnet.New(clk)
	fabric := transport.NewFabric(net)

	locks := coord.NewServer(clk)
	zkEP, err := fabric.NewEndpoint("zk", simnet.USEast)
	must(err)
	zkEP.Serve(locks.Handler())
	server, err := wiera.NewServer(wiera.ServerConfig{Fabric: fabric, CoordDst: "zk"})
	must(err)
	for _, r := range []simnet.Region{simnet.USEast, simnet.USWest, simnet.EUWest} {
		_, err := wiera.NewTieraServer(fabric, r, server, "zk")
		must(err)
	}

	// Strong consistency as the data-plane policy; the DynamicConsistency
	// control policy switches it at run time. Short thresholds keep the
	// demo brisk: 800 ms latency violation sustained for 5 s.
	dynSrc, err := policy.BuiltinSource("DynamicConsistency")
	must(err)
	dynSrc = strings.ReplaceAll(dynSrc, "30s", "5s")

	nodes, err := server.StartInstances(wiera.StartInstancesRequest{
		InstanceID: "dyn",
		PolicySrc:  mustSource("MultiPrimariesConsistency"),
		Params: map[string]string{
			"t": "1s", "dynamic": dynSrc, "monitorWindow": "1s",
		},
	})
	must(err)
	fmt.Printf("running %d replicas under %s\n", len(nodes), "MultiPrimariesConsistency")

	cli, err := wiera.NewClient(fabric, "app", simnet.USWest, server.Name(), "dyn")
	must(err)
	defer cli.Close()

	writeFor := func(label string, d time.Duration) {
		deadline := clk.Now().Add(d)
		var last time.Duration
		n := 0
		for clk.Now().Before(deadline) {
			start := clk.Now()
			_, err := cli.Put(context.Background(), fmt.Sprintf("k%d", n%8), []byte("payload"))
			must(err)
			last = clk.Now().Sub(start)
			n++
			clk.Sleep(300 * time.Millisecond)
		}
		pol, _ := server.CurrentPolicy("dyn")
		fmt.Printf("%-28s last put %6.1f ms   policy: %s\n",
			label, float64(last)/float64(time.Millisecond), pol)
	}

	writeFor("normal operation:", 6*time.Second)

	fmt.Println("\n-> injecting a 2s delay on every path touching us-west")
	net.InjectRegionLag(simnet.USWest, 2*time.Second)
	writeFor("degraded, detecting:", 10*time.Second)
	writeFor("after switch to eventual:", 10*time.Second)

	fmt.Println("\n-> clearing the delay")
	net.InjectRegionLag(simnet.USWest, 0)
	writeFor("recovering:", 12*time.Second)
	writeFor("after switch back:", 8*time.Second)

	fmt.Println("\npolicy change log:")
	for _, ch := range server.ChangeLog() {
		fmt.Printf("  %s -> %s (requested by %s)\n", ch.What, ch.To, ch.From)
	}
	must(server.StopInstances("dyn"))
}

func mustSource(name string) string {
	src, err := policy.BuiltinSource(name)
	if err != nil {
		log.Fatal(err)
	}
	return src
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

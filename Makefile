# Development entry points. `make ci` is what .github/workflows/ci.yml runs.

GO ?= go

.PHONY: ci verify vet build test race race-obs race-obsplane race-ring race-batch race-ec race-autoscale race-tenant race-wire fuzz-wire smoke-obsplane smoke-tenancy bench bench-codec convergence scaleout batchflush eccost elastic tenancy

ci: vet build race-obs race-obsplane race-ring race-batch race-ec race-autoscale race-tenant race-wire race fuzz-wire bench-codec smoke-obsplane smoke-tenancy

# One-stop pre-commit check: static analysis, full build, race-checked tests.
verify: vet build race-obs race-obsplane race-ring race-batch race-ec race-autoscale race-tenant race-wire race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race pass over the observability layer (flight recorder, SLO
# engine, telemetry primitives): these are the lock-cheap hot paths where a
# data race would silently corrupt metrics, so they get their own fast gate.
race-obs:
	$(GO) test -race -count=2 ./internal/flight/ ./internal/telemetry/

# Focused race pass over the cluster observability plane: snapshot-merge
# under concurrent Record (the exact-merge property test races recorders
# against MergeSnapshots), exemplar recency, the event journal ring, and the
# watchdog's trip/clear edges.
race-obsplane:
	$(GO) test -race -count=2 ./internal/telemetry/ ./internal/watch/

# End-to-end observability smoke: boots a 2-worker daemon, drives traffic,
# and asserts /healthz answers, /cluster/metrics carries a resolvable
# exemplar, and grow/shrink ring epochs land in the event journal in order.
smoke-obsplane:
	./scripts/smoke_obsplane.sh

# Focused race pass over keyspace sharding: ring construction, client
# routing under concurrent map swaps, and online rebalancing — migration
# code moves keys between live workers, so races here lose writes.
race-ring:
	$(GO) test -race -run 'TestBalance|TestMinimalMovement|TestDeterminism|TestMapHelpers|TestRing|TestTable|TestSharded|TestWrongShard|TestAddWorker|TestRemoveWorker|TestStrayUpdate|TestClientRouting' ./internal/ring/ ./internal/wiera/

# Focused race pass over the batched replication path: the TCP multiplexer
# (shared per-connection gob streams, demux, in-flight window) and the
# per-peer batcher (queue drain, chunking, partial-failure hinting) both
# share mutable state across goroutines on every flush.
race-batch:
	$(GO) test -race -run 'TestTCPMux|TestChunk|TestBatched|TestPerKey|TestQueueDepthGauge|TestApplyUpdateBatch|TestRemoveIdempotent|TestRemoveSurfaces|TestAsyncPush' ./internal/transport/ ./internal/wiera/

# Focused race pass over erasure coding: the codec itself (matrix inversion
# under concurrent encodes), fragment gathers with hedged peer fan-out, and
# repair-driven regeneration all run on shared node state.
race-ec:
	$(GO) test -race -count=2 ./internal/ec/
	$(GO) test -race -run 'TestEC' ./internal/wiera/

# Focused race pass over the elastic autoscaler: the heat sketch and
# controller primitives, then the integration paths that mutate membership
# and hot-replica state under concurrent clients — promotion/demotion,
# typed rebalance NACKs, membership churn, and hedged EC gathers.
race-autoscale:
	$(GO) test -race -count=2 ./internal/autoscale/
	$(GO) test -race -run 'TestHot|TestRebalanceInProgress|TestMembershipChurn|TestECHedged' ./internal/wiera/

# Focused race pass over multi-tenancy: the token buckets and the stride
# scheduler (whose fairness property test races thousands of waiters), then
# the integration paths where admission, the WFQ, and tenant-qualified keys
# run under concurrent clients.
race-tenant:
	$(GO) test -race -count=2 ./internal/tenant/
	$(GO) test -race -run 'TestTenant|TestQuota|TestByteQuota' ./internal/wiera/

# Focused race pass over the binary wire codec: the codec primitives and
# frame tests, the transport codec dispatch (gob fallback, reply-codec
# echo), and the mixed-codec cluster interop paths where an un-upgraded
# gob peer talks to wire peers under concurrent traffic.
race-wire:
	$(GO) test -race -count=2 ./internal/wire/
	$(GO) test -race -run 'TestWire|TestMixedCodec|TestGobOnly|TestDecodeWireFrame' ./internal/transport/ ./internal/wiera/

# Fuzz smoke over the wire decoder: truncated/corrupt/mutated frames must
# error (never panic) and accepted frames must re-encode byte-exact.
fuzz-wire:
	$(GO) test -fuzz=FuzzWireRoundTrip -fuzztime=10s -run FuzzWireRoundTrip ./internal/wiera/

# Codec benchmark gate: runs the gob-vs-wire encode/decode benchmarks and
# fails if gob ever beats the wire codec or the wire steady state allocates.
bench-codec:
	./scripts/bench_codec.sh

# End-to-end tenancy smoke: boots a daemon, starts a two-tenant instance,
# and asserts disjoint keyspaces, fail-fast quota NACKs, tenant_* metrics,
# the wieractl tenants view, and the /healthz tenant count.
smoke-tenancy:
	./scripts/smoke_tenancy.sh

# Multi-tenant isolation experiment (quick mode): a noisy tenant at >=10x
# its IOPS quota vs a paced victim; admission must throttle the aggressor
# and the victim's p99 must hold the stated bound with no lost acked writes.
tenancy:
	$(GO) run ./cmd/wierabench -exp tenancy

# Elastic autoscaling experiment (quick mode): 12x load swing with hot-spot
# shift; the pool must grow, promote/demote hot keys, and shed capacity.
elastic:
	$(GO) run ./cmd/wierabench -exp elastic

# Replication group-commit experiment (quick mode): per-key vs batched flush
# fan-out plus the flush-under-partition audit.
batchflush:
	$(GO) run ./cmd/wierabench -exp batchflush

# Erasure-coding cost experiment (quick mode): 3x replication vs EC(4+2)
# storage bytes and $/month, plus the region-loss reconstruction audit.
eccost:
	$(GO) run ./cmd/wierabench -exp eccost

# Sharding scale-out experiment (quick mode): YCSB-B throughput vs pool
# size plus a live worker-join audit.
scaleout:
	$(GO) run ./cmd/wierabench -exp scaleout

# Telemetry overhead: instrumented vs bare client PUT/GET.
bench:
	$(GO) test -bench=BenchmarkClient -benchmem ./internal/wiera/

# Anti-entropy partition/heal experiment (quick mode).
convergence:
	$(GO) run ./cmd/wierabench -exp convergence

# Development entry points. `make ci` is what .github/workflows/ci.yml runs.

GO ?= go

.PHONY: ci vet build test race bench

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Telemetry overhead: instrumented vs bare client PUT/GET.
bench:
	$(GO) test -bench=BenchmarkClient -benchmem ./internal/wiera/

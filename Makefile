# Development entry points. `make ci` is what .github/workflows/ci.yml runs.

GO ?= go

.PHONY: ci verify vet build test race bench convergence

ci: vet build race

# One-stop pre-commit check: static analysis, full build, race-checked tests.
verify: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Telemetry overhead: instrumented vs bare client PUT/GET.
bench:
	$(GO) test -bench=BenchmarkClient -benchmem ./internal/wiera/

# Anti-entropy partition/heal experiment (quick mode).
convergence:
	$(GO) run ./cmd/wierabench -exp convergence

// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation. Each iteration runs the full
// experiment harness in quick mode and reports the headline measurement as
// custom benchmark metrics, so `go test -bench=. -benchmem` regenerates
// the paper's results end to end.
package repro

import (
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/experiments"
	"repro/internal/simnet"
)

// BenchmarkFig7DynamicConsistency regenerates Figure 7: the put-latency
// timeline across two sustained delays (switch to eventual and back) and
// one ignored transient.
func BenchmarkFig7DynamicConsistency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(experiments.Options{Quick: true, Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.ShapeHolds(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.StrongMeanMs, "strong-put-ms")
		b.ReportMetric(res.EventualMeanMs, "eventual-put-ms")
		b.ReportMetric(float64(res.SwitchesToEventual), "switches")
	}
}

// BenchmarkFig8ChangePrimary regenerates Figure 8: the stale-read fraction
// with a static versus moving primary.
func BenchmarkFig8ChangePrimary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8Table3(experiments.Options{Quick: true, Seed: int64(i) + 2})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.ShapeHolds(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.StaleFracStatic, "static-stale-%")
		b.ReportMetric(100*res.StaleFracChanging, "changing-stale-%")
	}
}

// BenchmarkTable3PutLatency regenerates Table 3 from the same harness: the
// per-region average put latency under static and moving primaries.
func BenchmarkTable3PutLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8Table3(experiments.Options{Quick: true, Seed: int64(i) + 20})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.ShapeHolds(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PutMsStatic[simnet.EUWest], "static-eu-ms")
		b.ReportMetric(res.PutMsChanging[simnet.EUWest], "changing-eu-ms")
		b.ReportMetric(res.OverallStatic, "static-overall-ms")
		b.ReportMetric(res.OverallChanging, "changing-overall-ms")
	}
}

// BenchmarkFig9TierLatency regenerates Figure 9: 4 KB operation latency on
// each storage tier.
func BenchmarkFig9TierLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.ShapeHolds(); err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			switch row.Tier {
			case "EBS SSD (gp2)":
				b.ReportMetric(row.GetMs, "ebs-ssd-get-ms")
			case "S3-IA":
				b.ReportMetric(row.GetMs, "s3ia-get-ms")
			}
		}
	}
}

// BenchmarkTable4Pricing regenerates Table 4 and the Sec 5.3 savings
// arithmetic built on it.
func BenchmarkTable4Pricing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if err := res.ShapeHolds(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SavingsSSDToIA, "ssd-savings-$")
	}
}

// BenchmarkSec53ColdData regenerates the Sec 5.3 cold-data demotion run.
func BenchmarkSec53ColdData(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Sec53ColdData(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.ShapeHolds(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.ColdFraction, "cold-moved-%")
	}
}

// BenchmarkFig10CentralizedTier regenerates Figure 10: per-region latency
// against the centralized US-East S3-IA tier.
func BenchmarkFig10CentralizedTier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.ShapeHolds(); err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Region == simnet.AsiaEast {
				b.ReportMetric(row.GetMs, "asia-get-ms")
			}
		}
	}
}

// BenchmarkFig11SysBench regenerates Figure 11: SysBench IOPS on the local
// throttled disk versus AWS remote memory per Azure VM size.
func BenchmarkFig11SysBench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(experiments.Options{Quick: true, Seed: int64(i) + 3})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.ShapeHolds(); err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.VM == cloudsim.AzureStdD3 {
				b.ReportMetric(row.LocalIOPS, "d3-local-iops")
				b.ReportMetric(row.RemoteIOPS, "d3-remote-iops")
			}
		}
	}
}

// BenchmarkFig12RUBiS regenerates Figure 12: RUBiS throughput on both
// storage paths per Azure VM size.
func BenchmarkFig12RUBiS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(experiments.Options{Quick: true, Seed: int64(i) + 4})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.ShapeHolds(); err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.VM == cloudsim.AzureStdD3 {
				b.ReportMetric(row.LocalRPS, "d3-local-rps")
				b.ReportMetric(row.RemoteRPS, "d3-remote-rps")
			}
		}
	}
}

// BenchmarkAblationConsistency regenerates the consistency-cost ablation
// (Sec 3.3.1 tradeoffs): put latency under multi-primaries, primary-backup,
// and eventual consistency.
func BenchmarkAblationConsistency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationConsistency(experiments.Options{Quick: true, Seed: int64(i) + 5})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.ShapeHolds(); err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			switch row.Policy {
			case "MultiPrimariesConsistency":
				b.ReportMetric(row.PutMeanMs, "mp-put-ms")
			case "EventualConsistency":
				b.ReportMetric(row.PutMeanMs, "ev-put-ms")
			}
		}
	}
}

// BenchmarkAblationQueueSupersede regenerates the queue-supersession
// traffic ablation (Sec 3.2.3).
func BenchmarkAblationQueueSupersede(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationQueue(experiments.Options{Quick: true, Seed: int64(i) + 6})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.ShapeHolds(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.BytesSupersede), "bytes-superseding")
		b.ReportMetric(float64(res.BytesNaive), "bytes-naive")
	}
}

// BenchmarkAblationBlockSize regenerates the wfs block-size sweep on the
// Sec 5.4 remote-memory path.
func BenchmarkAblationBlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationBlockSize(experiments.Options{Quick: true, Seed: int64(i) + 7})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.ShapeHolds(); err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.BlockSize == 16*1024 {
				b.ReportMetric(row.IOPS, "16k-iops")
			}
		}
	}
}

#!/usr/bin/env bash
# Smoke test for multi-tenant namespaces: boots a 2-worker wiera daemon,
# starts an instance with two tenants (one with a tiny IOPS quota), and
# asserts the end-to-end tenancy contract — tenant-scoped keys are disjoint,
# the throttled tenant gets fail-fast quota NACKs while the other tenant
# keeps working, tenant_* metrics and the wieractl tenants view carry the
# accounting, and /healthz reports the tenant count.
#
# Run from the repo root: ./scripts/smoke_tenancy.sh
set -euo pipefail

GO=${GO:-go}
LISTEN=${LISTEN:-127.0.0.1:7470}
METRICS=${METRICS:-127.0.0.1:7471}

WORKDIR=$(mktemp -d)
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== build =="
$GO build -o "$WORKDIR/wiera" ./cmd/wiera
$GO build -o "$WORKDIR/wieractl" ./cmd/wieractl

echo "== boot daemon (2 workers per region) =="
"$WORKDIR/wiera" -listen "$LISTEN" -metrics-addr "$METRICS" -workers 2 \
  >"$WORKDIR/daemon.log" 2>&1 &
DAEMON_PID=$!

for i in $(seq 1 50); do
  if curl -fsS "http://$METRICS/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "FAIL: daemon exited during startup"; cat "$WORKDIR/daemon.log"; exit 1
  fi
  sleep 0.2
done
curl -fsS "http://$METRICS/healthz" >/dev/null || {
  echo "FAIL: /healthz never came up"; cat "$WORKDIR/daemon.log"; exit 1; }

echo "== start a two-tenant instance (noisy has a near-zero IOPS quota) =="
"$WORKDIR/wieractl" -addr "$LISTEN" start -id smoke -policy PrimaryBackupConsistency \
  -param t=2s -param tenants=gold,noisy \
  -param tenantWeight:gold=4 -param tenantIOPS:noisy=0.01

echo "== tenant keyspaces are disjoint =="
"$WORKDIR/wieractl" -addr "$LISTEN" put -id smoke -tenant gold -key shared -value from-gold >/dev/null
OUT=$("$WORKDIR/wieractl" -addr "$LISTEN" get -id smoke -tenant gold -key shared 2>/dev/null)
[ "$OUT" = "from-gold" ] || { echo "FAIL: gold read back '$OUT'"; exit 1; }
if "$WORKDIR/wieractl" -addr "$LISTEN" get -id smoke -key shared >/dev/null 2>&1; then
  echo "FAIL: default tenant can read gold's key"; exit 1
fi

echo "== noisy tenant hits its quota with a fail-fast NACK =="
NACKED=0
for i in $(seq 1 10); do
  if ! "$WORKDIR/wieractl" -addr "$LISTEN" put -id smoke -tenant noisy -key "n$i" -value v \
      >/dev/null 2>"$WORKDIR/nack.err"; then
    NACKED=1; break
  fi
done
[ "$NACKED" = 1 ] || { echo "FAIL: noisy tenant was never throttled"; exit 1; }
grep -q 'quota exceeded' "$WORKDIR/nack.err" || {
  echo "FAIL: NACK is not the typed quota error:"; cat "$WORKDIR/nack.err"; exit 1; }

echo "== the other tenant keeps working while noisy is throttled =="
"$WORKDIR/wieractl" -addr "$LISTEN" put -id smoke -tenant gold -key after -value still-works >/dev/null

echo "== tenant metrics + tenants view carry the accounting =="
METRICS_OUT=$(curl -fsS "http://$METRICS/metrics")
grep -q '^tenant_throttled_total' <<<"$METRICS_OUT" || {
  echo "FAIL: no tenant_throttled_total samples"; exit 1; }
grep -q '^tenant_ops_total{tenant="gold"' <<<"$METRICS_OUT" || {
  echo "FAIL: no tenant_ops_total for gold"; exit 1; }
TENANTS_OUT=$("$WORKDIR/wieractl" -addr "$LISTEN" tenants -id smoke)
echo "$TENANTS_OUT"
grep -q 'gold' <<<"$TENANTS_OUT" || { echo "FAIL: tenants view misses gold"; exit 1; }
grep -q 'noisy' <<<"$TENANTS_OUT" || { echo "FAIL: tenants view misses noisy"; exit 1; }

echo "== /healthz reports the tenant count =="
HEALTH=$(curl -fsS "http://$METRICS/healthz")
echo "$HEALTH"
grep -q '"tenants": *3' <<<"$HEALTH" || {
  echo "FAIL: healthz tenant count is not 3 (gold, noisy, default)"; exit 1; }

echo "smoke_tenancy: OK"

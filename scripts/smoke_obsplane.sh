#!/usr/bin/env bash
# Smoke test for the cluster observability plane: boots a 2-worker wiera
# daemon, drives a little traffic, then asserts the plane's end-to-end
# contract — /healthz answers, /cluster/metrics carries at least one
# trace-ID exemplar, and the event journal recorded at least one event.
#
# Run from the repo root: ./scripts/smoke_obsplane.sh
set -euo pipefail

GO=${GO:-go}
LISTEN=${LISTEN:-127.0.0.1:7460}
METRICS=${METRICS:-127.0.0.1:7461}

WORKDIR=$(mktemp -d)
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== build =="
$GO build -o "$WORKDIR/wiera" ./cmd/wiera
$GO build -o "$WORKDIR/wieractl" ./cmd/wieractl

echo "== boot daemon (2 workers per region) =="
"$WORKDIR/wiera" -listen "$LISTEN" -metrics-addr "$METRICS" -workers 2 \
  >"$WORKDIR/daemon.log" 2>&1 &
DAEMON_PID=$!

for i in $(seq 1 50); do
  if curl -fsS "http://$METRICS/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "FAIL: daemon exited during startup"; cat "$WORKDIR/daemon.log"; exit 1
  fi
  sleep 0.2
done
curl -fsS "http://$METRICS/healthz" >/dev/null || {
  echo "FAIL: /healthz never came up"; cat "$WORKDIR/daemon.log"; exit 1; }

echo "== start instance + drive traffic =="
"$WORKDIR/wieractl" -addr "$LISTEN" start -id smoke -policy PrimaryBackupConsistency -param t=2s
for i in $(seq 1 20); do
  "$WORKDIR/wieractl" -addr "$LISTEN" put -id smoke -key "k$i" -value "v$i" >/dev/null
  "$WORKDIR/wieractl" -addr "$LISTEN" get -id smoke -key "k$i" >/dev/null
done

echo "== assert /healthz reports the instance =="
HEALTH=$(curl -fsS "http://$METRICS/healthz")
echo "$HEALTH"
grep -q '"status": *"ok"' <<<"$HEALTH" || { echo "FAIL: healthz status not ok"; exit 1; }
grep -q '"smoke"' <<<"$HEALTH" || { echo "FAIL: healthz missing the smoke instance"; exit 1; }

echo "== assert /cluster/metrics carries >=1 exemplar =="
CLUSTER=$(curl -fsS "http://$METRICS/cluster/metrics")
grep -q '^# cluster sources' <<<"$CLUSTER" || { echo "FAIL: no cluster sources header"; exit 1; }
if ! grep -q '# {trace_id="' <<<"$CLUSTER"; then
  echo "FAIL: no exemplar in /cluster/metrics"; head -40 <<<"$CLUSTER"; exit 1
fi
EXEMPLAR=$(grep -o 'trace_id="[0-9a-f]*"' <<<"$CLUSTER" | head -1 | cut -d'"' -f2)
echo "exemplar trace: $EXEMPLAR"

echo "== assert the exemplar resolves to an analyzable trace =="
"$WORKDIR/wieractl" -addr "$LISTEN" trace -trace "$EXEMPLAR" -analyze

echo "== grow then shrink: ring epochs must land in the journal in order =="
"$WORKDIR/wieractl" -addr "$LISTEN" grow -id smoke >/dev/null
"$WORKDIR/wieractl" -addr "$LISTEN" shrink -id smoke >/dev/null

echo "== assert the journal recorded >=1 event =="
EVENTS=$(curl -fsS "http://$METRICS/events")
grep -q '"total": *[1-9]' <<<"$EVENTS" || {
  echo "FAIL: event journal empty"; echo "$EVENTS"; exit 1; }
EVLIST=$("$WORKDIR/wieractl" -addr "$LISTEN" events -n 20)
echo "$EVLIST"
EPOCHS=$(grep -c 'ring.epoch' <<<"$EVLIST" || true)
if [ "$EPOCHS" -lt 3 ]; then
  echo "FAIL: want >=3 ring.epoch events (start, grow, shrink), got $EPOCHS"; exit 1
fi

echo "== fleet view =="
"$WORKDIR/wieractl" -addr "$LISTEN" cluster

echo "smoke_obsplane: OK"

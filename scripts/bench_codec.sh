#!/usr/bin/env bash
# Codec benchmark gate: runs the gob-vs-wire encode/decode benchmarks on
# the real hot-path messages and fails the build if the hand-rolled wire
# codec ever regresses to gob speed (it must stay >= 2x faster on every
# message) or if the zero-alloc steady state (wire/append) allocates.
#
# Run from the repo root: ./scripts/bench_codec.sh
set -euo pipefail

GO=${GO:-go}
BENCHTIME=${BENCHTIME:-2000x}
MIN_SPEEDUP=${MIN_SPEEDUP:-2}

OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

echo "== codec benchmarks (real messages, -benchtime $BENCHTIME) =="
$GO test -run '^$' -bench 'BenchmarkEncode' -benchtime "$BENCHTIME" \
  ./internal/wiera/ | tee "$OUT"

# Parse "BenchmarkEncode/<msg>/<variant> <N> <ns> ns/op ... <allocs> allocs/op"
# into per-message gob/wire ns figures and wire/append alloc counts.
awk -v min="$MIN_SPEEDUP" '
  $1 ~ /^BenchmarkEncode\// {
    split($1, parts, "/")
    msg = parts[2]
    variant = parts[3]
    if (length(parts) > 3) variant = variant "/" parts[4]
    ns = $3
    allocs = "?"
    for (i = 4; i <= NF; i++) if ($(i) == "allocs/op") allocs = $(i - 1)
    if (variant == "gob") gob[msg] = ns
    if (variant == "wire") wire[msg] = ns
    if (variant == "wire/append") { app[msg] = ns; appallocs[msg] = allocs }
    msgs[msg] = 1
  }
  END {
    fail = 0
    for (m in msgs) {
      if (!(m in gob) || !(m in wire)) {
        printf "FAIL %s: missing gob or wire sub-benchmark\n", m
        fail = 1
        continue
      }
      speedup = gob[m] / wire[m]
      printf "%-20s gob %10.0f ns/op  wire %9.1f ns/op  (%.1fx)", m, gob[m], wire[m], speedup
      if (m in app) printf "  append %8.1f ns/op %s allocs/op", app[m], appallocs[m]
      printf "\n"
      if (speedup < min) {
        printf "FAIL %s: wire only %.2fx faster than gob (need >= %sx)\n", m, speedup, min
        fail = 1
      }
      if ((m in appallocs) && appallocs[m] + 0 != 0) {
        printf "FAIL %s: wire/append allocated %s times per op (need 0)\n", m, appallocs[m]
        fail = 1
      }
    }
    if (fail) exit 1
    print "PASS: wire codec >= " min "x faster than gob on every message; steady state allocation-free"
  }
' "$OUT"

package policy

import (
	"fmt"
	"strings"
)

// Env resolves dotted attribute paths during expression evaluation. The
// Tiera/Wiera layers populate an Env per event firing: insert.key,
// insert.object.size, object.location, local_instance.isPrimary,
// threshold.latency, and so on.
type Env interface {
	// Lookup returns the value bound to path and whether it is bound.
	Lookup(path string) (Value, bool)
}

// MapEnv is an Env backed by a map, optionally chained to a parent.
type MapEnv struct {
	Vars   map[string]Value
	Parent Env
}

// NewMapEnv returns an empty MapEnv.
func NewMapEnv() *MapEnv { return &MapEnv{Vars: make(map[string]Value)} }

// Lookup implements Env.
func (m *MapEnv) Lookup(path string) (Value, bool) {
	if v, ok := m.Vars[path]; ok {
		return v, true
	}
	if m.Parent != nil {
		return m.Parent.Lookup(path)
	}
	return Value{}, false
}

// Set binds path to v.
func (m *MapEnv) Set(path string, v Value) { m.Vars[path] = v }

// Eval evaluates expr in env to a Value.
func Eval(expr Expr, env Env) (Value, error) {
	switch e := expr.(type) {
	case *LitExpr:
		return e.Val, nil
	case *IdentExpr:
		if v, ok := env.Lookup(e.Path); ok {
			return v, nil
		}
		// Unbound identifiers evaluate to themselves: tier names and region
		// names appear bare in specs (to:tier2, to:all_regions).
		return IdentVal(e.Path), nil
	case *UnaryExpr:
		v, err := Eval(e.X, env)
		if err != nil {
			return Value{}, err
		}
		if v.Kind != ValBool {
			return Value{}, fmt.Errorf("policy: ! applied to non-boolean %s", v)
		}
		return BoolVal(!v.Bool), nil
	case *BinaryExpr:
		return evalBinary(e, env)
	default:
		return Value{}, fmt.Errorf("policy: unknown expression %T", expr)
	}
}

func evalBinary(e *BinaryExpr, env Env) (Value, error) {
	// Short-circuit logical operators.
	if e.Op == TokAnd || e.Op == TokOr {
		l, err := Eval(e.Left, env)
		if err != nil {
			return Value{}, err
		}
		if l.Kind != ValBool {
			return Value{}, fmt.Errorf("policy: %s applied to non-boolean %s", e.Op, l)
		}
		if e.Op == TokAnd && !l.Bool {
			return BoolVal(false), nil
		}
		if e.Op == TokOr && l.Bool {
			return BoolVal(true), nil
		}
		r, err := Eval(e.Right, env)
		if err != nil {
			return Value{}, err
		}
		if r.Kind != ValBool {
			return Value{}, fmt.Errorf("policy: %s applied to non-boolean %s", e.Op, r)
		}
		return BoolVal(r.Bool), nil
	}

	l, err := Eval(e.Left, env)
	if err != nil {
		return Value{}, err
	}
	r, err := Eval(e.Right, env)
	if err != nil {
		return Value{}, err
	}
	switch e.Op {
	case TokEq:
		return BoolVal(l.Equal(r)), nil
	case TokNeq:
		return BoolVal(!l.Equal(r)), nil
	case TokLt, TokGt, TokLe, TokGe:
		lf, rf, err := comparable2(l, r)
		if err != nil {
			return Value{}, err
		}
		switch e.Op {
		case TokLt:
			return BoolVal(lf < rf), nil
		case TokGt:
			return BoolVal(lf > rf), nil
		case TokLe:
			return BoolVal(lf <= rf), nil
		default:
			return BoolVal(lf >= rf), nil
		}
	default:
		return Value{}, fmt.Errorf("policy: unsupported operator %s", e.Op)
	}
}

// comparable2 coerces two values to ordered float64s; durations compare to
// durations, sizes to sizes, numbers/percents/rates to each other.
func comparable2(l, r Value) (float64, float64, error) {
	num := func(v Value) (float64, bool) {
		switch v.Kind {
		case ValNumber, ValPercent, ValRate:
			return v.Num, true
		case ValDuration:
			return float64(v.Dur), true
		case ValSize:
			return float64(v.Size), true
		default:
			return 0, false
		}
	}
	lf, lok := num(l)
	rf, rok := num(r)
	if !lok || !rok {
		return 0, 0, fmt.Errorf("policy: cannot order %s and %s", l, r)
	}
	// Mixing a duration with a plain number (or size with number) is
	// allowed — the number is taken in the duration's base unit — but
	// duration-vs-size is a type error.
	if l.Kind == ValDuration && r.Kind == ValSize || l.Kind == ValSize && r.Kind == ValDuration {
		return 0, 0, fmt.Errorf("policy: cannot compare duration with size")
	}
	return lf, rf, nil
}

// EvalBool evaluates expr expecting a boolean result.
func EvalBool(expr Expr, env Env) (bool, error) {
	v, err := Eval(expr, env)
	if err != nil {
		return false, err
	}
	if v.Kind != ValBool {
		return false, fmt.Errorf("policy: expression %s is not boolean (got %s)", expr, v)
	}
	return v.Bool, nil
}

// ReferencesPrefix reports whether the expression mentions any identifier
// path starting with prefix (e.g. "object."); used to detect predicate
// selectors in action arguments.
func ReferencesPrefix(expr Expr, prefix string) bool {
	switch e := expr.(type) {
	case *IdentExpr:
		return strings.HasPrefix(e.Path, prefix)
	case *UnaryExpr:
		return ReferencesPrefix(e.X, prefix)
	case *BinaryExpr:
		return ReferencesPrefix(e.Left, prefix) || ReferencesPrefix(e.Right, prefix)
	default:
		return false
	}
}

package policy

import (
	"testing"
	"time"
)

func BenchmarkParseBuiltin(b *testing.B) {
	src, err := BuiltinSource("MultiPrimariesConsistency")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompile(b *testing.B) {
	spec, err := Builtin("LowLatencyInstance")
	if err != nil {
		b.Fatal(err)
	}
	params := map[string]Value{"t": DurationVal(time.Second)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(spec, params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalGuard(b *testing.B) {
	toks, err := Lex("threshold.latency > 800ms && threshold.period > 30s")
	if err != nil {
		b.Fatal(err)
	}
	p := &parser{toks: toks}
	expr, err := p.parseExpr()
	if err != nil {
		b.Fatal(err)
	}
	env := NewMapEnv()
	env.Set("threshold.latency", DurationVal(900*time.Millisecond))
	env.Set("threshold.period", DurationVal(time.Minute))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(expr, env); err != nil {
			b.Fatal(err)
		}
	}
}

// benchExec discards actions: measures pure engine dispatch cost.
type benchExec struct{}

func (benchExec) Do(*ActionCall) error       { return nil }
func (benchExec) Assign(string, Value) error { return nil }

func BenchmarkFireInsertEvent(b *testing.B) {
	spec, err := Builtin("PrimaryBackupConsistency")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := Compile(spec, nil)
	if err != nil {
		b.Fatal(err)
	}
	ev := prog.ByKind(KindInsert)[0]
	env := NewMapEnv()
	env.Set("insert.key", StringVal("k"))
	env.Set("local_instance.isPrimary", BoolVal(true))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Fire(env, benchExec{}); err != nil {
			b.Fatal(err)
		}
	}
}

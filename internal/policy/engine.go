package policy

import (
	"fmt"
	"strings"
	"time"
)

// EventKind classifies compiled events by what triggers them.
type EventKind int

// Event kinds recognized by the engine.
const (
	// KindInsert fires on object insertion (the action event
	// "insert.into", optionally guarded by a target tier).
	KindInsert EventKind = iota
	// KindGet fires on object retrieval ("get.from").
	KindGet
	// KindTimer fires periodically ("time = t").
	KindTimer
	// KindFilled fires when a tier's fill fraction crosses a threshold
	// ("tier2.filled == 50%").
	KindFilled
	// KindObjectMonitor fires per object matching a metadata predicate,
	// evaluated by a periodic scan ("object.lastAccessedTime > 120h" — the
	// paper's ColdDataMonitoring).
	KindObjectMonitor
	// KindThreshold fires from the latency/requests monitoring threads
	// ("threshold.type == put" / "threshold.type == primary").
	KindThreshold
)

// String returns the kind name.
func (k EventKind) String() string {
	switch k {
	case KindInsert:
		return "insert"
	case KindGet:
		return "get"
	case KindTimer:
		return "timer"
	case KindFilled:
		return "filled"
	case KindObjectMonitor:
		return "object-monitor"
	case KindThreshold:
		return "threshold"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// CompiledEvent is one event/response pair classified and parameterized.
type CompiledEvent struct {
	Kind EventKind
	Expr Expr   // original event expression, used as the firing guard
	Body []Stmt // response statements

	// Kind-specific parameters.
	Period   time.Duration // KindTimer: firing period
	Tier     string        // KindFilled: tier label
	FillFrac float64       // KindFilled: threshold in [0,1]
	Monitor  string        // KindThreshold: monitor name (put, get, primary)
}

// Program is a compiled policy specification ready to execute.
type Program struct {
	Spec   *Spec
	Events []*CompiledEvent
	params *MapEnv
}

// Compile classifies every event in spec. params binds declaration
// parameters (e.g. {"t": DurationVal(10*time.Second)} for "Tiera X(time
// t)") and is consulted when event expressions reference them.
func Compile(spec *Spec, params map[string]Value) (*Program, error) {
	env := NewMapEnv()
	for k, v := range params {
		env.Set(k, v)
	}
	p := &Program{Spec: spec, params: env}
	for i := range spec.Events {
		ce, err := classify(&spec.Events[i], env)
		if err != nil {
			return nil, fmt.Errorf("policy: event %d of %s: %w", i, spec.Name, err)
		}
		p.Events = append(p.Events, ce)
	}
	return p, nil
}

// classify determines an event's kind from its expression shape.
func classify(decl *EventDecl, params Env) (*CompiledEvent, error) {
	ce := &CompiledEvent{Expr: decl.Expr, Body: decl.Body}
	root := firstIdent(decl.Expr)
	switch {
	case root == "":
		return nil, fmt.Errorf("event expression %q names no attribute", decl.Expr)
	case strings.HasPrefix(root, "insert."):
		ce.Kind = KindInsert
	case strings.HasPrefix(root, "get."):
		ce.Kind = KindGet
	case root == "time":
		ce.Kind = KindTimer
		bin, ok := decl.Expr.(*BinaryExpr)
		if !ok || bin.Op != TokEq {
			return nil, fmt.Errorf("timer event must be time = <duration>")
		}
		v, err := Eval(bin.Right, params)
		if err != nil {
			return nil, err
		}
		if v.Kind != ValDuration {
			return nil, fmt.Errorf("timer period %s is not a duration", v)
		}
		ce.Period = v.Dur
	case strings.HasSuffix(root, ".filled"):
		ce.Kind = KindFilled
		ce.Tier = strings.TrimSuffix(root, ".filled")
		bin, ok := decl.Expr.(*BinaryExpr)
		if !ok || (bin.Op != TokEq && bin.Op != TokGe && bin.Op != TokGt) {
			return nil, fmt.Errorf("filled event must compare %s.filled to a percent", ce.Tier)
		}
		v, err := Eval(bin.Right, params)
		if err != nil {
			return nil, err
		}
		switch v.Kind {
		case ValPercent:
			ce.FillFrac = v.Num / 100
		case ValNumber:
			ce.FillFrac = v.Num
		default:
			return nil, fmt.Errorf("filled threshold %s is not a percent", v)
		}
		if ce.FillFrac < 0 || ce.FillFrac > 1 {
			return nil, fmt.Errorf("filled threshold %.3f outside [0,1]", ce.FillFrac)
		}
	case strings.HasPrefix(root, "object."):
		ce.Kind = KindObjectMonitor
	case strings.HasPrefix(root, "threshold."):
		ce.Kind = KindThreshold
		if bin, ok := decl.Expr.(*BinaryExpr); ok && bin.Op == TokEq {
			v, err := Eval(bin.Right, params)
			if err != nil {
				return nil, err
			}
			if v.Kind == ValIdent || v.Kind == ValString {
				ce.Monitor = v.Str
			}
		}
		if ce.Monitor == "" {
			return nil, fmt.Errorf("threshold event must be threshold.type == <monitor>")
		}
	default:
		return nil, fmt.Errorf("unrecognized event expression %q", decl.Expr)
	}
	return ce, nil
}

// firstIdent returns the leftmost identifier path in expr.
func firstIdent(expr Expr) string {
	switch e := expr.(type) {
	case *IdentExpr:
		return e.Path
	case *UnaryExpr:
		return firstIdent(e.X)
	case *BinaryExpr:
		if s := firstIdent(e.Left); s != "" {
			return s
		}
		return firstIdent(e.Right)
	default:
		return ""
	}
}

// ByKind returns the compiled events of one kind, in declaration order.
func (p *Program) ByKind(kind EventKind) []*CompiledEvent {
	var out []*CompiledEvent
	for _, e := range p.Events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Predicate tests one object's metadata environment; used for "what"
// selectors like object.location == tier1 && object.dirty == true.
type Predicate func(objEnv Env) (bool, error)

// ActionCall is one response action, with arguments evaluated: Args holds
// eagerly evaluated values, Preds holds arguments that are predicates over
// object attributes (detected by their reference to "object.").
type ActionCall struct {
	Name  string
	Args  map[string]Value
	Preds map[string]Predicate
}

// Arg returns the named evaluated argument value.
func (c *ActionCall) Arg(name string) (Value, bool) {
	v, ok := c.Args[name]
	return v, ok
}

// StringArg returns the named argument as a string (identifier or string
// value) or an error.
func (c *ActionCall) StringArg(name string) (string, error) {
	v, ok := c.Args[name]
	if !ok {
		return "", fmt.Errorf("policy: action %s missing argument %q", c.Name, name)
	}
	if v.Kind != ValIdent && v.Kind != ValString {
		return "", fmt.Errorf("policy: action %s argument %q is %s, want name", c.Name, name, v)
	}
	return v.Str, nil
}

// Executor carries out response actions and attribute assignments. The
// Tiera layer implements local actions (store, copy, move, delete, grow);
// the Wiera layer adds global ones (forward, queue, lock, release,
// change_policy).
type Executor interface {
	// Do performs one action. Unknown actions should return an error.
	Do(call *ActionCall) error
	// Assign sets an attribute path (insert.object.dirty = true).
	Assign(path string, v Value) error
}

// FireGuard evaluates the event's expression as its firing guard in env.
// Bare attribute references (event(insert.into)) count as true; boolean
// expressions are evaluated.
func (e *CompiledEvent) FireGuard(env Env) (bool, error) {
	switch e.Expr.(type) {
	case *IdentExpr:
		return true, nil
	}
	if e.Kind == KindTimer || e.Kind == KindFilled || e.Kind == KindObjectMonitor {
		// These fire from schedulers that already checked the condition.
		return true, nil
	}
	v, err := Eval(e.Expr, env)
	if err != nil {
		return false, err
	}
	if v.Kind != ValBool {
		return true, nil // non-boolean event exprs (e.g. insert.into) fire unconditionally
	}
	return v.Bool, nil
}

// Execute runs the event's response body in env against exec.
func (e *CompiledEvent) Execute(env Env, exec Executor) error {
	return execStmts(e.Body, env, exec)
}

// Fire evaluates the guard and, when it holds, executes the body. It
// reports whether the body ran.
func (e *CompiledEvent) Fire(env Env, exec Executor) (bool, error) {
	ok, err := e.FireGuard(env)
	if err != nil || !ok {
		return false, err
	}
	if err := e.Execute(env, exec); err != nil {
		return true, err
	}
	return true, nil
}

func execStmts(stmts []Stmt, env Env, exec Executor) error {
	for _, s := range stmts {
		switch st := s.(type) {
		case *AssignStmt:
			v, err := Eval(st.Expr, env)
			if err != nil {
				return err
			}
			if err := exec.Assign(st.Path, v); err != nil {
				return err
			}
		case *IfStmt:
			cond, err := EvalBool(st.Cond, env)
			if err != nil {
				return err
			}
			if cond {
				if err := execStmts(st.Then, env, exec); err != nil {
					return err
				}
			} else if len(st.Else) > 0 {
				if err := execStmts(st.Else, env, exec); err != nil {
					return err
				}
			}
		case *ActionStmt:
			call, err := evalCall(st, env)
			if err != nil {
				return err
			}
			if err := exec.Do(call); err != nil {
				return err
			}
		default:
			return fmt.Errorf("policy: unknown statement %T", s)
		}
	}
	return nil
}

// evalCall evaluates an action's arguments. Arguments whose expressions
// reference object.* become Predicates evaluated later per object; all
// others are evaluated eagerly in env.
func evalCall(st *ActionStmt, env Env) (*ActionCall, error) {
	call := &ActionCall{Name: st.Name, Args: make(map[string]Value), Preds: make(map[string]Predicate)}
	for _, a := range st.Args {
		if ReferencesPrefix(a.Expr, "object.") {
			expr := a.Expr
			outer := env
			call.Preds[a.Name] = func(objEnv Env) (bool, error) {
				chained := &MapEnv{Vars: map[string]Value{}, Parent: &chainEnv{first: objEnv, second: outer}}
				return EvalBool(expr, chained)
			}
			continue
		}
		v, err := Eval(a.Expr, env)
		if err != nil {
			return nil, err
		}
		call.Args[a.Name] = v
	}
	return call, nil
}

// chainEnv consults first then second.
type chainEnv struct{ first, second Env }

// Lookup implements Env.
func (c *chainEnv) Lookup(path string) (Value, bool) {
	if v, ok := c.first.Lookup(path); ok {
		return v, true
	}
	return c.second.Lookup(path)
}

package policy

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse parses one policy specification from src.
//
// Grammar (paper-figure style, case-insensitive keywords):
//
//	spec      := ("Tiera"|"Wiera") IDENT [params] "{" item* "}"
//	params    := "(" [IDENT IDENT ("," IDENT IDENT)*] ")"
//	item      := tierDecl | regionDecl | eventDecl
//	tierDecl  := IDENT ":" attrBlock [";"]
//	regionDecl:= IDENT "=" attrBlock [";"]
//	attrBlock := "{" attr ((","|";") attr)* "}"
//	attr      := IDENT (":"|"=") (value | attrBlock)   // nested = tier override
//	eventDecl := "event" "(" expr ")" ":" "response" "{" stmt* "}"
//	stmt      := ifStmt | assign | action
//	ifStmt    := "if" "(" expr ")" block-or-stmts ["else" (ifStmt | block-or-stmts)]
//	assign    := IDENT "=" expr [";"]
//	action    := IDENT "(" [arg ("," arg)*] ")" [";"]
//	arg       := IDENT ":" expr
//	expr      := or-expr with ==, !=, <, >, <=, >=, &&, ||, !, parens
func Parse(src string) (*Spec, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	spec, err := p.parseSpec()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != TokEOF {
		return nil, p.errorf("trailing input after specification")
	}
	return spec, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errorf(format string, args ...any) error {
	t := p.peek()
	return fmt.Errorf("policy: line %d:%d: %s (at %q)", t.Line, t.Col, fmt.Sprintf(format, args...), t.Text)
}

func (p *parser) expect(kind TokenKind) (Token, error) {
	if p.peek().Kind != kind {
		return Token{}, p.errorf("expected %s", kind)
	}
	return p.next(), nil
}

// accept consumes the next token when it matches kind.
func (p *parser) accept(kind TokenKind) bool {
	if p.peek().Kind == kind {
		p.next()
		return true
	}
	return false
}

func (p *parser) parseSpec() (*Spec, error) {
	kw, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	spec := &Spec{}
	switch strings.ToLower(kw.Text) {
	case "tiera":
		spec.IsGlobal = false
	case "wiera":
		spec.IsGlobal = true
	default:
		return nil, p.errorf("specification must begin with Tiera or Wiera, got %q", kw.Text)
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	spec.Name = name.Text
	if p.accept(TokLParen) {
		for p.peek().Kind == TokIdent {
			typ := p.next() // parameter type (e.g. time)
			if p.peek().Kind == TokIdent {
				nm := p.next()
				spec.Params = append(spec.Params, typ.Text+" "+nm.Text)
			} else {
				spec.Params = append(spec.Params, typ.Text)
			}
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for p.peek().Kind != TokRBrace {
		if p.peek().Kind == TokEOF {
			return nil, p.errorf("unexpected EOF in specification body")
		}
		if err := p.parseItem(spec); err != nil {
			return nil, err
		}
	}
	p.next() // closing brace
	return spec, nil
}

func (p *parser) parseItem(spec *Spec) error {
	t := p.peek()
	if t.Kind != TokIdent {
		return p.errorf("expected tier, region, or event declaration")
	}
	if strings.EqualFold(t.Text, "event") {
		ev, err := p.parseEvent()
		if err != nil {
			return err
		}
		spec.Events = append(spec.Events, *ev)
		return nil
	}
	label := p.next()
	switch p.peek().Kind {
	case TokColon:
		p.next()
		attrs, tiers, err := p.parseAttrBlock()
		if err != nil {
			return err
		}
		if len(tiers) > 0 {
			return p.errorf("tier declaration %q cannot nest tiers", label.Text)
		}
		spec.Tiers = append(spec.Tiers, TierDecl{Label: label.Text, Attrs: attrs})
	case TokAssign:
		p.next()
		attrs, tiers, err := p.parseAttrBlock()
		if err != nil {
			return err
		}
		spec.Regions = append(spec.Regions, RegionDecl{Label: label.Text, Attrs: attrs, Tiers: tiers})
	default:
		return p.errorf("expected ':' or '=' after %q", label.Text)
	}
	p.accept(TokSemi)
	return nil
}

// parseAttrBlock parses {a: v, b = v, tierN = {...}} returning flat attrs
// and nested tier declarations.
func (p *parser) parseAttrBlock() ([]Attr, []TierDecl, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, nil, err
	}
	var attrs []Attr
	var tiers []TierDecl
	for p.peek().Kind != TokRBrace {
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, nil, err
		}
		if !p.accept(TokColon) && !p.accept(TokAssign) {
			return nil, nil, p.errorf("expected ':' or '=' after attribute %q", name.Text)
		}
		if p.peek().Kind == TokLBrace {
			sub, subTiers, err := p.parseAttrBlock()
			if err != nil {
				return nil, nil, err
			}
			if len(subTiers) > 0 {
				return nil, nil, p.errorf("attribute block for %q nests too deep", name.Text)
			}
			tiers = append(tiers, TierDecl{Label: name.Text, Attrs: sub})
		} else {
			v, err := p.parseValue()
			if err != nil {
				return nil, nil, err
			}
			attrs = append(attrs, Attr{Name: name.Text, Val: v})
		}
		if !p.accept(TokComma) && !p.accept(TokSemi) {
			break
		}
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, nil, err
	}
	return attrs, tiers, nil
}

func (p *parser) parseValue() (Value, error) {
	t := p.next()
	switch t.Kind {
	case TokString:
		return StringVal(t.Text), nil
	case TokNumber:
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return Value{}, p.errorf("bad number %q", t.Text)
		}
		return NumberVal(f), nil
	case TokDuration:
		d, err := parseDurationText(t.Text)
		if err != nil {
			return Value{}, p.errorf("%v", err)
		}
		return DurationVal(d), nil
	case TokSize:
		n, err := parseSizeText(t.Text)
		if err != nil {
			return Value{}, p.errorf("%v", err)
		}
		return SizeVal(n), nil
	case TokRate:
		n, err := parseSizeText(t.Text)
		if err != nil {
			return Value{}, p.errorf("%v", err)
		}
		return RateVal(float64(n)), nil
	case TokPercent:
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return Value{}, p.errorf("bad percent %q", t.Text)
		}
		return PercentVal(f), nil
	case TokIdent:
		switch strings.ToLower(t.Text) {
		case "true":
			return BoolVal(true), nil
		case "false":
			return BoolVal(false), nil
		}
		return IdentVal(t.Text), nil
	default:
		return Value{}, p.errorf("expected a value")
	}
}

func (p *parser) parseEvent() (*EventDecl, error) {
	p.next() // "event"
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	kw, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if !strings.EqualFold(kw.Text, "response") {
		return nil, p.errorf("expected 'response', got %q", kw.Text)
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &EventDecl{Expr: expr, Body: body}, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for p.peek().Kind != TokRBrace {
		if p.peek().Kind == TokEOF {
			return nil, p.errorf("unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next()
	return stmts, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return nil, p.errorf("expected statement")
	}
	if strings.EqualFold(t.Text, "if") {
		return p.parseIf()
	}
	name := p.next()
	switch p.peek().Kind {
	case TokAssign:
		p.next()
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		p.accept(TokSemi)
		return &AssignStmt{Path: name.Text, Expr: expr}, nil
	case TokLParen:
		p.next()
		var args []Arg
		for p.peek().Kind != TokRParen {
			an, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
			ex, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, Arg{Name: an.Text, Expr: ex})
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		p.accept(TokSemi)
		return &ActionStmt{Name: strings.ToLower(name.Text), Args: args}, nil
	default:
		return nil, p.errorf("expected '=' or '(' after %q", name.Text)
	}
}

func (p *parser) parseIf() (Stmt, error) {
	p.next() // "if"
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	thenStmts, err := p.parseBranch()
	if err != nil {
		return nil, err
	}
	ifStmt := &IfStmt{Cond: cond, Then: thenStmts}
	if p.peek().Kind == TokIdent && strings.EqualFold(p.peek().Text, "else") {
		p.next()
		if p.peek().Kind == TokIdent && strings.EqualFold(p.peek().Text, "if") {
			elseIf, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			ifStmt.Else = []Stmt{elseIf}
		} else {
			elseStmts, err := p.parseBranch()
			if err != nil {
				return nil, err
			}
			ifStmt.Else = elseStmts
		}
	}
	return ifStmt, nil
}

// parseBranch parses either a braced block or a single statement (the
// paper's figures omit braces for single-statement branches).
func (p *parser) parseBranch() ([]Stmt, error) {
	if p.peek().Kind == TokLBrace {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

// Expression parsing: precedence climbing.

func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peek().Kind
		prec := binaryPrec(op)
		if prec < minPrec {
			return left, nil
		}
		p.next()
		right, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		if op == TokAssign {
			op = TokEq // the paper writes event(time=t) for equality
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func binaryPrec(op TokenKind) int {
	switch op {
	case TokOr:
		return 1
	case TokAnd:
		return 2
	case TokEq, TokNeq, TokLt, TokGt, TokLe, TokGe, TokAssign:
		return 3
	default:
		return 0
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(TokNot) {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: TokNot, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		p.next()
		switch strings.ToLower(t.Text) {
		case "true":
			return &LitExpr{Val: BoolVal(true)}, nil
		case "false":
			return &LitExpr{Val: BoolVal(false)}, nil
		}
		return &IdentExpr{Path: t.Text}, nil
	case TokString, TokNumber, TokDuration, TokSize, TokRate, TokPercent:
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		return &LitExpr{Val: v}, nil
	default:
		return nil, p.errorf("expected expression")
	}
}

// TokenValue converts one literal token to a Value (used to parse
// parameter bindings supplied as strings).
func TokenValue(t Token) (Value, error) {
	p := &parser{toks: []Token{t, {Kind: TokEOF}}}
	return p.parseValue()
}

// parseDurationText converts "800ms", "30s", "7.5m", "120h", "600seconds"
// to a duration.
func parseDurationText(s string) (time.Duration, error) {
	i := 0
	for i < len(s) && (s[i] >= '0' && s[i] <= '9' || s[i] == '.') {
		i++
	}
	num, err := strconv.ParseFloat(s[:i], 64)
	if err != nil {
		return 0, fmt.Errorf("policy: bad duration %q", s)
	}
	var unit time.Duration
	switch strings.ToLower(s[i:]) {
	case "ns":
		unit = time.Nanosecond
	case "us":
		unit = time.Microsecond
	case "ms":
		unit = time.Millisecond
	case "s", "sec", "second", "seconds":
		unit = time.Second
	case "m", "min", "minute", "minutes":
		unit = time.Minute
	case "h", "hour", "hours":
		unit = time.Hour
	default:
		return 0, fmt.Errorf("policy: bad duration unit in %q", s)
	}
	return time.Duration(num * float64(unit)), nil
}

// parseSizeText converts "5G", "512MB", "40KB" to bytes.
func parseSizeText(s string) (int64, error) {
	i := 0
	for i < len(s) && (s[i] >= '0' && s[i] <= '9' || s[i] == '.') {
		i++
	}
	num, err := strconv.ParseFloat(s[:i], 64)
	if err != nil {
		return 0, fmt.Errorf("policy: bad size %q", s)
	}
	var unit float64
	switch strings.ToUpper(s[i:]) {
	case "B", "":
		unit = 1
	case "K", "KB":
		unit = 1 << 10
	case "M", "MB":
		unit = 1 << 20
	case "G", "GB":
		unit = 1 << 30
	case "T", "TB":
		unit = 1 << 40
	default:
		return 0, fmt.Errorf("policy: bad size unit in %q", s)
	}
	return int64(num * unit), nil
}

package policy

import "fmt"

// Builtin policy sources transcribe the paper's figures into this package's
// notation (canonicalized spacing and units; semantics unchanged). They are
// the specifications the experiments run.
var builtinSources = map[string]string{
	// Figure 1(a): write-back caching — store to memory, copy dirty objects
	// to the persistent tier on a timer.
	"LowLatencyInstance": `
Tiera LowLatencyInstance(time t) {
	% two tiers specified with initial sizes
	tier1: {name: memory, size: 5G};
	tier2: {name: ebs-ssd, size: 5G};
	% action event defined to always store data into memory
	event(insert.into) : response {
		insert.object.dirty = true;
		store(what: insert.object, to: tier1);
	}
	% write back policy: copying data to persistent store on a timer event
	event(time = t) : response {
		copy(what: object.location == tier1 && object.dirty == true, to: tier2);
	}
}`,

	// Figure 1(b): write-through with a backup tier once the persistent
	// tier is half full.
	"PersistentInstance": `
Tiera PersistentInstance {
	tier1: {name: memory, size: 5G};
	tier2: {name: ebs-ssd, size: 5G};
	tier3: {name: s3, size: 10G};
	% write-through policy using action event and copy response
	event(insert.into == tier1) : response {
		copy(what: insert.object, to: tier2);
	}
	% simple backup policy
	event(tier2.filled == 50%) : response {
		copy(what: object.location == tier2, to: tier3, bandwidth: 40KB/s);
	}
}`,

	// Figure 3(a): every replica is a primary; updates fan out
	// synchronously under a global per-key lock.
	"MultiPrimariesConsistency": `
Wiera MultiPrimariesConsistency {
	Region1 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region3 = {name: LowLatencyInstance, region: eu-west,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	% MultiPrimaries Consistency
	event(insert.into) : response {
		lock(what: insert.key);
		store(what: insert.object, to: local_instance);
		copy(what: insert.object, to: all_regions);
		release(what: insert.key);
	}
}`,

	// Erasure-coded distribution: the stripe action runs a per-object
	// replication/EC chooser (internal/ec). Large cold objects encode into
	// k+m Reed-Solomon fragments striped across the regions; small or hot
	// objects keep full replicas.
	"ECCostOptimized": `
Wiera ECCostOptimized {
	Region1 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region3 = {name: LowLatencyInstance, region: eu-west,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	% Erasure-coded storage with a per-object replication/EC choice
	event(insert.into) : response {
		stripe(what: insert.object, to: all_regions);
	}
}`,

	// Figure 3(b): a single primary; non-primaries forward puts.
	"PrimaryBackupConsistency": `
Wiera PrimaryBackupConsistency {
	% Primary instance is running on Region1
	Region1 = {name: LowLatencyInstance, region: us-west, primary: true,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	% PrimaryBackup Consistency
	event(insert.into) : response {
		if (local_instance.isPrimary == true) {
			store(what: insert.object, to: local_instance);
			copy(what: insert.object, to: all_regions);
		} else {
			forward(what: insert.object, to: primary_instance);
		}
	}
}`,

	// Figure 4: local write plus background propagation.
	"EventualConsistency": `
Wiera EventualConsistency {
	Region1 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	% Eventual Consistency
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
		queue(what: insert.object, to: all_regions);
	}
}`,

	// Figure 5(a): switch between strong and eventual based on observed
	// put latency (800 ms threshold sustained for 30 s).
	"DynamicConsistency": `
Wiera DynamicConsistency {
	% In Multiple-Primaries Consistency: put operations spending more time
	% than the threshold for a sustained period trigger a policy change.
	event(threshold.type == put) : response {
		if (threshold.latency > 800ms && threshold.period > 30s) {
			change_policy(what: consistency, to: EventualConsistency);
		} else if (threshold.latency <= 800ms && threshold.period > 30s) {
			change_policy(what: consistency, to: MultiPrimariesConsistency);
		}
	}
}`,

	// Fig-7-style switch driven by SLO error-budget burn instead of raw
	// latency: downgrade consistency while the multi-window burn-rate alert
	// holds, return to strong consistency once the budget stops burning.
	// threshold.burnRate is the minimum of the fast- and slow-window burn
	// rates, so both the "genuinely on fire" and "has recovered" branches
	// read the conservative signal.
	"SLOSwitch": `
Wiera SLOSwitch {
	% Consuming error budget at twice the sustainable rate for a sustained
	% period: drop to eventual consistency. Burn below sustainable: the
	% budget is recovering, return to multi-primaries.
	event(threshold.type == slo) : response {
		if (threshold.burnRate >= 2 && threshold.period > 30s) {
			change_policy(what: consistency, to: EventualConsistency);
		} else if (threshold.burnRate < 1 && threshold.period > 30s) {
			change_policy(what: consistency, to: MultiPrimariesConsistency);
		}
	}
}`,

	// Figure 5(b): move the primary to the instance that forwarded the
	// most requests.
	"ChangePrimary": `
Wiera ChangePrimary {
	% In Primary-Backup Consistency: if another instance forwarded more
	% requests than the primary received directly, move the primary there.
	event(threshold.type == primary) : response {
		if (threshold.forwarded >= threshold.fromClients && threshold.period >= 600s) {
			change_policy(what: primary_instance, to: instance_forward_most);
		}
	}
}`,

	// Figure 6(a): demote objects unaccessed for 120 hours to the cheap
	// tier.
	"ReducedCostPolicy": `
Wiera ReducedCostPolicy {
	Region1 = {name: PersistentInstance, region: us-west,
		tier1 = {name: ebs-ssd, size: 5G}, tier2 = {name: s3-ia, size: 5G}};
	% Data is getting cold
	event(object.lastAccessedTime > 120h) : response {
		move(what: object.location == tier1, to: tier2, bandwidth: 100KB/s);
	}
}`,

	// ForwardingInstance: the minimal local instance of Fig 6(b)'s
	// non-primary members — a small memory tier used only as a cache while
	// every put is forwarded by the global policy.
	"ForwardingInstance": `
Tiera ForwardingInstance {
	tier1: {name: memory, size: 1G};
}`,

	// Figure 6(b): same-region forwarding instances around one primary
	// with the fastest tier.
	"SimplerConsistency": `
Wiera SimplerConsistency {
	Region1 = {name: LowLatencyInstance, region: us-west, primary: true,
		tier1 = {name: memory, size: 30G}, tier2 = {name: ebs-ssd, size: 30G}};
	Region2 = {name: ForwardingInstance, region: us-west-2};
	Region3 = {name: ForwardingInstance, region: us-west-3};
	% PrimaryBackup Consistency within one region
	event(insert.into) : response {
		if (local_instance.isPrimary == true) {
			store(what: insert.object, to: local_instance);
		} else {
			forward(what: insert.object, to: primary_instance);
		}
	}
}`,
}

// BuiltinNames returns the names of all built-in policies.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtinSources))
	for n := range builtinSources {
		names = append(names, n)
	}
	return names
}

// BuiltinSource returns the policy source text for name.
func BuiltinSource(name string) (string, error) {
	src, ok := builtinSources[name]
	if !ok {
		return "", fmt.Errorf("policy: no builtin policy %q", name)
	}
	return src, nil
}

// Builtin parses the named built-in policy.
func Builtin(name string) (*Spec, error) {
	src, err := BuiltinSource(name)
	if err != nil {
		return nil, err
	}
	return Parse(src)
}

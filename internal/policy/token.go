// Package policy implements the Wiera/Tiera policy notation (paper Figs
// 1-6): a concise declarative language of storage tiers, regions, and
// event/response pairs, together with the engine that evaluates events and
// drives responses against a storage executor.
//
// The package splits into:
//
//   - a lexer/parser producing an AST (token.go, ast.go, parser.go)
//   - a printer that round-trips the AST back to source (print.go)
//   - an expression evaluator over an attribute environment (eval.go)
//   - the event/response engine (engine.go) which classifies compiled
//     events (insert, get, timer, filled, cold, threshold) and executes
//     response statements through an Executor supplied by the Tiera or
//     Wiera layer.
package policy

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber   // 42, 3.5
	TokString   // "text"
	TokDuration // 30s, 800ms, 120h, 7.5m
	TokSize     // 5G, 512M, 40KB
	TokRate     // 40KB/s
	TokPercent  // 50%
	TokLBrace   // {
	TokRBrace   // }
	TokLParen   // (
	TokRParen   // )
	TokColon    // :
	TokSemi     // ;
	TokComma    // ,
	TokAssign   // =
	TokEq       // ==
	TokNeq      // !=
	TokLt       // <
	TokGt       // >
	TokLe       // <=
	TokGe       // >=
	TokAnd      // &&
	TokOr       // ||
	TokNot      // !
)

var tokenNames = map[TokenKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokNumber: "number",
	TokString: "string", TokDuration: "duration", TokSize: "size",
	TokRate: "rate", TokPercent: "percent",
	TokLBrace: "{", TokRBrace: "}", TokLParen: "(", TokRParen: ")",
	TokColon: ":", TokSemi: ";", TokComma: ",", TokAssign: "=",
	TokEq: "==", TokNeq: "!=", TokLt: "<", TokGt: ">", TokLe: "<=",
	TokGe: ">=", TokAnd: "&&", TokOr: "||", TokNot: "!",
}

// String returns the token kind's display name.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

// lexer scans policy source into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
	toks []Token
	fail error
}

// Lex tokenizes src. Comments run from '%' or '//' to end of line (the
// paper's figures use '%').
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	l.run()
	if l.fail != nil {
		return nil, l.fail
	}
	return l.toks, nil
}

func (l *lexer) errorf(format string, args ...any) {
	if l.fail == nil {
		l.fail = fmt.Errorf("policy: line %d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
	}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) emit(kind TokenKind, text string, line, col int) {
	l.toks = append(l.toks, Token{Kind: kind, Text: text, Line: line, Col: col})
}

func (l *lexer) run() {
	for l.fail == nil && l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '%':
			l.skipLine()
		case c == '/' && l.peekAt(1) == '/':
			l.skipLine()
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		case unicode.IsDigit(rune(c)):
			l.lexNumber()
		case c == '"':
			l.lexString()
		default:
			l.lexOperator()
		}
	}
	l.emit(TokEOF, "", l.line, l.col)
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.peek() != '\n' {
		l.advance()
	}
}

// lexIdent scans an identifier; dotted paths (insert.object.dirty) and
// hyphenated names (us-west, change_policy) are single tokens.
func (l *lexer) lexIdent() {
	line, col := l.line, l.col
	start := l.pos
	for l.pos < len(l.src) {
		c := l.peek()
		if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' || c == '.' {
			l.advance()
			continue
		}
		// Hyphen continues an identifier only when followed by a letter or
		// digit (region names like us-west), so "a-1" lexes as one ident but
		// "a - 1" never arises (no arithmetic in this language).
		if c == '-' && (unicode.IsLetter(rune(l.peekAt(1))) || unicode.IsDigit(rune(l.peekAt(1)))) {
			l.advance()
			continue
		}
		break
	}
	l.emit(TokIdent, l.src[start:l.pos], line, col)
}

// lexNumber scans a number and any unit suffix: durations (ms, s, m, h),
// sizes (B, KB/K, MB/M, GB/G, TB/T), rates (KB/s etc.), percents.
func (l *lexer) lexNumber() {
	line, col := l.line, l.col
	start := l.pos
	for l.pos < len(l.src) && (unicode.IsDigit(rune(l.peek())) || l.peek() == '.') {
		l.advance()
	}
	numEnd := l.pos
	// Scan a potential unit suffix of letters.
	for l.pos < len(l.src) && unicode.IsLetter(rune(l.peek())) {
		l.advance()
	}
	unit := l.src[numEnd:l.pos]
	num := l.src[start:numEnd]
	switch strings.ToLower(unit) {
	case "":
		if l.peek() == '%' {
			l.advance()
			l.emit(TokPercent, num, line, col)
			return
		}
		l.emit(TokNumber, num, line, col)
	case "ms", "s", "sec", "second", "seconds", "min", "minute", "minutes",
		"h", "hour", "hours", "us", "ns":
		l.emit(TokDuration, num+strings.ToLower(unit), line, col)
	case "m":
		// Case-sensitive disambiguation: lowercase "m" is minutes,
		// uppercase "M" is megabytes.
		if unit == "M" {
			if l.peek() == '/' && (l.peekAt(1) == 's' || l.peekAt(1) == 'S') {
				l.advance()
				l.advance()
				l.emit(TokRate, num+"M", line, col)
				return
			}
			l.emit(TokSize, num+"M", line, col)
			return
		}
		l.emit(TokDuration, num+"m", line, col)
	case "b", "kb", "k", "mb", "gb", "g", "tb", "t":
		if l.peek() == '/' && (l.peekAt(1) == 's' || l.peekAt(1) == 'S') {
			l.advance()
			l.advance()
			l.emit(TokRate, num+strings.ToUpper(unit), line, col)
			return
		}
		l.emit(TokSize, num+strings.ToUpper(unit), line, col)
	default:
		l.errorf("unknown unit %q on number %q", unit, num)
	}
}

func (l *lexer) lexString() {
	line, col := l.line, l.col
	l.advance() // opening quote
	start := l.pos
	for l.pos < len(l.src) && l.peek() != '"' {
		if l.peek() == '\n' {
			l.errorf("unterminated string")
			return
		}
		l.advance()
	}
	if l.pos >= len(l.src) {
		l.errorf("unterminated string")
		return
	}
	text := l.src[start:l.pos]
	l.advance() // closing quote
	l.emit(TokString, text, line, col)
}

func (l *lexer) lexOperator() {
	line, col := l.line, l.col
	c := l.advance()
	two := func(next byte, kind TokenKind, text string) bool {
		if l.peek() == next {
			l.advance()
			l.emit(kind, text, line, col)
			return true
		}
		return false
	}
	switch c {
	case '{':
		l.emit(TokLBrace, "{", line, col)
	case '}':
		l.emit(TokRBrace, "}", line, col)
	case '(':
		l.emit(TokLParen, "(", line, col)
	case ')':
		l.emit(TokRParen, ")", line, col)
	case ':':
		l.emit(TokColon, ":", line, col)
	case ';':
		l.emit(TokSemi, ";", line, col)
	case ',':
		l.emit(TokComma, ",", line, col)
	case '=':
		if !two('=', TokEq, "==") {
			l.emit(TokAssign, "=", line, col)
		}
	case '!':
		if !two('=', TokNeq, "!=") {
			l.emit(TokNot, "!", line, col)
		}
	case '<':
		if !two('=', TokLe, "<=") {
			l.emit(TokLt, "<", line, col)
		}
	case '>':
		if !two('=', TokGe, ">=") {
			l.emit(TokGt, ">", line, col)
		}
	case '&':
		if !two('&', TokAnd, "&&") {
			l.errorf("expected && after &")
		}
	case '|':
		if !two('|', TokOr, "||") {
			l.errorf("expected || after |")
		}
	default:
		l.errorf("unexpected character %q", c)
	}
}

package policy

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEvalLiteralsAndIdents(t *testing.T) {
	env := NewMapEnv()
	env.Set("x", NumberVal(5))
	v, err := Eval(&IdentExpr{Path: "x"}, env)
	if err != nil || v.Num != 5 {
		t.Fatalf("Eval ident = %v, %v", v, err)
	}
	// Unbound identifiers evaluate to themselves (tier names).
	v, err = Eval(&IdentExpr{Path: "tier2"}, env)
	if err != nil || v.Kind != ValIdent || v.Str != "tier2" {
		t.Fatalf("unbound ident = %v, %v", v, err)
	}
}

func evalSrcExpr(t *testing.T, src string, env Env) Value {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	p := &parser{toks: toks}
	expr, err := p.parseExpr()
	if err != nil {
		t.Fatal(err)
	}
	v, err := Eval(expr, env)
	if err != nil {
		t.Fatalf("Eval(%s): %v", src, err)
	}
	return v
}

func TestEvalComparisons(t *testing.T) {
	env := NewMapEnv()
	env.Set("threshold.latency", DurationVal(900*time.Millisecond))
	env.Set("threshold.period", DurationVal(31*time.Second))
	env.Set("object.dirty", BoolVal(true))
	env.Set("object.location", IdentVal("tier1"))
	cases := map[string]bool{
		"threshold.latency > 800ms":                            true,
		"threshold.latency <= 800ms":                           false,
		"threshold.latency > 800ms && threshold.period > 30s":  true,
		"threshold.latency < 800ms || threshold.period >= 31s": true,
		"object.location == tier1 && object.dirty == true":     true,
		"object.location == tier2":                             false,
		"object.location != tier2":                             true,
		"!(object.location == tier2)":                          true,
		"threshold.latency >= 900ms":                           true,
		"threshold.latency < 1s":                               true,
	}
	for src, want := range cases {
		v := evalSrcExpr(t, src, env)
		if v.Kind != ValBool || v.Bool != want {
			t.Errorf("Eval(%s) = %v, want %v", src, v, want)
		}
	}
}

func TestEvalShortCircuit(t *testing.T) {
	env := NewMapEnv()
	env.Set("a", BoolVal(false))
	// Right side would be a type error if evaluated: 5 && ... — but &&
	// short-circuits on false left.
	toks, _ := Lex("a && b")
	p := &parser{toks: toks}
	expr, _ := p.parseExpr()
	// b is unbound -> IdentVal, which is not boolean; short circuit avoids it.
	v, err := Eval(expr, env)
	if err != nil || v.Bool {
		t.Fatalf("short-circuit and = %v, %v", v, err)
	}
	env.Set("a", BoolVal(true))
	toks, _ = Lex("a || b")
	p = &parser{toks: toks}
	expr, _ = p.parseExpr()
	v, err = Eval(expr, env)
	if err != nil || !v.Bool {
		t.Fatalf("short-circuit or = %v, %v", v, err)
	}
}

func TestEvalTypeErrors(t *testing.T) {
	env := NewMapEnv()
	env.Set("d", DurationVal(time.Second))
	env.Set("s", SizeVal(100))
	env.Set("b", BoolVal(true))
	for _, src := range []string{"d > s", "b > b", "!d", "d && b", "d || b"} {
		toks, err := Lex(src)
		if err != nil {
			t.Fatal(err)
		}
		p := &parser{toks: toks}
		expr, err := p.parseExpr()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Eval(expr, env); err == nil {
			t.Errorf("Eval(%s) should be a type error", src)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !IdentVal("x").Equal(StringVal("x")) || !StringVal("x").Equal(IdentVal("x")) {
		t.Fatal("ident/string equality failed")
	}
	if IdentVal("x").Equal(NumberVal(1)) {
		t.Fatal("cross-kind equality should be false")
	}
	if !DurationVal(time.Second).Equal(DurationVal(time.Second)) {
		t.Fatal("duration equality failed")
	}
	if !SizeVal(5).Equal(SizeVal(5)) || SizeVal(5).Equal(SizeVal(6)) {
		t.Fatal("size equality failed")
	}
	if !BoolVal(true).Equal(BoolVal(true)) || BoolVal(true).Equal(BoolVal(false)) {
		t.Fatal("bool equality failed")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		`"hi"`:   StringVal("hi"),
		"5":      NumberVal(5),
		"true":   BoolVal(true),
		"30s":    DurationVal(30 * time.Second),
		"5G":     SizeVal(5 << 30),
		"50%":    PercentVal(50),
		"x":      IdentVal("x"),
		"40KB/s": RateVal(40 << 10),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%v) = %q, want %q", v.Kind, got, want)
		}
	}
}

func TestCompileClassifiesKinds(t *testing.T) {
	spec := mustParse(t, `
Tiera K(time t) {
	tier1: {name: memory, size: 1G};
	event(insert.into) : response { store(what: insert.object, to: tier1); }
	event(insert.into == tier1) : response { copy(what: insert.object, to: tier2); }
	event(get.from) : response { forward(what: get.key, to: remote); }
	event(time = t) : response { copy(what: object.dirty == true, to: tier2); }
	event(tier2.filled == 50%) : response { copy(what: object.location == tier2, to: tier3); }
	event(object.lastAccessedTime > 120h) : response { move(what: object.location == tier1, to: tier2); }
	event(threshold.type == put) : response { change_policy(what: consistency, to: E); }
}`)
	prog, err := Compile(spec, map[string]Value{"t": DurationVal(5 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []EventKind{KindInsert, KindInsert, KindGet, KindTimer, KindFilled, KindObjectMonitor, KindThreshold}
	if len(prog.Events) != len(wantKinds) {
		t.Fatalf("events = %d", len(prog.Events))
	}
	for i, k := range wantKinds {
		if prog.Events[i].Kind != k {
			t.Errorf("event %d kind = %v, want %v", i, prog.Events[i].Kind, k)
		}
	}
	if prog.Events[3].Period != 5*time.Second {
		t.Errorf("timer period = %v", prog.Events[3].Period)
	}
	if prog.Events[4].Tier != "tier2" || prog.Events[4].FillFrac != 0.5 {
		t.Errorf("filled = %q %v", prog.Events[4].Tier, prog.Events[4].FillFrac)
	}
	if prog.Events[6].Monitor != "put" {
		t.Errorf("monitor = %q", prog.Events[6].Monitor)
	}
	if got := len(prog.ByKind(KindInsert)); got != 2 {
		t.Errorf("ByKind(insert) = %d", got)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		`Tiera X { event(time = tier1) : response {} }`,            // non-duration period
		`Tiera X { event(tier1.filled == 5G) : response {} }`,      // non-percent fill
		`Tiera X { event(tier1.filled == 200%) : response {} }`,    // out of range
		`Tiera X { event(threshold.latency > 5ms) : response {} }`, // threshold without type==
		`Tiera X { event(unknown.thing) : response {} }`,           // unclassifiable
		`Tiera X { event(5 == 5) : response {} }`,                  // no attribute at all
	}
	for _, src := range bad {
		spec, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := Compile(spec, nil); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

// recordExec records actions and assignments for engine tests.
type recordExec struct {
	actions []*ActionCall
	assigns map[string]Value
	failOn  string
}

func newRecordExec() *recordExec { return &recordExec{assigns: map[string]Value{}} }

func (r *recordExec) Do(call *ActionCall) error {
	if call.Name == r.failOn {
		return fmt.Errorf("forced failure on %s", call.Name)
	}
	r.actions = append(r.actions, call)
	return nil
}

func (r *recordExec) Assign(path string, v Value) error {
	r.assigns[path] = v
	return nil
}

func (r *recordExec) names() []string {
	var out []string
	for _, a := range r.actions {
		out = append(out, a.Name)
	}
	return out
}

func TestFireInsertEvent(t *testing.T) {
	spec := mustParse(t, `
Tiera X {
	event(insert.into) : response {
		insert.object.dirty = true;
		store(what: insert.object, to: tier1);
	}
}`)
	prog, err := Compile(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	exec := newRecordExec()
	env := NewMapEnv()
	env.Set("insert.key", StringVal("k"))
	fired, err := prog.Events[0].Fire(env, exec)
	if err != nil || !fired {
		t.Fatalf("Fire = %v, %v", fired, err)
	}
	if v, ok := exec.assigns["insert.object.dirty"]; !ok || !v.Bool {
		t.Fatalf("assign missing: %+v", exec.assigns)
	}
	if len(exec.actions) != 1 || exec.actions[0].Name != "store" {
		t.Fatalf("actions = %v", exec.names())
	}
	to, err := exec.actions[0].StringArg("to")
	if err != nil || to != "tier1" {
		t.Fatalf("to = %q, %v", to, err)
	}
}

func TestFireGuardedInsert(t *testing.T) {
	spec := mustParse(t, `
Tiera X {
	event(insert.into == tier1) : response {
		copy(what: insert.object, to: tier2);
	}
}`)
	prog, _ := Compile(spec, nil)
	exec := newRecordExec()
	env := NewMapEnv()
	env.Set("insert.into", IdentVal("tier3"))
	fired, err := prog.Events[0].Fire(env, exec)
	if err != nil || fired {
		t.Fatalf("guard should block: fired=%v err=%v", fired, err)
	}
	env.Set("insert.into", IdentVal("tier1"))
	fired, err = prog.Events[0].Fire(env, exec)
	if err != nil || !fired {
		t.Fatalf("guard should pass: fired=%v err=%v", fired, err)
	}
	if len(exec.actions) != 1 {
		t.Fatalf("actions = %v", exec.names())
	}
}

func TestFireIfElse(t *testing.T) {
	spec := mustParse(t, `
Wiera X {
	event(insert.into) : response {
		if (local_instance.isPrimary == true) {
			store(what: insert.object, to: local_instance);
			copy(what: insert.object, to: all_regions);
		} else {
			forward(what: insert.object, to: primary_instance);
		}
	}
}`)
	prog, _ := Compile(spec, nil)
	// Primary path.
	exec := newRecordExec()
	env := NewMapEnv()
	env.Set("local_instance.isPrimary", BoolVal(true))
	if _, err := prog.Events[0].Fire(env, exec); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(exec.names(), ","); got != "store,copy" {
		t.Fatalf("primary actions = %s", got)
	}
	// Non-primary path.
	exec = newRecordExec()
	env.Set("local_instance.isPrimary", BoolVal(false))
	if _, err := prog.Events[0].Fire(env, exec); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(exec.names(), ","); got != "forward" {
		t.Fatalf("backup actions = %s", got)
	}
}

func TestPredicateSelector(t *testing.T) {
	spec := mustParse(t, `
Tiera X(time t) {
	event(time = t) : response {
		copy(what: object.location == tier1 && object.dirty == true, to: tier2);
	}
}`)
	prog, err := Compile(spec, map[string]Value{"t": DurationVal(time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	exec := newRecordExec()
	if _, err := prog.Events[0].Fire(NewMapEnv(), exec); err != nil {
		t.Fatal(err)
	}
	pred, ok := exec.actions[0].Preds["what"]
	if !ok {
		t.Fatal("what should be a predicate")
	}
	obj := NewMapEnv()
	obj.Set("object.location", IdentVal("tier1"))
	obj.Set("object.dirty", BoolVal(true))
	if match, err := pred(obj); err != nil || !match {
		t.Fatalf("pred = %v, %v", match, err)
	}
	obj.Set("object.dirty", BoolVal(false))
	if match, _ := pred(obj); match {
		t.Fatal("clean object should not match")
	}
}

func TestThresholdEventBody(t *testing.T) {
	spec, err := Builtin("DynamicConsistency")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := prog.ByKind(KindThreshold)[0]
	if ev.Monitor != "put" {
		t.Fatalf("monitor = %q", ev.Monitor)
	}
	// High latency for a sustained period -> change to eventual.
	exec := newRecordExec()
	env := NewMapEnv()
	env.Set("threshold.type", IdentVal("put"))
	env.Set("threshold.latency", DurationVal(900*time.Millisecond))
	env.Set("threshold.period", DurationVal(31*time.Second))
	fired, err := ev.Fire(env, exec)
	if err != nil || !fired {
		t.Fatalf("fire = %v, %v", fired, err)
	}
	if len(exec.actions) != 1 || exec.actions[0].Name != "change_policy" {
		t.Fatalf("actions = %v", exec.names())
	}
	to, _ := exec.actions[0].StringArg("to")
	if to != "EventualConsistency" {
		t.Fatalf("to = %q", to)
	}
	// Low latency sustained -> change back.
	exec = newRecordExec()
	env.Set("threshold.latency", DurationVal(100*time.Millisecond))
	if _, err := ev.Fire(env, exec); err != nil {
		t.Fatal(err)
	}
	to, _ = exec.actions[0].StringArg("to")
	if to != "MultiPrimariesConsistency" {
		t.Fatalf("to = %q", to)
	}
	// Wrong monitor type: guard blocks.
	exec = newRecordExec()
	env.Set("threshold.type", IdentVal("get"))
	fired, err = ev.Fire(env, exec)
	if err != nil || fired {
		t.Fatalf("wrong monitor fired = %v, %v", fired, err)
	}
}

func TestExecutorErrorPropagates(t *testing.T) {
	spec := mustParse(t, `
Tiera X {
	event(insert.into) : response {
		store(what: insert.object, to: tier1);
		copy(what: insert.object, to: tier2);
	}
}`)
	prog, _ := Compile(spec, nil)
	exec := newRecordExec()
	exec.failOn = "store"
	fired, err := prog.Events[0].Fire(NewMapEnv(), exec)
	if !fired || err == nil {
		t.Fatalf("fired=%v err=%v", fired, err)
	}
	if len(exec.actions) != 0 {
		t.Fatal("copy should not run after store failed")
	}
}

func TestActionCallHelpers(t *testing.T) {
	call := &ActionCall{Name: "x", Args: map[string]Value{"to": IdentVal("tier1"), "n": NumberVal(5)}}
	if _, err := call.StringArg("missing"); err == nil {
		t.Fatal("missing arg should error")
	}
	if _, err := call.StringArg("n"); err == nil {
		t.Fatal("numeric arg as string should error")
	}
	if v, ok := call.Arg("n"); !ok || v.Num != 5 {
		t.Fatal("Arg lookup failed")
	}
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{KindInsert, KindGet, KindTimer, KindFilled, KindObjectMonitor, KindThreshold, EventKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("empty string for kind %d", int(k))
		}
	}
}

// Property: any expression the parser accepts, the printer renders back to
// something the parser accepts with identical evaluation on a fixed env.
func TestExprPrintEvalProperty(t *testing.T) {
	env := NewMapEnv()
	env.Set("a", NumberVal(1))
	env.Set("b", NumberVal(2))
	env.Set("p", BoolVal(true))
	env.Set("q", BoolVal(false))
	atoms := []string{"a", "b", "p", "q", "1", "2", "true", "false"}
	ops := []string{"==", "!=", "<", ">", "<=", ">=", "&&", "||"}
	f := func(seed []uint8) bool {
		if len(seed) == 0 {
			return true
		}
		// Build a random expression source from the seed.
		src := atoms[int(seed[0])%len(atoms)]
		for i := 1; i+1 < len(seed) && i < 9; i += 2 {
			src = fmt.Sprintf("(%s %s %s)", src, ops[int(seed[i])%len(ops)], atoms[int(seed[i+1])%len(atoms)])
		}
		toks, err := Lex(src)
		if err != nil {
			return true // lexically invalid seeds are out of scope
		}
		p := &parser{toks: toks}
		expr, err := p.parseExpr()
		if err != nil {
			return true
		}
		v1, err1 := Eval(expr, env)
		// Round-trip through the printer.
		toks2, err := Lex(expr.String())
		if err != nil {
			return false
		}
		p2 := &parser{toks: toks2}
		expr2, err := p2.parseExpr()
		if err != nil {
			return false
		}
		v2, err2 := Eval(expr2, env)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 == nil && !v1.Equal(v2) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

package policy

import (
	"fmt"
	"strings"
)

// Print renders a Spec back to policy source. Parse(Print(spec)) yields an
// equivalent Spec (the property tests rely on this fixpoint).
func Print(s *Spec) string {
	var b strings.Builder
	kw := "Tiera"
	if s.IsGlobal {
		kw = "Wiera"
	}
	fmt.Fprintf(&b, "%s %s", kw, s.Name)
	if len(s.Params) > 0 {
		fmt.Fprintf(&b, "(%s)", strings.Join(s.Params, ", "))
	}
	b.WriteString(" {\n")
	for _, tier := range s.Tiers {
		fmt.Fprintf(&b, "\t%s: %s;\n", tier.Label, printAttrs(tier.Attrs, nil))
	}
	for _, r := range s.Regions {
		fmt.Fprintf(&b, "\t%s = %s;\n", r.Label, printAttrs(r.Attrs, r.Tiers))
	}
	for _, e := range s.Events {
		fmt.Fprintf(&b, "\tevent(%s) : response {\n", e.Expr.String())
		for _, st := range e.Body {
			b.WriteString(st.indentString(2))
		}
		b.WriteString("\t}\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func printAttrs(attrs []Attr, tiers []TierDecl) string {
	parts := make([]string, 0, len(attrs)+len(tiers))
	for _, a := range attrs {
		parts = append(parts, fmt.Sprintf("%s: %s", a.Name, a.Val))
	}
	for _, t := range tiers {
		parts = append(parts, fmt.Sprintf("%s = %s", t.Label, printAttrs(t.Attrs, nil)))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func indent(depth int) string { return strings.Repeat("\t", depth) }

// indentString renders the action at the given indent depth.
func (s *ActionStmt) indentString(depth int) string {
	args := make([]string, len(s.Args))
	for i, a := range s.Args {
		args[i] = fmt.Sprintf("%s: %s", a.Name, a.Expr.String())
	}
	return fmt.Sprintf("%s%s(%s);\n", indent(depth), s.Name, strings.Join(args, ", "))
}

// indentString renders the assignment at the given indent depth.
func (s *AssignStmt) indentString(depth int) string {
	return fmt.Sprintf("%s%s = %s;\n", indent(depth), s.Path, s.Expr.String())
}

// indentString renders the conditional at the given indent depth.
func (s *IfStmt) indentString(depth int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%sif (%s) {\n", indent(depth), s.Cond.String())
	for _, st := range s.Then {
		b.WriteString(st.indentString(depth + 1))
	}
	b.WriteString(indent(depth) + "}")
	if len(s.Else) > 0 {
		if elseIf, ok := s.Else[0].(*IfStmt); ok && len(s.Else) == 1 {
			b.WriteString(" else ")
			nested := elseIf.indentString(depth)
			b.WriteString(strings.TrimPrefix(nested, indent(depth)))
			return b.String()
		}
		b.WriteString(" else {\n")
		for _, st := range s.Else {
			b.WriteString(st.indentString(depth + 1))
		}
		b.WriteString(indent(depth) + "}")
	}
	b.WriteString("\n")
	return b.String()
}

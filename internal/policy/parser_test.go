package policy

import (
	"strings"
	"testing"
	"time"
)

func mustParse(t *testing.T, src string) *Spec {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\nsource:\n%s", err, src)
	}
	return s
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex(`tier1: {name: memory, size: 5G}; event(insert.into == tier1)`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{
		TokIdent, TokColon, TokLBrace, TokIdent, TokColon, TokIdent,
		TokComma, TokIdent, TokColon, TokSize, TokRBrace, TokSemi,
		TokIdent, TokLParen, TokIdent, TokEq, TokIdent, TokRParen, TokEOF,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v (%q), want %v", i, toks[i].Kind, toks[i].Text, k)
		}
	}
}

func TestLexUnits(t *testing.T) {
	cases := []struct {
		src  string
		kind TokenKind
	}{
		{"800ms", TokDuration},
		{"30s", TokDuration},
		{"120h", TokDuration},
		{"7.5m", TokDuration},
		{"600seconds", TokDuration},
		{"5G", TokSize},
		{"512MB", TokSize},
		{"40KB", TokSize}, // plain size without /s
		{"50%", TokPercent},
		{"42", TokNumber},
		{"3.5", TokNumber},
	}
	for _, c := range cases {
		toks, err := Lex(c.src)
		if err != nil {
			t.Fatalf("Lex(%q): %v", c.src, err)
		}
		if toks[0].Kind != c.kind {
			t.Errorf("Lex(%q) = %v, want %v", c.src, toks[0].Kind, c.kind)
		}
	}
	toks, err := Lex("40KB/s")
	if err != nil || toks[0].Kind != TokRate {
		t.Fatalf("40KB/s = %v, %v", toks[0].Kind, err)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("% a paper comment\n// a go comment\nx")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[0].Text != "x" {
		t.Fatalf("toks = %v", toks)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "\"multi\nline\"", "5zz", "a & b", "a | b", "@"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestLexHyphenIdent(t *testing.T) {
	toks, err := Lex("us-west ebs-ssd s3-ia")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "us-west" || toks[1].Text != "ebs-ssd" || toks[2].Text != "s3-ia" {
		t.Fatalf("toks = %v", toks)
	}
}

func TestParseTieraSpec(t *testing.T) {
	s := mustParse(t, `
Tiera LowLatencyInstance(time t) {
	tier1: {name: memory, size: 5G};
	tier2: {name: ebs-ssd, size: 5G};
	event(insert.into) : response {
		insert.object.dirty = true;
		store(what: insert.object, to: tier1);
	}
	event(time = t) : response {
		copy(what: object.location == tier1 && object.dirty == true, to: tier2);
	}
}`)
	if s.IsGlobal {
		t.Fatal("Tiera spec marked global")
	}
	if s.Name != "LowLatencyInstance" {
		t.Fatalf("Name = %q", s.Name)
	}
	if len(s.Params) != 1 || s.Params[0] != "time t" {
		t.Fatalf("Params = %v", s.Params)
	}
	if len(s.Tiers) != 2 || s.Tiers[0].Label != "tier1" {
		t.Fatalf("Tiers = %+v", s.Tiers)
	}
	if v, ok := FindAttr(s.Tiers[0].Attrs, "size"); !ok || v.Size != 5<<30 {
		t.Fatalf("tier1 size = %+v", v)
	}
	if len(s.Events) != 2 {
		t.Fatalf("Events = %d", len(s.Events))
	}
	if len(s.Events[0].Body) != 2 {
		t.Fatalf("event0 body = %d stmts", len(s.Events[0].Body))
	}
	if _, ok := s.Events[0].Body[0].(*AssignStmt); !ok {
		t.Fatalf("first stmt = %T, want assign", s.Events[0].Body[0])
	}
	act, ok := s.Events[0].Body[1].(*ActionStmt)
	if !ok || act.Name != "store" {
		t.Fatalf("second stmt = %+v", s.Events[0].Body[1])
	}
	if _, ok := act.Get("what"); !ok {
		t.Fatal("store missing what arg")
	}
}

func TestParseWieraWithRegions(t *testing.T) {
	s := mustParse(t, `
Wiera P {
	Region1 = {name: X, region: us-west, primary: true,
		tier1 = {name: memory, size: 5G}};
	event(insert.into) : response {
		if (local_instance.isPrimary == true) {
			store(what: insert.object, to: local_instance);
		} else {
			forward(what: insert.object, to: primary_instance);
		}
	}
}`)
	if !s.IsGlobal {
		t.Fatal("Wiera spec not global")
	}
	if len(s.Regions) != 1 {
		t.Fatalf("Regions = %d", len(s.Regions))
	}
	r := s.Regions[0]
	if v, ok := FindAttr(r.Attrs, "primary"); !ok || !v.Bool {
		t.Fatal("primary attr lost")
	}
	if len(r.Tiers) != 1 || r.Tiers[0].Label != "tier1" {
		t.Fatalf("nested tiers = %+v", r.Tiers)
	}
	ifStmt, ok := s.Events[0].Body[0].(*IfStmt)
	if !ok {
		t.Fatalf("body[0] = %T", s.Events[0].Body[0])
	}
	if len(ifStmt.Then) != 1 || len(ifStmt.Else) != 1 {
		t.Fatalf("if branches = %d/%d", len(ifStmt.Then), len(ifStmt.Else))
	}
}

func TestParseElseIfChain(t *testing.T) {
	s := mustParse(t, `
Wiera D {
	event(threshold.type == put) : response {
		if (threshold.latency > 800ms && threshold.period > 30s) {
			change_policy(what: consistency, to: E);
		} else if (threshold.latency <= 800ms && threshold.period > 30s) {
			change_policy(what: consistency, to: M);
		}
	}
}`)
	ifStmt := s.Events[0].Body[0].(*IfStmt)
	if len(ifStmt.Else) != 1 {
		t.Fatalf("else = %d stmts", len(ifStmt.Else))
	}
	if _, ok := ifStmt.Else[0].(*IfStmt); !ok {
		t.Fatalf("else if = %T", ifStmt.Else[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                  // empty
		"Bogus X {}",                        // wrong keyword
		"Tiera {",                           // missing name
		"Tiera X { tier1: {size: 5G} ",      // unterminated
		"Tiera X {} extra",                  // trailing input
		"Tiera X { event(insert.into) {} }", // missing : response
		"Tiera X { event(insert.into) : respond {} }",
		"Tiera X { tier1 {name: x}; }",      // missing colon
		"Tiera X { event() : response {} }", // empty event expr
		"Tiera X { event(time = ) : response {} }",
		"Wiera X { Region1 = {tier1 = {a = {b: 1}}}; }", // too deep
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseDurationText(t *testing.T) {
	cases := map[string]time.Duration{
		"800ms":      800 * time.Millisecond,
		"30s":        30 * time.Second,
		"7.5m":       7*time.Minute + 30*time.Second,
		"120h":       120 * time.Hour,
		"600seconds": 600 * time.Second,
		"15min":      15 * time.Minute,
	}
	for src, want := range cases {
		got, err := parseDurationText(src)
		if err != nil || got != want {
			t.Errorf("parseDurationText(%q) = %v, %v; want %v", src, got, err, want)
		}
	}
	if _, err := parseDurationText("5parsec"); err == nil {
		t.Error("bad unit should fail")
	}
	if _, err := parseDurationText("xs"); err == nil {
		t.Error("bad number should fail")
	}
}

func TestParseSizeText(t *testing.T) {
	cases := map[string]int64{
		"5G":    5 << 30,
		"512MB": 512 << 20,
		"40KB":  40 << 10,
		"10T":   10 << 40,
		"100B":  100,
	}
	for src, want := range cases {
		got, err := parseSizeText(src)
		if err != nil || got != want {
			t.Errorf("parseSizeText(%q) = %v, %v; want %v", src, got, err, want)
		}
	}
	if _, err := parseSizeText("5Q"); err == nil {
		t.Error("bad unit should fail")
	}
	if _, err := parseSizeText("xG"); err == nil {
		t.Error("bad number should fail")
	}
}

func TestAllBuiltinsParse(t *testing.T) {
	for _, name := range BuiltinNames() {
		spec, err := Builtin(name)
		if err != nil {
			t.Errorf("Builtin(%s): %v", name, err)
			continue
		}
		if spec.Name != name {
			t.Errorf("Builtin(%s) parsed name %q", name, spec.Name)
		}
		// Every builtin must also compile.
		params := map[string]Value{"t": DurationVal(10 * time.Second)}
		if _, err := Compile(spec, params); err != nil {
			t.Errorf("Compile(%s): %v", name, err)
		}
	}
	if _, err := Builtin("NoSuchPolicy"); err == nil {
		t.Error("unknown builtin should fail")
	}
	if _, err := BuiltinSource("NoSuchPolicy"); err == nil {
		t.Error("unknown builtin source should fail")
	}
}

// Round-trip property: Print then Parse yields a Spec that prints
// identically (fixpoint after one round).
func TestPrintParseFixpoint(t *testing.T) {
	for _, name := range BuiltinNames() {
		spec, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		printed := Print(spec)
		reparsed, err := Parse(printed)
		if err != nil {
			t.Fatalf("%s: reparse failed: %v\nprinted:\n%s", name, err, printed)
		}
		printed2 := Print(reparsed)
		if printed != printed2 {
			t.Fatalf("%s: print not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", name, printed, printed2)
		}
	}
}

func TestPrintContainsStructure(t *testing.T) {
	spec, _ := Builtin("PersistentInstance")
	out := Print(spec)
	for _, want := range []string{"Tiera PersistentInstance", "tier2.filled", "40KB/s", "copy(", "event("} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q:\n%s", want, out)
		}
	}
}

package policy

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ValueKind classifies literal values in the policy language.
type ValueKind int

// Value kinds.
const (
	ValNone ValueKind = iota
	ValString
	ValNumber
	ValBool
	ValDuration
	ValSize    // bytes
	ValRate    // bytes per second
	ValPercent // 0..100
	ValIdent   // unresolved identifier (tier names, region names, ...)
)

// Value is a literal or identifier value in the language.
type Value struct {
	Kind ValueKind
	Str  string        // ValString, ValIdent
	Num  float64       // ValNumber, ValRate (bytes/sec), ValPercent
	Bool bool          // ValBool
	Dur  time.Duration // ValDuration
	Size int64         // ValSize
}

// Constructors for Value.
func StringVal(s string) Value          { return Value{Kind: ValString, Str: s} }
func NumberVal(f float64) Value         { return Value{Kind: ValNumber, Num: f} }
func BoolVal(b bool) Value              { return Value{Kind: ValBool, Bool: b} }
func DurationVal(d time.Duration) Value { return Value{Kind: ValDuration, Dur: d} }
func SizeVal(n int64) Value             { return Value{Kind: ValSize, Size: n} }
func RateVal(bps float64) Value         { return Value{Kind: ValRate, Num: bps} }
func PercentVal(p float64) Value        { return Value{Kind: ValPercent, Num: p} }
func IdentVal(s string) Value           { return Value{Kind: ValIdent, Str: s} }

// String renders the value in policy-source syntax.
func (v Value) String() string {
	switch v.Kind {
	case ValString:
		return strconv.Quote(v.Str)
	case ValNumber:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case ValBool:
		if v.Bool {
			return "true"
		}
		return "false"
	case ValDuration:
		return formatDuration(v.Dur)
	case ValSize:
		return formatSize(v.Size)
	case ValRate:
		return formatSize(int64(v.Num)) + "/s"
	case ValPercent:
		return strconv.FormatFloat(v.Num, 'g', -1, 64) + "%"
	case ValIdent:
		return v.Str
	default:
		return "<none>"
	}
}

// Equal reports semantic equality of two values (identifiers compare by
// name; numbers by value).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		// Identifiers can equal strings of the same text ("true"-like laxity
		// is NOT allowed; only ident<->string).
		if (v.Kind == ValIdent && o.Kind == ValString) || (v.Kind == ValString && o.Kind == ValIdent) {
			return v.Str == o.Str
		}
		return false
	}
	switch v.Kind {
	case ValString, ValIdent:
		return v.Str == o.Str
	case ValNumber, ValRate, ValPercent:
		return v.Num == o.Num
	case ValBool:
		return v.Bool == o.Bool
	case ValDuration:
		return v.Dur == o.Dur
	case ValSize:
		return v.Size == o.Size
	default:
		return true
	}
}

func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Hour && d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d >= time.Minute && d%time.Minute == 0:
		return fmt.Sprintf("%dmin", d/time.Minute)
	case d >= time.Second && d%time.Second == 0:
		return fmt.Sprintf("%ds", d/time.Second)
	default:
		return fmt.Sprintf("%dms", d/time.Millisecond)
	}
}

func formatSize(n int64) string {
	const (
		kb = 1 << 10
		mb = 1 << 20
		gb = 1 << 30
		tb = 1 << 40
	)
	switch {
	case n >= tb && n%tb == 0:
		return fmt.Sprintf("%dT", n/tb)
	case n >= gb && n%gb == 0:
		return fmt.Sprintf("%dG", n/gb)
	case n >= mb && n%mb == 0:
		return fmt.Sprintf("%dM", n/mb)
	case n >= kb && n%kb == 0:
		return fmt.Sprintf("%dKB", n/kb)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Expr is an expression AST node.
type Expr interface {
	exprNode()
	String() string
}

// LitExpr is a literal value.
type LitExpr struct{ Val Value }

// IdentExpr is a (possibly dotted) identifier reference such as
// insert.object.dirty or local_instance.isPrimary.
type IdentExpr struct{ Path string }

// BinaryExpr applies Op to Left and Right. Ops: == != < > <= >= && ||.
type BinaryExpr struct {
	Op          TokenKind
	Left, Right Expr
}

// UnaryExpr applies ! to X.
type UnaryExpr struct {
	Op TokenKind
	X  Expr
}

func (*LitExpr) exprNode()    {}
func (*IdentExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}

// String renders the expression as source.
func (e *LitExpr) String() string { return e.Val.String() }

// String renders the expression as source.
func (e *IdentExpr) String() string { return e.Path }

// String renders the expression as source.
func (e *BinaryExpr) String() string {
	return fmt.Sprintf("%s %s %s", parenthesize(e.Left, e.Op), e.Op, parenthesize(e.Right, e.Op))
}

// String renders the expression as source.
func (e *UnaryExpr) String() string { return "!" + e.X.String() }

// parenthesize wraps child in parens when it binds looser than parent op.
func parenthesize(child Expr, parentOp TokenKind) string {
	b, ok := child.(*BinaryExpr)
	if !ok {
		return child.String()
	}
	if precedence(b.Op) < precedence(parentOp) {
		return "(" + b.String() + ")"
	}
	return b.String()
}

func precedence(op TokenKind) int {
	switch op {
	case TokOr:
		return 1
	case TokAnd:
		return 2
	case TokEq, TokNeq, TokLt, TokGt, TokLe, TokGe:
		return 3
	default:
		return 4
	}
}

// Stmt is a statement inside a response block.
type Stmt interface {
	stmtNode()
	indentString(depth int) string
}

// ActionStmt invokes a response action such as store, copy, move, forward,
// queue, lock, release, change_policy, grow, delete. Args are named; the
// paper's figures use what:/to:/bandwidth:.
type ActionStmt struct {
	Name string
	Args []Arg
}

// Arg is one named action argument. The value is an expression because
// "what" selectors are predicates over object attributes.
type Arg struct {
	Name string
	Expr Expr
}

// Get returns the expression for the named argument and whether it exists.
func (a *ActionStmt) Get(name string) (Expr, bool) {
	for _, arg := range a.Args {
		if arg.Name == name {
			return arg.Expr, true
		}
	}
	return nil, false
}

// AssignStmt sets an attribute: insert.object.dirty = true.
type AssignStmt struct {
	Path string
	Expr Expr
}

// IfStmt is a conditional with an optional else branch. The paper's
// figures use if/else if/else inside responses (Fig 3(b), Fig 5).
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // may hold a single IfStmt to encode "else if"
}

func (*ActionStmt) stmtNode() {}
func (*AssignStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}

// EventDecl is one event(...) : response { ... } pair.
type EventDecl struct {
	Expr Expr   // raw event expression
	Body []Stmt // response statements
}

// TierDecl declares a storage tier: tier1: {name: memory, size: 5G}.
type TierDecl struct {
	Label string // tier1, tier2, ...
	Attrs []Attr
}

// RegionDecl declares an instance placement: Region1 = {region: us-west,
// name: LowLatencyInstance, primary: true, tier1 = {...}}.
type RegionDecl struct {
	Label string
	Attrs []Attr
	Tiers []TierDecl // nested tier overrides
}

// Attr is one name/value attribute.
type Attr struct {
	Name string
	Val  Value
}

// FindAttr returns the value of the named attribute in attrs.
func FindAttr(attrs []Attr, name string) (Value, bool) {
	for _, a := range attrs {
		if strings.EqualFold(a.Name, name) {
			return a.Val, true
		}
	}
	return Value{}, false
}

// Spec is a full parsed policy: either a Tiera (local) or Wiera (global)
// specification.
type Spec struct {
	IsGlobal bool // wiera vs tiera
	Name     string
	Params   []string // declaration parameters, e.g. (time t)
	Tiers    []TierDecl
	Regions  []RegionDecl
	Events   []EventDecl
}

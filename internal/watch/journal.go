// Package watch is the cluster's self-observation layer: a bounded
// structured event journal that records what the system did to itself
// (ring epoch changes, autoscale grow/shrink, SLO fire/clear, hot-key
// promote/demote, repair cycles, watchdog trips), and a runtime watchdog
// that monitors goroutine count, heap size, scheduler stalls, and
// registry-backed probes (queue depth) against bounded thresholds.
//
// Both halves are deliberately dependency-light (journal: stdlib only;
// watchdog: internal/telemetry for its gauges) so every layer of the stack
// — transport, flight, autoscale, wiera, coord — can emit events without
// import cycles. The journal is nil-safe throughout: an unwired component
// pays one nil check per would-be event.
package watch

import (
	"fmt"
	"sync"
	"time"
)

// Event is one structured journal entry.
type Event struct {
	Seq   uint64            `json:"seq"`             // monotone per journal; orders events totally
	At    time.Time         `json:"at"`              // journal clock timestamp
	Type  string            `json:"type"`            // taxonomy: "ring.epoch", "autoscale.grow", "slo.fire", ...
	Scope string            `json:"scope,omitempty"` // attribution: instance id, node name, or component
	Msg   string            `json:"msg,omitempty"`   // one-line human summary
	Attrs map[string]string `json:"attrs,omitempty"` // structured detail
}

// DefaultJournalCapacity bounds the ring when NewJournal gets n <= 0.
const DefaultJournalCapacity = 1024

// Journal is a bounded ring of Events. All methods are safe for concurrent
// use and nil-safe, so components can emit unconditionally.
type Journal struct {
	now func() time.Time

	mu    sync.Mutex
	ring  []Event
	head  int // next overwrite position once full
	seq   uint64
	total int
}

// NewJournal returns a journal of at most capacity events timestamped with
// now (nil uses wall time; pass the simnet clock's Now in simulations).
func NewJournal(now func() time.Time, capacity int) *Journal {
	if now == nil {
		now = time.Now
	}
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	return &Journal{now: now, ring: make([]Event, 0, capacity)}
}

// Record appends one event, evicting the oldest when full. attrs may be
// nil; the map is retained (callers must not mutate it afterwards).
func (j *Journal) Record(typ, scope, msg string, attrs map[string]string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.seq++
	ev := Event{Seq: j.seq, At: j.now(), Type: typ, Scope: scope, Msg: msg, Attrs: attrs}
	if len(j.ring) < cap(j.ring) {
		j.ring = append(j.ring, ev)
	} else if cap(j.ring) > 0 {
		j.ring[j.head] = ev
		j.head = (j.head + 1) % cap(j.ring)
	}
	j.total++
	j.mu.Unlock()
}

// Recordf is Record with a formatted message and no attrs — the common
// one-liner emission form.
func (j *Journal) Recordf(typ, scope, format string, args ...any) {
	if j == nil {
		return
	}
	j.Record(typ, scope, fmt.Sprintf(format, args...), nil)
}

// Events returns the retained events oldest first; max > 0 keeps only the
// newest max.
func (j *Journal) Events(max int) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	out := make([]Event, 0, len(j.ring))
	out = append(out, j.ring[j.head:]...)
	out = append(out, j.ring[:j.head]...)
	j.mu.Unlock()
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// Total returns how many events were recorded over the journal's lifetime
// (including evicted ones).
func (j *Journal) Total() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

package watch

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fakeClock hands the journal a deterministic, strictly increasing time.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func TestJournalOrderAndEviction(t *testing.T) {
	clk := &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	j := NewJournal(clk.now, 4)
	for i := 0; i < 10; i++ {
		j.Recordf("test.event", "scope", "event %d", i)
	}
	if j.Total() != 10 {
		t.Fatalf("Total = %d, want 10", j.Total())
	}
	evs := j.Events(0)
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want capacity 4", len(evs))
	}
	for i, e := range evs {
		if want := fmt.Sprintf("event %d", 6+i); e.Msg != want {
			t.Fatalf("event[%d] = %q, want %q (oldest-first after eviction)", i, e.Msg, want)
		}
		if i > 0 && evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("Seq not strictly increasing: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
	if got := j.Events(2); len(got) != 2 || got[1].Msg != "event 9" {
		t.Fatalf("Events(2) = %v, want the newest two", got)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record("t", "s", "m", nil) // must not panic
	j.Recordf("t", "s", "%d", 1)
	if j.Events(5) != nil || j.Total() != 0 {
		t.Fatal("nil journal must report empty")
	}
}

func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(nil, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j.Record("t", "s", "m", nil)
				j.Events(10)
			}
		}()
	}
	wg.Wait()
	if j.Total() != 1600 {
		t.Fatalf("Total = %d, want 1600", j.Total())
	}
}

// TestWatchdogTripAndClear drives a probe over and back under its
// threshold and checks the gauge, counter, and journal edges.
func TestWatchdogTripAndClear(t *testing.T) {
	reg := telemetry.NewRegistry()
	j := NewJournal(nil, 0)
	val := 0.0
	var mu sync.Mutex
	w := NewWatchdog(WatchdogConfig{
		MaxGoroutines: -1, MaxHeapBytes: ^uint64(0), MaxTickLag: -1,
		Probes: []Probe{{Name: "queue", Max: 10, Value: func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return val
		}}},
		Registry: reg,
		Journal:  j,
		Scope:    "test",
	})

	if firing := w.CheckNow(); len(firing) != 0 {
		t.Fatalf("tripped at baseline: %v", firing)
	}
	mu.Lock()
	val = 50
	mu.Unlock()
	if firing := w.CheckNow(); len(firing) != 1 || firing[0] != "queue" {
		t.Fatalf("firing = %v, want [queue]", firing)
	}
	w.CheckNow() // still over: no second trip event
	mu.Lock()
	val = 0
	mu.Unlock()
	if firing := w.CheckNow(); len(firing) != 0 {
		t.Fatalf("still firing after clear: %v", firing)
	}

	var edges []string
	for _, e := range j.Events(0) {
		if e.Type == "watch.trip" || e.Type == "watch.clear" {
			edges = append(edges, e.Type)
			if e.Scope != "test" || e.Attrs["check"] != "queue" {
				t.Fatalf("edge event misattributed: %+v", e)
			}
		}
	}
	if len(edges) != 2 || edges[0] != "watch.trip" || edges[1] != "watch.clear" {
		t.Fatalf("journal edges = %v, want [watch.trip watch.clear]", edges)
	}

	trips := 0.0
	tripped := -1.0
	for _, fam := range reg.Snapshot() {
		for _, m := range fam.Metrics {
			switch fam.Name {
			case "watch_trips_total":
				trips = m.Value
			case "watch_tripped":
				tripped = m.Value
			}
		}
	}
	if trips != 1 {
		t.Fatalf("watch_trips_total = %v, want 1 (edge-triggered)", trips)
	}
	if tripped != 0 {
		t.Fatalf("watch_tripped = %v, want 0 after clearing", tripped)
	}
}

// TestGaugeSumProbe checks the registry-backed probe sums a family's
// children across nodes.
func TestGaugeSumProbe(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Gauge("wiera_queue_depth", "", "node").With("w0").Set(3)
	reg.Gauge("wiera_queue_depth", "", "node").With("w1").Set(4)
	p := GaugeSumProbe(reg, "wiera_queue_depth", "queue-depth", 100)
	if got := p.Value(); got != 7 {
		t.Fatalf("probe value = %v, want 7", got)
	}
}

// TestWatchdogRuntimeChecks runs the built-in runtime checks with generous
// bounds (must not trip) and then with impossible bounds (must trip).
func TestWatchdogRuntimeChecks(t *testing.T) {
	calm := NewWatchdog(WatchdogConfig{})
	if firing := calm.CheckNow(); len(firing) != 0 {
		t.Fatalf("default bounds tripped in a test process: %v", firing)
	}
	strict := NewWatchdog(WatchdogConfig{MaxGoroutines: 1, MaxHeapBytes: 1})
	firing := strict.CheckNow()
	found := map[string]bool{}
	for _, f := range firing {
		found[f] = true
	}
	if !found["goroutines"] || !found["heap"] {
		t.Fatalf("firing = %v, want goroutines and heap over impossible bounds", firing)
	}
}

package watch

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Watchdog defaults. The bounds are deliberately generous: the watchdog is
// a last line of defense against runaway daemons (goroutine leaks, heap
// blowups, scheduler stalls, unbounded replication queues), not a tuning
// instrument.
const (
	DefaultWatchInterval = 5 * time.Second
	DefaultMaxGoroutines = 20000
	DefaultMaxHeapBytes  = 2 << 30 // 2 GiB
	DefaultMaxTickLag    = 2 * time.Second
)

// Probe is one pluggable check: Value is sampled every interval and trips
// while it exceeds Max. The queue-stall probe sums the wiera_queue_depth
// gauge family; see GaugeSumProbe.
type Probe struct {
	Name  string
	Max   float64
	Value func() float64
}

// GaugeSumProbe returns a probe whose value is the sum of every child of
// the named gauge family in reg — e.g. total replication queue depth
// across all nodes the process hosts.
func GaugeSumProbe(reg *telemetry.Registry, family, name string, max float64) Probe {
	return Probe{Name: name, Max: max, Value: func() float64 {
		var sum float64
		for _, fam := range reg.Snapshot() {
			if fam.Name != family || fam.Kind != telemetry.KindGauge {
				continue
			}
			for _, m := range fam.Metrics {
				sum += m.Value
			}
		}
		return sum
	}}
}

// WatchdogConfig tunes a Watchdog. Zero thresholds select the defaults; a
// negative threshold disables that check.
type WatchdogConfig struct {
	Interval time.Duration

	MaxGoroutines int           // runtime.NumGoroutine bound
	MaxHeapBytes  uint64        // runtime heap-alloc bound
	MaxTickLag    time.Duration // scheduler stall bound: how late a tick may fire

	Probes []Probe

	// Registry receives the watch_* families (nil skips export).
	Registry *telemetry.Registry
	// Journal receives watch.trip / watch.clear events (nil skips).
	Journal *Journal
	// Scope attributes journal events (defaults to "watchdog").
	Scope string
}

// Watchdog periodically samples runtime health and the configured probes,
// exports watch_* gauges, and journals threshold crossings. A nil
// *Watchdog is a valid no-op.
type Watchdog struct {
	cfg     WatchdogConfig
	journal *Journal

	goroutinesG *telemetry.Gauge
	heapG       *telemetry.Gauge
	tickLagG    *telemetry.Gauge
	probeVec    *telemetry.GaugeVec
	trippedVec  *telemetry.GaugeVec
	trips       *telemetry.CounterVec

	mu       sync.Mutex
	tripped  map[string]bool // check name -> currently over threshold
	lastTick time.Time
	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewWatchdog builds a watchdog; Start launches its loop, or drive it
// deterministically with CheckNow.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultWatchInterval
	}
	if cfg.MaxGoroutines == 0 {
		cfg.MaxGoroutines = DefaultMaxGoroutines
	}
	if cfg.MaxHeapBytes == 0 {
		cfg.MaxHeapBytes = DefaultMaxHeapBytes
	}
	if cfg.MaxTickLag == 0 {
		cfg.MaxTickLag = DefaultMaxTickLag
	}
	if cfg.Scope == "" {
		cfg.Scope = "watchdog"
	}
	w := &Watchdog{
		cfg:     cfg,
		journal: cfg.Journal,
		tripped: make(map[string]bool),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if cfg.Registry != nil {
		w.goroutinesG = cfg.Registry.Gauge("watch_goroutines",
			"Goroutines alive at the last watchdog sample.").With()
		w.heapG = cfg.Registry.Gauge("watch_heap_bytes",
			"Heap bytes allocated at the last watchdog sample.").With()
		w.tickLagG = cfg.Registry.Gauge("watch_tick_lag_seconds",
			"How late the last watchdog tick fired (scheduler stall detector).").With()
		w.probeVec = cfg.Registry.Gauge("watch_probe",
			"Last sampled value per pluggable watchdog probe.", "probe")
		w.trippedVec = cfg.Registry.Gauge("watch_tripped",
			"1 while the named watchdog check is over its threshold.", "check")
		w.trips = cfg.Registry.Counter("watch_trips_total",
			"Threshold crossings per watchdog check.", "check")
	}
	return w
}

// Start launches the sampling loop (idempotent, nil-safe). The watchdog
// runs on wall time: it watches the real process, not the simulation.
func (w *Watchdog) Start() {
	if w == nil {
		return
	}
	w.mu.Lock()
	if w.started {
		w.mu.Unlock()
		return
	}
	w.started = true
	w.lastTick = time.Now()
	w.mu.Unlock()
	go func() {
		defer close(w.done)
		t := time.NewTicker(w.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.CheckNow()
			}
		}
	}()
}

// Stop halts the loop and waits for it to exit (idempotent, nil-safe).
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.stop) })
	w.mu.Lock()
	started := w.started
	w.mu.Unlock()
	if started {
		<-w.done
	}
}

// CheckNow runs one watchdog round: sample, export, and journal any
// threshold crossings. Returns the names of checks currently tripped.
func (w *Watchdog) CheckNow() []string {
	if w == nil {
		return nil
	}
	now := time.Now()
	w.mu.Lock()
	lag := time.Duration(0)
	if !w.lastTick.IsZero() {
		if late := now.Sub(w.lastTick) - w.cfg.Interval; late > 0 {
			lag = late
		}
	}
	w.lastTick = now
	w.mu.Unlock()

	goroutines := runtime.NumGoroutine()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w.goroutinesG.Set(float64(goroutines))
	w.heapG.Set(float64(ms.HeapAlloc))
	w.tickLagG.Set(lag.Seconds())

	var firing []string
	check := func(name string, value, max float64, detail string) {
		over := max >= 0 && value > max
		if over {
			firing = append(firing, name)
		}
		w.setTripped(name, over, detail)
	}
	if w.cfg.MaxGoroutines > 0 {
		check("goroutines", float64(goroutines), float64(w.cfg.MaxGoroutines),
			fmt.Sprintf("%d goroutines (max %d)", goroutines, w.cfg.MaxGoroutines))
	}
	if w.cfg.MaxHeapBytes > 0 {
		check("heap", float64(ms.HeapAlloc), float64(w.cfg.MaxHeapBytes),
			fmt.Sprintf("%d heap bytes (max %d)", ms.HeapAlloc, w.cfg.MaxHeapBytes))
	}
	if w.cfg.MaxTickLag > 0 {
		check("tick-lag", lag.Seconds(), w.cfg.MaxTickLag.Seconds(),
			fmt.Sprintf("tick %s late (max %s)", lag, w.cfg.MaxTickLag))
	}
	for _, p := range w.cfg.Probes {
		if p.Value == nil {
			continue
		}
		v := p.Value()
		if w.probeVec != nil {
			w.probeVec.With(p.Name).Set(v)
		}
		check(p.Name, v, p.Max, fmt.Sprintf("%s=%g (max %g)", p.Name, v, p.Max))
	}
	return firing
}

// setTripped updates one check's firing state, exporting the gauge and
// journaling edge transitions (trip on rise, clear on fall).
func (w *Watchdog) setTripped(name string, over bool, detail string) {
	w.mu.Lock()
	was := w.tripped[name]
	w.tripped[name] = over
	w.mu.Unlock()
	if w.trippedVec != nil {
		g := w.trippedVec.With(name)
		if over {
			g.Set(1)
		} else {
			g.Set(0)
		}
	}
	if over && !was {
		if w.trips != nil {
			w.trips.With(name).Inc()
		}
		w.journal.Record("watch.trip", w.cfg.Scope, detail, map[string]string{"check": name})
	}
	if !over && was {
		w.journal.Record("watch.clear", w.cfg.Scope, name+" back under threshold",
			map[string]string{"check": name})
	}
}

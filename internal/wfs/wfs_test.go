package wfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
	"repro/internal/policy"
	"repro/internal/simnet"
	"repro/internal/tiera"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	return New(NewMapBackend(), WithBlockSize(64))
}

func TestCreateWriteRead(t *testing.T) {
	fs := newFS(t)
	f, err := fs.Create("/data/file1")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello, wiera file system")
	n, err := f.Write(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	n, err = f.Read(buf)
	if err != nil || n != len(msg) || !bytes.Equal(buf, msg) {
		t.Fatalf("Read = %d, %q, %v", n, buf, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissing(t *testing.T) {
	fs := newFS(t)
	if _, err := fs.Open("/nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
	if _, err := fs.Stat("/nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
	if err := fs.Remove("/nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestCrossBlockWrite(t *testing.T) {
	fs := newFS(t) // 64-byte blocks
	f, _ := fs.Create("/big")
	data := make([]byte, 300) // spans 5 blocks
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 300)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-block data mismatch")
	}
	// Partial block overwrite in the middle.
	patch := []byte("PATCH")
	if _, err := f.WriteAt(patch, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[100:105], patch) {
		t.Fatalf("patch lost: %q", got[100:105])
	}
	if got[99] != 99 || got[105] != 105 {
		t.Fatal("bytes around patch corrupted")
	}
}

func TestReadAtEOF(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.Create("/f")
	f.Write([]byte("12345"))
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if n != 5 || err != io.EOF {
		t.Fatalf("short read = %d, %v", n, err)
	}
	if _, err := f.ReadAt(buf, 100); err != io.EOF {
		t.Fatalf("past-EOF read err = %v", err)
	}
	n, err = f.ReadAt(buf[:3], 1)
	if n != 3 || err != nil {
		t.Fatalf("interior read = %d, %v", n, err)
	}
}

func TestSparseWrite(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.Create("/sparse")
	if _, err := f.WriteAt([]byte("end"), 200); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 203 {
		t.Fatalf("size = %d", f.Size())
	}
	buf := make([]byte, 203)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if buf[i] != 0 {
			t.Fatalf("hole byte %d = %d", i, buf[i])
		}
	}
	if string(buf[200:]) != "end" {
		t.Fatalf("tail = %q", buf[200:])
	}
}

func TestSeekModes(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.Create("/s")
	f.Write(make([]byte, 100))
	if pos, _ := f.Seek(10, io.SeekStart); pos != 10 {
		t.Fatalf("pos = %d", pos)
	}
	if pos, _ := f.Seek(5, io.SeekCurrent); pos != 15 {
		t.Fatalf("pos = %d", pos)
	}
	if pos, _ := f.Seek(-10, io.SeekEnd); pos != 90 {
		t.Fatalf("pos = %d", pos)
	}
	if _, err := f.Seek(-1, io.SeekStart); err == nil {
		t.Fatal("negative seek allowed")
	}
	if _, err := f.Seek(0, 99); err == nil {
		t.Fatal("bad whence allowed")
	}
}

func TestTruncate(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.Create("/t")
	f.Write(make([]byte, 300))
	if err := f.Truncate(100); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 100 {
		t.Fatalf("size = %d", f.Size())
	}
	if err := f.Truncate(-1); err == nil {
		t.Fatal("negative truncate allowed")
	}
	// Reopen and confirm the size persisted.
	g, err := fs.Open("/t")
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 100 {
		t.Fatalf("reopened size = %d", g.Size())
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.Create("/x")
	f.Write([]byte("old content"))
	f.Close()
	g, err := fs.Create("/x")
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 0 {
		t.Fatalf("size after re-create = %d", g.Size())
	}
}

func TestRemoveFreesBlocks(t *testing.T) {
	backend := NewMapBackend()
	fs := New(backend, WithBlockSize(64))
	f, _ := fs.Create("/r")
	f.Write(make([]byte, 500))
	before := backend.Len()
	if before < 8 {
		t.Fatalf("expected blocks in backend, have %d", before)
	}
	if err := fs.Remove("/r"); err != nil {
		t.Fatal(err)
	}
	if backend.Len() != 0 {
		t.Fatalf("backend still has %d objects", backend.Len())
	}
	if _, err := fs.Open("/r"); !errors.Is(err, ErrNotExist) {
		t.Fatal("file still openable")
	}
}

func TestClosedHandle(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.Create("/c")
	f.Close()
	if _, err := f.Read(make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Fatal("read on closed handle")
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatal("write on closed handle")
	}
	if _, err := f.Seek(0, io.SeekStart); !errors.Is(err, ErrClosed) {
		t.Fatal("seek on closed handle")
	}
	if err := f.Truncate(0); !errors.Is(err, ErrClosed) {
		t.Fatal("truncate on closed handle")
	}
	if err := f.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatal("sync on closed handle")
	}
	if err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Fatal("double close")
	}
}

func TestPersistenceAcrossMounts(t *testing.T) {
	backend := NewMapBackend()
	fs1 := New(backend, WithBlockSize(64))
	f, _ := fs1.Create("/persist")
	f.Write([]byte("durable data"))
	f.Sync()
	// A second mount over the same backend sees the file.
	fs2 := New(backend, WithBlockSize(64))
	g, err := fs2.Open("/persist")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 12)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "durable data" {
		t.Fatalf("read %q", buf)
	}
}

func TestList(t *testing.T) {
	fs := newFS(t)
	fs.Create("/a/1")
	fs.Create("/a/2")
	fs.Create("/b/1")
	got := fs.List("/a/")
	if len(got) != 2 || got[0] != "/a/1" {
		t.Fatalf("List = %v", got)
	}
	if n := len(fs.List("")); n != 3 {
		t.Fatalf("List all = %d", n)
	}
}

func TestInvalidPaths(t *testing.T) {
	fs := newFS(t)
	if _, err := fs.Create(""); err == nil {
		t.Fatal("empty path allowed")
	}
	if _, err := fs.Create("bad\x00path"); err == nil {
		t.Fatal("NUL path allowed")
	}
	if _, err := fs.Open(""); err == nil {
		t.Fatal("empty open allowed")
	}
}

func TestNameAndBlockSize(t *testing.T) {
	fs := New(NewMapBackend())
	if fs.BlockSize() != DefaultBlockSize {
		t.Fatalf("BlockSize = %d", fs.BlockSize())
	}
	f, _ := fs.Create("/n")
	if f.Name() != "/n" {
		t.Fatalf("Name = %q", f.Name())
	}
}

// Property: a sequence of random positioned writes then full read equals
// the same operations applied to an in-memory byte slice.
func TestWriteReadEquivalenceProperty(t *testing.T) {
	type op struct {
		Off  uint16
		Data []byte
	}
	f := func(ops []op) bool {
		fs := New(NewMapBackend(), WithBlockSize(32))
		fh, err := fs.Create("/prop")
		if err != nil {
			return false
		}
		model := []byte{}
		for _, o := range ops {
			off := int64(o.Off % 2048)
			if len(o.Data) > 256 {
				o.Data = o.Data[:256]
			}
			if _, err := fh.WriteAt(o.Data, off); err != nil {
				return false
			}
			end := off + int64(len(o.Data))
			if int64(len(model)) < end {
				model = append(model, make([]byte, end-int64(len(model)))...)
			}
			copy(model[off:end], o.Data)
		}
		if fh.Size() != int64(len(model)) {
			return false
		}
		if len(model) == 0 {
			return true
		}
		got := make([]byte, len(model))
		if _, err := fh.ReadAt(got, 0); err != nil && err != io.EOF {
			return false
		}
		return bytes.Equal(got, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTieraBackend(t *testing.T) {
	spec, err := policy.Builtin("PersistentInstance")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := tiera.New(tiera.Config{
		Name: "fs-backend", Region: simnet.USEast, Spec: spec,
		Clock: clock.NewScaled(10000),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	fs := New(TieraBackend{Inst: inst}, WithBlockSize(128))
	f, err := fs.Create("/db/table1")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("page"), 100) // 400 bytes, 4 blocks
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("tiera-backed file corrupted")
	}
	if err := fs.Remove("/db/table1"); err != nil {
		t.Fatal(err)
	}
	_ = time.Now
}

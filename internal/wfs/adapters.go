package wfs

import (
	"context"

	"repro/internal/tiera"
	"repro/internal/wiera"
)

// TieraBackend adapts a Tiera instance as a file system backend: every
// block and inode object becomes a (versioned) Tiera object. Remove maps
// to removing all versions. File operations are not traced individually;
// each storage call starts from a fresh context.
type TieraBackend struct {
	Inst *tiera.Instance
}

// Put implements Backend.
func (b TieraBackend) Put(key string, value []byte) error {
	_, err := b.Inst.Put(context.Background(), key, value)
	return err
}

// Get implements Backend.
func (b TieraBackend) Get(key string) ([]byte, error) {
	data, _, err := b.Inst.Get(context.Background(), key)
	return data, err
}

// Remove implements Backend.
func (b TieraBackend) Remove(key string) error {
	return b.Inst.Remove(context.Background(), key)
}

// NodeBackend adapts a Wiera node: file operations flow through the global
// policy (forwarding, replication), which is exactly the paper's FUSE ->
// Wiera arrangement in Sec 5.4.
type NodeBackend struct {
	Node *wiera.Node
}

// Put implements Backend.
func (b NodeBackend) Put(key string, value []byte) error {
	_, err := b.Node.Put(context.Background(), key, value, nil)
	return err
}

// Get implements Backend.
func (b NodeBackend) Get(key string) ([]byte, error) {
	data, _, err := b.Node.Get(context.Background(), key)
	return data, err
}

// Remove implements Backend.
func (b NodeBackend) Remove(key string) error {
	return b.Node.Remove(context.Background(), key)
}

// Package wfs is the repository's FUSE substitute (paper Sec 5.4): a
// POSIX-style file system whose backing store is any PUT/GET object store —
// a Tiera instance or a Wiera node. Unmodified applications written against
// open/read/write/seek/fsync (the SysBench and RUBiS substitutes here) run
// on Wiera through this layer, with every file operation translated into
// object operations exactly as the paper's FUSE module forwards requests to
// Wiera.
//
// Files are chunked into fixed-size blocks, each stored as one object
// ("path\x00blockN"); a per-file inode object records the size. There is no
// page cache: reads and writes hit the backing store directly (the paper's
// experiments set O_DIRECT to bypass caching).
package wfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Backend is the object store under the file system.
type Backend interface {
	Put(key string, value []byte) error
	Get(key string) ([]byte, error)
	Remove(key string) error
}

// DefaultBlockSize is the chunking unit (16 KiB, a database-page-friendly
// size).
const DefaultBlockSize = 16 * 1024

// File system errors.
var (
	// ErrNotExist reports a missing file.
	ErrNotExist = errors.New("wfs: file does not exist")
	// ErrExist reports a create of an existing file without truncate.
	ErrExist = errors.New("wfs: file exists")
	// ErrClosed reports operations on a closed handle.
	ErrClosed = errors.New("wfs: file handle closed")
	// ErrIsDir is reserved for future directory support.
	ErrIsDir = errors.New("wfs: is a directory")
)

// FS is a POSIX-style file system over a Backend. Safe for concurrent use;
// per-file operations serialize on a per-inode lock.
type FS struct {
	backend   Backend
	blockSize int

	mu     sync.Mutex
	inodes map[string]*inode
}

type inode struct {
	// mu guards the file size (shared for reads, exclusive for size
	// changes). Block contents are protected by per-block latches, so
	// writers to distinct blocks proceed concurrently — the page-latch
	// discipline of a real database file.
	mu      sync.RWMutex
	path    string
	size    int64
	latches sync.Map // block number (int64) -> *sync.Mutex
}

// latch returns the mutex guarding one block's read-modify-write cycle.
func (ino *inode) latch(bn int64) *sync.Mutex {
	if m, ok := ino.latches.Load(bn); ok {
		return m.(*sync.Mutex)
	}
	m, _ := ino.latches.LoadOrStore(bn, &sync.Mutex{})
	return m.(*sync.Mutex)
}

// Option configures an FS.
type Option func(*FS)

// WithBlockSize overrides the chunk size.
func WithBlockSize(n int) Option {
	return func(f *FS) { f.blockSize = n }
}

// New mounts a file system over backend. Existing files (from a previous
// mount over the same backend) are discovered lazily by inode lookups.
func New(backend Backend, opts ...Option) *FS {
	f := &FS{backend: backend, blockSize: DefaultBlockSize, inodes: make(map[string]*inode)}
	for _, o := range opts {
		o(f)
	}
	return f
}

// BlockSize returns the chunk size.
func (f *FS) BlockSize() int { return f.blockSize }

func inodeKey(path string) string { return "wfs!" + path + "\x00meta" }

func blockKey(path string, n int64) string {
	return fmt.Sprintf("wfs!%s\x00b%d", path, n)
}

// getInode returns the in-memory inode for path, loading it from the
// backend if present there, or nil.
func (f *FS) getInode(path string) (*inode, error) {
	f.mu.Lock()
	if ino, ok := f.inodes[path]; ok {
		f.mu.Unlock()
		return ino, nil
	}
	f.mu.Unlock()
	raw, err := f.backend.Get(inodeKey(path))
	if err != nil {
		return nil, nil // not found in backend either
	}
	if len(raw) < 8 {
		return nil, fmt.Errorf("wfs: corrupt inode for %s", path)
	}
	ino := &inode{path: path, size: int64(binary.LittleEndian.Uint64(raw))}
	f.mu.Lock()
	if existing, ok := f.inodes[path]; ok {
		ino = existing
	} else {
		f.inodes[path] = ino
	}
	f.mu.Unlock()
	return ino, nil
}

func (f *FS) persistInode(ino *inode) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(ino.size))
	return f.backend.Put(inodeKey(ino.path), buf[:])
}

// Create creates (or truncates) a file and returns an open handle.
func (f *FS) Create(path string) (*File, error) {
	if err := validPath(path); err != nil {
		return nil, err
	}
	ino, err := f.getInode(path)
	if err != nil {
		return nil, err
	}
	if ino == nil {
		ino = &inode{path: path}
		f.mu.Lock()
		f.inodes[path] = ino
		f.mu.Unlock()
	}
	ino.mu.Lock()
	ino.size = 0
	err = f.persistInode(ino)
	ino.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return &File{fs: f, ino: ino}, nil
}

// Open opens an existing file.
func (f *FS) Open(path string) (*File, error) {
	if err := validPath(path); err != nil {
		return nil, err
	}
	ino, err := f.getInode(path)
	if err != nil {
		return nil, err
	}
	if ino == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	return &File{fs: f, ino: ino}, nil
}

// Stat returns the file's size.
func (f *FS) Stat(path string) (int64, error) {
	ino, err := f.getInode(path)
	if err != nil {
		return 0, err
	}
	if ino == nil {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	ino.mu.Lock()
	defer ino.mu.Unlock()
	return ino.size, nil
}

// Remove deletes a file and its blocks.
func (f *FS) Remove(path string) error {
	ino, err := f.getInode(path)
	if err != nil {
		return err
	}
	if ino == nil {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	ino.mu.Lock()
	defer ino.mu.Unlock()
	blocks := (ino.size + int64(f.blockSize) - 1) / int64(f.blockSize)
	for b := int64(0); b < blocks; b++ {
		_ = f.backend.Remove(blockKey(path, b))
	}
	if err := f.backend.Remove(inodeKey(path)); err != nil {
		return err
	}
	f.mu.Lock()
	delete(f.inodes, path)
	f.mu.Unlock()
	return nil
}

// List returns known file paths with the given prefix (in-memory view,
// sorted). Files created through other mounts appear after they are opened
// here.
func (f *FS) List(prefix string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []string
	for p := range f.inodes {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

func validPath(path string) error {
	if path == "" || strings.Contains(path, "\x00") {
		return fmt.Errorf("wfs: invalid path %q", path)
	}
	return nil
}

// File is an open file handle with an independent offset.
type File struct {
	fs     *FS
	ino    *inode
	offset int64
	closed bool
}

// Name returns the file's path.
func (h *File) Name() string { return h.ino.path }

// Size returns the current file size.
func (h *File) Size() int64 {
	h.ino.mu.RLock()
	defer h.ino.mu.RUnlock()
	return h.ino.size
}

// Close releases the handle.
func (h *File) Close() error {
	if h.closed {
		return ErrClosed
	}
	h.closed = true
	return nil
}

// Seek sets the handle offset (whence as in io.Seeker).
func (h *File) Seek(offset int64, whence int) (int64, error) {
	if h.closed {
		return 0, ErrClosed
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = h.offset
	case io.SeekEnd:
		base = h.Size()
	default:
		return 0, fmt.Errorf("wfs: bad whence %d", whence)
	}
	n := base + offset
	if n < 0 {
		return 0, errors.New("wfs: negative seek")
	}
	h.offset = n
	return n, nil
}

// Read reads from the current offset (io.Reader).
func (h *File) Read(p []byte) (int, error) {
	n, err := h.ReadAt(p, h.offset)
	h.offset += int64(n)
	return n, err
}

// Write writes at the current offset (io.Writer).
func (h *File) Write(p []byte) (int, error) {
	n, err := h.WriteAt(p, h.offset)
	h.offset += int64(n)
	return n, err
}

// ReadAt implements io.ReaderAt: a positioned read that does not move the
// handle offset.
func (h *File) ReadAt(p []byte, off int64) (int, error) {
	if h.closed {
		return 0, ErrClosed
	}
	if off < 0 {
		return 0, errors.New("wfs: negative offset")
	}
	h.ino.mu.RLock()
	defer h.ino.mu.RUnlock()
	size := h.ino.size
	if off >= size {
		return 0, io.EOF
	}
	want := int64(len(p))
	if off+want > size {
		want = size - off
	}
	bs := int64(h.fs.blockSize)
	read := int64(0)
	for read < want {
		pos := off + read
		bn := pos / bs
		inBlock := pos % bs
		chunk, err := h.fs.backend.Get(blockKey(h.ino.path, bn))
		if err != nil {
			// Sparse block: zeros.
			chunk = make([]byte, bs)
		}
		if int64(len(chunk)) < bs {
			padded := make([]byte, bs)
			copy(padded, chunk)
			chunk = padded
		}
		n := copy(p[read:want], chunk[inBlock:])
		read += int64(n)
	}
	if read < int64(len(p)) {
		return int(read), io.EOF
	}
	return int(read), nil
}

// WriteAt implements io.WriterAt: a positioned write that does not move
// the handle offset. Partial-block writes read-modify-write the block.
func (h *File) WriteAt(p []byte, off int64) (int, error) {
	if h.closed {
		return 0, ErrClosed
	}
	if off < 0 {
		return 0, errors.New("wfs: negative offset")
	}
	bs := int64(h.fs.blockSize)
	written := int64(0)
	total := int64(len(p))
	for written < total {
		pos := off + written
		bn := pos / bs
		inBlock := pos % bs
		n := bs - inBlock
		if n > total-written {
			n = total - written
		}
		latch := h.ino.latch(bn)
		latch.Lock()
		var chunk []byte
		var err error
		if inBlock == 0 && n == bs {
			// Full-block write: no read needed.
			chunk = p[written : written+n]
		} else {
			existing, gerr := h.fs.backend.Get(blockKey(h.ino.path, bn))
			if gerr != nil {
				existing = nil
			}
			chunk = make([]byte, bs)
			copy(chunk, existing)
			copy(chunk[inBlock:], p[written:written+n])
		}
		err = h.fs.backend.Put(blockKey(h.ino.path, bn), chunk)
		latch.Unlock()
		if err != nil {
			return int(written), err
		}
		written += n
	}
	h.ino.mu.Lock()
	defer h.ino.mu.Unlock()
	if off+total > h.ino.size {
		h.ino.size = off + total
		if err := h.fs.persistInode(h.ino); err != nil {
			return int(written), err
		}
	}
	return int(written), nil
}

// Truncate sets the file size.
func (h *File) Truncate(size int64) error {
	if h.closed {
		return ErrClosed
	}
	if size < 0 {
		return errors.New("wfs: negative size")
	}
	h.ino.mu.Lock()
	defer h.ino.mu.Unlock()
	bs := int64(h.fs.blockSize)
	oldBlocks := (h.ino.size + bs - 1) / bs
	newBlocks := (size + bs - 1) / bs
	for b := newBlocks; b < oldBlocks; b++ {
		_ = h.fs.backend.Remove(blockKey(h.ino.path, b))
	}
	h.ino.size = size
	return h.fs.persistInode(h.ino)
}

// Sync flushes metadata (data writes are already write-through).
func (h *File) Sync() error {
	if h.closed {
		return ErrClosed
	}
	h.ino.mu.Lock()
	defer h.ino.mu.Unlock()
	return h.fs.persistInode(h.ino)
}

// MapBackend is an in-memory Backend for tests and as the trivial store.
type MapBackend struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMapBackend returns an empty map-backed store.
func NewMapBackend() *MapBackend { return &MapBackend{m: make(map[string][]byte)} }

// Put implements Backend.
func (b *MapBackend) Put(key string, value []byte) error {
	b.mu.Lock()
	b.m[key] = append([]byte(nil), value...)
	b.mu.Unlock()
	return nil
}

// Get implements Backend.
func (b *MapBackend) Get(key string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.m[key]
	if !ok {
		return nil, fmt.Errorf("wfs: map backend: no key %q", key)
	}
	return append([]byte(nil), v...), nil
}

// Remove implements Backend.
func (b *MapBackend) Remove(key string) error {
	b.mu.Lock()
	delete(b.m, key)
	b.mu.Unlock()
	return nil
}

// Len returns the number of stored objects.
func (b *MapBackend) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.m)
}

// Package ring partitions the keyspace across shard groups with a
// consistent-hash ring of virtual nodes (Dynamo/Anna style). Each shard
// contributes Vnodes points to the ring, placed by FNV-64a with a 64-bit
// avalanche finisher; a key belongs to the shard owning the first point at
// or after the key's hash (wrapping). Ordering is fully deterministic —
// equal hashes (vanishingly rare) break ties by shard index — so every
// participant that holds the same Map computes the same owner for every
// key.
//
// A Map is the unit of distribution: the coordinator assigns each Map a
// monotonically increasing Epoch and pushes it to workers and clients.
// Ownership checks compare epochs, so a stale client is told exactly which
// epoch it is missing. The expected imbalance of a vnode ring is ~1/sqrt
// (Vnodes) per shard; the default of 192 points per shard keeps the worst
// shard within 10% of the mean for realistic pool sizes. Raise Vnodes if
// you run more than ~9 shards per region.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the per-shard virtual node count used when a Map does
// not specify one. 192 keeps worst-case key imbalance under 10% for pools
// of up to 9 workers (see package comment).
const DefaultVnodes = 192

// Map is the authoritative shard layout of one Wiera instance at one
// epoch: which worker serves each shard in each region. Shard i's workers
// across all regions form one replication group — worker i in region A
// fans out to worker i in every other region, exactly as an unsharded
// instance's single node per region does. The Map is gob-encodable and
// self-contained: routing and migration need no naming conventions.
type Map struct {
	// Epoch orders maps; higher wins. Assigned by the coordinator.
	Epoch int64
	// Vnodes is the per-shard virtual node count (0 = DefaultVnodes).
	Vnodes int
	// Workers maps region name -> worker endpoint names indexed by shard.
	// Every region lists the same number of workers.
	Workers map[string][]string
}

// Shards returns the shard count (workers per region).
func (m *Map) Shards() int {
	for _, ws := range m.Workers {
		return len(ws)
	}
	return 0
}

// Summary renders the map's shape in one line — the form event journals
// and health endpoints attribute ring changes with.
func (m *Map) Summary() string {
	if m == nil {
		return "unsharded"
	}
	return fmt.Sprintf("epoch %d: %d regions x %d shards (%d vnodes/shard)",
		m.Epoch, len(m.Workers), m.Shards(), m.VnodeCount())
}

// VnodeCount returns the effective per-shard virtual node count.
func (m *Map) VnodeCount() int {
	if m == nil || m.Vnodes <= 0 {
		return DefaultVnodes
	}
	return m.Vnodes
}

// Regions returns the map's region names in sorted order.
func (m *Map) Regions() []string {
	out := make([]string, 0, len(m.Workers))
	for r := range m.Workers {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Validate checks structural invariants: at least one region, equal worker
// counts everywhere, and no empty worker names.
func (m *Map) Validate() error {
	if len(m.Workers) == 0 {
		return fmt.Errorf("ring: map has no regions")
	}
	n := -1
	for region, ws := range m.Workers {
		if n == -1 {
			n = len(ws)
		}
		if len(ws) != n {
			return fmt.Errorf("ring: region %q has %d workers, want %d", region, len(ws), n)
		}
		for i, w := range ws {
			if w == "" {
				return fmt.Errorf("ring: region %q shard %d has no worker", region, i)
			}
		}
	}
	if n == 0 {
		return fmt.Errorf("ring: map has no shards")
	}
	return nil
}

// Clone returns a deep copy (safe to mutate independently).
func (m *Map) Clone() *Map {
	if m == nil {
		return nil
	}
	out := &Map{Epoch: m.Epoch, Vnodes: m.Vnodes, Workers: make(map[string][]string, len(m.Workers))}
	for r, ws := range m.Workers {
		out.Workers[r] = append([]string(nil), ws...)
	}
	return out
}

// ShardOf returns the shard index worker serves in region, or -1 when the
// worker is not a member (it is leaving or already gone).
func (m *Map) ShardOf(region, worker string) int {
	for i, w := range m.Workers[region] {
		if w == worker {
			return i
		}
	}
	return -1
}

// point is one virtual node on the ring.
type point struct {
	hash  uint64
	shard int
}

// Table is a Map with its ring points precomputed for O(log n) lookups.
// Tables are immutable after construction and safe for concurrent use.
type Table struct {
	m      *Map
	points []point
}

// NewTable builds the lookup table for m. The point set depends only on
// (Shards, Vnodes), so two Tables over maps with the same geometry agree
// on every key's shard regardless of worker names.
func NewTable(m *Map) *Table {
	vnodes := m.Vnodes
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	shards := m.Shards()
	pts := make([]point, 0, shards*vnodes)
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, point{hash(fmt.Sprintf("shard-%d#%d", s, v)), s})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].shard < pts[j].shard
	})
	return &Table{m: m, points: pts}
}

// Map returns the table's underlying map.
func (t *Table) Map() *Map { return t.m }

// Epoch returns the table's map epoch.
func (t *Table) Epoch() int64 { return t.m.Epoch }

// Shards returns the shard count.
func (t *Table) Shards() int { return t.m.Shards() }

// Owner returns the shard index owning key.
func (t *Table) Owner(key string) int {
	if len(t.points) == 0 {
		return 0
	}
	h := hash(key)
	i := sort.Search(len(t.points), func(i int) bool { return t.points[i].hash >= h })
	if i == len(t.points) {
		i = 0
	}
	return t.points[i].shard
}

// Worker returns the worker serving key in region ("" when the region is
// not in the map).
func (t *Table) Worker(region, key string) string {
	ws := t.m.Workers[region]
	if len(ws) == 0 {
		return ""
	}
	return ws[t.Owner(key)]
}

// WorkerForShard returns the worker serving shard in region ("" when
// unknown).
func (t *Table) WorkerForShard(region string, shard int) string {
	ws := t.m.Workers[region]
	if shard < 0 || shard >= len(ws) {
		return ""
	}
	return ws[shard]
}

// hash positions a label on the ring: FNV-64a spread by a 64-bit avalanche
// finisher (FNV alone clusters nearby inputs like "shard-0#1"/"shard-0#2").
func hash(s string) uint64 {
	f := fnv.New64a()
	_, _ = f.Write([]byte(s))
	return mix64(f.Sum64())
}

// mix64 is the MurmurHash3 64-bit finisher.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

package ring

import (
	"fmt"
	"testing"
)

func mapFor(shards int) *Map {
	m := &Map{Epoch: 1, Workers: map[string][]string{"us-east": nil}}
	for i := 0; i < shards; i++ {
		m.Workers["us-east"] = append(m.Workers["us-east"], fmt.Sprintf("inst/us-east/w%d", i))
	}
	return m
}

func keyCounts(t *Table, total int) []int {
	counts := make([]int, t.Shards())
	for i := 0; i < total; i++ {
		counts[t.Owner(fmt.Sprintf("user%08d", i))]++
	}
	return counts
}

// TestBalance: every shard's key share stays within 10% of the mean at the
// default vnode count (>= 128), for realistic pool sizes.
func TestBalance(t *testing.T) {
	if DefaultVnodes < 128 {
		t.Fatalf("default vnodes %d < 128", DefaultVnodes)
	}
	const total = 20000
	for _, shards := range []int{2, 3, 4, 5, 6, 7, 8} {
		counts := keyCounts(NewTable(mapFor(shards)), total)
		mean := float64(total) / float64(shards)
		for s, c := range counts {
			dev := (float64(c) - mean) / mean
			if dev < 0 {
				dev = -dev
			}
			if dev > 0.10 {
				t.Errorf("shards=%d: shard %d holds %d keys, %.1f%% from mean %f",
					shards, s, c, dev*100, mean)
			}
		}
	}
}

// TestMinimalMovement: a single worker join or leave remaps at most 1/N of
// the keys (N = the smaller pool size; the ideal is 1/(N+1) on join).
func TestMinimalMovement(t *testing.T) {
	const total = 20000
	cases := [][2]int{{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 4}, {8, 9}, {9, 8}}
	for _, c := range cases {
		before, after := NewTable(mapFor(c[0])), NewTable(mapFor(c[1]))
		moved := 0
		for i := 0; i < total; i++ {
			key := fmt.Sprintf("user%08d", i)
			if before.Owner(key) != after.Owner(key) {
				moved++
			}
		}
		minN := c[0]
		if c[1] < minN {
			minN = c[1]
		}
		bound := total / minN
		if moved > bound {
			t.Errorf("%d->%d shards: %d/%d keys moved, bound %d (1/%d)",
				c[0], c[1], moved, total, bound, minN)
		}
		// Join must only move keys onto the new shard; leave only off the
		// removed one.
		if c[1] > c[0] {
			for i := 0; i < total; i++ {
				key := fmt.Sprintf("user%08d", i)
				if b, a := before.Owner(key), after.Owner(key); b != a && a != c[1]-1 {
					t.Fatalf("join moved key %s from shard %d to existing shard %d", key, b, a)
				}
			}
		}
	}
}

// TestDeterminism: identical maps produce identical tables, and worker
// names don't influence placement (only geometry does).
func TestDeterminism(t *testing.T) {
	a, b := NewTable(mapFor(4)), NewTable(mapFor(4))
	renamed := mapFor(4)
	renamed.Workers["us-east"][2] = "other/name#2"
	c := NewTable(renamed)
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("k-%d", i*7919)
		if a.Owner(key) != b.Owner(key) || a.Owner(key) != c.Owner(key) {
			t.Fatalf("owner of %q diverged: %d %d %d", key, a.Owner(key), b.Owner(key), c.Owner(key))
		}
	}
}

func TestMapHelpers(t *testing.T) {
	m := &Map{Epoch: 7, Workers: map[string][]string{
		"us-east": {"i/us-east/w0", "i/us-east/w1"},
		"us-west": {"i/us-west/w0", "i/us-west/w1"},
	}}
	if err := m.Validate(); err != nil {
		t.Fatalf("valid map rejected: %v", err)
	}
	if m.Shards() != 2 {
		t.Fatalf("shards = %d, want 2", m.Shards())
	}
	if got := m.ShardOf("us-west", "i/us-west/w1"); got != 1 {
		t.Fatalf("ShardOf = %d, want 1", got)
	}
	if got := m.ShardOf("us-west", "nope"); got != -1 {
		t.Fatalf("ShardOf unknown = %d, want -1", got)
	}
	cl := m.Clone()
	cl.Workers["us-east"][0] = "mutated"
	if m.Workers["us-east"][0] == "mutated" {
		t.Fatal("Clone shares worker slices")
	}
	tb := NewTable(m)
	for _, key := range []string{"a", "b", "user00000042"} {
		shard := tb.Owner(key)
		if w := tb.Worker("us-east", key); w != m.Workers["us-east"][shard] {
			t.Fatalf("Worker(us-east, %q) = %q, want shard %d's worker", key, w, shard)
		}
		if w := tb.WorkerForShard("us-west", shard); w != m.Workers["us-west"][shard] {
			t.Fatalf("WorkerForShard = %q", w)
		}
	}
	if tb.Worker("eu-west", "a") != "" {
		t.Fatal("unknown region should yield empty worker")
	}

	bad := &Map{Workers: map[string][]string{"us-east": {"a"}, "us-west": {"a", "b"}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("uneven map validated")
	}
	if err := (&Map{}).Validate(); err == nil {
		t.Fatal("empty map validated")
	}
}

package repair

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/watch"
)

// DefaultPeriod is the anti-entropy round interval when the caller does not
// choose one.
const DefaultPeriod = 5 * time.Second

// backoff bounds for hint replay to unreachable peers.
const (
	minBackoff = 1 * time.Second
	maxBackoff = 2 * time.Minute
)

// Daemon runs the background anti-entropy loop for one replica: each round
// it drops hints for departed peers, replays due hints to reachable peers,
// and runs one Merkle sync session against the next peer in round-robin
// order.
type Daemon struct {
	clk     clock.Clock
	store   Store
	hints   *HintLog
	cluster Cluster
	geo     Geometry
	period  time.Duration
	metrics *Metrics

	journal      *watch.Journal // optional event journal (repair.cycle)
	journalScope string

	mu           sync.Mutex
	next         int // round-robin cursor over cluster.Peers()
	retryAt      map[string]time.Time
	backoff      map[string]time.Duration
	stopCh       chan struct{}
	started      bool
	syncDisabled bool
}

// NewDaemon assembles a daemon; Start launches it. period <= 0 selects
// DefaultPeriod; metrics may be nil.
func NewDaemon(clk clock.Clock, store Store, hints *HintLog, cluster Cluster, geo Geometry, period time.Duration, metrics *Metrics) *Daemon {
	if period <= 0 {
		period = DefaultPeriod
	}
	return &Daemon{
		clk: clk, store: store, hints: hints, cluster: cluster,
		geo: geo.normalize(), period: period, metrics: metrics,
		retryAt: make(map[string]time.Time), backoff: make(map[string]time.Duration),
	}
}

// Period returns the round interval.
func (d *Daemon) Period() time.Duration { return d.period }

// AttachJournal makes the daemon record a repair.cycle event (attributed
// to scope, typically the replica name) for every anti-entropy round that
// actually repaired keys. Call before Start.
func (d *Daemon) AttachJournal(j *watch.Journal, scope string) {
	d.mu.Lock()
	d.journal, d.journalScope = j, scope
	d.mu.Unlock()
}

// DisableSync turns off the periodic Merkle sync leg, leaving hint replay
// (and departed-peer garbage collection) running. Callers use this when the
// placement policy decides what each replica holds, so unsolicited full
// sync would replicate keys the policy never directed at a peer; hinted
// handoff only redelivers updates the policy already addressed.
func (d *Daemon) DisableSync() {
	d.mu.Lock()
	d.syncDisabled = true
	d.mu.Unlock()
}

func (d *Daemon) syncEnabled() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.syncDisabled
}

// Start launches the background loop (idempotent).
func (d *Daemon) Start() {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.stopCh = make(chan struct{})
	stop := d.stopCh
	d.mu.Unlock()
	go d.loop(stop)
}

// Stop terminates the background loop (idempotent).
func (d *Daemon) Stop() {
	d.mu.Lock()
	if d.started {
		close(d.stopCh)
		d.started = false
	}
	d.mu.Unlock()
}

func (d *Daemon) loop(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-d.clk.After(d.period):
			d.RunOnce()
		}
	}
}

// RunOnce performs one full anti-entropy round and returns the sync
// session's stats (zero when no peer was available). Errors are absorbed:
// an unreachable peer simply waits for a later round.
func (d *Daemon) RunOnce() Stats {
	peers := d.cluster.Peers()
	d.replayHints(peers)
	if !d.syncEnabled() {
		return Stats{}
	}
	peer, ok := d.pickPeer(peers)
	if !ok {
		return Stats{}
	}
	if d.metrics != nil {
		d.metrics.Sessions.Inc()
	}
	st, err := Sync(d.store, d.cluster.Client(peer), d.geo)
	if d.metrics != nil {
		d.metrics.DigestRounds.Add(int64(st.Rounds))
		d.metrics.KeysRepaired.Add(int64(st.KeysRepaired))
		d.metrics.SyncBytes.Add(st.TotalBytes())
	}
	if st.KeysRepaired > 0 {
		d.mu.Lock()
		j, scope := d.journal, d.journalScope
		d.mu.Unlock()
		j.Record("repair.cycle", scope,
			fmt.Sprintf("repaired %d keys from %s (%d digest rounds, %d bytes)",
				st.KeysRepaired, peer, st.Rounds, st.TotalBytes()),
			map[string]string{"peer": peer, "keys": fmt.Sprintf("%d", st.KeysRepaired)})
	}
	_ = err // partitioned peers converge on a later round
	return st
}

// pickPeer advances the round-robin cursor.
func (d *Daemon) pickPeer(peers []string) (string, bool) {
	if len(peers) == 0 {
		return "", false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	peer := peers[d.next%len(peers)]
	d.next++
	return peer, true
}

// replayHints pushes queued hints to every reachable peer whose backoff has
// elapsed, and drops queues for peers no longer in the membership.
func (d *Daemon) replayHints(peers []string) {
	if d.hints == nil {
		return
	}
	member := make(map[string]bool, len(peers))
	for _, p := range peers {
		member[p] = true
	}
	now := d.clk.Now()
	for _, peer := range d.hints.PeersWithHints() {
		if !member[peer] {
			d.hints.DropPeer(peer)
			continue
		}
		d.mu.Lock()
		due := !d.retryAt[peer].After(now)
		d.mu.Unlock()
		if !due {
			continue
		}
		// Heartbeat gate: do not burn a full replay attempt (and its
		// payload transfer) on a peer that cannot even answer a ping.
		if !d.cluster.Alive(peer) {
			d.deferPeer(peer, now)
			continue
		}
		client := d.cluster.Client(peer)
		if _, err := d.hints.ReplayFor(peer, client.Push); err != nil {
			d.deferPeer(peer, now)
			continue
		}
		d.mu.Lock()
		delete(d.retryAt, peer)
		delete(d.backoff, peer)
		d.mu.Unlock()
	}
}

// deferPeer doubles peer's replay backoff.
func (d *Daemon) deferPeer(peer string, now time.Time) {
	d.mu.Lock()
	b := d.backoff[peer]
	if b <= 0 {
		b = minBackoff
	} else if b < maxBackoff {
		b *= 2
		if b > maxBackoff {
			b = maxBackoff
		}
	}
	d.backoff[peer] = b
	d.retryAt[peer] = now.Add(b)
	d.mu.Unlock()
}

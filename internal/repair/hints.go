package repair

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"sync"
)

// hintSep joins peer name and object key in a backend key. Unit separator:
// it cannot appear in endpoint names or sane object keys, and a peer name
// containing it would only shadow its own hints.
const hintSep = "\x1f"

// Backend persists hints. metastore.Store satisfies it exactly, giving
// durable hints; memBackend (NewMemBackend) keeps them in memory for nodes
// running without a metadata path.
type Backend interface {
	Put(key string, val []byte) error
	Get(key string) ([]byte, error)
	Delete(key string) error
	Keys() ([]string, error)
	Close() error
}

// memBackend is the in-memory Backend for non-durable nodes.
type memBackend struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemBackend returns an empty in-memory hint backend.
func NewMemBackend() Backend { return &memBackend{m: make(map[string][]byte)} }

func (b *memBackend) Put(key string, val []byte) error {
	b.mu.Lock()
	b.m[key] = append([]byte(nil), val...)
	b.mu.Unlock()
	return nil
}

func (b *memBackend) Get(key string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.m[key]
	if !ok {
		return nil, fmt.Errorf("repair: no hint %q", key)
	}
	return append([]byte(nil), v...), nil
}

func (b *memBackend) Delete(key string) error {
	b.mu.Lock()
	delete(b.m, key)
	b.mu.Unlock()
	return nil
}

func (b *memBackend) Keys() ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.m))
	for k := range b.m {
		out = append(out, k)
	}
	return out, nil
}

func (b *memBackend) Close() error { return nil }

// HintLog stores updates that failed to reach a peer, keyed (peer, key)
// with last-writer-wins supersession: a newer version of a key replaces an
// older queued hint, so a hot key partitioned away accumulates exactly one
// hint per peer. Safe for concurrent use.
type HintLog struct {
	mu      sync.Mutex
	be      Backend
	pending map[string]map[string]Entry // peer -> key -> queued summary
	metrics *Metrics
}

// OpenHintLog loads existing hints from be (replaying a durable backend
// after a restart) and reports the pending gauge through metrics (may be
// nil).
func OpenHintLog(be Backend, metrics *Metrics) (*HintLog, error) {
	l := &HintLog{be: be, pending: make(map[string]map[string]Entry), metrics: metrics}
	keys, err := be.Keys()
	if err != nil {
		return nil, err
	}
	for _, bk := range keys {
		peer, _, ok := strings.Cut(bk, hintSep)
		if !ok {
			continue
		}
		raw, err := be.Get(bk)
		if err != nil {
			continue
		}
		var u Update
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&u); err != nil {
			_ = be.Delete(bk) // torn record: drop rather than wedge replay
			continue
		}
		l.addPending(peer, u.Entry())
	}
	l.gauge()
	return l, nil
}

func (l *HintLog) addPending(peer string, e Entry) {
	m := l.pending[peer]
	if m == nil {
		m = make(map[string]Entry)
		l.pending[peer] = m
	}
	m[e.Key] = e
}

// gauge publishes the pending count; callers hold l.mu or have exclusive
// access.
func (l *HintLog) gauge() {
	if l.metrics == nil {
		return
	}
	n := 0
	for _, m := range l.pending {
		n += len(m)
	}
	l.metrics.HintsPending.Set(float64(n))
}

// Add queues u for peer unless an equal-or-newer hint for the same key is
// already queued. Returns whether the hint was recorded.
func (l *HintLog) Add(peer string, u Update) (bool, error) {
	e := u.Entry()
	l.mu.Lock()
	defer l.mu.Unlock()
	if old, ok := l.pending[peer][e.Key]; ok && !newer(e, old) {
		return false, nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(u); err != nil {
		return false, fmt.Errorf("repair: encode hint: %w", err)
	}
	if err := l.be.Put(peer+hintSep+e.Key, buf.Bytes()); err != nil {
		return false, err
	}
	l.addPending(peer, e)
	l.gauge()
	return true, nil
}

// Pending returns the total queued hint count.
func (l *HintLog) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, m := range l.pending {
		n += len(m)
	}
	return n
}

// PendingFor returns the queued hint count for one peer.
func (l *HintLog) PendingFor(peer string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending[peer])
}

// PeersWithHints lists peers that currently have queued hints.
func (l *HintLog) PeersWithHints() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.pending))
	for p, m := range l.pending {
		if len(m) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// take loads up to limit hints queued for peer.
func (l *HintLog) take(peer string, limit int) []Update {
	l.mu.Lock()
	keys := make([]string, 0, limit)
	for k := range l.pending[peer] {
		if len(keys) == limit {
			break
		}
		keys = append(keys, k)
	}
	l.mu.Unlock()
	out := make([]Update, 0, len(keys))
	for _, k := range keys {
		raw, err := l.be.Get(peer + hintSep + k)
		if err != nil {
			continue
		}
		var u Update
		if gob.NewDecoder(bytes.NewReader(raw)).Decode(&u) == nil {
			out = append(out, u)
		}
	}
	return out
}

// ack removes delivered hints unless a newer version was queued while the
// replay was in flight.
func (l *HintLog) ack(peer string, delivered []Update) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, u := range delivered {
		e := u.Entry()
		cur, ok := l.pending[peer][e.Key]
		if !ok || newer(cur, e) {
			continue
		}
		delete(l.pending[peer], e.Key)
		_ = l.be.Delete(peer + hintSep + e.Key)
	}
	l.gauge()
}

// ReplayFor drains peer's queue through push (typically PeerClient.Push) in
// batches, stopping on the first error. It returns how many hints were
// delivered and acknowledged.
func (l *HintLog) ReplayFor(peer string, push func([]Update) (int, error)) (int, error) {
	replayed := 0
	for {
		batch := l.take(peer, pullBatch)
		if len(batch) == 0 {
			return replayed, nil
		}
		if _, err := push(batch); err != nil {
			return replayed, err
		}
		l.ack(peer, batch)
		replayed += len(batch)
		if l.metrics != nil {
			l.metrics.HintsReplayed.Add(int64(len(batch)))
			var bytes int64
			for _, u := range batch {
				bytes += updateWireSize(u)
			}
			l.metrics.BytesReplayed.Add(bytes)
		}
	}
}

// DropPeer discards every hint queued for peer (it left the membership),
// returning how many were dropped.
func (l *HintLog) DropPeer(peer string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := l.pending[peer]
	for k := range m {
		_ = l.be.Delete(peer + hintSep + k)
	}
	delete(l.pending, peer)
	if l.metrics != nil && len(m) > 0 {
		l.metrics.HintsDropped.Add(int64(len(m)))
	}
	l.gauge()
	return len(m)
}

// Close closes the backing store.
func (l *HintLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.be.Close()
}

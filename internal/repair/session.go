package repair

import (
	"fmt"
	"sort"
)

// pullBatch bounds how many keys one Pull/Push RPC carries so a badly
// diverged pair never builds an unbounded message.
const pullBatch = 512

// Stats summarises one sync session. Byte fields use the wire-size model
// below (a deterministic per-message estimate), so "Merkle vs full
// exchange" comparisons are implementation independent; the transport
// adapters additionally count real payload bytes into telemetry.
type Stats struct {
	// Rounds counts digest exchange RPCs (the O(log n) descent).
	Rounds int
	// NodesCompared counts tree nodes whose digests were exchanged.
	NodesCompared int
	// LeavesDiverged counts leaf buckets whose key summaries were pulled.
	LeavesDiverged int
	// KeysPulled / KeysPushed count versions moved toward (resp. from)
	// the local replica; KeysRepaired is the sum that actually won LWW.
	KeysPulled   int
	KeysPushed   int
	KeysRepaired int
	// DigestBytes, EntryBytes and DataBytes estimate the session's wire
	// cost split by message kind.
	DigestBytes int64
	EntryBytes  int64
	DataBytes   int64
	// FullSyncBytes estimates what a naive full-key exchange would have
	// cost instead: both replicas shipping their complete summary lists.
	FullSyncBytes int64
}

// TotalBytes is the session's full estimated wire cost.
func (s Stats) TotalBytes() int64 { return s.DigestBytes + s.EntryBytes + s.DataBytes }

// entryWireSize models one summary on the wire: key and origin bytes plus
// version, mtime and framing.
func entryWireSize(e Entry) int64 {
	return int64(len(e.Key)) + int64(len(e.Origin)) + 18
}

// updateWireSize models one version on the wire. len(Data) is the bytes
// this replica actually ships — for an erasure-coded version that is the
// fragment bundle, not the full object, so repair byte metrics stay
// truthful under EC; the EC layout header (scheme + fragment indexes)
// is charged explicitly on top.
func updateWireSize(u Update) int64 {
	n := entryWireSize(u.Entry()) + int64(len(u.Data))
	if u.Meta.IsEC() {
		n += 8 + 4*int64(len(u.Meta.ECFrags)) // k, m + fragment index list
	}
	return n
}

// Sync runs one anti-entropy session: build the local digest tree, walk it
// against the peer's level by level, diff the divergent leaf buckets, then
// pull versions the peer holds newer and push versions held newer locally.
// LWW idempotence makes a session against a concurrently changing peer
// harmless: anything missed converges on a later round.
func Sync(local Store, peer PeerClient, geo Geometry) (Stats, error) {
	geo = geo.normalize()
	var st Stats
	entries := local.Entries()
	tree := BuildTree(geo, entries)
	for _, e := range entries {
		st.FullSyncBytes += 2 * entryWireSize(e) // both directions of a naive exchange
	}

	// Descent: compare the root, then expand only divergent nodes.
	frontier := []int{0}
	divergent := make([]int, 0, 8)
	leafStart := geo.LeafStart()
	for len(frontier) > 0 {
		remote, err := peer.Digests(geo, frontier)
		if err != nil {
			return st, err
		}
		st.Rounds++
		st.NodesCompared += len(frontier)
		st.DigestBytes += int64(len(frontier))*16 + 8 // indices out, digests back, framing
		if len(remote) != len(frontier) {
			return st, fmt.Errorf("repair: peer returned %d digests for %d nodes", len(remote), len(frontier))
		}
		next := frontier[:0:0]
		for i, idx := range frontier {
			ld, err := tree.Digest(idx)
			if err != nil {
				return st, err
			}
			if remote[i] == ld {
				continue
			}
			if idx >= leafStart {
				divergent = append(divergent, idx-leafStart)
			} else {
				next = append(next, geo.Children(idx)...)
			}
		}
		frontier = next
	}
	if len(divergent) == 0 {
		return st, nil
	}
	st.LeavesDiverged = len(divergent)

	// Diff the divergent buckets key by key.
	remoteEntries, err := peer.LeafEntries(geo, divergent)
	if err != nil {
		return st, err
	}
	st.EntryBytes += int64(len(divergent)) * 8
	remoteByKey := make(map[string]Entry, len(remoteEntries))
	for _, e := range remoteEntries {
		st.EntryBytes += entryWireSize(e)
		remoteByKey[e.Key] = e
	}
	localByKey := make(map[string]Entry)
	for _, l := range divergent {
		es, err := tree.LeafEntries([]int{l})
		if err != nil {
			return st, err
		}
		for _, e := range es {
			localByKey[e.Key] = e
		}
	}
	var pulls, pushes []string
	for key, re := range remoteByKey {
		le, ok := localByKey[key]
		if !ok || newer(re, le) {
			pulls = append(pulls, key)
		}
	}
	for key, le := range localByKey {
		re, ok := remoteByKey[key]
		if !ok || newer(le, re) {
			pushes = append(pushes, key)
		}
	}
	sort.Strings(pulls)
	sort.Strings(pushes)

	for start := 0; start < len(pulls); start += pullBatch {
		end := min(start+pullBatch, len(pulls))
		batch := pulls[start:end]
		for _, k := range batch {
			st.DataBytes += int64(len(k)) + 2
		}
		updates, err := peer.Pull(batch)
		if err != nil {
			return st, err
		}
		for _, u := range updates {
			st.DataBytes += updateWireSize(u)
			st.KeysPulled++
			if local.Apply(u) {
				st.KeysRepaired++
			}
		}
	}
	for start := 0; start < len(pushes); start += pullBatch {
		end := min(start+pullBatch, len(pushes))
		var batch []Update
		for _, k := range pushes[start:end] {
			u, ok := local.Load(k)
			if !ok {
				continue // removed since the tree was built
			}
			st.DataBytes += updateWireSize(u)
			batch = append(batch, u)
		}
		if len(batch) == 0 {
			continue
		}
		accepted, err := peer.Push(batch)
		if err != nil {
			return st, err
		}
		st.KeysPushed += len(batch)
		st.KeysRepaired += accepted
	}
	return st, nil
}

// LocalPeer adapts an in-process Store to the PeerClient interface. Tests
// and the experiment harness use it to run protocol-exact sessions without
// a transport.
type LocalPeer struct{ S Store }

// Digests implements PeerClient.
func (p LocalPeer) Digests(geo Geometry, nodes []int) ([]uint64, error) {
	return BuildTree(geo, p.S.Entries()).Digests(nodes)
}

// LeafEntries implements PeerClient.
func (p LocalPeer) LeafEntries(geo Geometry, leaves []int) ([]Entry, error) {
	return BuildTree(geo, p.S.Entries()).LeafEntries(leaves)
}

// Pull implements PeerClient.
func (p LocalPeer) Pull(keys []string) ([]Update, error) {
	out := make([]Update, 0, len(keys))
	for _, k := range keys {
		if u, ok := p.S.Load(k); ok {
			out = append(out, u)
		}
	}
	return out, nil
}

// Push implements PeerClient.
func (p LocalPeer) Push(updates []Update) (int, error) {
	accepted := 0
	for _, u := range updates {
		if p.S.Apply(u) {
			accepted++
		}
	}
	return accepted, nil
}

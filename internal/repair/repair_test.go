package repair

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/metastore"
	"repro/internal/object"
	"repro/internal/telemetry"
)

// memStore is a minimal LWW replica for engine tests.
type memStore struct {
	mu sync.Mutex
	m  map[string]Update
}

func newMemStore() *memStore { return &memStore{m: make(map[string]Update)} }

func (s *memStore) Entries() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.m))
	for _, u := range s.m {
		out = append(out, u.Entry())
	}
	return out
}

func (s *memStore) Load(key string) (Update, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.m[key]
	return u, ok
}

func (s *memStore) Apply(u Update) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.m[u.Meta.Key]; ok && !newer(u.Entry(), old.Entry()) {
		return false
	}
	s.m[u.Meta.Key] = u
	return true
}

func (s *memStore) put(key string, version int64, mtime int64, origin string, data []byte) {
	s.Apply(Update{Meta: object.Meta{
		Key: key, Version: object.Version(version), Origin: origin,
		ModifiedAt: time.Unix(0, mtime), Size: int64(len(data)),
	}, Data: data})
}

func (s *memStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// equalStores reports whether both replicas hold identical (version, mtime,
// origin) sets.
func equalStores(a, b *memStore) bool {
	ea, eb := a.Entries(), b.Entries()
	if len(ea) != len(eb) {
		return false
	}
	bk := make(map[string]Entry, len(eb))
	for _, e := range eb {
		bk[e.Key] = e
	}
	for _, e := range ea {
		o, ok := bk[e.Key]
		if !ok || o != e {
			return false
		}
	}
	return true
}

func TestGeometry(t *testing.T) {
	g := Geometry{Fanout: 4, Depth: 2}
	if got := g.Leaves(); got != 16 {
		t.Fatalf("Leaves = %d, want 16", got)
	}
	if got := g.LeafStart(); got != 5 {
		t.Fatalf("LeafStart = %d, want 5", got)
	}
	if got := g.Nodes(); got != 21 {
		t.Fatalf("Nodes = %d, want 21", got)
	}
	kids := g.Children(0)
	if len(kids) != 4 || kids[0] != 1 || kids[3] != 4 {
		t.Fatalf("Children(0) = %v", kids)
	}
	if g.Children(5) != nil {
		t.Fatal("leaf must have no children")
	}
	for _, key := range []string{"a", "b", "zzz"} {
		l := g.Leaf(key)
		if l < 0 || l >= 16 {
			t.Fatalf("Leaf(%q) = %d out of range", key, l)
		}
	}
}

func TestTreeDetectsAnyFieldChange(t *testing.T) {
	geo := Geometry{Fanout: 4, Depth: 2}
	base := []Entry{{Key: "k1", Version: 1, Mtime: 10, Origin: "a"}, {Key: "k2", Version: 3, Mtime: 20, Origin: "b"}}
	root := func(es []Entry) uint64 {
		d, err := BuildTree(geo, es).Digest(0)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	r0 := root(base)
	// Order independence within leaves.
	if r0 != root([]Entry{base[1], base[0]}) {
		t.Fatal("tree digest must be entry-order independent")
	}
	variants := [][]Entry{
		{{Key: "k1", Version: 2, Mtime: 10, Origin: "a"}, base[1]},
		{{Key: "k1", Version: 1, Mtime: 11, Origin: "a"}, base[1]},
		{{Key: "k1", Version: 1, Mtime: 10, Origin: "c"}, base[1]},
		{base[0]},
		{base[0], base[1], {Key: "k3", Version: 1, Mtime: 5, Origin: "a"}},
	}
	for i, v := range variants {
		if root(v) == r0 {
			t.Fatalf("variant %d did not change the root digest", i)
		}
	}
}

func TestTreeBoundsChecked(t *testing.T) {
	tr := BuildTree(Geometry{Fanout: 4, Depth: 2}, nil)
	if _, err := tr.Digest(21); err == nil {
		t.Fatal("out-of-range digest must error")
	}
	if _, err := tr.LeafEntries([]int{16}); err == nil {
		t.Fatal("out-of-range leaf must error")
	}
}

func TestSyncConvergesDivergedReplicas(t *testing.T) {
	a, b := newMemStore(), newMemStore()
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%04d", i)
		a.put(key, 1, 100, "a", []byte("v1"))
		b.put(key, 1, 100, "a", []byte("v1"))
	}
	// Diverge both ways: a holds newer versions of some keys, b of others,
	// and each holds keys the other lacks.
	for i := 0; i < 20; i++ {
		a.put(fmt.Sprintf("key-%04d", i), 2, 200, "a", []byte("v2a"))
		b.put(fmt.Sprintf("key-%04d", 100+i), 2, 200, "b", []byte("v2b"))
	}
	a.put("only-a", 1, 50, "a", []byte("x"))
	b.put("only-b", 1, 60, "b", []byte("y"))

	st, err := Sync(a, LocalPeer{S: b}, Geometry{Fanout: 8, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !equalStores(a, b) {
		t.Fatal("replicas did not converge after one session")
	}
	if st.KeysRepaired != 42 { // 20 pulls + 20 pushes + only-a + only-b
		t.Fatalf("KeysRepaired = %d, want 42", st.KeysRepaired)
	}
	if st.Rounds < 1 || st.LeavesDiverged == 0 {
		t.Fatalf("stats look wrong: %+v", st)
	}
	// A second session finds nothing.
	st2, err := Sync(a, LocalPeer{S: b}, Geometry{Fanout: 8, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st2.KeysRepaired != 0 || st2.Rounds != 1 {
		t.Fatalf("converged replicas resynced: %+v", st2)
	}
}

func TestSyncIdenticalReplicasSingleRound(t *testing.T) {
	a, b := newMemStore(), newMemStore()
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		a.put(key, 1, int64(i), "o", nil)
		b.put(key, 1, int64(i), "o", nil)
	}
	st, err := Sync(a, LocalPeer{S: b}, DefaultGeometry)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 1 || st.KeysPulled+st.KeysPushed != 0 {
		t.Fatalf("identical replicas should stop at the root: %+v", st)
	}
}

func TestSyncBeatsFullExchangeAt10kKeys(t *testing.T) {
	a, b := newMemStore(), newMemStore()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("object/%05d", i)
		a.put(key, 1, 1000, "seed", []byte("payload-payload-payload"))
		b.put(key, 1, 1000, "seed", []byte("payload-payload-payload"))
	}
	for i := 0; i < 100; i++ {
		a.put(fmt.Sprintf("object/%05d", i*37), 2, 2000, "a", []byte("fresh"))
	}
	st, err := Sync(a, LocalPeer{S: b}, DefaultGeometry)
	if err != nil {
		t.Fatal(err)
	}
	if !equalStores(a, b) {
		t.Fatal("not converged")
	}
	if st.TotalBytes() >= st.FullSyncBytes {
		t.Fatalf("digest sync (%d B) must beat full exchange (%d B)", st.TotalBytes(), st.FullSyncBytes)
	}
	if st.TotalBytes() > st.FullSyncBytes/4 {
		t.Fatalf("expected >=4x savings at 1%% divergence: merkle=%d full=%d", st.TotalBytes(), st.FullSyncBytes)
	}
}

func TestHintLogSupersedesAndReplays(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg, "n1", "us-east")
	l, err := OpenHintLog(NewMemBackend(), m)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(ver, mtime int64) Update {
		return Update{Meta: object.Meta{Key: "hot", Version: object.Version(ver), ModifiedAt: time.Unix(0, mtime), Origin: "a"}, Data: []byte("x")}
	}
	if ok, _ := l.Add("peer1", mk(1, 10)); !ok {
		t.Fatal("first hint rejected")
	}
	if ok, _ := l.Add("peer1", mk(2, 20)); !ok {
		t.Fatal("newer hint rejected")
	}
	if ok, _ := l.Add("peer1", mk(1, 10)); ok {
		t.Fatal("stale hint must be superseded")
	}
	if l.Pending() != 1 || l.PendingFor("peer1") != 1 {
		t.Fatalf("pending = %d (per-peer %d), want 1", l.Pending(), l.PendingFor("peer1"))
	}
	if got := m.HintsPending.Value(); got != 1 {
		t.Fatalf("repair_hints_pending = %v, want 1", got)
	}

	var delivered []Update
	n, err := l.ReplayFor("peer1", func(us []Update) (int, error) {
		delivered = append(delivered, us...)
		return len(us), nil
	})
	if err != nil || n != 1 {
		t.Fatalf("ReplayFor = %d, %v", n, err)
	}
	if len(delivered) != 1 || delivered[0].Meta.Version != 2 {
		t.Fatalf("delivered %+v, want the superseding version 2", delivered)
	}
	if l.Pending() != 0 {
		t.Fatal("replayed hints must be removed")
	}
	if got := m.HintsReplayed.Value(); got != 1 {
		t.Fatalf("repair_hints_replayed_total = %d, want 1", got)
	}
}

func TestHintLogDurableAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hints.db")
	be, err := metastore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l, err := OpenHintLog(be, nil)
	if err != nil {
		t.Fatal(err)
	}
	u := Update{Meta: object.Meta{Key: "k", Version: 3, Origin: "a", ModifiedAt: time.Unix(0, 7)}, Data: []byte("v")}
	if ok, err := l.Add("peerX", u); !ok || err != nil {
		t.Fatalf("Add = %v, %v", ok, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	be2, err := metastore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := OpenHintLog(be2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.PendingFor("peerX") != 1 {
		t.Fatal("hint lost across reopen")
	}
	got := l2.take("peerX", 10)
	if len(got) != 1 || got[0].Meta.Version != 3 || string(got[0].Data) != "v" {
		t.Fatalf("reloaded hint = %+v", got)
	}
	if dropped := l2.DropPeer("peerX"); dropped != 1 {
		t.Fatalf("DropPeer = %d, want 1", dropped)
	}
}

// testCluster wires memStores into a Cluster for daemon tests.
type testCluster struct {
	mu    sync.Mutex
	peers map[string]*memStore
	down  map[string]bool
}

func (c *testCluster) Peers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.peers))
	for p := range c.peers {
		out = append(out, p)
	}
	return out
}

func (c *testCluster) Client(peer string) PeerClient {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down[peer] {
		return downPeer{}
	}
	return LocalPeer{S: c.peers[peer]}
}

func (c *testCluster) Alive(peer string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.down[peer]
}

func (c *testCluster) setDown(peer string, down bool) {
	c.mu.Lock()
	c.down[peer] = down
	c.mu.Unlock()
}

// downPeer fails every call, standing in for a partitioned replica.
type downPeer struct{}

func (downPeer) Digests(Geometry, []int) ([]uint64, error) {
	return nil, fmt.Errorf("unreachable")
}
func (downPeer) LeafEntries(Geometry, []int) ([]Entry, error) {
	return nil, fmt.Errorf("unreachable")
}
func (downPeer) Pull([]string) ([]Update, error) { return nil, fmt.Errorf("unreachable") }
func (downPeer) Push([]Update) (int, error)      { return 0, fmt.Errorf("unreachable") }

func TestDaemonReplaysHintsWhenPeerReturns(t *testing.T) {
	clk := clock.NewSim(time.Time{})
	local, remote := newMemStore(), newMemStore()
	local.put("k", 1, 100, "local", []byte("v"))
	cl := &testCluster{peers: map[string]*memStore{"r1": remote}, down: map[string]bool{"r1": true}}
	hints, err := OpenHintLog(NewMemBackend(), nil)
	if err != nil {
		t.Fatal(err)
	}
	u, _ := local.Load("k")
	if ok, _ := hints.Add("r1", u); !ok {
		t.Fatal("hint not queued")
	}
	d := NewDaemon(clk, local, hints, cl, DefaultGeometry, time.Second, nil)

	// Peer down: the hint stays queued and the sync session fails silently.
	d.RunOnce()
	if hints.Pending() != 1 {
		t.Fatal("hint dropped while peer was down")
	}
	// Peer back, but inside the backoff window: the hint stays queued (the
	// Merkle sync leg may still deliver the data — that is fine).
	cl.setDown("r1", false)
	d.RunOnce()
	if hints.Pending() != 1 {
		t.Fatal("hint replayed before its backoff elapsed")
	}
	// Past the backoff: replay delivers.
	clk.Advance(5 * time.Second)
	d.RunOnce()
	if hints.Pending() != 0 {
		t.Fatal("hint not replayed after backoff elapsed")
	}
	if u2, ok := remote.Load("k"); !ok || string(u2.Data) != "v" {
		t.Fatal("remote did not receive the hinted update")
	}
}

func TestDaemonDropsHintsForDepartedPeer(t *testing.T) {
	clk := clock.NewSim(time.Time{})
	local := newMemStore()
	local.put("k", 1, 1, "l", nil)
	cl := &testCluster{peers: map[string]*memStore{}, down: map[string]bool{}}
	hints, _ := OpenHintLog(NewMemBackend(), nil)
	u, _ := local.Load("k")
	hints.Add("gone", u)
	d := NewDaemon(clk, local, hints, cl, DefaultGeometry, time.Second, nil)
	d.RunOnce()
	if hints.Pending() != 0 {
		t.Fatal("hints for departed peer must be dropped")
	}
}

func TestDaemonSyncRoundRobin(t *testing.T) {
	clk := clock.NewSim(time.Time{})
	local, r1 := newMemStore(), newMemStore()
	r1.put("only-r1", 2, 50, "r1", []byte("z"))
	cl := &testCluster{peers: map[string]*memStore{"r1": r1}, down: map[string]bool{}}
	hints, _ := OpenHintLog(NewMemBackend(), nil)
	d := NewDaemon(clk, local, hints, cl, DefaultGeometry, time.Second, nil)
	st := d.RunOnce()
	if st.KeysRepaired != 1 {
		t.Fatalf("KeysRepaired = %d, want 1", st.KeysRepaired)
	}
	if _, ok := local.Load("only-r1"); !ok {
		t.Fatal("daemon session did not pull the missing key")
	}
}

// Package repair is the anti-entropy subsystem that keeps Wiera replicas
// convergent under failures. The paper's eventual and primary-backup modes
// (Sec 3.2.3, Sec 4) propagate updates through best-effort fan-out: a
// replica that is partitioned or crashed during a flush would silently
// diverge forever. This package closes that gap with three complementary
// mechanisms, mirroring production geo-replicated stores:
//
//   - Merkle digest sync: each replica summarises its per-key version
//     metadata (version number, modification time, origin — the LWW tuple)
//     in a fixed-geometry hash tree. Two replicas locate divergent key
//     ranges in O(log n) digest rounds and exchange only the differing
//     versions instead of full key lists (see merkle.go, session.go).
//   - Hinted handoff: an update that cannot reach a peer is persisted as a
//     hint (in internal/metastore when the node runs durable) and replayed
//     with exponential backoff once the peer answers pings again (hints.go).
//   - A background daemon that periodically picks a peer, replays due
//     hints, and runs one Merkle sync session (daemon.go).
//
// The package is transport-agnostic: replicas appear through the Store and
// PeerClient interfaces, which internal/wiera adapts over its RPC fabric.
package repair

import (
	"repro/internal/object"
	"repro/internal/telemetry"
)

// Entry is one key's latest-version summary — exactly the tuple the
// last-writer-wins rule (object.Newer) needs to decide which replica holds
// the newer version.
type Entry struct {
	Key     string
	Version int64
	// Mtime is the version's modification time in Unix nanoseconds.
	Mtime  int64
	Origin string
}

// newer reports whether a should win over b under the LWW rule, mirroring
// object.Newer on the summary tuple.
func newer(a, b Entry) bool {
	if a.Version != b.Version {
		return a.Version > b.Version
	}
	if a.Mtime != b.Mtime {
		return a.Mtime > b.Mtime
	}
	return a.Origin > b.Origin
}

// EntryOf summarises a version's metadata.
func EntryOf(m object.Meta) Entry {
	return Entry{Key: m.Key, Version: int64(m.Version), Mtime: m.ModifiedAt.UnixNano(), Origin: m.Origin}
}

// Update carries one full version (metadata plus payload) between replicas;
// it is the repair-layer twin of wiera's UpdateMsg.
type Update struct {
	Meta object.Meta
	Data []byte
}

// Entry returns the update's LWW summary.
func (u Update) Entry() Entry { return EntryOf(u.Meta) }

// Store is the local replica as the repair subsystem sees it.
type Store interface {
	// Entries returns the latest-version summary of every key.
	Entries() []Entry
	// Load returns the full latest version of key (false if missing).
	Load(key string) (Update, bool)
	// Apply installs a remote version under LWW, reporting acceptance.
	Apply(u Update) bool
}

// PeerClient reaches one remote replica with the four repair RPCs.
type PeerClient interface {
	// Digests returns the peer's tree digests for the given node indices
	// under the given geometry, in request order.
	Digests(geo Geometry, nodes []int) ([]uint64, error)
	// LeafEntries returns the peer's key summaries for the given leaves.
	LeafEntries(geo Geometry, leaves []int) ([]Entry, error)
	// Pull fetches the peer's latest versions of keys (missing keys are
	// simply absent from the result).
	Pull(keys []string) ([]Update, error)
	// Push offers updates to the peer, returning how many won under LWW.
	Push(updates []Update) (int, error)
}

// Cluster is the membership/liveness view the daemon schedules over.
type Cluster interface {
	// Peers lists the current peer names (excluding the local replica).
	Peers() []string
	// Client returns a PeerClient for peer.
	Client(peer string) PeerClient
	// Alive reports whether peer currently answers (heartbeat gate for
	// hint replay).
	Alive(peer string) bool
}

// Metrics are the repair subsystem's counters, registered on the shared
// telemetry registry so they surface on /metrics and `wieractl metrics`.
// All fields are nil-safe (a nil registry yields no-op children).
type Metrics struct {
	HintsPending  *telemetry.Gauge   // repair_hints_pending
	HintsReplayed *telemetry.Counter // repair_hints_replayed_total
	HintsDropped  *telemetry.Counter // repair_hints_dropped_total
	KeysRepaired  *telemetry.Counter // repair_keys_repaired_total
	DigestRounds  *telemetry.Counter // repair_digest_rounds_total
	ReadRepairs   *telemetry.Counter // repair_read_repairs_total
	Sessions      *telemetry.Counter // repair_sessions_total
	SyncBytes     *telemetry.Counter // repair_sync_bytes_total
	BytesReplayed *telemetry.Counter // repair_bytes_replayed_total
}

// NewMetrics registers the repair metric families for one node.
func NewMetrics(reg *telemetry.Registry, node, region string) *Metrics {
	m := &Metrics{}
	m.HintsPending = reg.Gauge("repair_hints_pending",
		"Updates awaiting hinted-handoff replay to unreachable peers.", "node", "region").
		With(node, region)
	m.HintsReplayed = reg.Counter("repair_hints_replayed_total",
		"Hinted updates successfully replayed to their peer.", "node", "region").
		With(node, region)
	m.HintsDropped = reg.Counter("repair_hints_dropped_total",
		"Hints discarded (peer left the membership or was superseded).", "node", "region").
		With(node, region)
	m.KeysRepaired = reg.Counter("repair_keys_repaired_total",
		"Key versions installed by anti-entropy sync or read repair.", "node", "region").
		With(node, region)
	m.DigestRounds = reg.Counter("repair_digest_rounds_total",
		"Merkle digest exchange rounds across all sync sessions.", "node", "region").
		With(node, region)
	m.ReadRepairs = reg.Counter("repair_read_repairs_total",
		"Async repairs scheduled because a get observed a stale version.", "node", "region").
		With(node, region)
	m.Sessions = reg.Counter("repair_sessions_total",
		"Anti-entropy sync sessions started.", "node", "region").
		With(node, region)
	m.SyncBytes = reg.Counter("repair_sync_bytes_total",
		"Estimated wire bytes moved by anti-entropy sessions.", "node", "region").
		With(node, region)
	m.BytesReplayed = reg.Counter("repair_bytes_replayed_total",
		"Estimated wire bytes moved by hinted-handoff replay. Sized from each "+
			"update's actual payload (the fragment bundle for erasure-coded "+
			"versions, not the full object).", "node", "region").
		With(node, region)
	return m
}

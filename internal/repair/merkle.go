package repair

import (
	"fmt"
	"hash/fnv"
)

// Geometry fixes the shape of a Merkle digest tree: a complete tree with
// Fanout children per internal node and Depth levels below the root, so
// Fanout^Depth leaf buckets. Both sides of a sync session must use the same
// geometry; it travels inside every digest request.
type Geometry struct {
	Fanout int
	Depth  int
}

// DefaultGeometry is 16^3 = 4096 leaf buckets — a few keys per bucket at
// the 10k-key scale the experiments run, and three digest rounds to locate
// any divergent range.
var DefaultGeometry = Geometry{Fanout: 16, Depth: 3}

// normalize substitutes defaults for zero fields and clamps degenerate
// values.
func (g Geometry) normalize() Geometry {
	if g.Fanout < 2 {
		g.Fanout = DefaultGeometry.Fanout
	}
	if g.Depth < 1 {
		g.Depth = DefaultGeometry.Depth
	}
	return g
}

// Leaves returns the number of leaf buckets (Fanout^Depth).
func (g Geometry) Leaves() int {
	n := 1
	for i := 0; i < g.Depth; i++ {
		n *= g.Fanout
	}
	return n
}

// LeafStart returns the heap index of the first leaf: nodes are numbered
// heap-style (root = 0, children of i are i*Fanout+1 .. i*Fanout+Fanout),
// so the (Fanout^Depth - 1)/(Fanout - 1) internal nodes come first.
func (g Geometry) LeafStart() int {
	return (g.Leaves() - 1) / (g.Fanout - 1)
}

// Nodes returns the total node count, internal plus leaves.
func (g Geometry) Nodes() int {
	return g.LeafStart() + g.Leaves()
}

// Children returns the heap indices of node's children (nil for leaves).
func (g Geometry) Children(node int) []int {
	if node >= g.LeafStart() {
		return nil
	}
	out := make([]int, g.Fanout)
	for i := range out {
		out[i] = node*g.Fanout + 1 + i
	}
	return out
}

// Leaf maps a key to its leaf bucket index in [0, Leaves()).
func (g Geometry) Leaf(key string) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(g.Leaves()))
}

// mix64 is the splitmix64 finalizer: it decorrelates entry digests so the
// XOR combination at leaves does not cancel structured FNV outputs.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// entryDigest hashes one key summary. Any field change — version bump,
// mtime change, different origin — changes the digest.
func entryDigest(e Entry) uint64 {
	h := fnv.New64a()
	h.Write([]byte(e.Key))
	var buf [16]byte
	putU64(buf[0:8], uint64(e.Version))
	putU64(buf[8:16], uint64(e.Mtime))
	h.Write(buf[:])
	h.Write([]byte(e.Origin))
	return mix64(h.Sum64())
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Tree is a built Merkle digest tree over one replica's key summaries.
type Tree struct {
	geo    Geometry
	dig    []uint64
	leaves [][]Entry
	count  int
}

// BuildTree hashes entries into their leaf buckets and folds digests up to
// the root. Leaf digests XOR per-entry digests (order independent, so the
// iteration order of the caller's map does not matter); internal digests
// hash their children in child order.
func BuildTree(geo Geometry, entries []Entry) *Tree {
	geo = geo.normalize()
	t := &Tree{geo: geo, dig: make([]uint64, geo.Nodes()), leaves: make([][]Entry, geo.Leaves()), count: len(entries)}
	for _, e := range entries {
		l := geo.Leaf(e.Key)
		t.leaves[l] = append(t.leaves[l], e)
	}
	start := geo.LeafStart()
	for i, es := range t.leaves {
		var d uint64
		for _, e := range es {
			d ^= entryDigest(e)
		}
		t.dig[start+i] = d
	}
	for i := start - 1; i >= 0; i-- {
		h := fnv.New64a()
		var buf [8]byte
		for _, c := range geo.Children(i) {
			putU64(buf[:], t.dig[c])
			h.Write(buf[:])
		}
		t.dig[i] = h.Sum64()
	}
	return t
}

// Geometry returns the tree's shape.
func (t *Tree) Geometry() Geometry { return t.geo }

// Count returns how many entries the tree covers.
func (t *Tree) Count() int { return t.count }

// Digest returns the digest of the node at heap index i.
func (t *Tree) Digest(i int) (uint64, error) {
	if i < 0 || i >= len(t.dig) {
		return 0, fmt.Errorf("repair: node index %d out of range [0,%d)", i, len(t.dig))
	}
	return t.dig[i], nil
}

// Digests returns the digests for a set of node indices, in order.
func (t *Tree) Digests(nodes []int) ([]uint64, error) {
	out := make([]uint64, len(nodes))
	for i, n := range nodes {
		d, err := t.Digest(n)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// LeafEntries returns the concatenated summaries of the given leaf buckets
// (indices in [0, Leaves())).
func (t *Tree) LeafEntries(leaves []int) ([]Entry, error) {
	var out []Entry
	for _, l := range leaves {
		if l < 0 || l >= len(t.leaves) {
			return nil, fmt.Errorf("repair: leaf index %d out of range [0,%d)", l, len(t.leaves))
		}
		out = append(out, t.leaves[l]...)
	}
	return out, nil
}

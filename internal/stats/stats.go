// Package stats provides the measurement primitives used by every
// experiment harness: latency histograms with percentile queries, windowed
// rate counters, and time series for the timeline figures (e.g. paper Fig 7).
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// reservoirCap bounds how many raw samples a Histogram retains. Long
// experiment runs record tens of millions of points; beyond this many the
// histogram switches to uniform reservoir sampling (Vitter's Algorithm R),
// keeping memory constant while percentiles stay accurate to well under a
// percentile point at this reservoir size.
const reservoirCap = 8192

// Histogram records duration samples and answers mean/percentile queries.
// Count, Mean, Min and Max are always exact; percentiles are exact up to
// reservoirCap samples and estimated from a uniform reservoir beyond that.
// Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration // reservoir of at most reservoirCap samples
	n       int64           // total samples recorded
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	sorted  bool
	rng     *rand.Rand
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	h.n++
	h.sum += d
	if h.n == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	if len(h.samples) < reservoirCap {
		h.samples = append(h.samples, d)
		h.sorted = false
		h.mu.Unlock()
		return
	}
	// Algorithm R: keep the new sample with probability cap/n, evicting a
	// uniformly random resident. The seed is fixed so runs are repeatable.
	if h.rng == nil {
		h.rng = rand.New(rand.NewSource(int64(reservoirCap)))
	}
	if i := h.rng.Int63n(h.n); i < reservoirCap {
		h.samples[i] = d
		h.sorted = false
	}
	h.mu.Unlock()
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.n)
}

// Mean returns the arithmetic mean, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Min returns the smallest sample, or 0 if empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest sample, or 0 if empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank, or 0 if empty. The extremes (p<=0, p>=100) are exact;
// interior percentiles are estimated from the reservoir once the sample
// count exceeds its capacity.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	h.sortLocked()
	rank := int(math.Ceil(p / 100 * float64(len(h.samples))))
	if rank < 1 {
		rank = 1
	}
	return h.samples[rank-1]
}

// Snapshot returns a copy of the retained samples (all of them below
// reservoirCap, a uniform subsample beyond), insertion order not
// guaranteed.
func (h *Histogram) Snapshot() []time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]time.Duration, len(h.samples))
	copy(out, h.samples)
	return out
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.n = 0
	h.sum = 0
	h.min = 0
	h.max = 0
	h.sorted = true
	h.mu.Unlock()
}

// String summarizes the distribution, e.g. "n=100 mean=4ms p50=3ms p99=9ms".
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max())
}

func (h *Histogram) sortLocked() {
	if h.sorted {
		return
	}
	sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
	h.sorted = true
}

// Counter is a concurrency-safe monotonically increasing counter.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Add increments the counter by delta (delta must be >= 0).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("stats: Counter.Add with negative delta")
	}
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Point is one (time, value) sample on a time series.
type Point struct {
	At    time.Time
	Value float64
}

// Series is an append-only time series, used for the timeline plots
// (operation latency over time in Fig 7). Safe for concurrent use.
type Series struct {
	mu     sync.Mutex
	name   string
	points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Append records a point.
func (s *Series) Append(at time.Time, v float64) {
	s.mu.Lock()
	s.points = append(s.points, Point{At: at, Value: v})
	s.mu.Unlock()
}

// Points returns a copy of the recorded points in append order.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Len returns the number of points.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.points)
}

// MaxValue returns the maximum value in the series, or 0 if empty.
func (s *Series) MaxValue() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	max := 0.0
	for _, p := range s.points {
		if p.Value > max {
			max = p.Value
		}
	}
	return max
}

// SlidingWindow counts events with timestamps and answers "how many events
// in the last w" and "has the condition held continuously for w" queries —
// the primitive behind the paper's threshold+period monitors (e.g. latency
// above 800 ms for 30 s). Safe for concurrent use.
type SlidingWindow struct {
	mu     sync.Mutex
	window time.Duration
	events []time.Time
}

// NewSlidingWindow returns a window of width w.
func NewSlidingWindow(w time.Duration) *SlidingWindow {
	if w <= 0 {
		panic("stats: window width must be positive")
	}
	return &SlidingWindow{window: w}
}

// Add records an event at time t.
func (w *SlidingWindow) Add(t time.Time) {
	w.mu.Lock()
	w.events = append(w.events, t)
	w.pruneLocked(t)
	w.mu.Unlock()
}

// Count returns the number of events within (now-window, now].
func (w *SlidingWindow) Count(now time.Time) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pruneLocked(now)
	return len(w.events)
}

// OldestWithin returns the oldest event still inside the window and whether
// one exists.
func (w *SlidingWindow) OldestWithin(now time.Time) (time.Time, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pruneLocked(now)
	if len(w.events) == 0 {
		return time.Time{}, false
	}
	return w.events[0], true
}

// Reset discards all events.
func (w *SlidingWindow) Reset() {
	w.mu.Lock()
	w.events = w.events[:0]
	w.mu.Unlock()
}

func (w *SlidingWindow) pruneLocked(now time.Time) {
	cut := now.Add(-w.window)
	i := 0
	for i < len(w.events) && !w.events[i].After(cut) {
		i++
	}
	if i > 0 {
		w.events = append(w.events[:0], w.events[i:]...)
	}
}

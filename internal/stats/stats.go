// Package stats provides the measurement primitives used by every
// experiment harness: latency histograms with percentile queries, windowed
// rate counters, and time series for the timeline figures (e.g. paper Fig 7).
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram records duration samples and answers mean/percentile queries.
// It keeps raw samples (experiments here record at most a few million
// points), which keeps percentiles exact. Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sum     time.Duration
	sorted  bool
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.sum += d
	h.sorted = false
	h.mu.Unlock()
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the arithmetic mean, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / time.Duration(len(h.samples))
}

// Min returns the smallest sample, or 0 if empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sortLocked()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[0]
}

// Max returns the largest sample, or 0 if empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sortLocked()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[len(h.samples)-1]
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank, or 0 if empty.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(h.samples))))
	if rank < 1 {
		rank = 1
	}
	return h.samples[rank-1]
}

// Snapshot returns a copy of all samples, unsorted insertion order not
// guaranteed.
func (h *Histogram) Snapshot() []time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]time.Duration, len(h.samples))
	copy(out, h.samples)
	return out
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sum = 0
	h.sorted = true
	h.mu.Unlock()
}

// String summarizes the distribution, e.g. "n=100 mean=4ms p50=3ms p99=9ms".
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max())
}

func (h *Histogram) sortLocked() {
	if h.sorted {
		return
	}
	sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
	h.sorted = true
}

// Counter is a concurrency-safe monotonically increasing counter.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Add increments the counter by delta (delta must be >= 0).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("stats: Counter.Add with negative delta")
	}
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Point is one (time, value) sample on a time series.
type Point struct {
	At    time.Time
	Value float64
}

// Series is an append-only time series, used for the timeline plots
// (operation latency over time in Fig 7). Safe for concurrent use.
type Series struct {
	mu     sync.Mutex
	name   string
	points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Append records a point.
func (s *Series) Append(at time.Time, v float64) {
	s.mu.Lock()
	s.points = append(s.points, Point{At: at, Value: v})
	s.mu.Unlock()
}

// Points returns a copy of the recorded points in append order.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Len returns the number of points.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.points)
}

// MaxValue returns the maximum value in the series, or 0 if empty.
func (s *Series) MaxValue() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	max := 0.0
	for _, p := range s.points {
		if p.Value > max {
			max = p.Value
		}
	}
	return max
}

// SlidingWindow counts events with timestamps and answers "how many events
// in the last w" and "has the condition held continuously for w" queries —
// the primitive behind the paper's threshold+period monitors (e.g. latency
// above 800 ms for 30 s). Safe for concurrent use.
type SlidingWindow struct {
	mu     sync.Mutex
	window time.Duration
	events []time.Time
}

// NewSlidingWindow returns a window of width w.
func NewSlidingWindow(w time.Duration) *SlidingWindow {
	if w <= 0 {
		panic("stats: window width must be positive")
	}
	return &SlidingWindow{window: w}
}

// Add records an event at time t.
func (w *SlidingWindow) Add(t time.Time) {
	w.mu.Lock()
	w.events = append(w.events, t)
	w.pruneLocked(t)
	w.mu.Unlock()
}

// Count returns the number of events within (now-window, now].
func (w *SlidingWindow) Count(now time.Time) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pruneLocked(now)
	return len(w.events)
}

// OldestWithin returns the oldest event still inside the window and whether
// one exists.
func (w *SlidingWindow) OldestWithin(now time.Time) (time.Time, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pruneLocked(now)
	if len(w.events) == 0 {
		return time.Time{}, false
	}
	return w.events[0], true
}

// Reset discards all events.
func (w *SlidingWindow) Reset() {
	w.mu.Lock()
	w.events = w.events[:0]
	w.mu.Unlock()
}

func (w *SlidingWindow) pruneLocked(now time.Time) {
	cut := now.Add(-w.window)
	i := 0
	for i < len(w.events) && !w.events[i].After(cut) {
		i++
	}
	if i > 0 {
		w.events = append(w.events[:0], w.events[i:]...)
	}
}

package stats

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram()
	h.Record(10 * time.Millisecond)
	h.Record(20 * time.Millisecond)
	h.Record(30 * time.Millisecond)
	if got := h.Mean(); got != 20*time.Millisecond {
		t.Fatalf("Mean = %v, want 20ms", got)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{95, 95 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
		{1, 1 * time.Millisecond},
		{0, 1 * time.Millisecond},
	}
	for _, c := range cases {
		if got := h.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestHistogramMinMax(t *testing.T) {
	h := NewHistogram()
	h.Record(5 * time.Millisecond)
	h.Record(1 * time.Millisecond)
	h.Record(9 * time.Millisecond)
	if h.Min() != time.Millisecond || h.Max() != 9*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
}

func TestHistogramRecordAfterPercentile(t *testing.T) {
	h := NewHistogram()
	h.Record(2 * time.Millisecond)
	_ = h.Percentile(50) // forces sort
	h.Record(1 * time.Millisecond)
	if got := h.Min(); got != time.Millisecond {
		t.Fatalf("Min after interleaved Record = %v", got)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	s := h.String()
	if !strings.Contains(s, "n=1") {
		t.Fatalf("String() = %q, want it to contain n=1", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Record(time.Duration(j) * time.Microsecond)
				_ = h.Percentile(99)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
}

// Property: mean lies between min and max, and percentiles are monotone in p.
func TestHistogramProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Record(time.Duration(v) * time.Microsecond)
		}
		if h.Mean() < h.Min() || h.Mean() > h.Max() {
			return false
		}
		prev := time.Duration(-1)
		for p := 5.0; p <= 100; p += 5 {
			cur := h.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Fatalf("Value = %d, want 16000", c.Value())
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("put-latency")
	if s.Name() != "put-latency" {
		t.Fatalf("Name = %q", s.Name())
	}
	base := time.Unix(0, 0)
	s.Append(base, 1)
	s.Append(base.Add(time.Second), 3)
	s.Append(base.Add(2*time.Second), 2)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.MaxValue() != 3 {
		t.Fatalf("MaxValue = %v", s.MaxValue())
	}
	pts := s.Points()
	if pts[1].Value != 3 || !pts[1].At.Equal(base.Add(time.Second)) {
		t.Fatalf("Points[1] = %+v", pts[1])
	}
	// Mutating the returned slice must not affect the series.
	pts[0].Value = 99
	if s.Points()[0].Value != 1 {
		t.Fatal("Points returned aliased storage")
	}
}

func TestSeriesEmptyMax(t *testing.T) {
	if NewSeries("x").MaxValue() != 0 {
		t.Fatal("empty series MaxValue != 0")
	}
}

func TestSlidingWindowCount(t *testing.T) {
	w := NewSlidingWindow(10 * time.Second)
	base := time.Unix(100, 0)
	w.Add(base)
	w.Add(base.Add(5 * time.Second))
	if got := w.Count(base.Add(5 * time.Second)); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	// First event falls out of the window at base+10s (exclusive boundary).
	if got := w.Count(base.Add(11 * time.Second)); got != 1 {
		t.Fatalf("Count after expiry = %d, want 1", got)
	}
}

func TestSlidingWindowBoundary(t *testing.T) {
	w := NewSlidingWindow(10 * time.Second)
	base := time.Unix(100, 0)
	w.Add(base)
	// At exactly now-window the event is excluded.
	if got := w.Count(base.Add(10 * time.Second)); got != 0 {
		t.Fatalf("Count at exact boundary = %d, want 0", got)
	}
}

func TestSlidingWindowOldest(t *testing.T) {
	w := NewSlidingWindow(time.Minute)
	base := time.Unix(0, 0)
	if _, ok := w.OldestWithin(base); ok {
		t.Fatal("empty window reported an oldest event")
	}
	w.Add(base.Add(time.Second))
	w.Add(base.Add(2 * time.Second))
	got, ok := w.OldestWithin(base.Add(3 * time.Second))
	if !ok || !got.Equal(base.Add(time.Second)) {
		t.Fatalf("OldestWithin = %v, %v", got, ok)
	}
}

func TestSlidingWindowReset(t *testing.T) {
	w := NewSlidingWindow(time.Minute)
	w.Add(time.Unix(1, 0))
	w.Reset()
	if w.Count(time.Unix(1, 0)) != 0 {
		t.Fatal("Reset did not clear the window")
	}
}

func TestSlidingWindowZeroWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-width window did not panic")
		}
	}()
	NewSlidingWindow(0)
}

func TestHistogramBoundedMemory(t *testing.T) {
	h := NewHistogram()
	const n = 4 * reservoirCap
	for i := 1; i <= n; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if got := len(h.Snapshot()); got > reservoirCap {
		t.Fatalf("reservoir holds %d samples, cap is %d", got, reservoirCap)
	}
	// Exact aggregates survive sampling.
	if h.Count() != n {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	if h.Min() != 1*time.Microsecond {
		t.Fatalf("Min = %v", h.Min())
	}
	if h.Max() != time.Duration(n)*time.Microsecond {
		t.Fatalf("Max = %v", h.Max())
	}
	wantMean := time.Duration(n) * time.Duration(n+1) / 2 * time.Microsecond / time.Duration(n)
	if h.Mean() != wantMean {
		t.Fatalf("Mean = %v, want %v", h.Mean(), wantMean)
	}
	// Estimated interior percentiles stay close to the exact value: the
	// samples are uniform on (0, n] microseconds, so p50 should land near
	// n/2 within a few percent.
	p50 := h.Percentile(50)
	exact := time.Duration(n/2) * time.Microsecond
	diff := p50 - exact
	if diff < 0 {
		diff = -diff
	}
	if diff > exact/10 {
		t.Fatalf("p50 = %v, want within 10%% of %v", p50, exact)
	}
}

package tenant

import (
	"sync"
	"time"
)

// Bucket is a lazily-refilled token bucket. Rate is tokens/second, burst is
// the bucket capacity. A rate <= 0 means unlimited: Take always succeeds and
// costs nothing. The bucket is clock-agnostic — callers pass `now`, so it
// works under both the wall clock and the simulated clock.
type Bucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// NewBucket builds a bucket that starts full. A burst <= 0 defaults to one
// second's worth of tokens. Any burst below one token is floored to 1:
// withdrawals are at least one token, so a smaller capacity could never
// admit anything — a sub-1/s rate must mean "one op per 1/rate seconds",
// not "never".
func NewBucket(rate, burst float64) *Bucket {
	if rate > 0 {
		if burst <= 0 {
			burst = rate
		}
		if burst < 1 {
			burst = 1
		}
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst}
}

// Take withdraws n tokens if available at time now, reporting success. It
// never blocks and never goes negative: at zero tokens every Take fails until
// refill, so a starved tenant recovers as soon as time passes — there is no
// debt to pay down.
func (b *Bucket) Take(n float64, now time.Time) bool {
	if b == nil || b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(now)
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// Tokens reports the current token count after refilling to now.
func (b *Bucket) Tokens(now time.Time) float64 {
	if b == nil || b.rate <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(now)
	return b.tokens
}

func (b *Bucket) refill(now time.Time) {
	if b.last.IsZero() {
		b.last = now
		return
	}
	dt := now.Sub(b.last)
	if dt <= 0 {
		return
	}
	b.last = now
	b.tokens += b.rate * dt.Seconds()
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

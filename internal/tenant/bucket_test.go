package tenant

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// Sustained admission over a long window must not exceed the configured rate
// (plus the initial burst capacity).
func TestBucketSustainedRate(t *testing.T) {
	const rate, burst = 100.0, 50.0
	b := NewBucket(rate, burst)
	start := time.Unix(0, 0)
	admitted := 0
	// Offer 10x the quota for 10 seconds in 1ms ticks.
	for i := 0; i < 10000; i++ {
		now := start.Add(time.Duration(i) * time.Millisecond)
		if b.Take(1, now) {
			admitted++
		}
	}
	max := int(rate*10 + burst)
	if admitted > max {
		t.Fatalf("admitted %d ops in 10s, want <= rate*10+burst = %d", admitted, max)
	}
	if admitted < int(rate*10)-1 {
		t.Fatalf("admitted %d ops in 10s, want >= %d (rate under-delivered)", admitted, int(rate*10)-1)
	}
}

// A burst at a single instant is bounded by the bucket capacity.
func TestBucketBurstBound(t *testing.T) {
	b := NewBucket(10, 25)
	now := time.Unix(100, 0)
	admitted := 0
	for i := 0; i < 1000; i++ {
		if b.Take(1, now) {
			admitted++
		}
	}
	if admitted != 25 {
		t.Fatalf("instantaneous burst admitted %d, want exactly burst=25", admitted)
	}
}

// At zero tokens there is no debt: denied requests cost nothing, and the
// tenant recovers at full rate as soon as time passes.
func TestBucketNoStarvationAtZero(t *testing.T) {
	b := NewBucket(100, 10)
	now := time.Unix(0, 0)
	for b.Take(1, now) {
	}
	// Hammer the empty bucket; none of these may push tokens negative.
	for i := 0; i < 10000; i++ {
		if b.Take(1, now) {
			t.Fatal("Take succeeded on an empty bucket with no time passed")
		}
	}
	// One second later a full second of tokens is available, capped at burst.
	later := now.Add(time.Second)
	admitted := 0
	for b.Take(1, later) {
		admitted++
	}
	if admitted != 10 {
		t.Fatalf("after recovery admitted %d, want burst=10 (denied requests must not accrue debt)", admitted)
	}
}

func TestBucketUnlimited(t *testing.T) {
	b := NewBucket(0, 0)
	now := time.Unix(0, 0)
	for i := 0; i < 1000; i++ {
		if !b.Take(1e9, now) {
			t.Fatal("unlimited bucket denied a request")
		}
	}
	var nilBucket *Bucket
	if !nilBucket.Take(1, now) {
		t.Fatal("nil bucket must admit everything")
	}
}

// A sub-1/s rate means "one op per 1/rate seconds", never "never": the
// burst floors at one token, so the tenant is admitted exactly once per
// refill interval instead of being permanently starved.
func TestBucketFractionalRate(t *testing.T) {
	b := NewBucket(0.5, 0.5) // one op per 2s; naive burst would be 0.5 tokens
	now := time.Unix(0, 0)
	if !b.Take(1, now) {
		t.Fatal("fractional-rate bucket denied its initial burst token")
	}
	if b.Take(1, now) {
		t.Fatal("second take at the same instant must be denied")
	}
	if b.Take(1, now.Add(time.Second)) {
		t.Fatal("take after half a refill interval must be denied")
	}
	if !b.Take(1, now.Add(2*time.Second)) {
		t.Fatal("take after a full refill interval must be admitted")
	}
}

// Byte-granularity takes: fractional token accounting must stay consistent.
func TestBucketByteRate(t *testing.T) {
	b := NewBucket(1000, 1000) // 1000 B/s
	start := time.Unix(0, 0)
	var admitted float64
	for i := 0; i < 5000; i++ {
		now := start.Add(time.Duration(i) * time.Millisecond)
		if b.Take(100, now) {
			admitted += 100
		}
	}
	if admitted > 1000*5+1000 {
		t.Fatalf("admitted %v bytes in 5s, want <= 6000", admitted)
	}
}

func TestQualifySplitRoundTrip(t *testing.T) {
	cases := []struct{ id, key string }{
		{"gold", "user/1"},
		{"bronze", "k:with:colons"},
		{DefaultID, "plain"},
		{"", "plain"},
	}
	for _, c := range cases {
		q := Qualify(c.id, c.key)
		id, key := Split(q)
		wantID := c.id
		if wantID == "" {
			wantID = DefaultID
		}
		if id != wantID || key != c.key {
			t.Fatalf("roundtrip(%q,%q) -> qualified %q -> (%q,%q)", c.id, c.key, q, id, key)
		}
	}
	// Default-tenant keys are stored bare: exact pre-tenancy encoding.
	if got := Qualify(DefaultID, "k1"); got != "k1" {
		t.Fatalf("default tenant key qualified to %q, want unchanged", got)
	}
	if got := Qualify("gold", "k1"); got != "tn:gold:k1" {
		t.Fatalf("Qualify(gold,k1) = %q, want tn:gold:k1", got)
	}
}

func TestQuotaExceededMarkerSurvivesFlattening(t *testing.T) {
	orig := &ErrQuotaExceeded{Tenant: "noisy", Kind: "iops"}
	// Simulate transport string-flattening plus re-wrapping.
	flattened := fmt.Errorf("rpc failed: %w", errors.New(orig.Error()))
	got := AsQuotaExceeded(flattened)
	if got == nil {
		t.Fatal("AsQuotaExceeded failed to recover flattened NACK")
	}
	if got.Tenant != "noisy" || got.Kind != "iops" {
		t.Fatalf("recovered %+v, want tenant=noisy kind=iops", got)
	}
	if AsQuotaExceeded(errors.New("some other error")) != nil {
		t.Fatal("false positive on unrelated error")
	}
	if AsQuotaExceeded(nil) != nil {
		t.Fatal("AsQuotaExceeded(nil) must be nil")
	}
}

func TestParseConfigs(t *testing.T) {
	cfgs, err := ParseConfigs(map[string]string{
		"tenants":           "gold,bronze",
		"tenantWeight:gold": "8",
		"tenantIOPS:bronze": "250",
		"tenantBytes:gold":  "1048576",
	})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]Config{}
	for _, c := range cfgs {
		byID[c.ID] = c
	}
	if len(byID) != 3 {
		t.Fatalf("got %d tenants %v, want gold+bronze+default", len(byID), byID)
	}
	if g := byID["gold"]; g.Weight != 8 || g.Bytes != 1048576 || g.IOPS != 0 {
		t.Fatalf("gold = %+v", g)
	}
	if b := byID["bronze"]; b.Weight != 1 || b.IOPS != 250 {
		t.Fatalf("bronze = %+v", b)
	}
	if d := byID[DefaultID]; d.IOPS != 0 || d.Bytes != 0 {
		t.Fatalf("default tenant must be unlimited, got %+v", d)
	}

	if cfgs, err := ParseConfigs(map[string]string{"workers": "4"}); err != nil || cfgs != nil {
		t.Fatalf("no tenants param must disable tenancy, got %v, %v", cfgs, err)
	}
	if _, err := ParseConfigs(map[string]string{"tenants": "bad:id"}); err == nil {
		t.Fatal("tenant id with ':' must be rejected")
	}
	if _, err := ParseConfigs(map[string]string{"tenants": "a", "tenantWeight:a": "heavy"}); err == nil {
		t.Fatal("non-numeric weight must be rejected")
	}
}

func TestIsTenantParam(t *testing.T) {
	for _, k := range []string{"tenants", "tenantSlots", "tenantWeight:x", "tenantIOPS:x", "tenantBytes:x"} {
		if !IsTenantParam(k) {
			t.Fatalf("IsTenantParam(%q) = false", k)
		}
	}
	for _, k := range []string{"workers", "dynamic", "ecScheme", "t"} {
		if IsTenantParam(k) {
			t.Fatalf("IsTenantParam(%q) = true", k)
		}
	}
}

// Package tenant implements multi-tenant namespaces for wiera: tenant-scoped
// key encoding (so tenants land on disjoint ring key families while sharing
// the worker pool), token-bucket admission control with IOPS and byte-rate
// quotas, and a stride weighted-fair scheduler that bounds how much one
// tenant's backlog can inflate another tenant's queue wait.
package tenant

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultID is the implicit tenant for untenanted clients. It has unlimited
// quota and weight 1, and its keys are stored unqualified so every pre-tenancy
// deployment keeps its exact key encoding.
const DefaultID = "default"

// keyPrefix introduces a qualified tenant key: "tn:<id>:<key>". Tenant IDs
// may not contain ':' so the encoding parses unambiguously.
const keyPrefix = "tn:"

// ValidID reports whether id is usable as a tenant ID: nonempty, no ':'
// (reserved as the key separator), no ',' or whitespace (reserved by the
// spawn-param list syntax).
func ValidID(id string) bool {
	if id == "" {
		return false
	}
	return !strings.ContainsAny(id, ":, \t\n")
}

// Qualify folds a tenant ID into an object key. The default (or empty) tenant
// maps to the bare key, so untenanted traffic is byte-compatible with
// pre-tenancy deployments; named tenants get a parseable prefix that ring
// hashing, storage, Merkle sync, and repair all see as part of the key —
// disjoint key families fall out with no changes to those layers.
func Qualify(id, key string) string {
	if id == "" || id == DefaultID {
		return key
	}
	return keyPrefix + id + ":" + key
}

// Split recovers (tenant, bare key) from a possibly-qualified key. Unqualified
// keys belong to the default tenant.
func Split(qualified string) (id, key string) {
	if !strings.HasPrefix(qualified, keyPrefix) {
		return DefaultID, qualified
	}
	rest := qualified[len(keyPrefix):]
	i := strings.IndexByte(rest, ':')
	if i < 0 {
		return DefaultID, qualified
	}
	return rest[:i], rest[i+1:]
}

// Config describes one tenant: its scheduler weight and its admission quotas.
// Zero or negative quota values mean unlimited.
type Config struct {
	ID     string
	Weight int     // scheduler share; <1 treated as 1
	IOPS   float64 // ops/sec admission quota; <=0 unlimited
	Bytes  float64 // bytes/sec admission quota; <=0 unlimited
}

// quotaExceededMarker prefixes the flattened form of ErrQuotaExceeded so the
// typed NACK survives transport string-flattening, same as the wiera
// rebalance/wrong-shard markers.
const quotaExceededMarker = "tenant: quota exceeded: "

// ErrQuotaExceeded is the typed admission NACK. It is non-retryable from the
// client's point of view: retrying immediately would burn the backoff budget
// against a deterministic limiter.
type ErrQuotaExceeded struct {
	Tenant string
	Kind   string // "iops" or "bytes"
}

func (e *ErrQuotaExceeded) Error() string {
	return quotaExceededMarker + e.Tenant + " " + e.Kind
}

// AsQuotaExceeded recovers an ErrQuotaExceeded from an error that may have
// been flattened to a string (and possibly re-wrapped) by the transport.
func AsQuotaExceeded(err error) *ErrQuotaExceeded {
	if err == nil {
		return nil
	}
	msg := err.Error()
	i := strings.Index(msg, quotaExceededMarker)
	if i < 0 {
		return nil
	}
	rest := msg[i+len(quotaExceededMarker):]
	fields := strings.Fields(rest)
	e := &ErrQuotaExceeded{}
	if len(fields) > 0 {
		e.Tenant = fields[0]
	}
	if len(fields) > 1 {
		e.Kind = fields[1]
	}
	return e
}

// ParseConfigs turns the spawn-param surface into tenant configs:
//
//	tenants             = "gold,bronze"      (comma-separated IDs)
//	tenantWeight:<id>   = scheduler weight   (default 1)
//	tenantIOPS:<id>     = ops/sec quota      (default unlimited)
//	tenantBytes:<id>    = bytes/sec quota    (default unlimited)
//
// The default tenant is always present (weight 1, unlimited) whether or not it
// is listed. Returns nil when no tenants are declared, which callers treat as
// "tenancy disabled".
func ParseConfigs(params map[string]string) ([]Config, error) {
	list, ok := params["tenants"]
	if !ok || strings.TrimSpace(list) == "" {
		return nil, nil
	}
	var cfgs []Config
	seen := map[string]bool{}
	for _, raw := range strings.Split(list, ",") {
		id := strings.TrimSpace(raw)
		if id == "" {
			continue
		}
		if !ValidID(id) {
			return nil, fmt.Errorf("tenant: invalid tenant id %q", id)
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		c := Config{ID: id, Weight: 1}
		if w, ok := params["tenantWeight:"+id]; ok {
			var v int
			if _, err := fmt.Sscanf(strings.TrimSpace(w), "%d", &v); err != nil {
				return nil, fmt.Errorf("tenant: bad tenantWeight:%s=%q", id, w)
			}
			c.Weight = v
		}
		if q, ok := params["tenantIOPS:"+id]; ok {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimSpace(q), "%g", &v); err != nil {
				return nil, fmt.Errorf("tenant: bad tenantIOPS:%s=%q", id, q)
			}
			c.IOPS = v
		}
		if q, ok := params["tenantBytes:"+id]; ok {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimSpace(q), "%g", &v); err != nil {
				return nil, fmt.Errorf("tenant: bad tenantBytes:%s=%q", id, q)
			}
			c.Bytes = v
		}
		cfgs = append(cfgs, c)
	}
	if len(cfgs) == 0 {
		return nil, nil
	}
	if !seen[DefaultID] {
		cfgs = append(cfgs, Config{ID: DefaultID, Weight: 1})
	}
	sort.Slice(cfgs, func(i, j int) bool { return cfgs[i].ID < cfgs[j].ID })
	return cfgs, nil
}

// IsTenantParam reports whether a spawn-param key belongs to the tenancy
// surface and must be passed through as a raw string rather than parsed as a
// policy literal.
func IsTenantParam(k string) bool {
	return k == "tenants" || k == "tenantSlots" ||
		strings.HasPrefix(k, "tenantWeight:") ||
		strings.HasPrefix(k, "tenantIOPS:") ||
		strings.HasPrefix(k, "tenantBytes:")
}

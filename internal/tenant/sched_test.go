package tenant

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Under saturation (every tenant always has a queued request), each tenant's
// share of grants must land within 10% of its weight ratio. The test holds
// the only slot while a deep backlog is pre-queued for every tenant, then
// observes the grant order over a window in which no queue can drain empty —
// so the measured share is pure scheduler policy, not goroutine timing.
func TestSchedulerFairShare(t *testing.T) {
	cfgs := []Config{
		{ID: "gold", Weight: 6},
		{ID: "silver", Weight: 3},
		{ID: "bronze", Weight: 1},
	}
	const perTenant = 2000
	const window = 1000 // grants counted; < perTenant, so every queue stays nonempty
	s := NewScheduler(1, append(cfgs, Config{ID: "holder", Weight: 1}))
	defer s.Close()

	// Occupy the single slot so all backlog enqueues before any grant.
	if err := s.Acquire("holder"); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	for _, c := range cfgs {
		c := c
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := s.Acquire(c.ID); err != nil {
					return
				}
				mu.Lock()
				order = append(order, c.ID)
				mu.Unlock()
				s.Release()
			}()
		}
	}
	for s.Waiting() < perTenant*len(cfgs) {
		time.Sleep(time.Millisecond)
	}
	s.Release() // open the floodgate; grants proceed one at a time in stride order
	wg.Wait()

	counts := map[string]int{}
	for _, id := range order[:window] {
		counts[id]++
	}
	totalWeight := 0.0
	for _, c := range cfgs {
		totalWeight += float64(c.Weight)
	}
	for _, c := range cfgs {
		if counts[c.ID] == 0 {
			t.Fatalf("tenant %s starved: zero grants in saturated window", c.ID)
		}
		got := float64(counts[c.ID]) / float64(window)
		want := float64(c.Weight) / totalWeight
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("tenant %s share %.3f, want %.3f ±10%%", c.ID, got, want)
		}
	}
}

// A tenant with a huge backlog must not starve a light tenant: the light
// tenant's requests complete promptly even while thousands are queued.
func TestSchedulerNoStarvationUnderBacklog(t *testing.T) {
	s := NewScheduler(1, []Config{{ID: "noisy", Weight: 1}, {ID: "victim", Weight: 1}})
	defer s.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 64; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.Acquire("noisy"); err != nil {
					return
				}
				s.Release()
			}
		}()
	}
	// The victim sends 100 sequential requests; each must be granted.
	for i := 0; i < 100; i++ {
		done := make(chan error, 1)
		go func() { done <- s.Acquire("victim") }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("victim acquire %d failed: %v", i, err)
			}
			s.Release()
		case <-time.After(5 * time.Second):
			t.Fatalf("victim request %d starved behind noisy backlog", i)
		}
	}
	close(stop)
	wg.Wait()
}

// An idle tenant must not bank credit: after sitting out, it resumes at the
// current virtual time rather than monopolizing the scheduler.
func TestSchedulerIdleNoCredit(t *testing.T) {
	s := NewScheduler(1, []Config{{ID: "a", Weight: 1}, {ID: "b", Weight: 1}})
	defer s.Close()
	// Tenant a runs alone for a while, advancing its pass far ahead.
	for i := 0; i < 1000; i++ {
		if err := s.Acquire("a"); err != nil {
			t.Fatal(err)
		}
		s.Release()
	}
	// Now both contend; b must not get 1000 grants of "catch-up".
	var aGrants, bGrants int64
	var wg sync.WaitGroup
	deadline := make(chan struct{})
	for _, tn := range []struct {
		id  string
		ctr *int64
	}{{"a", &aGrants}, {"b", &bGrants}} {
		tn := tn
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-deadline:
					return
				default:
				}
				if err := s.Acquire(tn.id); err != nil {
					return
				}
				atomic.AddInt64(tn.ctr, 1)
				s.Release()
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(deadline)
	wg.Wait()
	a, b := atomic.LoadInt64(&aGrants), atomic.LoadInt64(&bGrants)
	if a == 0 || b == 0 {
		t.Fatalf("grants a=%d b=%d: both tenants must make progress", a, b)
	}
	ratio := float64(b) / float64(a+b)
	if ratio > 0.75 {
		t.Fatalf("reactivated tenant b took %.0f%% of grants: idle time banked as credit", ratio*100)
	}
}

func TestSchedulerCloseUnblocks(t *testing.T) {
	s := NewScheduler(1, nil)
	if err := s.Acquire("x"); err != nil {
		t.Fatal(err)
	}
	// This waiter is queued behind the held slot.
	done := make(chan error, 1)
	go func() { done <- s.Acquire("x") }()
	for s.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	s.Close()
	select {
	case err := <-done:
		if err != ErrSchedulerClosed {
			t.Fatalf("queued waiter got %v, want ErrSchedulerClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock queued waiter")
	}
	if err := s.Acquire("x"); err != ErrSchedulerClosed {
		t.Fatalf("Acquire after Close = %v, want ErrSchedulerClosed", err)
	}
}

func TestSchedulerNil(t *testing.T) {
	var s *Scheduler
	if err := s.Acquire("x"); err != nil {
		t.Fatal("nil scheduler must admit everything")
	}
	s.Release()
	s.Close()
	if s.Waiting() != 0 {
		t.Fatal("nil scheduler Waiting != 0")
	}
}

package tenant

import (
	"errors"
	"sync"
)

// ErrSchedulerClosed is returned from Acquire when the scheduler shuts down
// while the caller is queued, so node teardown never strands a request.
var ErrSchedulerClosed = errors.New("tenant: scheduler closed")

// strideScale is the stride numerator: stride = strideScale / weight. Large
// enough that integer division keeps weight ratios accurate for any sane
// weight (1..strideScale).
const strideScale = 1 << 20

type waiter struct {
	ch      chan struct{}
	granted bool
}

type tenantQueue struct {
	stride  uint64
	pass    uint64
	waiters []*waiter
}

// Scheduler is a stride weighted-fair scheduler over per-tenant FIFO queues.
// At most `slots` requests are active at once; when a slot frees, the waiter
// at the head of the queue with the minimum virtual pass runs next, and that
// queue's pass advances by strideScale/weight — so over any saturated window
// each tenant's share of grants converges to weight_i / Σ weight_j regardless
// of how deep any one tenant's backlog is. A backlogged tenant therefore
// cannot inflate another tenant's queue wait beyond its weighted share.
//
// The scheduler is clock-free (pure event ordering), so it behaves
// identically under the simulated and wall clocks.
type Scheduler struct {
	mu     sync.Mutex
	slots  int
	vtime  uint64 // pass of the most recent grant: floor for reactivated queues
	active int
	queues map[string]*tenantQueue
	closed bool
}

// NewScheduler builds a scheduler with the given concurrency and tenant
// weights. Slots < 1 defaults to 1. Tenants not configured up front are added
// lazily with weight 1.
func NewScheduler(slots int, cfgs []Config) *Scheduler {
	if slots < 1 {
		slots = 1
	}
	s := &Scheduler{slots: slots, queues: make(map[string]*tenantQueue)}
	for _, c := range cfgs {
		s.queues[c.ID] = &tenantQueue{stride: strideFor(c.Weight)}
	}
	if _, ok := s.queues[DefaultID]; !ok {
		s.queues[DefaultID] = &tenantQueue{stride: strideFor(1)}
	}
	return s
}

func strideFor(weight int) uint64 {
	if weight < 1 {
		weight = 1
	}
	if weight > strideScale {
		weight = strideScale
	}
	return strideScale / uint64(weight)
}

// Acquire blocks until the tenant is granted a slot (or the scheduler
// closes). Every caller must pair a successful Acquire with Release.
func (s *Scheduler) Acquire(tenant string) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSchedulerClosed
	}
	q := s.queues[tenant]
	if q == nil {
		q = &tenantQueue{stride: strideFor(1)}
		s.queues[tenant] = q
	}
	if len(q.waiters) == 0 && q.pass < s.vtime {
		// Reactivating after idle: start at the current virtual time so
		// accumulated idleness is not a credit to burn.
		q.pass = s.vtime
	}
	w := &waiter{ch: make(chan struct{})}
	q.waiters = append(q.waiters, w)
	s.dispatch()
	s.mu.Unlock()

	<-w.ch
	s.mu.Lock()
	granted := w.granted
	s.mu.Unlock()
	if !granted {
		return ErrSchedulerClosed
	}
	return nil
}

// Release frees a slot and hands it to the minimum-pass queue, if any.
func (s *Scheduler) Release() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.active > 0 {
		s.active--
	}
	s.dispatch()
	s.mu.Unlock()
}

// dispatch grants free slots to waiters in stride order. Caller holds s.mu.
func (s *Scheduler) dispatch() {
	for s.active < s.slots {
		var best *tenantQueue
		for _, q := range s.queues {
			if len(q.waiters) == 0 {
				continue
			}
			if best == nil || q.pass < best.pass {
				best = q
			}
		}
		if best == nil {
			return
		}
		w := best.waiters[0]
		best.waiters = best.waiters[1:]
		best.pass += best.stride
		s.vtime = best.pass
		s.active++
		w.granted = true
		close(w.ch)
	}
}

// Close wakes every queued waiter with ErrSchedulerClosed and rejects future
// Acquires.
func (s *Scheduler) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, q := range s.queues {
		for _, w := range q.waiters {
			close(w.ch)
		}
		q.waiters = nil
	}
}

// Waiting reports the number of queued (not yet granted) requests, for stats
// and tests.
func (s *Scheduler) Waiting() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, q := range s.queues {
		n += len(q.waiters)
	}
	return n
}

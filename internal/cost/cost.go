// Package cost encodes the cloud storage pricing used throughout the paper
// (Table 4: AWS US-East prices as of 2016) and provides a cost accountant
// that experiments use to attribute storage, request, and network charges to
// storage tiers. The Section 5.3 cold-data savings analysis is implemented
// on top of these tables.
package cost

import (
	"fmt"
	"sort"
	"sync"
)

// TierClass identifies a priced storage service class.
type TierClass string

// Storage service classes from Table 4, plus memory (priced as the
// ElastiCache-style per-GB-hour rate folded into a monthly rate).
const (
	ClassMemory  TierClass = "Memory"    // ElastiCache-style in-memory store
	ClassEBSSSD  TierClass = "EBS (SSD)" // gp2 general purpose
	ClassEBSHDD  TierClass = "EBS (HDD)" // magnetic
	ClassS3      TierClass = "S3"
	ClassS3IA    TierClass = "S3-IA"
	ClassGlacier TierClass = "Glacier"
)

// Pricing holds the unit prices for one storage class.
// Units follow Table 4: storage is $/GB-month, requests are $/10,000
// requests, network is $/GB.
type Pricing struct {
	Class           TierClass
	StorageGBMonth  float64 // $/GB/month provisioned
	PutPer10K       float64 // $/10,000 put requests
	GetPer10K       float64 // $/10,000 get requests
	NetworkIntraDC  float64 // $/GB within a DC
	NetworkToNet    float64 // $/GB out to the Internet
	NetworkInterAWS float64 // $/GB between AWS regions
	DurableNines    int     // informal durability indicator (number of nines)
}

// Table4 reproduces the paper's Table 4 (AWS US-East) verbatim, extended
// with memory and Glacier rows used elsewhere in the paper's narrative.
// The four columns of the printed table correspond to the middle entries.
var Table4 = map[TierClass]Pricing{
	ClassMemory: {
		Class: ClassMemory, StorageGBMonth: 10.50, // t2-class cache node amortized
		PutPer10K: 0, GetPer10K: 0,
		NetworkIntraDC: 0, NetworkToNet: 0.09, NetworkInterAWS: 0.02,
		DurableNines: 0,
	},
	ClassEBSSSD: {
		Class: ClassEBSSSD, StorageGBMonth: 0.10,
		PutPer10K: 0, GetPer10K: 0,
		NetworkIntraDC: 0, NetworkToNet: 0.09, NetworkInterAWS: 0.02,
		DurableNines: 5,
	},
	ClassEBSHDD: {
		Class: ClassEBSHDD, StorageGBMonth: 0.05,
		PutPer10K: 0.0005, GetPer10K: 0.0005,
		NetworkIntraDC: 0, NetworkToNet: 0.09, NetworkInterAWS: 0.02,
		DurableNines: 5,
	},
	ClassS3: {
		Class: ClassS3, StorageGBMonth: 0.03,
		PutPer10K: 0.05, GetPer10K: 0.004,
		NetworkIntraDC: 0, NetworkToNet: 0.09, NetworkInterAWS: 0.02,
		DurableNines: 11,
	},
	ClassS3IA: {
		Class: ClassS3IA, StorageGBMonth: 0.0125,
		PutPer10K: 0.1, GetPer10K: 0.01,
		NetworkIntraDC: 0, NetworkToNet: 0.09, NetworkInterAWS: 0.02,
		DurableNines: 11,
	},
	ClassGlacier: {
		Class: ClassGlacier, StorageGBMonth: 0.007,
		PutPer10K: 0.5, GetPer10K: 0.5,
		NetworkIntraDC: 0, NetworkToNet: 0.09, NetworkInterAWS: 0.02,
		DurableNines: 11,
	},
}

// PriceFor returns the pricing for a class, or an error for unknown classes.
func PriceFor(c TierClass) (Pricing, error) {
	p, ok := Table4[c]
	if !ok {
		return Pricing{}, fmt.Errorf("cost: no pricing for tier class %q", c)
	}
	return p, nil
}

// StorageMonthly returns the monthly cost of keeping gb gigabytes
// provisioned on class c.
func StorageMonthly(c TierClass, gb float64) (float64, error) {
	p, err := PriceFor(c)
	if err != nil {
		return 0, err
	}
	return p.StorageGBMonth * gb, nil
}

// PutRequestCost returns the price of a single put request against class c
// (0 for unknown classes). Per-request pricing lets the flight recorder
// attribute dollars to individual hops without the accountant's locking.
func PutRequestCost(c TierClass) float64 {
	p, ok := Table4[c]
	if !ok {
		return 0
	}
	return p.PutPer10K / 10000
}

// GetRequestCost returns the price of a single get request against class c
// (0 for unknown classes).
func GetRequestCost(c TierClass) float64 {
	p, ok := Table4[c]
	if !ok {
		return 0
	}
	return p.GetPer10K / 10000
}

// TransferCost returns the price of moving bytes out of class c within the
// given scope (0 for unknown classes or scopes).
func TransferCost(c TierClass, scope NetScope, bytes int64) float64 {
	p, ok := Table4[c]
	if !ok || bytes <= 0 {
		return 0
	}
	var rate float64
	switch scope {
	case NetIntraDC:
		rate = p.NetworkIntraDC
	case NetInterAWS:
		rate = p.NetworkInterAWS
	case NetInternet:
		rate = p.NetworkToNet
	}
	return rate * float64(bytes) / (1 << 30)
}

// NetScope classifies a transfer destination for pricing.
type NetScope int

// Transfer scopes from Table 4.
const (
	NetIntraDC  NetScope = iota // within one data center: free
	NetInterAWS                 // between AWS regions
	NetInternet                 // out to the Internet / other providers
)

// String returns the scope name.
func (s NetScope) String() string {
	switch s {
	case NetIntraDC:
		return "intra-DC"
	case NetInterAWS:
		return "inter-AWS"
	case NetInternet:
		return "internet"
	default:
		return fmt.Sprintf("NetScope(%d)", int(s))
	}
}

// Accountant accumulates charges per tier class. Safe for concurrent use.
type Accountant struct {
	mu       sync.Mutex
	storage  map[TierClass]float64 // $ for provisioned storage
	requests map[TierClass]float64 // $ for put/get requests
	network  map[TierClass]float64 // $ for outbound transfer
	putOps   map[TierClass]int64
	getOps   map[TierClass]int64
	egressGB map[TierClass]float64
}

// NewAccountant returns an empty accountant.
func NewAccountant() *Accountant {
	return &Accountant{
		storage:  make(map[TierClass]float64),
		requests: make(map[TierClass]float64),
		network:  make(map[TierClass]float64),
		putOps:   make(map[TierClass]int64),
		getOps:   make(map[TierClass]int64),
		egressGB: make(map[TierClass]float64),
	}
}

// ChargeStorage records months of provisioned storage of gb gigabytes on c.
func (a *Accountant) ChargeStorage(c TierClass, gb, months float64) error {
	p, err := PriceFor(c)
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.storage[c] += p.StorageGBMonth * gb * months
	a.mu.Unlock()
	return nil
}

// ChargePut records n put requests against class c.
func (a *Accountant) ChargePut(c TierClass, n int64) error {
	p, err := PriceFor(c)
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.putOps[c] += n
	a.requests[c] += p.PutPer10K * float64(n) / 10000
	a.mu.Unlock()
	return nil
}

// ChargeGet records n get requests against class c.
func (a *Accountant) ChargeGet(c TierClass, n int64) error {
	p, err := PriceFor(c)
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.getOps[c] += n
	a.requests[c] += p.GetPer10K * float64(n) / 10000
	a.mu.Unlock()
	return nil
}

// ChargeNetwork records gb gigabytes of outbound transfer from class c
// within the given scope.
func (a *Accountant) ChargeNetwork(c TierClass, gb float64, scope NetScope) error {
	p, err := PriceFor(c)
	if err != nil {
		return err
	}
	var rate float64
	switch scope {
	case NetIntraDC:
		rate = p.NetworkIntraDC
	case NetInterAWS:
		rate = p.NetworkInterAWS
	case NetInternet:
		rate = p.NetworkToNet
	default:
		return fmt.Errorf("cost: unknown network scope %v", scope)
	}
	a.mu.Lock()
	a.egressGB[c] += gb
	a.network[c] += rate * gb
	a.mu.Unlock()
	return nil
}

// Totals summarizes accumulated charges.
type Totals struct {
	Storage  float64
	Requests float64
	Network  float64
}

// Total returns Storage+Requests+Network.
func (t Totals) Total() float64 { return t.Storage + t.Requests + t.Network }

// Totals returns the aggregate charges across all classes.
func (a *Accountant) Totals() Totals {
	a.mu.Lock()
	defer a.mu.Unlock()
	var t Totals
	for _, v := range a.storage {
		t.Storage += v
	}
	for _, v := range a.requests {
		t.Requests += v
	}
	for _, v := range a.network {
		t.Network += v
	}
	return t
}

// ByClass returns the per-class totals for every class with any charge,
// sorted by class name for stable output.
func (a *Accountant) ByClass() []ClassTotals {
	a.mu.Lock()
	defer a.mu.Unlock()
	seen := map[TierClass]bool{}
	for c := range a.storage {
		seen[c] = true
	}
	for c := range a.requests {
		seen[c] = true
	}
	for c := range a.network {
		seen[c] = true
	}
	out := make([]ClassTotals, 0, len(seen))
	for c := range seen {
		out = append(out, ClassTotals{
			Class:    c,
			Totals:   Totals{Storage: a.storage[c], Requests: a.requests[c], Network: a.network[c]},
			PutOps:   a.putOps[c],
			GetOps:   a.getOps[c],
			EgressGB: a.egressGB[c],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// ClassTotals is the per-class view of accumulated charges.
type ClassTotals struct {
	Class    TierClass
	Totals   Totals
	PutOps   int64
	GetOps   int64
	EgressGB float64
}

// ColdDataSavings computes the Section 5.3 analysis: moving coldGB of data
// from hot class to cold class saves the storage-price difference per month.
func ColdDataSavings(hot, cold TierClass, coldGB float64) (float64, error) {
	hp, err := PriceFor(hot)
	if err != nil {
		return 0, err
	}
	cp, err := PriceFor(cold)
	if err != nil {
		return 0, err
	}
	return (hp.StorageGBMonth - cp.StorageGBMonth) * coldGB, nil
}

// CentralizedSavings computes the additional Section 5.3 saving from
// keeping a single cold replica in one central region instead of one per
// region: (regions-1) replicas of coldGB on class c are no longer stored.
func CentralizedSavings(c TierClass, coldGB float64, regions int) (float64, error) {
	if regions < 1 {
		return 0, fmt.Errorf("cost: regions must be >= 1, got %d", regions)
	}
	p, err := PriceFor(c)
	if err != nil {
		return 0, err
	}
	return p.StorageGBMonth * coldGB * float64(regions-1), nil
}

package cost

import (
	"math"
	"sync"
	"testing"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestTable4Verbatim(t *testing.T) {
	// The paper's Table 4 numbers, verbatim.
	cases := []struct {
		class   TierClass
		storage float64
		put     float64
		get     float64
	}{
		{ClassEBSSSD, 0.10, 0, 0},
		{ClassEBSHDD, 0.05, 0.0005, 0.0005},
		{ClassS3, 0.03, 0.05, 0.004},
		{ClassS3IA, 0.0125, 0.1, 0.01},
	}
	for _, c := range cases {
		p, err := PriceFor(c.class)
		if err != nil {
			t.Fatalf("PriceFor(%s): %v", c.class, err)
		}
		if !almostEqual(p.StorageGBMonth, c.storage) {
			t.Errorf("%s storage = %v, want %v", c.class, p.StorageGBMonth, c.storage)
		}
		if !almostEqual(p.PutPer10K, c.put) {
			t.Errorf("%s put = %v, want %v", c.class, p.PutPer10K, c.put)
		}
		if !almostEqual(p.GetPer10K, c.get) {
			t.Errorf("%s get = %v, want %v", c.class, p.GetPer10K, c.get)
		}
		if !almostEqual(p.NetworkIntraDC, 0) {
			t.Errorf("%s intra-DC network should be free", c.class)
		}
		if !almostEqual(p.NetworkToNet, 0.09) {
			t.Errorf("%s internet egress = %v, want 0.09", c.class, p.NetworkToNet)
		}
	}
}

func TestPriceForUnknown(t *testing.T) {
	if _, err := PriceFor("Floppy"); err == nil {
		t.Fatal("PriceFor unknown class should error")
	}
}

func TestStorageMonthly(t *testing.T) {
	got, err := StorageMonthly(ClassEBSSSD, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 10.0) {
		t.Fatalf("100GB SSD monthly = %v, want 10", got)
	}
	if _, err := StorageMonthly("nope", 1); err == nil {
		t.Fatal("want error for unknown class")
	}
}

// The paper (Sec 5.3): 8TB cold data moved from EBS to S3-IA saves $700/mo
// (from SSD) or $300/mo (from HDD) per instance.
func TestColdDataSavingsPaperNumbers(t *testing.T) {
	coldGB := 8.0 * 1024 // paper speaks of 8TB of a 10TB dataset
	// The paper rounds 8TB to 8000GB in its arithmetic:
	coldGB = 8000
	fromSSD, err := ColdDataSavings(ClassEBSSSD, ClassS3IA, coldGB)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fromSSD, 700.0) {
		t.Fatalf("SSD->S3IA savings = %v, want 700", fromSSD)
	}
	fromHDD, err := ColdDataSavings(ClassEBSHDD, ClassS3IA, coldGB)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fromHDD, 300.0) {
		t.Fatalf("HDD->S3IA savings = %v, want 300", fromHDD)
	}
}

// The paper: centralizing cold data saves $100 per non-central region, $300
// total with 4 regions (3 replicas dropped × 8000GB × $0.0125).
func TestCentralizedSavingsPaperNumbers(t *testing.T) {
	got, err := CentralizedSavings(ClassS3IA, 8000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 300.0) {
		t.Fatalf("centralized savings = %v, want 300", got)
	}
}

func TestCentralizedSavingsValidation(t *testing.T) {
	if _, err := CentralizedSavings(ClassS3IA, 1, 0); err == nil {
		t.Fatal("regions=0 should error")
	}
	got, err := CentralizedSavings(ClassS3IA, 100, 1)
	if err != nil || got != 0 {
		t.Fatalf("1 region should save 0, got %v, %v", got, err)
	}
}

func TestColdDataSavingsUnknownClass(t *testing.T) {
	if _, err := ColdDataSavings("x", ClassS3, 1); err == nil {
		t.Fatal("unknown hot class should error")
	}
	if _, err := ColdDataSavings(ClassS3, "x", 1); err == nil {
		t.Fatal("unknown cold class should error")
	}
}

func TestAccountantStorage(t *testing.T) {
	a := NewAccountant()
	if err := a.ChargeStorage(ClassS3, 1000, 2); err != nil {
		t.Fatal(err)
	}
	tot := a.Totals()
	if !almostEqual(tot.Storage, 60.0) { // 1000GB * $0.03 * 2 months
		t.Fatalf("storage total = %v, want 60", tot.Storage)
	}
}

func TestAccountantRequests(t *testing.T) {
	a := NewAccountant()
	if err := a.ChargePut(ClassS3, 100000); err != nil { // 10 units of 10k
		t.Fatal(err)
	}
	if err := a.ChargeGet(ClassS3, 100000); err != nil {
		t.Fatal(err)
	}
	tot := a.Totals()
	want := 10*0.05 + 10*0.004
	if !almostEqual(tot.Requests, want) {
		t.Fatalf("requests total = %v, want %v", tot.Requests, want)
	}
}

func TestAccountantNetworkScopes(t *testing.T) {
	a := NewAccountant()
	if err := a.ChargeNetwork(ClassS3, 10, NetIntraDC); err != nil {
		t.Fatal(err)
	}
	if a.Totals().Network != 0 {
		t.Fatal("intra-DC transfer should be free")
	}
	if err := a.ChargeNetwork(ClassS3, 10, NetInterAWS); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a.Totals().Network, 0.2) {
		t.Fatalf("inter-AWS = %v, want 0.2", a.Totals().Network)
	}
	if err := a.ChargeNetwork(ClassS3, 10, NetInternet); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a.Totals().Network, 0.2+0.9) {
		t.Fatalf("after internet = %v, want 1.1", a.Totals().Network)
	}
	if err := a.ChargeNetwork(ClassS3, 1, NetScope(99)); err == nil {
		t.Fatal("unknown scope should error")
	}
}

func TestAccountantUnknownClass(t *testing.T) {
	a := NewAccountant()
	if err := a.ChargeStorage("x", 1, 1); err == nil {
		t.Fatal("want error")
	}
	if err := a.ChargePut("x", 1); err == nil {
		t.Fatal("want error")
	}
	if err := a.ChargeGet("x", 1); err == nil {
		t.Fatal("want error")
	}
	if err := a.ChargeNetwork("x", 1, NetInternet); err == nil {
		t.Fatal("want error")
	}
}

func TestAccountantByClass(t *testing.T) {
	a := NewAccountant()
	_ = a.ChargeStorage(ClassS3, 100, 1)
	_ = a.ChargePut(ClassEBSHDD, 20000)
	_ = a.ChargeNetwork(ClassS3IA, 5, NetInternet)
	rows := a.ByClass()
	if len(rows) != 3 {
		t.Fatalf("ByClass rows = %d, want 3", len(rows))
	}
	// Sorted by class name: EBS (HDD) < S3 < S3-IA.
	if rows[0].Class != ClassEBSHDD || rows[1].Class != ClassS3 || rows[2].Class != ClassS3IA {
		t.Fatalf("ByClass order = %v %v %v", rows[0].Class, rows[1].Class, rows[2].Class)
	}
	if rows[0].PutOps != 20000 {
		t.Fatalf("PutOps = %d", rows[0].PutOps)
	}
	if !almostEqual(rows[2].EgressGB, 5) {
		t.Fatalf("EgressGB = %v", rows[2].EgressGB)
	}
}

func TestTotalsTotal(t *testing.T) {
	tt := Totals{Storage: 1, Requests: 2, Network: 3}
	if tt.Total() != 6 {
		t.Fatalf("Total = %v", tt.Total())
	}
}

func TestNetScopeString(t *testing.T) {
	if NetIntraDC.String() != "intra-DC" || NetInterAWS.String() != "inter-AWS" || NetInternet.String() != "internet" {
		t.Fatal("scope strings wrong")
	}
	if NetScope(42).String() == "" {
		t.Fatal("unknown scope should still stringify")
	}
}

func TestAccountantConcurrent(t *testing.T) {
	a := NewAccountant()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				_ = a.ChargePut(ClassS3, 1)
				_ = a.ChargeGet(ClassS3, 1)
			}
		}()
	}
	wg.Wait()
	rows := a.ByClass()
	if len(rows) != 1 || rows[0].PutOps != 4000 || rows[0].GetOps != 4000 {
		t.Fatalf("concurrent accounting lost ops: %+v", rows)
	}
}

func TestGlacierCheaperThanS3IA(t *testing.T) {
	g, _ := PriceFor(ClassGlacier)
	ia, _ := PriceFor(ClassS3IA)
	if g.StorageGBMonth >= ia.StorageGBMonth {
		t.Fatal("Glacier should be cheaper than S3-IA per GB-month")
	}
	if g.GetPer10K <= ia.GetPer10K {
		t.Fatal("Glacier retrieval should cost more than S3-IA")
	}
}

// Package sysbench reimplements the SysBench fileio benchmark the paper
// runs in Sec 5.4.1 (Fig 11): prepare a set of files, then issue random
// reads/writes of a fixed block size from a pool of worker threads, and
// report IOPS. The file system under test is internal/wfs, whose backend
// is either a local (throttled) disk tier or remote memory through Wiera —
// the two bars of Fig 11. No page cache exists in wfs, matching the
// paper's O_DIRECT setting.
package sysbench

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/stats"
	"repro/internal/wfs"
)

// Mode selects the I/O mix.
type Mode string

// SysBench fileio modes.
const (
	RndRead  Mode = "rndrd"
	RndWrite Mode = "rndwr"
	RndRW    Mode = "rndrw" // 60/40 read/write split, SysBench's default
)

// Config parameterizes a run.
type Config struct {
	// FS is the file system under test.
	FS *wfs.FS
	// Clock measures the run in simulated time (IOPS are clock-relative).
	Clock clock.Clock
	// Files and FileSize shape the prepared data set.
	Files    int
	FileSize int64
	// BlockSize is the I/O unit (SysBench default 16 KiB).
	BlockSize int
	// Threads is the worker pool size (SysBench default 1; the paper's
	// runs use concurrency to expose throughput limits).
	Threads int
	// Ops is the total operation count across all threads.
	Ops int
	// Mode is the I/O mix.
	Mode Mode
	// Seed makes runs reproducible.
	Seed int64
}

func (c *Config) defaults() error {
	if c.FS == nil {
		return errors.New("sysbench: FS required")
	}
	if c.Clock == nil {
		return errors.New("sysbench: clock required")
	}
	if c.Files <= 0 {
		c.Files = 4
	}
	if c.FileSize <= 0 {
		c.FileSize = 1 << 20
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 16 * 1024
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Ops <= 0 {
		c.Ops = 1000
	}
	switch c.Mode {
	case RndRead, RndWrite, RndRW:
	case "":
		c.Mode = RndRead
	default:
		return fmt.Errorf("sysbench: unknown mode %q", c.Mode)
	}
	return nil
}

// Result summarizes a run.
type Result struct {
	Ops      int
	Duration time.Duration // clock time
	IOPS     float64
	ReadLat  *stats.Histogram
	WriteLat *stats.Histogram
	Errors   int64
}

// Prepare creates the test files (the "sysbench prepare" phase).
func Prepare(cfg Config) error {
	if err := cfg.defaults(); err != nil {
		return err
	}
	buf := make([]byte, cfg.BlockSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	for i := 0; i < cfg.Files; i++ {
		f, err := cfg.FS.Create(fileName(i))
		if err != nil {
			return err
		}
		var off int64
		for off < cfg.FileSize {
			n := int64(len(buf))
			if off+n > cfg.FileSize {
				n = cfg.FileSize - off
			}
			if _, err := f.WriteAt(buf[:n], off); err != nil {
				f.Close()
				return err
			}
			off += n
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func fileName(i int) string { return fmt.Sprintf("/sysbench/test_file.%d", i) }

// Run executes the benchmark (files must be prepared) and reports IOPS
// measured on the simulated clock.
func Run(cfg Config) (*Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	files := make([]*wfs.File, cfg.Files)
	for i := range files {
		f, err := cfg.FS.Open(fileName(i))
		if err != nil {
			return nil, fmt.Errorf("sysbench: run before prepare: %w", err)
		}
		files[i] = f
	}
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()

	res := &Result{ReadLat: stats.NewHistogram(), WriteLat: stats.NewHistogram()}
	var errCount stats.Counter
	blocksPerFile := cfg.FileSize / int64(cfg.BlockSize)
	if blocksPerFile == 0 {
		return nil, errors.New("sysbench: file smaller than block size")
	}

	start := cfg.Clock.Now()
	var wg sync.WaitGroup
	perThread := cfg.Ops / cfg.Threads
	extra := cfg.Ops % cfg.Threads
	for th := 0; th < cfg.Threads; th++ {
		ops := perThread
		if th < extra {
			ops++
		}
		wg.Add(1)
		go func(th, ops int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(th)))
			block := make([]byte, cfg.BlockSize)
			for i := range block {
				block[i] = byte(th + i)
			}
			buf := make([]byte, cfg.BlockSize)
			for i := 0; i < ops; i++ {
				f := files[rng.Intn(len(files))]
				off := rng.Int63n(blocksPerFile) * int64(cfg.BlockSize)
				write := false
				switch cfg.Mode {
				case RndWrite:
					write = true
				case RndRW:
					write = rng.Float64() < 0.4
				}
				opStart := cfg.Clock.Now()
				var err error
				if write {
					_, err = f.WriteAt(block, off)
					if err == nil {
						res.WriteLat.Record(cfg.Clock.Since(opStart))
					}
				} else {
					_, err = f.ReadAt(buf, off)
					if err == nil {
						res.ReadLat.Record(cfg.Clock.Since(opStart))
					}
				}
				if err != nil {
					errCount.Inc()
				}
			}
		}(th, ops)
	}
	wg.Wait()
	res.Duration = cfg.Clock.Since(start)
	res.Ops = cfg.Ops
	res.Errors = errCount.Value()
	if res.Duration > 0 {
		res.IOPS = float64(cfg.Ops-int(res.Errors)) / res.Duration.Seconds()
	}
	return res, nil
}

package sysbench

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/policy"
	"repro/internal/simnet"
	"repro/internal/tiera"
	"repro/internal/wfs"
)

func mapFS() *wfs.FS { return wfs.New(wfs.NewMapBackend(), wfs.WithBlockSize(4096)) }

func TestDefaultsValidation(t *testing.T) {
	cfg := Config{}
	if err := cfg.defaults(); err == nil {
		t.Fatal("missing FS should fail")
	}
	cfg = Config{FS: mapFS()}
	if err := cfg.defaults(); err == nil {
		t.Fatal("missing clock should fail")
	}
	cfg = Config{FS: mapFS(), Clock: clock.Real{}, Mode: "seqwr"}
	if err := cfg.defaults(); err == nil {
		t.Fatal("unknown mode should fail")
	}
	cfg = Config{FS: mapFS(), Clock: clock.Real{}}
	if err := cfg.defaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.Mode != RndRead || cfg.Threads != 1 || cfg.BlockSize != 16*1024 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestPrepareAndRunModes(t *testing.T) {
	for _, mode := range []Mode{RndRead, RndWrite, RndRW} {
		fs := mapFS()
		cfg := Config{
			FS: fs, Clock: clock.Real{}, Files: 2, FileSize: 64 * 1024,
			BlockSize: 4096, Threads: 4, Ops: 200, Mode: mode, Seed: 1,
		}
		if err := Prepare(cfg); err != nil {
			t.Fatalf("%s prepare: %v", mode, err)
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s run: %v", mode, err)
		}
		if res.Errors != 0 {
			t.Fatalf("%s errors = %d", mode, res.Errors)
		}
		if res.IOPS <= 0 {
			t.Fatalf("%s IOPS = %v", mode, res.IOPS)
		}
		switch mode {
		case RndRead:
			if res.ReadLat.Count() != 200 || res.WriteLat.Count() != 0 {
				t.Fatalf("%s op split = %d/%d", mode, res.ReadLat.Count(), res.WriteLat.Count())
			}
		case RndWrite:
			if res.WriteLat.Count() != 200 {
				t.Fatalf("%s writes = %d", mode, res.WriteLat.Count())
			}
		case RndRW:
			if res.ReadLat.Count() == 0 || res.WriteLat.Count() == 0 {
				t.Fatalf("%s op split = %d/%d", mode, res.ReadLat.Count(), res.WriteLat.Count())
			}
		}
	}
}

func TestRunBeforePrepareFails(t *testing.T) {
	cfg := Config{FS: mapFS(), Clock: clock.Real{}, Files: 1, FileSize: 8192, BlockSize: 4096}
	if _, err := Run(cfg); err == nil {
		t.Fatal("run before prepare should fail")
	}
}

func TestFileSmallerThanBlock(t *testing.T) {
	cfg := Config{FS: mapFS(), Clock: clock.Real{}, Files: 1, FileSize: 100, BlockSize: 4096}
	if err := Prepare(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("undersized file should fail")
	}
}

// The 500-IOPS disk cap must bound measured IOPS — the flat Azure line of
// Fig 11, exercised end to end through the policy-built tier.
func TestIOPSCapBoundsThroughput(t *testing.T) {
	src := `
Tiera AzureDisk {
	tier1: {name: ebs-ssd, size: 1G, iops: 500};
}`
	spec, err := policy.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	clk := clock.NewSim(time.Time{})
	stop := clk.AutoAdvance(50 * time.Microsecond)
	defer stop()
	inst, err := tiera.New(tiera.Config{Name: "disk", Region: simnet.AzureUSEast, Spec: spec, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	fs := wfs.New(wfs.TieraBackend{Inst: inst}, wfs.WithBlockSize(16*1024))
	cfg := Config{
		FS: fs, Clock: clk, Files: 2, FileSize: 256 * 1024,
		BlockSize: 16 * 1024, Threads: 8, Ops: 300, Mode: RndRead, Seed: 7,
	}
	if err := Prepare(cfg); err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The cap admits 500 ops/sec of simulated time.
	if res.IOPS > 550 || res.IOPS < 350 {
		t.Fatalf("IOPS = %.0f, want ~500 (capped)", res.IOPS)
	}
}

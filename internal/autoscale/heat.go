// Package autoscale closes the loop the paper leaves open: instances that
// detect pressure (SLO burn, ring imbalance, queue depth) and adapt
// capacity themselves. It contributes two building blocks: a decaying
// per-key access sketch (Sketch) every worker maintains to find its hot
// keys, and a hysteresis controller (Controller) that consumes aggregated
// signals and grows or shrinks a worker pool one rebalance at a time —
// the shape Anna's policy engine gives elastic KV stores, applied to
// Wiera's worker pools and selective hot-key replication.
package autoscale

import (
	"sort"
	"sync"
)

// Sketch defaults: 4 rows x 512 counters bounds the count-min error at
// roughly 2e/512 of the total observed weight with 98% confidence, and 32
// tracked keys is far above any realistic hot set under zipfian skew.
const (
	DefaultSketchRows = 4
	DefaultSketchCols = 512
	DefaultTopK       = 32
)

// HeatEntry is one tracked key with its decayed access rate estimate.
type HeatEntry struct {
	Key  string
	Rate float64
}

// SketchConfig sizes a Sketch. Zero fields take the defaults.
type SketchConfig struct {
	Rows int // count-min depth (independent hash rows)
	Cols int // counters per row
	TopK int // keys kept exactly in the top set
}

// Sketch is a decaying count-min sketch with an exact top-K overlay: a
// space-bounded per-key access-rate estimator. Observe charges one access
// to the key; Decay multiplies every counter by a factor < 1, so the
// estimates converge on an exponentially weighted access rate rather than
// an all-time count — a key that was hot yesterday and idle today decays
// back out of the top set. Rows use float64 counters precisely so decay
// loses nothing to integer truncation.
//
// All methods are safe for concurrent use. The mutex is uncontended in
// practice (observation is a few array writes), which is cheap enough for
// the data path of a store whose ops cost milliseconds.
type Sketch struct {
	mu   sync.Mutex
	rows [][]float64
	topK int
	top  map[string]float64 // exact decayed counts for the tracked keys
}

// NewSketch builds a sketch with the given geometry.
func NewSketch(cfg SketchConfig) *Sketch {
	if cfg.Rows <= 0 {
		cfg.Rows = DefaultSketchRows
	}
	if cfg.Cols <= 0 {
		cfg.Cols = DefaultSketchCols
	}
	if cfg.TopK <= 0 {
		cfg.TopK = DefaultTopK
	}
	s := &Sketch{topK: cfg.TopK, top: make(map[string]float64)}
	s.rows = make([][]float64, cfg.Rows)
	for i := range s.rows {
		s.rows[i] = make([]float64, cfg.Cols)
	}
	return s
}

// hash is FNV-1a with a per-row seed, giving the independent hash
// functions count-min needs without importing hash/fnv per call.
func (s *Sketch) hash(row int, key string) int {
	h := uint64(14695981039346656037) ^ (uint64(row+1) * 0x9e3779b97f4a7c15)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h % uint64(len(s.rows[row])))
}

// Observe charges one access to key.
func (s *Sketch) Observe(key string) { s.ObserveN(key, 1) }

// ObserveN charges n accesses to key.
func (s *Sketch) ObserveN(key string, n float64) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	est := n
	for row := range s.rows {
		c := &s.rows[row][s.hash(row, key)]
		*c += n
		if row == 0 || *c < est {
			est = *c
		}
	}
	// est is the count-min estimate (min over rows) after the update.
	if _, tracked := s.top[key]; tracked {
		s.top[key] = est
		return
	}
	if len(s.top) < s.topK {
		s.top[key] = est
		return
	}
	// Evict the coldest tracked key when the newcomer overtakes it.
	minKey, minVal := "", 0.0
	first := true
	for k, v := range s.top {
		if first || v < minVal {
			minKey, minVal, first = k, v, false
		}
	}
	if est > minVal {
		delete(s.top, minKey)
		s.top[key] = est
	}
}

// Estimate returns the decayed access-rate estimate for key: exact for
// tracked keys, the count-min upper bound otherwise.
func (s *Sketch) Estimate(key string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.top[key]; ok {
		return v
	}
	est := 0.0
	for row := range s.rows {
		c := s.rows[row][s.hash(row, key)]
		if row == 0 || c < est {
			est = c
		}
	}
	return est
}

// Decay multiplies every counter by factor (0 < factor < 1), aging the
// sketch toward an exponentially weighted rate. Tracked keys whose decayed
// estimate drops below floor are dropped from the top set entirely.
func (s *Sketch) Decay(factor, floor float64) {
	if factor <= 0 || factor >= 1 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, row := range s.rows {
		for i := range row {
			row[i] *= factor
		}
	}
	for k, v := range s.top {
		v *= factor
		if v < floor {
			delete(s.top, k)
			continue
		}
		s.top[k] = v
	}
}

// Top returns up to k tracked keys, hottest first.
func (s *Sketch) Top(k int) []HeatEntry {
	s.mu.Lock()
	out := make([]HeatEntry, 0, len(s.top))
	for key, v := range s.top {
		out = append(out, HeatEntry{Key: key, Rate: v})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rate != out[j].Rate {
			return out[i].Rate > out[j].Rate
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Tracked reports how many keys the exact top set currently holds.
func (s *Sketch) Tracked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.top)
}

// Reset zeroes the sketch.
func (s *Sketch) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, row := range s.rows {
		for i := range row {
			row[i] = 0
		}
	}
	s.top = make(map[string]float64)
}

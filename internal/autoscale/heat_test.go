package autoscale

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestSketchEstimate: heavy hitters come back with (near-)exact counts;
// an unseen key's count-min upper bound stays small next to them.
func TestSketchEstimate(t *testing.T) {
	s := NewSketch(SketchConfig{})
	for i := 0; i < 100; i++ {
		s.Observe("hot")
	}
	for i := 0; i < 10; i++ {
		s.Observe("warm")
	}
	// Background noise spread over many keys.
	for i := 0; i < 200; i++ {
		s.Observe(fmt.Sprintf("cold-%03d", i))
	}
	if got := s.Estimate("hot"); got < 100 {
		t.Fatalf("hot estimate %.1f, want >= 100 (count-min never undercounts)", got)
	}
	if got := s.Estimate("hot"); got > 110 {
		t.Fatalf("hot estimate %.1f, want near 100", got)
	}
	if got := s.Estimate("warm"); got < 10 || got > 20 {
		t.Fatalf("warm estimate %.1f, want ~10", got)
	}
	if got := s.Estimate("never-seen"); got > 5 {
		t.Fatalf("unseen key estimate %.1f, want near 0", got)
	}
}

// TestSketchDecay: decay ages counts toward zero and drops tracked keys
// that fall below the floor, so yesterday's hot key leaves the top set.
func TestSketchDecay(t *testing.T) {
	s := NewSketch(SketchConfig{})
	for i := 0; i < 64; i++ {
		s.Observe("fading")
	}
	if got := s.Estimate("fading"); got < 64 {
		t.Fatalf("estimate %.1f before decay, want >= 64", got)
	}
	s.Decay(0.5, 1.0)
	if got := s.Estimate("fading"); got < 30 || got > 34 {
		t.Fatalf("estimate %.1f after one half-life, want ~32", got)
	}
	// Six more half-lives take 32 down to 0.5 < floor 1.0: dropped.
	for i := 0; i < 6; i++ {
		s.Decay(0.5, 1.0)
	}
	if s.Tracked() != 0 {
		t.Fatalf("tracked %d after decay below floor, want 0", s.Tracked())
	}
	// Decay must reject degenerate factors rather than corrupt state.
	s.Observe("k")
	s.Decay(0, 1)
	s.Decay(1.5, 1)
	if got := s.Estimate("k"); got != 1 {
		t.Fatalf("estimate %.1f after no-op decays, want 1", got)
	}
}

// TestSketchTopK: the overlay keeps the genuinely hottest keys in order
// and evicts the coldest tracked key when a newcomer overtakes it.
func TestSketchTopK(t *testing.T) {
	s := NewSketch(SketchConfig{TopK: 4})
	weights := map[string]int{"a": 50, "b": 40, "c": 30, "d": 20, "e": 10}
	// Interleave so eviction logic is exercised, not just initial fill.
	rng := rand.New(rand.NewSource(1))
	var stream []string
	for k, n := range weights {
		for i := 0; i < n; i++ {
			stream = append(stream, k)
		}
	}
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	for _, k := range stream {
		s.Observe(k)
	}
	top := s.Top(0)
	if len(top) != 4 {
		t.Fatalf("tracked %d keys, want 4", len(top))
	}
	want := []string{"a", "b", "c", "d"}
	for i, entry := range top {
		if entry.Key != want[i] {
			t.Fatalf("top[%d] = %q (%.0f), want %q; full: %v", i, entry.Key, entry.Rate, want[i], top)
		}
	}
	if top2 := s.Top(2); len(top2) != 2 || top2[0].Key != "a" {
		t.Fatalf("Top(2) = %v, want [a b]", top2)
	}
}

// TestSketchReset zeroes counters and the top set.
func TestSketchReset(t *testing.T) {
	s := NewSketch(SketchConfig{})
	for i := 0; i < 10; i++ {
		s.Observe("k")
	}
	s.Reset()
	if s.Tracked() != 0 {
		t.Fatalf("tracked %d after reset, want 0", s.Tracked())
	}
	if got := s.Estimate("k"); got != 0 {
		t.Fatalf("estimate %.1f after reset, want 0", got)
	}
}

// TestSketchConcurrent drives observers and decayers in parallel under
// -race; correctness of values is covered elsewhere.
func TestSketchConcurrent(t *testing.T) {
	s := NewSketch(SketchConfig{})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				s.Observe(fmt.Sprintf("key-%d-%d", g, i%17))
				if i%100 == 0 {
					s.Decay(0.9, 0.01)
					s.Top(8)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if s.Tracked() == 0 {
		t.Fatal("expected some tracked keys after concurrent load")
	}
}

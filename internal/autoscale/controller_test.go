package autoscale

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

// fakeSource hands back a mutable Signals snapshot. The mutex matters only
// for the Start/Stop test, where the loop goroutine reads concurrently.
type fakeSource struct {
	mu  sync.Mutex
	sig Signals
	err error
}

func (f *fakeSource) Signals() (Signals, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sig, f.err
}

// fakeActuator records grow/shrink calls, mutating the source's worker
// count to mimic a real rebalance, and can fail with a canned error.
type fakeActuator struct {
	src     *fakeSource
	mu      sync.Mutex
	grown   int
	shrunk  int
	nextErr error
}

func (f *fakeActuator) counts() (grown, shrunk int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.grown, f.shrunk
}

func (f *fakeActuator) Grow() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.nextErr; err != nil {
		f.nextErr = nil
		return err
	}
	f.grown++
	f.src.mu.Lock()
	f.src.sig.Workers++
	f.src.mu.Unlock()
	return nil
}

func (f *fakeActuator) Shrink() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.nextErr; err != nil {
		f.nextErr = nil
		return err
	}
	f.shrunk++
	f.src.mu.Lock()
	f.src.sig.Workers--
	f.src.mu.Unlock()
	return nil
}

// harness wires a controller to fakes over a sim clock, with TickNow-driven
// deterministic evaluation (the loop is never started).
func harness(workers int) (*Controller, *fakeSource, *fakeActuator, *clock.Sim) {
	clk := clock.NewSim(time.Time{})
	src := &fakeSource{sig: Signals{Workers: workers}}
	act := &fakeActuator{src: src}
	c := New(Config{
		Clock:              clk,
		MinWorkers:         2,
		MaxWorkers:         5,
		CoolDown:           10 * time.Second,
		GrowOpsPerWorker:   100,
		ShrinkOpsPerWorker: 50,
		GrowStreak:         2,
		ShrinkStreak:       3,
		Source:             src,
		Actuator:           act,
		Blocked: func(err error) bool {
			return err != nil && err.Error() == "blocked"
		},
	})
	return c, src, act, clk
}

// TestControllerGrowsUnderLoad: sustained over-watermark throughput grows
// the pool after GrowStreak ticks, not on the first spike.
func TestControllerGrowsUnderLoad(t *testing.T) {
	c, src, act, _ := harness(2)
	src.sig.OpsPerSec = 400 // 200/worker > 100 watermark
	if got := c.TickNow(); got != "" {
		t.Fatalf("tick 1 acted %q, want streak to hold it back", got)
	}
	if got := c.TickNow(); got != "grow" {
		t.Fatalf("tick 2 = %q, want grow", got)
	}
	if act.grown != 1 || src.sig.Workers != 3 {
		t.Fatalf("grown=%d workers=%d, want 1 grow to 3 workers", act.grown, src.sig.Workers)
	}
}

// TestControllerSLOFiringGrows: a firing SLO alone (no throughput term)
// drives growth.
func TestControllerSLOFiringGrows(t *testing.T) {
	c, src, act, _ := harness(2)
	src.sig.Firing = true
	c.TickNow()
	if got := c.TickNow(); got != "grow" {
		t.Fatalf("tick 2 = %q, want grow on firing SLO", got)
	}
	if act.grown != 1 {
		t.Fatalf("grown=%d, want 1", act.grown)
	}
}

// TestControllerShrinksWhenIdle: sustained under-watermark load shrinks
// after ShrinkStreak ticks, and never while the SLO fires.
func TestControllerShrinksWhenIdle(t *testing.T) {
	c, src, act, _ := harness(4)
	src.sig.OpsPerSec = 40 // 10/worker < 50 watermark
	for i := 0; i < 2; i++ {
		if got := c.TickNow(); got != "" {
			t.Fatalf("tick %d acted %q before streak filled", i+1, got)
		}
	}
	if got := c.TickNow(); got != "shrink" {
		t.Fatalf("tick 3 = %q, want shrink", got)
	}
	if act.shrunk != 1 || src.sig.Workers != 3 {
		t.Fatalf("shrunk=%d workers=%d, want 1 shrink to 3", act.shrunk, src.sig.Workers)
	}
	// A firing SLO vetoes shrink even at idle throughput.
	src.sig.Firing = true
	for i := 0; i < 6; i++ {
		if got := c.TickNow(); got == "shrink" {
			t.Fatal("shrank while SLO firing")
		}
	}
}

// TestControllerCoolDown: after an action the controller stays quiet for
// the cool-down window, then acts again once it reopens.
func TestControllerCoolDown(t *testing.T) {
	c, src, act, clk := harness(2)
	src.sig.OpsPerSec = 1000
	c.TickNow()
	if got := c.TickNow(); got != "grow" {
		t.Fatalf("want initial grow, got %q", got)
	}
	// Still hot, but inside the 10s cool-down: no action.
	for i := 0; i < 5; i++ {
		clk.Advance(time.Second)
		if got := c.TickNow(); got != "" {
			t.Fatalf("acted %q %ds into cool-down", got, i+1)
		}
	}
	clk.Advance(6 * time.Second) // past the window
	if got := c.TickNow(); got != "grow" {
		t.Fatalf("want grow after cool-down, got %q", got)
	}
	if act.grown != 2 {
		t.Fatalf("grown=%d, want 2", act.grown)
	}
}

// TestControllerBounds: the pool never leaves [MinWorkers, MaxWorkers].
func TestControllerBounds(t *testing.T) {
	c, src, act, clk := harness(2)
	src.sig.OpsPerSec = 10000
	for i := 0; i < 50; i++ {
		clk.Advance(11 * time.Second)
		c.TickNow()
	}
	if src.sig.Workers != 5 {
		t.Fatalf("workers=%d under unbounded load, want max 5", src.sig.Workers)
	}
	src.sig.OpsPerSec = 0
	for i := 0; i < 50; i++ {
		clk.Advance(11 * time.Second)
		c.TickNow()
	}
	if src.sig.Workers != 2 {
		t.Fatalf("workers=%d at idle, want min 2", src.sig.Workers)
	}
	if act.grown != 3 || act.shrunk != 3 {
		t.Fatalf("grown=%d shrunk=%d, want 3 and 3", act.grown, act.shrunk)
	}
}

// TestControllerBlockedRetries: a blocked actuator (manual rebalance in
// flight) is not fatal — the streak holds and the next tick retries.
func TestControllerBlockedRetries(t *testing.T) {
	c, src, act, _ := harness(2)
	src.sig.OpsPerSec = 400
	c.TickNow()
	act.nextErr = errors.New("blocked")
	if got := c.TickNow(); got != "" {
		t.Fatalf("blocked tick reported action %q", got)
	}
	if act.grown != 0 {
		t.Fatalf("grown=%d after blocked attempt, want 0", act.grown)
	}
	// Next tick: the lock is free, the still-satisfied streak acts at once.
	if got := c.TickNow(); got != "grow" {
		t.Fatalf("retry tick = %q, want grow", got)
	}
	if len(c.Actions()) != 1 {
		t.Fatalf("actions logged %d, want 1 (blocked attempt not logged)", len(c.Actions()))
	}
}

// TestControllerSignalError: a failing source is counted and skipped, never
// acted on.
func TestControllerSignalError(t *testing.T) {
	c, src, _, _ := harness(2)
	src.sig.OpsPerSec = 1000
	src.err = errors.New("stats unavailable")
	for i := 0; i < 5; i++ {
		if got := c.TickNow(); got != "" {
			t.Fatalf("acted %q on failing signals", got)
		}
	}
	src.err = nil
	c.TickNow()
	if got := c.TickNow(); got != "grow" {
		t.Fatalf("want grow once signals recover, got %q", got)
	}
}

// TestControllerStartStop: the background loop ticks off the sim clock and
// Stop is idempotent, safe before Start, and actually halts the loop.
func TestControllerStartStop(t *testing.T) {
	clk := clock.NewSim(time.Time{})
	stopAuto := clk.AutoAdvance(50 * time.Microsecond)
	defer stopAuto()
	src := &fakeSource{sig: Signals{Workers: 2, OpsPerSec: 1000}}
	act := &fakeActuator{src: src}
	c := New(Config{
		Clock:            clk,
		Interval:         time.Second,
		MinWorkers:       1,
		MaxWorkers:       3,
		CoolDown:         2 * time.Second,
		GrowOpsPerWorker: 100,
		GrowStreak:       1,
		Source:           src,
		Actuator:         act,
	})
	c.Start()
	deadline := time.After(5 * time.Second)
	for {
		if g, _ := act.counts(); g > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("controller loop never acted")
		case <-time.After(time.Millisecond):
		}
	}
	c.Stop()
	c.Stop() // idempotent

	var unstarted *Controller
	unstarted.Stop() // nil-safe
	New(Config{Source: src, Actuator: act}).Stop()
}

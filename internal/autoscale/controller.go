package autoscale

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/telemetry"
	"repro/internal/watch"
)

// Controller defaults. The watermarks are per-worker ops/s and deliberately
// leave a dead band between them (grow above High, shrink below Low) so a
// load sitting between the two parks the pool instead of oscillating.
const (
	DefaultInterval     = 2 * time.Second
	DefaultCoolDown     = 10 * time.Second
	DefaultGrowStreak   = 2
	DefaultShrinkStreak = 3
)

// Signals is one evaluation's aggregated instance view — everything the
// controller consumes, sourced from the existing observability families
// (slo_* burn, ring_* ownership, queue depth, op counters).
type Signals struct {
	Workers    int     // shards per region currently serving
	OpsPerSec  float64 // aggregate instance throughput since the last tick
	Burn       float64 // worst per-node SLO error-budget burn rate
	Firing     bool    // any node's multi-window SLO alert firing
	QueueDepth int     // aggregate lazy-propagation queue depth
	Imbalance  float64 // (max-mean)/mean keys per worker; 0 when even
}

// SignalSource supplies one Signals snapshot per tick.
type SignalSource interface {
	Signals() (Signals, error)
}

// Actuator applies capacity changes; in production it is the Wiera
// server's AddWorker/RemoveWorker pair.
type Actuator interface {
	Grow() error
	Shrink() error
}

// Config tunes a Controller.
type Config struct {
	Clock    clock.Clock
	Interval time.Duration // evaluation period (default 2s)

	MinWorkers int // never shrink below (default 1)
	MaxWorkers int // never grow above (default 8)

	// GrowOpsPerWorker and ShrinkOpsPerWorker are the per-worker throughput
	// watermarks: sustained load above the first grows the pool, below the
	// second shrinks it. Zero disables the throughput term (SLO burn alone
	// then drives growth and nothing drives shrink).
	GrowOpsPerWorker   float64
	ShrinkOpsPerWorker float64

	// GrowStreak / ShrinkStreak are how many consecutive ticks the condition
	// must hold before acting (hysteresis against transient spikes).
	GrowStreak, ShrinkStreak int

	// CoolDown is the minimum quiet period after any grow/shrink before the
	// next action: a rebalance changes the very signals being watched, so
	// the controller waits for them to re-settle.
	CoolDown time.Duration

	// Blocked classifies an actuator error as "another rebalance holds the
	// instance" (retry next tick, counted separately) versus a real failure.
	Blocked func(error) bool

	// Registry receives the autoscale_* families (nil skips export).
	Registry *telemetry.Registry
	Instance string // instance label for the metric families

	// Journal receives autoscale.grow / autoscale.shrink events for every
	// successful action, attributed to Instance (nil skips).
	Journal *watch.Journal

	Source   SignalSource
	Actuator Actuator
}

// Action records one controller decision for tests and experiments.
type Action struct {
	At      time.Time
	What    string // "grow" or "shrink"
	Workers int    // pool size before the action
	Err     error
}

// Controller is the autoscaler loop: evaluate signals, decide under
// hysteresis, actuate at most one membership change at a time.
type Controller struct {
	cfg Config
	clk clock.Clock

	mu           sync.Mutex
	growStreak   int
	shrinkStreak int
	lastAction   time.Time
	acted        bool // an action has happened (lastAction is meaningful)
	actions      []Action

	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	workersG  *telemetry.Gauge
	pressureG *telemetry.Gauge
	cooldownG *telemetry.Gauge
	grows     *telemetry.Counter
	shrinks   *telemetry.Counter
	blocked   *telemetry.Counter
	errs      *telemetry.Counter
}

// New builds a controller. Source and Actuator are required.
func New(cfg Config) *Controller {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.MinWorkers <= 0 {
		cfg.MinWorkers = 1
	}
	if cfg.MaxWorkers <= 0 {
		cfg.MaxWorkers = 8
	}
	if cfg.CoolDown <= 0 {
		cfg.CoolDown = DefaultCoolDown
	}
	if cfg.GrowStreak <= 0 {
		cfg.GrowStreak = DefaultGrowStreak
	}
	if cfg.ShrinkStreak <= 0 {
		cfg.ShrinkStreak = DefaultShrinkStreak
	}
	c := &Controller{
		cfg:  cfg,
		clk:  cfg.Clock,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if cfg.Registry != nil {
		gauge := func(name, help string) *telemetry.Gauge {
			return cfg.Registry.Gauge(name, help, "instance").With(cfg.Instance)
		}
		counter := func(name, help string) *telemetry.Counter {
			return cfg.Registry.Counter(name, help, "instance").With(cfg.Instance)
		}
		c.workersG = gauge("autoscale_workers", "Workers per region the controller last observed.")
		c.pressureG = gauge("autoscale_pressure",
			"Per-worker load relative to the grow watermark (>1 = grow pressure).")
		c.cooldownG = gauge("autoscale_cooldown", "1 while the post-action cool-down window holds.")
		c.grows = counter("autoscale_grow_total", "AddWorker actions the controller issued.")
		c.shrinks = counter("autoscale_shrink_total", "RemoveWorker actions the controller issued.")
		c.blocked = counter("autoscale_blocked_total",
			"Actions skipped because another rebalance held the instance.")
		c.errs = counter("autoscale_errors_total", "Signal or actuator failures.")
	}
	return c
}

// Start launches the evaluation loop; at most one runs.
func (c *Controller) Start() {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	go func() {
		defer close(c.done)
		for {
			select {
			case <-c.stop:
				return
			case <-c.clk.After(c.cfg.Interval):
				c.TickNow()
			}
		}
	}()
}

// Stop halts the loop and waits for it to exit. Safe before Start and
// repeatedly.
func (c *Controller) Stop() {
	if c == nil {
		return
	}
	c.stopOnce.Do(func() { close(c.stop) })
	c.mu.Lock()
	started := c.started
	c.mu.Unlock()
	if started {
		<-c.done
	}
}

// Actions returns the decision log in order.
func (c *Controller) Actions() []Action {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Action(nil), c.actions...)
}

// TickNow evaluates one controller round immediately (tests and the
// experiment harness drive it deterministically). It returns the action
// taken ("", "grow", or "shrink").
func (c *Controller) TickNow() string {
	sig, err := c.cfg.Source.Signals()
	if err != nil {
		if c.errs != nil {
			c.errs.Inc()
		}
		return ""
	}
	now := c.clk.Now()
	if c.workersG != nil {
		c.workersG.Set(float64(sig.Workers))
	}
	pressure := 0.0
	if c.cfg.GrowOpsPerWorker > 0 && sig.Workers > 0 {
		pressure = sig.OpsPerSec / (float64(sig.Workers) * c.cfg.GrowOpsPerWorker)
	}
	if c.pressureG != nil {
		c.pressureG.Set(pressure)
	}

	c.mu.Lock()
	cooling := c.acted && now.Sub(c.lastAction) < c.cfg.CoolDown
	if c.cooldownG != nil {
		if cooling {
			c.cooldownG.Set(1)
		} else {
			c.cooldownG.Set(0)
		}
	}

	// Streaks advance even through the cool-down so a persistent condition
	// acts the moment the window opens; the *action* is what cools down.
	wantGrow := sig.Firing || pressure > 1
	wantShrink := !sig.Firing && c.cfg.ShrinkOpsPerWorker > 0 && sig.Workers > 0 &&
		sig.OpsPerSec < float64(sig.Workers)*c.cfg.ShrinkOpsPerWorker
	if wantGrow {
		c.growStreak++
	} else {
		c.growStreak = 0
	}
	if wantShrink {
		c.shrinkStreak++
	} else {
		c.shrinkStreak = 0
	}

	what := ""
	switch {
	case cooling:
	case c.growStreak >= c.cfg.GrowStreak && sig.Workers < c.cfg.MaxWorkers:
		what = "grow"
	case c.shrinkStreak >= c.cfg.ShrinkStreak && sig.Workers > c.cfg.MinWorkers:
		what = "shrink"
	}
	c.mu.Unlock()
	if what == "" {
		return ""
	}

	var actErr error
	if what == "grow" {
		actErr = c.cfg.Actuator.Grow()
	} else {
		actErr = c.cfg.Actuator.Shrink()
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if actErr != nil && c.cfg.Blocked != nil && c.cfg.Blocked(actErr) {
		// A manual wieractl grow/shrink (or a heartbeat respawn) holds the
		// rebalance lock; keep the streak and retry next tick.
		if c.blocked != nil {
			c.blocked.Inc()
		}
		return ""
	}
	c.actions = append(c.actions, Action{At: now, What: what, Workers: sig.Workers, Err: actErr})
	if actErr != nil {
		if c.errs != nil {
			c.errs.Inc()
		}
		return ""
	}
	c.acted = true
	c.lastAction = now
	c.growStreak, c.shrinkStreak = 0, 0
	switch what {
	case "grow":
		if c.grows != nil {
			c.grows.Inc()
		}
	case "shrink":
		if c.shrinks != nil {
			c.shrinks.Inc()
		}
	}
	c.cfg.Journal.Record("autoscale."+what, c.cfg.Instance,
		fmt.Sprintf("%s from %d workers (ops/s %.1f, burn %.2f, firing %v)",
			what, sig.Workers, sig.OpsPerSec, sig.Burn, sig.Firing),
		map[string]string{
			"workers":   fmt.Sprintf("%d", sig.Workers),
			"opsPerSec": fmt.Sprintf("%.1f", sig.OpsPerSec),
		})
	return what
}

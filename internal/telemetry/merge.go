package telemetry

import (
	"math"
	"sort"
	"strings"
	"time"
)

// Fleet metric merging. Every histogram in the repository shares the same
// fixed log-bucket layout (bucketBounds), so per-node snapshots are
// exactly mergeable: adding per-bucket counts of two snapshots yields the
// snapshot the union stream would have produced — no approximation beyond
// the bucketing both sides already share. Counters merge by summing,
// gauges keep their per-source children plus synthetic sum/max rollups
// (a fleet queue depth is a sum; a fleet burn rate is a max).

// SourceSnapshot is one scrape target's registry snapshot tagged with its
// origin (daemon address or name).
type SourceSnapshot struct {
	Source   string
	Families []FamilySnapshot
}

// gauge merge pseudo-sources: the synthetic rollup children injected ahead
// of the per-source gauge children.
const (
	GaugeSum = "(sum)"
	GaugeMax = "(max)"
)

// MergeSnapshots merges per-source registry snapshots into one fleet-wide
// snapshot:
//
//   - counters: children with identical label values sum across sources;
//   - histograms: children with identical label values merge bucket-wise
//     (counts, sums, and totals add; bucket exemplars keep the most recent
//     by sequence) — exact because all histograms share one bucket layout;
//   - gauges: a "source" label is prepended; every source's child is kept,
//     preceded by synthetic GaugeSum/GaugeMax rollup children per label
//     combination.
//
// Families are sorted by name, children in first-seen order.
func MergeSnapshots(sources ...SourceSnapshot) []FamilySnapshot {
	type famAcc struct {
		fam   FamilySnapshot
		index map[string]int // joined label values -> position in fam.Metrics
	}
	accs := make(map[string]*famAcc)
	var order []string

	for _, src := range sources {
		for _, fam := range src.Families {
			acc, ok := accs[fam.Name]
			if !ok {
				labels := append([]string(nil), fam.LabelNames...)
				if fam.Kind == KindGauge {
					labels = append([]string{"source"}, labels...)
				}
				acc = &famAcc{
					fam: FamilySnapshot{
						Name: fam.Name, Help: fam.Help, Kind: fam.Kind,
						LabelNames: labels,
					},
					index: make(map[string]int),
				}
				accs[fam.Name] = acc
				order = append(order, fam.Name)
			}
			for _, m := range fam.Metrics {
				switch fam.Kind {
				case KindGauge:
					mergeGauge(acc.index, &acc.fam, src.Source, m)
				case KindCounter:
					i, ok := acc.index[joinVals(m.LabelValues)]
					if !ok {
						acc.index[joinVals(m.LabelValues)] = len(acc.fam.Metrics)
						acc.fam.Metrics = append(acc.fam.Metrics, MetricSnapshot{
							LabelValues: append([]string(nil), m.LabelValues...),
							Value:       m.Value,
						})
					} else {
						acc.fam.Metrics[i].Value += m.Value
					}
				case KindHistogram:
					i, ok := acc.index[joinVals(m.LabelValues)]
					if !ok {
						acc.index[joinVals(m.LabelValues)] = len(acc.fam.Metrics)
						acc.fam.Metrics = append(acc.fam.Metrics, MetricSnapshot{
							LabelValues: append([]string(nil), m.LabelValues...),
							Count:       m.Count,
							Sum:         m.Sum,
							Buckets:     append([]BucketCount(nil), m.Buckets...),
						})
					} else {
						t := &acc.fam.Metrics[i]
						t.Count += m.Count
						t.Sum += m.Sum
						t.Buckets = MergeBuckets(t.Buckets, m.Buckets)
					}
				}
			}
		}
	}

	sort.Strings(order)
	out := make([]FamilySnapshot, 0, len(order))
	for _, name := range order {
		out = append(out, accs[name].fam)
	}
	return out
}

// mergeGauge keeps m as a per-source child and folds it into the synthetic
// sum/max rollup children for its label combination. Rollups are inserted
// when a combination is first seen, so they precede the per-source rows.
func mergeGauge(index map[string]int, fam *FamilySnapshot, source string, m MetricSnapshot) {
	base := joinVals(m.LabelValues)
	sumKey := GaugeSum + labelSep + base
	if i, ok := index[sumKey]; !ok {
		for _, pseudo := range []string{GaugeSum, GaugeMax} {
			index[pseudo+labelSep+base] = len(fam.Metrics)
			fam.Metrics = append(fam.Metrics, MetricSnapshot{
				LabelValues: append([]string{pseudo}, m.LabelValues...),
				Value:       m.Value,
			})
		}
	} else {
		fam.Metrics[i].Value += m.Value
		if j := index[GaugeMax+labelSep+base]; m.Value > fam.Metrics[j].Value {
			fam.Metrics[j].Value = m.Value
		}
	}
	srcKey := source + labelSep + base
	if i, ok := index[srcKey]; ok {
		// Same source scraped twice: keep the latest reading.
		fam.Metrics[i].Value = m.Value
	} else {
		index[srcKey] = len(fam.Metrics)
		fam.Metrics = append(fam.Metrics, MetricSnapshot{
			LabelValues: append([]string{source}, m.LabelValues...),
			Value:       m.Value,
		})
	}
}

// MergeBuckets merges two cumulative bucket slices bucket-wise. Both sides
// must come from histograms with the shared bound layout (always true in
// this repository); the result is the exact cumulative bucket slice of the
// concatenated stream. Exemplars keep the most recent (highest sequence).
func MergeBuckets(a, b []BucketCount) []BucketCount {
	type raw struct {
		count int64
		ex    string
		exVal time.Duration
		exSeq uint64
	}
	byBound := make(map[time.Duration]*raw, len(a)+len(b))
	var bounds []time.Duration
	add := func(bs []BucketCount) {
		var prev int64
		for _, bc := range bs {
			r, ok := byBound[bc.UpperBound]
			if !ok {
				r = &raw{}
				byBound[bc.UpperBound] = r
				bounds = append(bounds, bc.UpperBound)
			}
			r.count += bc.Count - prev // de-cumulate
			prev = bc.Count
			if bc.Exemplar != "" && (r.ex == "" || bc.ExemplarSeq >= r.exSeq) {
				r.ex, r.exVal, r.exSeq = bc.Exemplar, bc.ExemplarValue, bc.ExemplarSeq
			}
		}
	}
	add(a)
	add(b)
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	out := make([]BucketCount, 0, len(bounds))
	var cum int64
	for _, ub := range bounds {
		r := byBound[ub]
		cum += r.count
		out = append(out, BucketCount{
			UpperBound: ub, Count: cum,
			Exemplar: r.ex, ExemplarValue: r.exVal, ExemplarSeq: r.exSeq,
		})
	}
	return out
}

// BucketsPercentile estimates the p-th percentile (0 < p <= 100) from a
// cumulative bucket slice — the same bucket-walk-plus-interpolation
// Histogram.Percentile performs, usable on merged fleet buckets where no
// live histogram exists. The overflow bucket reports the highest finite
// bound (the merged view has no exact max to clamp to).
func BucketsPercentile(buckets []BucketCount, p float64) time.Duration {
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].Count
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := p / 100 * float64(total)
	if rank < 1 {
		rank = 1
	}
	for i, bc := range buckets {
		if float64(bc.Count) < rank {
			continue
		}
		if bc.UpperBound == math.MaxInt64 {
			// Overflow: no finite bound; report the last finite one.
			if i > 0 {
				return buckets[i-1].UpperBound
			}
			return 0
		}
		lower := time.Duration(0)
		var prev int64
		if i > 0 {
			lower = buckets[i-1].UpperBound
			prev = buckets[i-1].Count
		}
		inBucket := bc.Count - prev
		if inBucket <= 0 {
			return bc.UpperBound
		}
		frac := (rank - float64(prev)) / float64(inBucket)
		return lower + time.Duration(frac*float64(bc.UpperBound-lower))
	}
	return buckets[len(buckets)-1].UpperBound
}

// BucketExemplarAt returns the exemplar of the bucket containing the p-th
// percentile rank — the concrete trace to pull when asking "what does a
// p99 request look like". Falls back to the nearest lower non-empty
// exemplar so sparse tails still resolve; returns ok=false when the slice
// holds no exemplars at or below that bucket.
func BucketExemplarAt(buckets []BucketCount, p float64) (trace string, value time.Duration, ok bool) {
	if len(buckets) == 0 {
		return "", 0, false
	}
	total := buckets[len(buckets)-1].Count
	if total == 0 {
		return "", 0, false
	}
	rank := p / 100 * float64(total)
	if rank < 1 {
		rank = 1
	}
	idx := len(buckets) - 1
	for i, bc := range buckets {
		if float64(bc.Count) >= rank {
			idx = i
			break
		}
	}
	for i := idx; i >= 0; i-- {
		if buckets[i].Exemplar != "" {
			return buckets[i].Exemplar, buckets[i].ExemplarValue, true
		}
	}
	return "", 0, false
}

// CollapseHistogram merges all children of a histogram family that agree
// on the kept labels, returning one merged child per group (in first-seen
// order) whose LabelValues are the kept labels' values. Collapsing
// wiera_op_seconds by "op" yields the true fleet-wide per-op distribution.
func CollapseHistogram(fam FamilySnapshot, keep ...string) []MetricSnapshot {
	if fam.Kind != KindHistogram {
		return nil
	}
	keepIdx := make([]int, 0, len(keep))
	for _, k := range keep {
		for i, n := range fam.LabelNames {
			if n == k {
				keepIdx = append(keepIdx, i)
				break
			}
		}
	}
	index := make(map[string]int)
	var out []MetricSnapshot
	for _, m := range fam.Metrics {
		vals := make([]string, 0, len(keepIdx))
		for _, i := range keepIdx {
			if i < len(m.LabelValues) {
				vals = append(vals, m.LabelValues[i])
			}
		}
		key := joinVals(vals)
		if i, ok := index[key]; ok {
			out[i].Count += m.Count
			out[i].Sum += m.Sum
			out[i].Buckets = MergeBuckets(out[i].Buckets, m.Buckets)
		} else {
			index[key] = len(out)
			out = append(out, MetricSnapshot{
				LabelValues: vals,
				Count:       m.Count,
				Sum:         m.Sum,
				Buckets:     append([]BucketCount(nil), m.Buckets...),
			})
		}
	}
	return out
}

// CollapseCounter merges all children of a counter family that agree on
// the kept labels, summing their values — one merged child per group in
// first-seen order. Collapsing rpc_bytes_in_total by "method" yields the
// fleet-wide per-method byte volume regardless of region.
func CollapseCounter(fam FamilySnapshot, keep ...string) []MetricSnapshot {
	if fam.Kind != KindCounter {
		return nil
	}
	keepIdx := make([]int, 0, len(keep))
	for _, k := range keep {
		for i, n := range fam.LabelNames {
			if n == k {
				keepIdx = append(keepIdx, i)
				break
			}
		}
	}
	index := make(map[string]int)
	var out []MetricSnapshot
	for _, m := range fam.Metrics {
		vals := make([]string, 0, len(keepIdx))
		for _, i := range keepIdx {
			if i < len(m.LabelValues) {
				vals = append(vals, m.LabelValues[i])
			}
		}
		key := joinVals(vals)
		if i, ok := index[key]; ok {
			out[i].Value += m.Value
		} else {
			index[key] = len(out)
			out = append(out, MetricSnapshot{LabelValues: vals, Value: m.Value})
		}
	}
	return out
}

// FindFamily returns the named family from a snapshot, ok=false if absent.
func FindFamily(fams []FamilySnapshot, name string) (FamilySnapshot, bool) {
	for _, f := range fams {
		if f.Name == name {
			return f, true
		}
	}
	return FamilySnapshot{}, false
}

// joinVals joins label values with the registry's child-key separator.
func joinVals(vals []string) string { return strings.Join(vals, labelSep) }

package telemetry

import (
	"context"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	vec := r.Counter("ops_total", "ops", "kind")
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := vec.With("put") // child lookup races with other goroutines
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := vec.With("put").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := vec.With("get").Value(); got != 0 {
		t.Fatalf("untouched child = %d, want 0", got)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	c := NewCounter()
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	g := NewGauge()
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != goroutines*perG {
		t.Fatalf("gauge = %v, want %d", g.Value(), goroutines*perG)
	}
	g.Set(-2.5)
	if g.Value() != -2.5 {
		t.Fatalf("gauge = %v, want -2.5", g.Value())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Record(time.Duration(g*perG+i+1) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	const n = goroutines * perG
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	wantSum := time.Duration(n) * time.Duration(n+1) / 2 * time.Microsecond
	if h.Sum() != wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	if h.Min() != 1*time.Microsecond {
		t.Fatalf("min = %v, want 1µs", h.Min())
	}
	if h.Max() != time.Duration(n)*time.Microsecond {
		t.Fatalf("max = %v, want %dµs", h.Max(), n)
	}
}

// TestHistogramPercentileAccuracy checks bucket-interpolated percentiles
// against an exact nearest-rank reference over several distributions. The
// bucket layout grows 1.25x per bucket, so estimates must land within 25%
// of the exact value (and within the observed range).
func TestHistogramPercentileAccuracy(t *testing.T) {
	distributions := map[string][]time.Duration{
		"uniform":  nil, // filled below
		"bimodal":  nil,
		"constant": nil,
	}
	var uniform, bimodal, constant []time.Duration
	for i := 1; i <= 10000; i++ {
		uniform = append(uniform, time.Duration(i)*50*time.Microsecond)
		if i%10 == 0 {
			bimodal = append(bimodal, 200*time.Millisecond) // slow WAN mode
		} else {
			bimodal = append(bimodal, 2*time.Millisecond) // fast local mode
		}
		constant = append(constant, 5*time.Millisecond)
	}
	distributions["uniform"] = uniform
	distributions["bimodal"] = bimodal
	distributions["constant"] = constant

	for name, samples := range distributions {
		h := NewHistogram()
		for _, d := range samples {
			h.Record(d)
		}
		sorted := append([]time.Duration(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, p := range []float64{50, 90, 95, 99} {
			rank := int(math.Ceil(p / 100 * float64(len(sorted))))
			exact := sorted[rank-1]
			got := h.Percentile(p)
			relErr := math.Abs(float64(got)-float64(exact)) / float64(exact)
			if relErr > 0.25 {
				t.Errorf("%s p%.0f = %v, exact %v (rel err %.1f%% > 25%%)",
					name, p, got, exact, relErr*100)
			}
			if got < h.Min() || got > h.Max() {
				t.Errorf("%s p%.0f = %v outside [%v, %v]", name, p, got, h.Min(), h.Max())
			}
		}
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(50) != 0 {
		t.Fatal("empty histogram percentile should be 0")
	}
	h.Record(7 * time.Millisecond)
	for _, p := range []float64{0, 50, 100} {
		if got := h.Percentile(p); got != 7*time.Millisecond {
			t.Fatalf("single-sample p%.0f = %v, want 7ms", p, got)
		}
	}
	// An observation beyond the last finite bucket lands in overflow and
	// reports the exact max.
	h.Record(48 * time.Hour)
	if got := h.Percentile(99.9); got != 48*time.Hour {
		t.Fatalf("overflow percentile = %v, want 48h", got)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second family", "x").With("1").Add(3)
	r.Gauge("a_gauge", "first family").With().Set(1.5)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("families = %d, want 2", len(snap))
	}
	// Sorted by name.
	if snap[0].Name != "a_gauge" || snap[1].Name != "b_total" {
		t.Fatalf("order = %s, %s", snap[0].Name, snap[1].Name)
	}
	if snap[0].Metrics[0].Value != 1.5 {
		t.Fatalf("gauge snapshot = %v", snap[0].Metrics[0].Value)
	}
	if snap[1].Metrics[0].Value != 3 || snap[1].Metrics[0].LabelValues[0] != "1" {
		t.Fatalf("counter snapshot = %+v", snap[1].Metrics[0])
	}
}

func TestRegistryReregisterPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different kind should panic")
		}
	}()
	r.Gauge("m", "help", "a")
}

// TestRenderPrometheusGolden pins the exact text exposition output for a
// small registry: counter and gauge lines with labels, histogram buckets in
// seconds with the +Inf bucket, _sum and _count.
func TestRenderPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("tier_ops_total", "Tier operations.", "op", "tier").With("put", "memory").Add(4)
	r.Gauge("wiera_queue_depth", "Queued updates.", "node").With("n-1").Set(2)
	h := r.Histogram("tier_op_seconds", "Tier operation latency.", "op").With("get")
	h.Record(9 * time.Microsecond)  // first bucket (le=1e-05)
	h.Record(11 * time.Microsecond) // second bucket (le=1.25e-05)

	got := r.RenderPrometheus()
	want := strings.Join([]string{
		`# HELP tier_op_seconds Tier operation latency.`,
		`# TYPE tier_op_seconds histogram`,
		`tier_op_seconds_bucket{op="get",le="1e-05"} 1`,
		`tier_op_seconds_bucket{op="get",le="1.25e-05"} 2`,
		`tier_op_seconds_bucket{op="get",le="+Inf"} 2`,
		`tier_op_seconds_sum{op="get"} 2e-05`,
		`tier_op_seconds_count{op="get"} 2`,
		`# HELP tier_ops_total Tier operations.`,
		`# TYPE tier_ops_total counter`,
		`tier_ops_total{op="put",tier="memory"} 4`,
		`# HELP wiera_queue_depth Queued updates.`,
		`# TYPE wiera_queue_depth gauge`,
		`wiera_queue_depth{node="n-1"} 2`,
		``,
	}, "\n")
	if got != want {
		t.Fatalf("prometheus output mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	cv := r.Counter("x", "")
	gv := r.Gauge("y", "")
	hv := r.Histogram("z", "")
	if cv != nil || gv != nil || hv != nil {
		t.Fatal("nil registry should return nil vecs")
	}
	cv.With("a").Inc()
	gv.With("b").Set(1)
	hv.With("c").Record(time.Second)
	if r.Snapshot() != nil || len(r.RenderPrometheus()) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}

	var tr *Tracer
	sp := tr.StartRoot("op")
	if sp != nil {
		t.Fatal("nil tracer should return nil span")
	}
	sp.SetAttr("k", "v")
	sp.SetError(nil)
	sp.End()
	ctx, child := StartSpan(context.Background(), "child")
	if child != nil || ctx == nil {
		t.Fatal("StartSpan without a parent should return nil span, same ctx")
	}
}

func TestSpanParentChildLinkage(t *testing.T) {
	tr := NewTracer()
	root := tr.StartRoot("client.put")
	root.SetAttr("region", "us-east")
	ctx := ContextWithSpan(context.Background(), root)
	ctx, mid := StartSpan(ctx, "rpc.client")
	_, leaf := StartSpan(ctx, "tier.put")
	leaf.End()
	mid.End()
	root.SetError(nil)
	root.End()
	root.End() // idempotent

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	r, m, l := byName["client.put"], byName["rpc.client"], byName["tier.put"]
	if r.TraceID == "" || m.TraceID != r.TraceID || l.TraceID != r.TraceID {
		t.Fatalf("trace ids differ: %q %q %q", r.TraceID, m.TraceID, l.TraceID)
	}
	if r.ParentID != 0 {
		t.Fatalf("root has parent %d", r.ParentID)
	}
	if m.ParentID != r.SpanID || l.ParentID != m.SpanID {
		t.Fatalf("bad linkage: root=%d mid(parent=%d) leaf(parent=%d mid=%d)",
			r.SpanID, m.ParentID, l.ParentID, m.SpanID)
	}
	if r.Attrs["region"] != "us-east" {
		t.Fatalf("root attrs = %v", r.Attrs)
	}
	if got := tr.TraceSpans(r.TraceID); len(got) != 3 {
		t.Fatalf("TraceSpans = %d, want 3", len(got))
	}
	if got := tr.TraceSpans("no-such-trace"); len(got) != 0 {
		t.Fatalf("TraceSpans(bogus) = %d, want 0", len(got))
	}
}

func TestStartRemote(t *testing.T) {
	tr := NewTracer()
	root := tr.StartRoot("origin")
	remote := tr.StartRemote(root.Context(), "rpc.server")
	if remote.Context().Trace != root.Context().Trace {
		t.Fatal("remote span should join the parent's trace")
	}
	remote.End()
	root.End()
	for _, s := range tr.Spans() {
		if s.Name == "rpc.server" && s.ParentID != root.Context().Span {
			t.Fatalf("remote parent = %d, want %d", s.ParentID, root.Context().Span)
		}
	}
	// Invalid remote context degrades to a fresh root.
	fresh := tr.StartRemote(SpanContext{}, "orphan")
	if fresh.Context().Trace.IsZero() || fresh.Context().Trace == root.Context().Trace {
		t.Fatal("invalid remote context should start a new trace")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(WithCapacity(4))
	for i := 0; i < 10; i++ {
		tr.StartRoot("s").End()
	}
	if got := len(tr.Spans()); got != 4 {
		t.Fatalf("retained = %d, want 4", got)
	}
	if tr.TotalSpans() != 10 {
		t.Fatalf("total = %d, want 10", tr.TotalSpans())
	}
	tr.Reset()
	if len(tr.Spans()) != 0 {
		t.Fatal("reset should clear the ring")
	}
}

func TestWrapUnwrapPayload(t *testing.T) {
	tr := NewTracer()
	sp := tr.StartRoot("op")
	payload := []byte("hello wiera")
	wire := WrapPayload(sp.Context(), payload)
	if len(wire) != envelopeLen+len(payload) {
		t.Fatalf("wire len = %d", len(wire))
	}
	sc, inner := UnwrapPayload(wire)
	if !sc.Valid() || sc != sp.Context() {
		t.Fatalf("roundtrip context = %+v, want %+v", sc, sp.Context())
	}
	if string(inner) != string(payload) {
		t.Fatalf("inner = %q", inner)
	}
	// Unwrapped payloads pass through untouched.
	sc, inner = UnwrapPayload(payload)
	if sc.Valid() || string(inner) != string(payload) {
		t.Fatalf("plain payload mangled: %+v %q", sc, inner)
	}
	// Invalid contexts wrap to the original bytes.
	if got := WrapPayload(SpanContext{}, payload); len(got) != len(payload) {
		t.Fatal("invalid context should not add an envelope")
	}
}

func TestRenderSpanTree(t *testing.T) {
	tr := NewTracer(WithNow(func() time.Time { return time.Unix(0, 0) }))
	root := tr.StartRoot("client.put")
	ctx := ContextWithSpan(context.Background(), root)
	_, child := StartSpan(ctx, "rpc.client")
	child.SetAttr("dst", "n-1")
	child.End()
	root.End()
	out := RenderSpanTree(tr.Spans())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("tree lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "client.put") {
		t.Fatalf("root line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  rpc.client") || !strings.Contains(lines[1], "dst=n-1") {
		t.Fatalf("child line = %q", lines[1])
	}
}

func TestSampleRoot(t *testing.T) {
	tr := NewTracer(WithAutoSample(4))
	var traced int
	for i := 0; i < 16; i++ {
		if sp := tr.SampleRoot("op"); sp != nil {
			if i%4 != 0 {
				t.Fatalf("call %d sampled; want every 4th starting at 0", i)
			}
			traced++
			sp.End()
		}
	}
	if traced != 4 {
		t.Fatalf("traced = %d, want 4", traced)
	}
	// Rate 1 traces everything; explicit roots always trace.
	tr.SetAutoSample(1)
	if tr.SampleRoot("all") == nil {
		t.Fatal("rate 1 should trace every call")
	}
	tr.SetAutoSample(1000000)
	if tr.StartRoot("explicit") == nil {
		t.Fatal("StartRoot must bypass sampling")
	}
}

// TestHistogramSnapshotConsistentUnderConcurrency hammers Record while
// repeatedly snapshotting and checks the exposition invariants Prometheus
// clients enforce: finite cumulative buckets never decrease, and the +Inf
// bucket equals _count. Deriving the snapshot count from h.count instead of
// the summed bucket loads breaks this (the count increments after the bucket,
// so +Inf could undershoot a finite bucket mid-Record).
func TestHistogramSnapshotConsistentUnderConcurrency(t *testing.T) {
	h := NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := time.Duration(g+1) * 100 * time.Microsecond
			for {
				select {
				case <-stop:
					return
				default:
					h.Record(d)
				}
			}
		}(g)
	}
	for i := 0; i < 2000; i++ {
		count, _, buckets := h.snapshot()
		var prev int64 = -1
		for _, b := range buckets {
			if b.Count < prev {
				close(stop)
				wg.Wait()
				t.Fatalf("cumulative bucket decreased: %d after %d", b.Count, prev)
			}
			prev = b.Count
		}
		if n := len(buckets); n > 0 {
			if inf := buckets[n-1]; inf.Count != count {
				close(stop)
				wg.Wait()
				t.Fatalf("+Inf bucket %d != snapshot count %d", inf.Count, count)
			}
		}
	}
	close(stop)
	wg.Wait()
	// Quiescent: snapshot count, h.Count, and a rendered _count agree.
	count, _, buckets := h.snapshot()
	if count != h.Count() {
		t.Fatalf("snapshot count %d != Count() %d at rest", count, h.Count())
	}
	if buckets[len(buckets)-1].Count != count {
		t.Fatalf("+Inf %d != count %d at rest", buckets[len(buckets)-1].Count, count)
	}
}

func TestCountLEAndAlignedBound(t *testing.T) {
	h := NewHistogram()
	if h.CountLE(time.Hour) != 0 {
		t.Fatal("empty histogram CountLE != 0")
	}
	var nilH *Histogram
	if nilH.CountLE(time.Hour) != 0 {
		t.Fatal("nil histogram CountLE != 0")
	}

	// Bucket bounds start at 10µs growing 1.25x; record at exact bounds so
	// placement is unambiguous.
	h.Record(bucketBounds[0]) // 10µs
	h.Record(bucketBounds[1]) // 12.5µs
	h.Record(bucketBounds[5])
	h.Record(48 * time.Hour) // overflow

	if got := h.CountLE(bucketBounds[0]); got != 1 {
		t.Fatalf("CountLE(bound0) = %d, want 1", got)
	}
	if got := h.CountLE(bucketBounds[1]); got != 2 {
		t.Fatalf("CountLE(bound1) = %d, want 2", got)
	}
	// A threshold strictly inside bucket 5 excludes it (conservative
	// undercount).
	inside := bucketBounds[4] + (bucketBounds[5]-bucketBounds[4])/2
	if got := h.CountLE(inside); got != 2 {
		t.Fatalf("CountLE(mid-bucket) = %d, want 2", got)
	}
	if got := h.CountLE(bucketBounds[5]); got != 3 {
		t.Fatalf("CountLE(bound5) = %d, want 3", got)
	}
	// Overflow observations are never <= any finite threshold.
	if got := h.CountLE(bucketBounds[numBuckets-1]); got != 3 {
		t.Fatalf("CountLE(last bound) = %d, want 3", got)
	}

	// AlignedBound rounds a threshold up to the next bucket edge, making
	// CountLE exact for that threshold.
	if got := AlignedBound(inside); got != bucketBounds[5] {
		t.Fatalf("AlignedBound(mid) = %v, want %v", got, bucketBounds[5])
	}
	if got := AlignedBound(bucketBounds[3]); got != bucketBounds[3] {
		t.Fatalf("AlignedBound(exact bound) = %v, want itself", got)
	}
	if got := AlignedBound(48 * time.Hour); got != bucketBounds[numBuckets-1] {
		t.Fatalf("AlignedBound(overflow) = %v, want last finite bound", got)
	}
	if got := h.CountLE(AlignedBound(inside)); got != 3 {
		t.Fatalf("CountLE(AlignedBound(mid)) = %d, want 3", got)
	}
}

func TestForceSample(t *testing.T) {
	tr := NewTracer(WithAutoSample(1000000)) // effectively never head-sample
	// Burn the modulo counter's first hit (i=0 samples with any rate).
	for i := 0; i < 3; i++ {
		if sp := tr.SampleRoot("warm"); sp != nil {
			sp.End()
		}
	}
	if sp := tr.SampleRoot("not-boosted"); sp != nil {
		t.Fatal("sampled without boost at 1-in-1e6")
	}
	tr.ForceSample(2)
	for i := 0; i < 2; i++ {
		sp := tr.SampleRoot("boosted")
		if sp == nil {
			t.Fatalf("boost credit %d not honored", i)
		}
		sp.End()
	}
	if sp := tr.SampleRoot("credit-spent"); sp != nil {
		t.Fatal("sampled after boost credits ran out")
	}
	// Concurrent credits never over-spend.
	tr.ForceSample(100)
	var sampled atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if sp := tr.SampleRoot("c"); sp != nil {
					sampled.Add(1)
					sp.End()
				}
			}
		}()
	}
	wg.Wait()
	if got := sampled.Load(); got != 100 {
		t.Fatalf("concurrent boost sampled %d, want exactly 100", got)
	}
}

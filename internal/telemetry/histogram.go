package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: fixed log-scaled bounds starting at 10µs growing
// by 1.25x per bucket. 96 buckets cover ~10µs .. ~19h, spanning everything
// from a memory-tier hit to a Glacier restore; anything above the last
// finite bound lands in the overflow bucket. Fixed buckets mean Record is a
// binary search plus a handful of atomic adds — no allocation, no lock, and
// memory stays constant no matter how many samples arrive (unlike the old
// raw-sample stats.Histogram).
const (
	numBuckets   = 96
	bucketStart  = 10 * time.Microsecond
	bucketGrowth = 1.25
)

// bucketBounds holds the shared upper bounds (inclusive), ascending.
var bucketBounds = func() [numBuckets]time.Duration {
	var b [numBuckets]time.Duration
	v := float64(bucketStart)
	for i := 0; i < numBuckets; i++ {
		b[i] = time.Duration(v)
		v *= bucketGrowth
	}
	return b
}()

// Histogram is a bounded, concurrency-safe duration histogram with
// percentile estimation. All methods are nil-safe; a nil *Histogram records
// nothing and reports zeros, so uninstrumented paths cost one nil check.
type Histogram struct {
	counts [numBuckets + 1]atomic.Int64 // +1 = overflow bucket
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	min    atomic.Int64 // nanoseconds; valid when count > 0
	max    atomic.Int64 // nanoseconds; valid when count > 0

	// exemplars holds, per raw bucket, the most recent traced observation
	// that landed in it — the one-step bridge from a latency bucket to a
	// concrete retrievable trace. Untraced observations never touch it.
	exemplars [numBuckets + 1]atomic.Pointer[exemplar]
}

// exemplar is one sampled observation retained for a bucket.
type exemplar struct {
	trace string        // trace ID (hex)
	value time.Duration // the observation itself
	seq   uint64        // process-wide recency order (merge tie-break)
}

// exemplarSeq orders exemplars by recency across all histograms in the
// process, so merging snapshots can keep the newest without comparing
// clocks.
var exemplarSeq atomic.Uint64

// NewHistogram returns a standalone histogram (not attached to a registry).
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// bucketIndex returns the bucket for d: the first bound >= d, or the
// overflow bucket.
func bucketIndex(d time.Duration) int {
	lo, hi := 0, numBuckets
	for lo < hi {
		mid := (lo + hi) / 2
		if bucketBounds[mid] >= d {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo // numBuckets == overflow
}

// Record adds one observation. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	h.RecordTrace(d, "")
}

// RecordTrace adds one observation and, when traceID is non-empty, retains
// it as the exemplar of the bucket the observation lands in. Callers pass
// the sampled request's trace ID (empty for untraced requests), so every
// exported bucket can name a live trace that exhibits its latency.
func (h *Histogram) RecordTrace(d time.Duration, traceID string) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	idx := bucketIndex(d)
	if traceID != "" {
		h.exemplars[idx].Store(&exemplar{trace: traceID, value: d, seq: exemplarSeq.Add(1)})
	}
	h.counts[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		old := h.min.Load()
		if int64(d) >= old || h.min.CompareAndSwap(old, int64(d)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if int64(d) <= old || h.max.CompareAndSwap(old, int64(d)) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Mean returns the exact average observation (sum/count).
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Min returns the smallest recorded observation (exact).
func (h *Histogram) Min() time.Duration {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Max returns the largest recorded observation (exact).
func (h *Histogram) Max() time.Duration {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Percentile estimates the p-th percentile (0 < p <= 100) by locating the
// bucket containing the rank and interpolating linearly inside it. The
// estimate is clamped to the exact observed [Min, Max], so p=0/p=100 and
// single-sample histograms are exact, and relative error elsewhere is
// bounded by the bucket growth factor (25%; typically far less).
func (h *Histogram) Percentile(p float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := p / 100 * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	idx := numBuckets
	for i := 0; i <= numBuckets; i++ {
		cum += h.counts[i].Load()
		if float64(cum) >= rank {
			idx = i
			break
		}
	}
	var lower, upper float64
	if idx >= numBuckets {
		// Overflow bucket: no finite upper bound; report the observed max.
		return h.Max()
	}
	upper = float64(bucketBounds[idx])
	if idx == 0 {
		lower = 0
	} else {
		lower = float64(bucketBounds[idx-1])
	}
	inBucket := h.counts[idx].Load()
	prev := cum - inBucket
	est := upper
	if inBucket > 0 {
		frac := (rank - float64(prev)) / float64(inBucket)
		est = lower + frac*(upper-lower)
	}
	// Clamp to exact observed extremes.
	if mn := float64(h.min.Load()); est < mn {
		est = mn
	}
	if mx := float64(h.max.Load()); est > mx {
		est = mx
	}
	return time.Duration(est)
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
		h.exemplars[i].Store(nil)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
}

// snapshot returns count, sum, and cumulative buckets (only buckets up to
// the highest non-empty one, plus the +Inf bucket). The reported count is
// derived from the bucket loads themselves — not h.count, which under
// concurrent Record could lag the buckets and make the +Inf bucket smaller
// than a cumulative finite bucket, an invariant violation Prometheus
// clients reject. Each emitted bucket carries its own raw bucket's
// exemplar (the +Inf entry carries the overflow bucket's).
func (h *Histogram) snapshot() (int64, time.Duration, []BucketCount) {
	sum := time.Duration(h.sum.Load())
	// Find the highest non-empty finite bucket so exports stay compact.
	last := -1
	raw := make([]int64, numBuckets+1)
	var total int64
	for i := 0; i <= numBuckets; i++ {
		raw[i] = h.counts[i].Load()
		total += raw[i]
		if raw[i] > 0 && i < numBuckets {
			last = i
		}
	}
	var out []BucketCount
	var cum int64
	for i := 0; i <= last; i++ {
		cum += raw[i]
		bc := BucketCount{UpperBound: bucketBounds[i], Count: cum}
		if ex := h.exemplars[i].Load(); ex != nil {
			bc.Exemplar, bc.ExemplarValue, bc.ExemplarSeq = ex.trace, ex.value, ex.seq
		}
		out = append(out, bc)
	}
	inf := BucketCount{UpperBound: math.MaxInt64, Count: total}
	if ex := h.exemplars[numBuckets].Load(); ex != nil {
		inf.Exemplar, inf.ExemplarValue, inf.ExemplarSeq = ex.trace, ex.value, ex.seq
	}
	out = append(out, inf)
	return total, sum, out
}

// CountLE returns the number of observations recorded at or below d,
// counting whole buckets whose upper bound is <= d. When d falls strictly
// inside a bucket that bucket is excluded, so the result is a slight
// undercount rather than an overcount — the conservative direction for SLO
// good-event accounting. Passing an exact bucket bound (e.g. a threshold
// aligned via AlignedBound) is exact.
func (h *Histogram) CountLE(d time.Duration) int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := 0; i < numBuckets && bucketBounds[i] <= d; i++ {
		n += h.counts[i].Load()
	}
	return n
}

// AlignedBound returns the smallest histogram bucket bound >= d — the
// effective threshold CountLE(d) would evaluate if d were rounded up to a
// bucket edge. SLO objectives align their latency thresholds with this so
// good-event counts are exact rather than conservatively low.
func AlignedBound(d time.Duration) time.Duration {
	idx := bucketIndex(d)
	if idx >= numBuckets {
		return bucketBounds[numBuckets-1]
	}
	return bucketBounds[idx]
}

package telemetry

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMergeHistogramExact is the fleet-merge property test: for any split
// of an observation stream across N node registries, merging the N
// snapshots yields exactly the counts, sums, and cumulative buckets of one
// registry that saw the concatenated stream — so fleet percentiles are the
// percentiles of the concatenated stream, not an approximation of them.
func TestMergeHistogramExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		nodes := 2 + rng.Intn(4)
		regs := make([]*Registry, nodes)
		for i := range regs {
			regs[i] = NewRegistry()
		}
		ref := NewRegistry() // sees the concatenated stream

		total := 200 + rng.Intn(800)
		for i := 0; i < total; i++ {
			// Log-uniform over ~6 decades to exercise many buckets.
			d := time.Duration(float64(time.Microsecond) * pow(10, rng.Float64()*6))
			op := []string{"put", "get"}[rng.Intn(2)]
			node := rng.Intn(nodes)
			regs[node].Histogram("op_seconds", "", "op").With(op).Record(d)
			ref.Histogram("op_seconds", "", "op").With(op).Record(d)
		}

		sources := make([]SourceSnapshot, nodes)
		for i, r := range regs {
			sources[i] = SourceSnapshot{Source: fmt.Sprintf("node-%d", i), Families: r.Snapshot()}
		}
		merged := MergeSnapshots(sources...)
		mfam, ok := FindFamily(merged, "op_seconds")
		if !ok {
			t.Fatalf("trial %d: merged snapshot lost op_seconds", trial)
		}
		rfam, _ := FindFamily(ref.Snapshot(), "op_seconds")

		for _, want := range rfam.Metrics {
			got, ok := findChild(mfam, want.LabelValues)
			if !ok {
				t.Fatalf("trial %d: merged family lost child %v", trial, want.LabelValues)
			}
			if got.Count != want.Count || got.Sum != want.Sum {
				t.Fatalf("trial %d %v: merged count/sum = %d/%v, concatenated = %d/%v",
					trial, want.LabelValues, got.Count, got.Sum, want.Count, want.Sum)
			}
			if !bucketsEqual(got.Buckets, want.Buckets) {
				t.Fatalf("trial %d %v: merged buckets differ from concatenated stream",
					trial, want.LabelValues)
			}
			for _, p := range []float64{50, 90, 99, 99.9} {
				mp := BucketsPercentile(got.Buckets, p)
				rp := BucketsPercentile(want.Buckets, p)
				if mp != rp {
					t.Fatalf("trial %d %v p%g: merged %v, concatenated %v",
						trial, want.LabelValues, p, mp, rp)
				}
			}
		}
	}
}

func pow(base, exp float64) float64 {
	out := 1.0
	for exp >= 1 {
		out *= base
		exp--
	}
	// Fractional remainder via repeated square root is overkill for a test
	// distribution; linear blend spreads values across the last decade.
	return out * (1 + exp*(base-1))
}

func findChild(fam FamilySnapshot, want []string) (MetricSnapshot, bool) {
	for _, m := range fam.Metrics {
		if len(m.LabelValues) != len(want) {
			continue
		}
		same := true
		for i := range want {
			if m.LabelValues[i] != want[i] {
				same = false
			}
		}
		if same {
			return m, true
		}
	}
	return MetricSnapshot{}, false
}

func bucketsEqual(a, b []BucketCount) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].UpperBound != b[i].UpperBound || a[i].Count != b[i].Count {
			return false
		}
	}
	return true
}

// TestMergeCountersAndGauges checks the non-histogram merge semantics:
// counters with identical labels sum; gauges fan out per source under a
// prepended "source" label with (sum)/(max) rollup children.
func TestMergeCountersAndGauges(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("ops_total", "", "op").With("put").Add(3)
	b.Counter("ops_total", "", "op").With("put").Add(4)
	b.Counter("ops_total", "", "op").With("get").Add(5)
	a.Gauge("queue_depth", "", "node").With("w0").Set(2)
	b.Gauge("queue_depth", "", "node").With("w0").Set(7)

	merged := MergeSnapshots(
		SourceSnapshot{Source: "a", Families: a.Snapshot()},
		SourceSnapshot{Source: "b", Families: b.Snapshot()},
	)

	ops, ok := FindFamily(merged, "ops_total")
	if !ok {
		t.Fatal("merged snapshot lost ops_total")
	}
	if m, ok := findChild(ops, []string{"put"}); !ok || m.Value != 7 {
		t.Fatalf("merged put counter = %+v (ok=%v), want 7", m, ok)
	}
	if m, ok := findChild(ops, []string{"get"}); !ok || m.Value != 5 {
		t.Fatalf("merged get counter = %+v (ok=%v), want 5", m, ok)
	}

	qd, ok := FindFamily(merged, "queue_depth")
	if !ok {
		t.Fatal("merged snapshot lost queue_depth")
	}
	if qd.LabelNames[0] != "source" {
		t.Fatalf("merged gauge labels = %v, want source first", qd.LabelNames)
	}
	checks := map[string]float64{GaugeSum: 9, GaugeMax: 7, "a": 2, "b": 7}
	for src, want := range checks {
		if m, ok := findChild(qd, []string{src, "w0"}); !ok || m.Value != want {
			t.Fatalf("merged gauge [%s w0] = %+v (ok=%v), want %v", src, m, ok, want)
		}
	}
}

// TestMergeExemplarRecency checks that a bucket merge keeps the most
// recently recorded exemplar (highest process-wide sequence), regardless of
// which source it came from.
func TestMergeExemplarRecency(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	older := strings.Repeat("a", 32)
	newer := strings.Repeat("b", 32)
	a.RecordTrace(time.Millisecond, older)
	b.RecordTrace(time.Millisecond, newer) // same bucket, recorded later

	_, _, ab := a.snapshot()
	_, _, bb := b.snapshot()
	for _, merged := range [][]BucketCount{MergeBuckets(ab, bb), MergeBuckets(bb, ab)} {
		found := ""
		for _, bc := range merged {
			if bc.Exemplar != "" {
				found = bc.Exemplar
				break
			}
		}
		if found != newer {
			t.Fatalf("merged exemplar = %q, want the newer %q", found, newer)
		}
	}
}

// TestExemplarResolvesToTrace closes the loop the ISSUE requires: a latency
// recorded under a sampled span leaves an exemplar whose trace ID fetches
// the span back from the tracer.
func TestExemplarResolvesToTrace(t *testing.T) {
	tr := NewTracer()
	reg := NewRegistry()
	sp := tr.StartRoot("wiera.get")
	reg.Histogram("op_seconds", "", "op").With("get").
		RecordTrace(42*time.Millisecond, sp.TraceIDString())
	sp.End()

	fam, _ := FindFamily(reg.Snapshot(), "op_seconds")
	m, ok := findChild(fam, []string{"get"})
	if !ok {
		t.Fatal("histogram child missing")
	}
	trace, val, ok := BucketExemplarAt(m.Buckets, 99)
	if !ok {
		t.Fatal("no exemplar at p99")
	}
	if val != 42*time.Millisecond {
		t.Fatalf("exemplar value = %v, want 42ms", val)
	}
	spans := tr.TraceSpans(trace)
	if len(spans) != 1 || spans[0].Name != "wiera.get" {
		t.Fatalf("exemplar trace %s resolved to %v, want the wiera.get span", trace, spans)
	}
}

// TestSnapshotWhileRecordRace drives concurrent RecordTrace against
// Snapshot+merge. Run with -race (the race-obsplane make target); the
// assertions here only check the snapshots stay internally consistent.
func TestSnapshotWhileRecordRace(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("op_seconds", "", "op").With("put")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			trace := strings.Repeat(fmt.Sprintf("%x", g%16), 32)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.RecordTrace(time.Duration(i%1000+1)*time.Microsecond, trace)
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		snap := reg.Snapshot()
		merged := MergeSnapshots(SourceSnapshot{Source: "self", Families: snap})
		fam, ok := FindFamily(merged, "op_seconds")
		if !ok {
			t.Fatal("snapshot lost op_seconds")
		}
		for _, m := range fam.Metrics {
			if len(m.Buckets) == 0 {
				continue
			}
			last := m.Buckets[len(m.Buckets)-1]
			if last.Count != m.Count {
				t.Fatalf("+Inf bucket %d != count %d", last.Count, m.Count)
			}
			for j := 1; j < len(m.Buckets); j++ {
				if m.Buckets[j].Count < m.Buckets[j-1].Count {
					t.Fatal("cumulative buckets decreased")
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

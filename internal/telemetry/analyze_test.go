package telemetry

import (
	"testing"
	"time"
)

// span builds a SpanRecord for analysis tests. Times are offsets in
// milliseconds from a fixed epoch.
func span(id, parent uint64, name string, startMs, durMs int) SpanRecord {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return SpanRecord{
		TraceID:  "00000000000000000000000000000001",
		SpanID:   id,
		ParentID: parent,
		Name:     name,
		Start:    epoch.Add(time.Duration(startMs) * time.Millisecond),
		Duration: time.Duration(durMs) * time.Millisecond,
	}
}

// TestAnalyzeSlowTrace models a slow cross-region put: gate wait, a tier
// write, then an rpc fan-out that itself spends its time in the remote
// tier. The ISSUE's acceptance bar: >= 90% of the wall time lands on named
// hop kinds, and the attribution partitions the root wall time exactly.
func TestAnalyzeSlowTrace(t *testing.T) {
	spans := []SpanRecord{
		span(1, 0, "wiera.put", 0, 100),
		span(2, 1, "gate.acquire", 0, 15),       // lock: 15ms
		span(3, 1, "tiera.put", 15, 25),         // tier: 25ms
		span(4, 1, "rpc.client", 40, 58),        // rpc residual: 58-54 = 4ms
		span(5, 4, "rpc.server", 42, 54),        // rpc residual: 54-50 = 4ms
		span(6, 5, "tiera.applyRemote", 44, 50), // tier: 50ms
	}
	a, err := AnalyzeTrace(spans)
	if err != nil {
		t.Fatal(err)
	}
	if a.Root != "wiera.put" || a.Total != 100*time.Millisecond {
		t.Fatalf("root = %s/%v, want wiera.put/100ms", a.Root, a.Total)
	}

	var sum time.Duration
	for _, k := range a.ByKind {
		sum += k.Time
	}
	if sum != a.Total {
		t.Fatalf("attribution sums to %v, want exactly %v", sum, a.Total)
	}
	var pathSelf time.Duration
	for _, s := range a.Path {
		pathSelf += s.SelfTime
	}
	if pathSelf != a.Total {
		t.Fatalf("path self-times sum to %v, want exactly %v", pathSelf, a.Total)
	}

	if got := a.Attributed(); got < 0.90 {
		t.Fatalf("attributed fraction = %.2f, want >= 0.90\n%s", got, RenderAnalysis(a))
	}

	want := map[string]time.Duration{
		HopLock:  15 * time.Millisecond,
		HopTier:  (25 + 50) * time.Millisecond,
		HopRPC:   (4 + 4) * time.Millisecond, // rpc.client + rpc.server residuals
		HopOther: 2 * time.Millisecond,       // root residual: 100 - 15 - 25 - 58
	}
	got := map[string]time.Duration{}
	for _, k := range a.ByKind {
		got[k.Kind] = k.Time
	}
	for kind, d := range want {
		if got[kind] != d {
			t.Fatalf("kind %s = %v, want %v\n%s", kind, got[kind], d, RenderAnalysis(a))
		}
	}
}

// TestAnalyzeOrphans checks that spans whose parent was evicted from the
// ring still analyze (the longest orphan becomes the root) and that an
// empty span set errors.
func TestAnalyzeOrphans(t *testing.T) {
	if _, err := AnalyzeTrace(nil); err != ErrNoSpans {
		t.Fatalf("AnalyzeTrace(nil) err = %v, want ErrNoSpans", err)
	}
	spans := []SpanRecord{
		span(10, 99, "rpc.server", 0, 30), // parent 99 evicted
		span(11, 10, "tiera.get", 5, 20),
	}
	a, err := AnalyzeTrace(spans)
	if err != nil {
		t.Fatal(err)
	}
	if a.Root != "rpc.server" {
		t.Fatalf("root = %s, want the orphan rpc.server", a.Root)
	}
	if a.Attributed() != 1.0 {
		t.Fatalf("attributed = %.2f, want 1.0 (rpc + tier only)", a.Attributed())
	}
}

// TestSpanKind pins the classifier's naming conventions.
func TestSpanKind(t *testing.T) {
	cases := map[string]string{
		"rpc.client":        HopRPC,
		"rpc.server":        HopRPC,
		"tier.put":          HopTier,
		"tiera.applyRemote": HopTier,
		"repair.sync":       HopRepair,
		"merkle.digest":     HopRepair,
		"batch.flush":       HopBatch,
		"queue.drain":       HopQueue,
		"gate.acquire":      HopLock,
		"globalLock":        HopLock,
		"wiera.put":         HopOther,
	}
	for name, want := range cases {
		if got := SpanKind(name); got != want {
			t.Fatalf("SpanKind(%q) = %s, want %s", name, got, want)
		}
	}
}

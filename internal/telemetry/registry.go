// Package telemetry is the observability backbone of the repository: a
// lock-cheap metrics registry (counters, gauges, and bounded bucketed
// histograms with label support) plus cross-region distributed tracing
// (Span/SpanContext propagated through the opaque payloads of
// internal/transport). Every layer of the stack — transport, simnet, tier,
// tiera, wiera, and the cmd front ends — records into a shared Registry and
// Tracer, so the workload monitor, the experiment harnesses, and the
// /metrics and /traces endpoints all read from one source of truth.
//
// Hot-path cost is kept to a few atomic operations: metric children are
// cached after the first label lookup, histograms use fixed log-scaled
// buckets (no per-sample allocation, bounded memory), and every type is
// nil-safe so an uninstrumented deployment pays only a nil check.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// MetricKind distinguishes the metric families a Registry holds.
type MetricKind int

// Metric kinds.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE name of the kind.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Registry holds metric families by name. The zero value is not usable; use
// NewRegistry. All methods are safe for concurrent use, and a nil *Registry
// is a valid no-op registry (every vec it returns is nil, every operation on
// those children is a no-op).
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// family is one named metric with a fixed label schema and a child per
// label-value combination.
type family struct {
	name       string
	help       string
	kind       MetricKind
	labelNames []string

	mu       sync.RWMutex
	children map[string]any // joined label values -> *Counter/*Gauge/*Histogram
	order    []string       // insertion order of child keys
}

// labelSep joins label values into a child cache key; it cannot occur in
// reasonable label values.
const labelSep = "\x1f"

// register returns the family for name, creating it on first use. Kind and
// label arity must match across registrations of the same name.
func (r *Registry) register(name, help string, kind MetricKind, labelNames []string) *family {
	r.mu.RLock()
	f, ok := r.fams[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		f, ok = r.fams[name]
		if !ok {
			f = &family{
				name: name, help: help, kind: kind,
				labelNames: append([]string(nil), labelNames...),
				children:   make(map[string]any),
			}
			r.fams[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind || len(f.labelNames) != len(labelNames) {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %v/%d labels (was %v/%d)",
			name, kind, len(labelNames), f.kind, len(f.labelNames)))
	}
	return f
}

// child returns the cached child for the label values, creating it with
// mk on first use.
func (f *family) child(values []string, mk func() any) any {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %q expects %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok = f.children[key]; ok {
		return c
	}
	c = mk()
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// CounterVec is a counter family; With returns the child for a label-value
// combination.
type CounterVec struct{ f *family }

// Counter registers (or fetches) a counter family.
func (r *Registry) Counter(name, help string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, help, KindCounter, labelNames)}
}

// With returns the counter for the given label values (cached).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() any { return NewCounter() }).(*Counter)
}

// Counter is a monotonically increasing counter. All methods are nil-safe.
type Counter struct{ n atomic.Int64 }

// NewCounter returns a standalone counter (not attached to any registry).
func NewCounter() *Counter { return &Counter{} }

// Add increments by delta (negative deltas are ignored: counters only go up).
func (c *Counter) Add(delta int64) {
	if c == nil || delta <= 0 {
		return
	}
	c.n.Add(delta)
}

// Inc increments by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n.Add(1)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// GaugeVec is a gauge family.
type GaugeVec struct{ f *family }

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(name, help, KindGauge, labelNames)}
}

// With returns the gauge for the given label values (cached).
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() any { return NewGauge() }).(*Gauge)
}

// Gauge is a settable value. All methods are nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// NewGauge returns a standalone gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the gauge.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// HistogramVec is a histogram family.
type HistogramVec struct{ f *family }

// Histogram registers (or fetches) a duration-histogram family.
func (r *Registry) Histogram(name, help string, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.register(name, help, KindHistogram, labelNames)}
}

// With returns the histogram for the given label values (cached).
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() any { return NewHistogram() }).(*Histogram)
}

// Snapshot types: a point-in-time copy of the registry for exporters and
// the in-process stats consumers (wiera.collectStats, experiment harnesses).

// FamilySnapshot is one metric family with all its children.
type FamilySnapshot struct {
	Name       string
	Help       string
	Kind       MetricKind
	LabelNames []string
	Metrics    []MetricSnapshot
}

// MetricSnapshot is one child's state. Value is the counter or gauge value;
// histograms fill Count, Sum, and Buckets instead.
type MetricSnapshot struct {
	LabelValues []string
	Value       float64
	Count       int64
	Sum         time.Duration
	Buckets     []BucketCount // cumulative, ascending upper bounds
}

// BucketCount is one cumulative histogram bucket, optionally carrying the
// most recent traced observation that landed in it (the bucket's raw
// range, not the cumulative one).
type BucketCount struct {
	UpperBound time.Duration // last bucket uses math.MaxInt64 (rendered as +Inf)
	Count      int64

	Exemplar      string        // trace ID of the newest traced observation ("" = none)
	ExemplarValue time.Duration // that observation's value
	ExemplarSeq   uint64        // process recency order; merges keep the highest
}

// Snapshot copies the registry's current state, families sorted by name and
// children in insertion order.
func (r *Registry) Snapshot() []FamilySnapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{
			Name: f.name, Help: f.help, Kind: f.kind,
			LabelNames: append([]string(nil), f.labelNames...),
		}
		f.mu.RLock()
		keys := append([]string(nil), f.order...)
		children := make([]any, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.RUnlock()
		for i, k := range keys {
			var values []string
			if k != "" || len(f.labelNames) > 0 {
				values = strings.Split(k, labelSep)
			}
			ms := MetricSnapshot{LabelValues: values}
			switch c := children[i].(type) {
			case *Counter:
				ms.Value = float64(c.Value())
			case *Gauge:
				ms.Value = c.Value()
			case *Histogram:
				ms.Count, ms.Sum, ms.Buckets = c.snapshot()
			}
			fs.Metrics = append(fs.Metrics, ms)
		}
		out = append(out, fs)
	}
	return out
}

package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end request across regions and processes.
type TraceID [16]byte

// String renders the trace ID as lowercase hex.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the ID is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// SpanContext is the propagated part of a span: enough for a remote child
// to link itself to its parent.
type SpanContext struct {
	Trace TraceID
	Span  uint64
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && sc.Span != 0 }

// SpanRecord is a completed span as stored by the tracer and exported as
// JSON from /traces.
type SpanRecord struct {
	TraceID  string            `json:"traceId"`
	SpanID   uint64            `json:"spanId"`
	ParentID uint64            `json:"parentId,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"durationNs"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Err      string            `json:"err,omitempty"`
}

// Span is one in-flight operation. Created by Tracer.StartRoot/StartRemote
// or the package-level StartSpan; finished exactly once with End. A nil
// *Span is valid and all its methods no-op.
type Span struct {
	tracer *Tracer
	sc     SpanContext
	parent uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]string
	err   string
	done  bool
}

// Context returns the span's propagatable context.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceIDString returns the span's trace ID as hex — the form histograms
// retain as bucket exemplars. It returns "" for nil and unsampled spans,
// so an exemplar is only ever retained when the trace is retrievable.
func (s *Span) TraceIDString() string {
	if s == nil || !s.sc.Valid() {
		return ""
	}
	return s.sc.Trace.String()
}

// SetAttr attaches a key/value attribute (region, tier, method, ...).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// SetError records the error that ended the operation (nil is ignored).
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.err = err.Error()
	s.mu.Unlock()
}

// End completes the span and hands it to the tracer's ring buffer.
// Idempotent: second and later calls are ignored.
func (s *Span) End() {
	if s == nil || s.tracer == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	rec := SpanRecord{
		TraceID:  s.sc.Trace.String(),
		SpanID:   s.sc.Span,
		ParentID: s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: s.tracer.now().Sub(s.start),
		Err:      s.err,
		// The span is finished: hand the attribute map to the record
		// instead of copying it (SetAttr after End is documented away).
		Attrs: s.attrs,
	}
	s.attrs = nil
	s.mu.Unlock()
	s.tracer.record(rec)
}

// Tracer creates spans and retains completed ones in a bounded ring buffer.
// A nil *Tracer is valid: every span it produces is nil and records nothing.
type Tracer struct {
	now       func() time.Time
	nextID    atomic.Uint64
	tracePfx  [8]byte       // random process prefix shared by all trace IDs
	nextTrace atomic.Uint64 // low half of the next trace ID

	sampleEvery atomic.Int64 // SampleRoot keeps 1 in this many (<=1 = all)
	autoCount   atomic.Int64 // SampleRoot call counter
	boost       atomic.Int64 // SampleRoot calls forced on by ForceSample

	mu    sync.Mutex
	ring  []SpanRecord
	head  int
	total int
}

// TracerOption configures NewTracer.
type TracerOption func(*Tracer)

// WithNow sets the tracer's time source. Pass the simnet clock's Now so
// span durations line up with simulated latencies rather than wall time.
func WithNow(now func() time.Time) TracerOption {
	return func(t *Tracer) {
		if now != nil {
			t.now = now
		}
	}
}

// WithCapacity bounds the completed-span ring buffer (default 4096).
func WithCapacity(n int) TracerOption {
	return func(t *Tracer) {
		if n > 0 {
			t.ring = make([]SpanRecord, 0, n)
		}
	}
}

// WithAutoSample sets how many SampleRoot calls produce one trace (default
// 16; 1 or less traces every call). Explicit StartRoot/StartRemote spans
// are never sampled away.
func WithAutoSample(every int) TracerOption {
	return func(t *Tracer) { t.SetAutoSample(every) }
}

// defaultSpanCapacity bounds retained spans when WithCapacity is not given.
const defaultSpanCapacity = 4096

// defaultAutoSample is the default SampleRoot rate: 1 in 16 application
// operations start a trace. Metrics stay exact for every operation; the
// sampled traces keep the tracing tax on the data path negligible (the
// same head-sampling strategy production tracers use).
const defaultAutoSample = 16

// NewTracer returns a tracer with randomly seeded trace- and span-ID
// sequences. IDs after the seed are counter-derived: one atomic add per ID,
// no per-span entropy syscalls on the hot path.
func NewTracer(opts ...TracerOption) *Tracer {
	t := &Tracer{now: time.Now}
	var seed [24]byte
	_, _ = rand.Read(seed[:])
	t.nextID.Store(binary.LittleEndian.Uint64(seed[0:8]) | 1)
	copy(t.tracePfx[:], seed[8:16])
	t.tracePfx[0] |= 1 // non-zero prefix => every trace ID is non-zero
	t.nextTrace.Store(binary.LittleEndian.Uint64(seed[16:24]))
	t.sampleEvery.Store(defaultAutoSample)
	for _, o := range opts {
		o(t)
	}
	if t.ring == nil {
		t.ring = make([]SpanRecord, 0, defaultSpanCapacity)
	}
	return t
}

// newTraceID returns a unique non-zero trace ID: the tracer's (non-zero)
// random prefix plus a counter, so two tracers (processes) collide only if
// their 8-byte prefixes do.
func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	copy(id[0:8], t.tracePfx[:])
	binary.LittleEndian.PutUint64(id[8:16], t.nextTrace.Add(1))
	return id
}

// newSpanID returns a process-unique non-zero span ID.
func (t *Tracer) newSpanID() uint64 {
	for {
		id := t.nextID.Add(1)
		if id != 0 {
			return id
		}
	}
}

// StartRoot begins a new trace with a fresh random trace ID.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tracer: t,
		sc:     SpanContext{Trace: t.newTraceID(), Span: t.newSpanID()},
		name:   name,
		start:  t.now(),
	}
}

// SetAutoSample changes the SampleRoot rate at run time (1 or less traces
// every call).
func (t *Tracer) SetAutoSample(every int) {
	if t == nil {
		return
	}
	if every < 1 {
		every = 1
	}
	t.sampleEvery.Store(int64(every))
}

// ForceSample guarantees the next n SampleRoot calls return real roots
// regardless of the sampling ratio. The flight recorder uses this when a
// slow request lands in the slowlog: the slow request itself is past
// tracing, but its immediate successors — likely hitting the same congested
// path — get full traces.
func (t *Tracer) ForceSample(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.boost.Add(int64(n))
}

// SampleRoot begins a new trace for an application-initiated operation,
// subject to the tracer's sampling rate: the first call and every
// sampleEvery-th call after it return a real root; the rest return nil (a
// valid no-op span), so untraced operations pay nothing downstream. Pending
// ForceSample credit overrides the ratio. Use StartRoot to bypass sampling.
func (t *Tracer) SampleRoot(name string) *Span {
	if t == nil {
		return nil
	}
	for {
		b := t.boost.Load()
		if b <= 0 {
			break
		}
		if t.boost.CompareAndSwap(b, b-1) {
			return t.StartRoot(name)
		}
	}
	if n := t.sampleEvery.Load(); n > 1 && (t.autoCount.Add(1)-1)%n != 0 {
		return nil
	}
	return t.StartRoot(name)
}

// StartRemote begins a span whose parent lives in another process/region:
// the remote SpanContext (extracted from the wire) becomes the parent. An
// invalid remote context starts a fresh root instead.
func (t *Tracer) StartRemote(remote SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	if !remote.Valid() {
		return t.StartRoot(name)
	}
	return &Span{
		tracer: t,
		sc:     SpanContext{Trace: remote.Trace, Span: t.newSpanID()},
		parent: remote.Span,
		name:   name,
		start:  t.now(),
	}
}

// startChild begins a local child of parent.
func (t *Tracer) startChild(parent *Span, name string) *Span {
	if t == nil || parent == nil {
		return nil
	}
	return &Span{
		tracer: t,
		sc:     SpanContext{Trace: parent.sc.Trace, Span: t.newSpanID()},
		parent: parent.sc.Span,
		name:   name,
		start:  t.now(),
	}
}

// record appends a completed span to the ring, evicting the oldest when
// full.
func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
	} else if cap(t.ring) > 0 {
		t.ring[t.head] = rec
		t.head = (t.head + 1) % cap(t.ring)
	}
	t.total++
	t.mu.Unlock()
}

// Spans returns the retained completed spans, oldest first.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.head:]...)
	out = append(out, t.ring[:t.head]...)
	return out
}

// TraceSpans returns the retained spans of one trace, oldest first.
func (t *Tracer) TraceSpans(traceID string) []SpanRecord {
	var out []SpanRecord
	for _, rec := range t.Spans() {
		if rec.TraceID == traceID {
			out = append(out, rec)
		}
	}
	return out
}

// TotalSpans returns how many spans have completed over the tracer's
// lifetime (including ones evicted from the ring).
func (t *Tracer) TotalSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Reset discards all retained spans.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.head = 0
	t.mu.Unlock()
}

// --- context plumbing -------------------------------------------------

type spanKey struct{}

// ContextWithSpan returns ctx carrying span.
func ContextWithSpan(ctx context.Context, span *Span) context.Context {
	if span == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, span)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan begins a child of the span in ctx (if any) and returns the
// derived context plus the new span. With no span in ctx it returns ctx
// unchanged and a nil span — instrumented code never needs to check.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil || parent.tracer == nil {
		return ctx, nil
	}
	child := parent.tracer.startChild(parent, name)
	return ContextWithSpan(ctx, child), child
}

// --- wire propagation --------------------------------------------------

// The trace envelope prepends a fixed header to opaque transport payloads:
//
//	[4]byte magic "WT01" | [16]byte trace ID | [8]byte span ID (LE)
//
// Both Fabric and TCP transports wrap outbound payloads and unwrap inbound
// ones; payloads without the magic pass through untouched, so traced and
// untraced peers interoperate.
const envelopeLen = 4 + 16 + 8

var envelopeMagic = [4]byte{'W', 'T', '0', '1'}

// WrapPayload prepends sc to payload. An invalid sc returns payload as-is.
func WrapPayload(sc SpanContext, payload []byte) []byte {
	if !sc.Valid() {
		return payload
	}
	out := make([]byte, envelopeLen+len(payload))
	copy(out[0:4], envelopeMagic[:])
	copy(out[4:20], sc.Trace[:])
	binary.LittleEndian.PutUint64(out[20:28], sc.Span)
	copy(out[envelopeLen:], payload)
	return out
}

// UnwrapPayload splits a wrapped payload into its span context and the
// original bytes. Payloads without the envelope return a zero context.
func UnwrapPayload(b []byte) (SpanContext, []byte) {
	if len(b) < envelopeLen || [4]byte(b[0:4]) != envelopeMagic {
		return SpanContext{}, b
	}
	var sc SpanContext
	copy(sc.Trace[:], b[4:20])
	sc.Span = binary.LittleEndian.Uint64(b[20:28])
	return sc, b[envelopeLen:]
}

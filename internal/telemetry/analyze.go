package telemetry

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Trace critical-path analysis: given the span DAG of one trace (spans
// cross processes via the WT01 envelope, so the DAG covers the whole
// request), compute the chain of spans that actually bounded the wall
// time, and attribute each segment of it to a hop kind
// (queue/lock/tier/rpc/repair/batch). The p99 question "which hop is
// burning the time" becomes one table.

// Hop kinds the classifier emits. KindOther collects coordination
// self-time in spans that name no specific hop (root op spans, policy
// evaluation).
const (
	HopQueue  = "queue"
	HopLock   = "lock"
	HopTier   = "tier"
	HopRPC    = "rpc"
	HopRepair = "repair"
	HopBatch  = "batch"
	HopOther  = "other"
)

// SpanKind classifies a span name into a hop kind by its naming
// conventions: rpc.client/rpc.server, tier.* / tiera.* (storage tier
// work), repair/sync/hint (anti-entropy), batch/flush (replication
// batching), queue/drain (lazy propagation), lock/gate/acquire
// (coordination waits). Names matching nothing are "other".
func SpanKind(name string) string {
	n := strings.ToLower(name)
	switch {
	case strings.HasPrefix(n, "rpc."):
		return HopRPC
	case strings.HasPrefix(n, "tier.") || strings.HasPrefix(n, "tiera."):
		return HopTier
	case strings.Contains(n, "repair") || strings.Contains(n, "sync") || strings.Contains(n, "hint") || strings.Contains(n, "merkle"):
		return HopRepair
	case strings.Contains(n, "batch") || strings.Contains(n, "flush"):
		return HopBatch
	case strings.Contains(n, "queue") || strings.Contains(n, "drain"):
		return HopQueue
	case strings.Contains(n, "lock") || strings.Contains(n, "gate") || strings.Contains(n, "acquire"):
		return HopLock
	default:
		return HopOther
	}
}

// PathStep is one span on the critical path.
type PathStep struct {
	SpanID   uint64        `json:"spanId"`
	Name     string        `json:"name"`
	Kind     string        `json:"kind"`
	Depth    int           `json:"depth"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"durationNs"` // the span's full duration
	SelfTime time.Duration `json:"selfNs"`     // critical-path time attributed to this span itself
	Err      string        `json:"err,omitempty"`
}

// KindTime is one hop kind's share of the critical path.
type KindTime struct {
	Kind string        `json:"kind"`
	Time time.Duration `json:"timeNs"`
	Frac float64       `json:"frac"` // share of the root's wall time
}

// TraceAnalysis is the critical-path breakdown of one trace.
type TraceAnalysis struct {
	TraceID string        `json:"traceId"`
	Root    string        `json:"root"`
	Spans   int           `json:"spans"`
	Total   time.Duration `json:"totalNs"` // root span wall time
	// Path is the critical path, root first: at every instant of the
	// root's wall time, the deepest span on the path that covers it.
	Path []PathStep `json:"path"`
	// ByKind attributes the root's wall time to hop kinds, largest first.
	// Sums to Total exactly (every instant belongs to exactly one step).
	ByKind []KindTime `json:"byKind"`
}

// Attributed returns the fraction of wall time attributed to named hop
// kinds (everything but "other").
func (a *TraceAnalysis) Attributed() float64 {
	if a == nil || a.Total <= 0 {
		return 0
	}
	var named time.Duration
	for _, k := range a.ByKind {
		if k.Kind != HopOther {
			named += k.Time
		}
	}
	return float64(named) / float64(a.Total)
}

// ErrNoSpans reports an AnalyzeTrace call with nothing to analyze.
var ErrNoSpans = errors.New("telemetry: no spans to analyze")

// AnalyzeTrace computes the critical path of one trace from its retained
// spans. The root is the longest parentless span (orphans whose parent was
// evicted count as parentless). The walk is the standard backward scan:
// starting from the root's end, repeatedly descend into the child that
// finishes latest before the cursor; gaps no child covers are the parent's
// own self-time. Attribution therefore partitions the root's wall time
// exactly across the path's spans.
func AnalyzeTrace(spans []SpanRecord) (*TraceAnalysis, error) {
	if len(spans) == 0 {
		return nil, ErrNoSpans
	}
	have := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		have[s.SpanID] = true
	}
	children := make(map[uint64][]SpanRecord)
	var roots []SpanRecord
	for _, s := range spans {
		if s.ParentID != 0 && have[s.ParentID] {
			children[s.ParentID] = append(children[s.ParentID], s)
		} else {
			roots = append(roots, s)
		}
	}
	if len(roots) == 0 {
		return nil, ErrNoSpans
	}
	root := roots[0]
	for _, r := range roots[1:] {
		if r.Duration > root.Duration {
			root = r
		}
	}

	a := &TraceAnalysis{
		TraceID: root.TraceID,
		Root:    root.Name,
		Spans:   len(spans),
		Total:   root.Duration,
	}
	byKind := make(map[string]time.Duration)

	var walk func(s SpanRecord, start, end time.Time, depth int)
	walk = func(s SpanRecord, start, end time.Time, depth int) {
		window := end.Sub(start)
		if window < 0 {
			window = 0
		}
		// Children that finish latest first; each claims the slice of the
		// remaining window it covers, scanning backwards from the end.
		kids := append([]SpanRecord(nil), children[s.SpanID]...)
		sort.Slice(kids, func(i, j int) bool {
			ei := kids[i].Start.Add(kids[i].Duration)
			ej := kids[j].Start.Add(kids[j].Duration)
			if !ei.Equal(ej) {
				return ei.After(ej)
			}
			return kids[i].SpanID < kids[j].SpanID
		})
		cursor := end
		type seg struct {
			child      SpanRecord
			start, end time.Time
		}
		var picked []seg
		self := window
		for _, k := range kids {
			ks := k.Start
			ke := k.Start.Add(k.Duration)
			if ke.After(cursor) {
				ke = cursor // clamp: child outlives the window (skew/overlap)
			}
			if !ke.After(ks) || !ke.After(start) {
				continue // fully outside the remaining window
			}
			if ks.Before(start) {
				ks = start
			}
			picked = append(picked, seg{child: k, start: ks, end: ke})
			self -= ke.Sub(ks)
			cursor = ks
			if !cursor.After(start) {
				break
			}
		}
		if self < 0 {
			self = 0
		}
		step := PathStep{
			SpanID: s.SpanID, Name: s.Name, Kind: SpanKind(s.Name),
			Depth: depth, Start: s.Start, Duration: s.Duration,
			SelfTime: self, Err: s.Err,
		}
		a.Path = append(a.Path, step)
		byKind[step.Kind] += self
		// Recurse in chronological order so the path reads start-to-finish.
		for i := len(picked) - 1; i >= 0; i-- {
			walk(picked[i].child, picked[i].start, picked[i].end, depth+1)
		}
	}
	walk(root, root.Start, root.Start.Add(root.Duration), 0)

	for k, d := range byKind {
		kt := KindTime{Kind: k, Time: d}
		if a.Total > 0 {
			kt.Frac = float64(d) / float64(a.Total)
		}
		a.ByKind = append(a.ByKind, kt)
	}
	sort.Slice(a.ByKind, func(i, j int) bool {
		if a.ByKind[i].Time != a.ByKind[j].Time {
			return a.ByKind[i].Time > a.ByKind[j].Time
		}
		return a.ByKind[i].Kind < a.ByKind[j].Kind
	})
	return a, nil
}

// RenderAnalysis formats an analysis for terminals (`wieractl trace
// -analyze`): the per-kind attribution table, then the path with each
// span's self-time share.
func RenderAnalysis(a *TraceAnalysis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s  root %s  wall %v  (%d spans, %.0f%% attributed to named hops)\n",
		a.TraceID, a.Root, a.Total, a.Spans, 100*a.Attributed())
	fmt.Fprintf(&b, "\n%-8s %12s %6s\n", "kind", "time", "share")
	for _, k := range a.ByKind {
		fmt.Fprintf(&b, "%-8s %12v %5.1f%%\n", k.Kind, k.Time, 100*k.Frac)
	}
	b.WriteString("\ncritical path:\n")
	for _, s := range a.Path {
		share := 0.0
		if a.Total > 0 {
			share = 100 * float64(s.SelfTime) / float64(a.Total)
		}
		fmt.Fprintf(&b, "%s%-30s %-7s span %12v  self %12v (%4.1f%%)",
			strings.Repeat("  ", s.Depth), s.Name, s.Kind, s.Duration, s.SelfTime, share)
		if s.Err != "" {
			fmt.Fprintf(&b, "  ERR=%s", s.Err)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// sanitizeMetricName maps a metric name into the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the Prometheus text format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// formatLabels renders {name="value",...}; empty input renders nothing.
func formatLabels(names, values []string, extra ...string) string {
	var pairs []string
	for i, n := range names {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		pairs = append(pairs, fmt.Sprintf("%s=%q", sanitizeMetricName(n), escapeLabelValue(v)))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		pairs = append(pairs, fmt.Sprintf("%s=%q", extra[i], escapeLabelValue(extra[i+1])))
	}
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// RenderSnapshot renders a metrics snapshot in the Prometheus text
// exposition format. Histogram buckets and sums are reported in seconds,
// matching Prometheus duration conventions; buckets holding an exemplar
// append it in OpenMetrics syntax (`# {trace_id="..."} value`), resolving a
// latency bucket to a concrete retrievable trace in one step. Works on
// both live registry snapshots and merged fleet snapshots.
func RenderSnapshot(fams []FamilySnapshot) string {
	var b strings.Builder
	for _, fam := range fams {
		name := sanitizeMetricName(fam.Name)
		if fam.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, fam.Help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, fam.Kind)
		for _, m := range fam.Metrics {
			switch fam.Kind {
			case KindHistogram:
				for _, bk := range m.Buckets {
					le := "+Inf"
					if bk.UpperBound != math.MaxInt64 {
						le = formatFloat(bk.UpperBound.Seconds())
					}
					fmt.Fprintf(&b, "%s_bucket%s %d",
						name, formatLabels(fam.LabelNames, m.LabelValues, "le", le), bk.Count)
					if bk.Exemplar != "" {
						fmt.Fprintf(&b, " # {trace_id=%q} %s",
							escapeLabelValue(bk.Exemplar), formatFloat(bk.ExemplarValue.Seconds()))
					}
					b.WriteByte('\n')
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n",
					name, formatLabels(fam.LabelNames, m.LabelValues), formatFloat(m.Sum.Seconds()))
				fmt.Fprintf(&b, "%s_count%s %d\n",
					name, formatLabels(fam.LabelNames, m.LabelValues), m.Count)
			default:
				fmt.Fprintf(&b, "%s%s %s\n",
					name, formatLabels(fam.LabelNames, m.LabelValues), formatFloat(m.Value))
			}
		}
	}
	return b.String()
}

// RenderPrometheus renders the registry's current snapshot in the
// Prometheus text exposition format.
func (r *Registry) RenderPrometheus() string {
	return RenderSnapshot(r.Snapshot())
}

// MetricsHandler serves the registry in Prometheus text format.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.RenderPrometheus()))
	})
}

// Handler input bounds: a telemetry endpoint must not be a memory or
// bandwidth amplifier, so query inputs are validated and response sizes
// capped regardless of what the URL asks for.
const (
	maxHandlerSpans = 4096 // spans served per /traces response
)

// ValidTraceID reports whether id is a well-formed trace ID: exactly 32
// lowercase/uppercase hex digits (16 bytes).
func ValidTraceID(id string) bool {
	if len(id) != 32 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
		if !ok {
			return false
		}
	}
	return true
}

// ClampQueryInt parses a positive integer query value, clamping to [1,
// max]; empty or malformed values return def.
func ClampQueryInt(v string, def, max int) int {
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return def
	}
	if n > max {
		return max
	}
	return n
}

// TracesHandler serves the tracer's retained spans as JSON. The optional
// ?trace=<hex id> query filters to one trace (rejecting malformed IDs with
// 400); ?n caps the span count (default and max 4096); ?analyze=1 with a
// trace ID serves the trace's critical-path analysis instead of raw spans.
func TracesHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		analyze := q.Get("analyze") == "1" || q.Get("analyze") == "true"
		id := q.Get("trace")
		if id != "" && !ValidTraceID(id) {
			http.Error(w, "trace must be 32 hex digits", http.StatusBadRequest)
			return
		}
		if analyze && id == "" {
			http.Error(w, "analyze requires ?trace=<id>", http.StatusBadRequest)
			return
		}
		max := ClampQueryInt(q.Get("n"), maxHandlerSpans, maxHandlerSpans)
		var spans []SpanRecord
		if id != "" {
			spans = t.TraceSpans(id)
		} else {
			spans = t.Spans()
		}
		if len(spans) > max {
			spans = spans[len(spans)-max:]
		}
		if spans == nil {
			spans = []SpanRecord{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if analyze {
			a, err := AnalyzeTrace(spans)
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			_ = enc.Encode(a)
			return
		}
		_ = enc.Encode(spans)
	})
}

// RenderSpanTree renders spans of one trace as an indented tree, children
// under parents, for wieractl trace output.
func RenderSpanTree(spans []SpanRecord) string {
	byParent := make(map[uint64][]SpanRecord)
	have := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		have[s.SpanID] = true
	}
	for _, s := range spans {
		p := s.ParentID
		if p != 0 && !have[p] {
			p = 0 // orphan: parent evicted or remote-only; show at root
		}
		byParent[p] = append(byParent[p], s)
	}
	var b strings.Builder
	var walk func(parent uint64, depth int)
	walk = func(parent uint64, depth int) {
		for _, s := range byParent[parent] {
			fmt.Fprintf(&b, "%s%s  %v", strings.Repeat("  ", depth), s.Name, s.Duration)
			if len(s.Attrs) > 0 {
				keys := make([]string, 0, len(s.Attrs))
				for k := range s.Attrs {
					keys = append(keys, k)
				}
				// small maps: simple insertion sort keeps output stable
				for i := 1; i < len(keys); i++ {
					for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
						keys[j], keys[j-1] = keys[j-1], keys[j]
					}
				}
				var kv []string
				for _, k := range keys {
					kv = append(kv, k+"="+s.Attrs[k])
				}
				fmt.Fprintf(&b, "  {%s}", strings.Join(kv, " "))
			}
			if s.Err != "" {
				fmt.Fprintf(&b, "  ERR=%s", s.Err)
			}
			b.WriteByte('\n')
			walk(s.SpanID, depth+1)
		}
	}
	walk(0, 0)
	return b.String()
}

package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/wiera"
	"repro/internal/ycsb"
)

// scaleoutPolicy is a single-region store whose memory tier carries an
// explicit IOPS admission cap: one worker saturates at the cap, so adding
// workers to the region's pool is the only way to raise throughput — the
// configuration under which keyspace sharding shows. The cap is set low
// enough (4ms admission spacing) that the modeled queueing delay dwarfs
// the sub-millisecond scheduling noise of the discrete-event clock, so the
// scaling curve is stable run to run.
const scaleoutPolicy = `
Wiera ScaleoutStore {
	Region1 = {name: LowLatencyInstance, region: us-east, primary: true,
		tier1 = {name: memory, size: 4G, iops: 250}};
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
	}
}`

// ScaleoutRow is one pool size's aggregate YCSB-B throughput.
type ScaleoutRow struct {
	Workers    int
	Throughput float64 // ops per simulated second
	Speedup    float64 // vs the 1-worker pool
}

// ScaleoutResult reproduces the sharding evaluation: YCSB-B against one
// region whose worker pool grows from 1 to 4, plus a live worker join under
// sustained writes. The paper's Tiera instances are single-node per region
// (Sec 3.3); this experiment measures what the consistent-hash worker pools
// add on top — near-linear read-mostly scaling and online rebalancing that
// loses no acked write and keeps put p99 bounded.
type ScaleoutResult struct {
	Rows []ScaleoutRow

	// Live-join phase (3 -> 4 workers under sustained writes).
	JoinMoved      int     // keys streamed off the old owners
	JoinAcked      int     // distinct keys with at least one acked write
	JoinLost       int     // acked writes missing or stale after the join
	SteadyPutP99Ms float64 // put p99 before the join starts
	JoinPutP99Ms   float64 // put p99 while the rebalance runs
}

// Scaleout measures aggregate YCSB-B throughput at 1, 2 and 4 workers and
// then audits a live 3->4 worker join under concurrent writers.
func Scaleout(opts Options) (*ScaleoutResult, error) {
	// Client concurrency must exceed the closed-loop ceiling of the largest
	// pool (at iops:250 the 4-worker aggregate is 1000 ops/s, so 16 clients
	// at ~6ms/op clears it), otherwise the curve measures the clients, not
	// the store.
	records, clients, opsPerClient := 10000, 16, 600
	if opts.Quick {
		records, clients, opsPerClient = 1000, 16, 100
	}
	res := &ScaleoutResult{}
	base := 0.0
	for _, w := range []int{1, 2, 4} {
		tput, err := scaleoutThroughput(opts, w, records, clients, opsPerClient)
		if err != nil {
			return nil, fmt.Errorf("scaleout %d workers: %w", w, err)
		}
		if w == 1 {
			base = tput
		}
		res.Rows = append(res.Rows, ScaleoutRow{Workers: w, Throughput: tput, Speedup: tput / base})
	}
	if err := scaleoutJoin(opts, records/4, res); err != nil {
		return nil, fmt.Errorf("scaleout join: %w", err)
	}
	return res, nil
}

// clientStore adapts a wiera.Client to the YCSB store interface.
type clientStore struct{ cli *wiera.Client }

func (s clientStore) Put(key string, value []byte) error {
	_, err := s.cli.Put(context.Background(), key, value)
	return err
}

func (s clientStore) Get(key string) ([]byte, error) {
	data, _, err := s.cli.Get(context.Background(), key)
	return data, err
}

// scaleoutDeploy starts one ScaleoutStore instance with the given pool size
// and returns the deployment plus a colocated client.
func scaleoutDeploy(id string, workers int) (*Deployment, *wiera.Client, error) {
	d, err := NewSimDeployment(simnet.USEast)
	if err != nil {
		return nil, nil, err
	}
	if _, err := d.Server.StartInstances(wiera.StartInstancesRequest{
		InstanceID: id, PolicySrc: scaleoutPolicy,
		// LowLatencyInstance's timer event needs its period parameter.
		Params: map[string]string{"workers": fmt.Sprintf("%d", workers), "t": "500ms"},
	}); err != nil {
		d.Close()
		return nil, nil, err
	}
	cli, err := wiera.NewClient(d.Fabric, "cli-"+id, simnet.USEast, d.Server.Name(), id)
	if err != nil {
		d.Close()
		return nil, nil, err
	}
	return d, cli, nil
}

// parallelLoad seeds the record space with concurrent loaders (a serial
// load would dominate the simulated runtime).
func parallelLoad(store clientStore, records, fieldLen int) error {
	val := make([]byte, fieldLen)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	const loaders = 16
	errs := make(chan error, loaders)
	var wg sync.WaitGroup
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			for i := l; i < records; i += loaders {
				if err := store.Put(ycsb.Key(i), val); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}(l)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// scaleoutThroughput runs the YCSB-B closed loop against a pool of the
// given size and returns aggregate ops per simulated second.
func scaleoutThroughput(opts Options, workers, records, clients, opsPerClient int) (float64, error) {
	d, cli, err := scaleoutDeploy(fmt.Sprintf("scale%d", workers), workers)
	if err != nil {
		return 0, err
	}
	defer d.Close()
	defer cli.Close()

	w := ycsb.WorkloadB
	w.RecordCount = records
	// Keyspace sharding scales with the *spread* of the request stream, not
	// its size: under the default zipfian skew the one shard owning the
	// hottest key (~13% of all requests at theta 0.99) caps the curve near
	// 2.5x regardless of pool size. Run B's 95/5 mix uniformly so the curve
	// measures the pool, and leave skew economics to the tiering experiments.
	w.Distribution = "uniform"
	store := clientStore{cli}
	if err := parallelLoad(store, records, w.FieldLength); err != nil {
		return 0, err
	}

	now := func() time.Time { return d.Clk.Now() }
	var total atomic.Int64
	var wg sync.WaitGroup
	start := d.Clk.Now()
	for i := 0; i < clients; i++ {
		yc, err := ycsb.NewClient(w, store, opts.Seed+int64(i)*101)
		if err != nil {
			return 0, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			total.Add(int64(yc.RunOps(opsPerClient, now)))
		}()
	}
	wg.Wait()
	elapsed := d.Clk.Now().Sub(start)
	if elapsed <= 0 {
		return 0, fmt.Errorf("no simulated time elapsed")
	}
	return float64(total.Load()) / elapsed.Seconds(), nil
}

// scaleoutJoin grows a 3-worker pool to 4 while writers hammer it, then
// audits that every acked write survived the rebalance.
func scaleoutJoin(opts Options, keys int, res *ScaleoutResult) error {
	d, cli, err := scaleoutDeploy("scalejoin", 3)
	if err != nil {
		return err
	}
	defer d.Close()
	defer cli.Close()
	ctx := context.Background()

	if err := parallelLoad(clientStore{cli}, keys, 64); err != nil {
		return err
	}

	// Steady-state put latency baseline.
	steady := stats.NewHistogram()
	for i := 0; i < keys/4; i++ {
		t0 := d.Clk.Now()
		if _, err := cli.Put(ctx, ycsb.Key(i), []byte("steady")); err != nil {
			return err
		}
		steady.Record(d.Clk.Now().Sub(t0))
	}
	res.SteadyPutP99Ms = float64(steady.Percentile(99)) / float64(time.Millisecond)

	// Writers run across the join; each successful Put is an acked write
	// that must be readable afterwards.
	var mu sync.Mutex
	acked := make(map[string]string)
	joinHist := stats.NewHistogram()
	var stop atomic.Bool
	var wg sync.WaitGroup
	const writers = 4
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				key := ycsb.Key((wr*131 + i*7) % keys)
				val := fmt.Sprintf("join:%d:%d", wr, i)
				t0 := d.Clk.Now()
				if _, err := cli.Put(ctx, key, []byte(val)); err == nil {
					mu.Lock()
					acked[key] = val
					joinHist.Record(d.Clk.Now().Sub(t0))
					mu.Unlock()
				}
			}
		}(wr)
	}

	moved, err := d.Server.AddWorker("scalejoin")
	stop.Store(true)
	wg.Wait()
	if err != nil {
		return err
	}
	res.JoinMoved = moved
	res.JoinPutP99Ms = float64(joinHist.Percentile(99)) / float64(time.Millisecond)

	// Post-run audit: every acked write must read back as its last acked
	// value (the writers stopped before the audit, so no newer write races).
	res.JoinAcked = len(acked)
	for key, want := range acked {
		data, _, err := cli.Get(ctx, key)
		if err != nil || string(data) != want {
			res.JoinLost++
		}
	}
	return nil
}

// Render prints the scaling curve and the live-join audit.
func (r *ScaleoutResult) Render() string {
	var b strings.Builder
	b.WriteString("Scale-out: YCSB-B aggregate throughput vs per-region worker pool size\n")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Workers),
			fmt.Sprintf("%.0f", row.Throughput),
			fmt.Sprintf("%.2fx", row.Speedup),
		})
	}
	b.WriteString(table([]string{"Workers", "Throughput (ops/s)", "Speedup"}, rows))
	fmt.Fprintf(&b, "live join 3->4 workers: moved=%d keys, acked writes=%d, lost=%d\n",
		r.JoinMoved, r.JoinAcked, r.JoinLost)
	fmt.Fprintf(&b, "put p99: steady %.1fms, during rebalance %.1fms\n",
		r.SteadyPutP99Ms, r.JoinPutP99Ms)
	return b.String()
}

// ShapeHolds verifies the sharding claims: near-linear read-mostly scaling
// (>=2.5x at 4 workers), a rebalance that actually moves keys, zero lost
// acked writes, and bounded put latency while the rebalance runs.
func (r *ScaleoutResult) ShapeHolds() error {
	byW := map[int]ScaleoutRow{}
	for _, row := range r.Rows {
		byW[row.Workers] = row
	}
	if byW[4].Speedup < 2.5 {
		return fmt.Errorf("scaleout: 4-worker speedup %.2fx, want >= 2.5x", byW[4].Speedup)
	}
	if byW[2].Throughput < byW[1].Throughput {
		return fmt.Errorf("scaleout: 2 workers slower than 1 (%.0f < %.0f)",
			byW[2].Throughput, byW[1].Throughput)
	}
	if r.JoinMoved == 0 {
		return fmt.Errorf("scaleout: live join moved no keys")
	}
	if r.JoinLost > 0 {
		return fmt.Errorf("scaleout: %d of %d acked writes lost across the rebalance",
			r.JoinLost, r.JoinAcked)
	}
	if r.JoinAcked == 0 {
		return fmt.Errorf("scaleout: no writes were acked during the join")
	}
	if r.JoinPutP99Ms > 1000 {
		return fmt.Errorf("scaleout: put p99 during rebalance %.0fms, want bounded (< 1s)", r.JoinPutP99Ms)
	}
	return nil
}

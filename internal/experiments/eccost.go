package experiments

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/cost"
	"repro/internal/simnet"
	"repro/internal/wiera"
)

// ECCostResult compares full 3x replication against erasure coding with
// the per-object replication/EC chooser (DESIGN.md Sec 9). Two identical
// three-region deployments store the same mixed workload — large cold
// objects, small objects, and hot rewritten objects — one under plain
// store+queue replication, one under the stripe action with EC(4+2).
// The harness audits physical placement per object, prices both layouts
// at Table 4 storage rates, then severs an entire region and re-reads
// every erasure-coded object through parity reconstruction, including
// objects acknowledged during the partition.
type ECCostResult struct {
	// Workload shape: LargeKeys cold objects of LargeSize bytes (the EC
	// candidates), SmallKeys of SmallSize bytes (below the size
	// threshold), HotKeys of LargeSize bytes read past the heat gate and
	// then rewritten.
	LargeKeys int
	LargeSize int64
	SmallKeys int
	SmallSize int64
	HotKeys   int

	// Chooser classification at the writer: large cold objects stored
	// erasure-coded, small objects kept replicated, hot rewrites kept
	// replicated despite their size.
	LargeEC   int
	SmallRepl int
	HotRepl   int

	// Physical bytes across all three regions for the large cold objects
	// only (the equal-durability comparison the cost claim is about), and
	// their Table 4 monthly storage cost.
	ReplBytes     int64
	ECBytes       int64
	ReplMonthly   float64
	ECMonthly     float64
	CostReduction float64

	// Region-loss audit: with eu-west fully severed, every erasure-coded
	// object must read back byte-identical via parity reconstruction.
	// PartitionPuts are additional objects acknowledged during the
	// partition (their eu-west fragments hinted); LostAckedWrites counts
	// objects unreadable during the loss or missing anywhere after heal
	// (must be zero). Reconstructs is the writer's ec_reconstructs_total.
	AuditedDuringLoss int
	PartitionPuts     int
	Reconstructs      int64
	LostAckedWrites   int
	Healed            bool
}

// ecCostReplSrc is the replication baseline: every object fully copied to
// all three regions (lazily, like EventualConsistency).
const ecCostReplSrc = `
Wiera ECCostRepl {
	Region1 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 5G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 5G}};
	Region3 = {name: LowLatencyInstance, region: eu-west,
		tier1 = {name: memory, size: 5G}};
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
		queue(what: insert.object, to: all_regions);
	}
}`

// ecCostStripeSrc is the EC instance: the stripe action runs the
// per-object chooser (same topology and tiers as the baseline).
const ecCostStripeSrc = `
Wiera ECCostStripe {
	Region1 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 5G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 5G}};
	Region3 = {name: LowLatencyInstance, region: eu-west,
		tier1 = {name: memory, size: 5G}};
	event(insert.into) : response {
		stripe(what: insert.object, to: all_regions);
	}
}`

// ecPayload builds a deterministic payload so reconstruction can be
// verified byte-for-byte.
func ecPayload(key string, size int64) []byte {
	out := make([]byte, size)
	seed := byte(len(key))
	for _, c := range []byte(key) {
		seed = seed*31 + c
	}
	for i := range out {
		out[i] = seed + byte(i%251)
	}
	return out
}

// ecCostDeploy starts one instance over a fresh three-region deployment.
func ecCostDeploy(id, src string) (*Deployment, *wiera.Node, []*wiera.Node, error) {
	d, err := NewDeployment(2000, simnet.USWest, simnet.USEast, simnet.EUWest)
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := d.Server.StartInstances(wiera.StartInstancesRequest{
		InstanceID: id, PolicySrc: src,
		Params: map[string]string{"t": "500ms", "queueFlush": "50ms", "antiEntropy": "1s"},
	}); err != nil {
		d.Close()
		return nil, nil, nil, err
	}
	var nodes []*wiera.Node
	for _, r := range []simnet.Region{simnet.USWest, simnet.USEast, simnet.EUWest} {
		n, err := d.Node(id + "/" + string(r))
		if err != nil {
			d.Close()
			return nil, nil, nil, err
		}
		nodes = append(nodes, n)
	}
	return d, nodes[0], nodes, nil
}

// waitKeys polls until every node holds at least want keys (fan-out and
// hint replay are asynchronous), on a wall-clock deadline.
func waitKeys(nodes []*wiera.Node, want int, deadline time.Duration) bool {
	until := time.Now().Add(deadline)
	for {
		done := true
		for _, n := range nodes {
			if n.Local().Objects().Len() < want {
				done = false
				break
			}
		}
		if done {
			return true
		}
		if time.Now().After(until) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// physicalBytes sums the physical payload bytes every node stores for the
// given keys (the fragment bundle for EC versions, the full object for
// replicas). Keys a node does not hold contribute nothing.
func physicalBytes(nodes []*wiera.Node, keys []string) int64 {
	var total int64
	for _, n := range nodes {
		for _, k := range keys {
			if m, err := n.Local().Objects().Latest(k); err == nil {
				total += m.StoredBytes()
			}
		}
	}
	return total
}

// ECCost runs the replication-vs-EC storage experiment.
func ECCost(opts Options) (*ECCostResult, error) {
	res := &ECCostResult{
		LargeKeys: 24, LargeSize: 256 << 10,
		SmallKeys: 30, SmallSize: 4 << 10,
		HotKeys: 4, PartitionPuts: 4,
	}
	if opts.Quick {
		res.LargeKeys, res.SmallKeys, res.HotKeys = 8, 10, 2
	}
	largeKey := func(i int) string { return fmt.Sprintf("large/%04d", i) }
	smallKey := func(i int) string { return fmt.Sprintf("small/%04d", i) }
	hotKey := func(i int) string { return fmt.Sprintf("hot/%04d", i) }
	var largeKeys []string
	for i := 0; i < res.LargeKeys; i++ {
		largeKeys = append(largeKeys, largeKey(i))
	}
	totalKeys := res.LargeKeys + res.SmallKeys + res.HotKeys

	ctx := context.Background()
	loadMixed := func(w *wiera.Node) error {
		for i := 0; i < res.LargeKeys; i++ {
			if _, err := w.Put(ctx, largeKey(i), ecPayload(largeKey(i), res.LargeSize), nil); err != nil {
				return err
			}
		}
		for i := 0; i < res.SmallKeys; i++ {
			if _, err := w.Put(ctx, smallKey(i), ecPayload(smallKey(i), res.SmallSize), nil); err != nil {
				return err
			}
		}
		for i := 0; i < res.HotKeys; i++ {
			if _, err := w.Put(ctx, hotKey(i), ecPayload(hotKey(i), res.LargeSize), nil); err != nil {
				return err
			}
		}
		return nil
	}

	// Baseline: plain 3x replication of the identical workload.
	{
		d, west, nodes, err := ecCostDeploy("repl", ecCostReplSrc)
		if err != nil {
			return nil, err
		}
		if err := loadMixed(west); err != nil {
			d.Close()
			return nil, err
		}
		west.FlushQueue()
		if !waitKeys(nodes, totalKeys, 30*time.Second) {
			d.Close()
			return nil, fmt.Errorf("eccost: replication baseline never converged")
		}
		res.ReplBytes = physicalBytes(nodes, largeKeys)
		d.Close()
	}

	// EC instance: same workload through the stripe chooser.
	d, west, nodes, err := ecCostDeploy("ec", ecCostStripeSrc)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	if err := loadMixed(west); err != nil {
		return nil, err
	}
	west.FlushQueue()
	if !waitKeys(nodes, totalKeys, 30*time.Second) {
		return nil, fmt.Errorf("eccost: EC instance never converged")
	}

	// Heat the hot objects past the chooser's gate, then rewrite them: the
	// new versions must come back as full replicas despite their size.
	for i := 0; i < res.HotKeys; i++ {
		for r := 0; r < 6; r++ {
			if _, _, err := west.Get(ctx, hotKey(i)); err != nil {
				return nil, fmt.Errorf("eccost: heating %s: %w", hotKey(i), err)
			}
		}
	}
	for i := 0; i < res.HotKeys; i++ {
		if _, err := west.Put(ctx, hotKey(i), ecPayload(hotKey(i)+"!v2", res.LargeSize), nil); err != nil {
			return nil, err
		}
	}
	west.FlushQueue()

	// Chooser classification audit at the writer.
	for i := 0; i < res.LargeKeys; i++ {
		if m, err := west.Local().Objects().Latest(largeKey(i)); err == nil && m.IsEC() {
			res.LargeEC++
		}
	}
	for i := 0; i < res.SmallKeys; i++ {
		if m, err := west.Local().Objects().Latest(smallKey(i)); err == nil && !m.IsEC() {
			res.SmallRepl++
		}
	}
	for i := 0; i < res.HotKeys; i++ {
		if m, err := west.Local().Objects().Latest(hotKey(i)); err == nil && m.Version >= 2 && !m.IsEC() {
			res.HotRepl++
		}
	}

	// Storage bytes and Table 4 monthly cost for the large cold objects.
	res.ECBytes = physicalBytes(nodes, largeKeys)
	res.ReplMonthly, _ = cost.StorageMonthly(cost.ClassMemory, float64(res.ReplBytes)/float64(1<<30))
	res.ECMonthly, _ = cost.StorageMonthly(cost.ClassMemory, float64(res.ECBytes)/float64(1<<30))
	if res.ECBytes > 0 {
		res.CostReduction = float64(res.ReplBytes) / float64(res.ECBytes)
	}

	// Region loss: sever eu-west from both surviving regions, acknowledge
	// a few more large writes (their eu-west fragments become hints), and
	// re-read every erasure-coded object from the writer. Each read must
	// reconstruct the fragments the lost region held from parity.
	d.Net.Partition(simnet.USWest, simnet.EUWest)
	d.Net.Partition(simnet.USEast, simnet.EUWest)
	partKey := func(i int) string { return fmt.Sprintf("part/%04d", i) }
	for i := 0; i < res.PartitionPuts; i++ {
		if _, err := west.Put(ctx, partKey(i), ecPayload(partKey(i), res.LargeSize), nil); err != nil {
			return nil, err
		}
	}
	audit := append([]string(nil), largeKeys...)
	for i := 0; i < res.PartitionPuts; i++ {
		audit = append(audit, partKey(i))
	}
	for _, k := range audit {
		data, _, err := west.Get(ctx, k)
		if err != nil || !bytes.Equal(data, ecPayload(k, res.LargeSize)) {
			res.LostAckedWrites++
			continue
		}
		res.AuditedDuringLoss++
	}
	if stats, err := d.Server.CollectStats("ec"); err == nil {
		for _, ns := range stats.Nodes {
			res.Reconstructs += ns.ECReconstructs
		}
	}

	// Heal; hint replay must deliver eu-west its fragment bundles of the
	// partition-era writes.
	d.Net.Heal(simnet.USWest, simnet.EUWest)
	d.Net.Heal(simnet.USEast, simnet.EUWest)
	eu := nodes[2]
	wantEU := totalKeys + res.PartitionPuts
	res.Healed = waitKeys([]*wiera.Node{eu}, wantEU, 30*time.Second)
	for i := 0; i < res.PartitionPuts; i++ {
		if _, err := eu.Local().Objects().Latest(partKey(i)); err != nil {
			res.LostAckedWrites++
		}
	}
	return res, nil
}

// Render prints the storage-cost report.
func (r *ECCostResult) Render() string {
	var b strings.Builder
	b.WriteString("Erasure-coded storage vs 3x replication (3 regions, EC 4+2)\n")
	fmt.Fprintf(&b, "workload: %d large cold x %d KiB, %d small x %d KiB, %d hot rewritten\n\n",
		r.LargeKeys, r.LargeSize>>10, r.SmallKeys, r.SmallSize>>10, r.HotKeys)
	rows := [][]string{
		{"3x replication", fmt.Sprintf("%d", r.ReplBytes), fmt.Sprintf("%.4f", r.ReplMonthly)},
		{"EC(4+2) stripe", fmt.Sprintf("%d", r.ECBytes), fmt.Sprintf("%.4f", r.ECMonthly)},
	}
	b.WriteString(table([]string{"layout (large cold objects)", "physical bytes", "$/month"}, rows))
	fmt.Fprintf(&b, "storage-cost reduction: %.2fx (floor 1.8x)\n\n", r.CostReduction)
	fmt.Fprintf(&b, "chooser: %d/%d large erasure-coded, %d/%d small replicated, %d/%d hot rewrites replicated\n",
		r.LargeEC, r.LargeKeys, r.SmallRepl, r.SmallKeys, r.HotRepl, r.HotKeys)
	fmt.Fprintf(&b, "region loss (eu-west severed): %d/%d objects read back intact (%d via parity reconstruction)\n",
		r.AuditedDuringLoss, r.LargeKeys+r.PartitionPuts, r.Reconstructs)
	fmt.Fprintf(&b, "  %d writes acked during the partition; healed: %v; lost acked writes: %d\n",
		r.PartitionPuts, r.Healed, r.LostAckedWrites)
	return b.String()
}

// ShapeHolds verifies the ISSUE's acceptance floors.
func (r *ECCostResult) ShapeHolds() error {
	if r.CostReduction < 1.8 {
		return fmt.Errorf("eccost: %.2fx storage-cost reduction, want >= 1.8x", r.CostReduction)
	}
	if r.LargeEC != r.LargeKeys {
		return fmt.Errorf("eccost: chooser erasure-coded %d/%d large cold objects", r.LargeEC, r.LargeKeys)
	}
	if r.SmallRepl != r.SmallKeys {
		return fmt.Errorf("eccost: chooser kept %d/%d small objects replicated", r.SmallRepl, r.SmallKeys)
	}
	if r.HotRepl != r.HotKeys {
		return fmt.Errorf("eccost: chooser kept %d/%d hot rewrites replicated", r.HotRepl, r.HotKeys)
	}
	if r.AuditedDuringLoss != r.LargeKeys+r.PartitionPuts {
		return fmt.Errorf("eccost: only %d/%d objects reconstructed during region loss",
			r.AuditedDuringLoss, r.LargeKeys+r.PartitionPuts)
	}
	if r.Reconstructs == 0 {
		return fmt.Errorf("eccost: no parity reconstructions recorded during region loss")
	}
	if !r.Healed {
		return fmt.Errorf("eccost: severed region never caught up after heal")
	}
	if r.LostAckedWrites != 0 {
		return fmt.Errorf("eccost: %d acknowledged writes lost", r.LostAckedWrites)
	}
	return nil
}

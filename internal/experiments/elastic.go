package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/wiera"
	"repro/internal/ycsb"
)

// elasticPolicy is the scaleout store again — one region, memory tier with
// an explicit IOPS admission cap — because the cap is what makes elasticity
// observable: a fixed pool saturates under the diurnal peak, and only the
// autoscaler's AddWorker/RemoveWorker loop changes the ceiling.
const elasticPolicy = `
Wiera ElasticStore {
	Region1 = {name: LowLatencyInstance, region: us-east, primary: true,
		tier1 = {name: memory, size: 4G, iops: 250}};
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
	}
}`

// ElasticResult is the closed-loop elasticity audit: a zipfian workload
// swings through a 12x client surge (with a mid-surge hot-spot shift) and
// back, and the instance must adapt with no operator action — grow under
// pressure, promote the hot keys, shed both when the load leaves.
type ElasticResult struct {
	StartWorkers int
	PeakWorkers  int
	FinalWorkers int
	Grows        int
	Shrinks      int

	LowOpsPerSec  float64
	HighOpsPerSec float64

	HighGetP99Ms    float64 // surge phase, after the hot-spot shift
	SettledGetP99Ms float64 // final low phase, after the pool shrank back

	Promotions int64
	Demotions  int64
	HotGets    int64

	AckedWrites int
	Lost        int
}

// elasticParams is the instance configuration under test: a 2-worker floor
// with the controller allowed up to 5, per-worker watermarks bracketing the
// low-phase load (grow above 150 ops/s/worker, shrink below 100), and heat
// tracking promoting keys past ~40 accesses per half-life.
func elasticParams() map[string]string {
	return map[string]string{
		"workers": "2", "t": "500ms",
		"autoscale": "true", "asMin": "2", "asMax": "5",
		"asInterval": "1s", "asCooldown": "3s",
		"asHighOps": "150", "asLowOps": "100",
		"asGrowStreak": "2", "asShrinkStreak": "3",
		"heatTrack": "true", "heatInterval": "1s",
		"heatPromoteRate": "40", "heatDemoteRate": "8", "heatReplicas": "1",
	}
}

// elasticRun carries the shared state of one experiment run.
type elasticRun struct {
	d       *Deployment
	cli     *wiera.Client
	records int
	seed    int64

	mu    sync.Mutex
	acked map[string]string

	// Workers come and go, and their monotonic heat counters leave with
	// them; the sampler keeps the last value seen per node so totals
	// survive the shrink that is the whole point of the experiment.
	statMu     sync.Mutex
	promByNode map[string]int64
	demByNode  map[string]int64
	hotByNode  map[string]int64
}

// sampleStats folds the current per-node heat counters into the run's
// node-sticky maximums.
func (r *elasticRun) sampleStats() {
	st, err := r.d.Server.CollectStats("elastic")
	if err != nil {
		return
	}
	r.statMu.Lock()
	defer r.statMu.Unlock()
	for _, n := range st.Nodes {
		if n.HeatPromotions > r.promByNode[n.Name] {
			r.promByNode[n.Name] = n.HeatPromotions
		}
		if n.HeatDemotions > r.demByNode[n.Name] {
			r.demByNode[n.Name] = n.HeatDemotions
		}
		if n.HotGets > r.hotByNode[n.Name] {
			r.hotByNode[n.Name] = n.HotGets
		}
	}
}

func (r *elasticRun) heatTotals() (prom, dem, hot int64) {
	r.statMu.Lock()
	defer r.statMu.Unlock()
	for _, v := range r.promByNode {
		prom += v
	}
	for _, v := range r.demByNode {
		dem += v
	}
	for _, v := range r.hotByNode {
		hot += v
	}
	return prom, dem, hot
}

// phase runs the given concurrency for dur simulated time: 95% zipfian
// gets, 5% puts (each writer snaps put keys into its own partition so "last
// acked value" stays well-defined), with the whole rank space rotated by
// shift — the hot-spot shift is just a different shift. pace > 0 makes each
// client open-loop (one op per pace interval, the diurnal trough); pace == 0
// is a closed loop that saturates whatever capacity exists (the surge). The
// trough must be open-loop or the controller can never shrink: a closed-loop
// client speeds up whenever capacity is added, so its measured ops/s tracks
// the pool instead of the offered load. Returns aggregate ops/s and the get
// p99 in milliseconds.
func (r *elasticRun) phase(clients int, dur time.Duration, shift int, pace time.Duration) (float64, float64, error) {
	clk := r.d.Clk
	deadline := clk.Now().Add(dur)
	start := clk.Now()
	hist := stats.NewHistogram()
	var histMu sync.Mutex
	var ops atomic.Int64
	var wg sync.WaitGroup
	ctx := context.Background()
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			z := ycsb.NewZipfian(r.records, ycsb.ZipfianConstant, r.seed+int64(shift)*7919+int64(id)*101)
			rng := rand.New(rand.NewSource(r.seed + int64(id)*13 + int64(shift)))
			for clk.Now().Before(deadline) {
				if pace > 0 {
					clk.Sleep(pace)
				}
				idx := (z.Next() + shift) % r.records
				if rng.Float64() < 0.05 {
					idx -= idx % clients
					idx += id
					if idx >= r.records {
						idx -= clients
					}
					key := ycsb.Key(idx)
					val := fmt.Sprintf("el:%d:%d:%d", shift, id, ops.Load())
					if _, err := r.cli.Put(ctx, key, []byte(val)); err == nil {
						r.mu.Lock()
						r.acked[key] = val
						r.mu.Unlock()
						ops.Add(1)
					}
					continue
				}
				t0 := clk.Now()
				if _, _, err := r.cli.Get(ctx, ycsb.Key(idx)); err == nil {
					histMu.Lock()
					hist.Record(clk.Now().Sub(t0))
					histMu.Unlock()
					ops.Add(1)
				}
			}
		}(id)
	}
	wg.Wait()
	r.sampleStats()
	elapsed := clk.Now().Sub(start)
	if elapsed <= 0 {
		return 0, 0, fmt.Errorf("no simulated time elapsed")
	}
	return float64(ops.Load()) / elapsed.Seconds(),
		float64(hist.Percentile(99)) / float64(time.Millisecond), nil
}

func (r *elasticRun) workers() (int, error) {
	rm, err := r.d.Server.Ring("elastic")
	if err != nil {
		return 0, err
	}
	if rm == nil {
		return 1, nil
	}
	return rm.Shards(), nil
}

// Elastic runs the autoscaler + heat-tracking experiment: low load, a 12x
// surge with a mid-surge hot-spot shift, then low again — the instance must
// ride it end to end with no operator action.
func Elastic(opts Options) (*ElasticResult, error) {
	records := 400
	lowDur, highDur, settleDur := 8*time.Second, 24*time.Second, 42*time.Second
	if !opts.Quick {
		records = 2000
		lowDur, highDur, settleDur = 20*time.Second, 60*time.Second, 90*time.Second
	}
	d, err := NewSimDeployment(simnet.USEast)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	if _, err := d.Server.StartInstances(wiera.StartInstancesRequest{
		InstanceID: "elastic", PolicySrc: elasticPolicy, Params: elasticParams(),
	}); err != nil {
		return nil, err
	}
	cli, err := wiera.NewClient(d.Fabric, "cli-elastic", simnet.USEast, d.Server.Name(), "elastic")
	if err != nil {
		return nil, err
	}
	defer cli.Close()

	r := &elasticRun{
		d: d, cli: cli, records: records, seed: opts.Seed,
		acked:      make(map[string]string),
		promByNode: make(map[string]int64),
		demByNode:  make(map[string]int64),
		hotByNode:  make(map[string]int64),
	}
	if err := parallelLoad(clientStore{cli}, records, 64); err != nil {
		return nil, err
	}
	res := &ElasticResult{}
	if res.StartWorkers, err = r.workers(); err != nil {
		return nil, err
	}

	// Background sampler: the shrink phase tears workers down, so their
	// counters must be captured while they still answer.
	samplerStop := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		for {
			select {
			case <-samplerStop:
				return
			case <-time.After(5 * time.Millisecond):
				r.sampleStats()
			}
		}
	}()

	// Phase 1: trough — one open-loop client at ~100 ops/s. The controller
	// must hold the 2-worker floor.
	const troughPace = 10 * time.Millisecond
	if res.LowOpsPerSec, _, err = r.phase(1, lowDur, 0, troughPace); err != nil {
		return nil, err
	}
	// Phase 2: surge — 12 closed-loop clients, with the hot spot shifting
	// halfway through.
	shift := records / 2
	high1, _, err := r.phase(12, highDur/2, 0, 0)
	if err != nil {
		return nil, err
	}
	high2, highP99, err := r.phase(12, highDur/2, shift, 0)
	if err != nil {
		return nil, err
	}
	res.HighOpsPerSec = (high1 + high2) / 2
	res.HighGetP99Ms = highP99
	if res.PeakWorkers, err = r.workers(); err != nil {
		return nil, err
	}
	// Phase 3: trough again. The controller must shed the surge capacity.
	if _, res.SettledGetP99Ms, err = r.phase(1, settleDur, shift, troughPace); err != nil {
		return nil, err
	}
	close(samplerStop)
	samplerWG.Wait()
	r.sampleStats()
	if res.FinalWorkers, err = r.workers(); err != nil {
		return nil, err
	}

	ctl := d.Server.Autoscaler("elastic")
	if ctl == nil {
		return nil, fmt.Errorf("elastic: autoscale param did not start a controller")
	}
	for _, a := range ctl.Actions() {
		if a.Err != nil {
			continue
		}
		switch a.What {
		case "grow":
			res.Grows++
			if a.Workers+1 > res.PeakWorkers {
				res.PeakWorkers = a.Workers + 1
			}
		case "shrink":
			res.Shrinks++
		}
	}
	res.Promotions, res.Demotions, res.HotGets = r.heatTotals()

	// Zero-lost-acked-writes audit, through a fresh client so no hot-replica
	// hint can route a read anywhere but the key's owner.
	audit, err := wiera.NewClient(d.Fabric, "cli-elastic-audit", simnet.USEast, d.Server.Name(), "elastic")
	if err != nil {
		return nil, err
	}
	defer audit.Close()
	res.AckedWrites = len(r.acked)
	for key, want := range r.acked {
		data, _, err := audit.Get(context.Background(), key)
		if err != nil || string(data) != want {
			res.Lost++
		}
	}
	return res, nil
}

// Render prints the elasticity timeline and audit.
func (r *ElasticResult) Render() string {
	var b strings.Builder
	b.WriteString("Elastic: autoscaler + hot-key replication across a 12x load swing\n")
	fmt.Fprintf(&b, "workers: start=%d peak=%d final=%d (grows=%d shrinks=%d, no operator action)\n",
		r.StartWorkers, r.PeakWorkers, r.FinalWorkers, r.Grows, r.Shrinks)
	fmt.Fprintf(&b, "throughput: trough %.0f ops/s, surge %.0f ops/s\n", r.LowOpsPerSec, r.HighOpsPerSec)
	fmt.Fprintf(&b, "get p99: surge (post hot-spot shift) %.1fms, settled %.1fms\n",
		r.HighGetP99Ms, r.SettledGetP99Ms)
	fmt.Fprintf(&b, "heat: promotions=%d demotions=%d hot-replica gets=%d\n",
		r.Promotions, r.Demotions, r.HotGets)
	fmt.Fprintf(&b, "acked writes=%d lost=%d\n", r.AckedWrites, r.Lost)
	return b.String()
}

// ShapeHolds verifies the elasticity claims: the pool grew under the surge
// and shed capacity afterwards, hot keys were promoted, served from
// replicas, and demoted again, tail latency stayed bounded, and no acked
// write was lost across any of the autoscaler's rebalances.
func (r *ElasticResult) ShapeHolds() error {
	if r.StartWorkers != 2 {
		return fmt.Errorf("elastic: started at %d workers, want 2", r.StartWorkers)
	}
	if r.Grows == 0 || r.PeakWorkers <= r.StartWorkers {
		return fmt.Errorf("elastic: surge never grew the pool (peak %d, grows %d)",
			r.PeakWorkers, r.Grows)
	}
	if r.Shrinks == 0 || r.FinalWorkers >= r.PeakWorkers {
		return fmt.Errorf("elastic: trough never shed capacity (final %d, peak %d, shrinks %d)",
			r.FinalWorkers, r.PeakWorkers, r.Shrinks)
	}
	if r.FinalWorkers > 3 {
		return fmt.Errorf("elastic: pool settled at %d workers, want <= 3", r.FinalWorkers)
	}
	if r.HighOpsPerSec <= r.LowOpsPerSec {
		return fmt.Errorf("elastic: surge throughput %.0f not above trough %.0f",
			r.HighOpsPerSec, r.LowOpsPerSec)
	}
	if r.Promotions == 0 {
		return fmt.Errorf("elastic: no key was ever promoted to hot-key replication")
	}
	if r.Demotions == 0 {
		return fmt.Errorf("elastic: no hot key was ever demoted")
	}
	if r.HotGets == 0 {
		return fmt.Errorf("elastic: no get was ever served from a hot-key replica")
	}
	if r.HighGetP99Ms > 1000 {
		return fmt.Errorf("elastic: surge get p99 %.0fms, want bounded (< 1s)", r.HighGetP99Ms)
	}
	if r.SettledGetP99Ms > 500 {
		return fmt.Errorf("elastic: settled get p99 %.0fms, want < 500ms", r.SettledGetP99Ms)
	}
	if r.AckedWrites == 0 {
		return fmt.Errorf("elastic: no writes were acked")
	}
	if r.Lost > 0 {
		return fmt.Errorf("elastic: %d of %d acked writes lost across autoscaling",
			r.Lost, r.AckedWrites)
	}
	return nil
}

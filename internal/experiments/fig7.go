package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/policy"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/wiera"
	"repro/internal/ycsb"
)

// Fig7Result reproduces "Figure 7: Changing consistency at run-time": the
// put-latency timeline at the US-West instance while three delays are
// injected, two sustained (triggering a switch to eventual consistency and
// back) and one transient (ignored).
type Fig7Result struct {
	// Series is the application-perceived put latency over time (ms).
	Series []stats.Point
	// Changes is the applied policy-change log.
	Changes []wiera.ChangeEvent
	// Phase means (ms): strong consistency under normal conditions,
	// eventual consistency during sustained delays.
	StrongMeanMs   float64
	EventualMeanMs float64
	// SwitchesToEventual / SwitchesToStrong count applied changes; the
	// paper's run has two of each (delays (a) and (b)), with delay (c)
	// ignored.
	SwitchesToEventual int
	SwitchesToStrong   int
	// TransientIgnored is true when no change fired during delay (c).
	TransientIgnored bool
	// PaperStrongMs / PaperEventualMs are the values the paper reports.
	PaperStrongMs   float64
	PaperEventualMs float64
	// DebugPhases records the phase boundaries for diagnostics.
	DebugPhases []PhaseMark
}

// PhaseMark timestamps one experiment phase boundary.
type PhaseMark struct {
	Name string
	At   time.Time
}

// Fig7 runs the dynamic-consistency experiment: four regions under
// MultiPrimariesConsistency with the DynamicConsistency control policy
// (800 ms / period threshold), YCSB workload A clients in every region,
// and three injected delays.
func Fig7(opts Options) (*Fig7Result, error) {
	// Period threshold: the paper uses 30 s; Quick mode shrinks it (and
	// every phase) 3x. The latency threshold stays 800 ms.
	period := 30 * time.Second
	factor := 10.0
	if opts.Quick {
		period = 10 * time.Second
	}
	monitorWindow := period / 4
	dynSrc := strings.ReplaceAll(mustBuiltinSource("DynamicConsistency"), "30s",
		fmt.Sprintf("%ds", int(period.Seconds())))

	d, err := NewDeployment(factor)
	if err != nil {
		return nil, err
	}
	defer d.Close()

	// The paper's Fig 7 runs four regions: US-West, US-East, EU-West,
	// Asia-East — the builtin's three plus Asia-East.
	policySrc := `
Wiera MultiPrimariesConsistency {
	Region1 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region3 = {name: LowLatencyInstance, region: eu-west,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region4 = {name: LowLatencyInstance, region: asia-east,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	event(insert.into) : response {
		lock(what: insert.key);
		store(what: insert.object, to: local_instance);
		copy(what: insert.object, to: all_regions);
		release(what: insert.key);
	}
}`
	nodes, err := d.Server.StartInstances(wiera.StartInstancesRequest{
		InstanceID: "fig7",
		PolicySrc:  policySrc,
		Params: map[string]string{
			"t": "2s", "dynamic": dynSrc,
			"monitorWindow": fmt.Sprintf("%dms", monitorWindow.Milliseconds()),
		},
	})
	if err != nil {
		return nil, err
	}

	west, err := d.Node("fig7/us-west")
	if err != nil {
		return nil, err
	}

	// One YCSB-A client per region with a disjoint keyspace (each region's
	// application instance loads its own records, so lock contention does
	// not dominate the latency signal the monitor watches).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, pi := range nodes {
		node, err := d.Node(pi.Name)
		if err != nil {
			return nil, err
		}
		w := shrunkWorkload(ycsb.WorkloadA, 64, 1024)
		w.Prefix = string(pi.Region) + "/"
		cli, err := ycsb.NewClient(w, nodeStore{node}, opts.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		if err := cli.Load(); err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(cli *ycsb.Client) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					cli.RunOne(d.Clk.Now)
					// Paced load (YCSB target-rate throttling): keeps
					// global-lock contention on hot zipfian keys from
					// dominating the latency signal.
					d.Clk.Sleep(500 * time.Millisecond)
				}
			}
		}(cli)
	}

	res := &Fig7Result{PaperStrongMs: 400, PaperEventualMs: 10}
	sleep := func(mult float64) { d.Clk.Sleep(time.Duration(mult * float64(period))) }
	type window struct{ from, to time.Time }
	mark := func(name string) time.Time {
		now := d.Clk.Now()
		res.DebugPhases = append(res.DebugPhases, PhaseMark{Name: name, At: now})
		return now
	}
	markStart := func() time.Time { return mark("normal") }

	// Let load-phase latencies age out of the monitor window before the
	// measured timeline begins.
	sleep(1.2)

	// Phase 1: normal operation under strong consistency.
	normalFrom := markStart()
	sleep(1.5)
	normalTo := d.Clk.Now()

	// Delay (a): sustained beyond the period threshold.
	delayAOn := mark("delay-a-on")
	d.Net.InjectRegionLag(simnet.USWest, 1200*time.Millisecond)
	sleep(3.5)
	d.Net.InjectRegionLag(simnet.USWest, 0)
	// Detection + the policy change take over a period; measure the
	// eventual-consistency phase from well inside the delay window.
	eventualA := window{from: delayAOn.Add(time.Duration(2.5 * float64(period))), to: mark("delay-a-off")}
	// Recovery: quiet period, switch back.
	sleep(3.0)

	// Delay (b): second sustained delay.
	mark("delay-b-on")
	d.Net.InjectRegionLag(simnet.USWest, 1200*time.Millisecond)
	sleep(3.5)
	d.Net.InjectRegionLag(simnet.USWest, 0)
	mark("delay-b-off")
	sleep(3.0)

	// Delay (c): transient — shorter than the period threshold.
	transientFrom := mark("delay-c-on")
	d.Net.InjectRegionLag(simnet.USWest, 1200*time.Millisecond)
	sleep(0.25)
	d.Net.InjectRegionLag(simnet.USWest, 0)
	mark("delay-c-off")
	// Wait out the window so a (wrong) late switch would still be caught.
	sleep(1.5)
	transientTo := mark("end")

	close(stop)
	wg.Wait()

	res.Series = west.PutSeries.Points()
	res.Changes = d.Server.ChangeLog()
	for _, ch := range res.Changes {
		if ch.What != "consistency" {
			continue
		}
		switch ch.To {
		case "EventualConsistency":
			res.SwitchesToEventual++
		case "MultiPrimariesConsistency":
			res.SwitchesToStrong++
		}
	}
	res.TransientIgnored = true
	for _, ch := range res.Changes {
		if ch.What == "consistency" && ch.At.After(transientFrom) && ch.At.Before(transientTo) {
			res.TransientIgnored = false
		}
	}
	res.StrongMeanMs = meanInWindow(res.Series, normalFrom, normalTo)
	// Eventual-phase samples: inside delay (a), after the switch landed.
	// Use the second half of the delay window to skip the transition.
	mid := eventualA.from.Add(eventualA.to.Sub(eventualA.from) / 2)
	res.EventualMeanMs = meanInWindow(res.Series, mid, eventualA.to)
	return res, nil
}

func meanInWindow(points []stats.Point, from, to time.Time) float64 {
	sum, n := 0.0, 0
	for _, p := range points {
		if p.At.After(from) && p.At.Before(to) {
			sum += p.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Render prints the timeline summary the figure conveys.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7: Changing consistency at run-time\n")
	fmt.Fprintf(&b, "put latency, strong consistency (normal): %.1f ms (paper ~%.0f ms)\n",
		r.StrongMeanMs, r.PaperStrongMs)
	fmt.Fprintf(&b, "put latency, eventual (during sustained delay): %.1f ms (paper <%.0f ms)\n",
		r.EventualMeanMs, r.PaperEventualMs)
	fmt.Fprintf(&b, "switches to eventual: %d (paper: 2, delays a+b)\n", r.SwitchesToEventual)
	fmt.Fprintf(&b, "switches back to strong: %d (paper: 2, points 1+2)\n", r.SwitchesToStrong)
	fmt.Fprintf(&b, "transient delay (c) ignored: %v (paper: yes)\n", r.TransientIgnored)
	fmt.Fprintf(&b, "timeline samples: %d, policy changes: %d\n", len(r.Series), len(r.Changes))
	return b.String()
}

// ShapeHolds reports whether the reproduction preserves the figure's
// qualitative claims.
func (r *Fig7Result) ShapeHolds() error {
	if r.SwitchesToEventual < 2 {
		return fmt.Errorf("fig7: only %d switches to eventual (want 2)", r.SwitchesToEventual)
	}
	if r.SwitchesToStrong < 2 {
		return fmt.Errorf("fig7: only %d switches back to strong (want 2)", r.SwitchesToStrong)
	}
	if !r.TransientIgnored {
		return fmt.Errorf("fig7: transient delay caused a switch")
	}
	if r.StrongMeanMs < 100 || r.StrongMeanMs > 900 {
		return fmt.Errorf("fig7: strong-phase mean %.1f ms outside [100,900]", r.StrongMeanMs)
	}
	if r.EventualMeanMs >= r.StrongMeanMs/2 {
		return fmt.Errorf("fig7: eventual mean %.1f ms not well under strong mean %.1f ms",
			r.EventualMeanMs, r.StrongMeanMs)
	}
	return nil
}

// nodeStore adapts a Wiera node to the YCSB Store interface.
type nodeStore struct{ n *wiera.Node }

// Put implements ycsb.Store.
func (s nodeStore) Put(key string, value []byte) error {
	_, err := s.n.Put(context.Background(), key, value, nil)
	return err
}

// Get implements ycsb.Store.
func (s nodeStore) Get(key string) ([]byte, error) {
	data, _, err := s.n.Get(context.Background(), key)
	return data, err
}

// shrunkWorkload copies a standard workload with a smaller keyspace and
// value size suited to simulation runs.
func shrunkWorkload(w ycsb.Workload, records, fieldLen int) ycsb.Workload {
	w.RecordCount = records
	w.FieldLength = fieldLen
	return w
}

func mustBuiltinSource(name string) string {
	src, err := policy.BuiltinSource(name)
	if err != nil {
		panic(err)
	}
	return src
}

package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/simnet"
	"repro/internal/wiera"
)

// BatchFlushResult measures the replication group commit (DESIGN.md Sec 8):
// a three-region eventual-consistency instance queues a large update backlog,
// then flushes it once per-key (one MethodApplyUpdate RPC per queued entry,
// the pre-batching wire protocol) and once batched (per-peer chunked
// MethodApplyUpdateBatch fan-out). Both runs use identical topologies and
// calibrated WAN RTTs; the flush is timed on the deployment clock, so the
// durations mostly count sequential WAN round trips. A second batched phase
// flushes into a live partition and verifies the partial-failure contract:
// every acknowledged write reaches the reachable peer immediately and the
// partitioned peer after heal + hint replay.
type BatchFlushResult struct {
	// Keys is the queued backlog size per timing run; Regions the
	// deployment width (1 writer + Regions-1 WAN peers).
	Keys    int
	Regions int
	// PerKeyFlush and BatchedFlush are the clock-time flush durations;
	// Speedup is their ratio (the ISSUE floor is 5x).
	PerKeyFlush  time.Duration
	BatchedFlush time.Duration
	Speedup      float64
	// Chunks and Updates are the batched run's repl_batch_* counters at the
	// writer: Updates spans both peers; Chunks shows the RPC collapse
	// (ceil(Keys/128) per peer at 64 B values).
	Chunks  int64
	Updates int64
	// Partition-phase accounting: PartitionKeys writes were acknowledged
	// with one peer unreachable, then flushed. ReachableKeys counts those
	// present on the healthy peer right after the flush; LostAckedWrites
	// counts acked keys missing from any replica after heal + replay
	// (must be zero); Healed reports whether the partitioned peer caught
	// up before the deadline.
	PartitionKeys   int
	ReachableKeys   int
	LostAckedWrites int
	Healed          bool
}

// batchFlushSrc is the three-region eventual-consistency policy under test.
const batchFlushSrc = `
Wiera BatchFlushEventual {
	Region1 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 5G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 5G}};
	Region3 = {name: LowLatencyInstance, region: eu-west,
		tier1 = {name: memory, size: 5G}};
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
		queue(what: insert.object, to: all_regions);
	}
}`

// batchFlushDeploy builds one three-region deployment, returning the writer
// and its two WAN peers. queueFlush is set far beyond the experiment so only
// the explicit FlushQueue calls drain the backlog.
func batchFlushDeploy(params map[string]string) (*Deployment, *wiera.Node, *wiera.Node, *wiera.Node, error) {
	d, err := NewDeployment(2000, simnet.USWest, simnet.USEast, simnet.EUWest)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	base := map[string]string{"t": "500ms", "queueFlush": "10m", "antiEntropy": "1s"}
	for k, v := range params {
		base[k] = v
	}
	if _, err := d.Server.StartInstances(wiera.StartInstancesRequest{
		InstanceID: "bf", PolicySrc: batchFlushSrc, Params: base,
	}); err != nil {
		d.Close()
		return nil, nil, nil, nil, err
	}
	west, err := d.Node("bf/us-west")
	if err != nil {
		d.Close()
		return nil, nil, nil, nil, err
	}
	east, err := d.Node("bf/us-east")
	if err != nil {
		d.Close()
		return nil, nil, nil, nil, err
	}
	eu, err := d.Node("bf/eu-west")
	if err != nil {
		d.Close()
		return nil, nil, nil, nil, err
	}
	return d, west, east, eu, nil
}

// queueBacklog acknowledges keys locally at the writer, leaving them in the
// update queue.
func queueBacklog(n *wiera.Node, prefix string, keys int) error {
	payload := make([]byte, 64)
	for i := 0; i < keys; i++ {
		if _, err := n.Put(context.Background(), fmt.Sprintf("%s/%05d", prefix, i), payload, nil); err != nil {
			return err
		}
	}
	return nil
}

// timedFlush drains the writer's queue and returns the clock-time cost.
func timedFlush(d *Deployment, n *wiera.Node) time.Duration {
	start := d.Clk.Now()
	n.FlushQueue()
	return d.Clk.Now().Sub(start)
}

// BatchFlush runs the group-commit experiment.
func BatchFlush(opts Options) (*BatchFlushResult, error) {
	keys := 1000
	if opts.Quick {
		keys = 200
	}
	res := &BatchFlushResult{Keys: keys, Regions: 3, PartitionKeys: keys / 4}

	// Per-key ablation run: maxBatchBytes=false selects the one-RPC-per-
	// entry flush loop.
	{
		d, west, _, _, err := batchFlushDeploy(map[string]string{"maxBatchBytes": "false"})
		if err != nil {
			return nil, err
		}
		if err := queueBacklog(west, "k", keys); err != nil {
			d.Close()
			return nil, err
		}
		res.PerKeyFlush = timedFlush(d, west)
		d.Close()
	}

	// Batched run on an identical topology, then the partition phase on the
	// same deployment.
	d, west, east, eu, err := batchFlushDeploy(nil)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	if err := queueBacklog(west, "k", keys); err != nil {
		return nil, err
	}
	res.BatchedFlush = timedFlush(d, west)
	if res.BatchedFlush > 0 {
		res.Speedup = float64(res.PerKeyFlush) / float64(res.BatchedFlush)
	}
	if stats, err := d.Server.CollectStats("bf"); err == nil {
		for _, ns := range stats.Nodes {
			if ns.Name == "bf/us-west" {
				res.Chunks, res.Updates = ns.BatchChunks, ns.BatchUpdates
			}
		}
	}

	// Partition phase: acknowledge another backlog while eu-west is
	// unreachable, flush into the partition, and verify no acked write is
	// lost. The flush delivers everything to us-east and hints the failed
	// eu-west entries; heal + replay must close the gap.
	d.Net.Partition(simnet.USWest, simnet.EUWest)
	if err := queueBacklog(west, "p", res.PartitionKeys); err != nil {
		return nil, err
	}
	eastBefore := east.Local().Objects().Len()
	west.FlushQueue()
	res.ReachableKeys = east.Local().Objects().Len() - eastBefore
	d.Net.Heal(simnet.USWest, simnet.EUWest)

	// Hint replay is ping-gated with backoff, so poll on a wall deadline
	// (the scaled clock compresses backoff 2000x).
	total := keys + res.PartitionKeys
	deadline := time.Now().Add(30 * time.Second)
	for eu.Local().Objects().Len() < total {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	res.Healed = eu.Local().Objects().Len() >= total
	for i := 0; i < res.PartitionKeys; i++ {
		key := fmt.Sprintf("p/%05d", i)
		for _, n := range []*wiera.Node{west, east, eu} {
			if _, err := n.Local().Objects().Latest(key); err != nil {
				res.LostAckedWrites++
				break
			}
		}
	}
	return res, nil
}

// Render prints the group-commit report.
func (r *BatchFlushResult) Render() string {
	var b strings.Builder
	b.WriteString("Replication group commit (batched flush fan-out, 3 regions)\n")
	fmt.Fprintf(&b, "backlog: %d keys queued at us-west, flushed to %d WAN peers\n\n",
		r.Keys, r.Regions-1)
	rows := [][]string{
		{"per-key fan-out", ms(r.PerKeyFlush), fmt.Sprintf("%d RPCs per peer", r.Keys)},
		{"batched fan-out", ms(r.BatchedFlush), fmt.Sprintf("%d chunks, %d updates", r.Chunks, r.Updates)},
	}
	b.WriteString(table([]string{"flush", "clock ms", "wire"}, rows))
	fmt.Fprintf(&b, "speedup: %.1fx\n\n", r.Speedup)
	fmt.Fprintf(&b, "partition phase: %d acked writes flushed with eu-west unreachable\n", r.PartitionKeys)
	fmt.Fprintf(&b, "  reachable peer delivery: %d/%d immediately; healed: %v; lost acked writes: %d\n",
		r.ReachableKeys, r.PartitionKeys, r.Healed, r.LostAckedWrites)
	return b.String()
}

// ShapeHolds verifies the ISSUE's acceptance floor.
func (r *BatchFlushResult) ShapeHolds() error {
	if r.Speedup < 5 {
		return fmt.Errorf("batchflush: %.1fx speedup, want >=5x", r.Speedup)
	}
	if r.Chunks == 0 || r.Chunks >= int64(r.Keys) {
		return fmt.Errorf("batchflush: %d chunks for %d keys, batching did not collapse RPCs", r.Chunks, r.Keys)
	}
	if r.ReachableKeys != r.PartitionKeys {
		return fmt.Errorf("batchflush: reachable peer got %d/%d keys during partition",
			r.ReachableKeys, r.PartitionKeys)
	}
	if !r.Healed {
		return fmt.Errorf("batchflush: partitioned peer never caught up after heal")
	}
	if r.LostAckedWrites != 0 {
		return fmt.Errorf("batchflush: %d acknowledged writes lost", r.LostAckedWrites)
	}
	return nil
}

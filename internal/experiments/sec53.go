package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/cost"
	"repro/internal/policy"
	"repro/internal/simnet"
	"repro/internal/tiera"
)

// ColdDataResult reproduces the Sec 5.3 cold-data analysis: the
// ColdDataMonitoring event demotes objects unaccessed for 120 hours from
// EBS to S3-IA; the monthly savings follow Table 4's prices.
type ColdDataResult struct {
	TotalObjects int
	ColdMoved    int     // objects the policy demoted to the cheap tier
	HotKept      int     // objects still on the fast tier
	ColdFraction float64 // measured cold fraction (paper scenario: 80%)
	// Dollar analysis for the paper's 10 TB scenario.
	ScenarioColdGB   float64
	SavingsSSD       float64 // paper: $700/mo per instance
	SavingsHDD       float64 // paper: $300/mo per instance
	CentralizedExtra float64 // paper: $300/mo more across 4 regions
}

// Sec53ColdData runs the ReducedCostPolicy-style instance: objects are
// loaded, 20% stay hot (accessed), the clock advances past the 120-hour
// threshold, and the object monitor demotes the cold 80%.
func Sec53ColdData(opts Options) (*ColdDataResult, error) {
	objects := 100
	if opts.Quick {
		objects = 40
	}
	clk := clock.NewSim(time.Time{})
	stop := clk.AutoAdvance(50 * time.Microsecond)
	defer stop()

	// Figure 6(a)'s instance: a fast durable tier plus a cheap archival
	// tier, with the 120-hour cold-data event.
	src := `
Tiera ReducedCostInstance {
	tier1: {name: ebs-ssd, size: 10G};
	tier2: {name: s3-ia, size: 10G};
	event(object.lastAccessedTime > 120h) : response {
		move(what: object.location == tier1, to: tier2, bandwidth: 100KB/s);
	}
}`
	spec, err := policy.Parse(src)
	if err != nil {
		return nil, err
	}
	acct := cost.NewAccountant()
	inst, err := tiera.New(tiera.Config{
		Name: "sec53", Region: simnet.USEast, Spec: spec, Clock: clk, Accountant: acct,
	})
	if err != nil {
		return nil, err
	}
	defer inst.Close()

	payload := make([]byte, 8192)
	for i := 0; i < objects; i++ {
		if _, err := inst.Put(context.Background(), fmt.Sprintf("obj-%03d", i), payload); err != nil {
			return nil, err
		}
	}
	// 20% of objects stay hot: re-accessed at the 100-hour point, inside
	// the 120-hour threshold at scan time.
	hotCount := objects / 5
	clk.Advance(100 * time.Hour)
	for i := 0; i < hotCount; i++ {
		if _, _, err := inst.Get(context.Background(), fmt.Sprintf("obj-%03d", i)); err != nil {
			return nil, err
		}
	}
	// Cross the threshold for everything not re-accessed: cold objects are
	// now 121h old, hot ones 21h.
	clk.Advance(21 * time.Hour)
	if err := inst.RunObjectMonitorsOnce(); err != nil {
		return nil, err
	}

	res := &ColdDataResult{TotalObjects: objects, ScenarioColdGB: 8000}
	for i := 0; i < objects; i++ {
		meta, err := inst.Objects().Latest(fmt.Sprintf("obj-%03d", i))
		if err != nil {
			return nil, err
		}
		locs := inst.Locations(meta.Key, meta.Version)
		onCheap := len(locs) == 1 && locs[0] == "tier2"
		if onCheap {
			res.ColdMoved++
		} else {
			res.HotKept++
		}
	}
	res.ColdFraction = float64(res.ColdMoved) / float64(objects)
	if res.SavingsSSD, err = cost.ColdDataSavings(cost.ClassEBSSSD, cost.ClassS3IA, res.ScenarioColdGB); err != nil {
		return nil, err
	}
	if res.SavingsHDD, err = cost.ColdDataSavings(cost.ClassEBSHDD, cost.ClassS3IA, res.ScenarioColdGB); err != nil {
		return nil, err
	}
	if res.CentralizedExtra, err = cost.CentralizedSavings(cost.ClassS3IA, res.ScenarioColdGB, 4); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the movement outcome and the dollar analysis.
func (r *ColdDataResult) Render() string {
	var b strings.Builder
	b.WriteString("Sec 5.3: Reducing cost using multiple storage tiers\n")
	fmt.Fprintf(&b, "objects: %d; demoted to S3-IA after 120h idle: %d (%.0f%%); kept hot: %d\n",
		r.TotalObjects, r.ColdMoved, 100*r.ColdFraction, r.HotKept)
	fmt.Fprintf(&b, "10TB scenario, 80%% cold (8TB):\n")
	fmt.Fprintf(&b, "  move from EBS SSD -> S3-IA: save $%.0f/month per instance (paper $700)\n", r.SavingsSSD)
	fmt.Fprintf(&b, "  move from EBS HDD -> S3-IA: save $%.0f/month per instance (paper $300)\n", r.SavingsHDD)
	fmt.Fprintf(&b, "  centralize the cold replica (4 regions): save $%.0f/month more (paper $300)\n", r.CentralizedExtra)
	return b.String()
}

// ShapeHolds verifies demotion selectivity and the savings arithmetic.
func (r *ColdDataResult) ShapeHolds() error {
	wantCold := r.TotalObjects - r.TotalObjects/5
	if r.ColdMoved != wantCold {
		return fmt.Errorf("sec53: moved %d objects, want %d (the cold 80%%)", r.ColdMoved, wantCold)
	}
	if !almostEq(r.SavingsSSD, 700) || !almostEq(r.SavingsHDD, 300) || !almostEq(r.CentralizedExtra, 300) {
		return fmt.Errorf("sec53: savings $%.0f/$%.0f/$%.0f, paper $700/$300/$300",
			r.SavingsSSD, r.SavingsHDD, r.CentralizedExtra)
	}
	return nil
}

package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cost"
)

// Table4Result reproduces "Table 4: Storage Tiers' Price in AWS (US East)"
// — the pricing constants every cost computation in this repository uses —
// and validates the Sec 5.3 arithmetic built on them.
type Table4Result struct {
	Rows [][]string
	// Derived Sec 5.3 checks (verified against the paper's arithmetic).
	SavingsSSDToIA float64 // $/month for 8 TB cold moved from EBS SSD
	SavingsHDDToIA float64 // $/month for 8 TB cold moved from EBS HDD
	CentralSavings float64 // $/month from centralizing cold data (4 regions)
}

// Table4 renders the pricing table and validates the savings arithmetic.
func Table4() (*Table4Result, error) {
	res := &Table4Result{}
	classes := []cost.TierClass{cost.ClassEBSSSD, cost.ClassEBSHDD, cost.ClassS3, cost.ClassS3IA}
	for _, c := range classes {
		p, err := cost.PriceFor(c)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			string(c),
			fmt.Sprintf("$%g", p.StorageGBMonth),
			fmt.Sprintf("$%g", p.PutPer10K),
			fmt.Sprintf("$%g", p.GetPer10K),
			fmt.Sprintf("$%g", p.NetworkIntraDC),
			fmt.Sprintf("$%g", p.NetworkToNet),
		})
	}
	var err error
	if res.SavingsSSDToIA, err = cost.ColdDataSavings(cost.ClassEBSSSD, cost.ClassS3IA, 8000); err != nil {
		return nil, err
	}
	if res.SavingsHDDToIA, err = cost.ColdDataSavings(cost.ClassEBSHDD, cost.ClassS3IA, 8000); err != nil {
		return nil, err
	}
	if res.CentralSavings, err = cost.CentralizedSavings(cost.ClassS3IA, 8000, 4); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the table in the paper's layout.
func (r *Table4Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 4: Storage Tiers' Price in AWS (US East)\n")
	b.WriteString(table(
		[]string{"Class", "Storage GB/mo", "Put/10k", "Get/10k", "Net intra-DC/GB", "Net internet/GB"},
		r.Rows))
	fmt.Fprintf(&b, "\nSec 5.3 arithmetic: 8TB cold SSD->S3-IA saves $%.0f/mo (paper $700); "+
		"HDD->S3-IA saves $%.0f/mo (paper $300); centralizing saves $%.0f/mo more (paper $300)\n",
		r.SavingsSSDToIA, r.SavingsHDDToIA, r.CentralSavings)
	return b.String()
}

// ShapeHolds verifies the table reproduces the paper's numbers exactly.
func (r *Table4Result) ShapeHolds() error {
	if !almostEq(r.SavingsSSDToIA, 700) {
		return fmt.Errorf("table4: SSD savings $%.2f, paper $700", r.SavingsSSDToIA)
	}
	if !almostEq(r.SavingsHDDToIA, 300) {
		return fmt.Errorf("table4: HDD savings $%.2f, paper $300", r.SavingsHDDToIA)
	}
	if !almostEq(r.CentralSavings, 300) {
		return fmt.Errorf("table4: central savings $%.2f, paper $300", r.CentralSavings)
	}
	return nil
}

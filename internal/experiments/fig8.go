package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/simnet"
	"repro/internal/wiera"
	"repro/internal/ycsb"
)

// Fig8Table3Result reproduces "Figure 8: Percentage that applications can
// see the latest data" and "Table 3: Average put operation latency" — the
// Sec 5.2 ChangePrimary experiment: three regions with a travelling
// activity wave (Asia-East, then EU-West, then US-West), a read-mostly
// workload, asynchronous update propagation, and a primary that either
// stays in Asia-East (static) or follows the forwarded-request majority
// (changing).
type Fig8Table3Result struct {
	StaleFracStatic   float64 // fraction of gets returning outdated data, static primary
	StaleFracChanging float64 // same with the ChangePrimary policy active
	// Put latency means in ms, by region, for both configurations, plus
	// overall means.
	PutMsStatic     map[simnet.Region]float64
	PutMsChanging   map[simnet.Region]float64
	OverallStatic   float64
	OverallChanging float64
	// PrimaryMoves counts primary relocations in the changing run.
	PrimaryMoves int
	// Paper values.
	PaperStaleStatic, PaperStaleChanging float64
	PaperTable3Static                    map[simnet.Region]float64
	PaperTable3Changing                  map[simnet.Region]float64
}

// fig8Regions is the paper's region order for Table 3 rendering.
var fig8Regions = []simnet.Region{simnet.EUWest, simnet.USWest, simnet.AsiaEast}

// Fig8Table3 runs the experiment twice (static, changing) and collects
// both the Fig 8 staleness fractions and the Table 3 latency rows.
func Fig8Table3(opts Options) (*Fig8Table3Result, error) {
	res := &Fig8Table3Result{
		PaperStaleStatic:   0.69,
		PaperStaleChanging: 0.39,
		PaperTable3Static: map[simnet.Region]float64{
			simnet.EUWest: 216.61, simnet.USWest: 105.26, simnet.AsiaEast: 5,
		},
		PaperTable3Changing: map[simnet.Region]float64{
			simnet.EUWest: 95.19, simnet.USWest: 72.20, simnet.AsiaEast: 40.60,
		},
	}
	static, err := runFig8(opts, false)
	if err != nil {
		return nil, err
	}
	changing, err := runFig8(opts, true)
	if err != nil {
		return nil, err
	}
	res.StaleFracStatic = static.staleFrac
	res.StaleFracChanging = changing.staleFrac
	res.PutMsStatic = static.putMs
	res.PutMsChanging = changing.putMs
	res.OverallStatic = static.overallMs
	res.OverallChanging = changing.overallMs
	res.PrimaryMoves = changing.primaryMoves
	return res, nil
}

type fig8Run struct {
	staleFrac    float64
	putMs        map[simnet.Region]float64
	overallMs    float64
	primaryMoves int
}

func runFig8(opts Options, changing bool) (*fig8Run, error) {
	factor := 25.0
	runLen := 22*time.Minute + 30*time.Second // paper: waves with mean 7.5 min
	if opts.Quick {
		runLen = 6 * time.Minute
	}
	d, err := NewDeployment(factor, fig8Regions...)
	if err != nil {
		return nil, err
	}
	defer d.Close()

	// Primary-backup with asynchronous (queued) propagation, primary
	// initially in Asia-East — the paper's Sec 5.2 configuration.
	policySrc := `
Wiera PrimaryBackupAsync {
	Region1 = {name: LowLatencyInstance, region: asia-east, primary: true,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region2 = {name: LowLatencyInstance, region: eu-west,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region3 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	event(insert.into) : response {
		if (local_instance.isPrimary == true) {
			store(what: insert.object, to: local_instance);
			queue(what: insert.object, to: all_regions);
		} else {
			forward(what: insert.object, to: primary_instance);
		}
	}
}`
	params := map[string]string{
		"t": "2s",
		// Asynchronous propagation pace: replicas lag the primary by up
		// to 30s, well past the hot keys' inter-write interval, so reads
		// away from the primary see outdated data (the paper's Fig 8
		// staleness mechanism: "clients that are not close to the primary
		// instance can see outdated data").
		"queueFlush": "60s",
		// The paper's Wiera has no read repair; leaving anti-entropy on
		// would repair the stale reads this experiment exists to measure.
		"antiEntropy": "false",
	}
	if changing {
		// The paper's run uses a 15 s period threshold for the primary
		// monitor (Sec 5.2), not Fig 5(b)'s illustrative 600 s.
		params["dynamic"] = strings.Replace(mustBuiltinSource("ChangePrimary"), "600s", "15s", 1)
	}
	nodes, err := d.Server.StartInstances(wiera.StartInstancesRequest{
		InstanceID: "fig8", PolicySrc: policySrc, Params: params,
	})
	if err != nil {
		return nil, err
	}

	// 10 clients per region sharing one keyspace; the number of active
	// clients per region follows a normal-distribution wave peaking in
	// order Asia-East, EU-West, US-West (paper: mean 7.5 min, variance 5).
	const clientsPerRegion = 10
	sigma := float64(runLen) / 7.5
	peaks := map[simnet.Region]time.Duration{
		simnet.AsiaEast: runLen / 6,
		simnet.EUWest:   runLen / 2,
		simnet.USWest:   5 * runLen / 6,
	}
	start := d.Clk.Now()
	activeCount := func(r simnet.Region) int {
		t := float64(d.Clk.Since(start))
		dp := t - float64(peaks[r])
		n := int(math.Round(clientsPerRegion * math.Exp(-dp*dp/(2*sigma*sigma))))
		return n
	}

	// Shared keyspace: staleness arises from reading data written through
	// a (possibly remote) primary before propagation completes.
	w := shrunkWorkload(ycsb.WorkloadB, 32, 1024)
	loader, err := d.Node(nodes[0].Name)
	if err != nil {
		return nil, err
	}
	loadCli, err := ycsb.NewClient(w, nodeStore{loader}, opts.Seed)
	if err != nil {
		return nil, err
	}
	if err := loadCli.Load(); err != nil {
		return nil, err
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, pi := range nodes {
		node, err := d.Node(pi.Name)
		if err != nil {
			return nil, err
		}
		for c := 0; c < clientsPerRegion; c++ {
			cli, err := ycsb.NewClient(w, nodeStore{node}, opts.Seed+int64(c)*131+int64(len(pi.Name)))
			if err != nil {
				return nil, err
			}
			wg.Add(1)
			go func(region simnet.Region, idx int, cli *ycsb.Client) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(opts.Seed + int64(idx)))
				for {
					select {
					case <-stop:
						return
					default:
					}
					if idx < activeCount(region) {
						cli.RunOne(d.Clk.Now)
						d.Clk.Sleep(time.Duration(500+rng.Intn(500)) * time.Millisecond)
					} else {
						d.Clk.Sleep(2 * time.Second)
					}
				}
			}(pi.Region, c, cli)
		}
	}
	d.Clk.Sleep(runLen)
	close(stop)
	wg.Wait()

	run := &fig8Run{putMs: make(map[simnet.Region]float64)}
	var stale, fresh int64
	var allPutSum float64
	var allPutN int
	for _, pi := range nodes {
		node, err := d.Node(pi.Name)
		if err != nil {
			// The node may have been renamed by a primary move respawn; skip.
			continue
		}
		stale += node.StaleReads()
		fresh += node.FreshReads()
		mean := float64(node.PutLatency.Mean()) / float64(time.Millisecond)
		run.putMs[pi.Region] = mean
		allPutSum += mean * float64(node.PutLatency.Count())
		allPutN += int(node.PutLatency.Count())
	}
	if stale+fresh > 0 {
		run.staleFrac = float64(stale) / float64(stale+fresh)
	}
	if allPutN > 0 {
		run.overallMs = allPutSum / float64(allPutN)
	}
	for _, ch := range d.Server.ChangeLog() {
		if ch.What == "primary_instance" {
			run.primaryMoves++
		}
	}
	return run, nil
}

// Render prints the Fig 8 fractions and the Table 3 rows.
func (r *Fig8Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8: fraction of reads returning outdated data\n")
	fmt.Fprintf(&b, "static primary:   %.0f%% outdated (paper 69%%)\n", 100*r.StaleFracStatic)
	fmt.Fprintf(&b, "changing primary: %.0f%% outdated (paper 39%%)\n", 100*r.StaleFracChanging)
	fmt.Fprintf(&b, "primary moves in changing run: %d\n\n", r.PrimaryMoves)
	b.WriteString("Table 3: Average put operation latency (ms)\n")
	rows := [][]string{}
	regionLabel := map[simnet.Region]string{
		simnet.EUWest: "EU West", simnet.USWest: "US West", simnet.AsiaEast: "Asia East",
	}
	for _, cfg := range []struct {
		name    string
		mine    map[simnet.Region]float64
		paper   map[simnet.Region]float64
		overall float64
	}{
		{"Static", r.PutMsStatic, r.PaperTable3Static, r.OverallStatic},
		{"Changing", r.PutMsChanging, r.PaperTable3Changing, r.OverallChanging},
	} {
		row := []string{cfg.name}
		for _, reg := range fig8Regions {
			row = append(row, fmt.Sprintf("%.2f (paper %.2f)", cfg.mine[reg], cfg.paper[reg]))
		}
		row = append(row, fmt.Sprintf("%.2f", cfg.overall))
		rows = append(rows, row)
	}
	b.WriteString(table([]string{"", "EU West", "US West", "Asia East", "Overall"}, rows))
	_ = regionLabel
	return b.String()
}

// ShapeHolds verifies the experiment's qualitative claims.
func (r *Fig8Table3Result) ShapeHolds() error {
	if r.StaleFracChanging >= r.StaleFracStatic/1.3 {
		return fmt.Errorf("fig8: changing primary did not reduce staleness enough (%.2f vs %.2f; paper factor 1.77)",
			r.StaleFracChanging, r.StaleFracStatic)
	}
	if r.StaleFracStatic < 0.25 {
		return fmt.Errorf("fig8: static staleness %.2f suspiciously low", r.StaleFracStatic)
	}
	if r.PrimaryMoves < 1 {
		return fmt.Errorf("fig8: primary never moved")
	}
	// Table 3 orderings (static): EU West pays the most (farthest from the
	// Asia-East primary), Asia-East the least.
	st := r.PutMsStatic
	if !(st[simnet.EUWest] > st[simnet.USWest] && st[simnet.USWest] > st[simnet.AsiaEast]) {
		return fmt.Errorf("fig8: static Table 3 ordering broken: %v", st)
	}
	if st[simnet.AsiaEast] > 40 {
		return fmt.Errorf("fig8: static Asia-East latency %.1f ms, want local (<40)", st[simnet.AsiaEast])
	}
	if r.OverallChanging >= r.OverallStatic {
		return fmt.Errorf("fig8: moving the primary did not reduce overall put latency (%.1f vs %.1f)",
			r.OverallChanging, r.OverallStatic)
	}
	return nil
}

package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/policy"
	"repro/internal/simnet"
	"repro/internal/tiera"
)

// Fig9Row is one storage tier's measured 4 KB operation latency.
type Fig9Row struct {
	Tier  string
	GetMs float64
	PutMs float64
}

// Fig9Result reproduces "Figure 9: Operations Latencies for 4KB in US
// East": per-tier put/get latency through a Tiera instance, with the
// cached-EBS variant showing the <1 ms OS-buffer-cache behaviour the paper
// notes.
type Fig9Result struct {
	Rows []Fig9Row
}

// fig9Tiers lists the tier kinds in the paper's price/performance order.
var fig9Tiers = []struct {
	label string
	kind  string
}{
	{"Memory (Memcached)", "memory"},
	{"EBS SSD (cached)", "ebs-ssd-cached"},
	{"EBS SSD (gp2)", "ebs-ssd"},
	{"EBS HDD (magnetic)", "ebs-hdd"},
	{"S3", "s3"},
	{"S3-IA", "s3-ia"},
}

// Fig9 measures 4 KB put/get latency against each storage tier through a
// single-tier Tiera instance on a virtual clock (exact modeled time).
func Fig9(opts Options) (*Fig9Result, error) {
	ops := 200
	if opts.Quick {
		ops = 50
	}
	res := &Fig9Result{}
	for _, tcfg := range fig9Tiers {
		clk := clock.NewSim(time.Time{})
		stop := clk.AutoAdvance(50 * time.Microsecond)
		src := fmt.Sprintf("Tiera OneTier { tier1: {name: %s, size: 1G}; }", tcfg.kind)
		spec, err := policy.Parse(src)
		if err != nil {
			stop()
			return nil, err
		}
		inst, err := tiera.New(tiera.Config{
			Name: "fig9/" + tcfg.kind, Region: simnet.USEast, Spec: spec, Clock: clk,
		})
		if err != nil {
			stop()
			return nil, err
		}
		payload := make([]byte, 4096)
		for i := 0; i < ops; i++ {
			key := fmt.Sprintf("obj-%d", i%32)
			if _, err := inst.Put(context.Background(), key, payload); err != nil {
				inst.Close()
				stop()
				return nil, err
			}
			if _, _, err := inst.Get(context.Background(), key); err != nil {
				inst.Close()
				stop()
				return nil, err
			}
		}
		res.Rows = append(res.Rows, Fig9Row{
			Tier:  tcfg.label,
			GetMs: float64(inst.GetLatency.Mean()) / float64(time.Millisecond),
			PutMs: float64(inst.PutLatency.Mean()) / float64(time.Millisecond),
		})
		inst.Close()
		stop()
	}
	return res, nil
}

// Render prints the per-tier latency table.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9: 4KB operation latency per storage tier (US East)\n")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Tier,
			fmt.Sprintf("%.2f", row.GetMs), fmt.Sprintf("%.2f", row.PutMs)})
	}
	b.WriteString(table([]string{"Tier", "Get (ms)", "Put (ms)"}, rows))
	b.WriteString("paper: EBS SSD < EBS HDD < S3 < S3-IA; cached EBS < 1 ms\n")
	return b.String()
}

// ShapeHolds checks the paper's ordering claims.
func (r *Fig9Result) ShapeHolds() error {
	get := map[string]float64{}
	for _, row := range r.Rows {
		get[row.Tier] = row.GetMs
	}
	order := []string{"Memory (Memcached)", "EBS SSD (gp2)", "EBS HDD (magnetic)", "S3", "S3-IA"}
	for i := 1; i < len(order); i++ {
		if get[order[i-1]] >= get[order[i]] {
			return fmt.Errorf("fig9: %s (%.2f ms) not faster than %s (%.2f ms)",
				order[i-1], get[order[i-1]], order[i], get[order[i]])
		}
	}
	if get["EBS SSD (cached)"] >= 1.0 {
		return fmt.Errorf("fig9: cached EBS get %.2f ms, want <1 ms", get["EBS SSD (cached)"])
	}
	return nil
}

package experiments

import "testing"

// Each test runs one paper-experiment harness in Quick mode and checks the
// qualitative shape claims against the paper. The heavier timelines are
// skipped under -short.

func TestFig7DynamicConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("fig7 timeline takes ~25s")
	}
	res, err := Fig7(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.ShapeHolds(); err != nil {
		t.Fatal(err)
	}
}

func TestSLOSwitch(t *testing.T) {
	if testing.Short() {
		t.Skip("sloswitch timeline takes ~25s")
	}
	res, err := SLOSwitch(Options{Quick: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.ShapeHolds(); err != nil {
		t.Fatal(err)
	}
}

func TestFig8Table3ChangePrimary(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 waves take ~30s")
	}
	res, err := Fig8Table3(Options{Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.ShapeHolds(); err != nil {
		t.Fatal(err)
	}
}

func TestFig9TierLatency(t *testing.T) {
	res, err := Fig9(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.ShapeHolds(); err != nil {
		t.Fatal(err)
	}
}

func TestTable4Pricing(t *testing.T) {
	res, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.ShapeHolds(); err != nil {
		t.Fatal(err)
	}
}

func TestSec53ColdDataSavings(t *testing.T) {
	res, err := Sec53ColdData(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.ShapeHolds(); err != nil {
		t.Fatal(err)
	}
}

func TestFig10CentralizedTier(t *testing.T) {
	res, err := Fig10(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.ShapeHolds(); err != nil {
		t.Fatal(err)
	}
}

func TestFig11SysBenchIOPS(t *testing.T) {
	if testing.Short() {
		t.Skip("fig11 sweep takes ~15s")
	}
	res, err := Fig11(Options{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.ShapeHolds(); err != nil {
		t.Fatal(err)
	}
}

func TestFig12RUBiSThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("fig12 sweep takes ~90s")
	}
	res, err := Fig12(Options{Quick: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.ShapeHolds(); err != nil {
		t.Fatal(err)
	}
}

func TestConvergenceAntiEntropy(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence partition/heal run takes ~20s")
	}
	res, err := Convergence(Options{Quick: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.ShapeHolds(); err != nil {
		t.Fatal(err)
	}
}

func TestAblationConsistency(t *testing.T) {
	res, err := AblationConsistency(Options{Quick: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.ShapeHolds(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchFlush(t *testing.T) {
	res, err := BatchFlush(Options{Quick: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.ShapeHolds(); err != nil {
		t.Fatal(err)
	}
}

func TestAblationQueue(t *testing.T) {
	res, err := AblationQueue(Options{Quick: true, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.ShapeHolds(); err != nil {
		t.Fatal(err)
	}
}

func TestAblationBlockSize(t *testing.T) {
	if testing.Short() {
		t.Skip("block size sweep takes ~15s")
	}
	res, err := AblationBlockSize(Options{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.ShapeHolds(); err != nil {
		t.Fatal(err)
	}
}

func TestScaleoutSharding(t *testing.T) {
	res, err := Scaleout(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.ShapeHolds(); err != nil {
		t.Fatal(err)
	}
}

// Package experiments contains one reproduction harness per table and
// figure of the paper's evaluation (Sec 5). Each harness builds a full
// in-process Wiera deployment over the simulated WAN, runs the paper's
// workload, and returns a result carrying both the measured numbers and
// the paper's reported values, plus a text rendering of the same rows or
// series the paper reports. The bench targets in the repository root and
// the cmd/wierabench binary call these.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/coord"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/wiera"
)

// Options tunes a harness run.
type Options struct {
	// Quick shrinks workload sizes and durations so the full suite runs in
	// seconds (benchmarks and CI). Shapes still hold; absolute sample
	// counts drop.
	Quick bool
	// Seed drives every random generator in the harness.
	Seed int64
}

// Deployment is a complete in-process Wiera system over the simulated WAN.
type Deployment struct {
	Clk    clock.Clock
	Net    *simnet.Network
	Fabric *transport.Fabric
	Coord  *coord.Server
	Server *wiera.Server
	TSs    map[simnet.Region]*wiera.TieraServer

	sim     *clock.Sim // non-nil when driven by AutoAdvance
	stopAdv func()
}

// NewDeployment builds fabric + coordination + Wiera server + one Tiera
// server per region over a Scaled clock with the given compression factor.
func NewDeployment(factor float64, regions ...simnet.Region) (*Deployment, error) {
	return newDeployment(clock.NewScaled(factor), regions...)
}

// NewSimDeployment builds the same stack over a virtual clock driven by
// AutoAdvance — exact modeled time, used by the throughput experiments
// (Figs 11/12).
func NewSimDeployment(regions ...simnet.Region) (*Deployment, error) {
	sim := clock.NewSim(time.Time{})
	d, err := newDeployment(sim, regions...)
	if err != nil {
		return nil, err
	}
	d.sim = sim
	d.stopAdv = sim.AutoAdvance(50 * time.Microsecond)
	return d, nil
}

func newDeployment(clk clock.Clock, regions ...simnet.Region) (*Deployment, error) {
	if len(regions) == 0 {
		regions = simnet.DefaultRegions()
	}
	net := simnet.New(clk)
	fabric := transport.NewFabric(net)
	cs := coord.NewServer(clk)
	zkEP, err := fabric.NewEndpoint("zk", simnet.USEast)
	if err != nil {
		return nil, err
	}
	zkEP.Serve(cs.Handler())
	srv, err := wiera.NewServer(wiera.ServerConfig{Fabric: fabric, CoordDst: "zk"})
	if err != nil {
		return nil, err
	}
	d := &Deployment{
		Clk: clk, Net: net, Fabric: fabric, Coord: cs, Server: srv,
		TSs: make(map[simnet.Region]*wiera.TieraServer),
	}
	for _, r := range regions {
		ts, err := wiera.NewTieraServer(fabric, r, srv, "zk")
		if err != nil {
			d.Close()
			return nil, err
		}
		d.TSs[r] = ts
	}
	return d, nil
}

// Node returns a spawned node by name from any Tiera server.
func (d *Deployment) Node(name string) (*wiera.Node, error) {
	for _, ts := range d.TSs {
		if n, ok := ts.Node(name); ok {
			return n, nil
		}
	}
	return nil, fmt.Errorf("experiments: no node %q", name)
}

// Close tears the deployment down. The AutoAdvance driver stops last:
// node shutdown still exchanges messages over the simulated network and
// would otherwise block on a frozen virtual clock.
func (d *Deployment) Close() {
	for _, ts := range d.TSs {
		ts.Close()
	}
	d.Server.Close()
	d.Fabric.Close()
	if d.stopAdv != nil {
		d.stopAdv()
	}
}

// almostEq reports near-equality of two dollar amounts.
func almostEq(a, b float64) bool {
	d := a - b
	return d < 0.01 && d > -0.01
}

// ms renders a duration in milliseconds with two decimals, the unit of the
// paper's latency tables.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// table renders rows of columns with aligned padding.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(header)
	sep := make([]string, len(header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/simnet"
	"repro/internal/wiera"
)

// Fig10Row is one region's operation latency against the centralized
// S3-IA tier in US-East.
type Fig10Row struct {
	Region     simnet.Region
	GetMs      float64
	PutMs      float64 // local put (fast tier), unaffected by centralization
	PaperGetMs float64
}

// Fig10Result reproduces "Figure 10: Operation Latency for S3 in US East
// from each region": all instances share one centralized S3-IA cold tier
// in US-East; reads of cold data pay the WAN trip, puts stay local.
type Fig10Result struct {
	Rows []Fig10Row
}

// Fig10 measures cold-data get latency from each region against the
// centralized US-East S3-IA tier on a virtual clock (exact modeled time).
func Fig10(opts Options) (*Fig10Result, error) {
	ops := 40
	if opts.Quick {
		ops = 15
	}
	regions := []simnet.Region{simnet.USEast, simnet.USWest, simnet.EUWest, simnet.AsiaEast}
	d, err := NewSimDeployment(regions...)
	if err != nil {
		return nil, err
	}
	defer d.Close()

	// The central US-East instance holds the shared cold data on S3-IA
	// (its single tier); every region's gets forward there (the shared
	// centralized cold tier of Sec 5.3's final step). Puts stay local on
	// each region's memory tier.
	policySrc := `
Wiera CentralizedCold {
	Region1 = {name: ForwardingInstance, region: us-east, primary: true,
		tier1 = {name: s3-ia, size: 10G}};
	Region2 = {name: ForwardingInstance, region: us-west};
	Region3 = {name: ForwardingInstance, region: eu-west};
	Region4 = {name: ForwardingInstance, region: asia-east};
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
	}
	event(get.from) : response {
		forward(what: get.key, to: us-east);
	}
}`
	nodes, err := d.Server.StartInstances(wiera.StartInstancesRequest{
		InstanceID: "fig10", PolicySrc: policySrc, Params: map[string]string{},
	})
	if err != nil {
		return nil, err
	}
	// Cold data lives at the central node.
	central, err := d.Node("fig10/us-east")
	if err != nil {
		return nil, err
	}
	payload := make([]byte, 4096)
	for i := 0; i < 16; i++ {
		if _, err := central.Local().Put(context.Background(), fmt.Sprintf("cold-%02d", i), payload); err != nil {
			return nil, err
		}
	}

	paperGet := map[simnet.Region]float64{
		simnet.USEast: 35, simnet.USWest: 105, simnet.EUWest: 115, simnet.AsiaEast: 200,
	}
	res := &Fig10Result{}
	for _, pi := range nodes {
		node, err := d.Node(pi.Name)
		if err != nil {
			return nil, err
		}
		for i := 0; i < ops; i++ {
			key := fmt.Sprintf("cold-%02d", i%16)
			if _, _, err := node.Get(context.Background(), key); err != nil {
				return nil, err
			}
			if _, err := node.Put(context.Background(), fmt.Sprintf("local-%s-%d", pi.Region, i), payload, nil); err != nil {
				return nil, err
			}
		}
		res.Rows = append(res.Rows, Fig10Row{
			Region:     pi.Region,
			GetMs:      float64(node.GetLatency.Mean()) / float64(time.Millisecond),
			PutMs:      float64(node.PutLatency.Mean()) / float64(time.Millisecond),
			PaperGetMs: paperGet[pi.Region],
		})
	}
	return res, nil
}

// Render prints the per-region latency table.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10: operation latency against centralized S3-IA in US East\n")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{string(row.Region),
			fmt.Sprintf("%.1f (paper ~%.0f)", row.GetMs, row.PaperGetMs),
			fmt.Sprintf("%.1f", row.PutMs)})
	}
	b.WriteString(table([]string{"Region", "Get (ms)", "Put local (ms)"}, rows))
	return b.String()
}

// ShapeHolds verifies the distance ordering and the paper's headline
// (~200 ms from Asia-East).
func (r *Fig10Result) ShapeHolds() error {
	get := map[simnet.Region]float64{}
	put := map[simnet.Region]float64{}
	for _, row := range r.Rows {
		get[row.Region] = row.GetMs
		put[row.Region] = row.PutMs
	}
	order := []simnet.Region{simnet.USEast, simnet.USWest, simnet.EUWest, simnet.AsiaEast}
	for i := 1; i < len(order); i++ {
		if get[order[i-1]] >= get[order[i]] {
			return fmt.Errorf("fig10: get latency ordering broken at %s (%.1f) vs %s (%.1f)",
				order[i-1], get[order[i-1]], order[i], get[order[i]])
		}
	}
	if get[simnet.AsiaEast] < 150 || get[simnet.AsiaEast] > 300 {
		return fmt.Errorf("fig10: Asia-East get %.1f ms, paper ~200 ms", get[simnet.AsiaEast])
	}
	// Puts stay local and fast everywhere relative to the WAN gets.
	for reg, v := range put {
		if v > get[simnet.USWest] {
			return fmt.Errorf("fig10: local put at %s (%.1f ms) not clearly local", reg, v)
		}
	}
	return nil
}

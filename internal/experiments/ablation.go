package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/simnet"
	"repro/internal/sysbench"
	"repro/internal/wfs"
	"repro/internal/wiera"
)

// The ablations quantify design choices DESIGN.md calls out: what each
// consistency model costs (the Sec 3.3.1 tradeoff), what the queue's
// per-key supersession saves (Sec 3.2.3's "reduce on update traffic"), and
// how the wfs block size moves the remote-memory throughput of Sec 5.4.

// ConsistencyRow is one consistency model's put/get cost.
type ConsistencyRow struct {
	Policy    string
	PutMeanMs float64
	GetMeanMs float64
}

// AblationConsistencyResult compares put latency across the three
// consistency engines on identical four-region deployments.
type AblationConsistencyResult struct {
	Rows []ConsistencyRow
}

// AblationConsistency measures each consistency model's application-
// perceived operation latency at the US-West node.
func AblationConsistency(opts Options) (*AblationConsistencyResult, error) {
	ops := 30
	if opts.Quick {
		ops = 15
	}
	configs := []struct {
		name string
		body string
	}{
		{"MultiPrimariesConsistency", `
	event(insert.into) : response {
		lock(what: insert.key);
		store(what: insert.object, to: local_instance);
		copy(what: insert.object, to: all_regions);
		release(what: insert.key);
	}`},
		{"PrimaryBackupConsistency", `
	event(insert.into) : response {
		if (local_instance.isPrimary == true) {
			store(what: insert.object, to: local_instance);
			copy(what: insert.object, to: all_regions);
		} else {
			forward(what: insert.object, to: primary_instance);
		}
	}`},
		{"EventualConsistency", `
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
		queue(what: insert.object, to: all_regions);
	}`},
	}
	res := &AblationConsistencyResult{}
	for _, cfg := range configs {
		d, err := NewSimDeployment()
		if err != nil {
			return nil, err
		}
		src := fmt.Sprintf(`
Wiera %s {
	Region1 = {name: LowLatencyInstance, region: us-west, primary: true,
		tier1 = {name: memory, size: 1G}, tier2 = {name: ebs-ssd, size: 1G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 1G}, tier2 = {name: ebs-ssd, size: 1G}};
	Region3 = {name: LowLatencyInstance, region: eu-west,
		tier1 = {name: memory, size: 1G}, tier2 = {name: ebs-ssd, size: 1G}};
	Region4 = {name: LowLatencyInstance, region: asia-east,
		tier1 = {name: memory, size: 1G}, tier2 = {name: ebs-ssd, size: 1G}};%s
}`, cfg.name, cfg.body)
		_, err = d.Server.StartInstances(wiera.StartInstancesRequest{
			InstanceID: "ab", PolicySrc: src, Params: map[string]string{"t": "5s"},
		})
		if err != nil {
			d.Close()
			return nil, err
		}
		node, err := d.Node("ab/us-west")
		if err != nil {
			d.Close()
			return nil, err
		}
		payload := make([]byte, 1024)
		for i := 0; i < ops; i++ {
			key := fmt.Sprintf("k%d", i)
			if _, err := node.Put(context.Background(), key, payload, nil); err != nil {
				d.Close()
				return nil, err
			}
			if _, _, err := node.Get(context.Background(), key); err != nil {
				d.Close()
				return nil, err
			}
		}
		res.Rows = append(res.Rows, ConsistencyRow{
			Policy:    cfg.name,
			PutMeanMs: float64(node.PutLatency.Mean()) / float64(time.Millisecond),
			GetMeanMs: float64(node.GetLatency.Mean()) / float64(time.Millisecond),
		})
		d.Close()
	}
	return res, nil
}

// Render prints the consistency cost table.
func (r *AblationConsistencyResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation: consistency model cost (4 regions, US-West application)\n")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Policy,
			fmt.Sprintf("%.1f", row.PutMeanMs), fmt.Sprintf("%.2f", row.GetMeanMs)})
	}
	b.WriteString(table([]string{"Policy", "Put mean (ms)", "Get mean (ms)"}, rows))
	b.WriteString("expected ordering: multi-primaries > primary-backup(local primary) > eventual\n")
	return b.String()
}

// ShapeHolds verifies the Sec 3.3.1 tradeoff ordering.
func (r *AblationConsistencyResult) ShapeHolds() error {
	byName := map[string]ConsistencyRow{}
	for _, row := range r.Rows {
		byName[row.Policy] = row
	}
	mp := byName["MultiPrimariesConsistency"].PutMeanMs
	pb := byName["PrimaryBackupConsistency"].PutMeanMs
	ev := byName["EventualConsistency"].PutMeanMs
	if !(mp > pb && pb > ev) {
		return fmt.Errorf("ablation: put cost ordering broken: MP %.1f, PB %.1f, EV %.1f", mp, pb, ev)
	}
	if ev > 50 {
		return fmt.Errorf("ablation: eventual put %.1f ms, should be local-fast", ev)
	}
	return nil
}

// AblationQueueResult quantifies the update-traffic saving from per-key
// queue supersession.
type AblationQueueResult struct {
	Overwrites     int
	BytesSupersede int64
	BytesNaive     int64
}

// AblationQueue overwrites one hot key repeatedly between flushes with
// supersession on and off, counting bytes moved on the wire. Bytes — not
// transfer count — isolate supersession from the batched flush, which
// collapses the naive queue's N updates into few RPCs but still ships
// every superseded payload.
func AblationQueue(opts Options) (*AblationQueueResult, error) {
	overwrites := 50
	if opts.Quick {
		overwrites = 25
	}
	run := func(supersede bool) (int64, error) {
		d, err := NewSimDeployment(simnet.USWest, simnet.USEast)
		if err != nil {
			return 0, err
		}
		defer d.Close()
		params := map[string]string{"t": "5s", "queueFlush": "10s"}
		if !supersede {
			params["queueSupersede"] = "false"
		}
		src := `
Wiera EventualConsistency {
	Region1 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 1G}, tier2 = {name: ebs-ssd, size: 1G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 1G}, tier2 = {name: ebs-ssd, size: 1G}};
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
		queue(what: insert.object, to: all_regions);
	}
}`
		if _, err := d.Server.StartInstances(wiera.StartInstancesRequest{
			InstanceID: "q", PolicySrc: src, Params: params,
		}); err != nil {
			return 0, err
		}
		node, err := d.Node("q/us-west")
		if err != nil {
			return 0, err
		}
		payload := make([]byte, 4096)
		_, before := d.Net.Stats()
		for i := 0; i < overwrites; i++ {
			if _, err := node.Put(context.Background(), "hot-key", payload, nil); err != nil {
				return 0, err
			}
		}
		// One flush cycle propagates whatever is queued.
		d.Clk.Sleep(12 * time.Second)
		_, after := d.Net.Stats()
		return after - before, nil
	}
	withSup, err := run(true)
	if err != nil {
		return nil, err
	}
	without, err := run(false)
	if err != nil {
		return nil, err
	}
	return &AblationQueueResult{
		Overwrites: overwrites, BytesSupersede: withSup, BytesNaive: without,
	}, nil
}

// Render prints the traffic comparison.
func (r *AblationQueueResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation: queue supersession (Sec 3.2.3 'reduce on update traffic')\n")
	fmt.Fprintf(&b, "%d overwrites of one key between flushes:\n", r.Overwrites)
	fmt.Fprintf(&b, "  bytes moved with per-key supersession:  %d\n", r.BytesSupersede)
	fmt.Fprintf(&b, "  bytes moved shipping every update:      %d\n", r.BytesNaive)
	fmt.Fprintf(&b, "  traffic saved: %.0f%%\n",
		100*(1-float64(r.BytesSupersede)/float64(r.BytesNaive)))
	return b.String()
}

// ShapeHolds verifies supersession saves most of the redundant traffic.
func (r *AblationQueueResult) ShapeHolds() error {
	if r.BytesNaive <= r.BytesSupersede {
		return fmt.Errorf("ablation: naive queue (%d bytes) not costlier than superseding (%d bytes)",
			r.BytesNaive, r.BytesSupersede)
	}
	saved := 1 - float64(r.BytesSupersede)/float64(r.BytesNaive)
	if saved < 0.5 {
		return fmt.Errorf("ablation: only %.0f%% traffic saved, want most of it", 100*saved)
	}
	return nil
}

// BlockSizeRow is one wfs block size's remote-memory throughput.
type BlockSizeRow struct {
	BlockSize int
	IOPS      float64
	MBps      float64
}

// AblationBlockSizeResult sweeps the wfs block size on the Sec 5.4
// remote-memory path.
type AblationBlockSizeResult struct {
	Rows []BlockSizeRow
}

// AblationBlockSize measures SysBench throughput over the throttled
// remote-memory link for several wfs block sizes: larger blocks waste link
// bytes per random access (lower IOPS at the same MB/s), the classic
// page-size tradeoff the Sec 5.4 deployment must pick.
func AblationBlockSize(opts Options) (*AblationBlockSizeResult, error) {
	ops := 300
	if opts.Quick {
		ops = 150
	}
	res := &AblationBlockSizeResult{}
	for _, bs := range []int{4 * 1024, 16 * 1024, 64 * 1024} {
		d, err := NewSimDeployment(simnet.AzureUSEast, simnet.USEast)
		if err != nil {
			return nil, err
		}
		bps := 11.8e6 // Standard D2's small-message throughput
		d.Net.SetBandwidth(simnet.AzureUSEast, simnet.USEast, bps)
		d.Net.SetBandwidth(simnet.USEast, simnet.AzureUSEast, bps)
		src := `
Wiera RemoteMemory {
	Region1 = {name: ForwardingInstance, region: azure-us-east, primary: true,
		tier1 = {name: ebs-ssd, size: 4G}};
	Region2 = {name: ForwardingInstance, region: us-east,
		tier1 = {name: memory, size: 4G}};
	event(insert.into) : response {
		if (local_instance.isPrimary == true) {
			store(what: insert.object, to: local_instance);
			copy(what: insert.object, to: all_regions);
		} else {
			forward(what: insert.object, to: primary_instance);
		}
	}
	event(get.from) : response {
		forward(what: get.key, to: us-east);
	}
}`
		if _, err := d.Server.StartInstances(wiera.StartInstancesRequest{
			InstanceID: "bs", PolicySrc: src, Params: map[string]string{},
		}); err != nil {
			d.Close()
			return nil, err
		}
		azure, err := d.Node("bs/azure-us-east")
		if err != nil {
			d.Close()
			return nil, err
		}
		fs := wfs.New(wfs.NodeBackend{Node: azure}, wfs.WithBlockSize(bs))
		cfg := sysbench.Config{
			FS: fs, Clock: d.Clk, Files: 2, FileSize: 512 * 1024,
			BlockSize: bs, Threads: 16, Ops: ops, Mode: sysbench.RndRead, Seed: opts.Seed,
		}
		if err := sysbench.Prepare(cfg); err != nil {
			d.Close()
			return nil, err
		}
		out, err := sysbench.Run(cfg)
		if err != nil {
			d.Close()
			return nil, err
		}
		res.Rows = append(res.Rows, BlockSizeRow{
			BlockSize: bs, IOPS: out.IOPS, MBps: out.IOPS * float64(bs) / 1e6,
		})
		d.Close()
	}
	return res, nil
}

// Render prints the block size sweep.
func (r *AblationBlockSizeResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation: wfs block size on the remote-memory path (Standard D2 link)\n")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{fmt.Sprintf("%dK", row.BlockSize/1024),
			fmt.Sprintf("%.0f", row.IOPS), fmt.Sprintf("%.1f", row.MBps)})
	}
	b.WriteString(table([]string{"Block", "IOPS", "Link MB/s"}, rows))
	return b.String()
}

// ShapeHolds verifies the bandwidth-bound tradeoff: smaller blocks yield
// more IOPS on the capped link.
func (r *AblationBlockSizeResult) ShapeHolds() error {
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].IOPS >= r.Rows[i-1].IOPS {
			return fmt.Errorf("ablation: IOPS not decreasing with block size: %dK %.0f vs %dK %.0f",
				r.Rows[i-1].BlockSize/1024, r.Rows[i-1].IOPS,
				r.Rows[i].BlockSize/1024, r.Rows[i].IOPS)
		}
	}
	return nil
}

package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cloudsim"
	"repro/internal/policy"
	"repro/internal/rubis"
	"repro/internal/simnet"
	"repro/internal/tiera"
	"repro/internal/wfs"
	"repro/internal/wiera"
)

// Fig12Row is one Azure VM size's RUBiS throughput for both storage paths.
type Fig12Row struct {
	VM          cloudsim.VMType
	LocalRPS    float64 // MySQL-on-local-disk substitute
	RemoteRPS   float64 // MySQL-on-remote-memory via Wiera
	Improvement float64
}

// Fig12Result reproduces "Figure 12: Throughput (request/s) comparison":
// the unmodified RUBiS auction application (here: the rubis package's
// storage engine + client emulator) running with its database on either
// the Azure local disk or AWS remote memory through Wiera. Larger VM sizes
// lift the network throttle and the remote-memory configuration pulls
// ahead (paper: 50-80% better on Standard D2/D3).
type Fig12Result struct {
	Rows []Fig12Row
}

// Fig12 runs the RUBiS emulator for each Azure size against both backends.
func Fig12(opts Options) (*Fig12Result, error) {
	// The paper drives 300 simulated clients; enough concurrency to hit
	// the storage-path ceiling rather than the closed-loop limit.
	users, items := 200, 400
	clients, reqs := 100, 15
	if opts.Quick {
		users, items = 100, 200
		clients, reqs = 70, 10
	}
	res := &Fig12Result{}
	local, err := fig12Run(opts, users, items, clients, reqs, nil)
	if err != nil {
		return nil, fmt.Errorf("fig12 local: %w", err)
	}
	for _, vm := range cloudsim.AzureSizes() {
		spec, err := cloudsim.Lookup(vm)
		if err != nil {
			return nil, err
		}
		remote, err := fig12Run(opts, users, items, clients, reqs, &spec)
		if err != nil {
			return nil, fmt.Errorf("fig12 %s remote: %w", vm, err)
		}
		res.Rows = append(res.Rows, Fig12Row{
			VM: vm, LocalRPS: local, RemoteRPS: remote,
			Improvement: (remote - local) / local,
		})
	}
	return res, nil
}

// fig12Run populates the auction database on the chosen backend and runs
// the closed-loop client mix. vm == nil selects the local-disk
// configuration; otherwise the remote-memory path with the VM's network
// throttle.
func fig12Run(opts Options, users, items, clients, reqs int, vm *cloudsim.Spec) (float64, error) {
	var fs *wfs.FS
	var d *Deployment
	var err error
	if vm == nil {
		d, err = NewSimDeployment(simnet.AzureUSEast)
		if err != nil {
			return 0, err
		}
		defer d.Close()
		src := `Tiera AzureDisk { tier1: {name: ebs-ssd, size: 4G, iops: 500}; }`
		spec, err := policy.Parse(src)
		if err != nil {
			return 0, err
		}
		inst, err := tiera.New(tiera.Config{
			Name: "fig12/disk", Region: simnet.AzureUSEast, Spec: spec, Clock: d.Clk,
		})
		if err != nil {
			return 0, err
		}
		defer inst.Close()
		fs = wfs.New(wfs.TieraBackend{Inst: inst})
	} else {
		d, err = NewSimDeployment(simnet.AzureUSEast, simnet.USEast)
		if err != nil {
			return 0, err
		}
		defer d.Close()
		bps := vm.SmallMsgMBps * 1e6
		d.Net.SetBandwidth(simnet.AzureUSEast, simnet.USEast, bps)
		d.Net.SetBandwidth(simnet.USEast, simnet.AzureUSEast, bps)
		policySrc := `
Wiera RemoteMemory {
	Region1 = {name: ForwardingInstance, region: azure-us-east, primary: true,
		tier1 = {name: ebs-ssd, size: 4G, iops: 500}};
	Region2 = {name: ForwardingInstance, region: us-east,
		tier1 = {name: memory, size: 4G}};
	event(insert.into) : response {
		if (local_instance.isPrimary == true) {
			store(what: insert.object, to: local_instance);
			copy(what: insert.object, to: all_regions);
		} else {
			forward(what: insert.object, to: primary_instance);
		}
	}
	event(get.from) : response {
		forward(what: get.key, to: us-east);
	}
}`
		if _, err := d.Server.StartInstances(wiera.StartInstancesRequest{
			InstanceID: "fig12", PolicySrc: policySrc, Params: map[string]string{},
		}); err != nil {
			return 0, err
		}
		azure, err := d.Node("fig12/azure-us-east")
		if err != nil {
			return 0, err
		}
		fs = wfs.New(wfs.NodeBackend{Node: azure})
	}

	db, err := rubis.OpenDB(fs)
	if err != nil {
		return 0, err
	}
	if err := rubis.Populate(db, users, items); err != nil {
		return 0, err
	}
	res, err := rubis.RunEmulator(rubis.EmulatorConfig{
		DB: db, Clock: d.Clk, Clients: clients, RequestsPerClient: reqs,
		BrowseReads: 3, Seed: opts.Seed,
	})
	if err != nil {
		return 0, err
	}
	if res.Errors > 0 {
		return 0, fmt.Errorf("rubis reported %d errors", res.Errors)
	}
	return res.Throughput, nil
}

// Render prints the per-VM-size throughput comparison.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 12: RUBiS throughput (requests/s), local disk vs remote memory via Wiera\n")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{string(row.VM),
			fmt.Sprintf("%.0f", row.LocalRPS),
			fmt.Sprintf("%.0f", row.RemoteRPS),
			fmt.Sprintf("%+.0f%%", 100*row.Improvement)})
	}
	b.WriteString(table([]string{"VM size", "Local disk req/s", "Remote memory req/s", "Remote vs local"}, rows))
	b.WriteString("paper: low throughput on A2/D1, 50-80% improvement on D2/D3\n")
	return b.String()
}

// ShapeHolds verifies the figure's qualitative claims.
func (r *Fig12Result) ShapeHolds() error {
	byVM := map[cloudsim.VMType]Fig12Row{}
	for _, row := range r.Rows {
		byVM[row.VM] = row
	}
	sizes := cloudsim.AzureSizes()
	for i := 1; i < len(sizes); i++ {
		// Allow 10%% measurement noise on the near-flat D2/D3 pair.
		if byVM[sizes[i]].RemoteRPS < 0.9*byVM[sizes[i-1]].RemoteRPS {
			return fmt.Errorf("fig12: remote throughput not monotone: %s %.0f < %s %.0f",
				sizes[i], byVM[sizes[i]].RemoteRPS, sizes[i-1], byVM[sizes[i-1]].RemoteRPS)
		}
	}
	// D2/D3 must clearly beat local disk; A2/D1 must not show the large
	// improvement.
	for _, big := range []cloudsim.VMType{cloudsim.AzureStdD2, cloudsim.AzureStdD3} {
		if byVM[big].Improvement < 0.3 {
			return fmt.Errorf("fig12: %s improvement %+.0f%%, paper 50-80%%", big, 100*byVM[big].Improvement)
		}
	}
	for _, small := range []cloudsim.VMType{cloudsim.AzureBasicA2, cloudsim.AzureStdD1} {
		if byVM[small].Improvement > byVM[cloudsim.AzureStdD2].Improvement {
			return fmt.Errorf("fig12: %s improvement exceeds D2's", small)
		}
	}
	return nil
}

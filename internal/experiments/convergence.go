package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/object"
	"repro/internal/repair"
	"repro/internal/simnet"
	"repro/internal/wiera"
	"repro/internal/ycsb"
)

// ConvergenceResult measures the anti-entropy subsystem (internal/repair):
// two regions run YCSB-A through a WAN partition, then heal. The harness
// reports time-to-convergence, whether any acknowledged write was lost, and
// the repair traffic of the Merkle digest sync against a naive full-key
// exchange over the same >=10k-key store. The paper's eventual-consistency
// mode (Sec 3.2.3) leaves partitioned replicas permanently diverged; this
// experiment quantifies what closing that gap costs.
type ConvergenceResult struct {
	// Keys is the seeded store size; DivergentKeys counts keys whose
	// replicas disagreed when the partition healed.
	Keys          int
	DivergentKeys int
	// AckedWrites counts puts acknowledged during the partition;
	// LostAckedWrites counts those missing from either replica after
	// convergence (must be zero).
	AckedWrites     int
	LostAckedWrites int
	// Converged reports whether the replicas reached identical
	// (version, mtime) sets; ConvergeTime is the wall time from heal to
	// convergence (the simulated clock runs 2000x wall time, so clock
	// durations here mostly measure sequential WAN message count), and
	// Period the anti-entropy round interval in clock time.
	Converged    bool
	ConvergeTime time.Duration
	Period       time.Duration
	// MerkleBytes is the estimated wire cost of the digest-tree session
	// that reconciled the divergence; NaiveBytes is what a full-key
	// exchange (both replicas shipping complete summary lists) would cost
	// on the same store. DigestRounds is the O(log n) descent depth.
	MerkleBytes  int64
	NaiveBytes   int64
	DigestRounds int
	KeysRepaired int
	// HintsReplayed counts hinted-handoff deliveries after the heal, summed
	// over both nodes.
	HintsReplayed int64
}

// convergenceSrc is the two-region eventual-consistency policy under test.
const convergenceSrc = `
Wiera ConvergenceEventual {
	Region1 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 5G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 5G}};
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
		queue(what: insert.object, to: all_regions);
	}
}`

// ackedStore wraps the YCSB adapter and records every acknowledged put.
type ackedStore struct {
	inner ycsb.Store
	mu    *sync.Mutex
	acked map[string]bool
}

func (s ackedStore) Put(key string, value []byte) error {
	err := s.inner.Put(key, value)
	if err == nil {
		s.mu.Lock()
		s.acked[key] = true
		s.mu.Unlock()
	}
	return err
}

func (s ackedStore) Get(key string) ([]byte, error) { return s.inner.Get(key) }

// snapStore is a frozen copy of one replica's live state, used to replay
// the reconciliation session offline with exact protocol byte accounting.
type snapStore struct{ m map[string]repair.Update }

func (s snapStore) Entries() []repair.Entry {
	out := make([]repair.Entry, 0, len(s.m))
	for _, u := range s.m {
		out = append(out, u.Entry())
	}
	return out
}

func (s snapStore) Load(key string) (repair.Update, bool) {
	u, ok := s.m[key]
	return u, ok
}

func (s snapStore) Apply(u repair.Update) bool {
	if old, ok := s.m[u.Meta.Key]; ok && !object.Newer(u.Meta, old.Meta) {
		return false
	}
	s.m[u.Meta.Key] = u
	return true
}

// snapshotNode freezes a node's latest versions.
func snapshotNode(n *wiera.Node) snapStore {
	s := snapStore{m: make(map[string]repair.Update)}
	objs := n.Local().Objects()
	for _, key := range objs.Keys() {
		meta, err := objs.Latest(key)
		if err != nil {
			continue
		}
		data, meta, err := n.Local().GetVersion(context.Background(), key, meta.Version)
		if err != nil {
			continue
		}
		s.m[key] = repair.Update{Meta: meta, Data: data}
	}
	return s
}

// nodeEntries snapshots a node's (key -> version/mtime/origin) view.
func nodeEntries(n *wiera.Node) map[string]repair.Entry {
	out := make(map[string]repair.Entry)
	objs := n.Local().Objects()
	for _, key := range objs.Keys() {
		if meta, err := objs.Latest(key); err == nil {
			out[key] = repair.EntryOf(meta)
		}
	}
	return out
}

func entriesEqual(a, b map[string]repair.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for k, e := range a {
		if b[k] != e {
			return false
		}
	}
	return true
}

// Convergence runs the partition/heal experiment.
func Convergence(opts Options) (*ConvergenceResult, error) {
	const period = time.Second
	seedKeys := 10000
	ops := 2000
	if opts.Quick {
		ops = 400
	}
	d, err := NewDeployment(2000, simnet.USWest, simnet.USEast)
	if err != nil {
		return nil, err
	}
	defer d.Close()

	nodes, err := d.Server.StartInstances(wiera.StartInstancesRequest{
		InstanceID: "conv", PolicySrc: convergenceSrc,
		Params: map[string]string{
			"t": "500ms", "queueFlush": "250ms", "antiEntropy": "1s",
		},
	})
	if err != nil {
		return nil, err
	}
	var west, east *wiera.Node
	for _, pi := range nodes {
		n, err := d.Node(pi.Name)
		if err != nil {
			return nil, err
		}
		if pi.Region == simnet.USWest {
			west = n
		} else {
			east = n
		}
	}
	res := &ConvergenceResult{Keys: seedKeys, Period: period}

	// Seed both replicas with an identical >=10k-key store directly (no WAN
	// cost): the byte-savings claim is about locating a small divergence
	// inside a large keyspace.
	ctx := context.Background()
	seedTime := d.Clk.Now()
	for i := 0; i < seedKeys; i++ {
		meta := object.Meta{
			Key: fmt.Sprintf("seed/%05d", i), Version: 1, Origin: "seed",
			ModifiedAt: seedTime, Size: 32,
		}
		data := []byte(fmt.Sprintf("seed-value-%05d-padding-padding", i))
		if _, err := west.Local().ApplyRemote(ctx, meta, data); err != nil {
			return nil, err
		}
		if _, err := east.Local().ApplyRemote(ctx, meta, data); err != nil {
			return nil, err
		}
	}

	// YCSB-A records load through the west node and replicate while the
	// WAN is healthy.
	w := shrunkWorkload(ycsb.WorkloadA, 200, 256)
	w.Prefix = "ycsb/"
	var mu sync.Mutex
	acked := make(map[string]bool)
	westCli, err := ycsb.NewClient(w, ackedStore{nodeStore{west}, &mu, acked}, opts.Seed)
	if err != nil {
		return nil, err
	}
	eastCli, err := ycsb.NewClient(w, ackedStore{nodeStore{east}, &mu, acked}, opts.Seed+1)
	if err != nil {
		return nil, err
	}
	if err := westCli.Load(); err != nil {
		return nil, err
	}
	// Deadlines below are wall time: a bulk flush pays one simulated WAN
	// round trip per message, so clock-time deadlines would lapse after a
	// handful of sequential deliveries.
	deadline := time.Now().Add(30 * time.Second)
	for !entriesEqual(nodeEntries(west), nodeEntries(east)) {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("convergence: replicas never synced the YCSB load")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Partition, then run YCSB-A on both sides: updates succeed locally,
	// fan-out fails peerward, and the two replicas diverge.
	d.Net.Partition(simnet.USWest, simnet.USEast)
	var wg sync.WaitGroup
	for _, cli := range []*ycsb.Client{westCli, eastCli} {
		wg.Add(1)
		go func(cli *ycsb.Client) {
			defer wg.Done()
			cli.RunOps(ops, d.Clk.Now)
		}(cli)
	}
	wg.Wait()
	// Let the queue flush fail against the partition so undeliverable
	// updates land in the hint logs.
	time.Sleep(100 * time.Millisecond)

	preWest, preEast := nodeEntries(west), nodeEntries(east)
	for k, e := range preWest {
		if preEast[k] != e {
			res.DivergentKeys++
		}
	}
	for k := range preEast {
		if _, ok := preWest[k]; !ok {
			res.DivergentKeys++
		}
	}

	// Replay the reconciliation offline on frozen snapshots: the same
	// session protocol the daemon runs, with exact byte accounting, against
	// the naive full-exchange cost on the same store.
	st, err := repair.Sync(snapshotNode(west), repair.LocalPeer{S: snapshotNode(east)}, repair.DefaultGeometry)
	if err != nil {
		return nil, err
	}
	res.MerkleBytes = st.TotalBytes()
	res.NaiveBytes = st.FullSyncBytes
	res.DigestRounds = st.Rounds
	res.KeysRepaired = st.KeysRepaired

	// Heal and measure live convergence (hint replay + Merkle sessions).
	d.Net.Heal(simnet.USWest, simnet.USEast)
	healedAt := time.Now()
	deadline = healedAt.Add(60 * time.Second)
	for {
		if entriesEqual(nodeEntries(west), nodeEntries(east)) {
			res.Converged = true
			res.ConvergeTime = time.Since(healedAt)
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Zero lost acknowledged writes: every key acked during the partition
	// must be present on both replicas.
	mu.Lock()
	res.AckedWrites = len(acked)
	for key := range acked {
		if _, err := west.Local().Objects().Latest(key); err != nil {
			res.LostAckedWrites++
			continue
		}
		if _, err := east.Local().Objects().Latest(key); err != nil {
			res.LostAckedWrites++
		}
	}
	mu.Unlock()

	if stats, err := d.Server.CollectStats("conv"); err == nil {
		for _, ns := range stats.Nodes {
			res.HintsReplayed += ns.HintsReplayed
		}
	}
	return res, nil
}

// Render prints the convergence report.
func (r *ConvergenceResult) Render() string {
	var b strings.Builder
	b.WriteString("Anti-entropy convergence (partition + YCSB-A + heal)\n")
	fmt.Fprintf(&b, "store: %d seeded keys, %d divergent at heal, %d acked partition writes\n",
		r.Keys, r.DivergentKeys, r.AckedWrites)
	fmt.Fprintf(&b, "converged: %v in %s (anti-entropy period %s); lost acked writes: %d\n",
		r.Converged, r.ConvergeTime, r.Period, r.LostAckedWrites)
	fmt.Fprintf(&b, "hints replayed after heal: %d\n\n", r.HintsReplayed)
	b.WriteString("repair traffic on the same divergence (wire-size model):\n")
	rows := [][]string{
		{"Merkle digest sync", fmt.Sprintf("%d", r.MerkleBytes),
			fmt.Sprintf("%d rounds, %d keys moved", r.DigestRounds, r.KeysRepaired)},
		{"naive full-key exchange", fmt.Sprintf("%d", r.NaiveBytes),
			"both replicas ship complete key lists"},
	}
	b.WriteString(table([]string{"strategy", "bytes", "notes"}, rows))
	if r.MerkleBytes > 0 {
		fmt.Fprintf(&b, "savings: %.1fx\n", float64(r.NaiveBytes)/float64(r.MerkleBytes))
	}
	return b.String()
}

// ShapeHolds verifies the experiment's claims.
func (r *ConvergenceResult) ShapeHolds() error {
	if r.Keys < 10000 {
		return fmt.Errorf("convergence: store too small (%d keys, need >=10000)", r.Keys)
	}
	if r.DivergentKeys == 0 {
		return fmt.Errorf("convergence: partition produced no divergence")
	}
	if !r.Converged {
		return fmt.Errorf("convergence: replicas did not converge after heal")
	}
	if r.LostAckedWrites != 0 {
		return fmt.Errorf("convergence: %d acknowledged writes lost", r.LostAckedWrites)
	}
	if r.MerkleBytes >= r.NaiveBytes {
		return fmt.Errorf("convergence: digest sync (%d B) not cheaper than full exchange (%d B)",
			r.MerkleBytes, r.NaiveBytes)
	}
	return nil
}

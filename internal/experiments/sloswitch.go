package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/flight"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/wiera"
	"repro/internal/ycsb"
)

// SLOSwitchResult is the Fig-7-style run where the consistency switch is
// fired by an SLOViolation burn-rate event instead of the raw latency
// monitor: four regions under MultiPrimariesConsistency, a put-latency SLO
// (puts under 800 ms), and a sustained US-West delay that burns the error
// budget until the SLOSwitch policy downgrades to eventual consistency —
// then recovers once the budget stops burning.
type SLOSwitchResult struct {
	// Series is the US-West put-latency timeline (ms).
	Series []stats.Point
	// Changes is the applied policy-change log; every consistency change
	// must carry Via == "slo".
	Changes []wiera.ChangeEvent
	// Phase means (ms), as in Fig 7.
	StrongMeanMs   float64
	EventualMeanMs float64
	// SwitchesToEventual / SwitchesToStrong count applied consistency
	// changes (one each: a single sustained delay).
	SwitchesToEventual int
	SwitchesToStrong   int
	// AllViaSLO is true when every consistency change was attributed to
	// the SLO monitor — none to the raw latency monitor.
	AllViaSLO bool
	// PeakBurn is the highest slo_burn_rate gauge observed at US-West
	// during the delay; ViolationSeen reports the slo_violation gauge
	// reaching 1 there.
	PeakBurn      float64
	ViolationSeen bool
	// SlowRecords counts requests the flight recorder's always-keep
	// slowlog retained over the run (the /debug/requests evidence).
	SlowRecords int64
	// DebugPhases records the phase boundaries for diagnostics.
	DebugPhases []PhaseMark
}

// SLOSwitch runs the SLO-driven consistency-switch experiment.
func SLOSwitch(opts Options) (*SLOSwitchResult, error) {
	period := 30 * time.Second
	factor := 10.0
	if opts.Quick {
		period = 10 * time.Second
	}
	// The SLOSwitch builtin embeds the paper's 30 s period threshold;
	// rewrite it to the run's period like Fig 7 does for DynamicConsistency.
	dynSrc := strings.ReplaceAll(mustBuiltinSource("SLOSwitch"), "30s",
		fmt.Sprintf("%ds", int(period.Seconds())))

	d, err := NewDeployment(factor)
	if err != nil {
		return nil, err
	}
	defer d.Close()

	policySrc := `
Wiera MultiPrimariesConsistency {
	Region1 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region3 = {name: LowLatencyInstance, region: eu-west,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region4 = {name: LowLatencyInstance, region: asia-east,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	event(insert.into) : response {
		lock(what: insert.key);
		store(what: insert.object, to: local_instance);
		copy(what: insert.object, to: all_regions);
		release(what: insert.key);
	}
}`
	// SLO: puts (and, under eventual consistency, replication fan-outs)
	// complete under 800 ms for 90% of events. During the 1200 ms injected
	// delay essentially every event is bad, so the budget burns at ~10x —
	// far over the SLOSwitch policy's >= 2 alert threshold.
	nodes, err := d.Server.StartInstances(wiera.StartInstancesRequest{
		InstanceID: "sloswitch",
		PolicySrc:  policySrc,
		Params: map[string]string{
			"t":             "2s",
			"dynamic":       dynSrc,
			"sloPut":        "800ms",
			"sloTarget":     "0.9",
			"sloFastWindow": fmt.Sprintf("%dms", (period / 4).Milliseconds()),
			"sloSlowWindow": fmt.Sprintf("%dms", (period / 2).Milliseconds()),
			"sloInterval":   fmt.Sprintf("%dms", (period / 20).Milliseconds()),
		},
	})
	if err != nil {
		return nil, err
	}

	west, err := d.Node("sloswitch/us-west")
	if err != nil {
		return nil, err
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, pi := range nodes {
		node, err := d.Node(pi.Name)
		if err != nil {
			return nil, err
		}
		w := shrunkWorkload(ycsb.WorkloadA, 64, 1024)
		w.Prefix = string(pi.Region) + "/"
		cli, err := ycsb.NewClient(w, nodeStore{node}, opts.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		if err := cli.Load(); err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(cli *ycsb.Client) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					cli.RunOne(d.Clk.Now)
					d.Clk.Sleep(500 * time.Millisecond)
				}
			}
		}(cli)
	}

	res := &SLOSwitchResult{}
	sleep := func(mult float64) { d.Clk.Sleep(time.Duration(mult * float64(period))) }
	mark := func(name string) time.Time {
		now := d.Clk.Now()
		res.DebugPhases = append(res.DebugPhases, PhaseMark{Name: name, At: now})
		return now
	}
	// sampleSLO folds the current slo_* gauges at US-West into the result.
	sampleSLO := func() {
		for _, fam := range d.Fabric.Metrics().Snapshot() {
			switch fam.Name {
			case "slo_burn_rate":
				for _, m := range fam.Metrics {
					// Labels: slo, window, node, region.
					if len(m.LabelValues) == 4 && m.LabelValues[2] == west.Name() && m.Value > res.PeakBurn {
						res.PeakBurn = m.Value
					}
				}
			case "slo_violation":
				for _, m := range fam.Metrics {
					// Labels: slo, node, region.
					if len(m.LabelValues) == 3 && m.LabelValues[1] == west.Name() && m.Value >= 1 {
						res.ViolationSeen = true
					}
				}
			}
		}
	}

	// Let load-phase latencies age out of the burn windows.
	sleep(1.2)

	// Phase 1: normal operation under strong consistency.
	normalFrom := mark("normal")
	sleep(1.5)
	normalTo := d.Clk.Now()

	// Sustained delay: burn the error budget until the SLO alert fires and
	// the policy downgrades. Sample the gauges through the delay so the
	// peak burn and the violation flag are captured mid-incident.
	delayOn := mark("delay-on")
	d.Net.InjectRegionLag(simnet.USWest, 1200*time.Millisecond)
	for i := 0; i < 7; i++ {
		sleep(0.5)
		sampleSLO()
	}
	d.Net.InjectRegionLag(simnet.USWest, 0)
	delayOff := mark("delay-off")
	// Recovery: the budget stops burning; SLOSwitch returns to strong
	// consistency after its period streak.
	sleep(3.0)
	mark("end")

	close(stop)
	wg.Wait()

	res.Series = west.PutSeries.Points()
	res.Changes = d.Server.ChangeLog()
	res.AllViaSLO = true
	for _, ch := range res.Changes {
		if ch.What != "consistency" {
			continue
		}
		if ch.Via != "slo" {
			res.AllViaSLO = false
		}
		switch ch.To {
		case "EventualConsistency":
			res.SwitchesToEventual++
		case "MultiPrimariesConsistency":
			res.SwitchesToStrong++
		}
	}
	res.StrongMeanMs = meanInWindow(res.Series, normalFrom, normalTo)
	// Eventual-phase samples: the second half of the delay window, well
	// after the switch landed.
	mid := delayOn.Add(delayOff.Sub(delayOn) * 3 / 4)
	res.EventualMeanMs = meanInWindow(res.Series, mid, delayOff)
	_, res.SlowRecords = d.Fabric.Flight().Totals()
	return res, nil
}

// Render prints the run summary.
func (r *SLOSwitchResult) Render() string {
	var b strings.Builder
	b.WriteString("SLO-driven consistency switch (Fig-7 shape, SLOViolation trigger)\n")
	fmt.Fprintf(&b, "put latency, strong consistency (normal): %.1f ms\n", r.StrongMeanMs)
	fmt.Fprintf(&b, "put latency, eventual (during sustained delay): %.1f ms\n", r.EventualMeanMs)
	fmt.Fprintf(&b, "switches to eventual: %d, back to strong: %d\n",
		r.SwitchesToEventual, r.SwitchesToStrong)
	fmt.Fprintf(&b, "all consistency changes via SLO monitor: %v\n", r.AllViaSLO)
	fmt.Fprintf(&b, "peak error-budget burn rate at us-west: %.1fx (alert at 2x)\n", r.PeakBurn)
	fmt.Fprintf(&b, "slo_violation gauge fired: %v\n", r.ViolationSeen)
	fmt.Fprintf(&b, "flight-recorder slowlog records: %d\n", r.SlowRecords)
	fmt.Fprintf(&b, "timeline samples: %d, policy changes: %d\n", len(r.Series), len(r.Changes))
	return b.String()
}

// ShapeHolds reports whether the run demonstrates the tentpole claim: a
// consistency switch each way, fired by the SLO monitor (not raw latency),
// with the burn visible in the slo_* gauges and the incident's requests
// retained in the slowlog.
func (r *SLOSwitchResult) ShapeHolds() error {
	if r.SwitchesToEventual < 1 {
		return fmt.Errorf("sloswitch: no switch to eventual consistency")
	}
	if r.SwitchesToStrong < 1 {
		return fmt.Errorf("sloswitch: no switch back to strong consistency")
	}
	if !r.AllViaSLO {
		return fmt.Errorf("sloswitch: a consistency change fired via a non-SLO monitor")
	}
	if r.PeakBurn < flight.DefaultAlertBurn {
		return fmt.Errorf("sloswitch: peak burn %.2f below the %.0fx alert threshold",
			r.PeakBurn, flight.DefaultAlertBurn)
	}
	if !r.ViolationSeen {
		return fmt.Errorf("sloswitch: slo_violation gauge never fired")
	}
	if r.SlowRecords == 0 {
		return fmt.Errorf("sloswitch: slowlog retained no records through the incident")
	}
	if r.EventualMeanMs >= r.StrongMeanMs {
		return fmt.Errorf("sloswitch: eventual mean %.1f ms not under strong mean %.1f ms",
			r.EventualMeanMs, r.StrongMeanMs)
	}
	return nil
}

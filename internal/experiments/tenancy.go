package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/tenant"
	"repro/internal/wiera"
	"repro/internal/ycsb"
)

// tenancyPolicy is a single-region memory store with an explicit tier IOPS
// cap, so the worker pool is a genuinely shared, finite resource: without
// admission control and weighted-fair scheduling, one tenant's backlog
// inflates everyone's tail.
const tenancyPolicy = `
Wiera TenantStore {
	Region1 = {name: LowLatencyInstance, region: us-east, primary: true,
		tier1 = {name: memory, size: 4G, iops: 400}};
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
	}
}`

// noisyIOPSQuota is the aggressor's admission quota in ops per (simulated)
// second, enforced per worker node: quota buckets live next to the worker's
// own scheduler, so admission needs no cross-node coordination and the
// instance-wide effective quota scales with the pool. The experiment runs
// tenancyWorkers workers, so the effective quota is the product.
const (
	noisyIOPSQuota = 100
	tenancyWorkers = 2
)

// tenancyOfferFactor is the required overload: the noisy tenant must offer
// at least this multiple of its quota for the run to count as an isolation
// test at all.
const tenancyOfferFactor = 10

// victimP99Slack is the stated isolation bound: the victim's contended get
// p99 must stay within this factor of its solo baseline (plus a small
// absolute floor so a sub-millisecond baseline doesn't make the bound
// degenerate).
const (
	victimP99Slack   = 3.0
	victimP99FloorMs = 25.0
)

// TenancyResult is the noisy-neighbor isolation audit: tenant "noisy"
// hammers the instance at >= 10x its IOPS quota while tenant "victim" runs
// a paced workload; quota admission must NACK the overload, the
// weighted-fair scheduler must keep the victim's tail flat, and no acked
// write from either tenant may be lost.
type TenancyResult struct {
	VictimSoloP99Ms      float64
	VictimContendedP99Ms float64
	VictimSoloOpsPerSec  float64
	VictimOpsPerSec      float64 // during contention

	NoisyOfferedPerSec  float64
	NoisyAdmittedPerSec float64
	NoisyQuota          float64
	NoisyThrottled      int64

	AckedWrites int
	Lost        int
}

// tenancyRun carries the shared state of one run.
type tenancyRun struct {
	d       *Deployment
	victim  *wiera.Client
	noisy   *wiera.Client
	records int
	seed    int64

	mu    sync.Mutex
	acked map[string]map[string]string // tenant -> key -> last acked value
}

func (r *tenancyRun) ack(tenantID, key, val string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.acked[tenantID]
	if m == nil {
		m = make(map[string]string)
		r.acked[tenantID] = m
	}
	m[key] = val
}

// victimPhase runs the victim's paced 80/20 read/write loop for dur and
// returns achieved ops/s and get p99 in milliseconds. The loop is open-loop
// (fixed pace): its offered load never adapts to what the noisy tenant does
// to the instance, which is exactly what makes the p99 comparison fair.
func (r *tenancyRun) victimPhase(dur, pace time.Duration, shift int) (float64, float64, error) {
	clk := r.d.Clk
	deadline := clk.Now().Add(dur)
	start := clk.Now()
	hist := stats.NewHistogram()
	z := ycsb.NewZipfian(r.records, ycsb.ZipfianConstant, r.seed+int64(shift)*7919)
	rng := rand.New(rand.NewSource(r.seed + int64(shift)))
	ctx := context.Background()
	var ops, writes int64
	for clk.Now().Before(deadline) {
		clk.Sleep(pace)
		idx := z.Next()
		if rng.Float64() < 0.2 {
			key := ycsb.Key(idx)
			val := fmt.Sprintf("v:%d:%d", shift, writes)
			if _, err := r.victim.Put(ctx, key, []byte(val)); err == nil {
				r.ack("victim", key, val)
				writes++
				ops++
			}
			continue
		}
		t0 := clk.Now()
		if _, _, err := r.victim.Get(ctx, ycsb.Key(idx)); err == nil {
			hist.Record(clk.Now().Sub(t0))
			ops++
		}
	}
	elapsed := clk.Now().Sub(start)
	if elapsed <= 0 {
		return 0, 0, fmt.Errorf("no simulated time elapsed")
	}
	return float64(ops) / elapsed.Seconds(),
		float64(hist.Percentile(99)) / float64(time.Millisecond), nil
}

// noisyPhase runs the aggressor: closed-loop writers that keep offering ops
// as fast as NACKs come back. A quota NACK is fail-fast at the client (no
// retry-budget burn), so the loop inserts a short simulated-time sleep to
// model a client that reacts to the NACK rather than busy-spinning the
// virtual clock. Returns offered and admitted ops/s.
func (r *tenancyRun) noisyPhase(clients int, dur time.Duration) (float64, float64, error) {
	clk := r.d.Clk
	deadline := clk.Now().Add(dur)
	start := clk.Now()
	var offered, admitted atomic.Int64
	var wg sync.WaitGroup
	ctx := context.Background()
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var seq int64
			for clk.Now().Before(deadline) {
				key := fmt.Sprintf("n%d-%d", id, seq%int64(r.records))
				val := fmt.Sprintf("noisy:%d:%d", id, seq)
				seq++
				offered.Add(1)
				if _, err := r.noisy.Put(ctx, key, []byte(val)); err != nil {
					clk.Sleep(2 * time.Millisecond)
					continue
				}
				r.ack("noisy", key, val)
				admitted.Add(1)
			}
		}(id)
	}
	wg.Wait()
	elapsed := clk.Now().Sub(start)
	if elapsed <= 0 {
		return 0, 0, fmt.Errorf("no simulated time elapsed")
	}
	return float64(offered.Load()) / elapsed.Seconds(),
		float64(admitted.Load()) / elapsed.Seconds(), nil
}

// Tenancy runs the multi-tenant isolation experiment: a solo victim
// baseline, then the same victim workload with a noisy tenant offering 10x
// its IOPS quota, then the lost-acked-writes audit through fresh clients.
func Tenancy(opts Options) (*TenancyResult, error) {
	records := 200
	soloDur, contendedDur := 8*time.Second, 12*time.Second
	if !opts.Quick {
		records = 1000
		soloDur, contendedDur = 20*time.Second, 40*time.Second
	}
	d, err := NewSimDeployment(simnet.USEast)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	if _, err := d.Server.StartInstances(wiera.StartInstancesRequest{
		InstanceID: "tenancy", PolicySrc: tenancyPolicy, Params: map[string]string{
			"workers": fmt.Sprintf("%d", tenancyWorkers), "t": "500ms",
			"tenants":             "noisy,victim",
			"tenantWeight:victim": "4",
			"tenantWeight:noisy":  "1",
			"tenantIOPS:noisy":    fmt.Sprintf("%d", noisyIOPSQuota),
			"tenantSlots":         "2",
		},
	}); err != nil {
		return nil, err
	}
	victim, err := wiera.NewTenantClient(d.Fabric, "cli-victim", simnet.USEast, d.Server.Name(), "tenancy", "victim")
	if err != nil {
		return nil, err
	}
	defer victim.Close()
	noisy, err := wiera.NewTenantClient(d.Fabric, "cli-noisy", simnet.USEast, d.Server.Name(), "tenancy", "noisy")
	if err != nil {
		return nil, err
	}
	defer noisy.Close()

	r := &tenancyRun{
		d: d, victim: victim, noisy: noisy, records: records, seed: opts.Seed,
		acked: make(map[string]map[string]string),
	}
	if err := parallelLoad(clientStore{victim}, records, 64); err != nil {
		return nil, err
	}

	// The per-node quota is enforced independently on each worker, so the
	// instance-wide effective quota is per-node times the pool size.
	res := &TenancyResult{NoisyQuota: noisyIOPSQuota * tenancyWorkers}
	const victimPace = 10 * time.Millisecond

	// Phase 1: solo baseline.
	if res.VictimSoloOpsPerSec, res.VictimSoloP99Ms, err = r.victimPhase(soloDur, victimPace, 0); err != nil {
		return nil, err
	}

	// Phase 2: contention — the noisy tenant's closed-loop writers run
	// alongside the identical victim workload.
	var noisyErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res.NoisyOfferedPerSec, res.NoisyAdmittedPerSec, noisyErr = r.noisyPhase(12, contendedDur)
	}()
	res.VictimOpsPerSec, res.VictimContendedP99Ms, err = r.victimPhase(contendedDur, victimPace, 1)
	wg.Wait()
	if err != nil {
		return nil, err
	}
	if noisyErr != nil {
		return nil, noisyErr
	}

	// Throttle accounting from the node's tenant stats.
	st, err := d.Server.CollectStats("tenancy")
	if err != nil {
		return nil, err
	}
	for _, n := range st.Nodes {
		for _, t := range n.Tenants {
			if t.ID == "noisy" {
				res.NoisyThrottled += t.Throttled
			}
		}
	}

	// Zero-lost-acked-writes audit through fresh per-tenant clients, so no
	// client-side state can mask a server-side loss.
	for tenantID, m := range r.acked {
		audit, err := wiera.NewTenantClient(d.Fabric, "cli-audit-"+tenantID,
			simnet.USEast, d.Server.Name(), "tenancy", tenantID)
		if err != nil {
			return nil, err
		}
		for key, want := range m {
			res.AckedWrites++
			// The noisy tenant's bucket is drained after the contended
			// phase, so the audit's own gets can be quota-NACKed; a NACK is
			// flow control, not data loss — pace and retry until admitted.
			var data []byte
			var gerr error
			for attempt := 0; attempt < 200; attempt++ {
				data, _, gerr = audit.Get(context.Background(), key)
				if gerr == nil || tenant.AsQuotaExceeded(gerr) == nil {
					break
				}
				d.Clk.Sleep(20 * time.Millisecond)
			}
			if gerr != nil || string(data) != want {
				res.Lost++
			}
		}
		audit.Close()
	}
	return res, nil
}

// victimBoundMs is the stated bound the contended p99 is checked against.
func (r *TenancyResult) victimBoundMs() float64 {
	bound := r.VictimSoloP99Ms * victimP99Slack
	if bound < victimP99FloorMs {
		bound = victimP99FloorMs
	}
	return bound
}

// Render prints the isolation audit.
func (r *TenancyResult) Render() string {
	var b strings.Builder
	b.WriteString("Tenancy: noisy neighbor at >=10x quota vs paced victim\n")
	fmt.Fprintf(&b, "noisy: offered %.0f ops/s against a %.0f IOPS quota (%.1fx), admitted %.0f ops/s, throttled %d\n",
		r.NoisyOfferedPerSec, r.NoisyQuota, r.NoisyOfferedPerSec/r.NoisyQuota,
		r.NoisyAdmittedPerSec, r.NoisyThrottled)
	fmt.Fprintf(&b, "victim: %.0f ops/s contended vs %.0f ops/s solo\n",
		r.VictimOpsPerSec, r.VictimSoloOpsPerSec)
	fmt.Fprintf(&b, "victim get p99: solo %.2fms, contended %.2fms (bound %.2fms)\n",
		r.VictimSoloP99Ms, r.VictimContendedP99Ms, r.victimBoundMs())
	fmt.Fprintf(&b, "acked writes=%d lost=%d\n", r.AckedWrites, r.Lost)
	return b.String()
}

// ShapeHolds verifies the isolation claims: the aggressor really overloaded
// its quota and was throttled, its admitted rate stayed near the quota, the
// victim's tail held the stated bound at its full paced rate, and no acked
// write was lost.
func (r *TenancyResult) ShapeHolds() error {
	if r.NoisyOfferedPerSec < tenancyOfferFactor*r.NoisyQuota {
		return fmt.Errorf("tenancy: noisy offered only %.0f ops/s, want >= %dx the %.0f quota",
			r.NoisyOfferedPerSec, tenancyOfferFactor, r.NoisyQuota)
	}
	if r.NoisyThrottled == 0 {
		return fmt.Errorf("tenancy: quota admission never throttled the noisy tenant")
	}
	// Admitted rate must track the quota: generously, within 2x (token
	// bursts and edge effects), and above half (admission isn't starving a
	// tenant that is entitled to its quota).
	if r.NoisyAdmittedPerSec > 2*r.NoisyQuota {
		return fmt.Errorf("tenancy: noisy admitted %.0f ops/s, want <= 2x the %.0f quota",
			r.NoisyAdmittedPerSec, r.NoisyQuota)
	}
	if r.NoisyAdmittedPerSec < r.NoisyQuota/2 {
		return fmt.Errorf("tenancy: noisy admitted only %.0f ops/s against a %.0f quota",
			r.NoisyAdmittedPerSec, r.NoisyQuota)
	}
	if r.VictimOpsPerSec < 0.7*r.VictimSoloOpsPerSec {
		return fmt.Errorf("tenancy: victim throughput fell to %.0f ops/s under contention (solo %.0f)",
			r.VictimOpsPerSec, r.VictimSoloOpsPerSec)
	}
	if bound := r.victimBoundMs(); r.VictimContendedP99Ms > bound {
		return fmt.Errorf("tenancy: victim contended p99 %.2fms exceeds bound %.2fms (solo %.2fms)",
			r.VictimContendedP99Ms, bound, r.VictimSoloP99Ms)
	}
	if r.AckedWrites == 0 {
		return fmt.Errorf("tenancy: no writes were acked")
	}
	if r.Lost > 0 {
		return fmt.Errorf("tenancy: %d of %d acked writes lost", r.Lost, r.AckedWrites)
	}
	return nil
}

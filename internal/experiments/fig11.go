package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cloudsim"
	"repro/internal/policy"
	"repro/internal/simnet"
	"repro/internal/sysbench"
	"repro/internal/tiera"
	"repro/internal/wfs"
	"repro/internal/wiera"
)

// Fig11Row is one Azure VM size's SysBench IOPS for both storage paths.
type Fig11Row struct {
	VM          cloudsim.VMType
	LocalIOPS   float64 // Azure local disk, 500-IOPS throttle
	RemoteIOPS  float64 // AWS remote memory through Wiera
	Improvement float64 // (remote-local)/local
}

// Fig11Result reproduces "Figure 11: Performance (IOPS) comparison":
// SysBench random reads against (a) the Azure VM's local disk (throttled
// flat at 500 IOPS regardless of size) and (b) AWS memory in the
// neighbouring US-East DC reached through Wiera, whose throughput follows
// the per-VM-size network throttle — worse than local disk on Basic
// A2/Standard D1, ~44% better on Standard D2/D3.
type Fig11Result struct {
	Rows []Fig11Row
}

// Fig11 runs SysBench for each Azure size against both backends on a
// virtual clock.
func Fig11(opts Options) (*Fig11Result, error) {
	ops := 600
	if opts.Quick {
		ops = 250
	}
	res := &Fig11Result{}
	// The local-disk bar is identical for every VM size (the whole point
	// of the figure: Azure throttles attached disks to 500 IOPS regardless
	// of size), so measure it once.
	local, err := fig11Local(opts, ops)
	if err != nil {
		return nil, fmt.Errorf("fig11 local: %w", err)
	}
	for _, vm := range cloudsim.AzureSizes() {
		spec, err := cloudsim.Lookup(vm)
		if err != nil {
			return nil, err
		}
		remote, err := fig11Remote(opts, ops, spec)
		if err != nil {
			return nil, fmt.Errorf("fig11 %s remote: %w", vm, err)
		}
		res.Rows = append(res.Rows, Fig11Row{
			VM: vm, LocalIOPS: local, RemoteIOPS: remote,
			Improvement: (remote - local) / local,
		})
	}
	return res, nil
}

// fig11Local measures the Azure attached disk: a single-tier Tiera
// instance whose disk is throttled to 500 IOPS (host cache off, O_DIRECT —
// the paper's MySQL-style setting).
func fig11Local(opts Options, ops int) (float64, error) {
	d, err := NewSimDeployment(simnet.AzureUSEast)
	if err != nil {
		return 0, err
	}
	defer d.Close()
	src := `Tiera AzureDisk { tier1: {name: ebs-ssd, size: 4G, iops: 500}; }`
	spec, err := policy.Parse(src)
	if err != nil {
		return 0, err
	}
	inst, err := tiera.New(tiera.Config{
		Name: "fig11/disk", Region: simnet.AzureUSEast, Spec: spec, Clock: d.Clk,
	})
	if err != nil {
		return 0, err
	}
	defer inst.Close()
	fs := wfs.New(wfs.TieraBackend{Inst: inst})
	return runSysbench(fs, d, ops, opts.Seed)
}

// fig11Remote measures remote memory through Wiera: the Azure node holds a
// local disk, all gets forward to the AWS US-East memory instance 2 ms
// away, and the inter-DC path carries the VM size's small-message
// throughput cap.
func fig11Remote(opts Options, ops int, vm cloudsim.Spec) (float64, error) {
	d, err := NewSimDeployment(simnet.AzureUSEast, simnet.USEast)
	if err != nil {
		return 0, err
	}
	defer d.Close()
	// Azure's inter-VM network throttle, both directions of the data path.
	bps := vm.SmallMsgMBps * 1e6
	d.Net.SetBandwidth(simnet.AzureUSEast, simnet.USEast, bps)
	d.Net.SetBandwidth(simnet.USEast, simnet.AzureUSEast, bps)

	policySrc := `
Wiera RemoteMemory {
	Region1 = {name: ForwardingInstance, region: azure-us-east, primary: true,
		tier1 = {name: ebs-ssd, size: 4G}};
	Region2 = {name: ForwardingInstance, region: us-east,
		tier1 = {name: memory, size: 4G}};
	event(insert.into) : response {
		if (local_instance.isPrimary == true) {
			store(what: insert.object, to: local_instance);
			copy(what: insert.object, to: all_regions);
		} else {
			forward(what: insert.object, to: primary_instance);
		}
	}
	event(get.from) : response {
		forward(what: get.key, to: us-east);
	}
}`
	if _, err := d.Server.StartInstances(wiera.StartInstancesRequest{
		InstanceID: "fig11", PolicySrc: policySrc, Params: map[string]string{},
	}); err != nil {
		return 0, err
	}
	azure, err := d.Node("fig11/azure-us-east")
	if err != nil {
		return 0, err
	}
	fs := wfs.New(wfs.NodeBackend{Node: azure})
	return runSysbench(fs, d, ops, opts.Seed)
}

func runSysbench(fs *wfs.FS, d *Deployment, ops int, seed int64) (float64, error) {
	cfg := sysbench.Config{
		FS: fs, Clock: d.Clk, Files: 4, FileSize: 512 * 1024,
		BlockSize: 16 * 1024, Threads: 16, Ops: ops,
		Mode: sysbench.RndRead, Seed: seed,
	}
	if err := sysbench.Prepare(cfg); err != nil {
		return 0, err
	}
	res, err := sysbench.Run(cfg)
	if err != nil {
		return 0, err
	}
	if res.Errors > 0 {
		return 0, fmt.Errorf("sysbench reported %d errors", res.Errors)
	}
	return res.IOPS, nil
}

// Render prints the per-VM-size IOPS comparison.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 11: SysBench IOPS, Azure local disk vs AWS remote memory via Wiera\n")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{string(row.VM),
			fmt.Sprintf("%.0f", row.LocalIOPS),
			fmt.Sprintf("%.0f", row.RemoteIOPS),
			fmt.Sprintf("%+.0f%%", 100*row.Improvement)})
	}
	b.WriteString(table([]string{"VM size", "Local disk IOPS", "Remote memory IOPS", "Remote vs local"}, rows))
	b.WriteString("paper: local flat ~500 (Azure throttle); remote worse on A2/D1, ~44% better on D2/D3\n")
	return b.String()
}

// ShapeHolds verifies the figure's qualitative claims.
func (r *Fig11Result) ShapeHolds() error {
	byVM := map[cloudsim.VMType]Fig11Row{}
	for _, row := range r.Rows {
		byVM[row.VM] = row
	}
	// Local disk flat at ~500 for every size.
	for _, row := range r.Rows {
		if row.LocalIOPS < 400 || row.LocalIOPS > 550 {
			return fmt.Errorf("fig11: %s local disk %.0f IOPS, want ~500 (throttle)", row.VM, row.LocalIOPS)
		}
	}
	// Remote memory grows with VM size.
	sizes := cloudsim.AzureSizes()
	for i := 1; i < len(sizes); i++ {
		if byVM[sizes[i]].RemoteIOPS < byVM[sizes[i-1]].RemoteIOPS {
			return fmt.Errorf("fig11: remote IOPS not monotone: %s %.0f < %s %.0f",
				sizes[i], byVM[sizes[i]].RemoteIOPS, sizes[i-1], byVM[sizes[i-1]].RemoteIOPS)
		}
	}
	// Crossover: remote loses on A2/D1, wins by ~44% on D2/D3.
	for _, small := range []cloudsim.VMType{cloudsim.AzureBasicA2, cloudsim.AzureStdD1} {
		if byVM[small].RemoteIOPS >= byVM[small].LocalIOPS {
			return fmt.Errorf("fig11: remote should lose on %s (%.0f vs %.0f)",
				small, byVM[small].RemoteIOPS, byVM[small].LocalIOPS)
		}
	}
	for _, big := range []cloudsim.VMType{cloudsim.AzureStdD2, cloudsim.AzureStdD3} {
		imp := byVM[big].Improvement
		if imp < 0.30 || imp > 0.60 {
			return fmt.Errorf("fig11: %s improvement %+.0f%%, paper ~44%%", big, 100*imp)
		}
	}
	return nil
}

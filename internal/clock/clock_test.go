package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealNow(t *testing.T) {
	c := Real{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}

func TestRealSince(t *testing.T) {
	c := Real{}
	start := c.Now()
	c.Sleep(time.Millisecond)
	if got := c.Since(start); got < time.Millisecond {
		t.Fatalf("Since = %v, want >= 1ms", got)
	}
}

func TestScaledCompressesSleep(t *testing.T) {
	// Factor 100: 100ms of clock time should cost ~1ms of real time.
	c := NewScaled(100)
	start := time.Now()
	c.Sleep(100 * time.Millisecond)
	real := time.Since(start)
	if real > 50*time.Millisecond {
		t.Fatalf("scaled sleep of 100ms took %v of real time, want ~1ms", real)
	}
}

func TestScaledNowAdvancesFaster(t *testing.T) {
	c := NewScaled(100)
	start := c.Now()
	time.Sleep(5 * time.Millisecond)
	elapsed := c.Since(start)
	if elapsed < 100*time.Millisecond {
		t.Fatalf("scaled clock advanced %v during 5ms real, want >= 100ms", elapsed)
	}
}

func TestScaledAfter(t *testing.T) {
	c := NewScaled(1000)
	select {
	case <-c.After(100 * time.Millisecond):
	case <-time.After(2 * time.Second):
		t.Fatal("scaled After never fired")
	}
}

func TestScaledFactorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewScaled(0) did not panic")
		}
	}()
	NewScaled(0)
}

func TestSimNowFrozen(t *testing.T) {
	s := NewSim(time.Time{})
	a := s.Now()
	b := s.Now()
	if !a.Equal(b) {
		t.Fatalf("sim clock moved without Advance: %v then %v", a, b)
	}
}

func TestSimAdvance(t *testing.T) {
	s := NewSim(time.Time{})
	start := s.Now()
	s.Advance(30 * time.Second)
	if got := s.Since(start); got != 30*time.Second {
		t.Fatalf("Since after Advance(30s) = %v", got)
	}
}

func TestSimSleepWakesOnAdvance(t *testing.T) {
	s := NewSim(time.Time{})
	done := make(chan struct{})
	go func() {
		s.Sleep(10 * time.Second)
		close(done)
	}()
	waitForWaiters(t, s, 1)
	select {
	case <-done:
		t.Fatal("Sleep returned before Advance")
	case <-time.After(10 * time.Millisecond):
	}
	s.Advance(10 * time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not wake after Advance")
	}
}

func TestSimAfterDeliversDeadlineTime(t *testing.T) {
	s := NewSim(time.Time{})
	start := s.Now()
	ch := s.After(5 * time.Second)
	s.Advance(20 * time.Second)
	got := <-ch
	if want := start.Add(5 * time.Second); !got.Equal(want) {
		t.Fatalf("After delivered %v, want deadline %v", got, want)
	}
}

func TestSimAfterZeroFiresImmediately(t *testing.T) {
	s := NewSim(time.Time{})
	select {
	case <-s.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestSimWakesInDeadlineOrder(t *testing.T) {
	s := NewSim(time.Time{})
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	durations := []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second}
	for i, d := range durations {
		wg.Add(1)
		go func(i int, d time.Duration) {
			defer wg.Done()
			s.Sleep(d)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i, d)
	}
	waitForWaiters(t, s, 3)
	// Advance one waiter at a time, waiting for each woken goroutine to
	// record itself before releasing the next, so order is observable.
	for n := 1; n <= 3; n++ {
		s.Advance(10 * time.Second)
		deadline := time.Now().Add(2 * time.Second)
		for {
			mu.Lock()
			got := len(order)
			mu.Unlock()
			if got >= n {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for waiter %d to wake", n)
			}
			time.Sleep(time.Millisecond)
		}
	}
	wg.Wait()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestSimConcurrentAdvance(t *testing.T) {
	s := NewSim(time.Time{})
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Sleep(time.Duration(1+i%5) * time.Second)
		}()
	}
	waitForWaiters(t, s, 20)
	s.Advance(10 * time.Second)
	wg.Wait()
	if n := s.Waiters(); n != 0 {
		t.Fatalf("%d waiters left after Advance past all deadlines", n)
	}
}

func waitForWaiters(t *testing.T, s *Sim, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.Waiters() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d waiters (have %d)", n, s.Waiters())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAutoAdvanceDrivesSleepers(t *testing.T) {
	s := NewSim(time.Time{})
	stop := s.AutoAdvance(200 * time.Microsecond)
	defer stop()
	start := s.Now()
	done := make(chan struct{})
	go func() {
		// A chain of sleeps: the driver must fire each deadline in turn.
		for i := 0; i < 5; i++ {
			s.Sleep(10 * time.Second)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("auto-advance never drove the sleeper")
	}
	if got := s.Since(start); got < 50*time.Second {
		t.Fatalf("clock advanced only %v, want >= 50s", got)
	}
}

func TestAutoAdvanceExactDeadlines(t *testing.T) {
	s := NewSim(time.Time{})
	stop := s.AutoAdvance(100 * time.Microsecond)
	defer stop()
	start := s.Now()
	// Two concurrent sleepers with different deadlines: both wake, and the
	// measured durations are exactly the modeled ones.
	results := make(chan time.Duration, 2)
	for _, d := range []time.Duration{3 * time.Second, 7 * time.Second} {
		go func(d time.Duration) {
			s.Sleep(d)
			results <- s.Since(start)
		}(d)
	}
	a, b := <-results, <-results
	if a > b {
		a, b = b, a
	}
	if a != 3*time.Second {
		t.Fatalf("first waker measured %v, want exactly 3s", a)
	}
	if b != 7*time.Second {
		t.Fatalf("second waker measured %v, want exactly 7s", b)
	}
}

func TestAutoAdvanceStop(t *testing.T) {
	s := NewSim(time.Time{})
	stop := s.AutoAdvance(0) // default poll
	stop()
	// After stop, sleepers stay blocked (manual Advance still works).
	done := make(chan struct{})
	go func() {
		s.Sleep(time.Second)
		close(done)
	}()
	waitForWaiters(t, s, 1)
	select {
	case <-done:
		t.Fatal("sleeper woke after driver stopped")
	case <-time.After(20 * time.Millisecond):
	}
	s.Advance(time.Second)
	<-done
}

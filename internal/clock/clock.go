// Package clock abstracts time for the Wiera system.
//
// Every latency model, timer event, and monitoring window in this repository
// obtains time through a Clock rather than the time package directly. This
// makes two things possible:
//
//   - Deterministic unit tests: Sim is a virtual clock advanced manually, so
//     a "30 second" monitoring window elapses instantly and reproducibly.
//   - Fast end-to-end experiments: Scaled compresses real time by a constant
//     factor, so a multi-minute paper experiment runs in seconds while
//     preserving the relative ordering and overlap of concurrent operations.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time and sleep/timer primitives.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the calling goroutine for d of clock time.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// Since returns the clock time elapsed since t.
	Since(t time.Time) time.Duration
}

// Real is the wall clock. The zero value is ready to use.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Scaled is a wall clock whose durations are compressed by Factor: sleeping
// for d on a Scaled clock with Factor 0.05 blocks for d/20 of real time, and
// Since/Now report times in *clock* units so measured latencies come out in
// paper-scale units. A Factor of 1 behaves like Real.
//
// Scaled keeps a fixed epoch so that clock time is an affine function of
// real time; concurrent observers always agree on ordering.
type Scaled struct {
	factor float64   // clock seconds per real second (>= 0)
	epoch  time.Time // real time at clock time epochClock
}

// NewScaled returns a clock on which real durations appear factor times
// longer: factor 20 means 1 real ms reads as 20 clock ms, so a simulated
// 150 ms WAN hop costs 7.5 ms of real time. factor must be > 0.
func NewScaled(factor float64) *Scaled {
	if factor <= 0 {
		panic("clock: NewScaled factor must be > 0")
	}
	return &Scaled{factor: factor, epoch: time.Now()}
}

// Factor returns the time-compression factor.
func (s *Scaled) Factor() float64 { return s.factor }

// Now implements Clock.
func (s *Scaled) Now() time.Time {
	real := time.Since(s.epoch)
	return s.epoch.Add(time.Duration(float64(real) * s.factor))
}

// Sleep implements Clock. It blocks for d/factor of real time.
func (s *Scaled) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(d) / s.factor))
}

// After implements Clock.
func (s *Scaled) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	go func() {
		s.Sleep(d)
		ch <- s.Now()
	}()
	return ch
}

// Since implements Clock.
func (s *Scaled) Since(t time.Time) time.Duration { return s.Now().Sub(t) }

// Sim is a virtual clock for deterministic tests. Time only moves when
// Advance is called. Goroutines blocked in Sleep or waiting on After fire in
// deadline order as Advance passes their deadlines. Sim is safe for
// concurrent use.
type Sim struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*simWaiter
}

type simWaiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewSim returns a virtual clock starting at start. A zero start uses an
// arbitrary fixed epoch so tests are reproducible.
func NewSim(start time.Time) *Sim {
	if start.IsZero() {
		start = time.Date(2016, 5, 31, 0, 0, 0, 0, time.UTC) // HPDC'16 week
	}
	return &Sim{now: start}
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Sleep implements Clock. It blocks until Advance moves the clock past the
// deadline.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-s.After(d)
}

// After implements Clock.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- s.now
		return ch
	}
	s.waiters = append(s.waiters, &simWaiter{deadline: s.now.Add(d), ch: ch})
	return ch
}

// Since implements Clock.
func (s *Sim) Since(t time.Time) time.Duration { return s.Now().Sub(t) }

// Advance moves the virtual clock forward by d, waking every waiter whose
// deadline is reached, in deadline order.
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	target := s.now.Add(d)
	for {
		next := s.earliestLocked()
		if next == nil || next.deadline.After(target) {
			break
		}
		s.now = next.deadline
		s.removeLocked(next)
		next.ch <- s.now
	}
	s.now = target
	s.mu.Unlock()
}

// Waiters reports how many goroutines are currently blocked on this clock.
// Tests use it to synchronize before advancing.
func (s *Sim) Waiters() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}

func (s *Sim) earliestLocked() *simWaiter {
	var best *simWaiter
	for _, w := range s.waiters {
		if best == nil || w.deadline.Before(best.deadline) {
			best = w
		}
	}
	return best
}

// AutoAdvance starts a discrete-event driver: whenever goroutines are
// blocked on this clock and the set of waiters has been stable for one
// poll interval (i.e. the process looks idle), the clock jumps to the
// earliest pending deadline. This lets throughput experiments run at
// simulation speed with exact modeled durations — real compute time does
// not distort measured clock time, unlike a Scaled clock.
//
// poll is the real-time check interval (e.g. 100µs). The returned stop
// function terminates the driver.
func (s *Sim) AutoAdvance(poll time.Duration) (stop func()) {
	if poll <= 0 {
		poll = 100 * time.Microsecond
	}
	done := make(chan struct{})
	go func() {
		var prevCount int
		var prevEarliest time.Time
		for {
			select {
			case <-done:
				return
			case <-time.After(poll):
			}
			s.mu.Lock()
			count := len(s.waiters)
			var earliest time.Time
			if w := s.earliestLocked(); w != nil {
				earliest = w.deadline
			}
			stable := count > 0 && count == prevCount && earliest.Equal(prevEarliest)
			prevCount, prevEarliest = count, earliest
			if !stable {
				s.mu.Unlock()
				continue
			}
			// Advance exactly to the earliest deadline, waking its waiters.
			target := earliest
			for {
				next := s.earliestLocked()
				if next == nil || next.deadline.After(target) {
					break
				}
				s.now = next.deadline
				s.removeLocked(next)
				next.ch <- s.now
			}
			if target.After(s.now) {
				s.now = target
			}
			prevCount, prevEarliest = 0, time.Time{}
			s.mu.Unlock()
		}
	}()
	return func() { close(done) }
}

func (s *Sim) removeLocked(target *simWaiter) {
	for i, w := range s.waiters {
		if w == target {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

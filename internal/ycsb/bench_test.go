package ycsb

import "testing"

func BenchmarkZipfianNext(b *testing.B) {
	z := NewZipfian(100000, ZipfianConstant, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}

func BenchmarkUniformNext(b *testing.B) {
	u := NewUniform(100000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = u.Next()
	}
}

func BenchmarkClientOpAgainstMap(b *testing.B) {
	store := newMapStore()
	w := WorkloadA
	w.RecordCount = 1024
	w.FieldLength = 128
	c, err := NewClient(w, store, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Load(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.RunOne(nil) {
			b.Fatal("op failed")
		}
	}
}

// Package ycsb reimplements the Yahoo! Cloud Serving Benchmark workload
// generator (Cooper et al., SoCC'10) used by the paper's evaluation:
// standard workloads A-F, the zipfian/uniform/latest request distributions,
// and a closed-loop client driver that runs any PUT/GET store and records
// per-operation latency.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/stats"
)

// OpKind is one benchmark operation type.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpReadModifyWrite
)

// String names the operation.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpReadModifyWrite:
		return "rmw"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Workload defines an operation mix and request distribution.
type Workload struct {
	Name         string
	ReadProp     float64
	UpdateProp   float64
	InsertProp   float64
	RMWProp      float64
	Distribution string // "zipfian", "uniform", or "latest"
	RecordCount  int
	FieldLength  int // value size in bytes
	// Prefix namespaces this workload's keys, letting concurrent clients
	// use disjoint keyspaces.
	Prefix string
}

// Standard YCSB workloads (core package defaults: 1000-record keyspace is
// overridden by callers; field length 1 KB).
var (
	// WorkloadA is the update-heavy mix: 50% reads, 50% updates (used by
	// the paper's Fig 7 experiment).
	WorkloadA = Workload{Name: "A", ReadProp: 0.5, UpdateProp: 0.5,
		Distribution: "zipfian", RecordCount: 1000, FieldLength: 1024}
	// WorkloadB is read-mostly: 95% reads, 5% updates (the mix the paper's
	// Sec 5.2 experiment describes as "workload A: Read mostly (5% put and
	// 95% get)").
	WorkloadB = Workload{Name: "B", ReadProp: 0.95, UpdateProp: 0.05,
		Distribution: "zipfian", RecordCount: 1000, FieldLength: 1024}
	// WorkloadC is read-only.
	WorkloadC = Workload{Name: "C", ReadProp: 1.0,
		Distribution: "zipfian", RecordCount: 1000, FieldLength: 1024}
	// WorkloadD reads the latest inserts: 95% reads, 5% inserts.
	WorkloadD = Workload{Name: "D", ReadProp: 0.95, InsertProp: 0.05,
		Distribution: "latest", RecordCount: 1000, FieldLength: 1024}
	// WorkloadF is read-modify-write: 50% reads, 50% RMW.
	WorkloadF = Workload{Name: "F", ReadProp: 0.5, RMWProp: 0.5,
		Distribution: "zipfian", RecordCount: 1000, FieldLength: 1024}
)

// Validate checks that the proportions sum to 1.
func (w Workload) Validate() error {
	sum := w.ReadProp + w.UpdateProp + w.InsertProp + w.RMWProp
	if math.Abs(sum-1.0) > 1e-9 {
		return fmt.Errorf("ycsb: workload %s proportions sum to %v", w.Name, sum)
	}
	if w.RecordCount <= 0 {
		return fmt.Errorf("ycsb: workload %s record count %d", w.Name, w.RecordCount)
	}
	switch w.Distribution {
	case "zipfian", "uniform", "latest":
	default:
		return fmt.Errorf("ycsb: unknown distribution %q", w.Distribution)
	}
	return nil
}

// KeyChooser selects record indexes according to a distribution.
type KeyChooser interface {
	// Next returns an index in [0, n) where n is the current record count.
	Next() int
}

// Uniform chooses keys uniformly.
type Uniform struct {
	rng *rand.Rand
	n   int
}

// NewUniform returns a uniform chooser over n records.
func NewUniform(n int, seed int64) *Uniform {
	return &Uniform{rng: rand.New(rand.NewSource(seed)), n: n}
}

// Next implements KeyChooser.
func (u *Uniform) Next() int { return u.rng.Intn(u.n) }

// Zipfian chooses keys with a zipf distribution (theta 0.99, YCSB's
// default), using the Gray et al. rejection-free method YCSB implements.
// Rank 0 is the hottest key.
type Zipfian struct {
	rng   *rand.Rand
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// ZipfianConstant is YCSB's default skew.
const ZipfianConstant = 0.99

// NewZipfian returns a zipfian chooser over n records with theta skew
// (pass ZipfianConstant for the YCSB default).
func NewZipfian(n int, theta float64, seed int64) *Zipfian {
	z := &Zipfian{rng: rand.New(rand.NewSource(seed)), n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements KeyChooser.
func (z *Zipfian) Next() int {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Latest skews toward the most recently inserted records: it draws a
// zipfian rank and counts back from the newest record.
type Latest struct {
	z *Zipfian
	n int
}

// NewLatest returns a latest-distribution chooser over n records.
func NewLatest(n int, seed int64) *Latest {
	return &Latest{z: NewZipfian(n, ZipfianConstant, seed), n: n}
}

// Next implements KeyChooser.
func (l *Latest) Next() int {
	r := l.z.Next()
	idx := l.n - 1 - r
	if idx < 0 {
		return 0
	}
	return idx
}

// Grow tells the chooser a record was inserted (latest distribution
// tracks the moving head).
func (l *Latest) Grow() { l.n++ }

// Store is the system under test: any PUT/GET keyed byte store.
type Store interface {
	Put(key string, value []byte) error
	Get(key string) ([]byte, error)
}

// Key formats the canonical YCSB key for a record index.
func Key(i int) string { return fmt.Sprintf("user%08d", i) }

// key formats a record key with the workload's prefix.
func (c *Client) key(i int) string { return c.workload.Prefix + Key(i) }

// Client drives one closed-loop YCSB client against a store.
type Client struct {
	workload Workload
	chooser  KeyChooser
	latest   *Latest // non-nil for the latest distribution
	rng      *rand.Rand
	store    Store
	inserted int

	// ReadLatency and WriteLatency collect per-operation service times;
	// Errors counts failed operations.
	ReadLatency  *stats.Histogram
	WriteLatency *stats.Histogram
	Errors       stats.Counter
}

// NewClient builds a client for workload w against store. Seed controls
// both key choice and op mix.
func NewClient(w Workload, store Store, seed int64) (*Client, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	c := &Client{
		workload: w, store: store,
		rng:          rand.New(rand.NewSource(seed)),
		inserted:     w.RecordCount,
		ReadLatency:  stats.NewHistogram(),
		WriteLatency: stats.NewHistogram(),
	}
	switch w.Distribution {
	case "uniform":
		c.chooser = NewUniform(w.RecordCount, seed+1)
	case "zipfian":
		c.chooser = NewZipfian(w.RecordCount, ZipfianConstant, seed+1)
	case "latest":
		l := NewLatest(w.RecordCount, seed+1)
		c.latest = l
		c.chooser = l
	}
	return c, nil
}

// Load inserts the initial records (the YCSB load phase).
func (c *Client) Load() error {
	val := c.value()
	for i := 0; i < c.workload.RecordCount; i++ {
		if err := c.store.Put(c.key(i), val); err != nil {
			return err
		}
	}
	return nil
}

// value builds a deterministic payload of the workload's field length.
func (c *Client) value() []byte {
	v := make([]byte, c.workload.FieldLength)
	for i := range v {
		v[i] = byte('a' + i%26)
	}
	return v
}

// nextOp draws an operation kind from the workload mix.
func (c *Client) nextOp() OpKind {
	r := c.rng.Float64()
	switch {
	case r < c.workload.ReadProp:
		return OpRead
	case r < c.workload.ReadProp+c.workload.UpdateProp:
		return OpUpdate
	case r < c.workload.ReadProp+c.workload.UpdateProp+c.workload.InsertProp:
		return OpInsert
	default:
		return OpReadModifyWrite
	}
}

// nowFunc is the time source for latency measurement; overridable so
// drivers can measure in simulated clock units.
type nowFunc func() time.Time

// RunOps executes n operations, timing each with now (pass nil for wall
// time). It returns the count of successful operations.
func (c *Client) RunOps(n int, now nowFunc) int {
	if now == nil {
		now = time.Now
	}
	ok := 0
	for i := 0; i < n; i++ {
		if c.RunOne(now) {
			ok++
		}
	}
	return ok
}

// RunOne executes a single operation and reports success.
func (c *Client) RunOne(now nowFunc) bool {
	if now == nil {
		now = time.Now
	}
	op := c.nextOp()
	key := c.key(c.chooser.Next())
	start := now()
	var err error
	switch op {
	case OpRead:
		_, err = c.store.Get(key)
		if err == nil {
			c.ReadLatency.Record(now().Sub(start))
		}
	case OpUpdate:
		err = c.store.Put(key, c.value())
		if err == nil {
			c.WriteLatency.Record(now().Sub(start))
		}
	case OpInsert:
		key = c.key(c.inserted)
		err = c.store.Put(key, c.value())
		if err == nil {
			c.inserted++
			if c.latest != nil {
				c.latest.Grow()
			}
			c.WriteLatency.Record(now().Sub(start))
		}
	case OpReadModifyWrite:
		_, err = c.store.Get(key)
		if err == nil {
			err = c.store.Put(key, c.value())
		}
		if err == nil {
			c.WriteLatency.Record(now().Sub(start))
		}
	}
	if err != nil {
		c.Errors.Inc()
		return false
	}
	return true
}

package ycsb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// mapStore is an in-memory Store for generator tests.
type mapStore struct {
	mu   sync.Mutex
	m    map[string][]byte
	fail bool
}

func newMapStore() *mapStore { return &mapStore{m: map[string][]byte{}} }

func (s *mapStore) Put(key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail {
		return errors.New("store down")
	}
	s.m[key] = append([]byte(nil), value...)
	return nil
}

func (s *mapStore) Get(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail {
		return nil, errors.New("store down")
	}
	v, ok := s.m[key]
	if !ok {
		return nil, fmt.Errorf("no key %s", key)
	}
	return v, nil
}

func TestStandardWorkloadsValid(t *testing.T) {
	for _, w := range []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadF} {
		if err := w.Validate(); err != nil {
			t.Errorf("workload %s: %v", w.Name, err)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Workload{
		{Name: "x", ReadProp: 0.5, Distribution: "zipfian", RecordCount: 10}, // sums to 0.5
		{Name: "x", ReadProp: 1, Distribution: "pareto", RecordCount: 10},    // unknown dist
		{Name: "x", ReadProp: 1, Distribution: "zipfian", RecordCount: 0},    // no records
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestUniformInRange(t *testing.T) {
	u := NewUniform(100, 1)
	for i := 0; i < 10000; i++ {
		k := u.Next()
		if k < 0 || k >= 100 {
			t.Fatalf("out of range: %d", k)
		}
	}
}

// Zipfian property: rank 0 must be the most frequent, and frequency must
// broadly decrease with rank (monotone over rank buckets).
func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(1000, ZipfianConstant, 42)
	counts := make([]int, 1000)
	for i := 0; i < 200000; i++ {
		k := z.Next()
		if k < 0 || k >= 1000 {
			t.Fatalf("out of range: %d", k)
		}
		counts[k]++
	}
	max := 0
	for i, c := range counts {
		if c > counts[max] {
			max = i
		}
		_ = c
	}
	if max != 0 {
		t.Fatalf("hottest rank = %d, want 0", max)
	}
	// The head must dominate: the top 10% of keys get well over half the
	// accesses under theta=0.99 (Facebook-like skew the paper cites).
	head := 0
	for _, c := range counts[:100] {
		head += c
	}
	if frac := float64(head) / 200000; frac < 0.5 {
		t.Fatalf("top-10%% keys got %.2f of accesses, want > 0.5", frac)
	}
	// Bucketed monotonicity.
	bucket := func(lo, hi int) int {
		s := 0
		for _, c := range counts[lo:hi] {
			s += c
		}
		return s
	}
	if !(bucket(0, 10) > bucket(10, 100) || bucket(0, 10) > bucket(100, 1000)) {
		t.Fatal("zipfian head does not dominate tails")
	}
}

func TestZipfianDeterministicWithSeed(t *testing.T) {
	a := NewZipfian(100, ZipfianConstant, 7)
	b := NewZipfian(100, ZipfianConstant, 7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("seeded zipfian diverged")
		}
	}
}

func TestLatestSkewsToNewest(t *testing.T) {
	l := NewLatest(1000, 3)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		k := l.Next()
		if k < 0 || k >= 1000 {
			t.Fatalf("out of range: %d", k)
		}
		counts[k]++
	}
	if counts[999] < counts[0] {
		t.Fatal("latest distribution does not favor the newest record")
	}
	// Growing shifts the head.
	l.Grow()
	seen1000 := false
	for i := 0; i < 10000; i++ {
		if l.Next() == 1000 {
			seen1000 = true
			break
		}
	}
	if !seen1000 {
		t.Fatal("grown record never chosen")
	}
}

func TestClientLoadAndRun(t *testing.T) {
	store := newMapStore()
	w := WorkloadA
	w.RecordCount = 50
	w.FieldLength = 16
	c, err := NewClient(w, store, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Load(); err != nil {
		t.Fatal(err)
	}
	if len(store.m) != 50 {
		t.Fatalf("loaded %d records", len(store.m))
	}
	ok := c.RunOps(500, nil)
	if ok != 500 {
		t.Fatalf("ok = %d, errors = %d", ok, c.Errors.Value())
	}
	reads := c.ReadLatency.Count()
	writes := c.WriteLatency.Count()
	if reads+writes != 500 {
		t.Fatalf("latency samples = %d + %d", reads, writes)
	}
	// Workload A: roughly half reads (within generous bounds).
	if reads < 175 || reads > 325 {
		t.Fatalf("reads = %d, want ~250", reads)
	}
}

func TestClientInsertWorkload(t *testing.T) {
	store := newMapStore()
	w := WorkloadD
	w.RecordCount = 20
	w.FieldLength = 8
	c, err := NewClient(w, store, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Load(); err != nil {
		t.Fatal(err)
	}
	c.RunOps(2000, nil)
	if len(store.m) <= 20 {
		t.Fatal("inserts never grew the keyspace")
	}
	if _, ok := store.m[Key(20)]; !ok {
		t.Fatal("first inserted key missing")
	}
}

func TestClientRMWWorkload(t *testing.T) {
	store := newMapStore()
	w := WorkloadF
	w.RecordCount = 10
	w.FieldLength = 8
	c, err := NewClient(w, store, 3)
	if err != nil {
		t.Fatal(err)
	}
	c.Load()
	ok := c.RunOps(200, nil)
	if ok != 200 {
		t.Fatalf("ok = %d", ok)
	}
}

func TestClientErrors(t *testing.T) {
	store := newMapStore()
	w := WorkloadC
	w.RecordCount = 5
	c, _ := NewClient(w, store, 4)
	c.Load()
	store.fail = true
	ok := c.RunOps(10, nil)
	if ok != 0 || c.Errors.Value() != 10 {
		t.Fatalf("ok = %d, errors = %d", ok, c.Errors.Value())
	}
}

func TestNewClientRejectsBadWorkload(t *testing.T) {
	if _, err := NewClient(Workload{Name: "bad", Distribution: "zipfian", RecordCount: 1}, newMapStore(), 1); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestUniformDistributionClient(t *testing.T) {
	w := WorkloadC
	w.Distribution = "uniform"
	w.RecordCount = 10
	c, err := NewClient(w, newMapStore(), 5)
	if err != nil {
		t.Fatal(err)
	}
	c.Load()
	if ok := c.RunOps(50, nil); ok != 50 {
		t.Fatal("uniform client failed")
	}
}

func TestKeyFormat(t *testing.T) {
	if Key(7) != "user00000007" {
		t.Fatalf("Key = %q", Key(7))
	}
	keys := []string{Key(2), Key(10), Key(1)}
	sort.Strings(keys)
	if keys[0] != Key(1) || keys[2] != Key(10) {
		t.Fatal("keys do not sort numerically")
	}
}

func TestOpKindString(t *testing.T) {
	for _, k := range []OpKind{OpRead, OpUpdate, OpInsert, OpReadModifyWrite, OpKind(9)} {
		if k.String() == "" {
			t.Fatal("empty op name")
		}
	}
}

// Property: op mix frequencies converge to the configured proportions.
func TestOpMixProperty(t *testing.T) {
	f := func(seed int64) bool {
		store := newMapStore()
		w := WorkloadB // 95/5
		w.RecordCount = 10
		w.FieldLength = 4
		c, err := NewClient(w, store, seed)
		if err != nil {
			return false
		}
		c.Load()
		c.RunOps(2000, nil)
		reads := float64(c.ReadLatency.Count())
		frac := reads / 2000
		return frac > 0.90 && frac < 0.99
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Package cloudsim catalogs the virtual machine types the paper's
// evaluation runs on and the resource throttles that shape Figures 11 and
// 12: Azure caps attached-disk performance at 500 IOPS regardless of VM
// size, and throttles network throughput between instances by VM size. The
// catalog numbers are calibrated to the 2016-era Azure Basic/Standard
// series and AWS t2.micro.
package cloudsim

import (
	"fmt"
	"sort"
	"time"
)

// VMType names a virtual machine size.
type VMType string

// VM types used in the paper's Sec 5.4 experiments.
const (
	AzureBasicA2   VMType = "Basic A2"    // 2 vCPU, 3.5 GB
	AzureStdD1     VMType = "Standard D1" // 1 vCPU, 3.5 GB
	AzureStdD2     VMType = "Standard D2" // 2 vCPU, 7 GB
	AzureStdD3     VMType = "Standard D3" // 4 vCPU, 14 GB
	AWST2Micro     VMType = "t2.micro"    // 1 vCPU, 1 GB
	AWSUnthrottled VMType = "unthrottled" // reference VM without caps
)

// Spec describes one VM size and its throttles.
type Spec struct {
	Type      VMType
	VCPUs     int
	MemoryGB  float64
	DiskIOPS  int     // attached-disk IOPS cap (0 = uncapped)
	NetMBps   float64 // bulk network throughput cap in MB/s (0 = uncapped)
	DiskGBps  float64 // sequential disk throughput cap (0 = uncapped)
	CloudName string  // "azure" or "aws"
	// SmallMsgMBps is the effective inter-VM throughput for small-message
	// RPC traffic (the remote-memory data path of Figures 11/12). It sits
	// far below the bulk line rate on small Azure sizes — packet-rate and
	// flow throttling dominate — and is calibrated so the Fig 11 shape
	// holds: remote memory loses to the 500-IOPS local disk on Basic
	// A2/Standard D1 and wins by ~44% on Standard D2/D3.
	SmallMsgMBps float64
}

// Catalog lists every known VM size. Azure disk IOPS is capped at 500 for
// basic-tier and standard-tier attached disks (paper Sec 5.4.1, citing the
// Azure documentation); network caps grow with size, which is what lets
// remote memory win only on D2/D3.
var Catalog = map[VMType]Spec{
	AzureBasicA2: {
		Type: AzureBasicA2, VCPUs: 2, MemoryGB: 3.5,
		DiskIOPS: 500, NetMBps: 25, DiskGBps: 0.06, CloudName: "azure", SmallMsgMBps: 5.2,
	},
	AzureStdD1: {
		Type: AzureStdD1, VCPUs: 1, MemoryGB: 3.5,
		DiskIOPS: 500, NetMBps: 50, DiskGBps: 0.06, CloudName: "azure", SmallMsgMBps: 7.0,
	},
	AzureStdD2: {
		Type: AzureStdD2, VCPUs: 2, MemoryGB: 7,
		DiskIOPS: 500, NetMBps: 125, DiskGBps: 0.06, CloudName: "azure", SmallMsgMBps: 11.8,
	},
	AzureStdD3: {
		Type: AzureStdD3, VCPUs: 4, MemoryGB: 14,
		DiskIOPS: 500, NetMBps: 250, DiskGBps: 0.06, CloudName: "azure", SmallMsgMBps: 12.3,
	},
	AWST2Micro: {
		Type: AWST2Micro, VCPUs: 1, MemoryGB: 1,
		DiskIOPS: 0, NetMBps: 60, DiskGBps: 0, CloudName: "aws", SmallMsgMBps: 60,
	},
	AWSUnthrottled: {
		Type: AWSUnthrottled, VCPUs: 8, MemoryGB: 32,
		DiskIOPS: 0, NetMBps: 0, DiskGBps: 0, CloudName: "aws",
	},
}

// Lookup returns the spec for a VM type.
func Lookup(t VMType) (Spec, error) {
	s, ok := Catalog[t]
	if !ok {
		return Spec{}, fmt.Errorf("cloudsim: unknown VM type %q", t)
	}
	return s, nil
}

// AzureSizes returns the Azure sizes in the order the paper's Figures 11
// and 12 plot them.
func AzureSizes() []VMType {
	return []VMType{AzureBasicA2, AzureStdD1, AzureStdD2, AzureStdD3}
}

// DiskOpTime returns the simulated service time for one random I/O of size
// bytes against this VM's attached disk, honoring the IOPS cap (the cap
// dominates small random I/O, which is why Azure local disk flat-lines at
// ~500 IOPS in Fig 11).
func (s Spec) DiskOpTime(size int64) time.Duration {
	var t time.Duration
	if s.DiskIOPS > 0 {
		t += time.Duration(float64(time.Second) / float64(s.DiskIOPS))
	} else {
		t += 100 * time.Microsecond // uncapped device service time
	}
	if s.DiskGBps > 0 && size > 0 {
		t += time.Duration(float64(size) / (s.DiskGBps * 1e9) * float64(time.Second))
	}
	return t
}

// NetOpTime returns the added serialization time for moving size bytes
// through this VM's network cap (0 if uncapped).
func (s Spec) NetOpTime(size int64) time.Duration {
	if s.NetMBps <= 0 || size <= 0 {
		return 0
	}
	return time.Duration(float64(size) / (s.NetMBps * 1e6) * float64(time.Second))
}

// NetRoundTrip returns the network time for a request/response exchange of
// reqSize/respSize bytes between two VMs with baseRTT between them: the
// propagation delay plus the serialization cost at whichever endpoint cap
// is tighter for each direction. This per-VM-size term is what
// differentiates the Fig 11/12 bars.
func NetRoundTrip(a, b Spec, baseRTT time.Duration, reqSize, respSize int64) time.Duration {
	t := baseRTT
	t += maxDuration(a.NetOpTime(reqSize), b.NetOpTime(reqSize))
	t += maxDuration(a.NetOpTime(respSize), b.NetOpTime(respSize))
	return t
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// Names returns all catalog VM type names, sorted, for diagnostics.
func Names() []string {
	out := make([]string, 0, len(Catalog))
	for t := range Catalog {
		out = append(out, string(t))
	}
	sort.Strings(out)
	return out
}

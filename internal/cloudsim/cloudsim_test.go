package cloudsim

import (
	"testing"
	"time"
)

func TestLookupKnown(t *testing.T) {
	s, err := Lookup(AzureStdD3)
	if err != nil {
		t.Fatal(err)
	}
	if s.VCPUs != 4 || s.MemoryGB != 14 {
		t.Fatalf("D3 spec = %+v", s)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("m5.enormous"); err == nil {
		t.Fatal("unknown VM should error")
	}
}

func TestAzureSizesOrder(t *testing.T) {
	sizes := AzureSizes()
	want := []VMType{AzureBasicA2, AzureStdD1, AzureStdD2, AzureStdD3}
	if len(sizes) != len(want) {
		t.Fatalf("len = %d", len(sizes))
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("AzureSizes[%d] = %s, want %s", i, sizes[i], want[i])
		}
	}
}

// All Azure sizes share the 500 IOPS disk cap — the flat line of Fig 11.
func TestAzureDiskCapUniform(t *testing.T) {
	for _, size := range AzureSizes() {
		s, _ := Lookup(size)
		if s.DiskIOPS != 500 {
			t.Errorf("%s disk IOPS = %d, want 500", size, s.DiskIOPS)
		}
	}
}

// Network caps must grow with VM size — the rising line of Fig 11.
func TestAzureNetworkCapGrows(t *testing.T) {
	sizes := AzureSizes()
	prev := -1.0
	for _, size := range sizes {
		s, _ := Lookup(size)
		if s.NetMBps <= prev {
			t.Fatalf("%s net cap %v not greater than previous %v", size, s.NetMBps, prev)
		}
		prev = s.NetMBps
	}
}

func TestDiskOpTimeIOPSCapDominates(t *testing.T) {
	s, _ := Lookup(AzureStdD2)
	op := s.DiskOpTime(4096)
	// 500 IOPS -> 2ms per op; 4KB at 60MB/s adds ~68us.
	if op < 2*time.Millisecond || op > 3*time.Millisecond {
		t.Fatalf("D2 4KB disk op = %v, want ~2ms", op)
	}
}

func TestDiskOpTimeUncapped(t *testing.T) {
	s, _ := Lookup(AWSUnthrottled)
	if op := s.DiskOpTime(4096); op != 100*time.Microsecond {
		t.Fatalf("uncapped disk op = %v", op)
	}
}

func TestNetOpTime(t *testing.T) {
	s, _ := Lookup(AzureBasicA2) // 25 MB/s
	got := s.NetOpTime(25_000_000)
	if got != time.Second {
		t.Fatalf("25MB at 25MB/s = %v, want 1s", got)
	}
	if s.NetOpTime(0) != 0 {
		t.Fatal("zero bytes should cost nothing")
	}
	u, _ := Lookup(AWSUnthrottled)
	if u.NetOpTime(1e9) != 0 {
		t.Fatal("uncapped VM should add no serialization time")
	}
}

func TestNetRoundTripUsesTighterCap(t *testing.T) {
	a, _ := Lookup(AzureBasicA2) // 25 MB/s
	b, _ := Lookup(AWST2Micro)   // 60 MB/s
	rtt := 2 * time.Millisecond
	got := NetRoundTrip(a, b, rtt, 1_000_000, 1_000_000)
	// Each direction limited by A2's 25MB/s: 40ms per MB, both ways.
	want := rtt + 40*time.Millisecond + 40*time.Millisecond
	if got != want {
		t.Fatalf("NetRoundTrip = %v, want %v", got, want)
	}
}

// The crossover behind Fig 11: a 4KB remote-memory round trip beats a local
// 500-IOPS disk op on D2/D3 (loose network caps) but not on A2/D1 once
// concurrency makes serialization matter. At the single-op level, remote
// memory must at least improve monotonically with VM size.
func TestRemoteVsLocalShape(t *testing.T) {
	remote, _ := Lookup(AWST2Micro)
	rtt := 2 * time.Millisecond
	prev := time.Duration(1<<62 - 1)
	for _, size := range AzureSizes() {
		s, _ := Lookup(size)
		cost := NetRoundTrip(s, remote, rtt, 512, 4096)
		if cost > prev {
			t.Fatalf("%s remote op %v slower than smaller VM %v", size, cost, prev)
		}
		prev = cost
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != len(Catalog) {
		t.Fatalf("Names len = %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names not sorted")
		}
	}
}

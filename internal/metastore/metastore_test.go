package metastore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "meta.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func TestPutGet(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestGetMissing(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	if _, err := s.Get("absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestOverwrite(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	s.Put("k", []byte("one"))
	s.Put("k", []byte("two"))
	got, _ := s.Get("k")
	if string(got) != "two" {
		t.Fatalf("Get = %q", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestDelete(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	s.Put("k", []byte("v"))
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("key should be deleted")
	}
	// Deleting a missing key is a no-op.
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
}

func TestKeysSorted(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	s.Put("b", nil)
	s.Put("a", nil)
	s.Put("c", nil)
	ks, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 3 || ks[0] != "a" || ks[2] != "c" {
		t.Fatalf("Keys = %v", ks)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	s, path := openTemp(t)
	s.Put("k1", []byte("v1"))
	s.Put("k2", []byte("v2"))
	s.Delete("k1")
	s.Put("k2", []byte("v2b"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Get("k1"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key resurrected after reopen")
	}
	got, err := s2.Get("k2")
	if err != nil || string(got) != "v2b" {
		t.Fatalf("Get after reopen = %q, %v", got, err)
	}
}

func TestTornTailRecovery(t *testing.T) {
	s, path := openTemp(t)
	s.Put("good", []byte("value"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: write garbage partial record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 0, 0, 0, 5, 0}) // truncated header+body
	f.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get("good")
	if err != nil || string(got) != "value" {
		t.Fatalf("Get after torn tail = %q, %v", got, err)
	}
	// The torn bytes must be gone: a new Put then reopen must replay fine.
	s2.Put("after", []byte("crash"))
	s2.Close()
	s3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	got, err = s3.Get("after")
	if err != nil || string(got) != "crash" {
		t.Fatalf("Get post-recovery append = %q, %v", got, err)
	}
}

func TestCorruptChecksumDropped(t *testing.T) {
	s, path := openTemp(t)
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	s.Close()
	// Flip a bit in the last record's value region.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Get("a"); err != nil {
		t.Fatal("first record should survive")
	}
	if _, err := s2.Get("b"); !errors.Is(err, ErrNotFound) {
		t.Fatal("corrupted record should be dropped")
	}
}

func TestCompact(t *testing.T) {
	s, path := openTemp(t)
	for i := 0; i < 100; i++ {
		s.Put("k", []byte(fmt.Sprintf("v%d", i)))
	}
	s.Put("keep", []byte("x"))
	s.Delete("keep")
	s.Put("other", []byte("y"))
	if s.DeadRatio() < 0.5 {
		t.Fatalf("DeadRatio = %v, want high", s.DeadRatio())
	}
	s.Sync()
	before, _ := os.Stat(path)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compact did not shrink: %d -> %d", before.Size(), after.Size())
	}
	if s.DeadRatio() != 0 {
		t.Fatalf("DeadRatio after compact = %v", s.DeadRatio())
	}
	got, err := s.Get("k")
	if err != nil || string(got) != "v99" {
		t.Fatalf("Get after compact = %q, %v", got, err)
	}
	if _, err := s.Get("keep"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key visible after compact")
	}
	// Store still writable after compact, and persists.
	s.Put("post", []byte("compact"))
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err = s2.Get("post")
	if err != nil || string(got) != "compact" {
		t.Fatalf("Get after compact+reopen = %q, %v", got, err)
	}
}

func TestClosedOperations(t *testing.T) {
	s, _ := openTemp(t)
	s.Close()
	if err := s.Put("k", nil); !errors.Is(err, ErrClosed) {
		t.Fatal("Put on closed store should fail")
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrClosed) {
		t.Fatal("Get on closed store should fail")
	}
	if err := s.Delete("k"); !errors.Is(err, ErrClosed) {
		t.Fatal("Delete on closed store should fail")
	}
	if _, err := s.Keys(); !errors.Is(err, ErrClosed) {
		t.Fatal("Keys on closed store should fail")
	}
	if err := s.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatal("Sync on closed store should fail")
	}
	if err := s.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatal("Compact on closed store should fail")
	}
	if err := s.Close(); err != nil {
		t.Fatal("double Close should be a no-op")
	}
}

func TestValueIsolation(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	val := []byte("original")
	s.Put("k", val)
	val[0] = 'X' // caller mutates its buffer
	got, _ := s.Get("k")
	if string(got) != "original" {
		t.Fatal("store aliased caller's buffer")
	}
	got[0] = 'Y' // caller mutates returned buffer
	got2, _ := s.Get("k")
	if string(got2) != "original" {
		t.Fatal("Get returned aliased internal buffer")
	}
}

func TestEmptyAndBinaryValues(t *testing.T) {
	s, path := openTemp(t)
	s.Put("empty", []byte{})
	s.Put("nilval", nil)
	bin := []byte{0, 1, 2, 255, 254, '\n', 0}
	s.Put("bin", bin)
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, err := s2.Get("empty"); err != nil || len(v) != 0 {
		t.Fatalf("empty = %v, %v", v, err)
	}
	if v, err := s2.Get("bin"); err != nil || !bytes.Equal(v, bin) {
		t.Fatalf("bin = %v, %v", v, err)
	}
}

// Property: after any sequence of puts/deletes, reopening yields exactly the
// same live map (recovery = replay).
func TestRecoveryEquivalenceProperty(t *testing.T) {
	type op struct {
		Key string
		Val []byte
		Del bool
	}
	f := func(rawOps []struct {
		K   uint8
		V   []byte
		Del bool
	}) bool {
		dir := t.TempDir()
		path := filepath.Join(dir, "p.db")
		s, err := Open(path)
		if err != nil {
			return false
		}
		model := map[string][]byte{}
		for _, o := range rawOps {
			key := fmt.Sprintf("key-%d", o.K%8)
			if o.Del {
				if s.Delete(key) != nil {
					return false
				}
				delete(model, key)
			} else {
				if s.Put(key, o.V) != nil {
					return false
				}
				model[key] = append([]byte(nil), o.V...)
			}
		}
		if s.Close() != nil {
			return false
		}
		s2, err := Open(path)
		if err != nil {
			return false
		}
		defer s2.Close()
		if s2.Len() != len(model) {
			return false
		}
		for k, want := range model {
			got, err := s2.Get(k)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
	_ = op{}
}

func TestConcurrentAccess(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				key := fmt.Sprintf("k%d-%d", i, j%10)
				s.Put(key, []byte{byte(j)})
				s.Get(key)
				if j%50 == 0 {
					s.Delete(key)
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestOpenCreatesParentDir(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deep", "nested", "meta.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
}

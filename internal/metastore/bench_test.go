package metastore

import (
	"fmt"
	"path/filepath"
	"testing"
)

func BenchmarkPut(b *testing.B) {
	s, err := Open(filepath.Join(b.TempDir(), "bench.db"))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, 256)
	b.SetBytes(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i%4096), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	s, err := Open(filepath.Join(b.TempDir(), "bench.db"))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, 256)
	for i := 0; i < 4096; i++ {
		s.Put(fmt.Sprintf("key-%d", i), val)
	}
	b.SetBytes(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(fmt.Sprintf("key-%d", i%4096)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplay(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.db")
	s, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 256)
	for i := 0; i < 10000; i++ {
		s.Put(fmt.Sprintf("key-%d", i%2048), val)
	}
	s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

// Package metastore is the repository's BerkeleyDB substitute: an embedded,
// durable key-value store used by Tiera instances to persist object
// metadata and version records (paper Sec 4.2: "all object metadata is
// stored and persisted using BerkeleyDB").
//
// The store is log-structured: every Put/Delete appends a length-prefixed,
// checksummed record to a single append-only file, and an in-memory index
// maps keys to the latest value. Open replays the log, so a crash at any
// point loses at most the last unsynced record; a torn final record is
// detected by checksum and truncated away. Compact rewrites the log keeping
// only live records.
package metastore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// record layout:
//   uint32 keyLen | uint32 valLen (math.MaxUint32 = tombstone) | key | val | uint32 crc
// crc covers keyLen,valLen,key,val.

const tombstone = ^uint32(0)

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("metastore: key not found")

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("metastore: store is closed")

// Store is an embedded persistent KV store. Safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	w      *bufio.Writer
	index  map[string][]byte
	closed bool
	// dead counts superseded records, driving auto-compaction heuristics.
	dead int
}

// Open opens (creating if necessary) the store at path and replays its log.
func Open(path string) (*Store, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("metastore: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("metastore: %w", err)
	}
	s := &Store{path: path, f: f, index: make(map[string][]byte)}
	valid, err := s.replay()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Truncate any torn tail so future appends start at a clean offset.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("metastore: truncate: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("metastore: seek: %w", err)
	}
	s.w = bufio.NewWriter(f)
	return s, nil
}

// replay scans the log, building the index, and returns the offset of the
// last fully valid record's end.
func (s *Store) replay() (int64, error) {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("metastore: %w", err)
	}
	r := bufio.NewReader(s.f)
	var offset int64
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			// Clean EOF or torn header: stop at last valid offset.
			return offset, nil
		}
		keyLen := binary.LittleEndian.Uint32(hdr[0:4])
		valLen := binary.LittleEndian.Uint32(hdr[4:8])
		isTomb := valLen == tombstone
		vl := valLen
		if isTomb {
			vl = 0
		}
		if keyLen > 1<<28 || vl > 1<<30 {
			return offset, nil // corrupt length: treat as torn tail
		}
		body := make([]byte, int(keyLen)+int(vl)+4)
		if _, err := io.ReadFull(r, body); err != nil {
			return offset, nil
		}
		crc := crc32.NewIEEE()
		crc.Write(hdr[:])
		crc.Write(body[:len(body)-4])
		if crc.Sum32() != binary.LittleEndian.Uint32(body[len(body)-4:]) {
			return offset, nil
		}
		key := string(body[:keyLen])
		if isTomb {
			if _, ok := s.index[key]; ok {
				s.dead++
			}
			delete(s.index, key)
			s.dead++
		} else {
			if _, ok := s.index[key]; ok {
				s.dead++
			}
			val := make([]byte, vl)
			copy(val, body[keyLen:keyLen+vl])
			s.index[key] = val
		}
		offset += int64(8 + len(body))
	}
}

// Put durably records key=val (visible immediately; durable after Sync or
// Close).
func (s *Store) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.appendLocked(key, val, false); err != nil {
		return err
	}
	if _, ok := s.index[key]; ok {
		s.dead++
	}
	cp := make([]byte, len(val))
	copy(cp, val)
	s.index[key] = cp
	return nil
}

// Get returns the value for key, or ErrNotFound.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	v, ok := s.index[key]
	if !ok {
		return nil, ErrNotFound
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, nil
}

// Delete removes key. Deleting a missing key is a no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.index[key]; !ok {
		return nil
	}
	if err := s.appendLocked(key, nil, true); err != nil {
		return err
	}
	delete(s.index, key)
	s.dead += 2 // the dead value record and the tombstone itself
	return nil
}

// Keys returns all live keys in sorted order.
func (s *Store) Keys() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	out := make([]string, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Sync flushes buffered appends to the OS and fsyncs the file.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("metastore: flush: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("metastore: fsync: %w", err)
	}
	return nil
}

// Compact rewrites the log with only live records, shrinking the file.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.syncLocked(); err != nil {
		return err
	}
	tmp := s.path + ".compact"
	nf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("metastore: compact: %w", err)
	}
	nw := bufio.NewWriter(nf)
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := writeRecord(nw, k, s.index[k], false); err != nil {
			nf.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := nw.Flush(); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("metastore: compact flush: %w", err)
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("metastore: compact fsync: %w", err)
	}
	if err := nf.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("metastore: compact close: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("metastore: close old: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("metastore: rename: %w", err)
	}
	f, err := os.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("metastore: reopen: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	s.dead = 0
	return nil
}

// DeadRatio returns the fraction of log records that are superseded; callers
// can use it to decide when to Compact.
func (s *Store) DeadRatio() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := len(s.index)
	total := live + s.dead
	if total == 0 {
		return 0
	}
	return float64(s.dead) / float64(total)
}

// Close syncs and closes the store. Further operations return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return fmt.Errorf("metastore: close flush: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("metastore: close fsync: %w", err)
	}
	return s.f.Close()
}

func (s *Store) appendLocked(key string, val []byte, del bool) error {
	return writeRecord(s.w, key, val, del)
}

func writeRecord(w io.Writer, key string, val []byte, del bool) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(key)))
	if del {
		binary.LittleEndian.PutUint32(hdr[4:8], tombstone)
	} else {
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(val)))
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write([]byte(key))
	if !del {
		crc.Write(val)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	chunks := [][]byte{hdr[:], []byte(key)}
	if !del {
		chunks = append(chunks, val)
	}
	chunks = append(chunks, tail[:])
	for _, chunk := range chunks {
		if _, err := w.Write(chunk); err != nil {
			return fmt.Errorf("metastore: write: %w", err)
		}
	}
	return nil
}

package coord

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
	"repro/internal/simnet"
	"repro/internal/transport"
)

func newServer() (*Server, clock.Clock) {
	clk := clock.NewScaled(10000)
	return NewServer(clk), clk
}

func TestAcquireReleaseBasic(t *testing.T) {
	s, _ := newServer()
	id := s.CreateSession(longTTL)
	granted, err := s.Acquire(id, "k", 0)
	if err != nil || !granted {
		t.Fatalf("Acquire = %v, %v", granted, err)
	}
	if s.Holder("k") != id {
		t.Fatalf("Holder = %d", s.Holder("k"))
	}
	if err := s.Release(id, "k"); err != nil {
		t.Fatal(err)
	}
	if s.Holder("k") != 0 {
		t.Fatal("lock should be free")
	}
}

func TestTryLockContention(t *testing.T) {
	s, _ := newServer()
	a := s.CreateSession(longTTL)
	b := s.CreateSession(longTTL)
	if g, _ := s.Acquire(a, "k", 0); !g {
		t.Fatal("first acquire should succeed")
	}
	if g, _ := s.Acquire(b, "k", 0); g {
		t.Fatal("second try-lock should fail")
	}
	// Re-entrant: holder can re-acquire.
	if g, _ := s.Acquire(a, "k", 0); !g {
		t.Fatal("re-entrant acquire should succeed")
	}
}

func TestBlockingAcquireFIFO(t *testing.T) {
	s, _ := newServer()
	holder := s.CreateSession(longTTL)
	s.Acquire(holder, "k", 0)

	var mu sync.Mutex
	var order []int64
	var wg sync.WaitGroup
	sessions := []int64{s.CreateSession(longTTL), s.CreateSession(longTTL), s.CreateSession(longTTL)}
	for _, id := range sessions {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			g, err := s.Acquire(id, "k", time.Hour)
			if err != nil || !g {
				t.Errorf("blocking acquire: %v, %v", g, err)
				return
			}
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			s.Release(id, "k")
		}(id)
		// Give each goroutine time to enqueue so FIFO order is deterministic.
		waitForWaiterCount(t, s, "k", len(order)+1)
	}
	s.Release(holder, "k")
	wg.Wait()
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i, id := range sessions {
		if order[i] != id {
			t.Fatalf("FIFO violated: order = %v, sessions = %v", order, sessions)
		}
	}
}

// waitForWaiterCount waits until key has n queued waiters.
func waitForWaiterCount(t *testing.T, s *Server, key string, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		count := 0
		if ls := s.locks[key]; ls != nil {
			count = len(ls.waiters)
		}
		s.mu.Unlock()
		if count >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d waiters on %q", n, key)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAcquireTimeout(t *testing.T) {
	s, _ := newServer()
	a := s.CreateSession(longTTL)
	b := s.CreateSession(longTTL)
	s.Acquire(a, "k", 0)
	_, err := s.Acquire(b, "k", 10*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	// After the holder releases, an abandoned waiter must be skipped and the
	// lock freed.
	s.Release(a, "k")
	if s.Holder("k") != 0 {
		t.Fatal("abandoned waiter received the lock")
	}
}

func TestSessionExpiryReleasesLocks(t *testing.T) {
	clk := clock.NewSim(time.Time{})
	s := NewServer(clk)
	a := s.CreateSession(10 * time.Second)
	b := s.CreateSession(time.Hour)
	s.Acquire(a, "k", 0)
	clk.Advance(11 * time.Second)
	s.ExpireSessions()
	if s.SessionCount() != 1 {
		t.Fatalf("SessionCount = %d", s.SessionCount())
	}
	// b can now take the lock.
	if g, err := s.Acquire(b, "k", 0); err != nil || !g {
		t.Fatalf("acquire after expiry = %v, %v", g, err)
	}
}

func TestKeepAliveExtendsLease(t *testing.T) {
	clk := clock.NewSim(time.Time{})
	s := NewServer(clk)
	a := s.CreateSession(10 * time.Second)
	clk.Advance(8 * time.Second)
	if err := s.KeepAlive(a); err != nil {
		t.Fatal(err)
	}
	clk.Advance(8 * time.Second)
	if _, err := s.Acquire(a, "k", 0); err != nil {
		t.Fatalf("session should still be alive: %v", err)
	}
	clk.Advance(11 * time.Second)
	if err := s.KeepAlive(a); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v", err)
	}
}

func TestReleaseErrors(t *testing.T) {
	s, _ := newServer()
	a := s.CreateSession(longTTL)
	if err := s.Release(a, "nothing"); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Release(999, "k"); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Acquire(999, "k", 0); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v", err)
	}
}

func TestCloseSessionReleasesAndPassesLock(t *testing.T) {
	s, _ := newServer()
	a := s.CreateSession(longTTL)
	b := s.CreateSession(longTTL)
	s.Acquire(a, "k1", 0)
	s.Acquire(a, "k2", 0)
	done := make(chan struct{})
	go func() {
		s.Acquire(b, "k1", time.Hour)
		close(done)
	}()
	waitForWaiterCount(t, s, "k1", 1)
	s.CloseSession(a)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not granted after CloseSession")
	}
	if s.Holder("k2") != 0 {
		t.Fatal("k2 should be free after CloseSession")
	}
	s.CloseSession(a) // idempotent
}

// Property: mutual exclusion — under concurrent contenders, at most one
// session observes itself as holder at a time.
func TestMutualExclusionProperty(t *testing.T) {
	s, _ := newServer()
	var inside int32
	var violation int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		id := s.CreateSession(longTTL)
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				g, err := s.Acquire(id, "crit", time.Hour)
				if err != nil || !g {
					t.Errorf("acquire: %v %v", g, err)
					return
				}
				mu.Lock()
				inside++
				if inside > 1 {
					violation++
				}
				mu.Unlock()
				mu.Lock()
				inside--
				mu.Unlock()
				if err := s.Release(id, "crit"); err != nil {
					t.Errorf("release: %v", err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if violation > 0 {
		t.Fatalf("%d mutual exclusion violations", violation)
	}
}

// Property (testing/quick): for any interleaving seed of try-locks, a key
// is held by at most one session and Holder agrees with grants.
func TestTryLockConsistencyProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s, _ := newServer()
		ids := []int64{s.CreateSession(longTTL), s.CreateSession(longTTL), s.CreateSession(longTTL)}
		holders := map[string]int64{}
		for _, op := range ops {
			id := ids[int(op)%3]
			key := fmt.Sprintf("k%d", (op/3)%2)
			if op%2 == 0 {
				g, err := s.Acquire(id, key, 0)
				if err != nil {
					return false
				}
				cur := holders[key]
				if g && cur != 0 && cur != id {
					return false // granted while someone else held it
				}
				if g {
					holders[key] = id
				}
				if !g && cur == 0 {
					return false // denied though free
				}
			} else if holders[key] == id {
				if s.Release(id, key) != nil {
					return false
				}
				holders[key] = 0
			}
			if s.Holder(key) != holders[key] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClientServerOverFabric(t *testing.T) {
	clk := clock.NewScaled(10000)
	fab := transport.NewFabric(simnet.New(clk))
	defer fab.Close()
	srv := NewServer(clk)
	ep, err := fab.NewEndpoint("zk", simnet.USEast)
	if err != nil {
		t.Fatal(err)
	}
	ep.Serve(srv.Handler())

	cliEP, err := fab.NewEndpoint("client-asia", simnet.AsiaEast)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(cliEP, "zk", longTTL)
	if err != nil {
		t.Fatal(err)
	}
	if cli.SessionID() == 0 {
		t.Fatal("no session id")
	}
	if err := cli.Lock(context.Background(), "obj-1", time.Second); err != nil {
		t.Fatal(err)
	}
	// A second client cannot take it.
	cliEP2, _ := fab.NewEndpoint("client-eu", simnet.EUWest)
	cli2, err := NewClient(cliEP2, "zk", longTTL)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cli2.TryLock(context.Background(), "obj-1")
	if err != nil || got {
		t.Fatalf("TryLock = %v, %v", got, err)
	}
	if err := cli.Unlock(context.Background(), "obj-1"); err != nil {
		t.Fatal(err)
	}
	got, err = cli2.TryLock(context.Background(), "obj-1")
	if err != nil || !got {
		t.Fatalf("TryLock after unlock = %v, %v", got, err)
	}
	if err := cli2.KeepAlive(); err != nil {
		t.Fatal(err)
	}
	if err := cli2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if srv.SessionCount() != 0 {
		t.Fatalf("SessionCount = %d after closing all", srv.SessionCount())
	}
}

func TestClientLockTimeoutOverFabric(t *testing.T) {
	clk := clock.NewScaled(10000)
	fab := transport.NewFabric(simnet.New(clk))
	defer fab.Close()
	srv := NewServer(clk)
	ep, _ := fab.NewEndpoint("zk", simnet.USEast)
	ep.Serve(srv.Handler())
	e1, _ := fab.NewEndpoint("c1", simnet.USEast)
	e2, _ := fab.NewEndpoint("c2", simnet.USEast)
	c1, err := NewClient(e1, "zk", longTTL)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewClient(e2, "zk", longTTL)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Lock(context.Background(), "k", time.Second); err != nil {
		t.Fatal(err)
	}
	err = c2.Lock(context.Background(), "k", 50*time.Millisecond)
	if err == nil {
		t.Fatal("lock should have timed out")
	}
	if err := c2.Unlock(context.Background(), "k"); err == nil {
		t.Fatal("unlock of unheld lock should fail")
	}
}

func TestHandlerUnknownMethod(t *testing.T) {
	s, _ := newServer()
	if _, err := s.Handler()(context.Background(), "bogus", nil); err == nil {
		t.Fatal("unknown method should error")
	}
}

func TestHandlerDecodeErrors(t *testing.T) {
	s, _ := newServer()
	h := s.Handler()
	for _, m := range []string{methodCreateSession, methodKeepAlive, methodCloseSession, methodAcquire, methodRelease} {
		if _, err := h(context.Background(), m, []byte("junk")); err == nil {
			t.Fatalf("method %s accepted junk payload", m)
		}
	}
}

// longTTL keeps sessions alive for the whole test even on heavily
// compressed Scaled clocks (a 1-minute TTL elapses in ~6ms of real time at
// factor 10000).
const longTTL = 100000 * time.Hour

package coord

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ring"
	"repro/internal/transport"
)

// The coordination service is also the ring-epoch authority (the ISSUE's
// "coordinator owns the authoritative ring epoch"): the Wiera control
// plane publishes each instance's shard map here, the service assigns the
// next epoch, and anyone can fetch the latest map. Like locks, ring state
// needs no session — a map outlives the control-plane connection that
// published it.
const (
	methodRingPublish = "coord.ringPublish"
	methodRingFetch   = "coord.ringFetch"
)

type ringPublishReq struct {
	Name string
	Map  *ring.Map
}
type ringPublishResp struct{ Epoch int64 }
type ringFetchReq struct{ Name string }
type ringFetchResp struct{ Map *ring.Map }

// ErrNoRing reports fetching a ring that was never published.
var ErrNoRing = errors.New("coord: no ring published under that name")

// PublishRing stores m as the authoritative shard map for name and returns
// the epoch assigned to it: one past the previous map's, or one past the
// epoch the caller proposed, whichever is larger — so a control plane that
// fell back to local epochs while the coordinator was unreachable never
// publishes a stale-looking map.
func (s *Server) PublishRing(name string, m *ring.Map) (int64, error) {
	if m == nil {
		return 0, errors.New("coord: nil ring map")
	}
	if err := m.Validate(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rings == nil {
		s.rings = make(map[string]*ring.Map)
	}
	epoch := m.Epoch
	if prev := s.rings[name]; prev != nil && prev.Epoch >= epoch {
		epoch = prev.Epoch + 1
	}
	if epoch <= 0 {
		epoch = 1
	}
	stored := m.Clone()
	stored.Epoch = epoch
	s.rings[name] = stored
	// The coordinator is the epoch authority, so its journal is the
	// canonical record of every ring membership change in the deployment.
	s.journal.Record("ring.epoch", name, stored.Summary(), map[string]string{
		"epoch":  fmt.Sprintf("%d", epoch),
		"shards": fmt.Sprintf("%d", stored.Shards()),
	})
	return epoch, nil
}

// FetchRing returns the latest published map for name (a copy), or nil.
func (s *Server) FetchRing(name string) *ring.Map {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rings[name].Clone()
}

// PublishRing publishes m for name on the coordination server reachable as
// serverDst via caller, returning the assigned epoch.
func PublishRing(caller transport.Caller, serverDst, name string, m *ring.Map) (int64, error) {
	payload, err := transport.Encode(ringPublishReq{Name: name, Map: m})
	if err != nil {
		return 0, err
	}
	raw, err := caller.Call(context.Background(), serverDst, methodRingPublish, payload)
	if err != nil {
		return 0, err
	}
	var resp ringPublishResp
	if err := transport.Decode(raw, &resp); err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// FetchRing fetches the latest map for name from the coordination server.
func FetchRing(caller transport.Caller, serverDst, name string) (*ring.Map, error) {
	payload, err := transport.Encode(ringFetchReq{Name: name})
	if err != nil {
		return nil, err
	}
	raw, err := caller.Call(context.Background(), serverDst, methodRingFetch, payload)
	if err != nil {
		return nil, err
	}
	var resp ringFetchResp
	if err := transport.Decode(raw, &resp); err != nil {
		return nil, err
	}
	if resp.Map == nil {
		return nil, ErrNoRing
	}
	return resp.Map, nil
}

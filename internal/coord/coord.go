// Package coord is the repository's ZooKeeper/Curator substitute: a
// centralized coordination service providing sessions with lease expiry and
// per-key FIFO mutual-exclusion locks. Wiera's MultiPrimariesConsistency
// policy acquires a global per-object lock here before fanning out updates
// (paper Sec 4.2). The service runs as one endpoint on the RPC fabric — in
// the paper's deployment ZooKeeper runs alongside Wiera in US-East, so lock
// operations from other regions pay WAN latency, which is a significant
// share of the ~400 ms multi-primary put cost in Fig 7.
package coord

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/ring"
	"repro/internal/transport"
	"repro/internal/watch"
)

// Coordination errors.
var (
	// ErrNoSession reports an unknown or expired session.
	ErrNoSession = errors.New("coord: no such session (expired?)")
	// ErrNotHeld reports releasing a lock the session does not hold.
	ErrNotHeld = errors.New("coord: lock not held by session")
	// ErrTimeout reports an acquire that waited past its deadline.
	ErrTimeout = errors.New("coord: acquire timed out")
)

// RPC method names served by the coordination server.
const (
	methodCreateSession = "coord.createSession"
	methodKeepAlive     = "coord.keepAlive"
	methodCloseSession  = "coord.closeSession"
	methodAcquire       = "coord.acquire"
	methodRelease       = "coord.release"
)

type createSessionReq struct{ TTLMillis int64 }
type createSessionResp struct{ SessionID int64 }
type keepAliveReq struct{ SessionID int64 }
type closeSessionReq struct{ SessionID int64 }
type acquireReq struct {
	SessionID  int64
	Key        string
	WaitMillis int64 // 0 = try-lock
}
type acquireResp struct{ Granted bool }
type releaseReq struct {
	SessionID int64
	Key       string
}
type empty struct{}

// Server is the coordination service state machine.
type Server struct {
	clk     clock.Clock
	journal *watch.Journal // optional: records ring.epoch publications

	mu       sync.Mutex
	nextID   int64
	sessions map[int64]*session
	locks    map[string]*lockState
	rings    map[string]*ring.Map // authoritative shard maps by instance id
}

// AttachJournal makes the server record every ring publication as a
// ring.epoch event — the authoritative membership-change history of the
// deployment. Call before serving.
func (s *Server) AttachJournal(j *watch.Journal) { s.journal = j }

type session struct {
	id       int64
	ttl      time.Duration
	deadline time.Time
	held     map[string]bool
}

type lockState struct {
	holder  int64 // session id, 0 = free
	waiters []*waiter
}

type waiter struct {
	sessionID int64
	granted   chan struct{}
	abandoned bool
}

// NewServer returns a coordination server on clk.
func NewServer(clk clock.Clock) *Server {
	return &Server{
		clk:      clk,
		sessions: make(map[int64]*session),
		locks:    make(map[string]*lockState),
	}
}

// Handler returns the transport.Handler serving the coordination protocol;
// attach it to a fabric endpoint or TCP server.
func (s *Server) Handler() transport.Handler {
	return func(_ context.Context, method string, payload []byte) ([]byte, error) {
		switch method {
		case methodCreateSession:
			var req createSessionReq
			if err := transport.Decode(payload, &req); err != nil {
				return nil, err
			}
			id := s.CreateSession(time.Duration(req.TTLMillis) * time.Millisecond)
			return transport.Encode(createSessionResp{SessionID: id})
		case methodKeepAlive:
			var req keepAliveReq
			if err := transport.Decode(payload, &req); err != nil {
				return nil, err
			}
			if err := s.KeepAlive(req.SessionID); err != nil {
				return nil, err
			}
			return transport.Encode(empty{})
		case methodCloseSession:
			var req closeSessionReq
			if err := transport.Decode(payload, &req); err != nil {
				return nil, err
			}
			s.CloseSession(req.SessionID)
			return transport.Encode(empty{})
		case methodAcquire:
			var req acquireReq
			if err := transport.Decode(payload, &req); err != nil {
				return nil, err
			}
			granted, err := s.Acquire(req.SessionID, req.Key, time.Duration(req.WaitMillis)*time.Millisecond)
			if err != nil {
				return nil, err
			}
			return transport.Encode(acquireResp{Granted: granted})
		case methodRelease:
			var req releaseReq
			if err := transport.Decode(payload, &req); err != nil {
				return nil, err
			}
			if err := s.Release(req.SessionID, req.Key); err != nil {
				return nil, err
			}
			return transport.Encode(empty{})
		case methodRingPublish:
			var req ringPublishReq
			if err := transport.Decode(payload, &req); err != nil {
				return nil, err
			}
			epoch, err := s.PublishRing(req.Name, req.Map)
			if err != nil {
				return nil, err
			}
			return transport.Encode(ringPublishResp{Epoch: epoch})
		case methodRingFetch:
			var req ringFetchReq
			if err := transport.Decode(payload, &req); err != nil {
				return nil, err
			}
			return transport.Encode(ringFetchResp{Map: s.FetchRing(req.Name)})
		default:
			return nil, fmt.Errorf("coord: unknown method %q", method)
		}
	}
}

// CreateSession registers a session with the given lease TTL and returns
// its id.
func (s *Server) CreateSession(ttl time.Duration) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	s.nextID++
	id := s.nextID
	s.sessions[id] = &session{
		id: id, ttl: ttl, deadline: s.clk.Now().Add(ttl),
		held: make(map[string]bool),
	}
	return id
}

// KeepAlive renews a session's lease.
func (s *Server) KeepAlive(id int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	sess, ok := s.sessions[id]
	if !ok {
		return ErrNoSession
	}
	sess.deadline = s.clk.Now().Add(sess.ttl)
	return nil
}

// CloseSession ends a session, releasing all its locks. Closing an unknown
// session is a no-op.
func (s *Server) CloseSession(id int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[id]; ok {
		s.releaseAllLocked(sess)
		delete(s.sessions, id)
	}
}

// Acquire obtains the lock for key on behalf of session id. With wait == 0
// it is a try-lock. With wait > 0 it blocks up to wait for the lock,
// joining a FIFO queue. It returns whether the lock was granted.
func (s *Server) Acquire(id int64, key string, wait time.Duration) (bool, error) {
	s.mu.Lock()
	s.expireLocked()
	sess, ok := s.sessions[id]
	if !ok {
		s.mu.Unlock()
		return false, ErrNoSession
	}
	ls := s.locks[key]
	if ls == nil {
		ls = &lockState{}
		s.locks[key] = ls
	}
	if ls.holder == 0 {
		ls.holder = id
		sess.held[key] = true
		s.mu.Unlock()
		return true, nil
	}
	if ls.holder == id {
		// Re-entrant grant: the session already holds it.
		s.mu.Unlock()
		return true, nil
	}
	if wait <= 0 {
		s.mu.Unlock()
		return false, nil
	}
	w := &waiter{sessionID: id, granted: make(chan struct{})}
	ls.waiters = append(ls.waiters, w)
	s.mu.Unlock()

	select {
	case <-w.granted:
		return true, nil
	case <-s.clk.After(wait):
		s.mu.Lock()
		defer s.mu.Unlock()
		select {
		case <-w.granted:
			// Granted while we were timing out; keep the lock.
			return true, nil
		default:
		}
		w.abandoned = true
		return false, ErrTimeout
	}
}

// Release gives up the lock on key held by session id and hands it to the
// next live waiter.
func (s *Server) Release(id int64, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	sess, ok := s.sessions[id]
	if !ok {
		return ErrNoSession
	}
	if !sess.held[key] {
		return fmt.Errorf("%w: session %d key %q", ErrNotHeld, id, key)
	}
	delete(sess.held, key)
	s.passLockLocked(key)
	return nil
}

// Holder returns the session currently holding key (0 = free).
func (s *Server) Holder(key string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	if ls := s.locks[key]; ls != nil {
		return ls.holder
	}
	return 0
}

// SessionCount returns the number of live sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	return len(s.sessions)
}

// ExpireSessions forces a lease-expiry sweep (tests and maintenance).
func (s *Server) ExpireSessions() {
	s.mu.Lock()
	s.expireLocked()
	s.mu.Unlock()
}

func (s *Server) expireLocked() {
	now := s.clk.Now()
	for id, sess := range s.sessions {
		if now.After(sess.deadline) {
			s.releaseAllLocked(sess)
			delete(s.sessions, id)
		}
	}
}

func (s *Server) releaseAllLocked(sess *session) {
	for key := range sess.held {
		s.passLockLocked(key)
	}
	sess.held = make(map[string]bool)
}

// passLockLocked hands the lock for key to the next waiter whose session is
// still alive, or frees it.
func (s *Server) passLockLocked(key string) {
	ls := s.locks[key]
	if ls == nil {
		return
	}
	ls.holder = 0
	for len(ls.waiters) > 0 {
		w := ls.waiters[0]
		ls.waiters = ls.waiters[1:]
		if w.abandoned {
			continue
		}
		next, alive := s.sessions[w.sessionID]
		if !alive {
			continue
		}
		ls.holder = w.sessionID
		next.held[key] = true
		close(w.granted)
		return
	}
	if ls.holder == 0 && len(ls.waiters) == 0 {
		delete(s.locks, key)
	}
}

// Client is a session-holding client of a coordination server reached
// through any transport.Caller.
type Client struct {
	caller    transport.Caller
	serverDst string
	sessionID int64
}

// NewClient creates a session with the given TTL on the server reachable as
// serverDst via caller.
func NewClient(caller transport.Caller, serverDst string, ttl time.Duration) (*Client, error) {
	payload, err := transport.Encode(createSessionReq{TTLMillis: ttl.Milliseconds()})
	if err != nil {
		return nil, err
	}
	raw, err := caller.Call(context.Background(), serverDst, methodCreateSession, payload)
	if err != nil {
		return nil, err
	}
	var resp createSessionResp
	if err := transport.Decode(raw, &resp); err != nil {
		return nil, err
	}
	return &Client{caller: caller, serverDst: serverDst, sessionID: resp.SessionID}, nil
}

// SessionID returns the client's server-assigned session id.
func (c *Client) SessionID() int64 { return c.sessionID }

// Lock acquires the global lock for key, waiting up to wait. ctx carries
// the caller's trace span: the lock round trip to the (possibly remote)
// coordination service is a significant share of a strongly consistent
// put's latency, so it should show up in the trace.
func (c *Client) Lock(ctx context.Context, key string, wait time.Duration) error {
	payload, err := transport.Encode(acquireReq{
		SessionID: c.sessionID, Key: key, WaitMillis: wait.Milliseconds(),
	})
	if err != nil {
		return err
	}
	raw, err := c.caller.Call(ctx, c.serverDst, methodAcquire, payload)
	if err != nil {
		return err
	}
	var resp acquireResp
	if err := transport.Decode(raw, &resp); err != nil {
		return err
	}
	if !resp.Granted {
		return ErrTimeout
	}
	return nil
}

// TryLock attempts the lock without waiting and reports whether it was
// granted.
func (c *Client) TryLock(ctx context.Context, key string) (bool, error) {
	payload, err := transport.Encode(acquireReq{SessionID: c.sessionID, Key: key})
	if err != nil {
		return false, err
	}
	raw, err := c.caller.Call(ctx, c.serverDst, methodAcquire, payload)
	if err != nil {
		return false, err
	}
	var resp acquireResp
	if err := transport.Decode(raw, &resp); err != nil {
		return false, err
	}
	return resp.Granted, nil
}

// Unlock releases the lock for key.
func (c *Client) Unlock(ctx context.Context, key string) error {
	payload, err := transport.Encode(releaseReq{SessionID: c.sessionID, Key: key})
	if err != nil {
		return err
	}
	_, err = c.caller.Call(ctx, c.serverDst, methodRelease, payload)
	return err
}

// KeepAlive renews the session lease.
func (c *Client) KeepAlive() error {
	payload, err := transport.Encode(keepAliveReq{SessionID: c.sessionID})
	if err != nil {
		return err
	}
	_, err = c.caller.Call(context.Background(), c.serverDst, methodKeepAlive, payload)
	return err
}

// Close ends the session, releasing all held locks.
func (c *Client) Close() error {
	payload, err := transport.Encode(closeSessionReq{SessionID: c.sessionID})
	if err != nil {
		return err
	}
	_, err = c.caller.Call(context.Background(), c.serverDst, methodCloseSession, payload)
	return err
}

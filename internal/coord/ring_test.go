package coord

import (
	"errors"
	"testing"

	"repro/internal/ring"
	"repro/internal/simnet"
	"repro/internal/transport"
)

func testMap(workers ...string) *ring.Map {
	return &ring.Map{Workers: map[string][]string{"us-east": workers}}
}

func TestPublishRingAssignsEpochs(t *testing.T) {
	s, _ := newServer()
	e1, err := s.PublishRing("inst", testMap("a"))
	if err != nil || e1 != 1 {
		t.Fatalf("first publish: epoch=%d err=%v", e1, err)
	}
	e2, err := s.PublishRing("inst", testMap("a", "b"))
	if err != nil || e2 != 2 {
		t.Fatalf("second publish: epoch=%d err=%v", e2, err)
	}
	// A caller proposing a higher epoch (local fallback while the
	// coordinator was down) keeps it.
	m := testMap("a", "b", "c")
	m.Epoch = 9
	e3, err := s.PublishRing("inst", m)
	if err != nil || e3 != 9 {
		t.Fatalf("proposed-epoch publish: epoch=%d err=%v", e3, err)
	}
	// ...and the next anonymous publish continues past it.
	e4, err := s.PublishRing("inst", testMap("a"))
	if err != nil || e4 != 10 {
		t.Fatalf("post-proposal publish: epoch=%d err=%v", e4, err)
	}
	// Other names have independent epochs.
	if e, _ := s.PublishRing("other", testMap("x")); e != 1 {
		t.Fatalf("other instance epoch = %d, want 1", e)
	}
}

func TestFetchRingReturnsLatestCopy(t *testing.T) {
	s, _ := newServer()
	if s.FetchRing("inst") != nil {
		t.Fatal("fetch before publish should be nil")
	}
	if _, err := s.PublishRing("inst", testMap("a", "b")); err != nil {
		t.Fatal(err)
	}
	got := s.FetchRing("inst")
	if got == nil || got.Epoch != 1 || got.Shards() != 2 {
		t.Fatalf("fetched %+v", got)
	}
	got.Workers["us-east"][0] = "mutated"
	if s.FetchRing("inst").Workers["us-east"][0] == "mutated" {
		t.Fatal("FetchRing must return a copy")
	}
}

func TestPublishRingRejectsInvalid(t *testing.T) {
	s, _ := newServer()
	if _, err := s.PublishRing("inst", nil); err == nil {
		t.Fatal("nil map accepted")
	}
	if _, err := s.PublishRing("inst", &ring.Map{}); err == nil {
		t.Fatal("empty map accepted")
	}
}

func TestRingOverRPC(t *testing.T) {
	s, clk := newServer()
	net := simnet.New(clk)
	fabric := transport.NewFabric(net)
	defer fabric.Close()
	ep, err := fabric.NewEndpoint("zk", simnet.USEast)
	if err != nil {
		t.Fatal(err)
	}
	ep.Serve(s.Handler())
	cli, err := fabric.NewEndpoint("cli", simnet.USWest)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := FetchRing(cli, "zk", "inst"); !errors.Is(err, ErrNoRing) {
		t.Fatalf("fetch before publish: %v, want ErrNoRing", err)
	}
	epoch, err := PublishRing(cli, "zk", "inst", testMap("a", "b", "c"))
	if err != nil || epoch != 1 {
		t.Fatalf("publish over RPC: epoch=%d err=%v", epoch, err)
	}
	m, err := FetchRing(cli, "zk", "inst")
	if err != nil || m.Epoch != 1 || m.Shards() != 3 {
		t.Fatalf("fetch over RPC: %+v err=%v", m, err)
	}
}

package object

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2016, 5, 31, 0, 0, 0, 0, time.UTC)

func TestPutAssignsIncreasingVersions(t *testing.T) {
	s := NewStore()
	m1 := s.Put("k", 10, "mem", "us-east", nil, t0)
	m2 := s.Put("k", 20, "mem", "us-east", nil, t0.Add(time.Second))
	if m1.Version != 1 || m2.Version != 2 {
		t.Fatalf("versions = %d, %d", m1.Version, m2.Version)
	}
	l, err := s.Latest("k")
	if err != nil {
		t.Fatal(err)
	}
	if l.Version != 2 || l.Size != 20 {
		t.Fatalf("Latest = %+v", l)
	}
}

func TestLatestMissing(t *testing.T) {
	s := NewStore()
	_, err := s.Latest("nope")
	var nf ErrNotFound
	if !errors.As(err, &nf) || nf.Key != "nope" {
		t.Fatalf("err = %v", err)
	}
}

func TestGetVersion(t *testing.T) {
	s := NewStore()
	s.Put("k", 10, "mem", "a", nil, t0)
	s.Put("k", 20, "mem", "a", nil, t0)
	m, err := s.GetVersion("k", 1)
	if err != nil || m.Size != 10 {
		t.Fatalf("GetVersion(1) = %+v, %v", m, err)
	}
	if _, err := s.GetVersion("k", 5); err == nil {
		t.Fatal("missing version should error")
	}
	if _, err := s.GetVersion("other", 1); err == nil {
		t.Fatal("missing key should error")
	}
}

func TestVersionList(t *testing.T) {
	s := NewStore()
	for i := 0; i < 5; i++ {
		s.Put("k", int64(i), "mem", "a", nil, t0)
	}
	vs, err := s.VersionList("k")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 5 {
		t.Fatalf("len = %d", len(vs))
	}
	for i, v := range vs {
		if v != Version(i+1) {
			t.Fatalf("VersionList = %v", vs)
		}
	}
	if _, err := s.VersionList("none"); err == nil {
		t.Fatal("want error for missing key")
	}
}

func TestRemove(t *testing.T) {
	s := NewStore()
	s.Put("k", 1, "mem", "a", nil, t0)
	if err := s.Remove("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Latest("k"); err == nil {
		t.Fatal("key should be gone")
	}
	if err := s.Remove("k"); err == nil {
		t.Fatal("double remove should error")
	}
}

func TestRemoveVersion(t *testing.T) {
	s := NewStore()
	s.Put("k", 1, "mem", "a", nil, t0)
	s.Put("k", 2, "mem", "a", nil, t0)
	if err := s.RemoveVersion("k", 2); err != nil {
		t.Fatal(err)
	}
	l, _ := s.Latest("k")
	if l.Version != 1 {
		t.Fatalf("Latest after removing v2 = %d", l.Version)
	}
	if err := s.RemoveVersion("k", 2); err == nil {
		t.Fatal("removing missing version should error")
	}
	// Removing the last version drops the key entirely.
	if err := s.RemoveVersion("k", 1); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatal("key should be gone after last version removed")
	}
	if err := s.RemoveVersion("k", 1); err == nil {
		t.Fatal("want error for missing key")
	}
}

func TestTouch(t *testing.T) {
	s := NewStore()
	s.Put("k", 1, "mem", "a", nil, t0)
	later := t0.Add(time.Hour)
	s.Touch("k", 1, later)
	s.Touch("k", 1, later.Add(time.Hour))
	m, _ := s.GetVersion("k", 1)
	if m.AccessCnt != 2 {
		t.Fatalf("AccessCnt = %d", m.AccessCnt)
	}
	if !m.AccessedAt.Equal(later.Add(time.Hour)) {
		t.Fatalf("AccessedAt = %v", m.AccessedAt)
	}
	s.Touch("missing", 1, later) // must not panic
}

func TestSetDirtyAndTier(t *testing.T) {
	s := NewStore()
	s.Put("k", 1, "mem", "a", nil, t0)
	if err := s.SetDirty("k", 1, true); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTier("k", 1, "ebs"); err != nil {
		t.Fatal(err)
	}
	m, _ := s.GetVersion("k", 1)
	if !m.Dirty || m.TierName != "ebs" {
		t.Fatalf("meta = %+v", m)
	}
	if err := s.SetDirty("x", 1, true); err == nil {
		t.Fatal("want error")
	}
	if err := s.SetTier("k", 9, "ebs"); err == nil {
		t.Fatal("want error")
	}
	if err := s.SetDirty("k", 9, true); err == nil {
		t.Fatal("want error for missing version")
	}
	if err := s.SetTier("x", 1, "ebs"); err == nil {
		t.Fatal("want error for missing key")
	}
}

func TestTags(t *testing.T) {
	s := NewStore()
	m := s.Put("k", 1, "mem", "a", []string{"tmp", "log"}, t0)
	if !m.HasTag("tmp") || !m.HasTag("log") || m.HasTag("hot") {
		t.Fatalf("tags = %v", m.Tags)
	}
}

func TestMetaCloneIndependence(t *testing.T) {
	s := NewStore()
	m := s.Put("k", 1, "mem", "a", []string{"x"}, t0)
	m.Tags[0] = "mutated"
	fresh, _ := s.Latest("k")
	if fresh.Tags[0] != "x" {
		t.Fatal("returned Meta aliases internal tags")
	}
}

func TestNewerLWWRules(t *testing.T) {
	base := Meta{Version: 3, ModifiedAt: t0, Origin: "a"}
	higher := Meta{Version: 4, ModifiedAt: t0.Add(-time.Hour), Origin: "a"}
	if !Newer(higher, base) {
		t.Fatal("higher version must win regardless of mtime")
	}
	newer := Meta{Version: 3, ModifiedAt: t0.Add(time.Second), Origin: "a"}
	if !Newer(newer, base) {
		t.Fatal("same version, later mtime must win")
	}
	tie := Meta{Version: 3, ModifiedAt: t0, Origin: "b"}
	if !Newer(tie, base) || Newer(base, tie) {
		t.Fatal("ties must break deterministically on origin")
	}
}

func TestApplyLWW(t *testing.T) {
	s := NewStore()
	s.Put("k", 1, "mem", "us-east", nil, t0)
	// Remote update with same version but later mtime wins.
	won := s.Apply(Meta{Key: "k", Version: 1, Size: 99, Origin: "eu-west", CreatedAt: t0, ModifiedAt: t0.Add(time.Second)})
	if !won {
		t.Fatal("later remote write should win")
	}
	m, _ := s.GetVersion("k", 1)
	if m.Size != 99 || m.Origin != "eu-west" {
		t.Fatalf("after apply = %+v", m)
	}
	// An older update must be rejected.
	if s.Apply(Meta{Key: "k", Version: 1, Size: 1, Origin: "ap", ModifiedAt: t0.Add(-time.Minute)}) {
		t.Fatal("older write must lose")
	}
	// A new version on a fresh key is always accepted.
	if !s.Apply(Meta{Key: "fresh", Version: 7, Origin: "x", ModifiedAt: t0}) {
		t.Fatal("fresh key apply should succeed")
	}
}

// Property: regardless of delivery order, two replicas applying the same
// set of updates converge to identical winners (LWW convergence).
func TestApplyConvergenceProperty(t *testing.T) {
	f := func(seed uint8) bool {
		updates := make([]Meta, 0, 8)
		for i := 0; i < 8; i++ {
			updates = append(updates, Meta{
				Key:        "k",
				Version:    Version(1 + (int(seed)+i*3)%3),
				Size:       int64(i),
				Origin:     fmt.Sprintf("origin-%d", i%4),
				ModifiedAt: t0.Add(time.Duration((int(seed)*7+i*13)%5) * time.Second),
			})
		}
		a, b := NewStore(), NewStore()
		for _, u := range updates {
			a.Apply(u)
		}
		for i := len(updates) - 1; i >= 0; i-- { // reverse order
			b.Apply(updates[i])
		}
		for v := Version(1); v <= 3; v++ {
			ma, errA := a.GetVersion("k", v)
			mb, errB := b.GetVersion("k", v)
			if (errA == nil) != (errB == nil) {
				return false
			}
			if errA == nil && (ma.Size != mb.Size || ma.Origin != mb.Origin) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScan(t *testing.T) {
	s := NewStore()
	s.Put("a", 1, "mem", "x", nil, t0)
	s.Put("b", 2, "mem", "x", nil, t0)
	s.Put("b", 3, "mem", "x", nil, t0)
	count := 0
	s.Scan(func(m Meta) bool { count++; return true })
	if count != 3 {
		t.Fatalf("Scan visited %d metas, want 3", count)
	}
	// Early stop.
	count = 0
	s.Scan(func(m Meta) bool { count++; return false })
	if count != 1 {
		t.Fatalf("Scan with early stop visited %d", count)
	}
}

func TestKeysSorted(t *testing.T) {
	s := NewStore()
	s.Put("zebra", 1, "mem", "x", nil, t0)
	s.Put("alpha", 1, "mem", "x", nil, t0)
	ks := s.Keys()
	if len(ks) != 2 || ks[0] != "alpha" || ks[1] != "zebra" {
		t.Fatalf("Keys = %v", ks)
	}
}

func TestVersionKey(t *testing.T) {
	if got := VersionKey("photo.jpg", 3); got != "photo.jpg@v3" {
		t.Fatalf("VersionKey = %q", got)
	}
}

func TestErrNotFoundMessages(t *testing.T) {
	e1 := ErrNotFound{Key: "k"}
	e2 := ErrNotFound{Key: "k", Version: 2}
	if e1.Error() == e2.Error() {
		t.Fatal("messages should differ with/without version")
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%4)
			for j := 0; j < 200; j++ {
				s.Put(key, int64(j), "mem", "a", nil, t0)
				_, _ = s.Latest(key)
				s.Touch(key, 1, t0)
				_ = s.Len()
			}
		}(i)
	}
	wg.Wait()
	// 2 goroutines per key, 200 puts each -> 400 versions.
	vs, err := s.VersionList("k0")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("no versions recorded")
	}
}

func TestVersionedObjectLatestEmpty(t *testing.T) {
	vo := NewVersionedObject("k")
	if vo.Latest() != nil {
		t.Fatal("empty object Latest should be nil")
	}
}

// Package object implements the Tiera/Wiera data model (paper Secs 2.2 and
// 3.2.1): immutable, uninterpreted byte objects addressed by a globally
// unique key, carrying metadata attributes (size, access frequency, dirty
// bit, timestamps, tier location) and application-defined tags. Wiera
// extends the model with multiple versions per object; a modification
// creates a new version, and replicas converge under last-writer-wins.
package object

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Version numbers an object's revisions, starting at 1.
type Version int64

// Meta is the per-version metadata the paper stores in BerkeleyDB: version
// number, create time, access count, last modified and last accessed times,
// plus the Tiera attributes (size, dirty bit, tier location).
type Meta struct {
	Key        string
	Version    Version
	Size       int64
	Dirty      bool
	TierName   string // which storage tier currently holds the bytes
	Origin     string // instance that created this version (conflict diagnostics)
	CreatedAt  time.Time
	ModifiedAt time.Time
	AccessedAt time.Time
	AccessCnt  int64
	Tags       []string
	// Compressed and Encrypted mark payload transformations applied by the
	// policy's compress/encrypt responses (paper Sec 2.1); reads reverse
	// them transparently. When both are set, compression was applied first.
	Compressed bool
	Encrypted  bool
	// Erasure-coding layout. ECK/ECM record the Reed-Solomon scheme the
	// version was written under (0/0 = fully replicated); ECFrags lists the
	// fragment indexes whose bytes this replica's stored payload holds,
	// concatenated in ascending index order. Size stays the full logical
	// object size, so the physical bytes here are
	// len(ECFrags) * ceil(Size/ECK). Replicas of an EC version differ only
	// in ECFrags; the LWW tuple (Version, ModifiedAt, Origin) is identical
	// across all fragment holders, so anti-entropy sees no false conflicts.
	ECK     int
	ECM     int
	ECFrags []int
}

// HasTag reports whether the version carries tag.
func (m *Meta) HasTag(tag string) bool {
	for _, t := range m.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the metadata.
func (m *Meta) Clone() Meta {
	c := *m
	c.Tags = append([]string(nil), m.Tags...)
	c.ECFrags = append([]int(nil), m.ECFrags...)
	return c
}

// IsEC reports whether the version was stored erasure-coded.
func (m *Meta) IsEC() bool { return m.ECK > 0 }

// FragSize is the per-fragment byte size of an EC version (0 for
// replicated versions): the k-way split of Size, rounded up.
func (m *Meta) FragSize() int64 {
	if m.ECK <= 0 || m.Size <= 0 {
		return 0
	}
	return (m.Size + int64(m.ECK) - 1) / int64(m.ECK)
}

// StoredBytes is the physical payload size this replica holds for the
// version: the full Size for replicated objects, the fragment-bundle
// size for EC objects. Capacity accounting and byte-transfer metrics
// must use this, not Size, or EC storage savings vanish on paper.
func (m *Meta) StoredBytes() int64 {
	if !m.IsEC() {
		return m.Size
	}
	return int64(len(m.ECFrags)) * m.FragSize()
}

// Newer reports whether version a should win over b under the paper's
// last-write-wins rule (Sec 4.2): a higher version number wins; equal
// versions are broken by the later modification time; remaining ties break
// deterministically on origin so all replicas converge identically.
func Newer(a, b Meta) bool {
	if a.Version != b.Version {
		return a.Version > b.Version
	}
	if !a.ModifiedAt.Equal(b.ModifiedAt) {
		return a.ModifiedAt.After(b.ModifiedAt)
	}
	return a.Origin > b.Origin
}

// VersionedObject is the full record for one key: every retained version's
// metadata. The object payload bytes themselves live in storage tiers; this
// structure tracks which versions exist and their attributes.
type VersionedObject struct {
	Key      string
	Versions map[Version]*Meta
}

// NewVersionedObject returns an empty record for key.
func NewVersionedObject(key string) *VersionedObject {
	return &VersionedObject{Key: key, Versions: make(map[Version]*Meta)}
}

// Latest returns the metadata of the highest version, or nil if none.
func (v *VersionedObject) Latest() *Meta {
	var best *Meta
	for _, m := range v.Versions {
		if best == nil || m.Version > best.Version {
			best = m
		}
	}
	return best
}

// VersionList returns all version numbers in ascending order.
func (v *VersionedObject) VersionList() []Version {
	out := make([]Version, 0, len(v.Versions))
	for ver := range v.Versions {
		out = append(out, ver)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Store is an in-memory, concurrency-safe version index for one Tiera
// instance. It implements the object versioning API of Table 2 at the
// metadata level; payloads are stored in tiers keyed by VersionKey.
type Store struct {
	mu      sync.RWMutex
	objects map[string]*VersionedObject
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{objects: make(map[string]*VersionedObject)}
}

// ErrNotFound reports a missing key or version.
type ErrNotFound struct {
	Key     string
	Version Version // 0 means "any version"
}

// Error implements error.
func (e ErrNotFound) Error() string {
	if e.Version == 0 {
		return fmt.Sprintf("object: key %q not found", e.Key)
	}
	return fmt.Sprintf("object: key %q version %d not found", e.Key, e.Version)
}

// Put records a new version of key and returns its metadata. The version
// number assigned is one past the current latest (or 1). now is the clock
// time of the write; origin names the writing instance.
func (s *Store) Put(key string, size int64, tier, origin string, tags []string, now time.Time) Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	vo := s.objects[key]
	if vo == nil {
		vo = NewVersionedObject(key)
		s.objects[key] = vo
	}
	next := Version(1)
	if l := vo.Latest(); l != nil {
		next = l.Version + 1
	}
	m := &Meta{
		Key: key, Version: next, Size: size, TierName: tier, Origin: origin,
		CreatedAt: now, ModifiedAt: now, AccessedAt: now,
		Tags: append([]string(nil), tags...),
	}
	vo.Versions[next] = m
	return m.Clone()
}

// Apply installs a replica-propagated version verbatim if it wins under
// last-writer-wins against the local version with the same number (or is
// absent locally). It returns true when the update was accepted. This is
// the receive path of Sec 4.2.
func (s *Store) Apply(m Meta) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	vo := s.objects[m.Key]
	if vo == nil {
		vo = NewVersionedObject(m.Key)
		s.objects[m.Key] = vo
	}
	if existing, ok := vo.Versions[m.Version]; ok {
		if !Newer(m, *existing) {
			return false
		}
	}
	mc := m.Clone()
	vo.Versions[m.Version] = &mc
	return true
}

// Latest returns the latest version's metadata for key.
func (s *Store) Latest(key string) (Meta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vo := s.objects[key]
	if vo == nil {
		return Meta{}, ErrNotFound{Key: key}
	}
	l := vo.Latest()
	if l == nil {
		return Meta{}, ErrNotFound{Key: key}
	}
	return l.Clone(), nil
}

// GetVersion returns metadata for a specific version of key.
func (s *Store) GetVersion(key string, v Version) (Meta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vo := s.objects[key]
	if vo == nil {
		return Meta{}, ErrNotFound{Key: key, Version: v}
	}
	m, ok := vo.Versions[v]
	if !ok {
		return Meta{}, ErrNotFound{Key: key, Version: v}
	}
	return m.Clone(), nil
}

// VersionList returns the available versions of key in ascending order
// (Table 2 getVersionList).
func (s *Store) VersionList(key string) ([]Version, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vo := s.objects[key]
	if vo == nil || len(vo.Versions) == 0 {
		return nil, ErrNotFound{Key: key}
	}
	return vo.VersionList(), nil
}

// Remove deletes all versions of key (Table 2 remove).
func (s *Store) Remove(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[key]; !ok {
		return ErrNotFound{Key: key}
	}
	delete(s.objects, key)
	return nil
}

// RemoveVersion deletes one version of key (Table 2 removeVersion).
func (s *Store) RemoveVersion(key string, v Version) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	vo := s.objects[key]
	if vo == nil {
		return ErrNotFound{Key: key, Version: v}
	}
	if _, ok := vo.Versions[v]; !ok {
		return ErrNotFound{Key: key, Version: v}
	}
	delete(vo.Versions, v)
	if len(vo.Versions) == 0 {
		delete(s.objects, key)
	}
	return nil
}

// Touch records an access to a version at time now, updating access count
// and last-access time. It is a no-op for missing versions.
func (s *Store) Touch(key string, v Version, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if vo := s.objects[key]; vo != nil {
		if m, ok := vo.Versions[v]; ok {
			m.AccessCnt++
			m.AccessedAt = now
		}
	}
}

// SetDirty sets the dirty bit of a version (write-back bookkeeping).
func (s *Store) SetDirty(key string, v Version, dirty bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	vo := s.objects[key]
	if vo == nil {
		return ErrNotFound{Key: key, Version: v}
	}
	m, ok := vo.Versions[v]
	if !ok {
		return ErrNotFound{Key: key, Version: v}
	}
	m.Dirty = dirty
	return nil
}

// SetTransforms records payload transformation flags for a version.
func (s *Store) SetTransforms(key string, v Version, compressed, encrypted bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	vo := s.objects[key]
	if vo == nil {
		return ErrNotFound{Key: key, Version: v}
	}
	m, ok := vo.Versions[v]
	if !ok {
		return ErrNotFound{Key: key, Version: v}
	}
	m.Compressed = compressed
	m.Encrypted = encrypted
	return nil
}

// SetTier records which tier now holds a version's payload.
func (s *Store) SetTier(key string, v Version, tier string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	vo := s.objects[key]
	if vo == nil {
		return ErrNotFound{Key: key, Version: v}
	}
	m, ok := vo.Versions[v]
	if !ok {
		return ErrNotFound{Key: key, Version: v}
	}
	m.TierName = tier
	return nil
}

// Keys returns every stored key in sorted order.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.objects))
	for k := range s.objects {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of distinct keys stored.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// Scan calls fn with a copy of every version's metadata; fn returning false
// stops the scan. Policies use Scan for cold-data and tier-fill monitors.
func (s *Store) Scan(fn func(Meta) bool) {
	s.mu.RLock()
	// Copy out under lock, call fn outside to keep fn free to call back in.
	var metas []Meta
	for _, vo := range s.objects {
		for _, m := range vo.Versions {
			metas = append(metas, m.Clone())
		}
	}
	s.mu.RUnlock()
	for _, m := range metas {
		if !fn(m) {
			return
		}
	}
}

// VersionKey is the tier-payload key for (key, version): tiers store
// payloads keyed by this composite so multiple versions coexist.
func VersionKey(key string, v Version) string {
	return fmt.Sprintf("%s@v%d", key, v)
}

package object

import (
	"fmt"
	"testing"
	"time"
)

func BenchmarkStorePut(b *testing.B) {
	s := NewStore()
	now := time.Unix(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Put(fmt.Sprintf("key-%d", i%1024), 4096, "tier1", "origin", nil, now)
	}
}

func BenchmarkStoreApplyLWW(b *testing.B) {
	s := NewStore()
	base := time.Unix(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Apply(Meta{
			Key: fmt.Sprintf("key-%d", i%512), Version: Version(i%8 + 1),
			Origin: "remote", ModifiedAt: base.Add(time.Duration(i) * time.Microsecond),
		})
	}
}

func BenchmarkStoreLatest(b *testing.B) {
	s := NewStore()
	now := time.Unix(0, 0)
	for i := 0; i < 1024; i++ {
		for v := 0; v < 4; v++ {
			s.Put(fmt.Sprintf("key-%d", i), 64, "tier1", "o", nil, now)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Latest(fmt.Sprintf("key-%d", i%1024)); err != nil {
			b.Fatal(err)
		}
	}
}

package ec

import (
	"fmt"
	"strconv"
	"strings"
)

// Scheme names a k+m Reed-Solomon layout, e.g. "4+2": 4 data fragments,
// 2 parity fragments, any 4 of the 6 reconstruct. The zero Scheme means
// "no erasure coding" (full replication).
type Scheme struct {
	K int // data fragments
	M int // parity fragments
}

// DefaultScheme is EC(4+2): 1.5x storage overhead vs 3x for triple
// replication, tolerating any two lost fragments.
var DefaultScheme = Scheme{K: 4, M: 2}

// ParseScheme parses "k+m" (e.g. "4+2").
func ParseScheme(s string) (Scheme, error) {
	lhs, rhs, ok := strings.Cut(strings.TrimSpace(s), "+")
	if !ok {
		return Scheme{}, fmt.Errorf("ec: scheme %q is not of the form k+m", s)
	}
	k, err := strconv.Atoi(strings.TrimSpace(lhs))
	if err != nil {
		return Scheme{}, fmt.Errorf("ec: bad data-fragment count in %q: %v", s, err)
	}
	m, err := strconv.Atoi(strings.TrimSpace(rhs))
	if err != nil {
		return Scheme{}, fmt.Errorf("ec: bad parity-fragment count in %q: %v", s, err)
	}
	if k < 1 || m < 1 || k+m > 256 {
		return Scheme{}, fmt.Errorf("ec: invalid scheme %d+%d (need k,m >= 1 and k+m <= 256)", k, m)
	}
	return Scheme{K: k, M: m}, nil
}

// IsZero reports whether the scheme is unset.
func (s Scheme) IsZero() bool { return s.K == 0 && s.M == 0 }

// Shards is the total fragment count k+m.
func (s Scheme) Shards() int { return s.K + s.M }

// Overhead is the storage amplification (k+m)/k of the scheme.
func (s Scheme) Overhead() float64 {
	if s.K == 0 {
		return 0
	}
	return float64(s.K+s.M) / float64(s.K)
}

func (s Scheme) String() string { return fmt.Sprintf("%d+%d", s.K, s.M) }

// Assign returns the fragment indexes that member `rank` of `members`
// stores, out of `total` fragments: round-robin striping (fragment i
// lives on member i mod members), so fragments spread as evenly as the
// counts allow and one lost member costs at most ceil(total/members)
// fragments.
func Assign(total, members, rank int) []int {
	if members <= 0 || rank < 0 || rank >= members {
		return nil
	}
	var out []int
	for i := rank; i < total; i += members {
		out = append(out, i)
	}
	return out
}

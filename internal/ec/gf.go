package ec

// GF(2^8) arithmetic over the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11d, the Rijndael field generator's companion used by most RS
// implementations). Multiplication goes through log/exp tables; the
// exp table is doubled so gfMul never reduces mod 255 in the hot loop.

const gfPoly = 0x11d

var (
	gfExp [512]byte
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("ec: division by zero in GF(2^8)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

func gfInv(a byte) byte { return gfDiv(1, a) }

// mulAddSlice folds c*src into dst (dst[i] ^= c*src[i]) — the hot loop
// of both encode and reconstruct. The log of the coefficient is hoisted
// so each byte costs one table lookup and one add.
func mulAddSlice(c byte, src, dst []byte) {
	if c == 0 {
		return
	}
	logC := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[logC+int(gfLog[s])]
		}
	}
}

package ec

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// subsets enumerates every size-r subset of {0..n-1}.
func subsets(n, r int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == r {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i <= n-(r-len(cur)); i++ {
			rec(i+1, append(cur, i))
		}
	}
	rec(0, nil)
	return out
}

func roundTrip(t *testing.T, c *Codec, data []byte, keep []int) {
	t.Helper()
	shards, err := c.Encode(data)
	if err != nil {
		t.Fatalf("encode %dB: %v", len(data), err)
	}
	kept := make([][]byte, c.Shards())
	for _, i := range keep {
		// Copy while preserving presence: an empty fragment (0B object)
		// must stay non-nil, since nil means "missing" to Reconstruct.
		kept[i] = append(make([]byte, 0, len(shards[i])), shards[i]...)
	}
	if err := c.Reconstruct(kept); err != nil {
		t.Fatalf("reconstruct %dB from %v: %v", len(data), keep, err)
	}
	got, err := c.Join(kept, int64(len(data)))
	if err != nil {
		t.Fatalf("join %dB from %v: %v", len(data), keep, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip %dB via %v: payload mismatch", len(data), keep)
	}
	// Reconstructed parity must match the original encoding too.
	for i := 0; i < c.Shards(); i++ {
		if !bytes.Equal(kept[i], shards[i]) {
			t.Fatalf("round trip %dB via %v: fragment %d differs after reconstruct", len(data), keep, i)
		}
	}
}

// TestRSRoundTripProperty: for random sizes from 0B to 8MiB, every
// k-subset of fragments reconstructs the object, and any k-1 fragments
// fail loudly.
func TestRSRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	all := subsets(c.Shards(), c.K())

	sizes := []int{0, 1, 2, 3, c.K(), c.K() + 1, 17, 1 << 10, 64<<10 + 3, 8 << 20}
	for i := 0; i < 8; i++ {
		sizes = append(sizes, rng.Intn(8<<20))
	}
	for _, size := range sizes {
		data := make([]byte, size)
		rng.Read(data)
		if size <= 64<<10 {
			for _, keep := range all { // all C(6,4)=15 subsets
				roundTrip(t, c, data, keep)
			}
		} else {
			for i := 0; i < 4; i++ { // large payloads: sampled subsets
				roundTrip(t, c, data, all[rng.Intn(len(all))])
			}
		}

		// Any k-1 fragments must fail loudly, never return wrong bytes.
		shards, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		for _, keep := range subsets(c.Shards(), c.K()-1) {
			kept := make([][]byte, c.Shards())
			for _, j := range keep {
				kept[j] = shards[j]
			}
			if err := c.Reconstruct(kept); err == nil {
				t.Fatalf("size %d: reconstruct from %d fragments %v succeeded, want error",
					size, c.K()-1, keep)
			}
		}
	}
}

// TestRSOtherSchemes exercises a couple of non-default geometries.
func TestRSOtherSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sc := range []Scheme{{K: 2, M: 1}, {K: 3, M: 3}, {K: 6, M: 2}} {
		c, err := New(sc.K, sc.M)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 10*1024+5)
		rng.Read(data)
		all := subsets(c.Shards(), c.K())
		for i := 0; i < 6; i++ {
			roundTrip(t, c, data, all[rng.Intn(len(all))])
		}
	}
}

func TestParseScheme(t *testing.T) {
	s, err := ParseScheme("4+2")
	if err != nil || s.K != 4 || s.M != 2 {
		t.Fatalf("ParseScheme(4+2) = %v, %v", s, err)
	}
	if s.Overhead() != 1.5 {
		t.Fatalf("overhead = %v, want 1.5", s.Overhead())
	}
	for _, bad := range []string{"", "4", "4-2", "0+2", "4+0", "300+1", "a+b"} {
		if _, err := ParseScheme(bad); err == nil {
			t.Fatalf("ParseScheme(%q) succeeded, want error", bad)
		}
	}
}

func TestAssign(t *testing.T) {
	// 6 fragments across 3 members: round-robin, 2 each, disjoint, complete.
	seen := map[int]int{}
	for r := 0; r < 3; r++ {
		frags := Assign(6, 3, r)
		if len(frags) != 2 {
			t.Fatalf("rank %d got %v, want 2 fragments", r, frags)
		}
		for _, f := range frags {
			seen[f]++
		}
	}
	for i := 0; i < 6; i++ {
		if seen[i] != 1 {
			t.Fatalf("fragment %d assigned %d times", i, seen[i])
		}
	}
	// Uneven split: 6 fragments across 4 members.
	total := 0
	for r := 0; r < 4; r++ {
		total += len(Assign(6, 4, r))
	}
	if total != 6 {
		t.Fatalf("assigned %d of 6 fragments", total)
	}
	if got := Assign(6, 0, 0); got != nil {
		t.Fatalf("Assign with 0 members = %v, want nil", got)
	}
}

func TestShardSize(t *testing.T) {
	for _, tc := range []struct{ size, k, want int64 }{
		{0, 4, 0}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {8 << 20, 4, 2 << 20},
	} {
		if got := ShardSize(tc.size, int(tc.k)); got != tc.want {
			t.Fatalf("ShardSize(%d, %d) = %d, want %d", tc.size, tc.k, got, tc.want)
		}
	}
}

func benchPayload(n int) []byte {
	data := make([]byte, n)
	rand.New(rand.NewSource(3)).Read(data)
	return data
}

func BenchmarkECEncode(b *testing.B) {
	c, _ := New(4, 2)
	data := benchPayload(1 << 20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkECReconstruct(b *testing.B) {
	c, _ := New(4, 2)
	data := benchPayload(1 << 20)
	shards, _ := c.Encode(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Worst case: two data fragments lost, recovered from parity.
		kept := make([][]byte, c.Shards())
		for j := 2; j < c.Shards(); j++ {
			kept[j] = shards[j]
		}
		if err := c.Reconstruct(kept); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Join(kept, int64(len(data))); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleCodec() {
	c, _ := New(4, 2)
	shards, _ := c.Encode([]byte("geo-distributed storage"))
	shards[0], shards[5] = nil, nil // lose a data and a parity fragment
	_ = c.Reconstruct(shards)
	out, _ := c.Join(shards, int64(len("geo-distributed storage")))
	fmt.Println(string(out))
	// Output: geo-distributed storage
}

// Package ec implements systematic Reed-Solomon erasure coding over
// GF(2^8) for the Wiera EC distribution engine: an object is split into
// k data fragments plus m parity fragments, and any k of the k+m
// fragments reconstruct the original bytes. The code is systematic —
// data fragments are plain slices of the object — so the common-case
// read that finds all data fragments pays no field arithmetic at all.
//
// Parity rows come from a Cauchy matrix (a_ij = 1/(x_i XOR y_j) with
// x_i = k+i, y_j = j). Every square submatrix of a Cauchy matrix is
// nonsingular, and deleting identity rows from [I_k; C] reduces any
// k-row minor to such a submatrix, so the stacked matrix is MDS: every
// k-subset of fragments is an invertible system.
package ec

import (
	"errors"
	"fmt"
)

// Codec encodes and reconstructs one k+m scheme. It is stateless after
// construction and safe for concurrent use.
type Codec struct {
	k, m   int
	parity [][]byte // m rows of k Cauchy coefficients
}

// New builds a codec for k data and m parity fragments.
func New(k, m int) (*Codec, error) {
	if k < 1 || m < 1 || k+m > 256 {
		return nil, fmt.Errorf("ec: invalid scheme %d+%d (need k,m >= 1 and k+m <= 256)", k, m)
	}
	c := &Codec{k: k, m: m, parity: make([][]byte, m)}
	for i := 0; i < m; i++ {
		row := make([]byte, k)
		for j := 0; j < k; j++ {
			row[j] = gfInv(byte(k+i) ^ byte(j))
		}
		c.parity[i] = row
	}
	return c, nil
}

// K and M report the scheme dimensions; Shards is k+m.
func (c *Codec) K() int      { return c.k }
func (c *Codec) M() int      { return c.m }
func (c *Codec) Shards() int { return c.k + c.m }

// ShardSize is the per-fragment byte size for an object of size bytes
// under a k-way split (the last data fragment is zero-padded up to it).
func ShardSize(size int64, k int) int64 {
	if size <= 0 {
		return 0
	}
	return (size + int64(k) - 1) / int64(k)
}

// Encode splits data into k data fragments and computes m parity
// fragments. Data fragments alias the input wherever possible (only a
// fragment covering the zero-padded tail is copied); callers that
// mutate data after encoding must copy first.
func (c *Codec) Encode(data []byte) ([][]byte, error) {
	size := int(ShardSize(int64(len(data)), c.k))
	shards := make([][]byte, c.k+c.m)
	for i := 0; i < c.k; i++ {
		lo := i * size
		hi := lo + size
		switch {
		case size == 0:
			shards[i] = []byte{}
		case hi <= len(data):
			shards[i] = data[lo:hi:hi]
		default:
			s := make([]byte, size)
			if lo < len(data) {
				copy(s, data[lo:])
			}
			shards[i] = s
		}
	}
	for i := 0; i < c.m; i++ {
		p := make([]byte, size)
		for j := 0; j < c.k; j++ {
			mulAddSlice(c.parity[i][j], shards[j], p)
		}
		shards[c.k+i] = p
	}
	return shards, nil
}

// Reconstruct fills every nil entry of shards in place. shards must
// have length k+m; at least k entries must be present (non-nil) and of
// equal length. Fewer than k present fragments is an error — the loud
// failure mode the durability math depends on.
func (c *Codec) Reconstruct(shards [][]byte) error {
	n := c.k + c.m
	if len(shards) != n {
		return fmt.Errorf("ec: got %d shard slots, scheme %d+%d needs %d", len(shards), c.k, c.m, n)
	}
	present, size := 0, -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		present++
		if size < 0 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("ec: fragment %d is %dB, others are %dB", i, len(s), size)
		}
	}
	if present < c.k {
		return fmt.Errorf("ec: need %d fragments to reconstruct, have %d", c.k, present)
	}

	dataMissing := false
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			dataMissing = true
			break
		}
	}
	if dataMissing {
		// Solve A * data = collected for the first k present fragments,
		// where A stacks the matching rows of the encode matrix [I; C].
		idx := make([]int, 0, c.k)
		for i := 0; i < n && len(idx) < c.k; i++ {
			if shards[i] != nil {
				idx = append(idx, i)
			}
		}
		a := make([][]byte, c.k)
		for r, i := range idx {
			row := make([]byte, c.k)
			if i < c.k {
				row[i] = 1
			} else {
				copy(row, c.parity[i-c.k])
			}
			a[r] = row
		}
		inv, err := invert(a)
		if err != nil {
			return err
		}
		for j := 0; j < c.k; j++ {
			if shards[j] != nil {
				continue
			}
			out := make([]byte, size)
			for r := 0; r < c.k; r++ {
				mulAddSlice(inv[j][r], shards[idx[r]], out)
			}
			shards[j] = out
		}
	}
	for i := 0; i < c.m; i++ {
		if shards[c.k+i] != nil {
			continue
		}
		p := make([]byte, size)
		for j := 0; j < c.k; j++ {
			mulAddSlice(c.parity[i][j], shards[j], p)
		}
		shards[c.k+i] = p
	}
	return nil
}

// Join reassembles the original object of length size from the k data
// fragments (call Reconstruct first if any are nil).
func (c *Codec) Join(shards [][]byte, size int64) ([]byte, error) {
	if int64(len(shards)) < int64(c.k) {
		return nil, errors.New("ec: join needs all data fragments")
	}
	out := make([]byte, 0, size)
	for i := 0; i < c.k && int64(len(out)) < size; i++ {
		if shards[i] == nil {
			return nil, fmt.Errorf("ec: data fragment %d missing in join", i)
		}
		out = append(out, shards[i]...)
	}
	if int64(len(out)) < size {
		return nil, fmt.Errorf("ec: fragments cover %d of %d bytes", len(out), size)
	}
	return out[:size], nil
}

// invert Gauss-Jordans a k×k matrix over GF(2^8), consuming a.
func invert(a [][]byte) ([][]byte, error) {
	k := len(a)
	inv := make([][]byte, k)
	for i := range inv {
		inv[i] = make([]byte, k)
		inv[i][i] = 1
	}
	for col := 0; col < k; col++ {
		piv := -1
		for r := col; r < k; r++ {
			if a[r][col] != 0 {
				piv = r
				break
			}
		}
		if piv < 0 {
			return nil, errors.New("ec: singular fragment matrix")
		}
		a[col], a[piv] = a[piv], a[col]
		inv[col], inv[piv] = inv[piv], inv[col]
		d := gfInv(a[col][col])
		for j := 0; j < k; j++ {
			a[col][j] = gfMul(a[col][j], d)
			inv[col][j] = gfMul(inv[col][j], d)
		}
		for r := 0; r < k; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := 0; j < k; j++ {
				a[r][j] ^= gfMul(f, a[col][j])
				inv[r][j] ^= gfMul(f, inv[col][j])
			}
		}
	}
	return inv, nil
}

package wiera

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/autoscale"
	"repro/internal/object"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Heat tracker defaults. The decay factor halves every interval, so Rate
// estimates read as "accesses per half-life"; hotCacheCap bounds how many
// foreign hot keys one node will hold replicas for.
const (
	defaultHeatInterval    = 2 * time.Second
	defaultHeatPromote     = 50.0
	defaultHeatDemote      = 10.0
	defaultHeatReplicas    = 2
	heatDecayFactor        = 0.5
	heatTombstoneLifetimes = 10 // tombstone TTL in heat intervals
	hotCacheCap            = 1024
)

// hotEntry is one cached hot-key replica on a non-owning node.
type hotEntry struct {
	meta  object.Meta
	data  []byte
	owner string
}

// heatTracker implements per-key heat tracking and hot-key selective
// replication on one node. Every data-path access feeds a decaying
// count-min sketch (autoscale.Sketch); a background loop promotes keys
// whose decayed rate crosses the promote threshold — pushing extra replicas
// to peers chosen independently of the instance-wide policy — and demotes
// them with tombstoned cleanup when they cool. A nil *heatTracker is inert:
// every method is nil-safe, so untracked nodes pay only a pointer test.
type heatTracker struct {
	n        *Node
	sketch   *autoscale.Sketch
	interval time.Duration
	promote  float64
	demote   float64
	replicas int
	topK     int

	mu        sync.Mutex
	hot       map[string][]string  // owner side: promoted key -> replica nodes
	cache     map[string]hotEntry  // replica side: installed hot copies
	tombs     map[string]time.Time // replica side: recently dropped keys
	lastEpoch int64                // ring epoch the promotions were made under

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	promotions  *telemetry.Counter
	demotions   *telemetry.Counter
	hotGets     *telemetry.Counter
	installs    *telemetry.Counter
	installErrs *telemetry.Counter
	drops       *telemetry.Counter
	trackedG    *telemetry.Gauge
	hotG        *telemetry.Gauge
	cachedG     *telemetry.Gauge
}

// newHeatTracker wires a tracker onto n, or returns nil when heat tracking
// is disabled for this node.
func newHeatTracker(n *Node, cfg NodeConfig) *heatTracker {
	if !cfg.HeatTrack {
		return nil
	}
	h := &heatTracker{
		n:        n,
		sketch:   autoscale.NewSketch(autoscale.SketchConfig{TopK: cfg.HeatTopK}),
		interval: cfg.HeatInterval,
		promote:  cfg.HeatPromoteRate,
		demote:   cfg.HeatDemoteRate,
		replicas: cfg.HeatReplicas,
		topK:     cfg.HeatTopK,
		hot:      make(map[string][]string),
		cache:    make(map[string]hotEntry),
		tombs:    make(map[string]time.Time),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if h.interval <= 0 {
		h.interval = defaultHeatInterval
	}
	if h.promote <= 0 {
		h.promote = defaultHeatPromote
	}
	if h.demote <= 0 || h.demote >= h.promote {
		h.demote = h.promote / 5
	}
	if h.replicas <= 0 {
		h.replicas = defaultHeatReplicas
	}
	if h.topK <= 0 {
		h.topK = autoscale.DefaultTopK
	}
	reg := n.fabric.Metrics()
	region := string(n.region)
	counter := func(name, help string) *telemetry.Counter {
		return reg.Counter(name, help, "node", "region").With(n.name, region)
	}
	gauge := func(name, help string) *telemetry.Gauge {
		return reg.Gauge(name, help, "node", "region").With(n.name, region)
	}
	h.promotions = counter("heat_promotions_total", "Keys promoted to hot-key replication.")
	h.demotions = counter("heat_demotions_total", "Hot keys demoted back to normal replication.")
	h.hotGets = counter("heat_hot_gets_total", "Gets served from a hot-key replica cache.")
	h.installs = counter("heat_hot_installs_total", "Hot replica copies installed from owners.")
	h.installErrs = counter("heat_install_errors_total", "Hot replica pushes that failed.")
	h.drops = counter("heat_hot_drops_total", "Hot replica copies dropped on demotion.")
	h.trackedG = gauge("heat_tracked_keys", "Keys in this node's exact heat top set.")
	h.hotG = gauge("heat_hot_keys", "Keys this node currently keeps promoted.")
	h.cachedG = gauge("heat_cached_replicas", "Foreign hot keys cached on this node.")
	return h
}

// observe charges one access to key in the heat sketch (nil-safe; called
// from the put and get paths).
func (h *heatTracker) observe(key string) {
	if h == nil {
		return
	}
	h.sketch.Observe(key)
}

// start launches the promotion/demotion loop.
func (h *heatTracker) start() {
	if h == nil {
		return
	}
	go func() {
		defer close(h.done)
		for {
			select {
			case <-h.stop:
				return
			case <-h.n.clk.After(h.interval):
				h.tick()
			}
		}
	}()
}

// stopLoop halts the loop. Safe to call repeatedly and on nil.
func (h *heatTracker) stopLoop() {
	if h == nil {
		return
	}
	h.stopOnce.Do(func() { close(h.stop) })
	<-h.done
}

// tick runs one heat round: age the sketch, retire promotions invalidated
// by a ring change, then promote newly hot keys and demote cooled ones.
func (h *heatTracker) tick() {
	h.sketch.Decay(heatDecayFactor, h.demote/4)
	now := h.n.clk.Now()

	h.mu.Lock()
	for k, t := range h.tombs {
		if now.Sub(t) > time.Duration(heatTombstoneLifetimes)*h.interval {
			delete(h.tombs, k)
		}
	}
	h.mu.Unlock()

	// A ring change moves ownership: every standing promotion may now point
	// at (or originate from) the wrong worker, so retire them all and let
	// the still-hot keys re-promote from their new owners next round.
	epoch := h.n.shards.ringEpoch()
	h.mu.Lock()
	epochChanged := epoch != h.lastEpoch
	h.lastEpoch = epoch
	var retire []string
	if epochChanged {
		for k := range h.hot {
			retire = append(retire, k)
		}
	}
	h.mu.Unlock()
	for _, k := range retire {
		h.demoteKey(k)
	}

	_, _, _, settled := h.n.shards.view()
	if settled && !epochChanged {
		for _, e := range h.sketch.Top(h.topK) {
			h.mu.Lock()
			_, promoted := h.hot[e.Key]
			h.mu.Unlock()
			switch {
			case !promoted && e.Rate >= h.promote && h.n.shards.ownsKey(e.Key):
				h.promoteKey(e.Key)
			case promoted && e.Rate < h.demote:
				h.demoteKey(e.Key)
			}
		}
		// Promoted keys that decayed out of the top set entirely are cold by
		// definition: demote them too.
		h.mu.Lock()
		var cooled []string
		for k := range h.hot {
			if h.sketch.Estimate(k) < h.demote {
				cooled = append(cooled, k)
			}
		}
		h.mu.Unlock()
		for _, k := range cooled {
			h.demoteKey(k)
		}
	}

	h.trackedG.Set(float64(h.sketch.Tracked()))
	h.mu.Lock()
	h.hotG.Set(float64(len(h.hot)))
	h.cachedG.Set(float64(len(h.cache)))
	h.mu.Unlock()
}

// replicaTargets picks where key's extra replicas go. Sharded instances
// spread over the next shards' in-region workers (each key normally lives
// on exactly one worker, which is where hot-key replication pays); an
// unsharded instance uses its RTT-nearest peers.
func (h *heatTracker) replicaTargets(key string) []string {
	cur, _, own, _ := h.n.shards.view()
	if cur != nil && cur.Shards() > 1 {
		shard := cur.Owner(key)
		if shard < 0 {
			shard = own
		}
		var out []string
		for i := 1; i <= h.replicas && i < cur.Shards(); i++ {
			w := cur.WorkerForShard(string(h.n.region), (shard+i)%cur.Shards())
			if w != "" && w != h.n.name {
				out = append(out, w)
			}
		}
		return out
	}
	peers := h.n.Peers()
	net := h.n.fabric.Network()
	sort.Slice(peers, func(i, j int) bool {
		return net.RTT(h.n.region, peers[i].Region) < net.RTT(h.n.region, peers[j].Region)
	})
	var out []string
	for _, p := range peers {
		if len(out) >= h.replicas {
			break
		}
		out = append(out, p.Name)
	}
	return out
}

// promoteKey pushes key's latest version to the chosen replica targets and
// records the promotion. Best effort: a target that cannot be reached is
// simply left out of the advertised replica set.
func (h *heatTracker) promoteKey(key string) {
	meta, err := h.n.local.Objects().Latest(key)
	if err != nil || meta.IsEC() {
		// Nothing stored locally yet, or the payload is a fragment bundle
		// (the EC chooser already keeps genuinely hot objects replicated).
		return
	}
	data, _, err := h.n.local.GetVersion(context.Background(), key, meta.Version)
	if err != nil {
		return
	}
	targets := h.replicaTargets(key)
	if len(targets) == 0 {
		return
	}
	installed := h.installTo(targets, meta, data)
	if len(installed) == 0 {
		return
	}
	h.mu.Lock()
	h.hot[key] = installed
	h.mu.Unlock()
	h.promotions.Inc()
	h.n.fabric.Events().Record("heat.promote", h.n.name,
		fmt.Sprintf("promoted hot key %q to %d extra replicas", key, len(installed)),
		map[string]string{"key": key, "replicas": strings.Join(installed, ",")})
}

// installTo pushes one version to each target, returning those that took it.
func (h *heatTracker) installTo(targets []string, meta object.Meta, data []byte) []string {
	payload, err := transport.Encode(HotInstallMsg{Meta: meta, Data: data, Owner: h.n.name})
	if err != nil {
		return nil
	}
	var ok []string
	for _, t := range targets {
		if _, err := h.n.ep.Call(context.Background(), t, MethodHotInstall, payload); err != nil {
			h.installErrs.Inc()
			continue
		}
		ok = append(ok, t)
	}
	return ok
}

// demoteKey retires a promotion: drop RPCs to every replica (tombstoned on
// the receiver) and forget the key locally.
func (h *heatTracker) demoteKey(key string) {
	h.mu.Lock()
	targets, ok := h.hot[key]
	delete(h.hot, key)
	h.mu.Unlock()
	if !ok {
		return
	}
	payload, err := transport.Encode(HotDropMsg{Key: key})
	if err == nil {
		for _, t := range targets {
			_, _ = h.n.ep.Call(context.Background(), t, MethodHotDrop, payload)
		}
	}
	h.demotions.Inc()
	h.n.fabric.Events().Record("heat.demote", h.n.name,
		fmt.Sprintf("demoted cooled key %q (%d replicas dropped)", key, len(targets)),
		map[string]string{"key": key})
}

// afterPut refreshes a promoted key's replicas with the new version, in the
// background (hot replicas are eventually consistent, like every other
// asynchronous propagation path in the system).
func (h *heatTracker) afterPut(key string, meta object.Meta, data []byte) {
	if h == nil {
		return
	}
	h.mu.Lock()
	targets, ok := h.hot[key]
	h.mu.Unlock()
	if !ok {
		return
	}
	d := append([]byte(nil), data...)
	go h.installTo(targets, meta, d)
}

// replicasFor reports the advertised replica set for a promoted key (nil
// when the key is not hot, or on an untracked node).
func (h *heatTracker) replicasFor(key string) []string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.hot[key]...)
}

// handleInstall stores an owner-pushed hot replica in the side cache. A
// tombstone from a recent drop wins over a racing (stale) install.
func (h *heatTracker) handleInstall(msg HotInstallMsg) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dropped := h.tombs[msg.Meta.Key]; dropped {
		return
	}
	if old, ok := h.cache[msg.Meta.Key]; ok && old.meta.Version > msg.Meta.Version {
		return // never replace a newer cached version with an older push
	}
	if _, ok := h.cache[msg.Meta.Key]; !ok && len(h.cache) >= hotCacheCap {
		return // cache full: refuse new keys rather than thrash
	}
	h.cache[msg.Meta.Key] = hotEntry{meta: msg.Meta, data: msg.Data, owner: msg.Owner}
	h.installs.Inc()
}

// handleDrop retires a cached replica and tombstones the key so a push that
// raced the drop cannot resurrect it.
func (h *heatTracker) handleDrop(key string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.cache[key]; ok {
		delete(h.cache, key)
		h.drops.Inc()
	}
	h.tombs[key] = h.n.clk.Now()
}

// serveHot answers a get from the hot replica cache, if key is cached.
func (h *heatTracker) serveHot(key string) ([]byte, object.Meta, bool) {
	if h == nil {
		return nil, object.Meta{}, false
	}
	h.mu.Lock()
	e, ok := h.cache[key]
	h.mu.Unlock()
	if !ok {
		return nil, object.Meta{}, false
	}
	h.hotGets.Inc()
	return e.data, e.meta, true
}

// heatStats is the tracker's contribution to NodeStats.
type heatStats struct {
	tracked    int
	hot        int
	cached     int
	promotions int64
	demotions  int64
	hotGets    int64
	top        []HeatKey
}

// statsSnapshot summarizes the tracker (zero value when h is nil).
func (h *heatTracker) statsSnapshot() heatStats {
	if h == nil {
		return heatStats{}
	}
	var s heatStats
	s.tracked = h.sketch.Tracked()
	h.mu.Lock()
	s.hot = len(h.hot)
	s.cached = len(h.cache)
	h.mu.Unlock()
	s.promotions = h.promotions.Value()
	s.demotions = h.demotions.Value()
	s.hotGets = h.hotGets.Value()
	for _, e := range h.sketch.Top(h.topK) {
		s.top = append(s.top, HeatKey{Key: e.Key, Rate: e.Rate})
	}
	return s
}

package wiera

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/tenant"
)

// tenantCluster starts a single-region instance with two tenants and returns
// one client per tenant.
func tenantCluster(t *testing.T, id string, extraParams map[string]string) (*cluster, *Client, *Client) {
	t.Helper()
	c := newCluster(t, simnet.USWest)
	params := map[string]string{"tenants": "gold,bronze"}
	for k, v := range extraParams {
		params[k] = v
	}
	c.start(t, id, "EventualConsistency", params)
	gold, err := NewTenantClient(c.fabric, "cli-"+id+"-gold", simnet.USWest, c.server.Name(), id, "gold")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gold.Close)
	bronze, err := NewTenantClient(c.fabric, "cli-"+id+"-bronze", simnet.USWest, c.server.Name(), id, "bronze")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bronze.Close)
	return c, gold, bronze
}

// Two tenants writing the same application key must land on disjoint stored
// keys: each reads back its own value, and neither tenant's removal touches
// the other's data.
func TestTenantKeyIsolation(t *testing.T) {
	c, gold, bronze := tenantCluster(t, "iso", nil)
	ctx := context.Background()
	const key = "shared-name"
	if _, err := gold.Put(ctx, key, []byte("gold-value")); err != nil {
		t.Fatal(err)
	}
	if _, err := bronze.Put(ctx, key, []byte("bronze-value")); err != nil {
		t.Fatal(err)
	}
	if data, _, err := gold.Get(ctx, key); err != nil || string(data) != "gold-value" {
		t.Fatalf("gold read = %q, %v; want gold-value", data, err)
	}
	if data, _, err := bronze.Get(ctx, key); err != nil || string(data) != "bronze-value" {
		t.Fatalf("bronze read = %q, %v; want bronze-value", data, err)
	}

	// The stored keyspace is tenant-qualified: every stored key parses back
	// to exactly one tenant, and both tenants' families are present.
	node := c.node(t, "iso/us-west")
	families := map[string]int{}
	for _, k := range node.local.Objects().Keys() {
		id, bare := tenant.Split(k)
		if bare != key {
			t.Fatalf("stored key %q: bare name %q, want %q", k, bare, key)
		}
		families[id]++
	}
	if families["gold"] != 1 || families["bronze"] != 1 {
		t.Fatalf("stored key families = %v, want one gold and one bronze", families)
	}

	// Removing bronze's key must not affect gold's.
	if err := bronze.Remove(ctx, key); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bronze.Get(ctx, key); err == nil {
		t.Fatal("bronze read succeeded after remove")
	}
	if data, _, err := gold.Get(ctx, key); err != nil || string(data) != "gold-value" {
		t.Fatalf("gold read after bronze remove = %q, %v", data, err)
	}
}

// An untenanted client on a tenanted instance keeps the pre-tenancy key
// encoding and maps to the default tenant.
func TestTenantDefaultCompat(t *testing.T) {
	c, _, _ := tenantCluster(t, "compat", nil)
	ctx := context.Background()
	plain, err := NewClient(c.fabric, "cli-compat-plain", simnet.USWest, c.server.Name(), "compat")
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.Put(ctx, "bare-key", []byte("v")); err != nil {
		t.Fatal(err)
	}
	node := c.node(t, "compat/us-west")
	found := false
	for _, k := range node.local.Objects().Keys() {
		if k == "bare-key" {
			found = true
		}
		if strings.HasPrefix(k, "tn:") {
			id, _ := tenant.Split(k)
			if id == tenant.DefaultID {
				t.Fatalf("default-tenant key stored qualified: %q", k)
			}
		}
	}
	if !found {
		t.Fatal("untenanted put did not store the bare key unchanged")
	}
}

// A quota-exceeded NACK must surface immediately as the typed error without
// burning the retry budget (no "retries exhausted" wrapping, no backoff).
func TestQuotaExceededFailsFast(t *testing.T) {
	_, gold, bronze := tenantCluster(t, "quota", map[string]string{
		// Practically zero refill: one burst token, then every op NACKs.
		"tenantIOPS:gold": "0.0001",
	})
	ctx := context.Background()
	// First put may consume the single burst token.
	_, _ = gold.Put(ctx, "k0", []byte("v"))
	var nack error
	for i := 0; i < 5; i++ {
		if _, err := gold.Put(ctx, fmt.Sprintf("k%d", i+1), []byte("v")); err != nil {
			nack = err
			break
		}
	}
	if nack == nil {
		t.Fatal("gold never hit its IOPS quota")
	}
	qe := tenant.AsQuotaExceeded(nack)
	if qe == nil {
		t.Fatalf("error %v is not a typed quota NACK", nack)
	}
	if qe.Tenant != "gold" || qe.Kind != "iops" {
		t.Fatalf("NACK = %+v, want tenant=gold kind=iops", qe)
	}
	// Fail fast: the client must not have burned its retry budget on the
	// deterministic NACK.
	if strings.Contains(nack.Error(), "retries exhausted") {
		t.Fatalf("quota NACK burned the retry budget: %v", nack)
	}
	// The unthrottled tenant is unaffected.
	if _, err := bronze.Put(ctx, "bk", []byte("v")); err != nil {
		t.Fatalf("bronze put failed while gold throttled: %v", err)
	}
}

// Byte-rate quotas throttle large writes independently of IOPS.
func TestByteQuotaThrottles(t *testing.T) {
	c, gold, _ := tenantCluster(t, "bq", map[string]string{
		"tenantBytes:gold": "64",
	})
	ctx := context.Background()
	big := make([]byte, 256)
	var sawNACK bool
	for i := 0; i < 4; i++ {
		if _, err := gold.Put(ctx, fmt.Sprintf("big%d", i), big); err != nil {
			qe := tenant.AsQuotaExceeded(err)
			if qe == nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if qe.Kind != "bytes" {
				t.Fatalf("NACK kind = %q, want bytes", qe.Kind)
			}
			sawNACK = true
			break
		}
	}
	if !sawNACK {
		t.Fatal("256B puts never tripped the 64B/s byte quota")
	}
	node := c.node(t, "bq/us-west")
	if node.tenants.state("gold").thrBytes.Value() == 0 {
		t.Fatal("tenant_throttled_total{kind=bytes} stayed zero")
	}
}

// Throttles and per-tenant accounting must surface through NodeStats (the
// wieractl tenants / top path) and the instance health report.
func TestTenantStatsSurface(t *testing.T) {
	c, gold, bronze := tenantCluster(t, "tstats", map[string]string{
		"tenantIOPS:gold": "0.0001",
	})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		_, _ = gold.Put(ctx, fmt.Sprintf("g%d", i), []byte("v"))
	}
	if _, err := bronze.Put(ctx, "b0", []byte("v")); err != nil {
		t.Fatal(err)
	}
	st, err := c.server.CollectStats("tstats")
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]TenantStats{}
	for _, ns := range st.Nodes {
		for _, ten := range ns.Tenants {
			agg := byID[ten.ID]
			agg.ID = ten.ID
			agg.Ops += ten.Ops
			agg.Throttled += ten.Throttled
			byID[ten.ID] = agg
		}
	}
	if byID["gold"].Throttled == 0 {
		t.Fatalf("gold throttles not in NodeStats: %+v", byID)
	}
	if byID["bronze"].Ops == 0 {
		t.Fatalf("bronze ops not in NodeStats: %+v", byID)
	}
	if !strings.Contains(st.Render(), "tenant gold") {
		t.Fatal("InstanceStats.Render misses the tenants section")
	}
	var found bool
	for _, h := range c.server.Health() {
		if h.ID == "tstats" {
			found = true
			if h.Tenants != 3 { // gold, bronze, default
				t.Fatalf("health tenants = %d, want 3", h.Tenants)
			}
		}
	}
	if !found {
		t.Fatal("instance missing from health report")
	}
}

// Anti-entropy Merkle sync must stay per-tenant-correct: replicas converge
// on the qualified keys, and no key crosses into another tenant's family.
func TestTenantRepairStaysInFamily(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	c.startSrc(t, "trep", eventual2Src, map[string]string{
		"tenants": "gold,bronze", "queueFlush": "100ms", "antiEntropy": "300ms"})
	gold, err := NewTenantClient(c.fabric, "cli-trep-gold", simnet.USWest, c.server.Name(), "trep", "gold")
	if err != nil {
		t.Fatal(err)
	}
	defer gold.Close()
	bronze, err := NewTenantClient(c.fabric, "cli-trep-bronze", simnet.USWest, c.server.Name(), "trep", "bronze")
	if err != nil {
		t.Fatal(err)
	}
	defer bronze.Close()
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := gold.Put(ctx, fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("g%d", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := bronze.Put(ctx, fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	east := c.node(t, "trep/us-east")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if east.local.Objects().Len() >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("east converged to %d keys, want 20", east.local.Objects().Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Every replicated key must still parse to its original tenant with the
	// tenant's own value — sync moved whole qualified keys, never blended
	// families.
	for i := 0; i < 10; i++ {
		bare := fmt.Sprintf("k%d", i)
		for id, want := range map[string]string{"gold": fmt.Sprintf("g%d", i), "bronze": fmt.Sprintf("b%d", i)} {
			data, meta, err := east.local.Get(ctx, tenant.Qualify(id, bare))
			if err != nil {
				t.Fatalf("east missing %s/%s after sync: %v", id, bare, err)
			}
			if string(data) != want {
				t.Fatalf("east %s/%s = %q, want %q (cross-tenant leakage)", id, bare, data, want)
			}
			if gotID, gotBare := tenant.Split(meta.Key); gotID != id || gotBare != bare {
				t.Fatalf("meta key %q parses to (%s,%s), want (%s,%s)", meta.Key, gotID, gotBare, id, bare)
			}
		}
	}
}

// The weighted-fair scheduler and admission must not deadlock forwarded
// operations: a replication fan-out lands on peers as forwarded puts that
// bypass tenancy, so a saturated instance still drains.
func TestTenantForwardedOpsBypass(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	c.startSrc(t, "fwd", eventual2Src, map[string]string{
		"tenants": "gold", "tenantSlots": "1", "queueFlush": "50ms"})
	gold, err := NewTenantClient(c.fabric, "cli-fwd-gold", simnet.USWest, c.server.Name(), "fwd", "gold")
	if err != nil {
		t.Fatal(err)
	}
	defer gold.Close()
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := gold.Put(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	west := c.node(t, "fwd/us-west")
	west.FlushQueue()
	east := c.node(t, "fwd/us-east")
	deadline := time.Now().Add(5 * time.Second)
	for east.local.Objects().Len() < 20 {
		if time.Now().After(deadline) {
			t.Fatalf("east has %d keys, want 20 — forwarded ops starved", east.local.Objects().Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

package wiera

import (
	"sync"
	"time"

	"repro/internal/flight"
	"repro/internal/policy"
)

// sloMonitor implements SLOViolation monitoring: it receives every SLO
// engine evaluation (flight.Status) and feeds threshold events of type
// "slo", making burn-rate alerts first-class policy triggers alongside
// LatencyMonitoring ("put") and RequestsMonitoring ("primary"). A policy
// reacts with e.g.
//
//	event(threshold.type == slo) : response {
//	    if (threshold.burnRate >= 2 && threshold.period > 30s) {
//	        change_policy(what: consistency, to: EventualConsistency);
//	    }
//	}
//
// Bound attributes: threshold.slo (objective name), threshold.burnRate
// (min of the fast/slow window burn rates), threshold.violation (whether
// the multi-window alert is firing), threshold.period (how long the body
// has continuously selected the same change target — same semantics as the
// other monitors). A nil *sloMonitor no-ops, so nodes without objectives
// pay nothing.
type sloMonitor struct {
	n *Node

	mu            sync.Mutex
	streaks       map[string]*sloStreak // per objective name
	pendingChange bool
}

// sloStreak tracks how long one objective's evaluations have continuously
// selected the same change target.
type sloStreak struct {
	target string
	start  time.Time
}

func newSLOMonitor(n *Node) *sloMonitor {
	return &sloMonitor{n: n, streaks: make(map[string]*sloStreak)}
}

// reset clears streak and pending state (called when a policy change
// commits or the primary moves).
func (m *sloMonitor) reset() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.streaks = make(map[string]*sloStreak)
	m.pendingChange = false
	m.mu.Unlock()
}

// observe is the SLO engine's OnStatus callback.
func (m *sloMonitor) observe(st flight.Status) {
	if m == nil {
		return
	}
	for _, ev := range m.n.controlEvents {
		if ev.Kind != policy.KindThreshold || ev.Monitor != "slo" {
			continue
		}
		m.evaluate(ev, st)
	}
}

func (m *sloMonitor) evaluate(ev *policy.CompiledEvent, st flight.Status) {
	now := m.n.clk.Now()
	bind := func(env *policy.MapEnv, period time.Duration) {
		env.Set("threshold.type", policy.IdentVal("slo"))
		env.Set("threshold.slo", policy.IdentVal(st.Objective))
		env.Set("threshold.burnRate", policy.NumberVal(st.Burn))
		env.Set("threshold.violation", policy.BoolVal(st.Firing))
		env.Set("threshold.period", policy.DurationVal(period))
	}

	// Probe: which target would this status choose, ignoring period?
	probeEnv := policy.NewMapEnv()
	bind(probeEnv, probePeriod)
	probe := &changeCapture{}
	if _, err := ev.Fire(probeEnv, probe); err != nil {
		return
	}

	m.mu.Lock()
	sk := m.streaks[st.Objective]
	if sk == nil {
		sk = &sloStreak{start: now}
		m.streaks[st.Objective] = sk
	}
	if probe.to != sk.target {
		sk.target = probe.to
		sk.start = now
	}
	streak := now.Sub(sk.start)
	pending := m.pendingChange
	m.mu.Unlock()

	if probe.to == "" || pending {
		return
	}
	// Real evaluation with the true streak duration.
	realEnv := policy.NewMapEnv()
	bind(realEnv, streak)
	capture := &changeCapture{}
	if _, err := ev.Fire(realEnv, capture); err != nil || capture.to == "" {
		return
	}
	if capture.what == "consistency" && capture.to == m.n.PolicyName() {
		return // already on the requested policy
	}
	m.mu.Lock()
	m.pendingChange = true
	m.mu.Unlock()
	// Asynchronous for the same reason as the other monitors: the change
	// request round-trips to the Wiera server, which freezes this node's
	// gate, and the engine tick must not block behind it.
	go func() {
		if err := m.n.requestPolicyChangeVia(capture.what, capture.to, "slo"); err != nil {
			m.mu.Lock()
			m.pendingChange = false
			m.mu.Unlock()
		}
	}()
}

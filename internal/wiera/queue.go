package wiera

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/object"
)

// updateQueue implements the queue response (Sec 3.2.3): updates enqueued
// for lazy background distribution to other replicas. A newer version of a
// key supersedes an older queued one (only the newest matters under
// last-writer-wins), reducing update traffic. Applications choose the
// flush period in NodeConfig ("applications can specify how frequently
// queued updates need to be distributed", Sec 3.3.1).
type updateQueue struct {
	n      *Node
	period time.Duration
	// supersede drops older queued versions of a key when a newer one is
	// enqueued (LWW makes only the newest matter). Disabled only by the
	// ablation that quantifies the saved update traffic.
	supersede bool

	// flushMu serializes whole flush operations (drain + delivery), so a
	// caller returning from flushNow knows every previously queued update
	// has been delivered — prepareChange relies on this drain guarantee.
	flushMu sync.Mutex

	mu      sync.Mutex
	pending map[string]UpdateMsg // key -> newest queued update
	order   []string             // FIFO of keys with pending updates
	stopCh  chan struct{}
	started bool
}

func newUpdateQueue(n *Node, period time.Duration, supersede bool) *updateQueue {
	return &updateQueue{n: n, period: period, supersede: supersede, pending: make(map[string]UpdateMsg)}
}

// enqueue registers an update for background propagation.
func (q *updateQueue) enqueue(msg UpdateMsg) {
	q.mu.Lock()
	if !q.supersede {
		// Ablation mode: every update is shipped individually.
		key := fmt.Sprintf("%s#%d", msg.Meta.Key, len(q.order))
		q.order = append(q.order, key)
		q.pending[key] = msg
		depth := len(q.pending)
		q.mu.Unlock()
		q.n.queueDepth.Set(float64(depth))
		return
	}
	cur, ok := q.pending[msg.Meta.Key]
	if !ok {
		q.order = append(q.order, msg.Meta.Key)
	}
	// LWW-aware supersession: only a strictly newer version replaces the
	// queued one, so a failed flush re-enqueueing an old version cannot
	// clobber an update the application made in the meantime. The key is
	// never appended to order twice, so a hot key re-enqueued in a loop
	// keeps the FIFO bounded by the number of distinct keys.
	if !ok || object.Newer(msg.Meta, cur.Meta) {
		q.pending[msg.Meta.Key] = msg
	}
	depth := len(q.pending)
	q.mu.Unlock()
	q.n.queueDepth.Set(float64(depth))
}

// Len reports how many keys have queued updates.
func (q *updateQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// start launches the background flusher.
func (q *updateQueue) start() {
	q.mu.Lock()
	if q.started {
		q.mu.Unlock()
		return
	}
	q.started = true
	q.stopCh = make(chan struct{})
	stop := q.stopCh
	q.mu.Unlock()
	go q.loop(stop)
}

func (q *updateQueue) loop(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-q.n.clk.After(q.period):
			q.flushNow()
		}
	}
}

// flushNow synchronously distributes all queued updates; on return every
// update queued before the call has been delivered (or its peer found
// unreachable).
func (q *updateQueue) flushNow() {
	q.flushMu.Lock()
	defer q.flushMu.Unlock()
	q.mu.Lock()
	if len(q.pending) == 0 {
		q.mu.Unlock()
		return
	}
	batch := make([]UpdateMsg, 0, len(q.order))
	for _, key := range q.order {
		if msg, ok := q.pending[key]; ok {
			batch = append(batch, msg)
		}
	}
	q.pending = make(map[string]UpdateMsg)
	q.order = q.order[:0]
	q.mu.Unlock()
	q.n.queueDepth.Set(0)

	for _, msg := range batch {
		if !q.n.shards.ownsKey(msg.Meta.Key) {
			// A rebalance moved this key away between enqueue and flush. The
			// group fan-out below still reaches the other regions (their old
			// owners redirect strays onward), but no group member covers this
			// node's own region anymore — hand the update to the in-region
			// owner directly so it cannot be stranded here.
			_, _ = q.n.shards.applyOrForward(context.Background(), msg)
		}
		start := q.n.clk.Now()
		err := q.n.fanOutSync(context.Background(), msg)
		if err == nil {
			// Feed the replication latency to the latency monitor and the
			// replication histogram (which the SLO put objective draws
			// from): under eventual consistency this is the signal that
			// tells the DynamicConsistency / SLOSwitch policies whether the
			// network has recovered.
			elapsed := q.n.clk.Since(start)
			q.n.latMon.observe(elapsed)
			q.n.ReplLatency.Record(elapsed)
		} else if q.n.repair == nil {
			// fanOutSync hinted the unreachable peers when repair is
			// enabled; without it, re-enqueue so the update is retried on
			// the next flush instead of being lost. LWW supersession keeps
			// the retry from clobbering newer queued versions.
			q.enqueue(msg)
		}
	}
}

// stop terminates the flusher without flushing.
func (q *updateQueue) stop() {
	q.mu.Lock()
	if q.started {
		close(q.stopCh)
		q.started = false
	}
	q.mu.Unlock()
}

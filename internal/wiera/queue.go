package wiera

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/flight"
	"repro/internal/object"
)

// updateQueue implements the queue response (Sec 3.2.3): updates enqueued
// for lazy background distribution to other replicas. A newer version of a
// key supersedes an older queued one (only the newest matters under
// last-writer-wins), reducing update traffic. Applications choose the
// flush period in NodeConfig ("applications can specify how frequently
// queued updates need to be distributed", Sec 3.3.1).
type updateQueue struct {
	n      *Node
	period time.Duration
	// supersede drops older queued versions of a key when a newer one is
	// enqueued (LWW makes only the newest matter). Disabled only by the
	// ablation that quantifies the saved update traffic.
	supersede bool

	// flushMu serializes whole flush operations (drain + delivery), so a
	// caller returning from flushNow knows every previously queued update
	// has been delivered — prepareChange relies on this drain guarantee.
	flushMu sync.Mutex

	mu      sync.Mutex
	pending map[string]UpdateMsg // key -> newest queued update
	order   []string             // FIFO of keys with pending updates
	stopCh  chan struct{}
	started bool
}

func newUpdateQueue(n *Node, period time.Duration, supersede bool) *updateQueue {
	return &updateQueue{n: n, period: period, supersede: supersede, pending: make(map[string]UpdateMsg)}
}

// enqueue registers an update for background propagation.
func (q *updateQueue) enqueue(msg UpdateMsg) {
	q.mu.Lock()
	if !q.supersede {
		// Ablation mode: every update is shipped individually.
		key := fmt.Sprintf("%s#%d", msg.Meta.Key, len(q.order))
		q.order = append(q.order, key)
		q.pending[key] = msg
		// The gauge is set while still holding q.mu: a Set after unlock
		// could clobber a concurrent flush's (or enqueue's) newer depth.
		q.n.queueDepth.Set(float64(len(q.pending)))
		q.mu.Unlock()
		return
	}
	cur, ok := q.pending[msg.Meta.Key]
	if !ok {
		q.order = append(q.order, msg.Meta.Key)
	}
	// LWW-aware supersession: only a strictly newer version replaces the
	// queued one, so a failed flush re-enqueueing an old version cannot
	// clobber an update the application made in the meantime. The key is
	// never appended to order twice, so a hot key re-enqueued in a loop
	// keeps the FIFO bounded by the number of distinct keys.
	if !ok || object.Newer(msg.Meta, cur.Meta) {
		q.pending[msg.Meta.Key] = msg
	}
	// Under q.mu for the same reason as above: gauge updates must be
	// ordered with the depth changes they report.
	q.n.queueDepth.Set(float64(len(q.pending)))
	q.mu.Unlock()
}

// Len reports how many keys have queued updates.
func (q *updateQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// start launches the background flusher.
func (q *updateQueue) start() {
	q.mu.Lock()
	if q.started {
		q.mu.Unlock()
		return
	}
	q.started = true
	q.stopCh = make(chan struct{})
	stop := q.stopCh
	q.mu.Unlock()
	go q.loop(stop)
}

func (q *updateQueue) loop(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-q.n.clk.After(q.period):
			q.flushNow()
		}
	}
}

// flushNow synchronously distributes all queued updates; on return every
// update queued before the call has been delivered (or its peer found
// unreachable).
func (q *updateQueue) flushNow() {
	q.flushMu.Lock()
	defer q.flushMu.Unlock()
	q.mu.Lock()
	if len(q.pending) == 0 {
		q.mu.Unlock()
		return
	}
	batch := make([]UpdateMsg, 0, len(q.order))
	for _, key := range q.order {
		if msg, ok := q.pending[key]; ok {
			batch = append(batch, msg)
		}
	}
	q.pending = make(map[string]UpdateMsg)
	q.order = q.order[:0]
	// Gauge update stays inside q.mu: setting it after unlock would race a
	// concurrent enqueue and clobber its (correct, non-zero) depth.
	q.n.queueDepth.Set(0)
	q.mu.Unlock()

	for _, msg := range batch {
		if !q.n.shards.ownsKey(msg.Meta.Key) {
			// A rebalance moved this key away between enqueue and flush. The
			// group fan-out below still reaches the other regions (their old
			// owners redirect strays onward), but no group member covers this
			// node's own region anymore — hand the update to the in-region
			// owner directly so it cannot be stranded here.
			_, _ = q.n.shards.applyOrForward(context.Background(), msg)
		}
	}

	if q.n.batch.enabled() {
		// Group commit: all peers in parallel, one RPC per chunk, so the
		// flush pays the WAN round trip per chunk rather than per key. The
		// batcher observes per-peer push latency into the latency monitor
		// and the replication histogram (the DynamicConsistency / SLOSwitch
		// recovery signal the per-key path used to feed).
		fa := q.n.flightRec.Begin("repl-flush", "", q.n.name, string(q.n.region), q.n.PolicyName())
		ctx := flight.NewContext(context.Background(), fa)
		failed := q.n.batch.fanOut(ctx, batch)
		var retErr error
		for i, msg := range batch {
			if !failed[i] {
				continue
			}
			if retErr == nil {
				retErr = fmt.Errorf("wiera: flush: %d of %d updates failed", countTrue(failed), len(batch))
			}
			// Failed entries were hinted per peer by the batcher when repair
			// is enabled; without it, re-enqueue so they retry next flush.
			// LWW supersession keeps the retry from clobbering newer queued
			// versions.
			if q.n.repair == nil {
				q.enqueue(msg)
			}
		}
		fa.End(retErr)
		return
	}

	// Per-key ablation (maxBatchBytes: false): one fan-out RPC per queued
	// update, serially — the baseline the batchflush experiment measures
	// against.
	for _, msg := range batch {
		start := q.n.clk.Now()
		err := q.n.fanOutSync(context.Background(), msg)
		if err == nil {
			elapsed := q.n.clk.Since(start)
			q.n.latMon.observe(elapsed)
			q.n.ReplLatency.Record(elapsed)
		} else if q.n.repair == nil {
			q.enqueue(msg)
		}
	}
}

// countTrue counts set flags (failure accounting for flush flight records).
func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// stop terminates the flusher without flushing.
func (q *updateQueue) stop() {
	q.mu.Lock()
	if q.started {
		close(q.stopCh)
		q.started = false
	}
	q.mu.Unlock()
}

package wiera

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/ec"
	"repro/internal/simnet"
)

// ecStripeSrc is a three-region policy whose insert handler runs the
// per-object replication/EC chooser (memory-only tiers keep the byte
// accounting exact).
const ecStripeSrc = `
Wiera ECStripe {
	Region1 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 5G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 5G}};
	Region3 = {name: LowLatencyInstance, region: eu-west,
		tier1 = {name: memory, size: 5G}};
	event(insert.into) : response {
		stripe(what: insert.object, to: all_regions);
	}
}`

// ecTestPayload is deterministic so reconstruction is checked bytewise.
func ecTestPayload(key string, size int) []byte {
	out := make([]byte, size)
	for i := range out {
		out[i] = byte(i)*31 + byte(len(key)) + key[i%len(key)]
	}
	return out
}

// waitECBundle polls until n holds an EC version of key.
func waitECBundle(t *testing.T, n *Node, key string, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if m, err := n.local.Objects().Latest(key); err == nil && m.IsEC() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never received an EC bundle for %s", n.Name(), key)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestECStripePlacesFragmentsAndReconstructs(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast, simnet.EUWest)
	c.startSrc(t, "ec", ecStripeSrc, map[string]string{
		"ecThresholdBytes": "4K", "antiEntropy": "500ms"})
	west := c.node(t, "ec/us-west")
	east := c.node(t, "ec/us-east")
	eu := c.node(t, "ec/eu-west")
	ctx := context.Background()

	want := ecTestPayload("big", 32<<10)
	if _, err := west.Put(ctx, "big", want, nil); err != nil {
		t.Fatal(err)
	}
	// Every member ends up with exactly its rank's fragments, never a full
	// copy. Members sort lexically: eu-west=0, us-east=1, us-west=2.
	ranks := map[*Node]int{eu: 0, east: 1, west: 2}
	for n, rank := range ranks {
		waitECBundle(t, n, "big", 5*time.Second)
		m, err := n.local.Objects().Latest("big")
		if err != nil {
			t.Fatal(err)
		}
		if m.ECK != 4 || m.ECM != 2 {
			t.Fatalf("%s scheme = %d+%d, want 4+2", n.Name(), m.ECK, m.ECM)
		}
		wantFrags := ec.Assign(6, 3, rank)
		if fmt.Sprint(m.ECFrags) != fmt.Sprint(wantFrags) {
			t.Fatalf("%s holds fragments %v, want %v", n.Name(), m.ECFrags, wantFrags)
		}
		if m.StoredBytes() >= m.Size {
			t.Fatalf("%s stores %d bytes for a %d-byte object: full copy, not a bundle",
				n.Name(), m.StoredBytes(), m.Size)
		}
	}
	// Reads decode back to the original bytes on every member, and the
	// returned meta must not leak the bundle layout.
	for n := range ranks {
		got, m, err := n.Get(ctx, "big")
		if err != nil {
			t.Fatalf("%s get: %v", n.Name(), err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s reconstructed wrong bytes (%d vs %d)", n.Name(), len(got), len(want))
		}
		if len(m.ECFrags) != 0 {
			t.Fatalf("%s returned meta still carries fragment list %v", n.Name(), m.ECFrags)
		}
	}

	// Below the size threshold the chooser keeps full replicas.
	if _, err := west.Put(ctx, "small", []byte("tiny"), nil); err != nil {
		t.Fatal(err)
	}
	m, err := west.local.Objects().Latest("small")
	if err != nil {
		t.Fatal(err)
	}
	if m.IsEC() {
		t.Fatal("chooser erasure-coded an object below the size threshold")
	}
}

// TestECPartitionHealConvergence severs one region, keeps writing and
// reading, and checks the paper's durability story under EC: acked writes
// survive (ISSUE acceptance: zero lost acked writes), reads during the
// loss reconstruct from parity, and repair re-delivers the lost region's
// fragments — not full object copies.
func TestECPartitionHealConvergence(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast, simnet.EUWest)
	c.startSrc(t, "ecp", ecStripeSrc, map[string]string{
		"ecThresholdBytes": "4K", "antiEntropy": "500ms"})
	west := c.node(t, "ecp/us-west")
	east := c.node(t, "ecp/us-east")
	eu := c.node(t, "ecp/eu-west")
	ctx := context.Background()

	payload := func(i int) []byte { return ecTestPayload(fmt.Sprintf("k%d", i), 32<<10) }
	baseKey := func(i int) string { return fmt.Sprintf("base-%d", i) }
	for i := 0; i < 5; i++ {
		if _, err := west.Put(ctx, baseKey(i), payload(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		waitECBundle(t, eu, baseKey(i), 5*time.Second)
	}

	// Full region loss: eu-west drops off both links. eu held data
	// fragments 0 and 3, so surviving reads must do real parity math.
	c.net.Partition(simnet.USWest, simnet.EUWest)
	c.net.Partition(simnet.USEast, simnet.EUWest)

	partKey := func(i int) string { return fmt.Sprintf("part-%d", i) }
	for i := 0; i < 5; i++ {
		if _, err := west.Put(ctx, partKey(i), payload(100+i), nil); err != nil {
			t.Fatalf("put during region loss not acked: %v", err)
		}
	}
	for i := 0; i < 5; i++ {
		got, _, err := west.Get(ctx, baseKey(i))
		if err != nil {
			t.Fatalf("read of %s during region loss: %v", baseKey(i), err)
		}
		if !bytes.Equal(got, payload(i)) {
			t.Fatalf("%s reconstructed wrong bytes during region loss", baseKey(i))
		}
	}
	_, _, recon, _, _, _ := west.ecm.statsSnapshot()
	if recon == 0 {
		t.Fatal("reads during region loss never exercised parity reconstruction")
	}

	// Heal: hint replay must deliver eu-west its own fragment bundles of
	// the partition-era writes — zero lost acked writes, and the bundles
	// arrive as fragments, not full copies.
	c.net.Heal(simnet.USWest, simnet.EUWest)
	c.net.Heal(simnet.USEast, simnet.EUWest)
	for i := 0; i < 5; i++ {
		waitECBundle(t, eu, partKey(i), 5*time.Second)
	}
	for i := 0; i < 5; i++ {
		m, err := eu.local.Objects().Latest(partKey(i))
		if err != nil {
			t.Fatalf("acked write %s lost on healed region: %v", partKey(i), err)
		}
		wantFrags := ec.Assign(6, 3, 0)
		if fmt.Sprint(m.ECFrags) != fmt.Sprint(wantFrags) {
			t.Fatalf("healed region holds fragments %v of %s, want %v",
				m.ECFrags, partKey(i), wantFrags)
		}
		if m.StoredBytes() >= m.Size {
			t.Fatalf("repair shipped %s as a full copy (%d of %d bytes)",
				partKey(i), m.StoredBytes(), m.Size)
		}
	}
	waitConverged(t, west, east, 5*time.Second)
	waitConverged(t, west, eu, 5*time.Second)

	// After heal, reads on the recovered region decode every acked write.
	for i := 0; i < 5; i++ {
		got, _, err := eu.Get(ctx, partKey(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload(100+i)) {
			t.Fatalf("%s wrong bytes on healed region", partKey(i))
		}
	}
}

// TestECFragmentRegenerationOnForeignBundle drops a member's bundle
// entirely and hands it a Merkle-style push carrying a survivor's own
// (foreign) bundle: the repair path must regenerate the member's assigned
// fragments from parity instead of installing the foreign bundle or a
// full copy. Anti-entropy is off so no background replay races the
// direct applyRepair call.
func TestECFragmentRegenerationOnForeignBundle(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast, simnet.EUWest)
	c.startSrc(t, "ecr", ecStripeSrc, map[string]string{
		"ecThresholdBytes": "4K", "antiEntropy": "false"})
	west := c.node(t, "ecr/us-west")
	eu := c.node(t, "ecr/eu-west")
	ctx := context.Background()

	want := ecTestPayload("lost", 32<<10)
	if _, err := west.Put(ctx, "lost", want, nil); err != nil {
		t.Fatal(err)
	}
	waitECBundle(t, eu, "lost", 5*time.Second)
	if err := eu.local.Remove(ctx, "lost"); err != nil {
		t.Fatal(err)
	}

	// What a Merkle sync pushes: the sender's stored bundle, fragments
	// 2 and 5 — not the receiver's 0 and 3.
	u, ok := (nodeStore{west}).Load("lost")
	if !ok {
		t.Fatal("west lost its own bundle")
	}
	if fmt.Sprint(u.Meta.ECFrags) != fmt.Sprint(ec.Assign(6, 3, 2)) {
		t.Fatalf("west's bundle holds %v, want %v", u.Meta.ECFrags, ec.Assign(6, 3, 2))
	}
	if !eu.ecm.applyRepair(u) {
		t.Fatal("applyRepair rejected the foreign bundle")
	}
	m, err := eu.local.Objects().Latest("lost")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(m.ECFrags) != fmt.Sprint(ec.Assign(6, 3, 0)) {
		t.Fatalf("regenerated fragments %v, want %v", m.ECFrags, ec.Assign(6, 3, 0))
	}
	if m.StoredBytes() >= m.Size {
		t.Fatalf("regeneration stored %d of %d bytes: full copy", m.StoredBytes(), m.Size)
	}
	got, _, err := eu.Get(ctx, "lost")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("regenerated bundle decodes to wrong bytes")
	}
	_, _, _, frags, _, _ := eu.ecm.statsSnapshot()
	if frags == 0 {
		t.Fatal("ec_fragments_repaired_total never incremented")
	}
}

// TestECHedgedGatherCancelsLosers checks the hedged fragment fan-out's
// cancellation: under the 4+2 scheme each member holds 2 fragments, so a
// reader's own bundle plus the FIRST peer answer already completes the
// k-set — the other in-flight request must be canceled and counted.
func TestECHedgedGatherCancelsLosers(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast, simnet.EUWest)
	c.startSrc(t, "ech", ecStripeSrc, map[string]string{
		"ecThresholdBytes": "4K", "antiEntropy": "false"})
	west := c.node(t, "ech/us-west")
	east := c.node(t, "ech/us-east")
	eu := c.node(t, "ech/eu-west")
	ctx := context.Background()

	want := ecTestPayload("hedge", 32<<10)
	if _, err := west.Put(ctx, "hedge", want, nil); err != nil {
		t.Fatal(err)
	}
	waitECBundle(t, east, "hedge", 5*time.Second)
	waitECBundle(t, eu, "hedge", 5*time.Second)

	got, _, err := eu.Get(ctx, "hedge")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("hedged gather decoded wrong bytes")
	}
	_, _, _, _, _, cancels := eu.ecm.statsSnapshot()
	if cancels == 0 {
		t.Fatal("ec_gather_cancels_total never incremented: losing hedge not canceled")
	}
}

package wiera

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/object"
	"repro/internal/ring"
	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/internal/transport"
)

// clientMaxAttempts bounds one logical operation's retries: transient
// transport failures and wrong-shard map refreshes share the same budget,
// so a flapping instance cannot trap a caller in a retry loop.
const clientMaxAttempts = 4

// clientRetryBase is the first backoff step; each retry doubles it and adds
// jitter so colliding clients spread out.
const clientRetryBase = 2 * time.Millisecond

// hotHintCap bounds the client's hot-replica hint cache; when full, an
// arbitrary entry is evicted to admit the new key.
const hotHintCap = 512

// Client is an application-side handle to a Wiera instance. It connects to
// the closest node (head of the instance list, Sec 4.1 step 8) and fails
// over to the next closest when a node is down (Sec 4.4). For a sharded
// instance it routes each keyed operation to the owning worker from a
// cached shard map, refreshing the map when a node answers wrong-shard.
type Client struct {
	name       string
	region     simnet.Region
	ep         *transport.Endpoint
	fabric     *transport.Fabric
	serverDst  string
	instanceID string
	// tenantID scopes every keyed op: keys are qualified with it before
	// routing and encoding, so ring placement, storage, and repair all see
	// the tenant-disjoint key family. Empty or "default" leaves keys bare
	// (the untenanted compatibility path).
	tenantID string
	// codec selects how outgoing request payloads are encoded. The zero
	// value CodecAuto takes the binary wire codec on keyed ops; SetCodec
	// with CodecGob emulates a not-yet-upgraded client.
	codec transport.Codec

	mu      sync.RWMutex
	nodes   []PeerInfo // sorted by RTT from the client's region
	table   *ring.Table
	shardOf map[string]int // node name -> shard under the cached map

	rngMu sync.Mutex
	rng   *rand.Rand

	// hotHints caches per-key hot-replica sets advertised by owners in
	// GetResponse.HotReplicas; hotSeq rotates reads across a hot key's
	// equally-near copies.
	hotMu    sync.Mutex
	hotHints map[string][]string
	hotSeq   uint64
}

// NewClient registers a client endpoint and fetches the instance's node
// list (and shard map, when sharded) from the Wiera server.
func NewClient(fabric *transport.Fabric, name string, region simnet.Region, serverDst, instanceID string) (*Client, error) {
	ep, err := fabric.NewEndpoint(name, region)
	if err != nil {
		return nil, err
	}
	c := &Client{
		name: name, region: region, ep: ep, fabric: fabric,
		serverDst: serverDst, instanceID: instanceID,
		rng: rand.New(rand.NewSource(int64(len(name)) + 17)),
	}
	if err := c.Refresh(context.Background()); err != nil {
		fabric.Remove(name)
		return nil, err
	}
	return c, nil
}

// NewTenantClient is NewClient with a tenant context: every keyed op the
// returned client issues lands in tenantID's keyspace and quota.
func NewTenantClient(fabric *transport.Fabric, name string, region simnet.Region, serverDst, instanceID, tenantID string) (*Client, error) {
	c, err := NewClient(fabric, name, region, serverDst, instanceID)
	if err != nil {
		return nil, err
	}
	c.tenantID = tenantID
	return c, nil
}

// SetTenant changes the client's tenant context for subsequent keyed ops.
func (c *Client) SetTenant(id string) { c.tenantID = id }

// SetCodec changes how the client encodes outgoing requests (CodecGob
// emulates a legacy gob-only client; decoding always accepts both).
func (c *Client) SetCodec(codec transport.Codec) { c.codec = codec }

// enc encodes an outgoing request payload under the client's codec.
func (c *Client) enc(v any) ([]byte, error) { return transport.EncodeWith(c.codec, v) }

// Tenant reports the client's tenant context ("" = default tenant).
func (c *Client) Tenant() string { return c.tenantID }

// qualify folds the client's tenant into an application key.
func (c *Client) qualify(key string) string { return tenant.Qualify(c.tenantID, key) }

// Refresh re-fetches the membership and shard map from the Wiera server.
func (c *Client) Refresh(ctx context.Context) error {
	payload, err := transport.Encode(GetInstancesRequest{InstanceID: c.instanceID})
	if err != nil {
		return err
	}
	raw, err := c.ep.Call(ctx, c.serverDst, MethodGetInstances, payload)
	if err != nil {
		return err
	}
	var resp StartInstancesResponse
	if err := transport.Decode(raw, &resp); err != nil {
		return err
	}
	c.setView(resp.Nodes, resp.Ring)
	return nil
}

// SetNodes installs the node list, sorted closest-first for this client,
// keeping whatever shard map is cached.
func (c *Client) SetNodes(nodes []PeerInfo) {
	c.mu.Lock()
	rm := (*ring.Map)(nil)
	if c.table != nil {
		rm = c.table.Map()
	}
	c.mu.Unlock()
	c.setView(nodes, rm)
}

// SetRing installs a shard map (nil reverts to unsharded routing).
func (c *Client) SetRing(rm *ring.Map) {
	c.mu.Lock()
	nodes := append([]PeerInfo(nil), c.nodes...)
	c.mu.Unlock()
	c.setView(nodes, rm)
}

func (c *Client) setView(nodes []PeerInfo, rm *ring.Map) {
	sorted := append([]PeerInfo(nil), nodes...)
	net := c.fabric.Network()
	sort.SliceStable(sorted, func(i, j int) bool {
		return net.RTT(c.region, sorted[i].Region) < net.RTT(c.region, sorted[j].Region)
	})
	var table *ring.Table
	shardOf := map[string]int(nil)
	if rm != nil {
		table = ring.NewTable(rm)
		shardOf = make(map[string]int, len(sorted))
		for _, n := range sorted {
			shardOf[n.Name] = rm.ShardOf(string(n.Region), n.Name)
		}
	}
	c.mu.Lock()
	c.nodes = sorted
	c.table = table
	c.shardOf = shardOf
	c.mu.Unlock()
}

// Nodes returns the client's node list, closest first.
func (c *Client) Nodes() []PeerInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]PeerInfo(nil), c.nodes...)
}

// RingEpoch reports the cached shard map's epoch (0 when unsharded).
func (c *Client) RingEpoch() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.table == nil {
		return 0
	}
	return c.table.Epoch()
}

// Closest returns the nearest node's name.
func (c *Client) Closest() (string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.nodes) == 0 {
		return "", errors.New("wiera: client has no nodes")
	}
	return c.nodes[0].Name, nil
}

// route lists the nodes that may serve key, closest first: the owning
// shard's workers under the cached map, or every node when unsharded.
func (c *Client) route(key string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.nodes))
	if c.table == nil || key == "" {
		for _, n := range c.nodes {
			names = append(names, n.Name)
		}
		return names
	}
	shard := c.table.Owner(key)
	for _, n := range c.nodes {
		if c.shardOf[n.Name] == shard {
			names = append(names, n.Name)
		}
	}
	if len(names) == 0 {
		// The map references workers absent from the node list (mid-refresh
		// inconsistency); fall back to trying everyone.
		for _, n := range c.nodes {
			names = append(names, n.Name)
		}
	}
	return names
}

// hotHint returns the cached hot-replica set for key (nil when absent).
func (c *Client) hotHint(key string) []string {
	c.hotMu.Lock()
	defer c.hotMu.Unlock()
	return c.hotHints[key]
}

// setHotHint caches key's advertised hot-replica set. Empty sets are
// ignored: a read served by a replica rather than the owner carries no
// hint, and forgetting the cached one would bounce the next read back to
// the owner. Stale hints self-correct — a demoted replica answers
// wrong-shard, which drops the hint.
func (c *Client) setHotHint(key string, replicas []string) {
	if key == "" || len(replicas) == 0 {
		return
	}
	c.hotMu.Lock()
	defer c.hotMu.Unlock()
	if c.hotHints == nil {
		c.hotHints = make(map[string][]string)
	}
	if _, ok := c.hotHints[key]; !ok && len(c.hotHints) >= hotHintCap {
		for k := range c.hotHints {
			delete(c.hotHints, k)
			break
		}
	}
	c.hotHints[key] = append([]string(nil), replicas...)
}

// dropHotHint forgets key's hint after an error involving its route.
func (c *Client) dropHotHint(key string) {
	if key == "" {
		return
	}
	c.hotMu.Lock()
	delete(c.hotHints, key)
	c.hotMu.Unlock()
}

// hotCandidates reorders a GET's candidate list using key's cached hint:
// the hot set (owner plus advertised replicas) is sorted nearest-first,
// reads rotate across the copies tied at the minimum RTT so a hot key's
// load spreads instead of hammering one replica, and the remaining
// candidates follow as fallback.
func (c *Client) hotCandidates(key string, names []string) []string {
	hints := c.hotHint(key)
	if len(hints) == 0 {
		return names
	}
	c.mu.RLock()
	regionOf := make(map[string]simnet.Region, len(c.nodes))
	for _, n := range c.nodes {
		regionOf[n.Name] = n.Region
	}
	c.mu.RUnlock()
	seen := make(map[string]bool, len(hints)+1)
	hot := make([]string, 0, len(hints)+1)
	if len(names) > 0 {
		hot = append(hot, names[0])
		seen[names[0]] = true
	}
	for _, h := range hints {
		if !seen[h] {
			hot = append(hot, h)
			seen[h] = true
		}
	}
	net := c.fabric.Network()
	rtt := func(name string) time.Duration {
		r, ok := regionOf[name]
		if !ok {
			// A hinted node absent from the view (mid-refresh) sorts last.
			return time.Hour
		}
		return net.RTT(c.region, r)
	}
	sort.SliceStable(hot, func(i, j int) bool { return rtt(hot[i]) < rtt(hot[j]) })
	near := 1
	for near < len(hot) && rtt(hot[near]) == rtt(hot[0]) {
		near++
	}
	c.hotMu.Lock()
	idx := int(c.hotSeq % uint64(near))
	c.hotSeq++
	c.hotMu.Unlock()
	out := make([]string, 0, len(names)+len(hot))
	out = append(out, hot[idx:near]...)
	out = append(out, hot[:idx]...)
	out = append(out, hot[near:]...)
	for _, n := range names {
		if !seen[n] {
			out = append(out, n)
		}
	}
	return out
}

// backoff computes the jittered delay before retry number attempt.
func (c *Client) backoff(attempt int) time.Duration {
	base := clientRetryBase << attempt
	c.rngMu.Lock()
	j := time.Duration(c.rng.Int63n(int64(base)))
	c.rngMu.Unlock()
	return base/2 + j
}

// failFastErr reports whether err carries a marker-prefixed typed NACK that
// deterministically recurs on immediate retry: quota admission denials and
// rebalance-in-progress. Burning the backoff budget on these delays the
// caller without any chance of success, so callKey surfaces them at once.
func failFastErr(err error) bool {
	if err == nil {
		return false
	}
	return tenant.AsQuotaExceeded(err) != nil || AsRebalanceInProgress(err) != nil
}

// transientErr reports whether err is a connectivity failure worth retrying
// on another node (application errors surface immediately). A node that
// answers "shutting down" counts too: it is leaving the instance (teardown
// or policy change) and a refreshed view routes around it.
func transientErr(err error) bool {
	if errors.Is(err, transport.ErrNoEndpoint) {
		return true
	}
	var ue simnet.ErrUnreachable
	if errors.As(err, &ue) {
		return true
	}
	// Typed NACKs are never transient, even when the surrounding error text
	// happens to contain a retryable substring (a forwarded op's flattened
	// chain can accumulate both).
	if failFastErr(err) {
		return false
	}
	// ErrChanging arrives string-flattened through the transport.
	return strings.Contains(err.Error(), ErrChanging.Error())
}

// startOp opens the operation's trace span: a child when the caller's ctx
// already carries one, otherwise a sampled fresh root on the fabric's
// tracer — application Puts/Gets start traces without the caller having to
// know about telemetry, at the tracer's auto-sample rate (the first
// operation is always traced).
func (c *Client) startOp(ctx context.Context, name string) (context.Context, *telemetry.Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	if telemetry.SpanFromContext(ctx) != nil {
		return telemetry.StartSpan(ctx, name)
	}
	span := c.fabric.Tracer().SampleRoot(name)
	if span == nil {
		return ctx, nil
	}
	span.SetAttr("client", c.name)
	span.SetAttr("region", string(c.region))
	return telemetry.ContextWithSpan(ctx, span), span
}

// Call invokes a raw data-plane method on the instance, trying nodes
// closest-first. The key is unknown here, so a wrong-shard answer follows
// the NACK's owner redirect instead of re-routing locally; callers that
// know the key should prefer CallKeyed.
func (c *Client) Call(ctx context.Context, method string, payload []byte) ([]byte, error) {
	return c.callKey(ctx, method, payload, "")
}

// CallKeyed invokes a raw data-plane method routed to the worker owning
// key (used by TCP proxies that already hold encoded payloads).
func (c *Client) CallKeyed(ctx context.Context, key, method string, payload []byte) ([]byte, error) {
	return c.callKey(ctx, method, payload, key)
}

// callKey routes one operation on key to its owner, retrying within a
// single bounded budget: transient transport failures back off with jitter
// and move on; wrong-shard answers refresh the cached map (or follow the
// NACK's redirect when the server is unreachable) and re-route.
func (c *Client) callKey(ctx context.Context, method string, payload []byte, key string) ([]byte, error) {
	clk := c.fabric.Network().Clock()
	var lastErr error
	for attempt := 0; attempt < clientMaxAttempts; attempt++ {
		candidates := c.route(key)
		if method == MethodGet {
			candidates = c.hotCandidates(key, candidates)
		}
		if len(candidates) == 0 {
			return nil, errors.New("wiera: client has no nodes")
		}
		wrongShard := false
		var redirect string
		for _, name := range candidates {
			raw, err := c.ep.Call(ctx, name, method, payload)
			if err == nil {
				return raw, nil
			}
			lastErr = err
			// Any failure on key's route invalidates its hot hint: a demoted
			// replica NACKs wrong-shard, a dead one times out — either way the
			// next read re-learns the set from the owner.
			c.dropHotHint(key)
			if ws := AsWrongShard(err); ws != nil {
				wrongShard = true
				redirect = ws.Owner
				break
			}
			// Typed NACKs (quota exceeded, rebalance in progress) fail fast:
			// the condition is deterministic, so neither the remaining
			// candidates nor the backoff budget can change the answer.
			if failFastErr(err) {
				return nil, err
			}
			if !transientErr(err) {
				return nil, err
			}
		}
		if wrongShard {
			// Keyless calls cannot re-route locally — without the key a
			// refreshed map still yields the same candidates — so the NACK's
			// owner is the only way forward.
			if key == "" && redirect != "" {
				raw, err := c.ep.Call(ctx, redirect, method, payload)
				if err == nil {
					return raw, nil
				}
				lastErr = err
				continue
			}
			// The cached map is stale. The authoritative fix is a server
			// refresh; when the server is unreachable the NACK itself names
			// an owner to follow. Either way the retry burns budget.
			if err := c.Refresh(ctx); err != nil && redirect != "" {
				raw, err := c.ep.Call(ctx, redirect, method, payload)
				if err == nil {
					return raw, nil
				}
				lastErr = err
			}
			continue
		}
		if attempt < clientMaxAttempts-1 {
			// Every candidate failed transiently: the membership may have
			// changed under us (a drained worker shut down) — refresh the
			// view before backing off so the retry routes around it.
			_ = c.Refresh(ctx)
			clk.Sleep(c.backoff(attempt))
		}
	}
	return nil, fmt.Errorf("wiera: retries exhausted: %w", lastErr)
}

// Put stores data under key (Table 2 put).
func (c *Client) Put(ctx context.Context, key string, data []byte) (object.Meta, error) {
	ctx, span := c.startOp(ctx, "client.put")
	defer span.End()
	key = c.qualify(key)
	payload, err := c.enc(PutRequest{Key: key, Data: data})
	if err != nil {
		span.SetError(err)
		return object.Meta{}, err
	}
	raw, err := c.callKey(ctx, MethodPut, payload, key)
	if err != nil {
		span.SetError(err)
		return object.Meta{}, err
	}
	var resp PutResponse
	if err := transport.Decode(raw, &resp); err != nil {
		span.SetError(err)
		return object.Meta{}, err
	}
	return resp.Meta, nil
}

// Get retrieves key's latest version (Table 2 get).
func (c *Client) Get(ctx context.Context, key string) ([]byte, object.Meta, error) {
	ctx, span := c.startOp(ctx, "client.get")
	defer span.End()
	key = c.qualify(key)
	payload, err := c.enc(GetRequest{Key: key})
	if err != nil {
		span.SetError(err)
		return nil, object.Meta{}, err
	}
	raw, err := c.callKey(ctx, MethodGet, payload, key)
	if err != nil {
		span.SetError(err)
		return nil, object.Meta{}, err
	}
	var resp GetResponse
	if err := transport.Decode(raw, &resp); err != nil {
		span.SetError(err)
		return nil, object.Meta{}, err
	}
	c.setHotHint(key, resp.HotReplicas)
	return resp.Data, resp.Meta, nil
}

// GetVersion retrieves a specific version (Table 2 getVersion).
func (c *Client) GetVersion(ctx context.Context, key string, v object.Version) ([]byte, object.Meta, error) {
	ctx, span := c.startOp(ctx, "client.getVersion")
	defer span.End()
	key = c.qualify(key)
	payload, err := c.enc(GetVersionRequest{Key: key, Version: v})
	if err != nil {
		return nil, object.Meta{}, err
	}
	raw, err := c.callKey(ctx, MethodGetVersion, payload, key)
	if err != nil {
		span.SetError(err)
		return nil, object.Meta{}, err
	}
	var resp GetResponse
	if err := transport.Decode(raw, &resp); err != nil {
		return nil, object.Meta{}, err
	}
	return resp.Data, resp.Meta, nil
}

// VersionList lists available versions (Table 2 getVersionList).
func (c *Client) VersionList(ctx context.Context, key string) ([]object.Version, error) {
	key = c.qualify(key)
	payload, err := transport.Encode(VersionListRequest{Key: key})
	if err != nil {
		return nil, err
	}
	raw, err := c.callKey(ctx, MethodVersionList, payload, key)
	if err != nil {
		return nil, err
	}
	var resp VersionListResponse
	if err := transport.Decode(raw, &resp); err != nil {
		return nil, err
	}
	return resp.Versions, nil
}

// Remove deletes all versions of key (Table 2 remove).
func (c *Client) Remove(ctx context.Context, key string) error {
	ctx, span := c.startOp(ctx, "client.remove")
	defer span.End()
	key = c.qualify(key)
	payload, err := c.enc(RemoveRequest{Key: key})
	if err != nil {
		return err
	}
	_, err = c.callKey(ctx, MethodRemove, payload, key)
	if err != nil {
		span.SetError(err)
	}
	return err
}

// RemoveVersion deletes one version of key (Table 2 removeVersion).
func (c *Client) RemoveVersion(ctx context.Context, key string, v object.Version) error {
	key = c.qualify(key)
	payload, err := c.enc(RemoveVersionRequest{Key: key, Version: v})
	if err != nil {
		return err
	}
	_, err = c.callKey(ctx, MethodRemoveVer, payload, key)
	return err
}

// Close removes the client's endpoint.
func (c *Client) Close() { c.fabric.Remove(c.name) }

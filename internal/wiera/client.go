package wiera

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/object"
	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Client is an application-side handle to a Wiera instance. It connects to
// the closest node (head of the instance list, Sec 4.1 step 8) and fails
// over to the next closest when a node is down (Sec 4.4).
type Client struct {
	name   string
	region simnet.Region
	ep     *transport.Endpoint
	fabric *transport.Fabric
	nodes  []PeerInfo // sorted by RTT from the client's region
}

// NewClient registers a client endpoint and fetches the instance's node
// list from the Wiera server.
func NewClient(fabric *transport.Fabric, name string, region simnet.Region, serverDst, instanceID string) (*Client, error) {
	ep, err := fabric.NewEndpoint(name, region)
	if err != nil {
		return nil, err
	}
	c := &Client{name: name, region: region, ep: ep, fabric: fabric}
	payload, err := transport.Encode(GetInstancesRequest{InstanceID: instanceID})
	if err != nil {
		fabric.Remove(name)
		return nil, err
	}
	raw, err := ep.Call(context.Background(), serverDst, MethodGetInstances, payload)
	if err != nil {
		fabric.Remove(name)
		return nil, err
	}
	var resp StartInstancesResponse
	if err := transport.Decode(raw, &resp); err != nil {
		fabric.Remove(name)
		return nil, err
	}
	c.SetNodes(resp.Nodes)
	return c, nil
}

// SetNodes installs the node list, sorted closest-first for this client.
func (c *Client) SetNodes(nodes []PeerInfo) {
	c.nodes = append([]PeerInfo(nil), nodes...)
	net := c.fabric.Network()
	sort.SliceStable(c.nodes, func(i, j int) bool {
		return net.RTT(c.region, c.nodes[i].Region) < net.RTT(c.region, c.nodes[j].Region)
	})
}

// Nodes returns the client's node list, closest first.
func (c *Client) Nodes() []PeerInfo { return append([]PeerInfo(nil), c.nodes...) }

// Closest returns the nearest node's name.
func (c *Client) Closest() (string, error) {
	if len(c.nodes) == 0 {
		return "", errors.New("wiera: client has no nodes")
	}
	return c.nodes[0].Name, nil
}

// startOp opens the operation's trace span: a child when the caller's ctx
// already carries one, otherwise a sampled fresh root on the fabric's
// tracer — application Puts/Gets start traces without the caller having to
// know about telemetry, at the tracer's auto-sample rate (the first
// operation is always traced).
func (c *Client) startOp(ctx context.Context, name string) (context.Context, *telemetry.Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	if telemetry.SpanFromContext(ctx) != nil {
		return telemetry.StartSpan(ctx, name)
	}
	span := c.fabric.Tracer().SampleRoot(name)
	if span == nil {
		return ctx, nil
	}
	span.SetAttr("client", c.name)
	span.SetAttr("region", string(c.region))
	return telemetry.ContextWithSpan(ctx, span), span
}

// Call invokes a raw data-plane method on the instance, trying nodes
// closest-first (used by TCP proxies that already hold encoded payloads).
func (c *Client) Call(ctx context.Context, method string, payload []byte) ([]byte, error) {
	return c.call(ctx, method, payload)
}

// call tries each node closest-first until one answers.
func (c *Client) call(ctx context.Context, method string, payload []byte) ([]byte, error) {
	if len(c.nodes) == 0 {
		return nil, errors.New("wiera: client has no nodes")
	}
	var lastErr error
	for _, n := range c.nodes {
		raw, err := c.ep.Call(ctx, n.Name, method, payload)
		if err == nil {
			return raw, nil
		}
		lastErr = err
		// Only fail over on connectivity errors; application errors (e.g.
		// key not found) surface immediately.
		if !errors.Is(err, transport.ErrNoEndpoint) {
			var ue simnet.ErrUnreachable
			if !errors.As(err, &ue) {
				return nil, err
			}
		}
	}
	return nil, fmt.Errorf("wiera: all nodes unreachable: %w", lastErr)
}

// Put stores data under key (Table 2 put).
func (c *Client) Put(ctx context.Context, key string, data []byte) (object.Meta, error) {
	ctx, span := c.startOp(ctx, "client.put")
	defer span.End()
	payload, err := transport.Encode(PutRequest{Key: key, Data: data})
	if err != nil {
		span.SetError(err)
		return object.Meta{}, err
	}
	raw, err := c.call(ctx, MethodPut, payload)
	if err != nil {
		span.SetError(err)
		return object.Meta{}, err
	}
	var resp PutResponse
	if err := transport.Decode(raw, &resp); err != nil {
		span.SetError(err)
		return object.Meta{}, err
	}
	return resp.Meta, nil
}

// Get retrieves key's latest version (Table 2 get).
func (c *Client) Get(ctx context.Context, key string) ([]byte, object.Meta, error) {
	ctx, span := c.startOp(ctx, "client.get")
	defer span.End()
	payload, err := transport.Encode(GetRequest{Key: key})
	if err != nil {
		span.SetError(err)
		return nil, object.Meta{}, err
	}
	raw, err := c.call(ctx, MethodGet, payload)
	if err != nil {
		span.SetError(err)
		return nil, object.Meta{}, err
	}
	var resp GetResponse
	if err := transport.Decode(raw, &resp); err != nil {
		span.SetError(err)
		return nil, object.Meta{}, err
	}
	return resp.Data, resp.Meta, nil
}

// GetVersion retrieves a specific version (Table 2 getVersion).
func (c *Client) GetVersion(ctx context.Context, key string, v object.Version) ([]byte, object.Meta, error) {
	ctx, span := c.startOp(ctx, "client.getVersion")
	defer span.End()
	payload, err := transport.Encode(GetVersionRequest{Key: key, Version: v})
	if err != nil {
		return nil, object.Meta{}, err
	}
	raw, err := c.call(ctx, MethodGetVersion, payload)
	if err != nil {
		span.SetError(err)
		return nil, object.Meta{}, err
	}
	var resp GetResponse
	if err := transport.Decode(raw, &resp); err != nil {
		return nil, object.Meta{}, err
	}
	return resp.Data, resp.Meta, nil
}

// VersionList lists available versions (Table 2 getVersionList).
func (c *Client) VersionList(ctx context.Context, key string) ([]object.Version, error) {
	payload, err := transport.Encode(VersionListRequest{Key: key})
	if err != nil {
		return nil, err
	}
	raw, err := c.call(ctx, MethodVersionList, payload)
	if err != nil {
		return nil, err
	}
	var resp VersionListResponse
	if err := transport.Decode(raw, &resp); err != nil {
		return nil, err
	}
	return resp.Versions, nil
}

// Remove deletes all versions of key (Table 2 remove).
func (c *Client) Remove(ctx context.Context, key string) error {
	ctx, span := c.startOp(ctx, "client.remove")
	defer span.End()
	payload, err := transport.Encode(RemoveRequest{Key: key})
	if err != nil {
		return err
	}
	_, err = c.call(ctx, MethodRemove, payload)
	if err != nil {
		span.SetError(err)
	}
	return err
}

// RemoveVersion deletes one version of key (Table 2 removeVersion).
func (c *Client) RemoveVersion(ctx context.Context, key string, v object.Version) error {
	payload, err := transport.Encode(RemoveVersionRequest{Key: key, Version: v})
	if err != nil {
		return err
	}
	_, err = c.call(ctx, MethodRemoveVer, payload)
	return err
}

// Close removes the client's endpoint.
func (c *Client) Close() { c.fabric.Remove(c.name) }

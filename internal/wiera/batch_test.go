package wiera

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/object"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// eventual3Src is a three-region eventual-consistency policy: the shape the
// batched flush is built for (every queued update fans out to two WAN
// peers).
const eventual3Src = `
Wiera EventualThreeRegions {
	Region1 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 5G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 5G}};
	Region3 = {name: LowLatencyInstance, region: eu-west,
		tier1 = {name: memory, size: 5G}};
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
		queue(what: insert.object, to: all_regions);
	}
}`

func TestChunkUpdates(t *testing.T) {
	b := &batcher{maxBytes: 1000}
	msg := func(n int) UpdateMsg {
		return UpdateMsg{Data: make([]byte, n)}
	}

	if got := b.chunkUpdates(nil); got != nil {
		t.Fatalf("chunk(nil) = %v", got)
	}

	// Byte cap: entries of 400B payload (+overhead 64) pack two per chunk.
	chunks := b.chunkUpdates([]UpdateMsg{msg(400), msg(400), msg(400), msg(400), msg(400)})
	if len(chunks) != 3 || len(chunks[0]) != 2 || len(chunks[1]) != 2 || len(chunks[2]) != 1 {
		t.Fatalf("byte-cap chunks = %v", lens(chunks))
	}

	// A single oversized entry still ships alone.
	chunks = b.chunkUpdates([]UpdateMsg{msg(5000), msg(10)})
	if len(chunks) != 2 || len(chunks[0]) != 1 || len(chunks[1]) != 1 {
		t.Fatalf("oversized chunks = %v", lens(chunks))
	}

	// Entry cap: tiny entries split at maxBatchEntries.
	big := &batcher{maxBytes: 1 << 30}
	many := make([]UpdateMsg, maxBatchEntries+5)
	chunks = big.chunkUpdates(many)
	if len(chunks) != 2 || len(chunks[0]) != maxBatchEntries || len(chunks[1]) != 5 {
		t.Fatalf("entry-cap chunks = %v", lens(chunks))
	}

	// Order is preserved across chunk boundaries.
	ordered := make([]UpdateMsg, 0, 10)
	for i := 0; i < 10; i++ {
		ordered = append(ordered, UpdateMsg{
			Meta: object.Meta{Key: fmt.Sprintf("k%d", i), Version: 1},
			Data: make([]byte, 400),
		})
	}
	i := 0
	for _, c := range b.chunkUpdates(ordered) {
		for _, m := range c {
			if m.Meta.Key != fmt.Sprintf("k%d", i) {
				t.Fatalf("entry %d has key %q", i, m.Meta.Key)
			}
			i++
		}
	}
	if i != 10 {
		t.Fatalf("chunks dropped entries: %d of 10", i)
	}
}

func lens(chunks [][]UpdateMsg) []int {
	out := make([]int, len(chunks))
	for i, c := range chunks {
		out[i] = len(c)
	}
	return out
}

func TestBatchedFlushDeliversAllKeys(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast, simnet.EUWest)
	c.startSrc(t, "bf", eventual3Src, map[string]string{"queueFlush": "10m"})
	west := c.node(t, "bf/us-west")
	east := c.node(t, "bf/us-east")
	eu := c.node(t, "bf/eu-west")

	const keys = 300
	for i := 0; i < keys; i++ {
		if _, err := west.Put(context.Background(), fmt.Sprintf("k%03d", i), []byte("v"), nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := west.QueueDepth(); got != keys {
		t.Fatalf("queue depth = %d, want %d", got, keys)
	}
	west.FlushQueue()
	if got := west.QueueDepth(); got != 0 {
		t.Fatalf("queue not drained: %d", got)
	}
	for _, peer := range []*Node{east, eu} {
		if got := peer.local.Objects().Len(); got != keys {
			t.Fatalf("%s holds %d keys, want %d", peer.Name(), got, keys)
		}
	}
	// Group commit actually grouped: 300 updates to 2 peers at 128
	// entries/chunk is 6 RPCs, not 600.
	wantChunks := int64(2 * ((keys + maxBatchEntries - 1) / maxBatchEntries))
	if got := west.batch.chunks.Value(); got != wantChunks {
		t.Fatalf("batch chunks = %d, want %d", got, wantChunks)
	}
	if got := west.batch.updates.Value(); got != int64(2*keys) {
		t.Fatalf("batch updates = %d, want %d", got, 2*keys)
	}
}

func TestBatchedFlushPartialFailureHintsOnlyFailedEntries(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast, simnet.EUWest)
	c.startSrc(t, "pf", eventual3Src, map[string]string{"queueFlush": "10m"})
	west := c.node(t, "pf/us-west")
	east := c.node(t, "pf/us-east")
	eu := c.node(t, "pf/eu-west")

	const keys = 10
	c.net.Partition(simnet.USWest, simnet.USEast)
	for i := 0; i < keys; i++ {
		if _, err := west.Put(context.Background(), fmt.Sprintf("k%d", i), []byte("v"), nil); err != nil {
			t.Fatal(err)
		}
	}
	west.FlushQueue()
	if got := west.QueueDepth(); got != 0 {
		t.Fatalf("queue not drained: %d", got)
	}
	// The reachable peer received every entry despite the failed one.
	if got := eu.local.Objects().Len(); got != keys {
		t.Fatalf("eu-west holds %d keys, want %d", got, keys)
	}
	// Only the partitioned peer's entries were hinted — exactly all of them.
	if got := west.repair.hints.PendingFor(east.Name()); got != keys {
		t.Fatalf("hints pending for east = %d, want %d", got, keys)
	}
	if got := west.repair.hints.PendingFor(eu.Name()); got != 0 {
		t.Fatalf("hints pending for eu-west = %d, want 0", got)
	}
	if got := west.batch.entryFailures.Value(); got != int64(keys) {
		t.Fatalf("entry failures = %d, want %d", got, keys)
	}

	// Heal: hint replay converges the partitioned peer. Zero lost acked
	// writes. Replay is ping-gated with backoff, so drive rounds until the
	// hints drain rather than relying on a single pass.
	c.net.Heal(simnet.USWest, simnet.USEast)
	deadline := time.Now().Add(5 * time.Second)
	for east.local.Objects().Len() < keys {
		west.repair.daemon.RunOnce()
		if time.Now().After(deadline) {
			t.Fatalf("east holds %d keys after replay, want %d", east.local.Objects().Len(), keys)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBatchedFlushRequeuesWithoutRepair(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	c.startSrc(t, "rq", eventual2Src, map[string]string{
		"queueFlush": "10m", "antiEntropy": "false",
	})
	west := c.node(t, "rq/us-west")
	east := c.node(t, "rq/us-east")
	if west.repair != nil {
		t.Fatal("repair should be disabled")
	}

	c.net.Partition(simnet.USWest, simnet.USEast)
	const keys = 5
	for i := 0; i < keys; i++ {
		if _, err := west.Put(context.Background(), fmt.Sprintf("k%d", i), []byte("v"), nil); err != nil {
			t.Fatal(err)
		}
	}
	west.FlushQueue()
	// Without hints the failed entries must come back for the next flush.
	if got := west.QueueDepth(); got != keys {
		t.Fatalf("queue depth after failed flush = %d, want %d (re-enqueued)", got, keys)
	}
	c.net.Heal(simnet.USWest, simnet.USEast)
	west.FlushQueue()
	if got := west.QueueDepth(); got != 0 {
		t.Fatalf("queue depth after healed flush = %d, want 0", got)
	}
	if got := east.local.Objects().Len(); got != keys {
		t.Fatalf("east holds %d keys, want %d", got, keys)
	}
}

func TestPerKeyAblationStillDelivers(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	c.startSrc(t, "pk", eventual2Src, map[string]string{
		"queueFlush": "10m", "maxBatchBytes": "false",
	})
	west := c.node(t, "pk/us-west")
	east := c.node(t, "pk/us-east")
	if west.batch.enabled() {
		t.Fatal("batching should be disabled by maxBatchBytes: false")
	}
	const keys = 20
	for i := 0; i < keys; i++ {
		if _, err := west.Put(context.Background(), fmt.Sprintf("k%d", i), []byte("v"), nil); err != nil {
			t.Fatal(err)
		}
	}
	west.FlushQueue()
	if got := east.local.Objects().Len(); got != keys {
		t.Fatalf("east holds %d keys, want %d", got, keys)
	}
	if got := west.batch.chunks.Value(); got != 0 {
		t.Fatalf("per-key ablation issued %d batch chunks", got)
	}
}

// TestQueueDepthGaugeConsistent storms enqueues against concurrent flushes
// and checks the gauge matches the real depth once everything quiesces —
// the regression for the Set-after-unlock race that let a flush's 0
// clobber a newer enqueue's depth.
func TestQueueDepthGaugeConsistent(t *testing.T) {
	c := newCluster(t, simnet.USWest)
	c.start(t, "g", "EventualConsistency", map[string]string{"queueFlush": "10m"})
	n := c.node(t, "g/us-west")

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := n.Put(context.Background(), fmt.Sprintf("w%d-k%d", w, i), []byte("v"), nil); err != nil {
					t.Error(err)
					return
				}
				if i%17 == 0 {
					n.FlushQueue()
				}
			}
		}(w)
	}
	wg.Wait()
	n.FlushQueue()
	if got, want := n.queueDepth.Value(), float64(n.QueueDepth()); got != want {
		t.Fatalf("queue depth gauge = %v, queue.Len() = %v", got, want)
	}
	if got := n.QueueDepth(); got != 0 {
		t.Fatalf("queue depth after final flush = %d, want 0", got)
	}
}

func TestApplyUpdateBatchPerEntryAcks(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	c.startSrc(t, "ak", eventual2Src, map[string]string{"queueFlush": "10m"})
	west := c.node(t, "ak/us-west")
	east := c.node(t, "ak/us-east")

	fresh, err := west.Put(context.Background(), "k1", []byte("v"), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The same version twice: the first application wins, the duplicate
	// loses LWW at the receiver — a rejection, not an error, so the sender
	// neither hints nor retries it.
	payload, err := transport.Encode(UpdateBatchRequest{Updates: []UpdateMsg{
		{Meta: fresh, Data: []byte("v")},
		{Meta: fresh, Data: []byte("v")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := east.handle(context.Background(), MethodApplyUpdateBatch, payload)
	if err != nil {
		t.Fatal(err)
	}
	var resp UpdateBatchResponse
	if err := transport.Decode(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Acks) != 2 {
		t.Fatalf("acks = %v", resp.Acks)
	}
	if !resp.Acks[0].Accepted || resp.Acks[0].Err != "" {
		t.Fatalf("fresh entry ack = %+v, want accepted", resp.Acks[0])
	}
	if resp.Acks[1].Accepted || resp.Acks[1].Err != "" {
		t.Fatalf("duplicate entry ack = %+v, want rejected without error", resp.Acks[1])
	}
}

// TestRemoveIdempotentOnPeers: a remove fans out to peers that may never
// have held the key; their not-found must not fail the application remove.
func TestRemoveIdempotentOnPeers(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	c.startSrc(t, "rm", eventual2Src, map[string]string{"queueFlush": "10m"})
	west := c.node(t, "rm/us-west")
	east := c.node(t, "rm/us-east")

	// Long queueFlush: the put never propagates, east never sees the key.
	if _, err := west.Put(context.Background(), "only-west", []byte("v"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := east.local.Objects().Latest("only-west"); err == nil {
		t.Fatal("east unexpectedly has the key")
	}
	if err := west.Remove(context.Background(), "only-west"); err != nil {
		t.Fatalf("remove of key absent on peer: %v", err)
	}
}

// TestRemoveSurfacesPeerFailure: an unreachable peer is a real failure —
// its copy survives — and the application must hear about it.
func TestRemoveSurfacesPeerFailure(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	c.startSrc(t, "rf", eventual2Src, map[string]string{"queueFlush": "10m"})
	west := c.node(t, "rf/us-west")
	east := c.node(t, "rf/us-east")

	if _, err := west.Put(context.Background(), "k", []byte("v"), nil); err != nil {
		t.Fatal(err)
	}
	west.FlushQueue()
	if _, err := east.local.Objects().Latest("k"); err != nil {
		t.Fatal("east never received the update")
	}
	c.net.Partition(simnet.USWest, simnet.USEast)
	if err := west.Remove(context.Background(), "k"); err == nil {
		t.Fatal("remove with unreachable peer returned nil — east still holds a copy")
	}
}

// TestAsyncPushCoalesces drives the batcher's async single-target path and
// checks delivery (coalescing itself is timing-dependent; correctness is
// that every update arrives exactly once under LWW).
func TestAsyncPushCoalesces(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	c.startSrc(t, "as", eventual2Src, map[string]string{"queueFlush": "10m"})
	west := c.node(t, "as/us-west")
	east := c.node(t, "as/us-east")

	const keys = 50
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("k%d", i)
		meta, err := west.Put(context.Background(), key, []byte("v"), nil)
		if err != nil {
			t.Fatal(err)
		}
		west.batch.pushAsync(east.Name(), UpdateMsg{Meta: meta, Data: []byte("v")})
	}
	waitConverged(t, west, east, 5e9)
}

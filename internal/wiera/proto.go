// Package wiera implements the Wiera system (paper Sec 3-4): a control
// plane (Server: WUI, Global Policy Manager, Tiera Server Manager, Tiera
// Instance Managers) that launches and manages Tiera instances across
// regions, and a data plane (Node) in which each instance executes the
// global policy — consistency fan-out, forwarding, queued propagation,
// global locking, and run-time policy changes driven by latency and
// request monitors. Wiera itself never touches data; all object bytes flow
// directly between nodes (paper Sec 4).
package wiera

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/flight"
	"repro/internal/object"
	"repro/internal/repair"
	"repro/internal/ring"
	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/watch"
)

// RPC method names. The application-facing ones implement the paper's
// Table 1 and Table 2 APIs; the node-to-node and control ones implement
// Sec 4.1's protocol.
const (
	// Application API (Table 2) served by every node.
	MethodPut         = "wiera.put"
	MethodGet         = "wiera.get"
	MethodGetVersion  = "wiera.getVersion"
	MethodVersionList = "wiera.getVersionList"
	MethodRemove      = "wiera.remove"
	MethodRemoveVer   = "wiera.removeVersion"

	// Node-to-node data plane.
	MethodApplyUpdate      = "wiera.applyUpdate"
	MethodApplyUpdateBatch = "wiera.applyUpdateBatch"
	MethodForwardPut       = "wiera.forwardPut"
	MethodForwardGet       = "wiera.forwardGet"
	MethodSnapshot         = "wiera.snapshot"

	// Erasure-coding data plane: raw fragment-bundle fetch (the gather
	// half of an EC read or fragment repair) and object-layout queries.
	// MethodPlacement is application-facing (wieractl placement); a node
	// answers it by combining its own layout row with every peer's
	// MethodPlacementLocal answer.
	MethodECFrag         = "wiera.ecFragment"
	MethodPlacement      = "wiera.placement"
	MethodPlacementLocal = "wiera.placementLocal"

	// Node-to-node anti-entropy (internal/repair): Merkle digest exchange,
	// divergent-leaf summaries, and targeted version transfer.
	MethodRepairDigest  = "wiera.repairDigest"
	MethodRepairEntries = "wiera.repairEntries"
	MethodRepairPull    = "wiera.repairPull"
	MethodRepairPush    = "wiera.repairPush"

	// Control plane: server -> node.
	MethodSetPeers      = "wiera.setPeers"
	MethodSetPrimary    = "wiera.setPrimary"
	MethodSetRing       = "wiera.setRing"
	MethodRingDrain     = "wiera.ringDrain"
	MethodPrepareChange = "wiera.prepareChange"
	MethodCommitChange  = "wiera.commitChange"
	MethodPing          = "wiera.ping"
	MethodShutdown      = "wiera.shutdown"

	// Control plane: node -> server.
	MethodRequestChange = "wiera.requestPolicyChange"

	// Control plane: server -> tiera server.
	MethodSpawn   = "wiera.spawnInstance"
	MethodDespawn = "wiera.despawnInstance"

	// Application API (Table 1) served by the Wiera server.
	MethodStartInstances = "wiera.startInstances"
	MethodStopInstances  = "wiera.stopInstances"
	MethodGetInstances   = "wiera.getInstances"

	// Elasticity API: grow/shrink an instance's per-region worker pools by
	// one shard, rebalancing the keyspace online.
	MethodAddWorker    = "wiera.addWorker"
	MethodRemoveWorker = "wiera.removeWorker"

	// Hot-key selective replication: a key's owner pushes extra replicas of
	// a hot key to chosen peers (install) and retires them when the key
	// cools (drop). MethodHeatTop is the management query aggregating the
	// per-worker heat sketches into an instance-wide hottest-keys list.
	MethodHotInstall = "wiera.hotInstall"
	MethodHotDrop    = "wiera.hotDrop"
	MethodHeatTop    = "wiera.heatTop"

	// Telemetry API served by the cmd/wiera TCP front. Handled in the
	// daemon process directly: the metrics registry and tracer live on the
	// fabric, not on any single node.
	MethodMetricsDump = "wiera.metricsDump"
	MethodTraceDump   = "wiera.traceDump"
	MethodFlightDump  = "wiera.flightDump"

	// Observability plane, also served by the daemon front directly.
	// MethodMetricsSnapshot returns one daemon's registry in structured
	// (mergeable) form; MethodClusterMetrics has the daemon scrape itself
	// plus its -peers and answer with the merged fleet view;
	// MethodEventsDump returns the structured event journal.
	MethodMetricsSnapshot = "wiera.metricsSnapshot"
	MethodClusterMetrics  = "wiera.clusterMetrics"
	MethodEventsDump      = "wiera.eventsDump"
)

// PutRequest stores an object (Table 2 put / update). From names the
// forwarding instance on forwarded puts ("" for direct application puts);
// the requests monitor uses it for per-source attribution.
type PutRequest struct {
	Key  string
	Data []byte
	Tags []string
	From string
}

// PutResponse returns the created version's metadata.
type PutResponse struct {
	Meta object.Meta
}

// GetRequest retrieves an object's latest version (Table 2 get).
type GetRequest struct {
	Key string
}

// GetVersionRequest retrieves a specific version (Table 2 getVersion).
type GetVersionRequest struct {
	Key     string
	Version object.Version
}

// GetResponse carries payload and metadata. HotReplicas, set only by a
// key's owner when the key is promoted as hot, lists the extra replica
// nodes currently holding it; clients may spread subsequent GETs across
// owner + replicas. Empty means the key is not (or no longer) hot.
type GetResponse struct {
	Data        []byte
	Meta        object.Meta
	HotReplicas []string
}

// VersionListRequest lists versions (Table 2 getVersionList).
type VersionListRequest struct {
	Key string
}

// VersionListResponse carries the version numbers.
type VersionListResponse struct {
	Versions []object.Version
}

// RemoveRequest removes all versions (Table 2 remove).
type RemoveRequest struct {
	Key string
}

// RemoveVersionRequest removes one version (Table 2 removeVersion).
type RemoveVersionRequest struct {
	Key     string
	Version object.Version
}

// UpdateMsg propagates one version between replicas, with the metadata
// (version number, last modified time) the receiver needs for last-writer-
// wins conflict resolution (paper Sec 4.2). Forwarded marks an update a
// non-owning worker redirected to the key's owner during a rebalance; the
// receiver applies it locally even if its own map disagrees, so two
// workers with momentarily different epochs cannot bounce it forever.
type UpdateMsg struct {
	Meta      object.Meta
	Data      []byte
	Forwarded bool
}

// UpdateAck reports whether the update won at the receiver.
type UpdateAck struct {
	Accepted bool
}

// UpdateBatchRequest carries many queued updates in one frame — the
// group-commit unit of the replication fan-out. Entries preserve the
// sender's FIFO order; the receiver applies each under LWW exactly as it
// would a lone MethodApplyUpdate.
type UpdateBatchRequest struct {
	Updates []UpdateMsg
}

// BatchAck is the per-entry outcome of a batched update. Err carries an
// apply failure (the entry must be retried or hinted); Accepted false with
// an empty Err means the entry simply lost LWW at the receiver, which is a
// success for replication purposes.
type BatchAck struct {
	Accepted bool
	Err      string
}

// UpdateBatchResponse acks a batch entry-by-entry, in request order, so a
// partial failure costs the sender only the failed entries.
type UpdateBatchResponse struct {
	Acks []BatchAck
}

// ECFragRequest asks a peer for its stored fragment bundle of a key's
// latest version. Version > 0 restricts the answer to that version (a
// gatherer never mixes fragments across versions).
type ECFragRequest struct {
	Key     string
	Version object.Version // 0 = latest
}

// ECFragResponse carries the peer's raw bundle bytes verbatim (no
// reconstruction): Meta.ECFrags says which fragment indexes Data
// concatenates. For a replicated version the peer answers with the full
// payload and ECK == 0.
type ECFragResponse struct {
	Meta object.Meta
	Data []byte
}

// PlacementRequest asks where a key's latest version physically lives.
type PlacementRequest struct {
	Key string
}

// PlacementLocalResponse is one node's own layout row: the latest local
// meta for the key (Has false when the node holds nothing). The querying
// node derives the rendered PlacementEntry from it.
type PlacementLocalResponse struct {
	Has  bool
	Meta object.Meta
}

// PlacementEntry is one replica's row of a placement answer.
type PlacementEntry struct {
	Node    string
	Region  simnet.Region
	Has     bool
	Version object.Version
	Frags   []int // fragment indexes held (empty for a full replica)
	Bytes   int64 // physical payload bytes stored on this node
}

// PlacementResponse describes an object's layout: the scheme it was
// written under and every member's share of it.
type PlacementResponse struct {
	Key     string
	Version object.Version
	Size    int64
	ECK     int // 0 = fully replicated
	ECM     int
	Entries []PlacementEntry
}

// SnapshotRequest asks a peer for its full live state (new-replica sync).
type SnapshotRequest struct{}

// SnapshotResponse carries every key's latest version.
type SnapshotResponse struct {
	Updates []UpdateMsg
}

// RepairDigestRequest asks a replica for its Merkle tree digests at the
// given heap-indexed nodes. Fanout and Depth pin the tree geometry so both
// sides bucket keys identically.
type RepairDigestRequest struct {
	Fanout int
	Depth  int
	Nodes  []int
}

// RepairDigestResponse carries the digests in request order.
type RepairDigestResponse struct {
	Digests []uint64
}

// RepairEntriesRequest asks for the key summaries of divergent leaf
// buckets.
type RepairEntriesRequest struct {
	Fanout int
	Depth  int
	Leaves []int
}

// RepairEntriesResponse carries the concatenated leaf summaries.
type RepairEntriesResponse struct {
	Entries []repair.Entry
}

// RepairPullRequest fetches the latest versions of specific keys.
type RepairPullRequest struct {
	Keys []string
}

// RepairPullResponse carries the requested versions (missing keys are
// absent).
type RepairPullResponse struct {
	Updates []UpdateMsg
}

// RepairPushRequest offers versions to a replica under LWW.
type RepairPushRequest struct {
	Updates []UpdateMsg
}

// RepairPushResponse reports how many pushed versions won locally.
type RepairPushResponse struct {
	Accepted int
}

// PeersMsg distributes the instance membership list (Sec 4.1 step 6).
type PeersMsg struct {
	Peers   []PeerInfo
	Primary string
}

// PeerInfo names one member instance and its region.
type PeerInfo struct {
	Name   string
	Region simnet.Region
}

// SetPrimaryMsg changes the primary instance.
type SetPrimaryMsg struct {
	Primary string
}

// RingMsg installs a shard map on a worker. During a rebalance the control
// plane first installs the new map unsettled (Settled false) with Prev
// carrying the outgoing map, so workers can pull not-yet-migrated keys from
// their previous owners; once every moved key has been streamed, a second
// settled RingMsg drops the fallback path.
type RingMsg struct {
	Map     *ring.Map
	Prev    *ring.Map // previous map during an unsettled rebalance (nil once settled)
	Settled bool
}

// RingDrainRequest asks a worker to stream every key it no longer owns
// under its current map to the new in-region owners, deleting local copies
// as they are acknowledged. Idempotent; returns when the drain completes.
type RingDrainRequest struct{}

// RingDrainResponse reports how many keys the drain moved.
type RingDrainResponse struct {
	Moved int
}

// HotInstallMsg pushes an extra replica of a hot key onto a peer that does
// not own it. Owner names the pushing worker so the receiver can advertise
// where authoritative writes go. The receiver keeps the copy in a bounded
// side cache (never its authoritative store), so hot replicas can never be
// confused with owned keys during a rebalance drain.
type HotInstallMsg struct {
	Meta  object.Meta
	Data  []byte
	Owner string
}

// HotDropMsg retires a hot replica when the key cools (or ownership moves).
// The receiver tombstones the key briefly so an install that raced the drop
// cannot resurrect a stale copy.
type HotDropMsg struct {
	Key string
}

// HeatTopRequest asks the server for an instance's hottest keys, merged
// across every worker's sketch. K caps the answer (<= 0 uses a default).
type HeatTopRequest struct {
	InstanceID string
	K          int
}

// HeatKey is one entry of a heat report: a key and its decayed access-rate
// estimate (accesses per sketch half-life, summed across workers).
type HeatKey struct {
	Key  string
	Rate float64
}

// HeatTopResponse carries the merged hottest keys, hottest first.
type HeatTopResponse struct {
	Entries []HeatKey
}

// rebalanceMarker prefixes every ErrRebalanceInProgress so the typed error
// survives the transport's error flattening, exactly like wrongShardMarker.
const rebalanceMarker = "wiera: rebalance in progress: "

// ErrRebalanceInProgress is the NACK for AddWorker/RemoveWorker when the
// instance already has an unsettled ring change in flight: membership
// changes are strictly serialized, so the autoscaler and a manual wieractl
// grow/shrink can never interleave two rebalances. Callers should retry
// after the current rebalance settles.
type ErrRebalanceInProgress struct {
	InstanceID string
}

// Error implements error with the parseable wire format.
func (e *ErrRebalanceInProgress) Error() string {
	return rebalanceMarker + e.InstanceID
}

// AsRebalanceInProgress recovers an ErrRebalanceInProgress from an error
// that crossed the fabric. It returns nil when err is something else.
func AsRebalanceInProgress(err error) *ErrRebalanceInProgress {
	if err == nil {
		return nil
	}
	msg := err.Error()
	i := strings.Index(msg, rebalanceMarker)
	if i < 0 {
		return nil
	}
	return &ErrRebalanceInProgress{InstanceID: msg[i+len(rebalanceMarker):]}
}

// wrongShardMarker prefixes every WrongShardError so the string form
// survives the transport's error flattening and is recognizable remotely.
const wrongShardMarker = "wiera: wrong shard: "

// WrongShardError is a worker's NACK for an operation on a key it does not
// own: the client's shard map is stale (or the op raced a rebalance). It
// names the epoch the worker holds and the in-region owner so the client
// can refresh its map, or retry directly against Owner.
//
// The transport layer flattens handler errors into strings, so the error
// must round-trip through its message: Error() emits a fixed grammar and
// AsWrongShard parses it back.
type WrongShardError struct {
	Epoch int64  // ring epoch at the NACKing worker
	Shard int    // shard that owns the key under that epoch
	Owner string // in-region worker serving the shard
}

// Error implements error with the parseable wire format.
func (e *WrongShardError) Error() string {
	return fmt.Sprintf("%sepoch=%d shard=%d owner=%s", wrongShardMarker, e.Epoch, e.Shard, e.Owner)
}

// AsWrongShard recovers a WrongShardError from an error that crossed the
// fabric (where typed errors collapse to strings). It returns nil when err
// is not a wrong-shard NACK.
func AsWrongShard(err error) *WrongShardError {
	if err == nil {
		return nil
	}
	msg := err.Error()
	i := strings.Index(msg, wrongShardMarker)
	if i < 0 {
		return nil
	}
	rest := msg[i+len(wrongShardMarker):]
	var ws WrongShardError
	j := strings.Index(rest, " owner=")
	if j < 0 {
		return nil
	}
	if _, err := fmt.Sscanf(rest[:j], "epoch=%d shard=%d", &ws.Epoch, &ws.Shard); err != nil {
		return nil
	}
	ws.Owner = rest[j+len(" owner="):]
	return &ws
}

// PrepareChangeMsg blocks new operations and drains queues ahead of a
// consistency change (Sec 3.3.2: in-progress and queued operations are
// applied first; new requests block until the change takes effect).
type PrepareChangeMsg struct {
	Epoch int64
}

// CommitChangeMsg installs a new global policy body.
type CommitChangeMsg struct {
	Epoch      int64
	PolicyName string // a builtin or previously registered policy name
	PolicySrc  string // full source; used when PolicyName is empty
	Primary    string // optional new primary ("" = keep)
}

// ChangeRequestMsg is a node asking the server for a policy change (the
// change_policy response).
type ChangeRequestMsg struct {
	InstanceID string // wiera instance id
	What       string // "consistency" or "primary_instance"
	To         string // target policy name or instance name
	From       string // requesting node
	Via        string // triggering monitor: "latency", "primary", "slo", "policy", "" (manual)
}

// PingMsg checks liveness.
type PingMsg struct{}

// PongMsg answers a ping.
type PongMsg struct {
	Name string
}

// Empty is a no-payload response.
type Empty struct{}

// StartInstancesRequest launches a Wiera instance (Table 1).
type StartInstancesRequest struct {
	InstanceID string
	PolicySrc  string            // global (Wiera) policy source
	Params     map[string]string // spec parameter bindings (durations as strings)
	// LocalSpecs supplies custom local Tiera policy sources by name; region
	// declarations resolve their instance name here first, then among the
	// built-in policies.
	LocalSpecs  map[string]string
	MinReplicas int // replicas to keep alive (Sec 4.4); 0 = len(regions)
}

// StartInstancesResponse returns the launched node list (closest first for
// the caller's region when the server can tell; declaration order
// otherwise). Ring carries the instance's shard map when it runs with more
// than one worker per region (nil for unsharded instances), so clients can
// route keys without a second round trip.
type StartInstancesResponse struct {
	Nodes []PeerInfo
	Ring  *ring.Map
}

// StopInstancesRequest stops a Wiera instance (Table 1).
type StopInstancesRequest struct {
	InstanceID string
}

// GetInstancesRequest lists a Wiera instance's nodes (Table 1).
type GetInstancesRequest struct {
	InstanceID string
}

// SpawnRequest asks a Tiera server to create an instance node (Sec 4.1
// step 3).
type SpawnRequest struct {
	InstanceID string
	NodeName   string
	LocalSrc   string // local Tiera policy source
	GlobalSrc  string // global policy source
	Params     map[string]string
	Primary    string
	TimerParam time.Duration // binding for the conventional "t" parameter
}

// SpawnResponse confirms the node is serving.
type SpawnResponse struct {
	Node PeerInfo
}

// DespawnRequest removes an instance node.
type DespawnRequest struct {
	NodeName string
}

// ProxyRequest wraps a data-plane request with its target instance for the
// cmd/wiera TCP front, which routes it to the instance's closest node.
type ProxyRequest struct {
	InstanceID string
	Payload    []byte
}

// MetricsDumpRequest asks the daemon for its full metrics registry.
type MetricsDumpRequest struct{}

// MetricsDumpResponse carries the registry rendered in Prometheus text
// format (the same bytes the daemon's HTTP /metrics endpoint serves).
type MetricsDumpResponse struct {
	Prometheus string
}

// TraceDumpRequest asks the daemon for recorded trace spans. TraceID
// filters to one trace; empty returns every span in the ring.
type TraceDumpRequest struct {
	TraceID string
}

// TraceDumpResponse carries the matching span records.
type TraceDumpResponse struct {
	Spans []telemetry.SpanRecord
}

// FlightDumpRequest asks the daemon for recorded request flight records.
// SlowOnly selects the always-keep slow/expensive log; Max caps the count
// (<= 0 returns everything retained).
type FlightDumpRequest struct {
	SlowOnly bool
	Max      int
}

// FlightDumpResponse carries the matching flight records, newest first.
type FlightDumpResponse struct {
	TotalSeen int64
	SlowSeen  int64
	Records   []flight.Record
}

// MetricsSnapshotRequest asks one daemon for its registry in structured
// form — the mergeable counterpart of MethodMetricsDump's rendered text.
type MetricsSnapshotRequest struct{}

// MetricsSnapshotResponse carries one daemon's metric families. Source is
// the daemon's node name; the merger prefixes gauges with it.
type MetricsSnapshotResponse struct {
	Source   string
	Families []telemetry.FamilySnapshot
}

// ClusterMetricsRequest asks a daemon for the merged fleet view: its own
// registry plus a MethodMetricsSnapshot scrape of every configured peer.
type ClusterMetricsRequest struct{}

// ClusterMetricsResponse is the fleet merge. Sources lists every daemon
// that contributed; Failed lists peers that could not be scraped (the
// merge proceeds without them — partial fleet views are still views).
type ClusterMetricsResponse struct {
	Sources  []string
	Failed   []string
	Families []telemetry.FamilySnapshot
}

// EventsDumpRequest asks a daemon for its structured event journal.
// Max caps the answer to the newest Max events (<= 0 returns the whole
// retained ring).
type EventsDumpRequest struct {
	Max int
}

// EventsDumpResponse carries the retained events oldest-first. Total is
// the number ever recorded (>= len(Events) once the ring has evicted).
type EventsDumpResponse struct {
	Total  int
	Events []watch.Event
}

package wiera

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/coord"
	"repro/internal/cost"
	"repro/internal/flight"
	"repro/internal/object"
	"repro/internal/policy"
	"repro/internal/repair"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/internal/tier"
	"repro/internal/tiera"
	"repro/internal/transport"
	"repro/internal/wire"
)

// lockWait bounds how long a node waits for the global per-key lock.
const lockWait = time.Minute

// NodeConfig assembles a data-plane node: one Tiera instance plus the
// global-policy machinery around it.
type NodeConfig struct {
	// Name is the node's fabric endpoint name (unique).
	Name string
	// InstanceID is the Wiera instance this node belongs to.
	InstanceID string
	// Region places the node.
	Region simnet.Region
	// Fabric connects the node to peers, the coordination service, and the
	// Wiera server.
	Fabric *transport.Fabric
	// LocalSpec is the node's local Tiera policy.
	LocalSpec *policy.Spec
	// LocalParams binds local spec parameters.
	LocalParams map[string]policy.Value
	// GlobalSpec is the Wiera policy every node of the instance shares.
	GlobalSpec *policy.Spec
	// GlobalParams binds global spec parameters.
	GlobalParams map[string]policy.Value
	// DynamicSpec optionally supplies control-plane threshold events
	// (DynamicConsistency, ChangePrimary). Control events persist across
	// consistency changes: change_policy(consistency, ...) swaps only the
	// data-plane events, as Fig 5(a) requires.
	DynamicSpec *policy.Spec
	// CoordDst names the coordination (lock) service endpoint ("" = no
	// locking available; lock actions will fail).
	CoordDst string
	// ServerDst names the Wiera server endpoint for change_policy requests
	// ("" = changes applied locally only — useful in tests).
	ServerDst string
	// Primary marks this node's view of the current primary node name.
	Primary string
	// QueueFlushEvery is the background propagation period for queued
	// updates (default 500ms of clock time).
	QueueFlushEvery time.Duration
	// MonitorWindow is the latency monitor's sample window (default
	// DefaultMonitorWindow); keep it well under the policy's period
	// threshold.
	MonitorWindow time.Duration
	// NoQueueSupersede disables per-key supersession in the update queue
	// (ablation only).
	NoQueueSupersede bool
	// MaxBatchBytes bounds one replication batch chunk's payload (the
	// maxBatchBytes spawn param). 0 uses the 1 MiB default; negative
	// disables batching so every queued update ships as its own fan-out RPC
	// (the per-key ablation the batchflush experiment measures against).
	MaxBatchBytes int64
	// ECScheme selects the erasure-coding scheme for the stripe action as
	// "k+m" (the ecScheme spawn param). Empty uses ec.DefaultScheme (4+2).
	ECScheme string
	// ECThresholdBytes is the minimum object size the stripe chooser will
	// erasure-code (the ecThresholdBytes spawn param). 0 uses the 64 KiB
	// default; negative erasure-codes every size.
	ECThresholdBytes int64
	// ECHotGets is the access count at which the stripe chooser deems an
	// object hot and keeps it fully replicated (the ecHotGets spawn
	// param). <= 0 uses the default.
	ECHotGets int64
	// HeatTrack enables per-key heat tracking and hot-key selective
	// replication (the heatTrack spawn param). The remaining Heat fields
	// are ignored when false.
	HeatTrack bool
	// HeatPromoteRate / HeatDemoteRate are the decayed access-rate
	// thresholds (accesses per heat interval half-life) at which a key is
	// promoted to extra replicas / demoted back. Zero uses defaults; a
	// demote at or above promote is clamped to promote/5.
	HeatPromoteRate float64
	HeatDemoteRate  float64
	// HeatReplicas is how many extra replicas a promoted key gets (default
	// 2).
	HeatReplicas int
	// HeatInterval is the heat loop period (decay + promote/demote scan;
	// default 2s of clock time).
	HeatInterval time.Duration
	// HeatTopK sizes the exact hottest-keys overlay (default 32).
	HeatTopK int
	// Tenants declares the instance's tenants with their scheduler weights
	// and admission quotas (the tenants/tenantWeight:<id>/tenantIOPS:<id>/
	// tenantBytes:<id> spawn params). Empty disables tenancy entirely:
	// untenanted keys stay unqualified and no admission or scheduling runs.
	Tenants []tenant.Config
	// TenantSlots is the weighted-fair scheduler's concurrency (the
	// tenantSlots spawn param); <=0 uses defaultTenantSlots.
	TenantSlots int
	// AntiEntropyEvery is the background anti-entropy round period
	// (internal/repair). A positive period enables full Merkle digest sync
	// every round; 0 (the default) runs hinted handoff and read repair only
	// — periodic full sync is opt-in because it would replicate keys that a
	// placement policy deliberately keeps local. Negative disables the
	// repair subsystem entirely.
	AntiEntropyEvery time.Duration
	// Accountant receives tier request charges.
	Accountant *cost.Accountant
	// SLOs declares the node's service-level objectives. Latency objectives
	// (Op "put"/"get") and availability objectives (Threshold 0) are
	// sourced from the node's own histograms and error counters; Source
	// fields are filled in here and need not be set. Empty disables the
	// SLO engine.
	SLOs []flight.Objective
	// SLOInterval is the SLO engine's evaluation period (default 1s of
	// clock time).
	SLOInterval time.Duration
	// WireCodec selects how this node encodes outgoing RPC payloads (the
	// wireCodec spawn param). The zero value CodecAuto uses the binary wire
	// codec for hot-path messages; CodecGob forces gob everywhere — the
	// pre-upgrade format — for mixed-version clusters. Decoding always
	// accepts both formats regardless of this setting.
	WireCodec transport.Codec
	// MetaPath persists local metadata when non-empty.
	MetaPath string
	// ExtraTiers installs pre-built tiers into the local instance, keyed by
	// tier label — the paper's modular instances (Sec 3.2.2): another
	// instance adapted as a storage tier.
	ExtraTiers map[string]tier.Tier
}

// Node is one Wiera data-plane member: a Tiera instance executing a global
// policy.
type Node struct {
	name       string
	instanceID string
	region     simnet.Region
	clk        clock.Clock
	local      *tiera.Instance
	ep         *transport.Endpoint
	fabric     *transport.Fabric
	locks      *coord.Client
	serverDst  string
	codec      transport.Codec // encode codec for outgoing requests

	mu         sync.Mutex
	prog       *policy.Program
	policyName string
	peers      []PeerInfo // all members including self
	primary    string
	epoch      int64

	// controlEvents are the threshold (monitoring) events, fixed at node
	// creation; consistency changes do not replace them.
	controlEvents []*policy.CompiledEvent

	gate    *opGate
	queue   *updateQueue
	batch   *batcher       // chunked group-commit replication fan-out
	ecm     *ecManager     // erasure-coded distribution (stripe action)
	repair  *repairManager // nil when AntiEntropyEvery < 0
	shards  *shardManager  // inert (accepts every key) until a RingMsg arrives
	heat    *heatTracker   // nil unless HeatTrack (hot-key selective replication)
	tenants *tenantManager // nil unless the instance declares tenants

	latMon *thresholdMonitor // LatencyMonitoring (put)
	reqMon *requestsMonitor  // RequestsMonitoring (primary)
	sloMon *sloMonitor       // SLOViolation (slo); nil without objectives

	// flightRec is the fabric's shared per-request flight recorder (nil
	// when telemetry is disabled); sloEngine evaluates the node's declared
	// objectives (nil without objectives).
	flightRec *flight.Recorder
	sloEngine *flight.Engine

	// PutLatency records application-perceived put latency (lock + fan-out
	// included); GetLatency likewise for gets. Both are children of the
	// fabric's telemetry registry ("wiera_op_seconds"), so the values here,
	// NodeStats, and the /metrics endpoint can never disagree. Nil (no-op)
	// when the fabric runs without telemetry.
	PutLatency *telemetry.Histogram
	GetLatency *telemetry.Histogram

	// ReplLatency records background replication fan-out latency (op
	// "replicate" of wiera_op_seconds). The SLO engine's put objective
	// draws from it alongside PutLatency for the same reason the latency
	// monitor observes fan-outs: under eventual consistency application
	// puts are fast by construction, and only the fan-outs still show the
	// degraded network.
	ReplLatency *telemetry.Histogram

	// PutSeries records (time, put latency ms) for timeline figures.
	PutSeries *stats.Series

	staleReads *telemetry.Counter
	freshReads *telemetry.Counter
	putErrors  *telemetry.Counter
	getErrors  *telemetry.Counter
	queueDepth *telemetry.Gauge
	closed     bool
}

// NewNode builds and registers a node on the fabric.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Fabric == nil {
		return nil, errors.New("wiera: fabric required")
	}
	if cfg.GlobalSpec == nil || !cfg.GlobalSpec.IsGlobal {
		return nil, errors.New("wiera: global (Wiera) spec required")
	}
	clk := cfg.Fabric.Network().Clock()
	local, err := tiera.New(tiera.Config{
		Name: cfg.Name + "/local", Region: cfg.Region, Spec: cfg.LocalSpec,
		Params: cfg.LocalParams, Clock: clk, Accountant: cfg.Accountant,
		MetaPath: cfg.MetaPath, ExtraTiers: cfg.ExtraTiers,
		Metrics: cfg.Fabric.Metrics(),
	})
	if err != nil {
		return nil, err
	}
	prog, err := policy.Compile(cfg.GlobalSpec, cfg.GlobalParams)
	if err != nil {
		local.Close()
		return nil, err
	}
	ep, err := cfg.Fabric.NewEndpoint(cfg.Name, cfg.Region)
	if err != nil {
		local.Close()
		return nil, err
	}
	n := &Node{
		name:       cfg.Name,
		instanceID: cfg.InstanceID,
		region:     cfg.Region,
		clk:        clk,
		local:      local,
		ep:         ep,
		fabric:     cfg.Fabric,
		serverDst:  cfg.ServerDst,
		codec:      cfg.WireCodec,
		prog:       prog,
		policyName: cfg.GlobalSpec.Name,
		primary:    cfg.Primary,
		gate:       newOpGate(),
		PutSeries:  stats.NewSeries(cfg.Name + "/put"),
	}
	// All node-level counters live on the fabric's registry: the same
	// children back NodeStats (collectStats) and the /metrics endpoint.
	reg := cfg.Fabric.Metrics()
	region := string(cfg.Region)
	opHist := reg.Histogram("wiera_op_seconds",
		"Application-perceived Wiera operation latency.", "op", "node", "region")
	n.PutLatency = opHist.With("put", cfg.Name, region)
	n.GetLatency = opHist.With("get", cfg.Name, region)
	n.ReplLatency = opHist.With("replicate", cfg.Name, region)
	reads := reg.Counter("wiera_reads_total",
		"Gets by freshness against the global newest version.", "node", "region", "freshness")
	n.staleReads = reads.With(cfg.Name, region, "stale")
	n.freshReads = reads.With(cfg.Name, region, "fresh")
	opErrs := reg.Counter("wiera_op_errors_total",
		"Wiera operations that returned an error to the application.", "op", "node", "region")
	n.putErrors = opErrs.With("put", cfg.Name, region)
	n.getErrors = opErrs.With("get", cfg.Name, region)
	n.flightRec = cfg.Fabric.Flight()
	n.queueDepth = reg.Gauge("wiera_queue_depth",
		"Keys with updates queued for lazy propagation.", "node", "region").
		With(cfg.Name, region)
	n.shards = newShardManager(n)
	n.batch = newBatcher(n, cfg.MaxBatchBytes)
	n.ecm, err = newECManager(n, cfg)
	if err != nil {
		local.Close()
		cfg.Fabric.Remove(cfg.Name)
		return nil, err
	}
	n.heat = newHeatTracker(n, cfg)
	n.tenants = newTenantManager(n, cfg)
	n.controlEvents = append(n.controlEvents, prog.ByKind(policy.KindThreshold)...)
	if cfg.DynamicSpec != nil {
		dynProg, err := policy.Compile(cfg.DynamicSpec, cfg.GlobalParams)
		if err != nil {
			local.Close()
			cfg.Fabric.Remove(cfg.Name)
			return nil, err
		}
		n.controlEvents = append(n.controlEvents, dynProg.ByKind(policy.KindThreshold)...)
	}
	if cfg.CoordDst != "" {
		cli, err := coord.NewClient(ep, cfg.CoordDst, 24*365*time.Hour)
		if err != nil {
			local.Close()
			cfg.Fabric.Remove(cfg.Name)
			return nil, fmt.Errorf("wiera: coord session: %w", err)
		}
		n.locks = cli
	}
	flushEvery := cfg.QueueFlushEvery
	if flushEvery <= 0 {
		flushEvery = 500 * time.Millisecond
	}
	n.queue = newUpdateQueue(n, flushEvery, !cfg.NoQueueSupersede)
	if cfg.AntiEntropyEvery >= 0 {
		rm, err := newRepairManager(n, cfg)
		if err != nil {
			local.Close()
			cfg.Fabric.Remove(cfg.Name)
			return nil, err
		}
		n.repair = rm
	}
	n.latMon = newThresholdMonitor(n, "put", cfg.MonitorWindow)
	n.reqMon = newRequestsMonitor(n)
	if len(cfg.SLOs) > 0 {
		n.sloMon = newSLOMonitor(n)
		n.sloEngine = flight.NewEngine(flight.EngineConfig{
			Clock:    clk,
			Interval: cfg.SLOInterval,
			Registry: reg,
			Node:     cfg.Name,
			Region:   region,
			OnStatus: n.sloMon.observe,
			Journal:  cfg.Fabric.Events(),
		}, append(n.sloObjectives(cfg.SLOs), n.tenants.objectives(cfg.SLOs)...)...)
	}
	ep.Serve(n.handle)
	n.queue.start()
	if n.repair != nil {
		n.repair.start()
	}
	n.sloEngine.Start()
	n.heat.start()
	local.Start()
	registerNode(n)
	return n, nil
}

// sloObjectives binds declared objectives to the node's own histograms and
// error counters. Latency thresholds are aligned up to a histogram bucket
// bound so good-event counts are exact rather than conservatively low.
func (n *Node) sloObjectives(objs []flight.Objective) []flight.Objective {
	out := make([]flight.Objective, 0, len(objs))
	for _, o := range objs {
		switch {
		case o.Threshold > 0 && o.Op == "put":
			// Puts plus background replication fan-outs (see ReplLatency).
			th := telemetry.AlignedBound(o.Threshold)
			o.Threshold = th
			o.Source = func() (int64, int64) {
				good := n.PutLatency.CountLE(th) + n.ReplLatency.CountLE(th)
				return good, n.PutLatency.Count() + n.ReplLatency.Count()
			}
		case o.Threshold > 0 && o.Op == "get":
			th := telemetry.AlignedBound(o.Threshold)
			o.Threshold = th
			o.Source = func() (int64, int64) {
				return n.GetLatency.CountLE(th), n.GetLatency.Count()
			}
		case o.Threshold == 0:
			// Availability: every completed op is good, every errored op bad.
			o.Op = "availability"
			o.Source = func() (int64, int64) {
				good := n.PutLatency.Count() + n.GetLatency.Count()
				return good, good + n.putErrors.Value() + n.getErrors.Value()
			}
		default:
			continue
		}
		out = append(out, o)
	}
	return out
}

// Name returns the node's endpoint name.
func (n *Node) Name() string { return n.name }

// Region returns the node's region.
func (n *Node) Region() simnet.Region { return n.region }

// Local returns the node's Tiera instance.
func (n *Node) Local() *tiera.Instance { return n.local }

// PolicyName returns the current global policy name.
func (n *Node) PolicyName() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.policyName
}

// Primary returns the node's current view of the primary instance.
func (n *Node) Primary() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.primary
}

// IsPrimary reports whether this node is the primary.
func (n *Node) IsPrimary() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.primary == n.name
}

// SetPeers installs the membership list (control plane).
func (n *Node) SetPeers(peers []PeerInfo, primary string) {
	n.mu.Lock()
	n.peers = append([]PeerInfo(nil), peers...)
	if primary != "" {
		n.primary = primary
	}
	n.mu.Unlock()
}

// Peers returns the other members (excluding self).
func (n *Node) Peers() []PeerInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]PeerInfo, 0, len(n.peers))
	for _, p := range n.peers {
		if p.Name != n.name {
			out = append(out, p)
		}
	}
	return out
}

// StaleReads and FreshReads report how many gets returned data that was
// outdated (resp. current) with respect to the globally newest version at
// read time — the Fig 8 metric. Tracking happens in Get.
func (n *Node) StaleReads() int64 { return n.staleReads.Value() }

// FreshReads reports gets that returned the globally latest version.
func (n *Node) FreshReads() int64 { return n.freshReads.Value() }

// Put stores data under key through the global policy. fromApp
// distinguishes direct application puts from forwarded ones for the
// requests monitor.
func (n *Node) Put(ctx context.Context, key string, data []byte, tags []string) (object.Meta, error) {
	return n.put(ctx, key, data, tags, true)
}

func (n *Node) put(ctx context.Context, key string, data []byte, tags []string, fromApp bool) (_ object.Meta, retErr error) {
	ctx, span := telemetry.StartSpan(ctx, "wiera.put")
	span.SetAttr("node", n.name)
	span.SetAttr("region", string(n.region))
	span.SetAttr("policy", n.PolicyName())
	defer span.End()

	// Only application-initiated puts open a flight record; forwarded puts
	// appear as rpc hops in the originator's record instead.
	var fa *flight.Active
	tid := n.tenants.tenantOf(key)
	if fromApp {
		fa = n.flightRec.Begin("put", key, n.name, string(n.region), n.PolicyName())
		if sc := span.Context(); sc.Valid() {
			fa.SetTraceID(sc.Trace.String())
		}
		if n.tenants != nil {
			fa.SetTenant(tid)
		}
		ctx = flight.NewContext(ctx, fa)
		defer func() {
			// A quota NACK is admission doing its job, not an availability
			// event: it must not burn the instance's error budget.
			if retErr != nil && tenant.AsQuotaExceeded(retErr) == nil {
				n.putErrors.Inc()
			}
			fa.End(retErr)
		}()
		// Quota admission runs before the gate so a throttled tenant is
		// NACKed without consuming a slot, a lock, or tier capacity.
		if err := n.tenants.admit(tid, len(data)); err != nil {
			span.SetError(err)
			return object.Meta{}, err
		}
	}

	appStart := n.clk.Now()
	if err := n.gate.enter(); err != nil {
		span.SetError(err)
		return object.Meta{}, err
	}
	defer n.gate.exit()

	// start excludes time blocked at the gate during a policy change: the
	// latency monitor watches the operation path, and feeding it the
	// transition pause would read as a spurious network delay. The
	// application-perceived histogram still includes it.
	start := n.clk.Now()
	if wait := start.Sub(appStart); wait > 0 {
		fa.AddHop(flight.Hop{Kind: flight.HopQueue, Name: "gate", Wait: wait, Duration: wait})
	}
	// Weighted-fair scheduling applies to application-initiated ops only:
	// forwarded puts already consumed their originator's slot, and letting
	// them queue here could deadlock two saturated nodes against each other.
	if fromApp {
		if err := n.tenants.acquire(tid, fa); err != nil {
			span.SetError(err)
			return object.Meta{}, err
		}
		defer n.tenants.release()
	}
	// Ownership is checked inside the gate: an op parked behind a drain's
	// freeze re-evaluates against the map installed meanwhile, so no write
	// can land on a shard after its keys streamed away.
	if err := n.shards.checkKey(key); err != nil {
		span.SetError(err)
		return object.Meta{}, err
	}
	// First write of a not-yet-migrated key during a rebalance: continue
	// the previous owner's version history instead of restarting at v1.
	n.shards.bootstrapKey(ctx, key)
	n.mu.Lock()
	prog := n.prog
	n.mu.Unlock()

	op := &globalPutExec{ctx: ctx, n: n, key: key, data: data, tags: tags}
	fired := false
	for _, ev := range prog.ByKind(policy.KindInsert) {
		env := n.putEnv(key, data)
		f, err := ev.Fire(env, op)
		if err != nil {
			op.releaseLockIfHeld()
			span.SetError(err)
			return object.Meta{}, err
		}
		fired = fired || f
	}
	if !fired || (op.meta == nil) {
		// No global insert policy stored or forwarded: default local put.
		m, err := n.local.PutTagged(ctx, key, data, tags)
		if err != nil {
			span.SetError(err)
			return object.Meta{}, err
		}
		op.meta = &m
	}
	elapsed := n.clk.Since(appStart)
	if fromApp {
		n.PutLatency.RecordTrace(elapsed, span.TraceIDString())
		n.PutSeries.Append(n.clk.Now(), float64(elapsed)/float64(time.Millisecond))
		n.latMon.observe(n.clk.Since(start))
		n.reqMon.observeDirect()
		n.tenants.observe(tid, "put", elapsed, len(data))
	}
	n.heat.observe(key)
	n.heat.afterPut(key, *op.meta, data)
	return *op.meta, nil
}

func (n *Node) putEnv(key string, data []byte) *policy.MapEnv {
	env := policy.NewMapEnv()
	env.Set("insert.key", policy.StringVal(key))
	env.Set("insert.object", policy.IdentVal(key))
	env.Set("insert.object.size", policy.SizeVal(int64(len(data))))
	env.Set("local_instance.isPrimary", policy.BoolVal(n.IsPrimary()))
	return env
}

// Get retrieves key's latest local version through the global policy
// (forwarding policies apply); on a local miss it falls back to the
// nearest peer holding the data.
func (n *Node) Get(ctx context.Context, key string) (retData []byte, _ object.Meta, retErr error) {
	ctx, span := telemetry.StartSpan(ctx, "wiera.get")
	span.SetAttr("node", n.name)
	span.SetAttr("region", string(n.region))
	span.SetAttr("policy", n.PolicyName())
	defer span.End()

	fa := n.flightRec.Begin("get", key, n.name, string(n.region), n.PolicyName())
	if sc := span.Context(); sc.Valid() {
		fa.SetTraceID(sc.Trace.String())
	}
	tid := n.tenants.tenantOf(key)
	if n.tenants != nil {
		fa.SetTenant(tid)
	}
	ctx = flight.NewContext(ctx, fa)
	opStart := n.clk.Now()
	defer func() {
		// Quota NACKs are neither availability events nor tenant workload.
		if retErr != nil && tenant.AsQuotaExceeded(retErr) == nil {
			n.getErrors.Inc()
		}
		if retErr == nil {
			n.tenants.observe(tid, "get", n.clk.Since(opStart), len(retData))
		}
		fa.End(retErr)
	}()
	// Quota admission before the gate: a throttled get is NACKed without
	// consuming a slot or touching a tier. Gets spend an IOPS token only;
	// the byte quota meters write ingress.
	if err := n.tenants.admit(tid, 0); err != nil {
		span.SetError(err)
		return nil, object.Meta{}, err
	}

	gateStart := n.clk.Now()
	if err := n.gate.enter(); err != nil {
		span.SetError(err)
		return nil, object.Meta{}, err
	}
	defer n.gate.exit()
	start := n.clk.Now()
	if wait := start.Sub(gateStart); wait > 0 {
		fa.AddHop(flight.Hop{Kind: flight.HopQueue, Name: "gate", Wait: wait, Duration: wait})
	}
	// Application gets queue in the weighted-fair scheduler alongside puts;
	// forwarded gets (MethodForwardGet) bypass it on the remote side.
	if err := n.tenants.acquire(tid, fa); err != nil {
		span.SetError(err)
		return nil, object.Meta{}, err
	}
	defer n.tenants.release()
	// A hot-key replica serves gets for keys this worker does not own: the
	// cache is consulted before the ownership NACK so clients spread across
	// owner + replicas without tripping wrong-shard redirects.
	if data, meta, ok := n.heat.serveHot(key); ok {
		n.heat.observe(key)
		n.GetLatency.RecordTrace(n.clk.Since(start), span.TraceIDString())
		fa.AddHop(flight.Hop{Kind: flight.HopCache, Name: "hot-replica", Bytes: int64(len(data))})
		return data, meta, nil
	}
	if err := n.shards.checkKey(key); err != nil {
		span.SetError(err)
		return nil, object.Meta{}, err
	}
	n.heat.observe(key)

	n.mu.Lock()
	prog := n.prog
	n.mu.Unlock()

	// Get-forwarding policies (Sec 5.4: all gets forwarded to the AWS
	// memory instance).
	for _, ev := range prog.ByKind(policy.KindGet) {
		env := policy.NewMapEnv()
		env.Set("get.key", policy.StringVal(key))
		env.Set("local_instance.isPrimary", policy.BoolVal(n.IsPrimary()))
		ge := &globalGetExec{ctx: ctx, n: n, key: key}
		fired, err := ev.Fire(env, ge)
		if err != nil {
			span.SetError(err)
			return nil, object.Meta{}, err
		}
		if fired && ge.resp != nil {
			n.GetLatency.RecordTrace(n.clk.Since(start), span.TraceIDString())
			return ge.resp.Data, ge.resp.Meta, nil
		}
	}

	data, meta, err := n.local.Get(ctx, key)
	if err == nil && meta.IsEC() {
		// The local payload is a fragment bundle: gather any k fragments
		// from the group and reconstruct the object.
		data, meta, err = n.ecm.reconstruct(ctx, data, meta)
	}
	if err != nil {
		// Local miss. During an unsettled rebalance the key may still live
		// at its previous in-region owner; otherwise read from the nearest
		// group peer that has it.
		if d, m, ok := n.shards.fetchFromPrev(ctx, key); ok {
			data, meta, err = d, m, nil
		} else {
			data, meta, err = n.getFromPeers(ctx, key)
		}
		if err != nil {
			span.SetError(err)
			return nil, object.Meta{}, err
		}
		// Read repair: install the fetched version locally in the
		// background so the next read of key is served here. An
		// erasure-coded version must never absorb the reconstructed full
		// object (that would replace this member's fragment bundle with a
		// full copy); regenerate our own fragments from parity instead.
		if n.repair != nil {
			if meta.IsEC() {
				go n.ecm.applyRepair(repair.Update{Meta: meta})
				fa.AddHop(flight.Hop{Kind: flight.HopRepair, Name: "ec-regenerate"})
			} else {
				n.repair.absorb(meta, data)
				fa.AddHop(flight.Hop{Kind: flight.HopRepair, Name: "absorb", Bytes: int64(len(data))})
			}
		}
	}
	n.GetLatency.RecordTrace(n.clk.Since(start), span.TraceIDString())
	if n.trackFreshness(meta) && n.repair != nil {
		// Read repair: a peer holds a newer version than the one just
		// returned — reconcile the key asynchronously.
		n.repair.scheduleKeyRepair(meta.Key)
		fa.AddHop(flight.Hop{Kind: flight.HopRepair, Name: "key-repair"})
	}
	return data, meta, nil
}

// trackFreshness compares the returned version against the globally
// newest version of the key across peers' indexes (oracle view for the
// Fig 8 staleness metric; no network cost is charged) and reports whether
// the read was stale — the read-repair trigger.
func (n *Node) trackFreshness(meta object.Meta) bool {
	latest := meta.Version
	for _, p := range n.Peers() {
		node := lookupNode(p.Name)
		if node == nil {
			continue
		}
		if m, err := node.local.Objects().Latest(meta.Key); err == nil && m.Version > latest {
			latest = m.Version
		}
	}
	if latest > meta.Version {
		n.staleReads.Inc()
		return true
	}
	n.freshReads.Inc()
	return false
}

// GetVersion retrieves a specific version locally.
func (n *Node) GetVersion(ctx context.Context, key string, v object.Version) ([]byte, object.Meta, error) {
	return n.local.GetVersion(ctx, key, v)
}

// VersionList lists available versions locally.
func (n *Node) VersionList(key string) ([]object.Version, error) {
	return n.local.VersionList(key)
}

// Remove deletes all versions locally and on all peers, fanning the peer
// removes out in parallel and surfacing the first failure — a remove the
// application saw succeed must not silently leave live copies behind.
// Receivers treat a missing key as already removed, so peers that never
// held the key do not turn the fan-out into an error.
func (n *Node) Remove(ctx context.Context, key string) error {
	if err := n.local.Remove(ctx, key); err != nil {
		return err
	}
	peers := n.Peers()
	if len(peers) == 0 {
		return nil
	}
	payload, err := n.enc(RemoveRequest{Key: key})
	if err != nil {
		return err
	}
	errs := make(chan error, len(peers))
	for _, p := range peers {
		go func(p PeerInfo) {
			_, err := n.ep.Call(ctx, p.Name, MethodRemove, payload)
			errs <- err
		}(p)
	}
	var firstErr error
	for range peers {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// RemoveVersion deletes one version locally.
func (n *Node) RemoveVersion(ctx context.Context, key string, v object.Version) error {
	return n.local.RemoveVersion(ctx, key, v)
}

// getFromPeers reads key from peers in ascending RTT order.
func (n *Node) getFromPeers(ctx context.Context, key string) ([]byte, object.Meta, error) {
	peers := n.Peers()
	net := n.fabric.Network()
	sort.Slice(peers, func(i, j int) bool {
		return net.RTT(n.region, peers[i].Region) < net.RTT(n.region, peers[j].Region)
	})
	var lastErr error = object.ErrNotFound{Key: key}
	fa := flight.FromContext(ctx)
	for _, p := range peers {
		payload, err := n.enc(GetRequest{Key: key})
		if err != nil {
			return nil, object.Meta{}, err
		}
		callStart := n.clk.Now()
		raw, err := n.ep.Call(ctx, p.Name, MethodForwardGet, payload)
		if err != nil {
			fa.AddHop(flight.Hop{
				Kind: flight.HopRPC, Name: p.Name,
				Duration: n.clk.Since(callStart), Err: err.Error(),
			})
			lastErr = err
			continue
		}
		var resp GetResponse
		if err := transport.Decode(raw, &resp); err != nil {
			return nil, object.Meta{}, err
		}
		fa.AddHop(flight.Hop{
			Kind: flight.HopRPC, Name: p.Name,
			Duration: n.clk.Since(callStart), Bytes: int64(len(resp.Data)),
			CostUSD: n.transferCost(p.Region, int64(len(resp.Data))),
		})
		return resp.Data, resp.Meta, nil
	}
	return nil, object.Meta{}, lastErr
}

// transferCost prices moving bytes between this node's region and peer's
// (free inside one region, inter-AWS rate otherwise — Table 4 network rates
// are class-independent, so Memory stands in for all).
func (n *Node) transferCost(peer simnet.Region, bytes int64) float64 {
	scope := cost.NetInterAWS
	if peer == n.region {
		scope = cost.NetIntraDC
	}
	return cost.TransferCost(cost.ClassMemory, scope, bytes)
}

// addRPCHop files a flight hop for a completed peer call started at start,
// priced by the target's region (self if the name is unknown).
func (n *Node) addRPCHop(ctx context.Context, target string, start time.Time, bytes int64) {
	fa := flight.FromContext(ctx)
	if fa == nil {
		return
	}
	region := n.region
	n.mu.Lock()
	for _, p := range n.peers {
		if p.Name == target {
			region = p.Region
			break
		}
	}
	n.mu.Unlock()
	fa.AddHop(flight.Hop{
		Kind: flight.HopRPC, Name: target,
		Duration: n.clk.Since(start), Bytes: bytes,
		CostUSD: n.transferCost(region, bytes),
	})
}

// fanOutSync pushes an update to every peer synchronously, in parallel,
// returning when all have acknowledged (or any fails). A peer that cannot
// be reached gets the update queued as a hint, so an acknowledged write is
// never lost to a partition or crash: the repair daemon replays it when the
// peer answers pings again.
func (n *Node) fanOutSync(ctx context.Context, msg UpdateMsg) error {
	peers := n.Peers()
	if len(peers) == 0 {
		return nil
	}
	payload, err := n.enc(msg)
	if err != nil {
		return err
	}
	fa := flight.FromContext(ctx)
	type result struct {
		peer string
		err  error
	}
	results := make(chan result, len(peers))
	for _, p := range peers {
		go func(p PeerInfo) {
			callStart := n.clk.Now()
			_, err := n.ep.Call(ctx, p.Name, MethodApplyUpdate, payload)
			hop := flight.Hop{
				Kind: flight.HopRPC, Name: p.Name,
				Duration: n.clk.Since(callStart), Bytes: int64(len(payload)),
				CostUSD: n.transferCost(p.Region, int64(len(payload))),
			}
			if err != nil {
				hop.Err = err.Error()
			}
			fa.AddHop(hop)
			results <- result{peer: p.Name, err: err}
		}(p)
	}
	var firstErr error
	for range peers {
		r := <-results
		if r.err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = r.err
		}
		if n.repair != nil {
			n.repair.addHint(r.peer, msg)
		}
	}
	return firstErr
}

// enc encodes an outgoing request payload under the node's codec.
func (n *Node) enc(v any) ([]byte, error) {
	return transport.EncodeWith(n.codec, v)
}

// replyCodec picks the codec for a response: answer in the format the
// request arrived in. A binary request proves the peer decodes wire
// frames, so the node's own codec applies; a gob request may come from a
// not-yet-upgraded peer, so the reply stays gob.
func (n *Node) replyCodec(payload []byte) transport.Codec {
	if wire.Is(payload) {
		return n.codec
	}
	return transport.CodecGob
}

// handle is the node's RPC dispatcher. ctx carries the caller's trace
// span (extracted from the wire envelope by the transport layer).
func (n *Node) handle(ctx context.Context, method string, payload []byte) ([]byte, error) {
	rc := n.replyCodec(payload)
	switch method {
	case MethodPut:
		var req PutRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		meta, err := n.Put(ctx, req.Key, req.Data, req.Tags)
		if err != nil {
			return nil, err
		}
		return transport.EncodeWith(rc, PutResponse{Meta: meta})
	case MethodForwardPut:
		var req PutRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		n.reqMon.observeForwarded(req.From)
		meta, err := n.put(ctx, req.Key, req.Data, req.Tags, false)
		if err != nil {
			return nil, err
		}
		return transport.EncodeWith(rc, PutResponse{Meta: meta})
	case MethodGet:
		var req GetRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		data, meta, err := n.Get(ctx, req.Key)
		if err != nil {
			return nil, err
		}
		// A hot key's owner advertises its replica set so the client can
		// spread subsequent gets; empty clears any hint the client holds.
		return transport.EncodeWith(rc, GetResponse{
			Data: data, Meta: meta, HotReplicas: n.heat.replicasFor(req.Key),
		})
	case MethodForwardGet:
		var req GetRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		data, meta, err := n.local.Get(ctx, req.Key)
		if err == nil && meta.IsEC() {
			data, meta, err = n.ecm.reconstruct(ctx, data, meta)
		}
		if err != nil {
			return nil, err
		}
		return transport.EncodeWith(rc, GetResponse{Data: data, Meta: meta})
	case MethodGetVersion:
		var req GetVersionRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		if err := n.shards.checkKey(req.Key); err != nil {
			return nil, err
		}
		data, meta, err := n.GetVersion(ctx, req.Key, req.Version)
		if err == nil && meta.IsEC() {
			data, meta, err = n.ecm.reconstruct(ctx, data, meta)
		}
		if err != nil {
			return nil, err
		}
		return transport.EncodeWith(rc, GetResponse{Data: data, Meta: meta})
	case MethodVersionList:
		var req VersionListRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		if err := n.shards.checkKey(req.Key); err != nil {
			return nil, err
		}
		vs, err := n.VersionList(req.Key)
		if err != nil {
			return nil, err
		}
		return transport.EncodeWith(rc, VersionListResponse{Versions: vs})
	case MethodRemove:
		var req RemoveRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		// Group peers hold the same shard, so the ownership check holds for
		// both application removes and the owner's fan-out.
		if err := n.shards.checkKey(req.Key); err != nil {
			return nil, err
		}
		// Remote-initiated removes are local-only (no re-broadcast) and
		// idempotent: a key this replica never stored is already removed,
		// not an error the originator's fan-out should surface.
		if err := n.local.Remove(ctx, req.Key); err != nil {
			var nf object.ErrNotFound
			if !errors.As(err, &nf) {
				return nil, err
			}
		}
		return transport.EncodeWith(rc, Empty{})
	case MethodRemoveVer:
		var req RemoveVersionRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		if err := n.shards.checkKey(req.Key); err != nil {
			return nil, err
		}
		if err := n.RemoveVersion(ctx, req.Key, req.Version); err != nil {
			return nil, err
		}
		return transport.EncodeWith(rc, Empty{})
	case MethodApplyUpdate:
		var msg UpdateMsg
		if err := transport.Decode(payload, &msg); err != nil {
			return nil, err
		}
		// Replica updates for keys this shard no longer owns (hint replays,
		// queued fan-outs from before a rebalance) redirect to the owner.
		accepted, err := n.shards.applyOrForward(ctx, msg)
		if err != nil {
			return nil, err
		}
		return transport.EncodeWith(rc, UpdateAck{Accepted: accepted})
	case MethodApplyUpdateBatch:
		var req UpdateBatchRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		// Entries are independent: each applies (or forwards) under LWW and
		// acks individually, so one bad entry fails only itself and the
		// sender retries/hints just that entry.
		resp := UpdateBatchResponse{Acks: make([]BatchAck, len(req.Updates))}
		for i, msg := range req.Updates {
			accepted, err := n.shards.applyOrForward(ctx, msg)
			if err != nil {
				resp.Acks[i].Err = err.Error()
				continue
			}
			resp.Acks[i].Accepted = accepted
		}
		return transport.EncodeWith(rc, resp)
	case MethodECFrag:
		return n.ecm.handleECFrag(ctx, payload)
	case MethodPlacement:
		var req PlacementRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		if err := n.shards.checkKey(req.Key); err != nil {
			return nil, err
		}
		return n.ecm.handlePlacement(ctx, req.Key)
	case MethodPlacementLocal:
		var req PlacementRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		return transport.EncodeWith(rc, n.ecm.placementLocal(req.Key))
	case MethodHotInstall:
		var msg HotInstallMsg
		if err := transport.Decode(payload, &msg); err != nil {
			return nil, err
		}
		if n.heat == nil {
			return nil, fmt.Errorf("wiera: node %s: heat tracking disabled", n.name)
		}
		n.heat.handleInstall(msg)
		return transport.EncodeWith(rc, Empty{})
	case MethodHotDrop:
		var msg HotDropMsg
		if err := transport.Decode(payload, &msg); err != nil {
			return nil, err
		}
		n.heat.handleDrop(msg.Key)
		return transport.EncodeWith(rc, Empty{})
	case MethodSnapshot:
		return n.snapshot(ctx)
	case MethodRepairDigest, MethodRepairEntries, MethodRepairPull, MethodRepairPush:
		if n.repair == nil {
			return nil, fmt.Errorf("wiera: node %s: repair subsystem disabled", n.name)
		}
		return n.repair.handle(ctx, method, payload)
	case MethodSetPeers:
		var msg PeersMsg
		if err := transport.Decode(payload, &msg); err != nil {
			return nil, err
		}
		n.SetPeers(msg.Peers, msg.Primary)
		return transport.EncodeWith(rc, Empty{})
	case MethodSetRing:
		var msg RingMsg
		if err := transport.Decode(payload, &msg); err != nil {
			return nil, err
		}
		n.shards.install(msg)
		return transport.EncodeWith(rc, Empty{})
	case MethodRingDrain:
		moved, err := n.shards.drain(ctx)
		if err != nil {
			return nil, err
		}
		return transport.EncodeWith(rc, RingDrainResponse{Moved: moved})
	case MethodSetPrimary:
		var msg SetPrimaryMsg
		if err := transport.Decode(payload, &msg); err != nil {
			return nil, err
		}
		n.mu.Lock()
		n.primary = msg.Primary
		n.mu.Unlock()
		n.reqMon.reset()
		n.sloMon.reset()
		return transport.EncodeWith(rc, Empty{})
	case MethodPrepareChange:
		var msg PrepareChangeMsg
		if err := transport.Decode(payload, &msg); err != nil {
			return nil, err
		}
		if err := n.prepareChange(msg.Epoch); err != nil {
			return nil, err
		}
		return transport.EncodeWith(rc, Empty{})
	case MethodCommitChange:
		var msg CommitChangeMsg
		if err := transport.Decode(payload, &msg); err != nil {
			return nil, err
		}
		if err := n.commitChange(msg); err != nil {
			return nil, err
		}
		return transport.EncodeWith(rc, Empty{})
	case MethodStats:
		return transport.EncodeWith(rc, n.statsLocal())
	case MethodPing:
		return transport.EncodeWith(rc, PongMsg{Name: n.name})
	case MethodShutdown:
		go n.Close()
		return transport.EncodeWith(rc, Empty{})
	default:
		return nil, fmt.Errorf("wiera: node %s: unknown method %q", n.name, method)
	}
}

// snapshot serializes every key's latest version for new-replica sync.
func (n *Node) snapshot(ctx context.Context) ([]byte, error) {
	var resp SnapshotResponse
	for _, key := range n.local.Objects().Keys() {
		meta, err := n.local.Objects().Latest(key)
		if err != nil {
			continue
		}
		data, _, err := n.local.GetVersion(ctx, key, meta.Version)
		if err != nil {
			continue
		}
		resp.Updates = append(resp.Updates, UpdateMsg{Meta: meta, Data: data})
	}
	return transport.Encode(resp)
}

// SyncFrom pulls a full snapshot from peer and applies it (new replica
// bootstrap, Sec 4.4).
func (n *Node) SyncFrom(peer string) error {
	ctx := context.Background()
	payload, err := transport.Encode(SnapshotRequest{})
	if err != nil {
		return err
	}
	raw, err := n.ep.Call(ctx, peer, MethodSnapshot, payload)
	if err != nil {
		return err
	}
	var resp SnapshotResponse
	if err := transport.Decode(raw, &resp); err != nil {
		return err
	}
	for _, u := range resp.Updates {
		if _, err := n.local.ApplyRemote(ctx, u.Meta, u.Data); err != nil {
			return err
		}
	}
	return nil
}

// FlushQueue synchronously distributes every queued update (the queue
// response's lazy propagation, forced now). Experiments use it to measure
// one flush's wall clock instead of waiting out the background period.
func (n *Node) FlushQueue() { n.queue.flushNow() }

// QueueDepth reports how many keys currently have queued updates.
func (n *Node) QueueDepth() int { return n.queue.Len() }

// prepareChange drains in-flight operations and the update queue, then
// blocks new operations until commitChange.
func (n *Node) prepareChange(epoch int64) error {
	n.mu.Lock()
	if epoch <= n.epoch {
		n.mu.Unlock()
		return fmt.Errorf("wiera: stale change epoch %d (at %d)", epoch, n.epoch)
	}
	n.mu.Unlock()
	n.gate.freeze()
	n.queue.flushNow()
	return nil
}

// commitChange installs the new policy and unblocks operations.
func (n *Node) commitChange(msg CommitChangeMsg) error {
	var spec *policy.Spec
	var err error
	if msg.PolicyName != "" {
		spec, err = policy.Builtin(msg.PolicyName)
	} else {
		spec, err = policy.Parse(msg.PolicySrc)
	}
	if err != nil {
		n.gate.thaw()
		return err
	}
	prog, err := policy.Compile(spec, nil)
	if err != nil {
		n.gate.thaw()
		return err
	}
	n.mu.Lock()
	n.prog = prog
	n.policyName = spec.Name
	n.epoch = msg.Epoch
	if msg.Primary != "" {
		n.primary = msg.Primary
	}
	n.mu.Unlock()
	n.latMon.reset()
	n.sloMon.reset()
	if msg.Primary != "" {
		n.reqMon.reset()
	}
	n.gate.thaw()
	return nil
}

// requestPolicyChange asks the Wiera server to change the policy (the
// change_policy response, Sec 4.3). Without a server the change applies
// locally (single-node tests).
func (n *Node) requestPolicyChange(what, to string) error {
	return n.requestPolicyChangeVia(what, to, "")
}

// requestPolicyChangeVia additionally records which monitor triggered the
// change ("latency", "primary", "slo", ...) so the server's change log can
// attribute every switch to its cause.
func (n *Node) requestPolicyChangeVia(what, to, via string) error {
	if n.serverDst == "" {
		switch what {
		case "consistency":
			return n.commitChange(CommitChangeMsg{Epoch: n.epoch + 1, PolicyName: to})
		case "primary_instance":
			n.mu.Lock()
			n.primary = to
			n.mu.Unlock()
			return nil
		default:
			return fmt.Errorf("wiera: unknown change_policy target %q", what)
		}
	}
	payload, err := transport.Encode(ChangeRequestMsg{
		InstanceID: n.instanceID, What: what, To: to, From: n.name, Via: via,
	})
	if err != nil {
		return err
	}
	_, err = n.ep.Call(context.Background(), n.serverDst, MethodRequestChange, payload)
	return err
}

// Close stops the node and removes it from the fabric.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	n.gate.kill() // unblock any operation parked behind a policy change
	n.tenants.close()
	n.queue.stop()
	n.sloEngine.Stop()
	n.heat.stopLoop()
	if n.repair != nil {
		n.repair.stop()
	}
	if n.locks != nil {
		_ = n.locks.Close()
	}
	n.fabric.Remove(n.name)
	unregisterNode(n.name)
	return n.local.Close()
}

// Crash simulates an abrupt node failure: the endpoint vanishes and
// volatile tiers lose data, but no clean shutdown runs.
func (n *Node) Crash() {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	n.gate.kill()
	n.tenants.close()
	n.queue.stop()
	n.sloEngine.Stop()
	n.heat.stopLoop()
	if n.repair != nil {
		// Stop the daemon but leave the hint backend unflushed: a crash
		// takes no clean shutdown path, and durable hints replay on respawn.
		n.repair.daemon.Stop()
	}
	n.fabric.Remove(n.name)
	unregisterNode(n.name)
	n.local.CrashVolatile()
	n.local.Stop()
}

// resolveTarget maps policy target names to node names: primary_instance,
// an explicit node name, or a region name (the node in that region).
func (n *Node) resolveTarget(target string) (string, error) {
	switch target {
	case "primary_instance":
		p := n.Primary()
		if p == "" {
			return "", errors.New("wiera: no primary configured")
		}
		return p, nil
	case "local_instance":
		return n.name, nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, p := range n.peers {
		if p.Name == target || string(p.Region) == target {
			return p.Name, nil
		}
	}
	// Fall back to treating the target as a raw endpoint name.
	if strings.TrimSpace(target) != "" {
		return target, nil
	}
	return "", fmt.Errorf("wiera: cannot resolve target %q", target)
}

// nodeRegistry maps node names to live Nodes in this process, giving the
// staleness oracle (Fig 8) a zero-cost global view. It is test/experiment
// instrumentation, not part of the data path.
var (
	nodeRegMu sync.Mutex
	nodeReg   = map[string]*Node{}
)

// LookupNode returns the live in-process node with the given name, or nil.
// Experiments and examples use it to reach node internals (metrics, local
// instance) without adding introspection RPCs to the protocol.
func LookupNode(name string) *Node { return lookupNode(name) }

func registerNode(n *Node)       { nodeRegMu.Lock(); nodeReg[n.name] = n; nodeRegMu.Unlock() }
func unregisterNode(name string) { nodeRegMu.Lock(); delete(nodeReg, name); nodeRegMu.Unlock() }
func lookupNode(name string) *Node {
	nodeRegMu.Lock()
	defer nodeRegMu.Unlock()
	return nodeReg[name]
}

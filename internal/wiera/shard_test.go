package wiera

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ring"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// shardedCluster starts an instance with N workers per region and returns a
// colocated client.
func shardedCluster(t *testing.T, id string, workers int) (*cluster, *Client, []PeerInfo) {
	t.Helper()
	// EventualConsistency declares a single region (us-west), so each shard
	// group has one member — the simplest sharded layout.
	c := newCluster(t, simnet.USWest)
	nodes := c.start(t, id, "EventualConsistency", map[string]string{
		"workers": fmt.Sprintf("%d", workers),
	})
	cli, err := NewClient(c.fabric, "cli-"+id, simnet.USWest, c.server.Name(), id)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	return c, cli, nodes
}

func TestShardedInstanceServesAcrossWorkers(t *testing.T) {
	const workers = 3
	c, cli, nodes := shardedCluster(t, "sh", workers)
	if len(nodes) != workers {
		t.Fatalf("nodes = %v, want %d workers", nodes, workers)
	}
	if cli.RingEpoch() == 0 {
		t.Fatalf("client did not receive a ring (epoch 0)")
	}
	const keys = 120
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%03d", i)
		if _, err := cli.Put(context.Background(), key, []byte("v:"+key)); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
	}
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%03d", i)
		data, _, err := cli.Get(context.Background(), key)
		if err != nil {
			t.Fatalf("get %s: %v", key, err)
		}
		if string(data) != "v:"+key {
			t.Fatalf("get %s = %q", key, data)
		}
	}
	// Every shard in the client's region holds a share of the keyspace.
	rm, err := c.server.Ring("sh")
	if err != nil || rm == nil {
		t.Fatalf("Ring = %v, %v", rm, err)
	}
	if rm.Shards() != workers {
		t.Fatalf("shards = %d, want %d", rm.Shards(), workers)
	}
	for _, name := range rm.Workers[string(simnet.USWest)] {
		n := c.node(t, name)
		if got := n.local.Objects().Len(); got == 0 {
			t.Fatalf("worker %s holds no keys — keyspace not partitioned", name)
		}
	}
}

func TestWrongShardNACK(t *testing.T) {
	c, cli, _ := shardedCluster(t, "ws", 2)
	const key = "nack-probe"
	if _, err := cli.Put(context.Background(), key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	rm, err := c.server.Ring("ws")
	if err != nil {
		t.Fatal(err)
	}
	table := ring.NewTable(rm)
	owner := table.Owner(key)
	wrong := table.WorkerForShard(string(simnet.USWest), 1-owner)
	right := table.WorkerForShard(string(simnet.USWest), owner)

	ep, err := c.fabric.NewEndpoint("prober", simnet.USWest)
	if err != nil {
		t.Fatal(err)
	}
	defer c.fabric.Remove("prober")
	payload, _ := transport.Encode(GetRequest{Key: key})
	_, err = ep.Call(context.Background(), wrong, MethodGet, payload)
	ws := AsWrongShard(err)
	if ws == nil {
		t.Fatalf("direct call to wrong worker: err = %v, want wrong-shard NACK", err)
	}
	if ws.Epoch != rm.Epoch || ws.Shard != owner || ws.Owner != right {
		t.Fatalf("NACK = %+v, want epoch=%d shard=%d owner=%s", ws, rm.Epoch, owner, right)
	}
	// The NACK's redirect serves the op.
	if _, err := ep.Call(context.Background(), ws.Owner, MethodGet, payload); err != nil {
		t.Fatalf("redirect call: %v", err)
	}
}

func TestAddWorkerRebalancesOnline(t *testing.T) {
	c, cli, _ := shardedCluster(t, "grow", 2)
	ctx := context.Background()
	const preKeys = 150
	for i := 0; i < preKeys; i++ {
		key := fmt.Sprintf("pre-%03d", i)
		if _, err := cli.Put(ctx, key, []byte("v1:"+key)); err != nil {
			t.Fatal(err)
		}
	}

	// Writers keep updating while the pool grows; every acked write must
	// survive the rebalance.
	c2 := cli
	var acked sync.Map // key -> last acked value
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				key := fmt.Sprintf("pre-%03d", (w*37+i)%preKeys)
				val := fmt.Sprintf("v2:%s:%d:%d", key, w, i)
				if _, err := c2.Put(ctx, key, []byte(val)); err == nil {
					acked.Store(key, val)
				}
			}
		}(w)
	}

	moved, err := c.server.AddWorker("grow")
	stop.Store(true)
	wg.Wait()
	if err != nil {
		t.Fatalf("AddWorker: %v", err)
	}
	if moved == 0 {
		t.Fatal("AddWorker moved no keys")
	}
	rm, err := c.server.Ring("grow")
	if err != nil {
		t.Fatal(err)
	}
	if rm.Shards() != 3 {
		t.Fatalf("shards after grow = %d, want 3", rm.Shards())
	}

	// Post-run audit: every key readable, and keys the writers got acked
	// after their last successful Put hold at least that value's key prefix.
	for i := 0; i < preKeys; i++ {
		key := fmt.Sprintf("pre-%03d", i)
		data, _, err := cli.Get(ctx, key)
		if err != nil {
			t.Fatalf("lost key %s after rebalance: %v", key, err)
		}
		if want, ok := acked.Load(key); ok {
			if string(data) != want.(string) {
				t.Fatalf("key %s = %q, want last acked %q", key, data, want)
			}
		}
	}
	// The new shard's workers ended up owning keys.
	for _, region := range rm.Regions() {
		n := c.node(t, rm.Workers[region][2])
		if n.local.Objects().Len() == 0 {
			t.Fatalf("new worker %s owns no keys after rebalance", n.name)
		}
	}
}

func TestRemoveWorkerDrainsEverything(t *testing.T) {
	c, cli, _ := shardedCluster(t, "shrink", 3)
	ctx := context.Background()
	const keys = 100
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("k-%03d", i)
		if _, err := cli.Put(ctx, key, []byte("v:"+key)); err != nil {
			t.Fatal(err)
		}
	}
	moved, err := c.server.RemoveWorker("shrink")
	if err != nil {
		t.Fatalf("RemoveWorker: %v", err)
	}
	rm, _ := c.server.Ring("shrink")
	if rm.Shards() != 2 {
		t.Fatalf("shards after shrink = %d, want 2", rm.Shards())
	}
	_ = moved // the leaving shard may own few keys; readability is the check
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("k-%03d", i)
		data, _, err := cli.Get(ctx, key)
		if err != nil {
			t.Fatalf("lost key %s after shrink: %v", key, err)
		}
		if string(data) != "v:"+key {
			t.Fatalf("key %s = %q", key, data)
		}
	}
	// Shrinking a one-shard instance is refused.
	c2, _, _ := shardedCluster(t, "mono", 1)
	if _, err := c2.server.RemoveWorker("mono"); err == nil {
		t.Fatal("RemoveWorker on a one-worker instance should fail")
	}
}

func TestStrayUpdateForwarding(t *testing.T) {
	c, cli, _ := shardedCluster(t, "stray", 2)
	ctx := context.Background()
	const key = "stray-key"
	if _, err := cli.Put(ctx, key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	rm, _ := c.server.Ring("stray")
	table := ring.NewTable(rm)
	owner := table.Owner(key)
	wrongName := table.WorkerForShard(string(simnet.USWest), 1-owner)
	rightName := table.WorkerForShard(string(simnet.USWest), owner)
	right := c.node(t, rightName)
	meta, err := right.local.Objects().Latest(key)
	if err != nil {
		t.Fatal(err)
	}
	// Hand the non-owner an update for a key it does not own (a replayed
	// hint after a rebalance): it must forward, not strand it.
	meta.Version++
	ep, err := c.fabric.NewEndpoint("stray-prober", simnet.USWest)
	if err != nil {
		t.Fatal(err)
	}
	defer c.fabric.Remove("stray-prober")
	payload, _ := transport.Encode(UpdateMsg{Meta: meta, Data: []byte("v2")})
	raw, err := ep.Call(ctx, wrongName, MethodApplyUpdate, payload)
	if err != nil {
		t.Fatalf("apply at non-owner: %v", err)
	}
	var ack UpdateAck
	if err := transport.Decode(raw, &ack); err != nil {
		t.Fatal(err)
	}
	if !ack.Accepted {
		t.Fatal("stray update not accepted")
	}
	wrong := c.node(t, wrongName)
	if _, err := wrong.local.Objects().Latest(key); err == nil {
		t.Fatal("stray update stranded at non-owner")
	}
	if m, err := right.local.Objects().Latest(key); err != nil || m.Version != meta.Version {
		t.Fatalf("owner latest = %+v, %v; want version %d", m, err, meta.Version)
	}
}

// TestClientRoutingRace hammers keyed routing while the view is swapped
// underneath it; run with -race (make race-ring).
func TestClientRoutingRace(t *testing.T) {
	c, cli, nodes := shardedCluster(t, "race", 2)
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := cli.Put(ctx, fmt.Sprintf("r-%02d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	rm, _ := c.server.Ring("race")
	var wg sync.WaitGroup
	var stop atomic.Bool
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				key := fmt.Sprintf("r-%02d", (g*7+i)%20)
				if _, _, err := cli.Get(ctx, key); err != nil {
					t.Errorf("get %s: %v", key, err)
					return
				}
				_, _ = cli.Closest()
				_ = cli.Nodes()
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		cli.SetNodes(nodes)
		cli.SetRing(rm.Clone())
		if i%10 == 0 {
			_ = cli.Refresh(ctx)
		}
	}
	stop.Store(true)
	wg.Wait()
}

package wiera

import (
	"context"
	"sync"

	"repro/internal/flight"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Batching defaults: one chunk carries at most maxBatchEntries updates and
// roughly defaultMaxBatchBytes of payload, whichever cap bites first. The
// byte cap is tunable per instance via the maxBatchBytes spawn param
// (false/negative disables batching entirely — the per-key ablation).
const (
	defaultMaxBatchBytes = 1 << 20 // 1 MiB
	maxBatchEntries      = 128
	// batchEntryOverhead approximates the per-entry framing cost (key,
	// version, timestamps) on top of the object payload when sizing chunks.
	batchEntryOverhead = 64
)

// batcher groups replica updates destined for the same peer into chunked
// MethodApplyUpdateBatch RPCs, making background replication round-trip-
// bound per flush rather than per key (the group-commit the queue response
// of Sec 3.2.3 exists to enable). The receiver acks entry-by-entry, so a
// partial failure costs only the failed entries: they are hinted (repair
// enabled) or handed back to the caller for re-enqueue.
//
// Three paths share it: the queue's flushNow fan-out, exec.go's async
// single-target distribution (coalesced per peer while an RPC is in
// flight), and the shard drain's migration pushes (caps only).
type batcher struct {
	n        *Node
	maxBytes int64 // per-chunk payload budget; <0 disables batching

	// Coalescing state for async single-target pushes: updates arriving
	// while a peer's flusher RPC is in flight accumulate and ship as the
	// next batch — group commit without timers.
	amu      sync.Mutex
	apending map[string][]UpdateMsg
	aactive  map[string]bool

	flushes       *telemetry.Counter // repl_batch_flushes_total
	chunks        *telemetry.Counter // repl_batch_chunks_total
	updates       *telemetry.Counter // repl_batch_updates_total
	bytes         *telemetry.Counter // repl_batch_bytes_total
	entryFailures *telemetry.Counter // repl_batch_entry_failures_total
}

func newBatcher(n *Node, maxBytes int64) *batcher {
	switch {
	case maxBytes == 0:
		maxBytes = defaultMaxBatchBytes
	case maxBytes < 0:
		maxBytes = -1
	}
	reg := n.fabric.Metrics()
	region := string(n.region)
	counter := func(name, help string) *telemetry.Counter {
		return reg.Counter(name, help, "node", "region").With(n.name, region)
	}
	return &batcher{
		n:        n,
		maxBytes: maxBytes,
		apending: make(map[string][]UpdateMsg),
		aactive:  make(map[string]bool),
		flushes: counter("repl_batch_flushes_total",
			"Batched replication fan-outs (one per queue flush with pending updates)."),
		chunks: counter("repl_batch_chunks_total",
			"ApplyUpdateBatch RPCs issued (one per chunk per peer)."),
		updates: counter("repl_batch_updates_total",
			"Updates shipped inside batched replication RPCs."),
		bytes: counter("repl_batch_bytes_total",
			"Encoded payload bytes shipped inside batched replication RPCs."),
		entryFailures: counter("repl_batch_entry_failures_total",
			"Batch entries that failed (RPC error or per-entry apply error)."),
	}
}

// enabled reports whether batching is on (false = per-key ablation mode).
func (b *batcher) enabled() bool { return b.maxBytes > 0 }

// caps returns the effective chunk bounds. Paths that must stay bounded
// regardless of the ablation (the shard drain) get the defaults even when
// batching is disabled for the replication fan-out.
func (b *batcher) caps() (maxBytes int64, maxEntries int) {
	if b.maxBytes > 0 {
		return b.maxBytes, maxBatchEntries
	}
	return defaultMaxBatchBytes, maxBatchEntries
}

// chunkUpdates splits msgs into contiguous chunks bounded by the entry and
// byte caps. A single oversized update still ships (every chunk holds at
// least one entry); order is preserved.
func (b *batcher) chunkUpdates(msgs []UpdateMsg) [][]UpdateMsg {
	if len(msgs) == 0 {
		return nil
	}
	maxBytes, maxEntries := b.caps()
	var out [][]UpdateMsg
	start := 0
	var curBytes int64
	for i := range msgs {
		sz := int64(len(msgs[i].Data)) + batchEntryOverhead
		if i > start && (curBytes+sz > maxBytes || i-start >= maxEntries) {
			out = append(out, msgs[start:i])
			start, curBytes = i, 0
		}
		curBytes += sz
	}
	return append(out, msgs[start:])
}

// fanOut pushes msgs to every peer in parallel, one ApplyUpdateBatch RPC
// per chunk, and returns failed[i] = true when entry i failed on at least
// one peer. Failed entries are hinted per failing peer when repair is
// enabled (the caller re-enqueues them otherwise). Per-peer push latency
// feeds the latency monitor and the replication histogram on success, the
// same signal the per-key fan-out produced — the DynamicConsistency /
// SLOSwitch policies keep seeing a degraded WAN through batched flushes.
func (b *batcher) fanOut(ctx context.Context, msgs []UpdateMsg) []bool {
	failed := make([]bool, len(msgs))
	peers := b.n.Peers()
	if len(peers) == 0 || len(msgs) == 0 {
		return failed
	}
	b.flushes.Inc()
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for _, p := range peers {
		wg.Add(1)
		go func(p PeerInfo) {
			defer wg.Done()
			start := b.n.clk.Now()
			fidx := b.pushPeer(ctx, p, msgs)
			if len(fidx) == 0 {
				elapsed := b.n.clk.Since(start)
				b.n.latMon.observe(elapsed)
				b.n.ReplLatency.Record(elapsed)
			}
			if b.n.repair != nil {
				for _, i := range fidx {
					b.n.repair.addHint(p.Name, msgs[i])
				}
			}
			mu.Lock()
			for _, i := range fidx {
				failed[i] = true
			}
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	return failed
}

// pushPeer ships msgs to one peer as chunked batch RPCs and returns the
// indices (into msgs) of entries that failed — a whole chunk on an RPC
// error, individual entries on per-entry apply errors. An entry that lost
// LWW at the receiver is not a failure.
func (b *batcher) pushPeer(ctx context.Context, p PeerInfo, msgs []UpdateMsg) []int {
	var failed []int
	fa := flight.FromContext(ctx)
	base := 0
	for _, chunk := range b.chunkUpdates(msgs) {
		payload, err := b.n.enc(UpdateBatchRequest{Updates: chunk})
		if err != nil {
			for i := range chunk {
				failed = append(failed, base+i)
			}
			b.entryFailures.Add(int64(len(chunk)))
			base += len(chunk)
			continue
		}
		b.chunks.Inc()
		b.updates.Add(int64(len(chunk)))
		b.bytes.Add(int64(len(payload)))
		start := b.n.clk.Now()
		raw, err := b.n.ep.Call(ctx, p.Name, MethodApplyUpdateBatch, payload)
		hop := flight.Hop{
			Kind: flight.HopRPC, Name: "batch:" + p.Name,
			Duration: b.n.clk.Since(start), Bytes: int64(len(payload)),
			CostUSD: b.n.transferCost(p.Region, int64(len(payload))),
		}
		if err != nil {
			hop.Err = err.Error()
			fa.AddHop(hop)
			for i := range chunk {
				failed = append(failed, base+i)
			}
			b.entryFailures.Add(int64(len(chunk)))
			base += len(chunk)
			continue
		}
		fa.AddHop(hop)
		var resp UpdateBatchResponse
		if err := transport.Decode(raw, &resp); err != nil || len(resp.Acks) != len(chunk) {
			for i := range chunk {
				failed = append(failed, base+i)
			}
			b.entryFailures.Add(int64(len(chunk)))
			base += len(chunk)
			continue
		}
		for i, ack := range resp.Acks {
			if ack.Err != "" {
				failed = append(failed, base+i)
				b.entryFailures.Inc()
			}
		}
		base += len(chunk)
	}
	return failed
}

// pushAsync delivers one update to a single peer in the background,
// coalescing with other updates bound for the same peer: while a push RPC
// is in flight, arriving updates accumulate and ship together as the next
// batch. Failures become hints (repair enabled) exactly as the direct
// async path did.
func (b *batcher) pushAsync(target string, msg UpdateMsg) {
	if !b.enabled() {
		// Per-key ablation: one ApplyUpdate RPC per update, as before.
		n := b.n
		go func() {
			payload, err := n.enc(msg)
			if err != nil {
				return
			}
			if _, err := n.ep.Call(context.Background(), target, MethodApplyUpdate, payload); err != nil && n.repair != nil {
				n.repair.addHint(target, msg)
			}
		}()
		return
	}
	b.amu.Lock()
	b.apending[target] = append(b.apending[target], msg)
	if b.aactive[target] {
		b.amu.Unlock()
		return // the running flusher picks it up on its next pass
	}
	b.aactive[target] = true
	b.amu.Unlock()
	go b.asyncLoop(target)
}

// asyncLoop drains a peer's coalesced async updates until none remain.
func (b *batcher) asyncLoop(target string) {
	for {
		b.amu.Lock()
		msgs := b.apending[target]
		if len(msgs) == 0 {
			b.aactive[target] = false
			b.amu.Unlock()
			return
		}
		delete(b.apending, target)
		b.amu.Unlock()
		fidx := b.pushPeer(context.Background(), b.peerInfo(target), msgs)
		if b.n.repair != nil {
			for _, i := range fidx {
				b.n.repair.addHint(target, msgs[i])
			}
		}
	}
}

// peerInfo resolves a peer's region for cost attribution (own region when
// the name is not in the membership list).
func (b *batcher) peerInfo(target string) PeerInfo {
	b.n.mu.Lock()
	defer b.n.mu.Unlock()
	for _, p := range b.n.peers {
		if p.Name == target {
			return p
		}
	}
	return PeerInfo{Name: target, Region: b.n.region}
}

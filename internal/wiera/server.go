package wiera

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/autoscale"
	"repro/internal/coord"
	"repro/internal/flight"
	"repro/internal/policy"
	"repro/internal/ring"
	"repro/internal/simnet"
	"repro/internal/tenant"
	"repro/internal/tier"
	"repro/internal/tiera"
	"repro/internal/transport"
)

// ServerConfig assembles the Wiera control plane.
type ServerConfig struct {
	// Fabric connects the server to Tiera servers and nodes.
	Fabric *transport.Fabric
	// Name is the server's endpoint name (default "wiera").
	Name string
	// Region places the server (the paper runs it in US-East).
	Region simnet.Region
	// CoordDst names the coordination service endpoint nodes should use
	// for global locks ("" disables locking).
	CoordDst string
	// HeartbeatEvery is the TSM ping period (default 5s clock time).
	HeartbeatEvery time.Duration
}

// Server is the Wiera control plane: the WUI application API (Table 1),
// the Global Policy Manager holding policy metadata, the Tiera Server
// Manager tracking per-region Tiera servers, and one Tiera Instance
// Manager per running Wiera instance. The server never carries object
// data.
type Server struct {
	name     string
	region   simnet.Region
	fabric   *transport.Fabric
	ep       *transport.Endpoint
	coordDst string
	hbEvery  time.Duration

	mu           sync.Mutex
	tieraServers map[simnet.Region]string // TSM registry: region -> endpoint
	instances    map[string]*instanceState
	changeLog    []ChangeEvent
	stopCh       chan struct{}
	started      bool
}

// ChangeEvent records one applied run-time policy change (consistency swap
// or primary move) — the timeline data behind the paper's Fig 7.
type ChangeEvent struct {
	At         time.Time
	InstanceID string
	What       string
	To         string
	From       string // requesting node
	Via        string // triggering monitor ("latency", "primary", "slo", ...)
}

// instanceState is one TIM: the metadata of a running Wiera instance.
type instanceState struct {
	id          string
	globalSrc   string
	dynamicSrc  string
	params      map[string]string
	policyName  string // current data-plane policy
	primary     string
	epoch       int64
	minReplicas int
	nodes       []PeerInfo
	plans       []regionPlan // for respawning failed replicas
	changing    bool

	// Sharding state (nil ringMap = classic one-worker-per-region layout).
	// Worker i across all regions forms shard group i: it receives its own
	// membership list and primary, and the per-key policy machinery runs
	// inside the group exactly as it does for an unsharded instance.
	ringMap       *ring.Map
	vnodes        int
	primaryRegion simnet.Region // region whose workers lead their groups
	rebalancing   bool

	// autoctl is the instance's elastic autoscaler (nil unless the
	// autoscale param asked for one). It consumes the aggregated stats
	// signals and actuates AddWorker/RemoveWorker itself.
	autoctl *autoscale.Controller
}

// regionPlan records how to (re)spawn one member.
type regionPlan struct {
	Region   simnet.Region
	LocalSrc string
	Primary  bool
}

// NewServer builds and registers the control plane endpoint.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Fabric == nil {
		return nil, errors.New("wiera: fabric required")
	}
	name := cfg.Name
	if name == "" {
		name = "wiera"
	}
	region := cfg.Region
	if region == "" {
		region = simnet.USEast
	}
	ep, err := cfg.Fabric.NewEndpoint(name, region)
	if err != nil {
		return nil, err
	}
	s := &Server{
		name:         name,
		region:       region,
		fabric:       cfg.Fabric,
		ep:           ep,
		coordDst:     cfg.CoordDst,
		hbEvery:      cfg.HeartbeatEvery,
		tieraServers: make(map[simnet.Region]string),
		instances:    make(map[string]*instanceState),
	}
	if s.hbEvery <= 0 {
		s.hbEvery = 5 * time.Second
	}
	ep.Serve(s.handle)
	return s, nil
}

// Name returns the server endpoint name.
func (s *Server) Name() string { return s.name }

// RegisterTieraServer records a Tiera server for a region (Sec 4.1:
// "whenever a Tiera server launches, it connects to the TSM first").
func (s *Server) RegisterTieraServer(region simnet.Region, endpoint string) {
	s.mu.Lock()
	s.tieraServers[region] = endpoint
	s.mu.Unlock()
}

// handle dispatches control-plane RPCs. Control-plane operations fan out
// their own RPCs under fresh contexts (they are not part of any data-path
// trace), so the incoming ctx is not propagated further.
func (s *Server) handle(_ context.Context, method string, payload []byte) ([]byte, error) {
	switch method {
	case MethodStartInstances:
		var req StartInstancesRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		nodes, err := s.StartInstances(req)
		if err != nil {
			return nil, err
		}
		return transport.Encode(StartInstancesResponse{Nodes: nodes})
	case MethodStopInstances:
		var req StopInstancesRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		if err := s.StopInstances(req.InstanceID); err != nil {
			return nil, err
		}
		return transport.Encode(Empty{})
	case MethodGetInstances:
		var req GetInstancesRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		nodes, rm, err := s.InstanceView(req.InstanceID)
		if err != nil {
			return nil, err
		}
		return transport.Encode(StartInstancesResponse{Nodes: nodes, Ring: rm})
	case MethodCollectStats:
		var req GetInstancesRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		stats, err := s.CollectStats(req.InstanceID)
		if err != nil {
			return nil, err
		}
		return transport.Encode(stats)
	case MethodRequestChange:
		var req ChangeRequestMsg
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		if err := s.ApplyChange(req); err != nil {
			return nil, err
		}
		return transport.Encode(Empty{})
	case MethodAddWorker:
		var req GetInstancesRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		moved, err := s.AddWorker(req.InstanceID)
		if err != nil {
			return nil, err
		}
		return transport.Encode(RingDrainResponse{Moved: moved})
	case MethodRemoveWorker:
		var req GetInstancesRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		moved, err := s.RemoveWorker(req.InstanceID)
		if err != nil {
			return nil, err
		}
		return transport.Encode(RingDrainResponse{Moved: moved})
	case MethodHeatTop:
		var req HeatTopRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		entries, err := s.HeatTop(req.InstanceID, req.K)
		if err != nil {
			return nil, err
		}
		return transport.Encode(HeatTopResponse{Entries: entries})
	default:
		return nil, fmt.Errorf("wiera: server: unknown method %q", method)
	}
}

// StartInstances implements Table 1 startInstances: parse the global
// policy, spawn a Tiera instance in every declared region through that
// region's Tiera server, distribute membership, and return the node list.
func (s *Server) StartInstances(req StartInstancesRequest) ([]PeerInfo, error) {
	if req.InstanceID == "" {
		return nil, errors.New("wiera: instance id required")
	}
	globalSpec, err := policy.Parse(req.PolicySrc)
	if err != nil {
		return nil, err
	}
	if !globalSpec.IsGlobal {
		return nil, fmt.Errorf("wiera: policy %q is not a Wiera policy", globalSpec.Name)
	}
	if len(globalSpec.Regions) == 0 {
		return nil, fmt.Errorf("wiera: policy %q declares no regions", globalSpec.Name)
	}
	s.mu.Lock()
	if _, exists := s.instances[req.InstanceID]; exists {
		s.mu.Unlock()
		return nil, fmt.Errorf("wiera: instance %q already running", req.InstanceID)
	}
	s.mu.Unlock()

	st := &instanceState{
		id:          req.InstanceID,
		globalSrc:   req.PolicySrc,
		params:      req.Params,
		policyName:  globalSpec.Name,
		minReplicas: req.MinReplicas,
	}
	// The minimum-replica requirement (Sec 4.4: "an application can specify
	// the required number of replicas to be available at all times") can
	// also arrive as a policy parameter.
	if st.minReplicas == 0 {
		if v, ok := req.Params["minReplicas"]; ok {
			fmt.Sscanf(v, "%d", &st.minReplicas)
		}
	}
	if dyn, ok := req.Params["dynamic"]; ok {
		st.dynamicSrc = dyn
	}

	// Worker pools (sharding): "workers" asks for N Tiera-backed workers per
	// region instead of one, partitioned by a consistent-hash ring; "vnodes"
	// overrides the ring's per-shard virtual node count.
	workers := 1
	if v, ok := req.Params["workers"]; ok {
		if _, err := fmt.Sscanf(v, "%d", &workers); err != nil || workers < 1 {
			return nil, fmt.Errorf("wiera: workers must be a positive integer, got %q", v)
		}
	}
	if v, ok := req.Params["vnodes"]; ok {
		fmt.Sscanf(v, "%d", &st.vnodes)
	}

	type placement struct {
		plan regionPlan
		base string
	}
	var placements []placement
	for _, decl := range globalSpec.Regions {
		plan, base, err := s.planFor(req.InstanceID, globalSpec, decl, req.LocalSpecs)
		if err != nil {
			return nil, err
		}
		if plan.Primary {
			st.primaryRegion = plan.Region
		}
		st.plans = append(st.plans, plan)
		placements = append(placements, placement{plan, base})
	}

	var nodes []PeerInfo
	if workers == 1 {
		// Classic layout: one worker per region, original names, no ring.
		for _, p := range placements {
			primary := st.primary
			if p.plan.Primary {
				primary = p.base
			}
			node, err := s.spawn(req.InstanceID, p.base, p.plan, st, primary)
			if err != nil {
				s.teardown(nodes)
				return nil, err
			}
			if p.plan.Primary {
				st.primary = node.Name
			}
			nodes = append(nodes, node)
		}
	} else {
		// Sharded layout: workers per region named <id>/<region>/w<k>.
		// Worker k of every region forms shard group k, led by the primary
		// region's worker k.
		rm := &ring.Map{Vnodes: st.vnodes, Workers: make(map[string][]string)}
		for _, p := range placements {
			region := string(p.plan.Region)
			for k := 0; k < workers; k++ {
				rm.Workers[region] = append(rm.Workers[region], fmt.Sprintf("%s/w%d", p.base, k))
			}
		}
		for _, p := range placements {
			region := string(p.plan.Region)
			for k := 0; k < workers; k++ {
				primary := ""
				if st.primaryRegion != "" {
					primary = rm.Workers[string(st.primaryRegion)][k]
				}
				node, err := s.spawn(req.InstanceID, rm.Workers[region][k], p.plan, st, primary)
				if err != nil {
					s.teardown(nodes)
					return nil, err
				}
				nodes = append(nodes, node)
			}
		}
		if st.primaryRegion != "" {
			st.primary = rm.Workers[string(st.primaryRegion)][0]
		}
		s.nextRingEpoch(st, rm)
		st.ringMap = rm
	}
	if st.minReplicas == 0 {
		st.minReplicas = len(nodes)
	}
	st.nodes = nodes
	s.mu.Lock()
	s.instances[req.InstanceID] = st
	s.mu.Unlock()
	if err := s.broadcastPeers(st); err != nil {
		return nil, err
	}
	if st.ringMap != nil {
		if err := s.broadcastRing(st.nodes, RingMsg{Map: st.ringMap, Settled: true}); err != nil {
			return nil, err
		}
	}
	s.startAutoscaler(st, req.Params)
	return nodes, nil
}

// startAutoscaler launches the instance's elastic controller when the
// autoscale param asks for one. Tuning params (all optional): asMin/asMax
// (worker bounds), asInterval/asCooldown (durations), asHighOps/asLowOps
// (per-worker ops/s watermarks), asGrowStreak/asShrinkStreak (consecutive
// ticks before acting).
func (s *Server) startAutoscaler(st *instanceState, params map[string]string) {
	if v, ok := params["autoscale"]; !ok || v != "true" {
		return
	}
	pInt := func(key string, def int) int {
		if v, ok := params[key]; ok {
			var n int
			if _, err := fmt.Sscanf(v, "%d", &n); err == nil {
				return n
			}
		}
		return def
	}
	pFloat := func(key string, def float64) float64 {
		if v, ok := params[key]; ok {
			var f float64
			if _, err := fmt.Sscanf(v, "%g", &f); err == nil {
				return f
			}
		}
		return def
	}
	pDur := func(key string) time.Duration {
		if v, ok := params[key]; ok {
			if d, err := time.ParseDuration(v); err == nil {
				return d
			}
		}
		return 0
	}
	id := st.id
	src := &instanceSignals{s: s, id: id}
	ctl := autoscale.New(autoscale.Config{
		Clock:              s.fabric.Network().Clock(),
		Interval:           pDur("asInterval"),
		MinWorkers:         pInt("asMin", 1),
		MaxWorkers:         pInt("asMax", 8),
		CoolDown:           pDur("asCooldown"),
		GrowOpsPerWorker:   pFloat("asHighOps", 0),
		ShrinkOpsPerWorker: pFloat("asLowOps", 0),
		GrowStreak:         pInt("asGrowStreak", 0),
		ShrinkStreak:       pInt("asShrinkStreak", 0),
		Registry:           s.fabric.Metrics(),
		Instance:           id,
		Journal:            s.fabric.Events(),
		Source:             src,
		Actuator:           &instanceActuator{s: s, id: id},
		Blocked: func(err error) bool {
			return AsRebalanceInProgress(err) != nil
		},
	})
	s.mu.Lock()
	if _, ok := s.instances[id]; !ok {
		s.mu.Unlock()
		return // instance stopped while the controller was being built
	}
	st.autoctl = ctl
	s.mu.Unlock()
	ctl.Start()
}

// Autoscaler returns the instance's controller (nil when autoscaling is
// off) so experiments can drive ticks deterministically and read the
// decision log.
func (s *Server) Autoscaler(instanceID string) *autoscale.Controller {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.instances[instanceID]; ok {
		return st.autoctl
	}
	return nil
}

// instanceSignals aggregates one instance's stats into the autoscaler's
// Signals view: worker count from the ring, throughput from op-counter
// deltas between ticks, SLO burn/firing from the nodes' engines, queue
// depth, and per-worker key imbalance.
type instanceSignals struct {
	s  *Server
	id string

	mu      sync.Mutex
	lastOps int64
	lastAt  time.Time
}

func (g *instanceSignals) Signals() (autoscale.Signals, error) {
	stats, err := g.s.CollectStats(g.id)
	if err != nil {
		return autoscale.Signals{}, err
	}
	rm, err := g.s.Ring(g.id)
	if err != nil {
		return autoscale.Signals{}, err
	}
	var sig autoscale.Signals
	sig.Workers = 1
	if rm != nil {
		sig.Workers = rm.Shards()
	}
	var ops int64
	var maxKeys, totalKeys int
	for _, ns := range stats.Nodes {
		ops += ns.Puts + ns.Gets
		sig.QueueDepth += ns.QueueDepth
		if ns.SLOBurn > sig.Burn {
			sig.Burn = ns.SLOBurn
		}
		sig.Firing = sig.Firing || ns.SLOFiring
		totalKeys += ns.Keys
		if ns.Keys > maxKeys {
			maxKeys = ns.Keys
		}
	}
	if len(stats.Nodes) > 0 && totalKeys > 0 {
		mean := float64(totalKeys) / float64(len(stats.Nodes))
		if mean > 0 {
			sig.Imbalance = (float64(maxKeys) - mean) / mean
		}
	}
	now := g.s.fabric.Network().Clock().Now()
	g.mu.Lock()
	if !g.lastAt.IsZero() {
		if dt := now.Sub(g.lastAt).Seconds(); dt > 0 {
			sig.OpsPerSec = float64(ops-g.lastOps) / dt
		}
	}
	g.lastOps, g.lastAt = ops, now
	g.mu.Unlock()
	return sig, nil
}

// instanceActuator maps the controller's grow/shrink onto the server's
// online rebalance operations.
type instanceActuator struct {
	s  *Server
	id string
}

func (a *instanceActuator) Grow() error   { _, err := a.s.AddWorker(a.id); return err }
func (a *instanceActuator) Shrink() error { _, err := a.s.RemoveWorker(a.id); return err }

// planFor derives a region plan from one region declaration: resolve the
// local policy (builtin name), apply tier overrides, and name the node.
func (s *Server) planFor(instanceID string, global *policy.Spec, decl policy.RegionDecl, localSpecs map[string]string) (regionPlan, string, error) {
	regionVal, ok := policy.FindAttr(decl.Attrs, "region")
	if !ok {
		return regionPlan{}, "", fmt.Errorf("wiera: region decl %q missing region attribute", decl.Label)
	}
	region := simnet.Region(regionVal.Str)
	localName, ok := policy.FindAttr(decl.Attrs, "name")
	if !ok {
		return regionPlan{}, "", fmt.Errorf("wiera: region decl %q missing instance name", decl.Label)
	}
	var localSpec *policy.Spec
	var err error
	if src, ok := localSpecs[localName.Str]; ok {
		localSpec, err = policy.Parse(src)
	} else {
		localSpec, err = policy.Builtin(localName.Str)
	}
	if err != nil {
		return regionPlan{}, "", err
	}
	if localSpec.IsGlobal {
		return regionPlan{}, "", fmt.Errorf("wiera: %q is a global policy, not a local instance", localName.Str)
	}
	merged := mergeTierOverrides(localSpec, decl.Tiers)
	primary := false
	if p, ok := policy.FindAttr(decl.Attrs, "primary"); ok && p.Kind == policy.ValBool {
		primary = p.Bool
	}
	nodeName := fmt.Sprintf("%s/%s", instanceID, region)
	return regionPlan{Region: region, LocalSrc: policy.Print(merged), Primary: primary}, nodeName, nil
}

// mergeTierOverrides replaces or appends tier declarations from a region
// decl into a copy of the local spec.
func mergeTierOverrides(spec *policy.Spec, overrides []policy.TierDecl) *policy.Spec {
	if len(overrides) == 0 {
		return spec
	}
	merged := *spec
	merged.Tiers = append([]policy.TierDecl(nil), spec.Tiers...)
	for _, ov := range overrides {
		replaced := false
		for i := range merged.Tiers {
			if merged.Tiers[i].Label == ov.Label {
				merged.Tiers[i] = ov
				replaced = true
				break
			}
		}
		if !replaced {
			merged.Tiers = append(merged.Tiers, ov)
		}
	}
	return &merged
}

// spawn asks the region's Tiera server to create the node. primaryName is
// the primary of the node's shard group (its own name when it leads).
func (s *Server) spawn(instanceID, nodeName string, plan regionPlan, st *instanceState, primaryName string) (PeerInfo, error) {
	s.mu.Lock()
	tsEndpoint, ok := s.tieraServers[plan.Region]
	s.mu.Unlock()
	if !ok {
		return PeerInfo{}, fmt.Errorf("wiera: no Tiera server registered for region %s", plan.Region)
	}
	payload, err := transport.Encode(SpawnRequest{
		InstanceID: instanceID,
		NodeName:   nodeName,
		LocalSrc:   plan.LocalSrc,
		GlobalSrc:  st.globalSrc,
		Params:     st.params,
		Primary:    primaryName,
	})
	if err != nil {
		return PeerInfo{}, err
	}
	raw, err := s.ep.Call(context.Background(), tsEndpoint, MethodSpawn, payload)
	if err != nil {
		return PeerInfo{}, err
	}
	var resp SpawnResponse
	if err := transport.Decode(raw, &resp); err != nil {
		return PeerInfo{}, err
	}
	return resp.Node, nil
}

func (s *Server) teardown(nodes []PeerInfo) {
	for _, n := range nodes {
		payload, _ := transport.Encode(Empty{})
		_, _ = s.ep.Call(context.Background(), n.Name, MethodShutdown, payload)
	}
	// A node acks the shutdown RPC before it closes (it cannot reply over a
	// removed endpoint), so the name lingers briefly. Wait it out: a
	// follow-up AddWorker reuses worker names, and the autoscaler's
	// shrink-then-grow cycles do exactly that back to back.
	deadline := time.Now().Add(5 * time.Second)
	for _, n := range nodes {
		for s.fabric.Registered(n.Name) && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
}

// broadcastPeers distributes the membership list and primary to all nodes
// (Sec 4.1 step 6). For a sharded instance every shard group gets its own
// list: worker k of each region, led by the primary region's worker k.
func (s *Server) broadcastPeers(st *instanceState) error {
	s.mu.Lock()
	rm := st.ringMap
	nodes := append([]PeerInfo(nil), st.nodes...)
	primary := st.primary
	primaryRegion := string(st.primaryRegion)
	s.mu.Unlock()
	if rm == nil {
		payload, err := transport.Encode(PeersMsg{Peers: nodes, Primary: primary})
		if err != nil {
			return err
		}
		for _, n := range nodes {
			if _, err := s.ep.Call(context.Background(), n.Name, MethodSetPeers, payload); err != nil {
				return err
			}
		}
		return nil
	}
	for shard := 0; shard < rm.Shards(); shard++ {
		group := shardGroup(rm, shard)
		groupPrimary := ""
		if primaryRegion != "" {
			groupPrimary = rm.Workers[primaryRegion][shard]
		}
		if err := s.sendPeers(group, groupPrimary); err != nil {
			return err
		}
	}
	return nil
}

// sendPeers pushes one membership list to its members.
func (s *Server) sendPeers(group []PeerInfo, primary string) error {
	payload, err := transport.Encode(PeersMsg{Peers: group, Primary: primary})
	if err != nil {
		return err
	}
	for _, n := range group {
		if _, err := s.ep.Call(context.Background(), n.Name, MethodSetPeers, payload); err != nil {
			return err
		}
	}
	return nil
}

// broadcastRing installs a shard map on the given workers.
func (s *Server) broadcastRing(workers []PeerInfo, msg RingMsg) error {
	payload, err := transport.Encode(msg)
	if err != nil {
		return err
	}
	for _, w := range workers {
		if _, err := s.ep.Call(context.Background(), w.Name, MethodSetRing, payload); err != nil {
			return err
		}
	}
	return nil
}

// shardGroup lists shard's workers across all regions.
func shardGroup(rm *ring.Map, shard int) []PeerInfo {
	var group []PeerInfo
	for _, region := range rm.Regions() {
		group = append(group, PeerInfo{Name: rm.Workers[region][shard], Region: simnet.Region(region)})
	}
	return group
}

// ringWorkers lists every worker of a map as PeerInfo.
func ringWorkers(rm *ring.Map) []PeerInfo {
	var out []PeerInfo
	for _, region := range rm.Regions() {
		for _, w := range rm.Workers[region] {
			out = append(out, PeerInfo{Name: w, Region: simnet.Region(region)})
		}
	}
	return out
}

// nextRingEpoch stamps m with its next epoch: through the coordination
// service when one is configured (the authoritative path), locally past the
// instance's previous epoch otherwise.
func (s *Server) nextRingEpoch(st *instanceState, m *ring.Map) {
	prev := int64(0)
	if st.ringMap != nil {
		prev = st.ringMap.Epoch
	}
	m.Epoch = prev + 1
	if s.coordDst == "" {
		// No coordinator: this control plane is the only epoch authority,
		// so its journal carries the ring-change record instead.
		s.fabric.Events().Record("ring.epoch", st.id, m.Summary(), map[string]string{
			"epoch":  fmt.Sprintf("%d", m.Epoch),
			"shards": fmt.Sprintf("%d", m.Shards()),
		})
		return
	}
	if epoch, err := coord.PublishRing(s.ep, s.coordDst, st.id, m); err == nil {
		m.Epoch = epoch
	}
}

// StopInstances implements Table 1 stopInstances.
func (s *Server) StopInstances(instanceID string) error {
	s.mu.Lock()
	st, ok := s.instances[instanceID]
	if ok {
		delete(s.instances, instanceID)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("wiera: no instance %q", instanceID)
	}
	st.autoctl.Stop() // nil-safe; before teardown so no action races the shutdown
	s.teardown(st.nodes)
	return nil
}

// GetInstances implements Table 1 getInstances.
func (s *Server) GetInstances(instanceID string) ([]PeerInfo, error) {
	nodes, _, err := s.InstanceView(instanceID)
	return nodes, err
}

// InstanceView returns the membership and, for sharded instances, the
// current shard map (nil otherwise) — what clients cache for routing.
func (s *Server) InstanceView(instanceID string) ([]PeerInfo, *ring.Map, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.instances[instanceID]
	if !ok {
		return nil, nil, fmt.Errorf("wiera: no instance %q", instanceID)
	}
	var rm *ring.Map
	if st.ringMap != nil {
		rm = st.ringMap.Clone()
	}
	return append([]PeerInfo(nil), st.nodes...), rm, nil
}

// Ring returns the instance's current shard map (nil when unsharded).
func (s *Server) Ring(instanceID string) (*ring.Map, error) {
	_, rm, err := s.InstanceView(instanceID)
	return rm, err
}

// InstanceHealth is one instance's row of a Health report (the /healthz
// endpoint's payload): enough to see at a glance that the control plane
// is serving and what shape each instance currently has.
type InstanceHealth struct {
	ID          string `json:"id"`
	Policy      string `json:"policy"`
	Nodes       int    `json:"nodes"`
	Workers     int    `json:"workersPerRegion"` // shards per region (1 = unsharded)
	RingEpoch   int64  `json:"ringEpoch"`        // 0 = unsharded
	Rebalancing bool   `json:"rebalancing"`
	Autoscaled  bool   `json:"autoscaled"`
	Tenants     int    `json:"tenants"` // configured tenants incl. default (0 = tenancy off)
}

// Health snapshots every live instance, sorted by id.
func (s *Server) Health() []InstanceHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]InstanceHealth, 0, len(s.instances))
	for id, st := range s.instances {
		h := InstanceHealth{
			ID: id, Policy: st.policyName, Nodes: len(st.nodes),
			Workers: 1, Rebalancing: st.rebalancing, Autoscaled: st.autoctl != nil,
		}
		if cfgs, err := tenant.ParseConfigs(st.params); err == nil {
			h.Tenants = len(cfgs)
		}
		if st.ringMap != nil {
			h.Workers = st.ringMap.Shards()
			h.RingEpoch = st.ringMap.Epoch
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// HeatTop merges every worker's heat sketch into the instance's hottest
// keys: per-key rates are summed across workers (a hot key read through
// hot replicas accrues heat on several nodes) and the merged list is
// sorted hottest first, truncated to k (<= 0 uses 20).
func (s *Server) HeatTop(instanceID string, k int) ([]HeatKey, error) {
	if k <= 0 {
		k = 20
	}
	stats, err := s.CollectStats(instanceID)
	if err != nil {
		return nil, err
	}
	merged := make(map[string]float64)
	for _, ns := range stats.Nodes {
		for _, e := range ns.HeatTop {
			merged[e.Key] += e.Rate
		}
	}
	out := make([]HeatKey, 0, len(merged))
	for key, rate := range merged {
		out = append(out, HeatKey{Key: key, Rate: rate})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rate != out[j].Rate {
			return out[i].Rate > out[j].Rate
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// beginRebalance checks out the instance for an exclusive membership change
// and snapshots what the change needs.
func (s *Server) beginRebalance(instanceID string) (*instanceState, *ring.Map, []regionPlan, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.instances[instanceID]
	if !ok {
		return nil, nil, nil, fmt.Errorf("wiera: no instance %q", instanceID)
	}
	if st.rebalancing {
		// Typed NACK: membership changes are strictly serialized, so a
		// caller (the autoscaler, or a second wieractl grow/shrink) can
		// recognize the collision and retry after the settle.
		return nil, nil, nil, &ErrRebalanceInProgress{InstanceID: instanceID}
	}
	cur := st.ringMap
	if cur == nil {
		// An unsharded instance becomes the one-shard base case: every
		// region's single worker is shard 0.
		cur = &ring.Map{Vnodes: st.vnodes, Workers: make(map[string][]string)}
		for _, n := range st.nodes {
			region := string(n.Region)
			if len(cur.Workers[region]) > 0 {
				return nil, nil, nil, fmt.Errorf("wiera: instance %q has several workers in %s but no ring", instanceID, region)
			}
			cur.Workers[region] = []string{n.Name}
		}
	}
	st.rebalancing = true
	return st, cur.Clone(), append([]regionPlan(nil), st.plans...), nil
}

func (s *Server) endRebalance(st *instanceState) {
	s.mu.Lock()
	st.rebalancing = false
	s.mu.Unlock()
}

// AddWorker grows the instance's per-region worker pools by one shard and
// rebalances online: spawn the new workers, stamp a new epoch, teach the
// new workers the map first (unsettled, so they pull not-yet-moved keys
// from the previous owners), then let the old owners NACK and drain only
// the moved keys. Returns how many keys moved.
func (s *Server) AddWorker(instanceID string) (int, error) {
	st, cur, plans, err := s.beginRebalance(instanceID)
	if err != nil {
		return 0, err
	}
	defer s.endRebalance(st)

	s.mu.Lock()
	primaryRegion := st.primaryRegion
	s.mu.Unlock()

	newShard := cur.Shards()
	next := cur.Clone()

	// One new worker per region; worker k of every region is shard group k.
	var added []PeerInfo
	for _, region := range cur.Regions() {
		plan, ok := planForRegion(plans, simnet.Region(region))
		if !ok {
			s.teardown(added)
			return 0, fmt.Errorf("wiera: no region plan for %s", region)
		}
		name := fmt.Sprintf("%s/%s/w%d", instanceID, region, newShard)
		primary := ""
		if primaryRegion != "" {
			primary = fmt.Sprintf("%s/%s/w%d", instanceID, primaryRegion, newShard)
		}
		node, err := s.spawn(instanceID, name, plan, st, primary)
		if err != nil {
			s.teardown(added)
			return 0, err
		}
		added = append(added, node)
		next.Workers[region] = append(next.Workers[region], name)
	}
	s.nextRingEpoch(st, next)

	groupPrimary := ""
	if primaryRegion != "" {
		groupPrimary = next.Workers[string(primaryRegion)][newShard]
	}
	if err := s.sendPeers(added, groupPrimary); err != nil {
		return 0, err
	}

	// 1) The new workers learn the map first, with the old map as fallback:
	//    a client routed by the new map is never refused — the new owner
	//    pulls the key from its previous owner on demand.
	unsettled := RingMsg{Map: next, Prev: cur}
	if err := s.broadcastRing(added, unsettled); err != nil {
		return 0, err
	}

	// 2) Publish to clients: GetInstances now hands out the new map.
	oldWorkers := ringWorkers(cur)
	s.mu.Lock()
	st.ringMap = next
	st.nodes = append(append([]PeerInfo(nil), st.nodes...), added...)
	if st.minReplicas > 0 {
		st.minReplicas = len(st.nodes)
	}
	s.mu.Unlock()

	// 3) The previous owners install the map and start NACKing moved keys.
	if err := s.broadcastRing(oldWorkers, unsettled); err != nil {
		return 0, err
	}

	// 4) Drain one worker at a time: each freezes its op gate, flushes its
	//    queue, streams the moved keys to their new owners, and resumes.
	moved := 0
	drainReq, err := transport.Encode(RingDrainRequest{})
	if err != nil {
		return 0, err
	}
	for _, w := range oldWorkers {
		raw, err := s.ep.Call(context.Background(), w.Name, MethodRingDrain, drainReq)
		if err != nil {
			return moved, err
		}
		var resp RingDrainResponse
		if err := transport.Decode(raw, &resp); err != nil {
			return moved, err
		}
		moved += resp.Moved
	}

	// 5) Settle: drop the previous-owner fallback everywhere.
	settled := RingMsg{Map: next, Settled: true}
	if err := s.broadcastRing(append(oldWorkers, added...), settled); err != nil {
		return moved, err
	}
	return moved, nil
}

// RemoveWorker shrinks the pools by one shard (the highest index): the
// remaining workers take over its key ranges, the leaving workers drain
// everything they hold to the new owners, then shut down.
func (s *Server) RemoveWorker(instanceID string) (int, error) {
	st, cur, _, err := s.beginRebalance(instanceID)
	if err != nil {
		return 0, err
	}
	defer s.endRebalance(st)

	if cur.Shards() < 2 {
		return 0, fmt.Errorf("wiera: instance %q has no worker to remove", instanceID)
	}
	leavingShard := cur.Shards() - 1
	next := cur.Clone()
	var leaving []PeerInfo
	for _, region := range next.Regions() {
		ws := next.Workers[region]
		leaving = append(leaving, PeerInfo{Name: ws[leavingShard], Region: simnet.Region(region)})
		next.Workers[region] = ws[:leavingShard]
	}
	s.nextRingEpoch(st, next)
	remaining := ringWorkers(next)

	// Remaining workers first (unsettled: misses fall back to the leaving
	// owners), then clients, then the leaving workers — whose shard index
	// under the new map is -1, so they NACK every op and drain everything.
	unsettled := RingMsg{Map: next, Prev: cur}
	if err := s.broadcastRing(remaining, unsettled); err != nil {
		return 0, err
	}
	s.mu.Lock()
	st.ringMap = next
	st.nodes = remaining
	if st.minReplicas > 0 {
		st.minReplicas = len(remaining)
	}
	if !sliceHas(remaining, st.primary) && st.primary != "" {
		if string(st.primaryRegion) != "" && len(next.Workers[string(st.primaryRegion)]) > 0 {
			st.primary = next.Workers[string(st.primaryRegion)][0]
		} else {
			st.primary = remaining[0].Name
		}
	}
	s.mu.Unlock()
	if err := s.broadcastRing(leaving, unsettled); err != nil {
		return 0, err
	}

	moved := 0
	drainReq, err := transport.Encode(RingDrainRequest{})
	if err != nil {
		return 0, err
	}
	for _, w := range leaving {
		raw, err := s.ep.Call(context.Background(), w.Name, MethodRingDrain, drainReq)
		if err != nil {
			return moved, err
		}
		var resp RingDrainResponse
		if err := transport.Decode(raw, &resp); err != nil {
			return moved, err
		}
		moved += resp.Moved
	}

	settled := RingMsg{Map: next, Settled: true}
	if err := s.broadcastRing(remaining, settled); err != nil {
		return moved, err
	}
	s.teardown(leaving)
	return moved, nil
}

func sliceHas(nodes []PeerInfo, name string) bool {
	for _, n := range nodes {
		if n.Name == name {
			return true
		}
	}
	return false
}

// ApplyChange executes a change_policy request from a node: a consistency
// swap (prepare on all nodes, then commit) or a primary move.
func (s *Server) ApplyChange(req ChangeRequestMsg) error {
	s.mu.Lock()
	st, ok := s.instances[req.InstanceID]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("wiera: no instance %q", req.InstanceID)
	}
	if st.changing {
		s.mu.Unlock()
		return nil // a change is already in flight; drop duplicates
	}
	switch req.What {
	case "consistency":
		if st.policyName == req.To {
			s.mu.Unlock()
			return nil
		}
	case "primary_instance":
		if st.primary == req.To {
			s.mu.Unlock()
			return nil
		}
	default:
		s.mu.Unlock()
		return fmt.Errorf("wiera: unknown change target %q", req.What)
	}
	st.changing = true
	nodes := append([]PeerInfo(nil), st.nodes...)
	epoch := st.epoch + 1
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		st.changing = false
		s.mu.Unlock()
	}()

	switch req.What {
	case "consistency":
		// Validate the target policy before disturbing the fleet.
		if _, err := policy.Builtin(req.To); err != nil {
			return err
		}
		prepare, err := transport.Encode(PrepareChangeMsg{Epoch: epoch})
		if err != nil {
			return err
		}
		for _, n := range nodes {
			if _, err := s.ep.Call(context.Background(), n.Name, MethodPrepareChange, prepare); err != nil {
				return err
			}
		}
		commit, err := transport.Encode(CommitChangeMsg{Epoch: epoch, PolicyName: req.To})
		if err != nil {
			return err
		}
		for _, n := range nodes {
			if _, err := s.ep.Call(context.Background(), n.Name, MethodCommitChange, commit); err != nil {
				return err
			}
		}
		s.mu.Lock()
		st.policyName = req.To
		st.epoch = epoch
		s.logChangeLocked(req)
		s.mu.Unlock()
		return nil
	default: // primary_instance
		msg, err := transport.Encode(SetPrimaryMsg{Primary: req.To})
		if err != nil {
			return err
		}
		for _, n := range nodes {
			if _, err := s.ep.Call(context.Background(), n.Name, MethodSetPrimary, msg); err != nil {
				return err
			}
		}
		s.mu.Lock()
		st.primary = req.To
		st.epoch = epoch
		s.logChangeLocked(req)
		s.mu.Unlock()
		return nil
	}
}

func (s *Server) logChangeLocked(req ChangeRequestMsg) {
	s.changeLog = append(s.changeLog, ChangeEvent{
		At: s.fabric.Network().Clock().Now(), InstanceID: req.InstanceID,
		What: req.What, To: req.To, From: req.From, Via: req.Via,
	})
}

// ChangeLog returns the applied policy changes in order.
func (s *Server) ChangeLog() []ChangeEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ChangeEvent(nil), s.changeLog...)
}

// CurrentPolicy returns the instance's active data-plane policy name.
func (s *Server) CurrentPolicy(instanceID string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.instances[instanceID]
	if !ok {
		return "", fmt.Errorf("wiera: no instance %q", instanceID)
	}
	return st.policyName, nil
}

// CurrentPrimary returns the instance's current primary node name.
func (s *Server) CurrentPrimary(instanceID string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.instances[instanceID]
	if !ok {
		return "", fmt.Errorf("wiera: no instance %q", instanceID)
	}
	return st.primary, nil
}

// Start launches the heartbeat loop (Sec 4.1: the TSM "periodically sends
// a ping message to check on their health"; Sec 4.4: failed replicas are
// recreated while the available count is below the required threshold).
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.stopCh = make(chan struct{})
	stop := s.stopCh
	s.mu.Unlock()
	go s.heartbeatLoop(stop)
}

// Stop terminates the heartbeat loop.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.started {
		close(s.stopCh)
		s.started = false
	}
	s.mu.Unlock()
}

// Close stops the server and removes its endpoint.
func (s *Server) Close() {
	s.Stop()
	s.mu.Lock()
	ctls := make([]*autoscale.Controller, 0, len(s.instances))
	for _, st := range s.instances {
		ctls = append(ctls, st.autoctl)
	}
	s.mu.Unlock()
	for _, c := range ctls {
		c.Stop() // nil-safe
	}
	s.fabric.Remove(s.name)
}

func (s *Server) heartbeatLoop(stop <-chan struct{}) {
	clk := s.fabric.Network().Clock()
	for {
		select {
		case <-stop:
			return
		case <-clk.After(s.hbEvery):
			s.HeartbeatOnce()
		}
	}
}

// HeartbeatOnce pings every node of every instance and respawns failed
// replicas below the minimum count. Exported so tests and experiments can
// drive failure recovery deterministically.
func (s *Server) HeartbeatOnce() {
	s.mu.Lock()
	ids := make([]string, 0, len(s.instances))
	for id := range s.instances {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	for _, id := range ids {
		s.checkInstance(id)
	}
}

func (s *Server) checkInstance(id string) {
	s.mu.Lock()
	st, ok := s.instances[id]
	if !ok || st.rebalancing {
		// A rebalance in flight owns the membership; skip this round.
		s.mu.Unlock()
		return
	}
	nodes := append([]PeerInfo(nil), st.nodes...)
	plans := append([]regionPlan(nil), st.plans...)
	minReplicas := st.minReplicas
	var rm *ring.Map
	if st.ringMap != nil {
		rm = st.ringMap.Clone()
	}
	primary := st.primary
	s.mu.Unlock()

	ping, _ := transport.Encode(PingMsg{})
	var live, dead []PeerInfo
	for _, n := range nodes {
		if _, err := s.ep.Call(context.Background(), n.Name, MethodPing, ping); err != nil {
			dead = append(dead, n)
		} else {
			live = append(live, n)
		}
	}
	if len(dead) == 0 || (rm == nil && len(live) >= minReplicas) {
		if len(dead) > 0 {
			s.commitMembership(st, live, rm)
		}
		return
	}
	// Respawn failed replicas in their original regions: until the minimum
	// is met for the classic layout, unconditionally for a sharded one (the
	// dead worker's key range has no other owner in its region).
	for _, d := range dead {
		if rm == nil && len(live) >= minReplicas {
			break
		}
		plan, ok := planForRegion(plans, d.Region)
		if !ok {
			continue
		}
		newName := respawnName(d.Name)
		groupPrimary := primary
		shard := -1
		if rm != nil {
			shard = rm.ShardOf(string(d.Region), d.Name)
			if shard < 0 {
				continue // not in the current map; nothing to restore
			}
			if pr := rm.Workers[string(st.primaryRegion)]; len(pr) > shard {
				groupPrimary = pr[shard]
			}
		}
		node, err := s.spawn(id, newName, plan, st, groupPrimary)
		if err != nil {
			continue
		}
		// Bootstrap from a live peer — for a sharded instance, from a live
		// member of the same shard group (others hold different key ranges).
		from := ""
		if rm == nil {
			if len(live) > 0 {
				from = live[0].Name
			}
		} else {
			for _, region := range rm.Regions() {
				if ws := rm.Workers[region]; len(ws) > shard && sliceHas(live, ws[shard]) {
					from = ws[shard]
					break
				}
			}
			// The new name replaces the dead one in the map.
			rm.Workers[string(d.Region)][shard] = node.Name
			if groupPrimary == d.Name {
				groupPrimary = node.Name
			}
		}
		if from != "" {
			if n := lookupNode(node.Name); n != nil {
				_ = n.SyncFrom(from)
			}
		}
		live = append(live, node)
	}
	s.commitMembership(st, live, rm)
}

func (s *Server) commitMembership(st *instanceState, live []PeerInfo, rm *ring.Map) {
	s.mu.Lock()
	st.nodes = live
	if rm != nil {
		// The patched map gets a fresh epoch so nodes and clients holding the
		// pre-respawn map refresh their routing.
		s.nextRingEpoch(st, rm)
		st.ringMap = rm
	}
	// If the primary died, promote: the primary region's shard-0 worker for
	// a sharded instance, the first live node otherwise.
	if !sliceHas(live, st.primary) && len(live) > 0 && st.primary != "" {
		if rm != nil && string(st.primaryRegion) != "" && len(rm.Workers[string(st.primaryRegion)]) > 0 {
			st.primary = rm.Workers[string(st.primaryRegion)][0]
		} else {
			st.primary = live[0].Name
		}
	}
	s.mu.Unlock()
	_ = s.broadcastPeers(st)
	if rm != nil {
		_ = s.broadcastRing(live, RingMsg{Map: rm, Settled: true})
	}
}

func planForRegion(plans []regionPlan, region simnet.Region) (regionPlan, bool) {
	for _, p := range plans {
		if p.Region == region {
			return p, true
		}
	}
	return regionPlan{}, false
}

// respawnName derives a fresh node name from a dead one (name, name#2,
// name#3, ...).
func respawnName(old string) string {
	base := old
	gen := 1
	if i := strings.LastIndex(old, "#"); i >= 0 {
		if _, err := fmt.Sscanf(old[i:], "#%d", &gen); err == nil {
			base = old[:i]
		}
	}
	return fmt.Sprintf("%s#%d", base, gen+1)
}

// TieraServer runs in each region and spawns instance nodes on request
// (paper Sec 3.1/4.1). Nodes run in-process ("instances run within the
// Tiera server process for simplicity", Sec 4.1).
type TieraServer struct {
	region    simnet.Region
	name      string
	fabric    *transport.Fabric
	ep        *transport.Endpoint
	coordDst  string
	serverDst string

	mu    sync.Mutex
	nodes map[string]*Node
}

// NewTieraServer registers a Tiera server endpoint in region and announces
// it to the Wiera server's TSM.
func NewTieraServer(fabric *transport.Fabric, region simnet.Region, server *Server, coordDst string) (*TieraServer, error) {
	name := "tiera-server/" + string(region)
	ep, err := fabric.NewEndpoint(name, region)
	if err != nil {
		return nil, err
	}
	ts := &TieraServer{
		region: region, name: name, fabric: fabric, ep: ep,
		coordDst: coordDst, serverDst: server.Name(),
		nodes: make(map[string]*Node),
	}
	ep.Serve(ts.handle)
	server.RegisterTieraServer(region, name)
	return ts, nil
}

// Name returns the Tiera server's endpoint name.
func (ts *TieraServer) Name() string { return ts.name }

func (ts *TieraServer) handle(_ context.Context, method string, payload []byte) ([]byte, error) {
	switch method {
	case MethodSpawn:
		var req SpawnRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		node, err := ts.Spawn(req)
		if err != nil {
			return nil, err
		}
		return transport.Encode(SpawnResponse{Node: PeerInfo{Name: node.Name(), Region: ts.region}})
	case MethodDespawn:
		var req DespawnRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		ts.mu.Lock()
		node := ts.nodes[req.NodeName]
		delete(ts.nodes, req.NodeName)
		ts.mu.Unlock()
		if node != nil {
			_ = node.Close()
		}
		return transport.Encode(Empty{})
	case MethodPing:
		return transport.Encode(PongMsg{Name: ts.name})
	default:
		return nil, fmt.Errorf("wiera: tiera server: unknown method %q", method)
	}
}

// sloParams assembles the node's SLO objectives from spawn params:
// sloPut/sloGet (latency thresholds, durations) and sloAvailability (bool)
// declare objectives; sloTarget (good ratio, default 0.999), sloFastWindow/
// sloSlowWindow (burn windows), sloBurn (alert threshold, default 2), and
// sloInterval (evaluation period) tune them. Sources are bound by NewNode.
func sloParams(params map[string]policy.Value) ([]flight.Objective, time.Duration) {
	num := func(key string, def float64) float64 {
		if v, ok := params[key]; ok && v.Kind == policy.ValNumber {
			return v.Num
		}
		return def
	}
	dur := func(key string) time.Duration {
		if v, ok := params[key]; ok && v.Kind == policy.ValDuration {
			return v.Dur
		}
		return 0
	}
	target := num("sloTarget", 0.999)
	base := flight.Objective{
		Target:     target,
		FastWindow: dur("sloFastWindow"),
		SlowWindow: dur("sloSlowWindow"),
		AlertBurn:  num("sloBurn", 0), // 0 => flight.DefaultAlertBurn
	}
	var slos []flight.Objective
	if th := dur("sloPut"); th > 0 {
		o := base
		o.Name, o.Op, o.Threshold = "put-latency", "put", th
		slos = append(slos, o)
	}
	if th := dur("sloGet"); th > 0 {
		o := base
		o.Name, o.Op, o.Threshold = "get-latency", "get", th
		slos = append(slos, o)
	}
	if v, ok := params["sloAvailability"]; ok && v.Kind == policy.ValBool && v.Bool {
		o := base
		o.Name, o.Op = "availability", "availability"
		slos = append(slos, o)
	}
	return slos, dur("sloInterval")
}

// Spawn creates a node from a spawn request (Sec 4.1 steps 4-5).
func (ts *TieraServer) Spawn(req SpawnRequest) (*Node, error) {
	localSpec, err := policy.Parse(req.LocalSrc)
	if err != nil {
		return nil, err
	}
	globalSpec, err := policy.Parse(req.GlobalSrc)
	if err != nil {
		return nil, err
	}
	params, err := decodeParams(req.Params)
	if err != nil {
		return nil, err
	}
	var dynSpec *policy.Spec
	if dyn, ok := req.Params["dynamic"]; ok && dyn != "" {
		dynSpec, err = policy.Parse(dyn)
		if err != nil {
			return nil, err
		}
	}
	// Modular instances (Sec 3.2.2): a tier declared as
	// {name: instance, ref: "<node name>", readonly: true} mounts another
	// running instance as a storage tier of this one.
	extraTiers := make(map[string]tier.Tier)
	for _, td := range localSpec.Tiers {
		nameVal, ok := policy.FindAttr(td.Attrs, "name")
		if !ok || nameVal.Str != "instance" {
			continue
		}
		refVal, ok := policy.FindAttr(td.Attrs, "ref")
		if !ok {
			return nil, fmt.Errorf("wiera: tier %q: instance tier requires ref", td.Label)
		}
		backend := lookupNode(refVal.Str)
		if backend == nil {
			return nil, fmt.Errorf("wiera: tier %q: no running node %q", td.Label, refVal.Str)
		}
		readOnly := false
		if v, ok := policy.FindAttr(td.Attrs, "readonly"); ok && v.Kind == policy.ValBool {
			readOnly = v.Bool
		}
		extraTiers[td.Label] = tiera.NewInstanceTier(td.Label, backend.Local(), readOnly)
	}
	if len(extraTiers) == 0 {
		extraTiers = nil
	}

	var monitorWindow, queueFlush time.Duration
	if v, ok := params["monitorWindow"]; ok && v.Kind == policy.ValDuration {
		monitorWindow = v.Dur
	}
	if v, ok := params["queueFlush"]; ok && v.Kind == policy.ValDuration {
		queueFlush = v.Dur
	}
	noSupersede := false
	if v, ok := params["queueSupersede"]; ok && v.Kind == policy.ValBool {
		noSupersede = !v.Bool
	}
	// antiEntropy accepts a duration (round period) or false (disable the
	// repair subsystem).
	var antiEntropy time.Duration
	if v, ok := params["antiEntropy"]; ok {
		switch {
		case v.Kind == policy.ValDuration:
			antiEntropy = v.Dur
		case v.Kind == policy.ValBool && !v.Bool:
			antiEntropy = -1
		}
	}
	// maxBatchBytes accepts a size (per-chunk payload budget for batched
	// replication), a bare number (bytes), or false (disable batching —
	// per-key fan-out ablation).
	var maxBatchBytes int64
	if v, ok := params["maxBatchBytes"]; ok {
		switch {
		case v.Kind == policy.ValSize:
			maxBatchBytes = v.Size
		case v.Kind == policy.ValNumber:
			maxBatchBytes = int64(v.Num)
		case v.Kind == policy.ValBool && !v.Bool:
			maxBatchBytes = -1
		}
	}
	// Erasure-coding knobs for the stripe action's chooser. ecScheme is a
	// raw "k+m" string ("4+2" is three policy tokens, not a literal), so it
	// rides req.Params directly like the dynamic policy source does.
	ecScheme := req.Params["ecScheme"]
	var ecThreshold int64
	if v, ok := params["ecThresholdBytes"]; ok {
		switch {
		case v.Kind == policy.ValSize:
			ecThreshold = v.Size
		case v.Kind == policy.ValNumber:
			ecThreshold = int64(v.Num)
		case v.Kind == policy.ValBool && !v.Bool:
			ecThreshold = -1 // erasure-code every size
		}
	}
	var ecHotGets int64
	if v, ok := params["ecHotGets"]; ok && v.Kind == policy.ValNumber {
		ecHotGets = int64(v.Num)
	}
	// Heat tracking knobs (hot-key selective replication): heatTrack turns
	// the tracker on; the rest tune thresholds, replica count, loop period,
	// and top-set size.
	heatTrack := false
	if v, ok := params["heatTrack"]; ok && v.Kind == policy.ValBool {
		heatTrack = v.Bool
	}
	pnum := func(key string) float64 {
		if v, ok := params[key]; ok && v.Kind == policy.ValNumber {
			return v.Num
		}
		return 0
	}
	var heatInterval time.Duration
	if v, ok := params["heatInterval"]; ok && v.Kind == policy.ValDuration {
		heatInterval = v.Dur
	}
	// Tenancy: tenant IDs, weights, and quotas ride req.Params raw (comma
	// lists and colon-suffixed keys are not single policy literals).
	tenants, err := tenant.ParseConfigs(req.Params)
	if err != nil {
		return nil, err
	}
	tenantSlots := 0
	if raw, ok := req.Params["tenantSlots"]; ok {
		if _, err := fmt.Sscanf(strings.TrimSpace(raw), "%d", &tenantSlots); err != nil {
			return nil, fmt.Errorf("wiera: bad tenantSlots %q", raw)
		}
	}
	// wireCodec selects the node's outgoing RPC encoding: "binary" (or
	// unset) uses the hand-rolled wire codec on hot-path messages, "gob"
	// pins the pre-upgrade format for mixed-version clusters. It rides
	// req.Params raw because the values are plain identifiers.
	var wireCodec transport.Codec
	switch raw := strings.TrimSpace(req.Params["wireCodec"]); raw {
	case "", "auto", "binary", "wire":
		wireCodec = transport.CodecAuto
	case "gob":
		wireCodec = transport.CodecGob
	default:
		return nil, fmt.Errorf("wiera: bad wireCodec %q (want binary or gob)", raw)
	}
	slos, sloInterval := sloParams(params)
	node, err := NewNode(NodeConfig{
		Name:             req.NodeName,
		InstanceID:       req.InstanceID,
		Region:           ts.region,
		Fabric:           ts.fabric,
		LocalSpec:        localSpec,
		LocalParams:      params,
		GlobalSpec:       globalSpec,
		GlobalParams:     params,
		DynamicSpec:      dynSpec,
		CoordDst:         ts.coordDst,
		ServerDst:        ts.serverDst,
		Primary:          req.Primary,
		MonitorWindow:    monitorWindow,
		QueueFlushEvery:  queueFlush,
		NoQueueSupersede: noSupersede,
		MaxBatchBytes:    maxBatchBytes,
		ECScheme:         ecScheme,
		ECThresholdBytes: ecThreshold,
		ECHotGets:        ecHotGets,
		HeatTrack:        heatTrack,
		HeatPromoteRate:  pnum("heatPromoteRate"),
		HeatDemoteRate:   pnum("heatDemoteRate"),
		HeatReplicas:     int(pnum("heatReplicas")),
		HeatInterval:     heatInterval,
		HeatTopK:         int(pnum("heatTopK")),
		AntiEntropyEvery: antiEntropy,
		Tenants:          tenants,
		TenantSlots:      tenantSlots,
		SLOs:             slos,
		SLOInterval:      sloInterval,
		WireCodec:        wireCodec,
		ExtraTiers:       extraTiers,
	})
	if err != nil {
		return nil, err
	}
	ts.mu.Lock()
	ts.nodes[req.NodeName] = node
	ts.mu.Unlock()
	return node, nil
}

// Node returns a spawned node by name (experiments reach in for metrics).
func (ts *TieraServer) Node(name string) (*Node, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	n, ok := ts.nodes[name]
	return n, ok
}

// Close shuts down all nodes and the server endpoint.
func (ts *TieraServer) Close() {
	ts.mu.Lock()
	nodes := make([]*Node, 0, len(ts.nodes))
	for _, n := range ts.nodes {
		nodes = append(nodes, n)
	}
	ts.nodes = make(map[string]*Node)
	ts.mu.Unlock()
	for _, n := range nodes {
		_ = n.Close()
	}
	ts.fabric.Remove(ts.name)
}

// decodeParams converts string parameter bindings ("10s", "5G", "true",
// "42") into policy values by parsing them as policy literals.
func decodeParams(raw map[string]string) (map[string]policy.Value, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	out := make(map[string]policy.Value, len(raw))
	for k, v := range raw {
		if k == "dynamic" || k == "ecScheme" || tenant.IsTenantParam(k) {
			continue // carried separately: not single policy literals
		}
		val, err := parseParamValue(v)
		if err != nil {
			return nil, fmt.Errorf("wiera: param %q: %w", k, err)
		}
		out[k] = val
	}
	return out, nil
}

func parseParamValue(s string) (policy.Value, error) {
	toks, err := policy.Lex(s)
	if err != nil {
		return policy.Value{}, err
	}
	if len(toks) != 2 { // value + EOF
		return policy.Value{}, fmt.Errorf("not a single literal: %q", s)
	}
	return policy.TokenValue(toks[0])
}

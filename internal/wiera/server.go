package wiera

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/flight"
	"repro/internal/policy"
	"repro/internal/simnet"
	"repro/internal/tier"
	"repro/internal/tiera"
	"repro/internal/transport"
)

// ServerConfig assembles the Wiera control plane.
type ServerConfig struct {
	// Fabric connects the server to Tiera servers and nodes.
	Fabric *transport.Fabric
	// Name is the server's endpoint name (default "wiera").
	Name string
	// Region places the server (the paper runs it in US-East).
	Region simnet.Region
	// CoordDst names the coordination service endpoint nodes should use
	// for global locks ("" disables locking).
	CoordDst string
	// HeartbeatEvery is the TSM ping period (default 5s clock time).
	HeartbeatEvery time.Duration
}

// Server is the Wiera control plane: the WUI application API (Table 1),
// the Global Policy Manager holding policy metadata, the Tiera Server
// Manager tracking per-region Tiera servers, and one Tiera Instance
// Manager per running Wiera instance. The server never carries object
// data.
type Server struct {
	name     string
	region   simnet.Region
	fabric   *transport.Fabric
	ep       *transport.Endpoint
	coordDst string
	hbEvery  time.Duration

	mu           sync.Mutex
	tieraServers map[simnet.Region]string // TSM registry: region -> endpoint
	instances    map[string]*instanceState
	changeLog    []ChangeEvent
	stopCh       chan struct{}
	started      bool
}

// ChangeEvent records one applied run-time policy change (consistency swap
// or primary move) — the timeline data behind the paper's Fig 7.
type ChangeEvent struct {
	At         time.Time
	InstanceID string
	What       string
	To         string
	From       string // requesting node
	Via        string // triggering monitor ("latency", "primary", "slo", ...)
}

// instanceState is one TIM: the metadata of a running Wiera instance.
type instanceState struct {
	id          string
	globalSrc   string
	dynamicSrc  string
	params      map[string]string
	policyName  string // current data-plane policy
	primary     string
	epoch       int64
	minReplicas int
	nodes       []PeerInfo
	plans       []regionPlan // for respawning failed replicas
	changing    bool
}

// regionPlan records how to (re)spawn one member.
type regionPlan struct {
	Region   simnet.Region
	LocalSrc string
	Primary  bool
}

// NewServer builds and registers the control plane endpoint.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Fabric == nil {
		return nil, errors.New("wiera: fabric required")
	}
	name := cfg.Name
	if name == "" {
		name = "wiera"
	}
	region := cfg.Region
	if region == "" {
		region = simnet.USEast
	}
	ep, err := cfg.Fabric.NewEndpoint(name, region)
	if err != nil {
		return nil, err
	}
	s := &Server{
		name:         name,
		region:       region,
		fabric:       cfg.Fabric,
		ep:           ep,
		coordDst:     cfg.CoordDst,
		hbEvery:      cfg.HeartbeatEvery,
		tieraServers: make(map[simnet.Region]string),
		instances:    make(map[string]*instanceState),
	}
	if s.hbEvery <= 0 {
		s.hbEvery = 5 * time.Second
	}
	ep.Serve(s.handle)
	return s, nil
}

// Name returns the server endpoint name.
func (s *Server) Name() string { return s.name }

// RegisterTieraServer records a Tiera server for a region (Sec 4.1:
// "whenever a Tiera server launches, it connects to the TSM first").
func (s *Server) RegisterTieraServer(region simnet.Region, endpoint string) {
	s.mu.Lock()
	s.tieraServers[region] = endpoint
	s.mu.Unlock()
}

// handle dispatches control-plane RPCs. Control-plane operations fan out
// their own RPCs under fresh contexts (they are not part of any data-path
// trace), so the incoming ctx is not propagated further.
func (s *Server) handle(_ context.Context, method string, payload []byte) ([]byte, error) {
	switch method {
	case MethodStartInstances:
		var req StartInstancesRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		nodes, err := s.StartInstances(req)
		if err != nil {
			return nil, err
		}
		return transport.Encode(StartInstancesResponse{Nodes: nodes})
	case MethodStopInstances:
		var req StopInstancesRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		if err := s.StopInstances(req.InstanceID); err != nil {
			return nil, err
		}
		return transport.Encode(Empty{})
	case MethodGetInstances:
		var req GetInstancesRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		nodes, err := s.GetInstances(req.InstanceID)
		if err != nil {
			return nil, err
		}
		return transport.Encode(StartInstancesResponse{Nodes: nodes})
	case MethodCollectStats:
		var req GetInstancesRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		stats, err := s.CollectStats(req.InstanceID)
		if err != nil {
			return nil, err
		}
		return transport.Encode(stats)
	case MethodRequestChange:
		var req ChangeRequestMsg
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		if err := s.ApplyChange(req); err != nil {
			return nil, err
		}
		return transport.Encode(Empty{})
	default:
		return nil, fmt.Errorf("wiera: server: unknown method %q", method)
	}
}

// StartInstances implements Table 1 startInstances: parse the global
// policy, spawn a Tiera instance in every declared region through that
// region's Tiera server, distribute membership, and return the node list.
func (s *Server) StartInstances(req StartInstancesRequest) ([]PeerInfo, error) {
	if req.InstanceID == "" {
		return nil, errors.New("wiera: instance id required")
	}
	globalSpec, err := policy.Parse(req.PolicySrc)
	if err != nil {
		return nil, err
	}
	if !globalSpec.IsGlobal {
		return nil, fmt.Errorf("wiera: policy %q is not a Wiera policy", globalSpec.Name)
	}
	if len(globalSpec.Regions) == 0 {
		return nil, fmt.Errorf("wiera: policy %q declares no regions", globalSpec.Name)
	}
	s.mu.Lock()
	if _, exists := s.instances[req.InstanceID]; exists {
		s.mu.Unlock()
		return nil, fmt.Errorf("wiera: instance %q already running", req.InstanceID)
	}
	s.mu.Unlock()

	st := &instanceState{
		id:          req.InstanceID,
		globalSrc:   req.PolicySrc,
		params:      req.Params,
		policyName:  globalSpec.Name,
		minReplicas: req.MinReplicas,
	}
	// The minimum-replica requirement (Sec 4.4: "an application can specify
	// the required number of replicas to be available at all times") can
	// also arrive as a policy parameter.
	if st.minReplicas == 0 {
		if v, ok := req.Params["minReplicas"]; ok {
			fmt.Sscanf(v, "%d", &st.minReplicas)
		}
	}
	if dyn, ok := req.Params["dynamic"]; ok {
		st.dynamicSrc = dyn
	}

	var nodes []PeerInfo
	for _, decl := range globalSpec.Regions {
		plan, nodeName, err := s.planFor(req.InstanceID, globalSpec, decl, req.LocalSpecs)
		if err != nil {
			s.teardown(nodes)
			return nil, err
		}
		node, err := s.spawn(req.InstanceID, nodeName, plan, st)
		if err != nil {
			s.teardown(nodes)
			return nil, err
		}
		if plan.Primary {
			st.primary = node.Name
		}
		st.plans = append(st.plans, plan)
		nodes = append(nodes, node)
	}
	if st.minReplicas == 0 {
		st.minReplicas = len(nodes)
	}
	st.nodes = nodes
	s.mu.Lock()
	s.instances[req.InstanceID] = st
	s.mu.Unlock()
	if err := s.broadcastPeers(st); err != nil {
		return nil, err
	}
	return nodes, nil
}

// planFor derives a region plan from one region declaration: resolve the
// local policy (builtin name), apply tier overrides, and name the node.
func (s *Server) planFor(instanceID string, global *policy.Spec, decl policy.RegionDecl, localSpecs map[string]string) (regionPlan, string, error) {
	regionVal, ok := policy.FindAttr(decl.Attrs, "region")
	if !ok {
		return regionPlan{}, "", fmt.Errorf("wiera: region decl %q missing region attribute", decl.Label)
	}
	region := simnet.Region(regionVal.Str)
	localName, ok := policy.FindAttr(decl.Attrs, "name")
	if !ok {
		return regionPlan{}, "", fmt.Errorf("wiera: region decl %q missing instance name", decl.Label)
	}
	var localSpec *policy.Spec
	var err error
	if src, ok := localSpecs[localName.Str]; ok {
		localSpec, err = policy.Parse(src)
	} else {
		localSpec, err = policy.Builtin(localName.Str)
	}
	if err != nil {
		return regionPlan{}, "", err
	}
	if localSpec.IsGlobal {
		return regionPlan{}, "", fmt.Errorf("wiera: %q is a global policy, not a local instance", localName.Str)
	}
	merged := mergeTierOverrides(localSpec, decl.Tiers)
	primary := false
	if p, ok := policy.FindAttr(decl.Attrs, "primary"); ok && p.Kind == policy.ValBool {
		primary = p.Bool
	}
	nodeName := fmt.Sprintf("%s/%s", instanceID, region)
	return regionPlan{Region: region, LocalSrc: policy.Print(merged), Primary: primary}, nodeName, nil
}

// mergeTierOverrides replaces or appends tier declarations from a region
// decl into a copy of the local spec.
func mergeTierOverrides(spec *policy.Spec, overrides []policy.TierDecl) *policy.Spec {
	if len(overrides) == 0 {
		return spec
	}
	merged := *spec
	merged.Tiers = append([]policy.TierDecl(nil), spec.Tiers...)
	for _, ov := range overrides {
		replaced := false
		for i := range merged.Tiers {
			if merged.Tiers[i].Label == ov.Label {
				merged.Tiers[i] = ov
				replaced = true
				break
			}
		}
		if !replaced {
			merged.Tiers = append(merged.Tiers, ov)
		}
	}
	return &merged
}

// spawn asks the region's Tiera server to create the node.
func (s *Server) spawn(instanceID, nodeName string, plan regionPlan, st *instanceState) (PeerInfo, error) {
	s.mu.Lock()
	tsEndpoint, ok := s.tieraServers[plan.Region]
	s.mu.Unlock()
	if !ok {
		return PeerInfo{}, fmt.Errorf("wiera: no Tiera server registered for region %s", plan.Region)
	}
	primaryName := ""
	if plan.Primary {
		primaryName = nodeName
	} else {
		primaryName = st.primary
	}
	payload, err := transport.Encode(SpawnRequest{
		InstanceID: instanceID,
		NodeName:   nodeName,
		LocalSrc:   plan.LocalSrc,
		GlobalSrc:  st.globalSrc,
		Params:     st.params,
		Primary:    primaryName,
	})
	if err != nil {
		return PeerInfo{}, err
	}
	raw, err := s.ep.Call(context.Background(), tsEndpoint, MethodSpawn, payload)
	if err != nil {
		return PeerInfo{}, err
	}
	var resp SpawnResponse
	if err := transport.Decode(raw, &resp); err != nil {
		return PeerInfo{}, err
	}
	return resp.Node, nil
}

func (s *Server) teardown(nodes []PeerInfo) {
	for _, n := range nodes {
		payload, _ := transport.Encode(Empty{})
		_, _ = s.ep.Call(context.Background(), n.Name, MethodShutdown, payload)
	}
}

// broadcastPeers distributes the membership list and primary to all nodes
// (Sec 4.1 step 6).
func (s *Server) broadcastPeers(st *instanceState) error {
	payload, err := transport.Encode(PeersMsg{Peers: st.nodes, Primary: st.primary})
	if err != nil {
		return err
	}
	for _, n := range st.nodes {
		if _, err := s.ep.Call(context.Background(), n.Name, MethodSetPeers, payload); err != nil {
			return err
		}
	}
	return nil
}

// StopInstances implements Table 1 stopInstances.
func (s *Server) StopInstances(instanceID string) error {
	s.mu.Lock()
	st, ok := s.instances[instanceID]
	if ok {
		delete(s.instances, instanceID)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("wiera: no instance %q", instanceID)
	}
	s.teardown(st.nodes)
	return nil
}

// GetInstances implements Table 1 getInstances.
func (s *Server) GetInstances(instanceID string) ([]PeerInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.instances[instanceID]
	if !ok {
		return nil, fmt.Errorf("wiera: no instance %q", instanceID)
	}
	return append([]PeerInfo(nil), st.nodes...), nil
}

// ApplyChange executes a change_policy request from a node: a consistency
// swap (prepare on all nodes, then commit) or a primary move.
func (s *Server) ApplyChange(req ChangeRequestMsg) error {
	s.mu.Lock()
	st, ok := s.instances[req.InstanceID]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("wiera: no instance %q", req.InstanceID)
	}
	if st.changing {
		s.mu.Unlock()
		return nil // a change is already in flight; drop duplicates
	}
	switch req.What {
	case "consistency":
		if st.policyName == req.To {
			s.mu.Unlock()
			return nil
		}
	case "primary_instance":
		if st.primary == req.To {
			s.mu.Unlock()
			return nil
		}
	default:
		s.mu.Unlock()
		return fmt.Errorf("wiera: unknown change target %q", req.What)
	}
	st.changing = true
	nodes := append([]PeerInfo(nil), st.nodes...)
	epoch := st.epoch + 1
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		st.changing = false
		s.mu.Unlock()
	}()

	switch req.What {
	case "consistency":
		// Validate the target policy before disturbing the fleet.
		if _, err := policy.Builtin(req.To); err != nil {
			return err
		}
		prepare, err := transport.Encode(PrepareChangeMsg{Epoch: epoch})
		if err != nil {
			return err
		}
		for _, n := range nodes {
			if _, err := s.ep.Call(context.Background(), n.Name, MethodPrepareChange, prepare); err != nil {
				return err
			}
		}
		commit, err := transport.Encode(CommitChangeMsg{Epoch: epoch, PolicyName: req.To})
		if err != nil {
			return err
		}
		for _, n := range nodes {
			if _, err := s.ep.Call(context.Background(), n.Name, MethodCommitChange, commit); err != nil {
				return err
			}
		}
		s.mu.Lock()
		st.policyName = req.To
		st.epoch = epoch
		s.logChangeLocked(req)
		s.mu.Unlock()
		return nil
	default: // primary_instance
		msg, err := transport.Encode(SetPrimaryMsg{Primary: req.To})
		if err != nil {
			return err
		}
		for _, n := range nodes {
			if _, err := s.ep.Call(context.Background(), n.Name, MethodSetPrimary, msg); err != nil {
				return err
			}
		}
		s.mu.Lock()
		st.primary = req.To
		st.epoch = epoch
		s.logChangeLocked(req)
		s.mu.Unlock()
		return nil
	}
}

func (s *Server) logChangeLocked(req ChangeRequestMsg) {
	s.changeLog = append(s.changeLog, ChangeEvent{
		At: s.fabric.Network().Clock().Now(), InstanceID: req.InstanceID,
		What: req.What, To: req.To, From: req.From, Via: req.Via,
	})
}

// ChangeLog returns the applied policy changes in order.
func (s *Server) ChangeLog() []ChangeEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ChangeEvent(nil), s.changeLog...)
}

// CurrentPolicy returns the instance's active data-plane policy name.
func (s *Server) CurrentPolicy(instanceID string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.instances[instanceID]
	if !ok {
		return "", fmt.Errorf("wiera: no instance %q", instanceID)
	}
	return st.policyName, nil
}

// CurrentPrimary returns the instance's current primary node name.
func (s *Server) CurrentPrimary(instanceID string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.instances[instanceID]
	if !ok {
		return "", fmt.Errorf("wiera: no instance %q", instanceID)
	}
	return st.primary, nil
}

// Start launches the heartbeat loop (Sec 4.1: the TSM "periodically sends
// a ping message to check on their health"; Sec 4.4: failed replicas are
// recreated while the available count is below the required threshold).
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.stopCh = make(chan struct{})
	stop := s.stopCh
	s.mu.Unlock()
	go s.heartbeatLoop(stop)
}

// Stop terminates the heartbeat loop.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.started {
		close(s.stopCh)
		s.started = false
	}
	s.mu.Unlock()
}

// Close stops the server and removes its endpoint.
func (s *Server) Close() {
	s.Stop()
	s.fabric.Remove(s.name)
}

func (s *Server) heartbeatLoop(stop <-chan struct{}) {
	clk := s.fabric.Network().Clock()
	for {
		select {
		case <-stop:
			return
		case <-clk.After(s.hbEvery):
			s.HeartbeatOnce()
		}
	}
}

// HeartbeatOnce pings every node of every instance and respawns failed
// replicas below the minimum count. Exported so tests and experiments can
// drive failure recovery deterministically.
func (s *Server) HeartbeatOnce() {
	s.mu.Lock()
	ids := make([]string, 0, len(s.instances))
	for id := range s.instances {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	for _, id := range ids {
		s.checkInstance(id)
	}
}

func (s *Server) checkInstance(id string) {
	s.mu.Lock()
	st, ok := s.instances[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	nodes := append([]PeerInfo(nil), st.nodes...)
	plans := append([]regionPlan(nil), st.plans...)
	minReplicas := st.minReplicas
	s.mu.Unlock()

	ping, _ := transport.Encode(PingMsg{})
	var live, dead []PeerInfo
	for _, n := range nodes {
		if _, err := s.ep.Call(context.Background(), n.Name, MethodPing, ping); err != nil {
			dead = append(dead, n)
		} else {
			live = append(live, n)
		}
	}
	if len(dead) == 0 || len(live) >= minReplicas {
		if len(dead) > 0 {
			s.commitMembership(st, live)
		}
		return
	}
	// Respawn failed replicas in their original regions until the minimum
	// is met.
	for _, d := range dead {
		if len(live) >= minReplicas {
			break
		}
		plan, ok := planForRegion(plans, d.Region)
		if !ok {
			continue
		}
		newName := respawnName(d.Name)
		node, err := s.spawn(id, newName, plan, st)
		if err != nil {
			continue
		}
		// Bootstrap from any live peer.
		if len(live) > 0 {
			if n := lookupNode(node.Name); n != nil {
				_ = n.SyncFrom(live[0].Name)
			}
		}
		live = append(live, node)
	}
	s.commitMembership(st, live)
}

func (s *Server) commitMembership(st *instanceState, live []PeerInfo) {
	s.mu.Lock()
	st.nodes = live
	// If the primary died, promote the first live node.
	primaryAlive := false
	for _, n := range live {
		if n.Name == st.primary {
			primaryAlive = true
			break
		}
	}
	if !primaryAlive && len(live) > 0 && st.primary != "" {
		st.primary = live[0].Name
	}
	s.mu.Unlock()
	_ = s.broadcastPeers(st)
}

func planForRegion(plans []regionPlan, region simnet.Region) (regionPlan, bool) {
	for _, p := range plans {
		if p.Region == region {
			return p, true
		}
	}
	return regionPlan{}, false
}

// respawnName derives a fresh node name from a dead one (name, name#2,
// name#3, ...).
func respawnName(old string) string {
	base := old
	gen := 1
	if i := strings.LastIndex(old, "#"); i >= 0 {
		if _, err := fmt.Sscanf(old[i:], "#%d", &gen); err == nil {
			base = old[:i]
		}
	}
	return fmt.Sprintf("%s#%d", base, gen+1)
}

// TieraServer runs in each region and spawns instance nodes on request
// (paper Sec 3.1/4.1). Nodes run in-process ("instances run within the
// Tiera server process for simplicity", Sec 4.1).
type TieraServer struct {
	region    simnet.Region
	name      string
	fabric    *transport.Fabric
	ep        *transport.Endpoint
	coordDst  string
	serverDst string

	mu    sync.Mutex
	nodes map[string]*Node
}

// NewTieraServer registers a Tiera server endpoint in region and announces
// it to the Wiera server's TSM.
func NewTieraServer(fabric *transport.Fabric, region simnet.Region, server *Server, coordDst string) (*TieraServer, error) {
	name := "tiera-server/" + string(region)
	ep, err := fabric.NewEndpoint(name, region)
	if err != nil {
		return nil, err
	}
	ts := &TieraServer{
		region: region, name: name, fabric: fabric, ep: ep,
		coordDst: coordDst, serverDst: server.Name(),
		nodes: make(map[string]*Node),
	}
	ep.Serve(ts.handle)
	server.RegisterTieraServer(region, name)
	return ts, nil
}

// Name returns the Tiera server's endpoint name.
func (ts *TieraServer) Name() string { return ts.name }

func (ts *TieraServer) handle(_ context.Context, method string, payload []byte) ([]byte, error) {
	switch method {
	case MethodSpawn:
		var req SpawnRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		node, err := ts.Spawn(req)
		if err != nil {
			return nil, err
		}
		return transport.Encode(SpawnResponse{Node: PeerInfo{Name: node.Name(), Region: ts.region}})
	case MethodDespawn:
		var req DespawnRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		ts.mu.Lock()
		node := ts.nodes[req.NodeName]
		delete(ts.nodes, req.NodeName)
		ts.mu.Unlock()
		if node != nil {
			_ = node.Close()
		}
		return transport.Encode(Empty{})
	case MethodPing:
		return transport.Encode(PongMsg{Name: ts.name})
	default:
		return nil, fmt.Errorf("wiera: tiera server: unknown method %q", method)
	}
}

// sloParams assembles the node's SLO objectives from spawn params:
// sloPut/sloGet (latency thresholds, durations) and sloAvailability (bool)
// declare objectives; sloTarget (good ratio, default 0.999), sloFastWindow/
// sloSlowWindow (burn windows), sloBurn (alert threshold, default 2), and
// sloInterval (evaluation period) tune them. Sources are bound by NewNode.
func sloParams(params map[string]policy.Value) ([]flight.Objective, time.Duration) {
	num := func(key string, def float64) float64 {
		if v, ok := params[key]; ok && v.Kind == policy.ValNumber {
			return v.Num
		}
		return def
	}
	dur := func(key string) time.Duration {
		if v, ok := params[key]; ok && v.Kind == policy.ValDuration {
			return v.Dur
		}
		return 0
	}
	target := num("sloTarget", 0.999)
	base := flight.Objective{
		Target:     target,
		FastWindow: dur("sloFastWindow"),
		SlowWindow: dur("sloSlowWindow"),
		AlertBurn:  num("sloBurn", 0), // 0 => flight.DefaultAlertBurn
	}
	var slos []flight.Objective
	if th := dur("sloPut"); th > 0 {
		o := base
		o.Name, o.Op, o.Threshold = "put-latency", "put", th
		slos = append(slos, o)
	}
	if th := dur("sloGet"); th > 0 {
		o := base
		o.Name, o.Op, o.Threshold = "get-latency", "get", th
		slos = append(slos, o)
	}
	if v, ok := params["sloAvailability"]; ok && v.Kind == policy.ValBool && v.Bool {
		o := base
		o.Name, o.Op = "availability", "availability"
		slos = append(slos, o)
	}
	return slos, dur("sloInterval")
}

// Spawn creates a node from a spawn request (Sec 4.1 steps 4-5).
func (ts *TieraServer) Spawn(req SpawnRequest) (*Node, error) {
	localSpec, err := policy.Parse(req.LocalSrc)
	if err != nil {
		return nil, err
	}
	globalSpec, err := policy.Parse(req.GlobalSrc)
	if err != nil {
		return nil, err
	}
	params, err := decodeParams(req.Params)
	if err != nil {
		return nil, err
	}
	var dynSpec *policy.Spec
	if dyn, ok := req.Params["dynamic"]; ok && dyn != "" {
		dynSpec, err = policy.Parse(dyn)
		if err != nil {
			return nil, err
		}
	}
	// Modular instances (Sec 3.2.2): a tier declared as
	// {name: instance, ref: "<node name>", readonly: true} mounts another
	// running instance as a storage tier of this one.
	extraTiers := make(map[string]tier.Tier)
	for _, td := range localSpec.Tiers {
		nameVal, ok := policy.FindAttr(td.Attrs, "name")
		if !ok || nameVal.Str != "instance" {
			continue
		}
		refVal, ok := policy.FindAttr(td.Attrs, "ref")
		if !ok {
			return nil, fmt.Errorf("wiera: tier %q: instance tier requires ref", td.Label)
		}
		backend := lookupNode(refVal.Str)
		if backend == nil {
			return nil, fmt.Errorf("wiera: tier %q: no running node %q", td.Label, refVal.Str)
		}
		readOnly := false
		if v, ok := policy.FindAttr(td.Attrs, "readonly"); ok && v.Kind == policy.ValBool {
			readOnly = v.Bool
		}
		extraTiers[td.Label] = tiera.NewInstanceTier(td.Label, backend.Local(), readOnly)
	}
	if len(extraTiers) == 0 {
		extraTiers = nil
	}

	var monitorWindow, queueFlush time.Duration
	if v, ok := params["monitorWindow"]; ok && v.Kind == policy.ValDuration {
		monitorWindow = v.Dur
	}
	if v, ok := params["queueFlush"]; ok && v.Kind == policy.ValDuration {
		queueFlush = v.Dur
	}
	noSupersede := false
	if v, ok := params["queueSupersede"]; ok && v.Kind == policy.ValBool {
		noSupersede = !v.Bool
	}
	// antiEntropy accepts a duration (round period) or false (disable the
	// repair subsystem).
	var antiEntropy time.Duration
	if v, ok := params["antiEntropy"]; ok {
		switch {
		case v.Kind == policy.ValDuration:
			antiEntropy = v.Dur
		case v.Kind == policy.ValBool && !v.Bool:
			antiEntropy = -1
		}
	}
	slos, sloInterval := sloParams(params)
	node, err := NewNode(NodeConfig{
		Name:             req.NodeName,
		InstanceID:       req.InstanceID,
		Region:           ts.region,
		Fabric:           ts.fabric,
		LocalSpec:        localSpec,
		LocalParams:      params,
		GlobalSpec:       globalSpec,
		GlobalParams:     params,
		DynamicSpec:      dynSpec,
		CoordDst:         ts.coordDst,
		ServerDst:        ts.serverDst,
		Primary:          req.Primary,
		MonitorWindow:    monitorWindow,
		QueueFlushEvery:  queueFlush,
		NoQueueSupersede: noSupersede,
		AntiEntropyEvery: antiEntropy,
		SLOs:             slos,
		SLOInterval:      sloInterval,
		ExtraTiers:       extraTiers,
	})
	if err != nil {
		return nil, err
	}
	ts.mu.Lock()
	ts.nodes[req.NodeName] = node
	ts.mu.Unlock()
	return node, nil
}

// Node returns a spawned node by name (experiments reach in for metrics).
func (ts *TieraServer) Node(name string) (*Node, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	n, ok := ts.nodes[name]
	return n, ok
}

// Close shuts down all nodes and the server endpoint.
func (ts *TieraServer) Close() {
	ts.mu.Lock()
	nodes := make([]*Node, 0, len(ts.nodes))
	for _, n := range ts.nodes {
		nodes = append(nodes, n)
	}
	ts.nodes = make(map[string]*Node)
	ts.mu.Unlock()
	for _, n := range nodes {
		_ = n.Close()
	}
	ts.fabric.Remove(ts.name)
}

// decodeParams converts string parameter bindings ("10s", "5G", "true",
// "42") into policy values by parsing them as policy literals.
func decodeParams(raw map[string]string) (map[string]policy.Value, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	out := make(map[string]policy.Value, len(raw))
	for k, v := range raw {
		if k == "dynamic" {
			continue // carried separately: a policy source, not a value
		}
		val, err := parseParamValue(v)
		if err != nil {
			return nil, fmt.Errorf("wiera: param %q: %w", k, err)
		}
		out[k] = val
	}
	return out, nil
}

func parseParamValue(s string) (policy.Value, error) {
	toks, err := policy.Lex(s)
	if err != nil {
		return policy.Value{}, err
	}
	if len(toks) != 2 { // value + EOF
		return policy.Value{}, fmt.Errorf("not a single literal: %q", s)
	}
	return policy.TokenValue(toks[0])
}

package wiera

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/flight"
	"repro/internal/object"
	"repro/internal/policy"
	"repro/internal/transport"
)

// globalPutExec executes a global policy's insert-event responses for one
// put operation: lock/release, store to local_instance, synchronous copy or
// lazy queue to all_regions, and forward to the primary (paper Figs 3-4).
// ctx carries the put's trace span through forwards and fan-outs (the
// policy.Executor interface has no ctx parameter, so it rides on the exec).
type globalPutExec struct {
	ctx  context.Context
	n    *Node
	key  string
	data []byte
	tags []string

	meta      *object.Meta // set once stored locally or forwarded
	lockHeld  bool
	forwarded bool
}

// Do implements policy.Executor.
func (e *globalPutExec) Do(call *policy.ActionCall) error {
	switch call.Name {
	case "lock":
		if e.n.locks == nil {
			return errors.New("wiera: no coordination service configured for lock")
		}
		lockStart := e.n.clk.Now()
		if err := e.n.locks.Lock(e.ctx, e.key, lockWait); err != nil {
			return err
		}
		flight.FromContext(e.ctx).AddHop(flight.Hop{
			Kind: flight.HopLock, Name: e.key, Duration: e.n.clk.Since(lockStart),
		})
		e.lockHeld = true
		return nil
	case "release":
		if e.n.locks == nil {
			return errors.New("wiera: no coordination service configured for release")
		}
		e.lockHeld = false
		// Release is asynchronous: the update is already durable everywhere
		// by this point, and coordination clients pipeline session
		// operations, so the put need not pay the release round trip (the
		// paper's ~400 ms multi-primary put pays lock + broadcast only).
		key := e.key
		n := e.n
		go func() { _ = n.locks.Unlock(context.Background(), key) }()
		return nil
	case "store":
		to, err := call.StringArg("to")
		if err != nil {
			return err
		}
		if to != "local_instance" && to != e.n.name {
			return fmt.Errorf("wiera: global store targets local_instance, got %q", to)
		}
		m, err := e.n.local.PutTagged(e.ctx, e.key, e.data, e.tags)
		if err != nil {
			return err
		}
		e.meta = &m
		return nil
	case "copy":
		return e.distribute(call, true)
	case "queue":
		return e.distribute(call, false)
	case "forward":
		to, err := call.StringArg("to")
		if err != nil {
			return err
		}
		target, err := e.n.resolveTarget(to)
		if err != nil {
			return err
		}
		payload, err := e.n.enc(PutRequest{Key: e.key, Data: e.data, Tags: e.tags, From: e.n.name})
		if err != nil {
			return err
		}
		callStart := e.n.clk.Now()
		raw, err := e.n.ep.Call(e.ctx, target, MethodForwardPut, payload)
		if err != nil {
			return err
		}
		e.addRPCHop(target, callStart, int64(len(payload)))
		var resp PutResponse
		if err := transport.Decode(raw, &resp); err != nil {
			return err
		}
		e.meta = &resp.Meta
		e.forwarded = true
		return nil
	case "stripe":
		// Erasure-coded distribution with a per-object replication/EC
		// chooser (internal/ec); replaces store+copy/queue entirely.
		return e.n.ecm.stripe(e, call)
	case "change_policy":
		return doChangePolicy(e.n, call)
	default:
		return fmt.Errorf("wiera: unsupported global action %q", call.Name)
	}
}

// distribute fans the stored version out to all peers, synchronously
// (copy) or through the background queue (queue).
func (e *globalPutExec) distribute(call *policy.ActionCall, sync bool) error {
	if e.meta == nil {
		return errors.New("wiera: copy/queue before store in policy body")
	}
	to, err := call.StringArg("to")
	if err != nil {
		return err
	}
	if to != "all_regions" {
		// Distribution to a single named instance/region. The shared queue
		// fans out to every peer, so a single-target lazy update is sent
		// directly (asynchronously) instead of being enqueued.
		target, err := e.n.resolveTarget(to)
		if err != nil {
			return err
		}
		msg := UpdateMsg{Meta: *e.meta, Data: e.data}
		if !sync {
			// Async delivery outlives the put's span; it goes through the
			// batcher, which coalesces updates bound for the same peer while
			// a push is in flight and hints failed entries so the update
			// survives the target being partitioned or down.
			e.n.batch.pushAsync(target, msg)
			return nil
		}
		payload, err := e.n.enc(msg)
		if err != nil {
			return err
		}
		callStart := e.n.clk.Now()
		if _, err := e.n.ep.Call(e.ctx, target, MethodApplyUpdate, payload); err != nil {
			if e.n.repair != nil {
				e.n.repair.addHint(target, msg)
			}
			return err
		}
		e.addRPCHop(target, callStart, int64(len(payload)))
		return nil
	}
	msg := UpdateMsg{Meta: *e.meta, Data: e.data}
	if sync {
		return e.n.fanOutSync(e.ctx, msg)
	}
	e.n.queue.enqueue(msg)
	return nil
}

// addRPCHop files a flight hop for one completed peer call.
func (e *globalPutExec) addRPCHop(target string, start time.Time, bytes int64) {
	e.n.addRPCHop(e.ctx, target, start, bytes)
}

// Assign implements policy.Executor (no assignable attributes at the
// global level yet).
func (e *globalPutExec) Assign(path string, v policy.Value) error {
	return fmt.Errorf("wiera: cannot assign %q in a global policy", path)
}

// releaseLockIfHeld frees the global lock after a mid-body failure so a
// failed put cannot deadlock the key.
func (e *globalPutExec) releaseLockIfHeld() {
	if e.lockHeld && e.n.locks != nil {
		_ = e.n.locks.Unlock(context.Background(), e.key)
		e.lockHeld = false
	}
}

// globalGetExec executes get-event responses: forwarding reads to another
// instance (Sec 5.4's remote-memory reads). ctx carries the get's trace
// span through the forward.
type globalGetExec struct {
	ctx  context.Context
	n    *Node
	key  string
	resp *GetResponse
}

// Do implements policy.Executor.
func (e *globalGetExec) Do(call *policy.ActionCall) error {
	switch call.Name {
	case "forward":
		to, err := call.StringArg("to")
		if err != nil {
			return err
		}
		target, err := e.n.resolveTarget(to)
		if err != nil {
			return err
		}
		if target == e.n.name {
			data, meta, err := e.n.local.Get(e.ctx, e.key)
			if err != nil {
				return err
			}
			e.resp = &GetResponse{Data: data, Meta: meta}
			return nil
		}
		payload, err := e.n.enc(GetRequest{Key: e.key})
		if err != nil {
			return err
		}
		callStart := e.n.clk.Now()
		raw, err := e.n.ep.Call(e.ctx, target, MethodForwardGet, payload)
		if err != nil {
			return err
		}
		var resp GetResponse
		if err := transport.Decode(raw, &resp); err != nil {
			return err
		}
		e.n.addRPCHop(e.ctx, target, callStart, int64(len(resp.Data)))
		e.resp = &resp
		return nil
	case "change_policy":
		return doChangePolicy(e.n, call)
	default:
		return fmt.Errorf("wiera: unsupported get action %q", call.Name)
	}
}

// Assign implements policy.Executor.
func (e *globalGetExec) Assign(path string, v policy.Value) error {
	return fmt.Errorf("wiera: cannot assign %q in a get policy", path)
}

// doChangePolicy translates a change_policy action into a server request.
func doChangePolicy(n *Node, call *policy.ActionCall) error {
	what, err := call.StringArg("what")
	if err != nil {
		return err
	}
	to, err := call.StringArg("to")
	if err != nil {
		return err
	}
	return n.requestPolicyChangeVia(what, to, "policy")
}

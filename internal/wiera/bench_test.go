package wiera

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/clock"
	"repro/internal/coord"
	"repro/internal/policy"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// benchStack is a full Wiera deployment for benchmarks, with telemetry
// either on (the fabric's default registry + tracer: always-on metrics,
// traces head-sampled at the default 1-in-16) or off
// (transport.WithoutTelemetry), so the two variants measure the
// instrumentation's end-to-end overhead on the same code path:
//
//	go test -bench=BenchmarkClient ./internal/wiera/
//
// and compare the instrumented and bare sub-benchmarks; the instrumented
// path must stay within 5% of bare.
type benchStack struct {
	fabric *transport.Fabric
	server *Server
	tss    []*TieraServer
	cli    *Client
}

func newBenchStack(b *testing.B, telemetryOn bool, extraParams ...map[string]string) *benchStack {
	var extra map[string]string
	if len(extraParams) > 0 {
		extra = extraParams[0]
	}
	return newBenchStackParams(b, telemetryOn, extra)
}

func newBenchStackParams(b *testing.B, telemetryOn bool, extraParams map[string]string) *benchStack {
	b.Helper()
	// A huge compression factor makes the simulated WAN sleeps vanish in
	// real time, so the benchmark measures code cost, not timer resolution.
	clk := clock.NewScaled(100000)
	net := simnet.New(clk)
	var opts []transport.FabricOption
	if !telemetryOn {
		opts = append(opts, transport.WithoutTelemetry())
	}
	fabric := transport.NewFabric(net, opts...)
	cs := coord.NewServer(clk)
	zkEP, err := fabric.NewEndpoint("zk", simnet.USEast)
	if err != nil {
		b.Fatal(err)
	}
	zkEP.Serve(cs.Handler())
	srv, err := NewServer(ServerConfig{Fabric: fabric, CoordDst: "zk"})
	if err != nil {
		b.Fatal(err)
	}
	s := &benchStack{fabric: fabric, server: srv}
	for _, r := range simnet.DefaultRegions() {
		ts, err := NewTieraServer(fabric, r, srv, "zk")
		if err != nil {
			b.Fatal(err)
		}
		s.tss = append(s.tss, ts)
	}
	src, err := policy.BuiltinSource("EventualConsistency")
	if err != nil {
		b.Fatal(err)
	}
	params := map[string]string{"t": "1h"}
	for k, v := range extraParams {
		params[k] = v
	}
	if _, err := srv.StartInstances(StartInstancesRequest{
		InstanceID: "bench", PolicySrc: src, Params: params,
	}); err != nil {
		b.Fatal(err)
	}
	cli, err := NewClient(fabric, "bench-cli", simnet.USEast, srv.Name(), "bench")
	if err != nil {
		b.Fatal(err)
	}
	s.cli = cli
	b.Cleanup(func() {
		for _, ts := range s.tss {
			ts.Close()
		}
		srv.Close()
		fabric.Close()
	})
	return s
}

// BenchmarkClientPut measures a full client put through the fabric —
// dispatch, global policy execution, tier write — instrumented (metrics +
// tracing) versus bare.
func BenchmarkClientPut(b *testing.B) {
	for _, variant := range []struct {
		name string
		on   bool
	}{{"instrumented", true}, {"bare", false}} {
		b.Run(variant.name, func(b *testing.B) {
			s := newBenchStack(b, variant.on)
			ctx := context.Background()
			data := make([]byte, 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.cli.Put(ctx, fmt.Sprintf("k%d", i%64), data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEncode compares gob against the binary wire codec on the real
// hot-path messages (not a stand-in shape — see internal/transport's
// BenchmarkEncode for the transport-local variant). Each iteration is one
// encode+decode round trip; wire/append is the steady state the node and
// client hit in production (reused buffer, zero allocations).
func BenchmarkEncode(b *testing.B) {
	meta := sampleMeta("bench-key")
	messages := []struct {
		name string
		msg  any
		zero func() any
	}{
		{"PutRequest", PutRequest{Key: "bench-key", Data: make([]byte, 4096), Tags: []string{"hot"}, From: "us-east"},
			func() any { return &PutRequest{} }},
		{"GetRequest", GetRequest{Key: "bench-key"}, func() any { return &GetRequest{} }},
		{"GetResponse", GetResponse{Data: make([]byte, 4096), Meta: meta, HotReplicas: []string{"a", "b"}},
			func() any { return &GetResponse{} }},
		{"UpdateBatchRequest", UpdateBatchRequest{Updates: []UpdateMsg{
			{Meta: meta, Data: make([]byte, 1024)},
			{Meta: meta, Data: make([]byte, 1024)},
			{Meta: meta, Data: make([]byte, 1024)},
			{Meta: meta, Data: make([]byte, 1024)},
		}}, func() any { return &UpdateBatchRequest{} }},
	}
	for _, m := range messages {
		raw, err := transport.EncodeWith(transport.CodecGob, m.msg)
		if err != nil {
			b.Fatal(err)
		}
		payload := int64(len(raw))
		b.Run(m.name+"/gob", func(b *testing.B) {
			b.SetBytes(payload)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				raw, err := transport.EncodeWith(transport.CodecGob, m.msg)
				if err != nil {
					b.Fatal(err)
				}
				if err := transport.Decode(raw, m.zero()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(m.name+"/wire", func(b *testing.B) {
			b.SetBytes(payload)
			b.ReportAllocs()
			out := m.zero()
			for i := 0; i < b.N; i++ {
				raw, err := transport.Encode(m.msg)
				if err != nil {
					b.Fatal(err)
				}
				if err := transport.Decode(raw, out); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(m.name+"/wire/append", func(b *testing.B) {
			b.SetBytes(payload)
			b.ReportAllocs()
			out := m.zero()
			var buf []byte
			for i := 0; i < b.N; i++ {
				raw, ok := transport.AppendEncode(transport.CodecAuto, buf[:0], m.msg)
				if !ok {
					b.Fatal("wire fast path not taken")
				}
				buf = raw
				if err := transport.Decode(raw, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClientPutCodec measures the end-to-end effect of the wire codec
// on a full client put — same stack as BenchmarkClientPut, but flipping
// the process-default codec between gob and the binary wire format.
func BenchmarkClientPutCodec(b *testing.B) {
	for _, variant := range []struct {
		name  string
		codec transport.Codec
	}{{"gob", transport.CodecGob}, {"wire", transport.CodecAuto}} {
		b.Run(variant.name, func(b *testing.B) {
			param := "gob"
			if variant.codec == transport.CodecAuto {
				param = "binary"
			}
			s := newBenchStack(b, false, map[string]string{"wireCodec": param})
			s.cli.SetCodec(variant.codec)
			ctx := context.Background()
			data := make([]byte, 4096)
			b.SetBytes(4096)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.cli.Put(ctx, fmt.Sprintf("k%d", i%64), data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClientGet measures a full client get, instrumented versus bare.
func BenchmarkClientGet(b *testing.B) {
	for _, variant := range []struct {
		name string
		on   bool
	}{{"instrumented", true}, {"bare", false}} {
		b.Run(variant.name, func(b *testing.B) {
			s := newBenchStack(b, variant.on)
			ctx := context.Background()
			data := make([]byte, 1024)
			for i := 0; i < 64; i++ {
				if _, err := s.cli.Put(ctx, fmt.Sprintf("k%d", i), data); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.cli.Get(ctx, fmt.Sprintf("k%d", i%64)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

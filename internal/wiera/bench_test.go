package wiera

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/clock"
	"repro/internal/coord"
	"repro/internal/policy"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// benchStack is a full Wiera deployment for benchmarks, with telemetry
// either on (the fabric's default registry + tracer: always-on metrics,
// traces head-sampled at the default 1-in-16) or off
// (transport.WithoutTelemetry), so the two variants measure the
// instrumentation's end-to-end overhead on the same code path:
//
//	go test -bench=BenchmarkClient ./internal/wiera/
//
// and compare the instrumented and bare sub-benchmarks; the instrumented
// path must stay within 5% of bare.
type benchStack struct {
	fabric *transport.Fabric
	server *Server
	tss    []*TieraServer
	cli    *Client
}

func newBenchStack(b *testing.B, telemetryOn bool) *benchStack {
	b.Helper()
	// A huge compression factor makes the simulated WAN sleeps vanish in
	// real time, so the benchmark measures code cost, not timer resolution.
	clk := clock.NewScaled(100000)
	net := simnet.New(clk)
	var opts []transport.FabricOption
	if !telemetryOn {
		opts = append(opts, transport.WithoutTelemetry())
	}
	fabric := transport.NewFabric(net, opts...)
	cs := coord.NewServer(clk)
	zkEP, err := fabric.NewEndpoint("zk", simnet.USEast)
	if err != nil {
		b.Fatal(err)
	}
	zkEP.Serve(cs.Handler())
	srv, err := NewServer(ServerConfig{Fabric: fabric, CoordDst: "zk"})
	if err != nil {
		b.Fatal(err)
	}
	s := &benchStack{fabric: fabric, server: srv}
	for _, r := range simnet.DefaultRegions() {
		ts, err := NewTieraServer(fabric, r, srv, "zk")
		if err != nil {
			b.Fatal(err)
		}
		s.tss = append(s.tss, ts)
	}
	src, err := policy.BuiltinSource("EventualConsistency")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.StartInstances(StartInstancesRequest{
		InstanceID: "bench", PolicySrc: src, Params: map[string]string{"t": "1h"},
	}); err != nil {
		b.Fatal(err)
	}
	cli, err := NewClient(fabric, "bench-cli", simnet.USEast, srv.Name(), "bench")
	if err != nil {
		b.Fatal(err)
	}
	s.cli = cli
	b.Cleanup(func() {
		for _, ts := range s.tss {
			ts.Close()
		}
		srv.Close()
		fabric.Close()
	})
	return s
}

// BenchmarkClientPut measures a full client put through the fabric —
// dispatch, global policy execution, tier write — instrumented (metrics +
// tracing) versus bare.
func BenchmarkClientPut(b *testing.B) {
	for _, variant := range []struct {
		name string
		on   bool
	}{{"instrumented", true}, {"bare", false}} {
		b.Run(variant.name, func(b *testing.B) {
			s := newBenchStack(b, variant.on)
			ctx := context.Background()
			data := make([]byte, 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.cli.Put(ctx, fmt.Sprintf("k%d", i%64), data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClientGet measures a full client get, instrumented versus bare.
func BenchmarkClientGet(b *testing.B) {
	for _, variant := range []struct {
		name string
		on   bool
	}{{"instrumented", true}, {"bare", false}} {
		b.Run(variant.name, func(b *testing.B) {
			s := newBenchStack(b, variant.on)
			ctx := context.Background()
			data := make([]byte, 1024)
			for i := 0; i < 64; i++ {
				if _, err := s.cli.Put(ctx, fmt.Sprintf("k%d", i), data); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.cli.Get(ctx, fmt.Sprintf("k%d", i%64)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
